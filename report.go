package opgate

import (
	"opgate/internal/harness"
	"opgate/internal/store"
)

// Report is a regenerated table or figure as structured data: labelled
// rows of named numeric columns (or freeform text lines) plus unit and
// schema metadata. See Report.Format, Report.Value, Report.Diff and the
// Renderer implementations.
type Report = harness.Report

// Row is one labelled series of report values.
type Row = harness.Row

// CellDiff is one difference between two reports (Report.Diff).
type CellDiff = harness.CellDiff

// Renderer turns a structured report sequence into a byte stream.
type Renderer = harness.Renderer

// TextRenderer reproduces the classic aligned-table report layout.
type TextRenderer = harness.TextRenderer

// JSONRenderer emits the canonical JSON report encoding.
type JSONRenderer = harness.JSONRenderer

// SweepReport is one experiment's report grid across a threshold sweep
// (Session.Sweep): Cells[i] holds the report at Thresholds[i]. See
// SweepReport.Format, SweepReport.Cell and SweepReport.Diff.
type SweepReport = harness.SweepReport

// SweepCellDiff is one differing cell between two sweeps (SweepReport.Diff).
type SweepCellDiff = harness.SweepCellDiff

// Schema identifiers of the canonical JSON encodings.
const (
	ReportSchema    = harness.ReportSchema
	ReportSetSchema = harness.ReportSetSchema
	SweepSchema     = harness.SweepSchema
)

// EncodeReports renders a report sequence in its canonical, stable,
// content-addressable JSON form.
func EncodeReports(reports []*Report) ([]byte, error) {
	return harness.EncodeReports(reports)
}

// DecodeReports parses a canonical report-sequence encoding.
func DecodeReports(data []byte) ([]*Report, error) {
	return harness.DecodeReports(data)
}

// FormatThresholds renders a threshold grid in its canonical
// comma-separated %g form — the spelling shared by sweep report labels,
// store keys and opgated sweep specs.
func FormatThresholds(thresholds []float64) string {
	return harness.FormatThresholds(thresholds)
}

// ValidThresholds rejects grids Sweep cannot evaluate: empty,
// non-positive values, or duplicates.
func ValidThresholds(thresholds []float64) error {
	return harness.ValidThresholds(thresholds)
}

// EncodeSweep renders a sweep in its canonical, stable,
// content-addressable JSON form.
func EncodeSweep(sw *SweepReport) ([]byte, error) {
	return harness.EncodeSweep(sw)
}

// DecodeSweep parses a canonical sweep encoding.
func DecodeSweep(data []byte) (*SweepReport, error) {
	return harness.DecodeSweep(data)
}

// Store is the persistent, content-addressed artifact store shared by
// sessions and the opgated service: packed retirement traces and report
// blobs survive the process under hash addresses, with atomic writes and
// LRU eviction under a byte budget. A store is an accelerator only — a
// damaged or missing object is a cache miss, never an error.
type Store = store.Store

// StoreStats are a store's hit/miss/eviction counters.
type StoreStats = store.Stats

// Backend is the raw byte-level storage contract a Store is layered
// over: Get/Put/Delete/Stats on opaque blobs under content-addressed
// keys. Implementations include the directory store, the HTTP object
// backend (package opgate/client), and the two-tier composition
// (store.NewTiered). Plug one into a session with WithBackend.
type Backend = store.Backend

// NewStore layers the codec and reject-tracking Store API over any
// Backend.
func NewStore(b Backend) *Store { return store.NewStore(b) }

// OpenStore opens (or creates) a store rooted at dir. limitBytes bounds
// the store's size (LRU eviction); 0 means unlimited.
func OpenStore(dir string, limitBytes int64) (*Store, error) {
	return store.Open(dir, limitBytes)
}

// ParseSize parses a human-readable byte size ("256MiB", "2GiB", plain
// bytes) for store budgets.
func ParseSize(s string) (int64, error) { return store.ParseSize(s) }
