package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: opgate
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEmuMIPS/raw-4         	       3	    163945 ns/op	       156.8 MIPS
BenchmarkEmuMIPS/batch-4       	       3	    219290 ns/op	       117.1 MIPS
BenchmarkFigure3Matrix/fused-4 	       3	 197571446 ns/op
PASS
ok  	opgate	2.791s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Package != "opgate" {
		t.Fatalf("header drifted: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	raw := doc.Benchmarks[0]
	if raw.Name != "BenchmarkEmuMIPS/raw-4" || raw.Iters != 3 || raw.NsPerOp != 163945 {
		t.Fatalf("first benchmark drifted: %+v", raw)
	}
	if raw.Metrics["MIPS"] != 156.8 {
		t.Fatalf("MIPS metric not parsed: %+v", raw.Metrics)
	}
	if doc.Benchmarks[2].Metrics != nil {
		t.Fatalf("metric-free benchmark grew metrics: %+v", doc.Benchmarks[2])
	}
}

// bench builds a single-benchmark document carrying one MIPS value.
func bench(name string, mips float64) Benchmark {
	return Benchmark{Name: name, Iters: 1, Metrics: map[string]float64{"MIPS": mips}}
}

func TestCompareThroughput(t *testing.T) {
	baseline := Document{Benchmarks: []Benchmark{
		bench("A", 100),
		bench("B", 100),
		bench("Gone", 50),
		{Name: "NoMetric", Iters: 1, NsPerOp: 5},
	}}

	t.Run("within-tolerance", func(t *testing.T) {
		fresh := Document{Benchmarks: []Benchmark{bench("A", 80), bench("B", 120), bench("New", 10)}}
		lines, failed := compareThroughput(baseline, fresh, 0.25)
		if failed {
			t.Fatalf("gate failed on a -20%% drop with 25%% tolerance:\n%s", strings.Join(lines, "\n"))
		}
		joined := strings.Join(lines, "\n")
		for _, want := range []string{"ok   A:", "ok   B:", "skip Gone:", "note New MIPS:"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("verdicts missing %q:\n%s", want, joined)
			}
		}
	})

	t.Run("regression-fails", func(t *testing.T) {
		fresh := Document{Benchmarks: []Benchmark{bench("A", 74), bench("B", 100)}}
		lines, failed := compareThroughput(baseline, fresh, 0.25)
		if !failed {
			t.Fatalf("gate passed a -26%% regression:\n%s", strings.Join(lines, "\n"))
		}
		if !strings.Contains(strings.Join(lines, "\n"), "FAIL A:") {
			t.Fatalf("regressed benchmark not named:\n%s", strings.Join(lines, "\n"))
		}
	})

	t.Run("missing-benchmark-does-not-fail", func(t *testing.T) {
		fresh := Document{Benchmarks: []Benchmark{bench("A", 100), bench("B", 100)}}
		if _, failed := compareThroughput(baseline, fresh, 0.25); failed {
			t.Fatal("gate failed on a benchmark absent from the fresh run")
		}
	})

	t.Run("best-of-count-runs", func(t *testing.T) {
		// Three samples of A (go test -count=3): one healthy sample means
		// no regression, however noisy the others are.
		fresh := Document{Benchmarks: []Benchmark{bench("A", 40), bench("A", 99), bench("A", 60), bench("B", 100)}}
		if lines, failed := compareThroughput(baseline, fresh, 0.25); failed {
			t.Fatalf("gate failed despite a healthy best sample:\n%s", strings.Join(lines, "\n"))
		}
		// And when every sample regressed, the gate fires exactly once.
		fresh = Document{Benchmarks: []Benchmark{bench("A", 40), bench("A", 50), bench("B", 100)}}
		lines, failed := compareThroughput(baseline, fresh, 0.25)
		if !failed {
			t.Fatalf("gate passed a uniform regression:\n%s", strings.Join(lines, "\n"))
		}
		if n := strings.Count(strings.Join(lines, "\n"), "FAIL A:"); n != 1 {
			t.Fatalf("regressed benchmark reported %d times, want once:\n%s", n, strings.Join(lines, "\n"))
		}
	})

	t.Run("rate-units-are-gated", func(t *testing.T) {
		// A "/s" metric (the sweep benchmark's cells/s) is gated exactly
		// like MIPS, while informational counters riding on the same
		// benchmark line are ignored.
		cellBench := func(cells, trains float64) Benchmark {
			return Benchmark{Name: "Sweep", Iters: 1,
				Metrics: map[string]float64{"cells/s": cells, "train-emus": trains}}
		}
		base := Document{Benchmarks: []Benchmark{cellBench(25, 8)}}
		lines, failed := compareThroughput(base, Document{Benchmarks: []Benchmark{cellBench(10, 8)}}, 0.25)
		if !failed {
			t.Fatalf("gate passed a -60%% cells/s regression:\n%s", strings.Join(lines, "\n"))
		}
		// A counter regression (8 -> 40 train emulations) alone never
		// fires the throughput gate.
		lines, failed = compareThroughput(base, Document{Benchmarks: []Benchmark{cellBench(26, 40)}}, 0.25)
		if failed {
			t.Fatalf("gate fired on a non-throughput counter:\n%s", strings.Join(lines, "\n"))
		}
		if joined := strings.Join(lines, "\n"); !strings.Contains(joined, "ok   Sweep: 26.0 cells/s") {
			t.Fatalf("cells/s verdict missing:\n%s", joined)
		}
	})

	t.Run("multiple-metrics-per-benchmark", func(t *testing.T) {
		multi := func(mips, rate float64) Benchmark {
			return Benchmark{Name: "M", Iters: 1,
				Metrics: map[string]float64{"MIPS": mips, "reports/s": rate}}
		}
		base := Document{Benchmarks: []Benchmark{multi(100, 100)}}
		// Each metric is judged independently: a healthy MIPS does not
		// excuse a collapsed reports/s.
		lines, failed := compareThroughput(base, Document{Benchmarks: []Benchmark{multi(110, 10)}}, 0.25)
		if !failed {
			t.Fatalf("gate passed a regression hidden behind a healthy sibling metric:\n%s",
				strings.Join(lines, "\n"))
		}
	})
}
