// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// (BENCH_sim.json) can be diffed and plotted across PRs.
//
// Usage:
//
//	go test -run '^$' -bench ... . | go run ./tools/benchjson > BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted trajectory file.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line: name, iteration count, then
// (value, unit) pairs — ns/op first, custom metrics after.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
