// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// (BENCH_sim.json) can be diffed and plotted across PRs.
//
// Usage:
//
//	go test -run '^$' -bench ... . | go run ./tools/benchjson > BENCH_sim.json
//
// With -compare it doubles as a regression gate: the fresh document is
// still written to stdout, but every throughput metric a benchmark
// reports — "MIPS", or any higher-is-better rate unit ending in "/s"
// (e.g. the sweep benchmark's "cells/s") — is also checked against the
// baseline document, and the process exits nonzero when any throughput
// fell more than -tolerance below its committed value:
//
//	go test -bench ... . | go run ./tools/benchjson \
//	    -compare BENCH_sim.json -tolerance 0.25 > fresh.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted trajectory file.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON document to gate throughput metrics against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput regression vs the baseline")
	flag.Parse()

	doc, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare == "" {
		return
	}
	baseline, err := loadDocument(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	lines, failed := compareThroughput(baseline, doc, *tolerance)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, "benchjson:", l)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: throughput regression beyond %.0f%% tolerance vs %s\n",
			*tolerance*100, *compare)
		os.Exit(1)
	}
}

// parseBenchOutput converts a `go test -bench` transcript into a Document.
func parseBenchOutput(r io.Reader) (Document, error) {
	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// loadDocument reads a previously emitted JSON trajectory.
func loadDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// throughputMetric reports whether a metric unit is a higher-is-better
// throughput the gate should watch: "MIPS" (the historical spelling) or
// any rate unit ending in "/s" ("cells/s", "reports/s", ...). Counters
// and physical quantities ("train-emus", "nJ-saved-64to8") stay
// informational.
func throughputMetric(unit string) bool {
	return unit == "MIPS" || strings.HasSuffix(unit, "/s")
}

// compareThroughput gates the fresh document against a baseline: every
// throughput metric a benchmark reports in both documents must stay
// within the fractional tolerance of its baseline value. A benchmark
// appearing several times on a side (go test -count=N) is represented by
// its best run — scheduler noise only ever subtracts throughput, so a
// genuine regression slows every sample while a noisy one leaves the
// best intact. Higher is better, so only drops count; metrics present on
// one side only are reported but never fail the gate (renames and
// removals are deliberate acts, caught by the diff of BENCH_sim.json
// itself). Returns human-readable verdict lines and whether the gate
// failed.
func compareThroughput(baseline, fresh Document, tolerance float64) (lines []string, failed bool) {
	freshBest := bestThroughput(fresh)
	baseBest := bestThroughput(baseline)
	seen := map[string]bool{}
	for _, b := range baseline.Benchmarks {
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			if throughputMetric(unit) {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			key := b.Name + " " + unit
			old, ok := baseBest[key]
			if !ok || old <= 0 || seen[key] {
				continue
			}
			seen[key] = true
			now, ok := freshBest[key]
			if !ok {
				lines = append(lines, fmt.Sprintf("skip %s: no %s in fresh run (removed or renamed?)", b.Name, unit))
				continue
			}
			delete(freshBest, key)
			change := now/old - 1
			verdict := "ok  "
			if change < -tolerance {
				verdict = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf("%s %s: %.1f %s vs baseline %.1f (%+.1f%%)",
				verdict, b.Name, now, unit, old, change*100))
		}
	}
	newKeys := make([]string, 0, len(freshBest))
	for key := range freshBest {
		newKeys = append(newKeys, key)
	}
	sort.Strings(newKeys)
	for _, key := range newKeys {
		lines = append(lines, fmt.Sprintf("note %s: new benchmark metric, no baseline", key))
	}
	return lines, failed
}

// bestThroughput maps each "benchmark-name unit" pair to its best
// (highest) throughput sample.
func bestThroughput(doc Document) map[string]float64 {
	best := map[string]float64{}
	for _, b := range doc.Benchmarks {
		for unit, v := range b.Metrics {
			if !throughputMetric(unit) {
				continue
			}
			if key := b.Name + " " + unit; v > best[key] {
				best[key] = v
			}
		}
	}
	return best
}

// parseBench parses one result line: name, iteration count, then
// (value, unit) pairs — ns/op first, custom metrics after.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
