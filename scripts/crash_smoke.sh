#!/usr/bin/env bash
# crash_smoke.sh — end-to-end SIGKILL recovery against a real opgated
# process, the contract no graceful-drain test touches: kill -9 a server
# mid-job and prove the journal + content-addressed store put the world
# back. Expectations held: the restarted process re-adopts the in-flight
# job under its ORIGINAL job ID and drives it to "done"; a report fetched
# before the crash is byte-identical after it; and resubmitting finished
# work is served from the store without a single re-emulation (zero store
# misses across the resubmit).
#
# Needs curl + jq (standard on CI runners). Exits non-zero on the first
# violated expectation.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18437"
BASE="http://$ADDR"
WORK=$(mktemp -d)
BIN="$WORK/opgated"
STORE="$WORK/store"
ERRLOG="$WORK/opgated.err"

go build -o "$BIN" ./cmd/opgated

start() { # start — launch opgated with the same store (+auto journal)
  "$BIN" -addr "$ADDR" -quick -workers 1 -queue 8 -store "$STORE" 2>> "$ERRLOG" &
  PID=$!
}
start
trap 'kill -9 $PID 2>/dev/null || true; sed "s/^/opgated: /" "$ERRLOG" >&2 || true' EXIT

poll() { # poll <deadline-seconds> <cmd...> — retry until success
  local deadline=$((SECONDS + $1)); shift
  until "$@" 2>/dev/null; do
    [ $SECONDS -lt $deadline ] || { echo "timed out: $*" >&2; return 1; }
    sleep 0.1
  done
}

ready() { [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "200" ]; }
poll 15 ready

submit() { curl -s -X POST "$BASE/v1/experiments" -d "$1"; }
status() { curl -s "$BASE/v1/jobs/$1" | jq -r .status; }

# A quick job to completion first: its report is the byte-identity probe.
FAST=$(submit '{"experiment":"fig2"}' | jq -r .id)
fast_done() { [ "$(status "$FAST")" = "done" ]; }
poll 60 fast_done
KEY=$(curl -s "$BASE/v1/jobs/$FAST" | jq -r .report_key)
curl -s "$BASE/v1/reports/$KEY" > "$WORK/report.before"
[ -s "$WORK/report.before" ] || { echo "empty pre-crash report" >&2; exit 1; }

# The slowest request we can make, so the SIGKILL lands mid-run.
SLOW=$(submit '{"experiment":"all","synthetic":"all"}' | jq -r .id)
slow_running() { [ "$(status "$SLOW")" = "running" ]; }
poll 30 slow_running

kill -9 $PID
wait $PID 2>/dev/null || true
echo "ok: killed -9 with $SLOW running"

# Restart on the same store + journal: the job must come back under its
# original ID (re-adopted, not 404) and finish.
start
poll 15 ready
grep -q 'journal.*recovered.*requeued' "$ERRLOG" || { echo "no recovery log line" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs/$SLOW")
[ "$CODE" = "200" ] || { echo "recovered job $SLOW returned $CODE, want 200" >&2; exit 1; }
echo "ok: $SLOW re-adopted after restart"
slow_done() { [ "$(status "$SLOW")" = "done" ]; }
poll 300 slow_done
echo "ok: $SLOW reached done under its original ID"

# The pre-crash report is byte-identical after recovery.
curl -s "$BASE/v1/reports/$KEY" > "$WORK/report.after"
cmp "$WORK/report.before" "$WORK/report.after" || { echo "report changed across the crash" >&2; exit 1; }
echo "ok: pre-crash report byte-identical after restart"

# Resubmitting finished work costs zero re-emulation: the store's miss
# counter must not move while the resubmitted job is served from cache.
MISSES_BEFORE=$(curl -s "$BASE/healthz" | jq -r .store.Misses)
AGAIN=$(submit '{"experiment":"fig2"}' | jq -r .id)
again_done() { [ "$(status "$AGAIN")" = "done" ]; }
poll 60 again_done
curl -s "$BASE/v1/jobs/$AGAIN" | jq -r '.progress[].msg' | grep -q 'served from cache' \
  || { echo "resubmitted job was not served from cache" >&2; exit 1; }
MISSES_AFTER=$(curl -s "$BASE/healthz" | jq -r .store.Misses)
[ "$MISSES_BEFORE" = "$MISSES_AFTER" ] || { echo "resubmit missed the store ($MISSES_BEFORE -> $MISSES_AFTER)" >&2; exit 1; }
echo "ok: resubmit served from cache with zero store misses"

kill -TERM $PID
wait $PID || true
trap - EXIT
echo "ok: crash recovery contract holds"
