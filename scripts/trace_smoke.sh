#!/usr/bin/env bash
# trace_smoke.sh — end-to-end trace round-trip against the real CLIs and
# a real opgated process. Expectations held: a workload exported to a
# trace blob and re-imported under a "trace:" name produces byte-identical
# report cells with zero emulations (the trace-ingestion frontend's core
# invariant, here across process boundaries instead of in-process tests);
# and the upload API enforces its body cap with 413 before ingesting
# anything.
#
# Needs curl + jq (standard on CI runners). Exits non-zero on the first
# violated expectation.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STORE="$WORK/store"
TWIN="syn:narrow/small/5"

go build -o "$WORK/ogbench" ./cmd/ogbench
go build -o "$WORK/ogtrace" ./cmd/ogtrace
go build -o "$WORK/opgated" ./cmd/opgated

# Native pass: kernels + the synthetic twin, traces captured to the store.
"$WORK/ogbench" -experiment fig12 -quick -store "$STORE" -synthetic "$TWIN" -format json \
  > "$WORK/native.json" 2> "$WORK/native.err"
cat "$WORK/native.err"

# Export the twin natively, inspect it, import it under a trace: name.
"$WORK/ogtrace" export -workload "$TWIN" -class train -o "$WORK/twin.ogtr"
"$WORK/ogtrace" inspect "$WORK/twin.ogtr"
"$WORK/ogtrace" import -store "$STORE" -name narrowtwin -class train "$WORK/twin.ogtr"
"$WORK/ogtrace" list -store "$STORE" | grep -q '^trace:narrowtwin' \
  || { echo "import missing from ogtrace list" >&2; exit 1; }

# Traced pass: the same experiment with the twin served purely by replay
# must render byte-identical reports without a single emulation.
"$WORK/ogbench" -experiment fig12 -quick -store "$STORE" -synthetic trace:narrowtwin -format json \
  > "$WORK/traced.json" 2> "$WORK/traced.err"
cat "$WORK/traced.err"
cmp "$WORK/native.json" "$WORK/traced.json" \
  || { echo "fig12 drifted across the trace round trip" >&2; exit 1; }
grep -q 'emulations=0 ' "$WORK/traced.err" \
  || { echo "traced run emulated something" >&2; exit 1; }
echo "ok: trace round trip is byte-identical with zero emulations"

# The daemon's upload surface: a live opgated accepts the blob under the
# cap (201, then evaluable by name) and refuses an oversized body (413).
ADDR="127.0.0.1:18439"
BASE="http://$ADDR"
"$WORK/opgated" -addr "$ADDR" -quick -workers 1 -store "$STORE" 2>> "$WORK/opgated.err" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; sed "s/^/opgated: /" "$WORK/opgated.err" >&2 || true' EXIT

poll() { # poll <deadline-seconds> <cmd...> — retry until success
  local deadline=$((SECONDS + $1)); shift
  until "$@" 2>/dev/null; do
    [ $SECONDS -lt $deadline ] || { echo "timed out: $*" >&2; return 1; }
    sleep 0.1
  done
}
ready() { [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "200" ]; }
poll 15 ready

CODE=$(curl -s -o "$WORK/upload.json" -w '%{http_code}' --data-binary "@$WORK/twin.ogtr" \
  "$BASE/v1/traces?name=uptwin&class=train")
[ "$CODE" = "201" ] || { echo "upload returned $CODE, want 201" >&2; exit 1; }
jq -e '.name == "trace:uptwin"' "$WORK/upload.json" > /dev/null \
  || { echo "upload response misnames the import" >&2; exit 1; }
JOB=$(curl -s -X POST "$BASE/v1/experiments" -d '{"experiment":"fig12","synthetic":"trace:uptwin"}' | jq -r .id)
job_done() { [ "$(curl -s "$BASE/v1/jobs/$JOB" | jq -r .status)" = "done" ]; }
poll 60 job_done
echo "ok: uploaded trace evaluates by name through the job API"

head -c $((65 * 1024 * 1024)) /dev/zero > "$WORK/huge.bin"
CODE=$(curl -s -o /dev/null -w '%{http_code}' --data-binary "@$WORK/huge.bin" \
  "$BASE/v1/traces?name=huge")
[ "$CODE" = "413" ] || { echo "oversized upload returned $CODE, want 413" >&2; exit 1; }
echo "ok: oversized upload refused with 413"

kill -TERM $PID
wait $PID || true
trap - EXIT
echo "ok: trace ingestion contract holds"
