#!/usr/bin/env bash
# coverage_gate.sh [go-test-output-file] — print per-package statement
# coverage and enforce floors on the packages the differential harness
# leans on: the emulator (the architectural reference model) and the
# program generator (the workload space). Floors sit below current
# coverage with a small margin; raise them as coverage grows, never lower
# them to admit a regression.
#
# With an argument, parses an existing `go test -cover` transcript (CI
# passes the main test step's output instead of re-running the suites);
# without one, runs the tests itself.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
  out=$(cat "$1")
else
  out=$(go test -count=1 -cover ./internal/... 2>&1) || { echo "$out"; exit 1; }
fi
echo "$out"
echo

fail=0
check() {
  local pkg=$1 min=$2 line pct
  line=$(echo "$out" | grep -E "^ok[[:space:]]+$pkg[[:space:]]" || true)
  pct=$(echo "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+' || true)
  if [ -z "$pct" ]; then
    echo "coverage gate: no coverage figure for $pkg"
    fail=1
    return
  fi
  if awk "BEGIN{exit !($pct < $min)}"; then
    echo "coverage gate: FAIL $pkg ${pct}% < ${min}% floor"
    fail=1
  else
    echo "coverage gate: ok   $pkg ${pct}% >= ${min}% floor"
  fi
}

check opgate/internal/emu 85.0
check opgate/internal/progen 90.0

exit $fail
