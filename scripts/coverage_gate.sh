#!/usr/bin/env bash
# coverage_gate.sh [go-test-output-file] — print per-package statement
# coverage and enforce floors on the packages the differential harness and
# the persistence layer lean on: the emulator (the architectural reference
# model), the program generator (the workload space), and the trace/result
# store (the cache that must never corrupt a result). Floors sit below
# current coverage with a small margin; raise them as coverage grows, never
# lower them to admit a regression.
#
# With an argument, parses an existing `go test -cover` transcript (CI
# passes the main test step's output instead of re-running the suites);
# without one, runs the tests itself. Matching is per-package, so the
# transcript's package order does not matter, and a package that degraded
# to "[no test files]", "(cached)" annotations, or "coverage: [no
# statements]" all produce a specific per-package message instead of a
# generic parse failure.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
  out=$(cat "$1")
else
  out=$(go test -count=1 -cover ./internal/... 2>&1) || { echo "$out"; exit 1; }
fi
echo "$out"
echo

fail=0
check() {
  local pkg=$1 min=$2 line pct
  # Any `go test` result line for the package, wherever in the transcript
  # it appears: "ok/FAIL/? <pkg> …", or the tab-prefixed "<pkg> coverage:"
  # form `-cover` emits for packages without test files.
  line=$(echo "$out" | grep -E "(^|[[:space:]])$pkg([[:space:]]|$)" \
    | grep -E "^(ok|FAIL|\?)[[:space:]]|no test files|coverage:" | head -n 1 || true)
  if [ -z "$line" ]; then
    echo "coverage gate: FAIL $pkg: no result line in the test output (package deleted or not tested?)"
    fail=1
    return
  fi
  case "$line" in
    FAIL*)
      echo "coverage gate: FAIL $pkg: tests failed, coverage unknown"
      fail=1
      return ;;
    *"no test files"*)
      echo "coverage gate: FAIL $pkg: package has no test files (floor is ${min}%)"
      fail=1
      return ;;
    *"coverage: [no statements]"*)
      echo "coverage gate: FAIL $pkg: package has no statements to cover (floor is ${min}%)"
      fail=1
      return ;;
  esac
  pct=$(echo "$line" | grep -oE 'coverage: [0-9]+\.[0-9]+% of statements' | grep -oE '[0-9]+\.[0-9]+' || true)
  if [ -z "$pct" ]; then
    echo "coverage gate: FAIL $pkg: result line carries no coverage figure (was -cover set?): $line"
    fail=1
    return
  fi
  if awk "BEGIN{exit !($pct < $min)}"; then
    echo "coverage gate: FAIL $pkg ${pct}% < ${min}% floor"
    fail=1
  else
    echo "coverage gate: ok   $pkg ${pct}% >= ${min}% floor"
  fi
}

check opgate/internal/emu 85.0
check opgate/internal/progen 90.0
check opgate/internal/store 88.0
check opgate/internal/journal 85.0

exit $fail
