#!/usr/bin/env bash
# lifecycle_smoke.sh — end-to-end drain contract against a real opgated
# process, the part no httptest harness can cover: SIGTERM a live server
# with one running and one queued job and hold it to the documented
# semantics — /readyz flips 503, new submissions bounce with 503 +
# Retry-After, the queued job lands terminal "aborted", the running job
# is allowed to finish, and the process exits 0 logging a clean drain.
#
# Needs curl + jq (standard on CI runners). Exits non-zero on the first
# violated expectation.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18436"
BASE="http://$ADDR"
BIN=$(mktemp -d)/opgated
ERRLOG=$(mktemp)

go build -o "$BIN" ./cmd/opgated

# One worker so the second job is guaranteed to still be queued when the
# drain begins; a generous drain window so the running job (quick-mode
# "all" over the full synthetic set — the slowest request we can make)
# finishes naturally rather than being cancelled.
"$BIN" -addr "$ADDR" -quick -workers 1 -queue 8 -drain-timeout 120s 2> "$ERRLOG" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true; sed "s/^/opgated: /" "$ERRLOG" >&2 || true' EXIT

poll() { # poll <deadline-seconds> <cmd...> — retry until success
  local deadline=$((SECONDS + $1)); shift
  until "$@" 2>/dev/null; do
    [ $SECONDS -lt $deadline ] || { echo "timed out: $*" >&2; return 1; }
    sleep 0.1
  done
}

ready() { [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "200" ]; }
poll 15 ready

submit() { curl -s -X POST "$BASE/v1/experiments" -d "$1"; }
status() { curl -s "$BASE/v1/jobs/$1" | jq -r .status; }

RUNNING=$(submit '{"experiment":"all","synthetic":"all"}' | jq -r .id)
QUEUED=$(submit '{"experiment":"table1"}' | jq -r .id)
[ -n "$RUNNING" ] && [ -n "$QUEUED" ] || { echo "submissions failed" >&2; exit 1; }

is_running() { [ "$(status "$RUNNING")" = "running" ]; }
poll 30 is_running
[ "$(status "$QUEUED")" = "queued" ] || { echo "second job not queued" >&2; exit 1; }

kill -TERM $PID

# Mid-drain probes: the long-running job keeps the server alive while we
# check the refusal surface.
unready() { [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "503" ]; }
poll 10 unready
echo "ok: /readyz unready during drain"

HDRS=$(mktemp)
CODE=$(curl -s -o /dev/null -D "$HDRS" -w '%{http_code}' -X POST "$BASE/v1/experiments" -d '{"experiment":"fig2"}')
[ "$CODE" = "503" ] || { echo "submit during drain returned $CODE, want 503" >&2; exit 1; }
grep -qi '^retry-after:' "$HDRS" || { echo "drain 503 carries no Retry-After" >&2; exit 1; }
echo "ok: drain refuses submissions with 503 + Retry-After"

aborted() { [ "$(status "$QUEUED")" = "aborted" ]; }
poll 10 aborted
echo "ok: queued job aborted"

# The process itself must exit cleanly once the running job finishes.
WAITED=0
if wait $PID; then WAITED=$?; else WAITED=$?; fi
[ "$WAITED" = "0" ] || { echo "opgated exited $WAITED, want 0" >&2; exit 1; }
grep -q 'drained cleanly' "$ERRLOG" || { echo "no clean-drain log line" >&2; exit 1; }
grep -q 'aborted 1 queued job' "$ERRLOG" || { echo "no aborted-queued-job log line" >&2; exit 1; }
trap - EXIT
echo "ok: clean exit (drained cleanly, 1 queued job aborted)"
