#!/usr/bin/env sh
# Regenerate BENCH_sim.json, the machine-readable trajectory of the
# simulation-substrate benchmarks: emulated MIPS, trace capture/replay
# throughput, the fused-vs-unfused cold figure matrices, and the
# single-pass threshold sweep (grid cells/s vs independent per-threshold
# runs).
#
#   scripts/bench_sim.sh              # default: 3 timed iterations, 3 samples
#   BENCHTIME=1x COUNT=1 scripts/bench_sim.sh # quick smoke
#
# COUNT > 1 keeps several samples per benchmark in the document; the
# benchjson -compare regression gate scores each benchmark by its best
# sample, which makes the committed baseline robust to scheduler noise.
set -e
cd "$(dirname "$0")/.."

BENCHES='BenchmarkEmuMIPS|BenchmarkTraceReplayMIPS|BenchmarkFigure3Matrix|BenchmarkFigureFamilyMatrix|BenchmarkThresholdSweep'

# Run the benchmarks to a temp file first so a failing run aborts the
# script (POSIX sh has no pipefail) instead of overwriting the committed
# trajectory with an empty document.
out=$(mktemp)
trap 'rm -f "$out"' EXIT
go test -run '^$' -bench "$BENCHES" -benchtime "${BENCHTIME:-3x}" -count "${COUNT:-3}" . > "$out"
cat "$out" >&2
go run ./tools/benchjson < "$out" > BENCH_sim.json

echo "wrote BENCH_sim.json" >&2
