#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end 2-node ring against real opgated
# processes, the contract no in-process fleet test touches: two nodes
# with independent stores and consistent-hash routing over real
# sockets. Expectations held: a report computed cold on node A is
# served byte-identical from node B with ZERO additional emulations
# anywhere in the fleet; a short ogload burst across both nodes
# finishes with zero request errors and a nonzero serving hit rate;
# and after node A dies by SIGKILL, node B reports the peer unhealthy
# yet keeps answering cold submissions by local compute — the ring
# decides placement, never availability.
#
# Needs curl + jq (standard on CI runners). Exits non-zero on the
# first violated expectation.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR_A="127.0.0.1:18501"
ADDR_B="127.0.0.1:18502"
BASE_A="http://$ADDR_A"
BASE_B="http://$ADDR_B"
PEERS="$BASE_A,$BASE_B"
WORK=$(mktemp -d)
BIN="$WORK/opgated"
LOAD="$WORK/ogload"

go build -o "$BIN" ./cmd/opgated
go build -o "$LOAD" ./cmd/ogload

"$BIN" -addr "$ADDR_A" -quick -workers 2 -store "$WORK/store-a" -journal off \
  -peers "$PEERS" -self "$BASE_A" 2> "$WORK/a.err" &
PID_A=$!
"$BIN" -addr "$ADDR_B" -quick -workers 2 -store "$WORK/store-b" -journal off \
  -peers "$PEERS" -self "$BASE_B" 2> "$WORK/b.err" &
PID_B=$!
trap 'kill -9 $PID_A $PID_B 2>/dev/null || true;
      sed "s/^/node-a: /" "$WORK/a.err" >&2 || true;
      sed "s/^/node-b: /" "$WORK/b.err" >&2 || true' EXIT

poll() { # poll <deadline-seconds> <cmd...> — retry until success
  local deadline=$((SECONDS + $1)); shift
  until "$@" 2>/dev/null; do
    [ $SECONDS -lt $deadline ] || { echo "timed out: $*" >&2; return 1; }
    sleep 0.1
  done
}

ready() { [ "$(curl -s -o /dev/null -w '%{http_code}' "$1/readyz")" = "200" ]; }
poll 15 ready "$BASE_A"
poll 15 ready "$BASE_B"

submit() { curl -s -X POST "$1/v1/experiments" -d "$2"; }
status() { curl -s "$1/v1/jobs/$2" | jq -r .status; }
emulations() { # total emulation count across the whole fleet
  echo $(( $(curl -s "$BASE_A/healthz" | jq -r .emulations) \
         + $(curl -s "$BASE_B/healthz" | jq -r .emulations) ))
}
run() { # run <base> <request-json> — submit, wait for done, print report key
  local base=$1 id key
  id=$(submit "$base" "$2" | jq -r .id)
  [ -n "$id" ] && [ "$id" != "null" ] || { echo "submit failed on $base" >&2; return 1; }
  local deadline=$((SECONDS + 120))
  until [ "$(status "$base" "$id")" = "done" ]; do
    [ $SECONDS -lt $deadline ] || { echo "job $id never finished on $base" >&2; return 1; }
    sleep 0.2
  done
  curl -s "$base/v1/jobs/$id" | jq -r .report_key
}

# Cold on A: real emulation happens somewhere in the fleet.
KEY=$(run "$BASE_A" '{"experiment":"fig2"}')
curl -s "$BASE_A/v1/reports/$KEY" > "$WORK/report.a"
[ -s "$WORK/report.a" ] || { echo "empty report from node A" >&2; exit 1; }
EMUS_COLD=$(emulations)
[ "$EMUS_COLD" -gt 0 ] || { echo "cold run emulated nothing — probe broken" >&2; exit 1; }
echo "ok: cold fig2 on A ($EMUS_COLD emulations fleet-wide)"

# Warm from B: byte-identical report, zero additional emulations.
KEY_B=$(run "$BASE_B" '{"experiment":"fig2"}')
[ "$KEY" = "$KEY_B" ] || { echo "nodes derive different report keys: $KEY vs $KEY_B" >&2; exit 1; }
curl -s "$BASE_B/v1/reports/$KEY_B" > "$WORK/report.b"
cmp "$WORK/report.a" "$WORK/report.b" || { echo "report bytes differ across nodes" >&2; exit 1; }
EMUS_WARM=$(emulations)
[ "$EMUS_WARM" = "$EMUS_COLD" ] || {
  echo "warm serve from B re-emulated ($EMUS_COLD -> $EMUS_WARM)" >&2; exit 1; }
echo "ok: B served fig2 byte-identical with zero additional emulations"

# A short mixed load across both nodes: zero errors, nonzero hit rate.
"$LOAD" -addr "$PEERS" -clients 4 -duration 5s -mix warm=8,cold=1,sweep=1 \
  -max-errors 0 -min-hit-rate 0.1 -json > "$WORK/ogload.json" \
  || { echo "ogload smoke violated its gates" >&2; cat "$WORK/ogload.json" >&2; exit 1; }
jq -r '"ok: ogload \(.requests) requests, \(.errors) errors, hit rate \(.hitRate)"' "$WORK/ogload.json"

# Kill A outright: B must notice and keep answering on its own.
kill -9 $PID_A
wait $PID_A 2>/dev/null || true
peer_unhealthy() {
  [ "$(curl -s "$BASE_B/healthz" | jq -r '.fleet.peers[0].healthy')" = "false" ]
}
poll 15 peer_unhealthy
echo "ok: B reports its dead peer unhealthy"

# Cold keys at a fresh threshold: whichever of these owns on dead A
# must be computed locally by B, with no request errors.
for exp in fig2 table1; do
  K=$(run "$BASE_B" "{\"experiment\":\"$exp\",\"threshold\":60}")
  BYTES=$(curl -s "$BASE_B/v1/reports/$K" | wc -c)
  [ "$BYTES" -gt 0 ] || { echo "$exp: empty report from degraded B" >&2; exit 1; }
done
echo "ok: B answers cold submissions with its peer dead"

kill -TERM $PID_B
wait $PID_B || { echo "node B did not drain cleanly" >&2; exit 1; }
trap - EXIT
echo "ok: fleet contract holds"
