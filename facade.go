// facade.go is the program-level half of the public API: assemble or
// load one OG64 binary, run the optimizer pipeline over it, and simulate
// it under a gating mode — the paper's flow (analyze → re-encode →
// optionally specialize → run) in a handful of calls. The experiment
// pipeline over the whole workload suite lives on Session (session.go).
package opgate

import (
	"fmt"
	"os"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
	"opgate/internal/workload"
)

// Program is one OG64 binary: instructions, functions, and initial data.
type Program = prog.Program

// RunResult is a functional execution's observable outcome.
type RunResult = emu.RunResult

// UarchConfig parameterises the out-of-order timing model (Table 2).
type UarchConfig = uarch.Config

// PowerParams are the per-structure energy coefficients.
type PowerParams = power.Params

// GatingMode selects how datapath bytes are gated during simulation.
type GatingMode = power.GatingMode

// The gating modes of the paper's evaluation: none (baseline), software
// (compiler widths), the two hardware compression schemes, and the two
// cooperative schemes combining both.
const (
	GateNone           = power.GateNone
	GateSoftware       = power.GateSoftware
	GateHWSize         = power.GateHWSize
	GateHWSignificance = power.GateHWSignificance
	GateCooperative    = power.GateCooperative
	GateCooperativeSig = power.GateCooperativeSig
)

// Workload is one registered benchmark (the paper's eight kernels plus
// any generated synthetics).
type Workload = workload.Workload

// InputClass selects a workload's input set.
type InputClass = workload.InputClass

// The paper's train/ref input methodology: profile on Train, evaluate on
// Ref.
const (
	Train = workload.Train
	Ref   = workload.Ref
)

// Workloads returns the built-in benchmarks in paper order.
func Workloads() []*Workload { return workload.All() }

// WorkloadByName resolves a benchmark or synthetic registry name.
func WorkloadByName(name string) (*Workload, error) { return workload.ByName(name) }

// Assemble parses OG64 assembly text into a program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// AssembleFile parses an assembly file.
func AssembleFile(path string) (*Program, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(b))
}

// Disassemble renders a program as assembly text.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// OptimizeOptions selects the analysis mode for Optimize.
type OptimizeOptions struct {
	// Conventional disables the useful-range (demanded-byte) analysis,
	// reproducing the paper's "conventional VRP" baseline.
	Conventional bool
	// SkipVerify disables the behavioural equivalence re-execution of
	// the re-encoded binary against the original.
	SkipVerify bool
}

// Optimized is the result of running the binary optimizer.
type Optimized struct {
	// Program is the re-encoded binary (narrow opcodes assigned).
	Program *Program
	// Analysis is the full VRP result (ranges, demands, widths).
	Analysis *vrp.Result
	// Original is the input binary.
	Original *Program
}

// Summary renders a one-line static width histogram.
func (o *Optimized) Summary() string {
	h := o.Analysis.StaticHistogram()
	t := float64(h.Total())
	if t == 0 {
		return "no width-bearing instructions"
	}
	return fmt.Sprintf("widths: 8b %.0f%%  16b %.0f%%  32b %.0f%%  64b %.0f%% (%d instructions)",
		100*float64(h.Count[0])/t, 100*float64(h.Count[1])/t,
		100*float64(h.Count[2])/t, 100*float64(h.Count[3])/t, int64(t))
}

// Optimize runs value range propagation over the program and returns the
// re-encoded binary, verifying behavioural equivalence unless disabled.
func Optimize(p *Program, opts OptimizeOptions) (*Optimized, error) {
	mode := vrp.Useful
	if opts.Conventional {
		mode = vrp.Conventional
	}
	r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	q := r.Apply()
	if !opts.SkipVerify {
		if err := emu.CheckEquivalence(p, q); err != nil {
			return nil, fmt.Errorf("opgate: re-encoded binary diverges: %w", err)
		}
	}
	return &Optimized{Program: q, Analysis: r, Original: p}, nil
}

// SpecializeOptions configures profile-guided specialization.
type SpecializeOptions struct {
	// Threshold is the VRS energy threshold (the paper's 110..30 nJ
	// sweep); zero means DefaultThreshold.
	Threshold float64
	// SkipVerify disables the behavioural equivalence check.
	SkipVerify bool
}

// Specialized is the result of the full VRS pipeline.
type Specialized struct {
	// Program is the transformed, re-encoded binary.
	Program *Program
	// Result carries the profiled points, clones and statistics.
	Result *vrs.Result
}

// Specialize profiles trainProg (same code layout, training input) and
// applies value range specialization to refProg.
func Specialize(trainProg, refProg *Program, opts SpecializeOptions) (*Specialized, error) {
	r, err := vrs.Specialize(trainProg, refProg, vrs.Options{Threshold: opts.Threshold})
	if err != nil {
		return nil, err
	}
	q := r.Apply()
	if !opts.SkipVerify {
		if err := emu.CheckEquivalence(refProg, q); err != nil {
			return nil, fmt.Errorf("opgate: specialized binary diverges: %w", err)
		}
	}
	return &Specialized{Program: q, Result: r}, nil
}

// Run executes a program functionally and returns its observable result.
func Run(p *Program) (*RunResult, error) { return emu.Execute(p) }

// SimOptions configures a timing+energy simulation.
type SimOptions struct {
	Gating GatingMode
	// Config overrides the Table 2 machine; nil uses the default.
	Config *UarchConfig
	// Params overrides the power coefficients; nil uses the default.
	Params *PowerParams
}

// Simulate runs the out-of-order timing model with the operand-gated
// power model and returns cycles, energy, and rates.
func Simulate(p *Program, opts SimOptions) (*uarch.Result, error) {
	cfg := uarch.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	params := power.DefaultParams()
	if opts.Params != nil {
		params = *opts.Params
	}
	return uarch.Run(p, cfg, params, opts.Gating)
}

// CompareGating simulates the same program under baseline (ungated) and a
// gated mode, returning the fractional energy and ED² savings.
func CompareGating(p *Program, mode GatingMode) (energySaving, ed2Saving float64, err error) {
	base, err := Simulate(p, SimOptions{Gating: GateNone})
	if err != nil {
		return 0, 0, err
	}
	g, err := Simulate(p, SimOptions{Gating: mode})
	if err != nil {
		return 0, 0, err
	}
	_, energySaving = power.Savings(base.Energy, g.Energy)
	ed2Saving = power.EnergyDelay2Saving(base.Energy.Total(), base.Cycles, g.Energy.Total(), g.Cycles)
	return energySaving, ed2Saving, nil
}
