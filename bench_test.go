package opgate

// The repository-level benchmark harness: one benchmark per table and
// figure of the paper's evaluation (run them all with
// `go test -bench=. -benchmem`), plus micro-benchmarks for the analysis
// and simulation substrates. The table/figure benchmarks run the suite in
// quick mode (train inputs) and report the headline metric of each
// experiment as a custom unit so the regenerated result is visible in the
// benchmark log.

import (
	"context"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/harness"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
	"opgate/internal/workload"
)

// benchSuite is shared across benchmarks; its caches make each experiment
// incremental after the first run.
var benchSuite = harness.NewSuite(true)

// benchCtx: benchmarks never cancel mid-run.
var benchCtx = context.Background()

func BenchmarkTable1ALUEnergy(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		rep := benchSuite.Table1()
		v = rep.MustValue("src 64", "8")
	}
	b.ReportMetric(v, "nJ-saved-64to8")
}

func BenchmarkTable3OpDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Table3(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("ADD", "% of instrs"), "pct-ADD")
	}
}

func BenchmarkFigure2WidthHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure2(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("Proposed VRP", "64 bits"), "pct-64bit-proposed")
	}
}

func BenchmarkFigure3VRPEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure3(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("VRP", "Processor"), "pct-energy-saved")
	}
}

func BenchmarkFigure4ProfiledPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure4(benchCtx, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("Average", "no benefit"), "pct-filtered")
	}
}

func BenchmarkFigure5StaticSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure5(benchCtx, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("m88ksim", "eliminated"), "pct-eliminated-m88ksim")
	}
}

func BenchmarkFigure6RuntimeSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure6(benchCtx, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("Average", "specialized"), "pct-specialized")
	}
}

func BenchmarkFigure7WidthByMechanism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure7(benchCtx, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("VRP", "64 bits"), "pct-64bit-vrp")
	}
}

func BenchmarkFigure8EnergySavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure8(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("AVG", "VRS 50nJ"), "pct-energy-vrs50")
	}
}

func BenchmarkFigure9PerStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure9(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("VRS 50nJ", "FU"), "pct-FU-vrs50")
	}
}

func BenchmarkFigure10ExecTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure10(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("AVG", "VRS 50nJ"), "pct-time-saved")
	}
}

func BenchmarkFigure11EnergyDelay2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure11(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("AVG", "VRS 50nJ"), "pct-ed2-vrs50")
	}
}

func BenchmarkFigure12DataSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure12(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("occurrence", "1"), "pct-1byte")
	}
}

func BenchmarkFigure13Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure13(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("AVG", "significance compression"), "pct-energy-hwsig")
	}
}

func BenchmarkFigure14HardwarePerStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure14(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("significance compression", "Processor"), "pct-proc-hwsig")
	}
}

func BenchmarkFigure15Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.Figure15(benchCtx, 50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("AVG", "VRS 50 + hdw significance"), "pct-ed2-combined")
	}
}

func BenchmarkAblationOpcodeSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.AblationOpcodeSets(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("paper extension set", "energy saved"), "pct-energy-paperset")
	}
}

func BenchmarkAblationAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := benchSuite.AblationAnalysis(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.MustValue("full (proposed VRP)", "64-bit share"), "pct-64bit-full")
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

func BenchmarkVRPAnalyze(b *testing.B) {
	w, _ := workload.ByName("gcc")
	p, _ := w.Build(workload.Ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vrp.Analyze(p, vrp.Options{Mode: vrp.Useful}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVRSSpecialize(b *testing.B) {
	w, _ := workload.ByName("m88ksim")
	trainP, _ := w.Build(workload.Train)
	refP, _ := w.Build(workload.Ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vrs.Specialize(trainP, refP, vrs.Options{Threshold: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// countingSink tallies deliveries without per-event work: the cheapest
// possible batch consumer, isolating the substrate's delivery cost.
type countingSink struct{ events int64 }

func (c *countingSink) Consume(batch []emu.Event) { c.events += int64(len(batch)) }

// BenchmarkEmuMIPS reports emulated millions-of-instructions-per-second,
// the metric that bounds every experiment in the evaluation. Sub-benchmarks
// cover the raw dispatch loop (no sink), the batched sink, and the
// per-event FuncSink adapter. The pre-refactor substrate (closure-per-step
// + per-event callback) measured 36.1 MIPS on the same workload/machine
// shape; the batched sink must stay ≥3× that.
func BenchmarkEmuMIPS(b *testing.B) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	variants := []struct {
		name string
		sink func() emu.Sink
	}{
		{"raw", func() emu.Sink { return nil }},
		{"batch", func() emu.Sink { return new(countingSink) }},
		{"callback", func() emu.Sink {
			var n int64
			return emu.FuncSink(func(emu.Event) { n++ })
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			m := emu.New(p)
			m.Sink = v.sink()
			var dyn int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				m.Fuel = emu.DefaultFuel
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				dyn += m.Dyn
			}
			b.ReportMetric(float64(dyn)/b.Elapsed().Seconds()/1e6, "MIPS")
		})
	}
}

// BenchmarkTraceReplayMIPS reports the speed of streaming a captured
// retirement trace back out, in emulated-millions-of-instructions per
// second: the rate every re-simulation of a traced variant enjoys instead
// of a fresh ~125 MIPS emulation. Sub-benchmarks cover Event replay (the
// Sink-compatible path the timing model consumes) and packed-record
// streaming (the zero-materialisation path of histograms and profilers).
func BenchmarkTraceReplayMIPS(b *testing.B) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("events", func(b *testing.B) {
		sink := new(countingSink)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Replay(sink)
		}
		b.ReportMetric(float64(tr.Len()*int64(b.N))/b.Elapsed().Seconds()/1e6, "MIPS")
	})
	b.Run("records", func(b *testing.B) {
		// A representative packed consumer: scan the op/width columns
		// (what the width histogram does), no Event materialisation.
		var n, wsum int64
		sink := emu.RecFunc(func(batch emu.RecBatch) {
			for i, op := range batch.Op {
				if isa.Op(op) != isa.OpHALT {
					wsum += int64(batch.WBytes[i])
				}
			}
			n += int64(batch.Len())
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Records(sink)
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "MIPS")
		_ = wsum
	})
}

// benchFigureMatrix runs a cold suite experiment fused and unfused.
func benchFigureMatrix(b *testing.B, run func(s *harness.Suite) error) {
	for _, cfg := range []struct {
		name    string
		unfused bool
	}{{"unfused", true}, {"fused", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := harness.NewSuite(true)
				s.Unfused = cfg.unfused
				if err := run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3Matrix measures the cold Figure 3 matrix (every
// workload built, analysed, emulated and simulated for the base and VRP
// variants) under the fused trace pipeline vs the pre-trace one. Figure 3
// alone consumes one mode per variant, so here fused mostly measures the
// capture investment (packing + chunk allocation, ~25-30% on this
// matrix); every later experiment on the same suite then replays for
// free — BenchmarkFigureFamilyMatrix shows that payoff.
func BenchmarkFigure3Matrix(b *testing.B) {
	benchFigureMatrix(b, func(s *harness.Suite) error {
		_, err := s.Figure3(benchCtx)
		return err
	})
}

// BenchmarkFigureFamilyMatrix measures the cold Figure 3+8 matrices plus
// the experiments that reuse the same traces and fused mode families
// (width histograms of Figures 2/7, the hardware and cooperative modes of
// Figures 13/14/15): the evaluation's whole energy matrix. This is where
// "trace once, simulate many" pays — each variant is emulated once and
// timed once for its entire mode family.
func BenchmarkFigureFamilyMatrix(b *testing.B) {
	benchFigureMatrix(b, func(s *harness.Suite) error {
		if _, err := s.Figure2(benchCtx); err != nil {
			return err
		}
		if _, err := s.Figure3(benchCtx); err != nil {
			return err
		}
		if _, err := s.Figure7(benchCtx, 50); err != nil {
			return err
		}
		if _, err := s.Figure8(benchCtx); err != nil {
			return err
		}
		if _, err := s.Figure13(benchCtx); err != nil {
			return err
		}
		if _, err := s.Figure14(benchCtx); err != nil {
			return err
		}
		_, err := s.Figure15(benchCtx, 50)
		return err
	})
}

// BenchmarkSuiteParallel measures the cached-cold Figure 3 matrix (every
// workload built, analysed, and simulated twice) sequentially vs fanned
// out over the full worker pool, making the suite-level scaling visible
// in the bench log.
func BenchmarkSuiteParallel(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := harness.NewSuite(true)
				s.Workers = cfg.workers
				if _, err := s.Figure3(benchCtx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThresholdSweep measures the single-pass threshold sweep
// against its pre-sweep equivalent — independent per-threshold runs on
// fresh suites. The sweep leg profiles each workload exactly once for
// the whole paper grid (asserted via the TrainEmulations probe); the
// perthreshold leg repays the train emulation and baseline analysis at
// every grid point. Both report grid throughput as cells/s.
func BenchmarkThresholdSweep(b *testing.B) {
	grid := harness.Thresholds
	b.Run("sweep", func(b *testing.B) {
		var trains int64
		for i := 0; i < b.N; i++ {
			s := harness.NewSuite(true)
			if _, err := s.Sweep(benchCtx, "fig4", grid); err != nil {
				b.Fatal(err)
			}
			trains = s.TrainEmulations()
			if want := int64(len(s.Names())); trains != want {
				b.Fatalf("sweep performed %d train emulations, want %d", trains, want)
			}
		}
		b.ReportMetric(float64(len(grid)*b.N)/b.Elapsed().Seconds(), "cells/s")
		b.ReportMetric(float64(trains), "train-emus")
	})
	b.Run("perthreshold", func(b *testing.B) {
		var trains int64
		for i := 0; i < b.N; i++ {
			trains = 0
			for _, th := range grid {
				s := harness.NewSuite(true)
				if _, err := s.RunExperiment(benchCtx, "fig4", th); err != nil {
					b.Fatal(err)
				}
				trains += s.TrainEmulations()
			}
		}
		b.ReportMetric(float64(len(grid)*b.N)/b.Elapsed().Seconds(), "cells/s")
		b.ReportMetric(float64(trains), "train-emus")
	})
}

func BenchmarkEmulator(b *testing.B) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	res, _ := emu.Execute(p)
	b.SetBytes(res.Dyn) // report emulated instructions as throughput
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emu.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUarchSim(b *testing.B) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	cfg := uarch.DefaultConfig()
	params := power.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Run(p, cfg, params, power.GateSoftware); err != nil {
			b.Fatal(err)
		}
	}
}
