package opgate

import (
	"bytes"
	"context"
	"testing"

	"opgate/internal/store"
)

// paperGrid is the VRS threshold sweep of the paper's Figures 9/10.
var paperGrid = []float64{110, 90, 70, 50, 30}

// TestSessionSweepMatchesAtThresholdRuns is the PR's acceptance probe:
// Session.Sweep over the paper grid is bit-identical, cell for cell, to
// independent AtThreshold runs — while paying exactly one VRS train
// emulation per workload for the entire grid.
func TestSessionSweepMatchesAtThresholdRuns(t *testing.T) {
	ctx := context.Background()
	swept, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := swept.Sweep(ctx, "fig6", paperGrid...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != len(paperGrid) {
		t.Fatalf("sweep returned %d cells for %d thresholds", len(sw.Cells), len(paperGrid))
	}
	for i, th := range paperGrid {
		want, err := plain.Run(ctx, "fig6", AtThreshold(th))
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeReports([]*Report{sw.Cells[i]})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := EncodeReports([]*Report{want})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp) {
			t.Errorf("sweep cell at threshold %g is not byte-identical to AtThreshold(%g)", th, th)
		}
	}
	// One train pass per workload for the whole five-point grid.
	if got := swept.TrainEmulations(); got != 8 {
		t.Errorf("sweep session performed %d train emulations, want 8 (one per workload)", got)
	}
}

// TestSessionSweepStoreReusesCells: with a store attached, sweep cells
// are content-addressed like single-threshold reports — a warm rerun
// computes nothing, and a grown grid recomputes only its missing cells.
func TestSessionSweepStoreReusesCells(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	subgrid := []float64{110, 50}

	sess1, err := NewSession(WithQuick(true), WithStoreDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess1.Sweep(ctx, "fig4", subgrid...)
	if err != nil {
		t.Fatal(err)
	}

	// Warm rerun in a fresh process stand-in: every cell served from the
	// store, zero emulations of any kind.
	sess2, err := NewSession(WithQuick(true), WithStoreDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sess2.Sweep(ctx, "fig4", subgrid...)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(warm) {
		t.Error("warm sweep differs from the cold one")
	}
	if tr, em := sess2.TrainEmulations(), sess2.Emulations(); tr != 0 || em != 0 {
		t.Errorf("warm sweep emulated: train=%d emu=%d, want 0/0", tr, em)
	}

	// Growing the grid recomputes only the missing cell: two store hits,
	// one miss.
	sess3, err := NewSession(WithQuick(true), WithStoreDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	grown, err := sess3.Sweep(ctx, "fig4", 110, 65, 50)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := sess3.StoreStats()
	if !ok {
		t.Fatal("session lost its store")
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("grown grid: hits=%d misses=%d, want 2 hits (cached cells) and 1 miss", st.Hits, st.Misses)
	}
	for _, th := range subgrid {
		cached, ok1 := first.Cell(th)
		regrown, ok2 := grown.Cell(th)
		if !ok1 || !ok2 || !cached.Equal(regrown) {
			t.Errorf("cached cell at %g changed when the grid grew", th)
		}
	}
	if _, ok := grown.Cell(65); !ok {
		t.Error("grown grid is missing its new cell")
	}

	// The cell address IS the single-threshold report address — the
	// identity that lets opgated's warm check serve a sweep-stored cell
	// to a plain AtThreshold job, and vice versa. (The sweep document
	// itself lives under a distinct key domain.)
	if sess3.ReportKey("fig4", AtThreshold(65)) == sess3.SweepKey("fig4", 65) {
		t.Error("sweep document key collides with a single-cell report key")
	}
	blob, ok := sess3.suite.Store.Get(store.Key(sess3.ReportKey("fig4", AtThreshold(65))))
	if !ok {
		t.Fatal("sweep did not store its fresh cell under the single-threshold ReportKey")
	}
	rs, err := DecodeReports(blob)
	if err != nil || len(rs) != 1 {
		t.Fatalf("stored cell blob is not a single report: %v", err)
	}
	if cell, _ := grown.Cell(65); !rs[0].Equal(cell) {
		t.Error("stored cell differs from the swept one")
	}
}

// TestSessionSweepValidation: session-level sweeps reject what the
// harness rejects, before touching any store.
func TestSessionSweepValidation(t *testing.T) {
	ctx := context.Background()
	sess, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Sweep(ctx, "fig99", 110, 50); err == nil {
		t.Error("Sweep accepted an unknown experiment")
	}
	for name, grid := range map[string][]float64{
		"empty":     {},
		"zero":      {50, 0},
		"duplicate": {110, 110},
	} {
		if _, err := sess.Sweep(ctx, "fig4", grid...); err == nil {
			t.Errorf("Sweep accepted %s grid %v", name, grid)
		}
	}
}

// TestSessionSweepKey: the sweep document address is sensitive to every
// keyed dimension, including the grid itself (order matters — the grid
// is the document's axis).
func TestSessionSweepKey(t *testing.T) {
	sess, err := NewSession(WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	base := sess.SweepKey("fig6", 110, 50)
	for name, other := range map[string]string{
		"experiment": sess.SweepKey("fig7", 110, 50),
		"grid":       sess.SweepKey("fig6", 110, 50, 30),
		"order":      sess.SweepKey("fig6", 50, 110),
	} {
		if other == base {
			t.Errorf("sweep key insensitive to %s", name)
		}
	}
}

// TestWithSyntheticsDeduplicates is the dedupe bugfix's test: repeating
// a synthetic name — within one option or across several — yields a
// single registration, and the report key matches the deduplicated
// spelling of the same set.
func TestWithSyntheticsDeduplicates(t *testing.T) {
	name := "syn:narrow/small/1"
	dup, err := NewSession(WithQuick(true),
		WithSynthetics(name, name), WithSynthetics(name))
	if err != nil {
		t.Fatal(err)
	}
	if got := dup.Synthetics(); len(got) != 1 || got[0] != name {
		t.Fatalf("synthetics after duplicate registration = %v, want [%s]", got, name)
	}
	single, err := NewSession(WithQuick(true), WithSynthetics(name))
	if err != nil {
		t.Fatal(err)
	}
	if dup.ReportKey("fig8") != single.ReportKey("fig8") {
		t.Error("duplicate registration forked the report key")
	}
	// Order of distinct names is preserved.
	two, err := NewSession(WithQuick(true),
		WithSynthetics("syn:narrow/small/2", name, "syn:narrow/small/2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := two.Synthetics(); len(got) != 2 || got[0] != "syn:narrow/small/2" || got[1] != name {
		t.Fatalf("dedupe is not order-preserving: %v", got)
	}
}
