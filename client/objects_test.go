package client

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opgate/internal/store"
)

// objectKey derives a syntactically valid store key for tests.
func objectKey(label string) store.Key {
	return store.ReportKey(label, false, 50, nil, store.Hash{})
}

// objectServer is a minimal in-memory /v1/objects peer whose fault
// behavior is scriptable per request — the HTTP counterpart of the
// FaultFS chaos suite.
type objectServer struct {
	mu      sync.Mutex
	objects map[string][]byte

	// intercept, when set, handles the request instead of the store;
	// returning false falls through to normal serving.
	intercept func(w http.ResponseWriter, r *http.Request) bool
}

func newObjectServer() *objectServer {
	return &objectServer{objects: map[string][]byte{}}
}

func (o *objectServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.intercept != nil && o.intercept(w, r) {
		return
	}
	key := r.PathValue("key")
	o.mu.Lock()
	defer o.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		data, ok := o.objects[key]
		if !ok {
			http.Error(w, `{"error":"no object"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
	case http.MethodPut:
		data := make([]byte, 0)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			data = append(data, buf[:n]...)
			if err != nil {
				break
			}
		}
		o.objects[key] = data
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		delete(o.objects, key)
		w.WriteHeader(http.StatusNoContent)
	}
}

func (o *objectServer) put(key store.Key, data []byte) {
	o.mu.Lock()
	o.objects[string(key)] = data
	o.mu.Unlock()
}

func (o *objectServer) get(key store.Key) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	data, ok := o.objects[string(key)]
	return data, ok
}

func newObjectPeer(t *testing.T, o *objectServer) (*httptest.Server, *ObjectBackend) {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/objects/{key}", o)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	b, err := NewObjectBackend(ts.URL,
		ObjectTimeout(2*time.Second),
		ObjectRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	return ts, b
}

// TestObjectBackendRoundTrip: the plain contract over a healthy peer.
func TestObjectBackendRoundTrip(t *testing.T) {
	o := newObjectServer()
	_, b := newObjectPeer(t, o)
	key := objectKey("roundtrip")

	if _, ok := b.Get(key); ok {
		t.Fatal("hit on an empty peer")
	}
	if err := b.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if data, ok := b.Get(key); !ok || string(data) != "payload" {
		t.Fatalf("got %q/%v", data, ok)
	}
	b.Delete(key)
	if _, ok := b.Get(key); ok {
		t.Fatal("deleted object still served")
	}
	st := b.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.PutErrors != 0 {
		t.Fatalf("stats drifted: %+v", st)
	}
}

// TestObjectBackendPeerDownIsMiss: a connection-refused peer reads as a
// miss, never an error — and Get returns within the operation deadline
// instead of hanging on retries.
func TestObjectBackendPeerDownIsMiss(t *testing.T) {
	// Grab a port that refuses connections: listen, then close.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	b, err := NewObjectBackend(url, ObjectTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := b.Get(objectKey("down")); ok {
		t.Fatal("hit from a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-peer miss took %s", elapsed)
	}
	if err := b.Put(objectKey("down"), []byte("x")); err == nil {
		t.Fatal("put to a dead peer reported success")
	}
	st := b.Stats()
	if st.Misses != 1 || st.PutErrors != 1 {
		t.Fatalf("fault accounting: %+v", st)
	}
}

// TestObjectBackendTimeoutIsMiss: a peer that accepts but never answers
// within the deadline is a miss, bounded by ObjectTimeout.
func TestObjectBackendTimeoutIsMiss(t *testing.T) {
	o := newObjectServer()
	release := make(chan struct{})
	o.intercept = func(w http.ResponseWriter, r *http.Request) bool {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		return true
	}
	ts := httptest.NewServer(func() http.Handler {
		mux := http.NewServeMux()
		mux.Handle("/v1/objects/{key}", o)
		return mux
	}())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })
	b, err := NewObjectBackend(ts.URL, ObjectTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := b.Get(objectKey("slow")); ok {
		t.Fatal("hit from a hung peer")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung-peer miss took %s, want ~150ms", elapsed)
	}
}

// TestObjectBackend5xxDegradesAndRecovers: server-side 5xx responses are
// retried, then degrade to a miss; the moment the peer recovers the same
// backend serves hits again.
func TestObjectBackend5xxDegradesAndRecovers(t *testing.T) {
	o := newObjectServer()
	var failing atomic.Bool
	o.intercept = func(w http.ResponseWriter, r *http.Request) bool {
		if failing.Load() {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return true
		}
		return false
	}
	_, b := newObjectPeer(t, o)
	key := objectKey("5xx")
	o.put(key, []byte("stored"))

	failing.Store(true)
	if _, ok := b.Get(key); ok {
		t.Fatal("hit through a 500-ing peer")
	}
	if err := b.Put(key, []byte("new")); err == nil {
		t.Fatal("put through a 500-ing peer reported success")
	}
	failing.Store(false)
	if data, ok := b.Get(key); !ok || string(data) != "stored" {
		t.Fatal("backend did not recover once the peer did")
	}
}

// TestObjectBackendTornResponseIsMiss: a response that dies mid-body —
// Content-Length promised more than arrived — must read as a miss, not
// serve a truncated object as a hit.
func TestObjectBackendTornResponseIsMiss(t *testing.T) {
	o := newObjectServer()
	o.intercept = func(w http.ResponseWriter, r *http.Request) bool {
		if r.Method != http.MethodGet {
			return false
		}
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("only a fragment"))
		// Returning without the rest: the connection closes short.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // tear the connection mid-body
	}
	_, b := newObjectPeer(t, o)
	if data, ok := b.Get(objectKey("torn")); ok {
		t.Fatalf("torn response served as a hit: %q", data)
	}
	if st := b.Stats(); st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("torn response accounting: %+v", st)
	}
}

// TestObjectBackendPutRetriesAcrossRestart: a peer that drops the
// connection mid-PUT (restart) is covered by the idempotent retry — the
// replayed PUT lands once the peer is back.
func TestObjectBackendPutRetriesAcrossRestart(t *testing.T) {
	o := newObjectServer()
	var drops atomic.Int64
	drops.Store(2) // tear the first two attempts mid-request
	o.intercept = func(w http.ResponseWriter, r *http.Request) bool {
		if r.Method == http.MethodPut && drops.Add(-1) >= 0 {
			panic(http.ErrAbortHandler)
		}
		return false
	}
	_, b := newObjectPeer(t, o)
	key := objectKey("restart")
	if err := b.Put(key, []byte("survives the restart")); err != nil {
		t.Fatalf("put did not survive the torn attempts: %v", err)
	}
	if data, ok := o.get(key); !ok || string(data) != "survives the restart" {
		t.Fatalf("peer holds %q/%v after the replayed put", data, ok)
	}
	if st := b.Stats(); st.Puts != 1 || st.PutErrors != 0 {
		t.Fatalf("put accounting after retries: %+v", st)
	}
}

// TestObjectBackendAsTieredRemote composes the HTTP backend as a Tiered
// remote tier end to end: write-back replicates to the peer, a local
// eviction reads through it, and killing the peer degrades every read
// to a local miss with zero errors surfaced.
func TestObjectBackendAsTieredRemote(t *testing.T) {
	o := newObjectServer()
	ts, b := newObjectPeer(t, o)
	local, err := store.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTiered(local, b, 8)
	defer tiered.Close()

	key := objectKey("composed")
	if err := tiered.Put(key, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	tiered.Flush()
	if data, ok := o.get(key); !ok || string(data) != "shared" {
		t.Fatal("write-back never reached the HTTP peer")
	}
	local.Delete(key)
	if data, ok := tiered.Get(key); !ok || string(data) != "shared" {
		t.Fatal("read-through over HTTP failed")
	}

	ts.Close() // the peer dies
	other := objectKey("after-death")
	if _, ok := tiered.Get(other); ok {
		t.Fatal("hit from a dead remote tier")
	}
	if err := tiered.Put(other, []byte("local only")); err != nil {
		t.Fatalf("local put failed because the remote died: %v", err)
	}
	if data, ok := tiered.Get(other); !ok || string(data) != "local only" {
		t.Fatal("local tier broken after remote death")
	}
	tiered.Flush()
	if st := tiered.Stats(); st.WriteBackErrors == 0 {
		t.Fatalf("dead-peer write-back not accounted: %+v", st)
	}
}

// TestObjectBackendConcurrent hammers one backend from many goroutines
// against a healthy peer — the contract (whole objects or misses) under
// the race detector.
func TestObjectBackendConcurrent(t *testing.T) {
	o := newObjectServer()
	_, b := newObjectPeer(t, o)
	blob := []byte("concurrent payload")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := objectKey(fmt.Sprintf("k%d", (w+i)%5))
				switch i % 3 {
				case 0:
					if err := b.Put(key, blob); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if data, ok := b.Get(key); ok && string(data) != string(blob) {
						t.Error("partial or foreign object served")
						return
					}
				default:
					b.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}
