package client

import (
	"context"
	"net/http"
	"net/url"
)

// TraceInfo is the server's description of an imported trace workload —
// the POST /v1/traces response, and one row of GET /v1/traces joined
// with its metadata.
type TraceInfo struct {
	Name      string `json:"name"`       // registry name, "trace:<bare>"
	Class     string `json:"class"`      // input class the records stand in for
	Identity  string `json:"identity"`   // hex skeleton identity
	Events    int    `json:"events"`     // retired-event count
	StaticIns int    `json:"static_ins"` // skeleton instruction count
}

// UploadTrace imports a codec-framed trace blob on the server under the
// given registry name ("trace:" prefix optional) and input class
// ("train" or "ref"; "" = train). The server validates the blob end to
// end before storing anything; oversized bodies come back as a 413
// *APIError. The import is content-addressed and idempotent, so
// transport faults are retried.
func (c *Client) UploadTrace(ctx context.Context, name, class string, blob []byte) (TraceInfo, error) {
	q := url.Values{"name": {name}}
	if class != "" {
		q.Set("class", class)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/traces?"+q.Encode(), blob, true, retryableStatus)
	if err != nil {
		return TraceInfo{}, err
	}
	var info TraceInfo
	if err := decodeInto(resp, &info); err != nil {
		return TraceInfo{}, err
	}
	return info, nil
}

// ListTraces returns the server's imported-trace index.
func (c *Client) ListTraces(ctx context.Context) ([]TraceInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/traces", nil, true, retryableStatus)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Traces []TraceInfo `json:"traces"`
	}
	if err := decodeInto(resp, &payload); err != nil {
		return nil, err
	}
	return payload.Traces, nil
}
