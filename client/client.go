// Package client is the Go client for the opgated simulation service: a
// thin, dependency-free HTTP wrapper over the job API (submit, poll,
// follow, cancel, fetch reports) with the failure semantics a production
// caller needs baked in — context-aware exponential backoff with jitter,
// Retry-After honored on 503 (the server's queue-full and drain
// responses), idempotent GET/DELETE calls retried across transient 5xx
// and transport faults, and reports decoded through the opgate canonical
// codec.
//
//	c, _ := client.New("http://localhost:8080")
//	res, err := c.Run(ctx, client.Request{Experiment: "fig8"})
//	// res.Reports for single-threshold requests, res.Sweep for grids.
//
// POST submissions are deliberately retried only on 503: the server
// coalesces identical live submissions onto one job, so a replay after a
// refused attempt is safe, but a POST that died mid-flight with an
// unknown outcome is not replayed on other errors.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"opgate"
)

// RetryPolicy shapes the client's backoff. The zero value selects the
// defaults noted on each field.
type RetryPolicy struct {
	MaxAttempts int           // attempts per call, including the first (default 5)
	BaseDelay   time.Duration // backoff before the second attempt (default 100ms)
	MaxDelay    time.Duration // backoff ceiling; Retry-After may exceed it (default 5s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay computes the backoff before attempt n (1-based: the wait after
// the nth attempt failed): exponential growth capped at MaxDelay, with
// equal jitter so a retrying fleet spreads out instead of thundering.
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// APIError is a non-2xx response from the service, after retries.
type APIError struct {
	Status  int    // HTTP status code
	Message string // the server's {"error": ...} body, when present
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("opgated: HTTP %d", e.Status)
	}
	return fmt.Sprintf("opgated: HTTP %d: %s", e.Status, e.Message)
}

// RetryAfterError is an *APIError whose response carried a parseable
// Retry-After header — the server's own estimate (from its observed job
// service times) of when capacity frees up. Callers implementing their
// own scheduling can honor the hint:
//
//	var ra *client.RetryAfterError
//	if errors.As(err, &ra) { time.Sleep(ra.RetryAfter) }
//
// errors.As with **APIError still matches (RetryAfterError unwraps to
// its embedded APIError), so existing status-code handling is unchanged.
type RetryAfterError struct {
	APIError
	RetryAfter time.Duration // the server's backoff hint
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.APIError.Error(), e.RetryAfter)
}

func (e *RetryAfterError) Unwrap() error { return &e.APIError }

// Client calls one opgated base URL. It is safe for concurrent use.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the default backoff shape.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.policy = p } }

// New builds a client for the service at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) (*Client, error) {
	base := strings.TrimRight(baseURL, "/")
	if !strings.Contains(base, "://") {
		return nil, fmt.Errorf("client: base URL %q has no scheme", baseURL)
	}
	c := &Client{base: base, hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	c.policy = c.policy.withDefaults()
	return c, nil
}

// retryAfter parses a Retry-After header: delta-seconds or an HTTP date.
// ok is false when the header is absent or unparseable.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		return max(0, time.Until(at)), true
	}
	return 0, false
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableStatus reports whether a response status is worth another
// attempt for an idempotent call: transient server-side trouble.
func retryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusGatewayTimeout ||
		status == http.StatusInternalServerError
}

// do runs one API call with the retry loop: body is re-sent verbatim on
// every attempt, transport errors retry only when idempotent is set, and
// response statuses retry per retryStatus (nil means never). The caller
// owns the returned body.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, retryStatus func(int) bool) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !idempotent {
				return nil, err
			}
			lastErr = err
			wait = c.policy.delay(attempt)
		case retryStatus != nil && retryStatus(resp.StatusCode):
			lastErr = responseError(resp) // drains and closes the body
			wait = c.policy.delay(attempt)
			// A server-stated Retry-After overrides the computed backoff
			// in both directions: it knows its own drain and queue state.
			if ra, ok := retryAfter(resp); ok {
				wait = ra
			}
		default:
			return resp, nil
		}
		if attempt >= c.policy.MaxAttempts {
			return nil, lastErr
		}
		if err := sleep(ctx, wait); err != nil {
			return nil, errors.Join(err, lastErr)
		}
	}
}

// responseError drains a non-2xx response into an *APIError — or a
// *RetryAfterError when the response carried a usable Retry-After hint.
func responseError(resp *http.Response) error {
	defer resp.Body.Close()
	var payload struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &payload); err != nil || payload.Error == "" {
		payload.Error = strings.TrimSpace(string(body))
	}
	apiErr := APIError{Status: resp.StatusCode, Message: payload.Error}
	if ra, ok := retryAfter(resp); ok {
		return &RetryAfterError{APIError: apiErr, RetryAfter: ra}
	}
	return &apiErr
}

// decodeInto decodes a 2xx JSON response body; any other status becomes
// an *APIError.
func decodeInto(resp *http.Response, v any) error {
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return responseError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit enqueues an experiment request and returns the (possibly
// coalesced) job. Refused submissions — 503 from a full queue or a
// draining server — are retried with the server's Retry-After hint.
func (c *Client) Submit(ctx context.Context, req Request) (Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Job{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/experiments", body, false,
		func(status int) bool { return status == http.StatusServiceUnavailable })
	if err != nil {
		return Job{}, err
	}
	var j Job
	return j, decodeInto(resp, &j)
}

// Job fetches a job snapshot; transient failures are retried.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, true, retryableStatus)
	if err != nil {
		return Job{}, err
	}
	var j Job
	return j, decodeInto(resp, &j)
}

// Cancel asks the server to cancel a job (idempotent; retried).
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, true, retryableStatus)
	if err != nil {
		return Job{}, err
	}
	var j Job
	return j, decodeInto(resp, &j)
}

// Wait polls a job until it reaches a terminal status (or ctx ends),
// backing off from quick probes to a steady cadence. When a job the
// client has already observed turns 404 — a server restart that lost the
// job record (no journal, or a torn one) — Wait returns the last-known
// snapshot alongside the error, so the caller still holds the report key
// and can check the content-addressed store (Run does exactly that).
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	interval := 25 * time.Millisecond
	var last Job
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return last, err
		}
		last = j
		if j.Terminal() {
			return j, nil
		}
		if err := sleep(ctx, interval); err != nil {
			return j, err
		}
		interval = min(2*interval, time.Second)
	}
}

// Follow streams a job's NDJSON progress frames, invoking fn (when
// non-nil) per frame, until the job turns terminal. A dropped stream is
// transparently re-followed — the follow GET is idempotent — with the
// frames already seen suppressed, so fn observes each progress event once.
func (c *Client) Follow(ctx context.Context, id string, fn func(Job) error) (Job, error) {
	seen := 0
	var last Job
	for attempt := 1; ; attempt++ {
		resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?follow=1", nil, true, retryableStatus)
		if err != nil {
			return last, err
		}
		if resp.StatusCode != http.StatusOK {
			return last, responseError(resp)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		streamed := 0
		for sc.Scan() {
			var frame Job
			if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
				resp.Body.Close()
				return last, fmt.Errorf("client: bad follow frame: %w", err)
			}
			last = frame
			streamed++
			if streamed <= seen {
				continue // replayed on reconnect; already delivered
			}
			seen = streamed
			attempt = 1 // live progress resets the reconnect budget
			if fn != nil {
				if err := fn(frame); err != nil {
					resp.Body.Close()
					return last, err
				}
			}
			if frame.Terminal() {
				resp.Body.Close()
				return last, nil
			}
		}
		resp.Body.Close()
		if last.Terminal() {
			return last, nil
		}
		if err := ctx.Err(); err != nil {
			return last, err
		}
		if attempt >= c.policy.MaxAttempts {
			if err := sc.Err(); err != nil {
				return last, fmt.Errorf("client: follow stream: %w", err)
			}
			return last, fmt.Errorf("client: follow stream ended before job %s turned terminal", id)
		}
		if err := sleep(ctx, c.policy.delay(attempt)); err != nil {
			return last, err
		}
	}
}

// ReportBytes fetches the canonical encoded document stored under a
// report key (Job.ReportKey) — the exact bytes the server's store holds,
// whatever their schema; transient failures are retried. Reports and
// Sweep layer the two canonical codecs on top; ReportBytes itself is the
// byte-identity path (fleet forwarding replicates documents through it
// so no re-encode can perturb them).
func (c *Client) ReportBytes(ctx context.Context, key string) ([]byte, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		blob, err := c.reportBytesOnce(ctx, key)
		if err == nil {
			return blob, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryableStatus(apiErr.Status) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, errors.Join(ctx.Err(), err)
		}
		lastErr = err
		if attempt >= c.policy.MaxAttempts {
			return nil, lastErr
		}
		if err := sleep(ctx, c.policy.delay(attempt)); err != nil {
			return nil, errors.Join(err, lastErr)
		}
	}
}

func (c *Client) reportBytesOnce(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/reports/"+key, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Reports fetches and decodes the canonical report sequence stored under
// a report key (Job.ReportKey); transient failures are retried. A key
// holding a sweep document fails to decode here — use Sweep (or Run,
// which picks the codec by schema).
func (c *Client) Reports(ctx context.Context, key string) ([]*opgate.Report, error) {
	blob, err := c.ReportBytes(ctx, key)
	if err != nil {
		return nil, err
	}
	return opgate.DecodeReports(blob)
}

// Sweep fetches and decodes the threshold-sweep document stored under a
// sweep key (the ReportKey of a job submitted with Thresholds);
// transient failures are retried.
func (c *Client) Sweep(ctx context.Context, key string) (*opgate.SweepReport, error) {
	blob, err := c.ReportBytes(ctx, key)
	if err != nil {
		return nil, err
	}
	return opgate.DecodeSweep(blob)
}

// Result is a completed Run: the terminal job snapshot plus the decoded
// document under its report key — Reports for single-threshold requests,
// Sweep for requests carrying a Thresholds grid. Exactly one of the two
// is non-nil.
type Result struct {
	Job     Job
	Reports []*opgate.Report    // "opgate.reports/v1" documents
	Sweep   *opgate.SweepReport // "opgate.sweep/v1" documents
}

// decodeResult picks the canonical codec by schema: the reports codec
// first (the overwhelmingly common case), then the sweep codec.
func decodeResult(blob []byte) (*Result, error) {
	if reports, err := opgate.DecodeReports(blob); err == nil {
		return &Result{Reports: reports}, nil
	}
	sweep, err := opgate.DecodeSweep(blob)
	if err != nil {
		return nil, fmt.Errorf("client: report document matches no known schema: %w", err)
	}
	return &Result{Sweep: sweep}, nil
}

// Run is the whole round trip: submit, wait for a terminal status, and
// fetch the decoded result — Result.Reports for a single-threshold
// request, Result.Sweep for a Thresholds grid. A job that ends any way
// but "done" is an error naming the terminal status (and the server's
// recorded error).
//
// Run survives a full server restart: if the job vanishes mid-wait (404
// from a process that restarted without re-adopting it), Run falls back
// to fetching the report under the submission's content-addressed key —
// a server that finished the work before dying, or redid it after, still
// answers, and only a restart that genuinely lost the work surfaces an
// error.
func (c *Client) Run(ctx context.Context, req Request) (*Result, error) {
	j, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	key := j.ReportKey
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound && key != "" {
			if blob, rerr := c.ReportBytes(ctx, key); rerr == nil {
				if res, derr := decodeResult(blob); derr == nil {
					res.Job = j
					return res, nil
				}
			}
		}
		return nil, err
	}
	if j.Status != StatusDone {
		if j.Error != "" {
			return nil, fmt.Errorf("client: job %s ended %s: %s", j.ID, j.Status, j.Error)
		}
		return nil, fmt.Errorf("client: job %s ended %s", j.ID, j.Status)
	}
	blob, err := c.ReportBytes(ctx, j.ReportKey)
	if err != nil {
		return nil, err
	}
	res, err := decodeResult(blob)
	if err != nil {
		return nil, err
	}
	res.Job = j
	return res, nil
}
