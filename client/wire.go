package client

import "time"

// Request is the POST /v1/experiments body. Experiment names an entry of
// the server's experiment list (or "all"); Synthetic/Seed/Class widen the
// workload set with generated programs, in exactly the syntax of
// ogbench's -synthetic/-seed/-class flags.
type Request struct {
	Experiment string  `json:"experiment"`
	Threshold  float64 `json:"threshold,omitempty"` // VRS threshold; 0 means the server default
	// Thresholds turns the request into a threshold sweep of Experiment
	// (which must then name a single experiment, not "all"): one job
	// evaluating the whole grid with a shared train profile per workload.
	// Exclusive with Threshold.
	Thresholds []float64 `json:"thresholds,omitempty"`
	Synthetic  string    `json:"synthetic,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	Class      string    `json:"class,omitempty"`
	// Direct pins the job to the receiving node: a fleet member must
	// compute (or serve) it locally instead of forwarding it to the
	// ring owner. Set by opgated on peer-forwarded submissions — the
	// loop guard that makes mis-matched ring configurations degrade to
	// extra local work instead of a forwarding cycle.
	Direct bool `json:"direct,omitempty"`
}

// Job is the wire form of a server-side job, also used as the ?follow=1
// NDJSON stream frame. opgated constructs its job views from this exact
// type, so client and server cannot drift.
type Job struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Threshold  float64         `json:"threshold"`
	Synthetics []string        `json:"synthetics,omitempty"`
	Status     string          `json:"status"`
	ReportKey  string          `json:"report_key"`
	Error      string          `json:"error,omitempty"`
	Stack      string          `json:"stack,omitempty"` // recorded when a panic failed the job
	Created    time.Time       `json:"created"`
	Progress   []ProgressEvent `json:"progress"`
}

// ProgressEvent is one timestamped line of a job's progress log.
type ProgressEvent struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// The job status state machine: queued → running → one terminal status.
//
//	done     the report was rendered (or served from cache)
//	failed   the experiment errored or panicked (Error, maybe Stack)
//	timeout  the job exceeded the server's -job-timeout deadline
//	canceled DELETE /v1/jobs/{id} stopped it
//	aborted  the server drained while the job was still queued
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusTimeout  = "timeout"
	StatusCanceled = "canceled"
	StatusAborted  = "aborted"
)

// TerminalStatus reports whether a job status is final. The server's
// handlers and this client agree through this one predicate.
func TerminalStatus(status string) bool {
	switch status {
	case StatusDone, StatusFailed, StatusTimeout, StatusCanceled, StatusAborted:
		return true
	}
	return false
}

// Terminal reports whether the job has reached a final status.
func (j Job) Terminal() bool { return TerminalStatus(j.Status) }
