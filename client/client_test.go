package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"opgate"
)

// fastPolicy keeps unit-test backoffs tiny.
var fastPolicy = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func newClient(t *testing.T, ts *httptest.Server, opts ...Option) *Client {
	t.Helper()
	c, err := New(ts.URL, append([]Option{WithRetryPolicy(fastPolicy)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeJob(w http.ResponseWriter, status int, j Job) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(j)
}

// TestSubmitRetries503HonoringRetryAfter: refused submissions retry, and
// a server-stated Retry-After of 0 overrides the client's (deliberately
// huge) computed backoff — the call succeeds fast, proving the header won.
func TestSubmitRetries503HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"job queue full"}`, http.StatusServiceUnavailable)
			return
		}
		writeJob(w, http.StatusAccepted, Job{ID: "job-000001", Status: StatusQueued})
	}))
	defer ts.Close()

	c := newClient(t, ts, WithRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second, MaxDelay: 20 * time.Second}))
	start := time.Now()
	j, err := c.Submit(context.Background(), Request{Experiment: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000001" || calls.Load() != 3 {
		t.Fatalf("job %+v after %d calls, want job-000001 after 3", j, calls.Load())
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Retry-After: 0 was not honored: call took %s against a 10s base backoff", took)
	}
}

// TestSubmitNotRetriedOnOtherErrors: a 500 from POST is terminal — the
// submission outcome is unknown, so the client must not blindly replay.
func TestSubmitNotRetriedOnOtherErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	_, err := newClient(t, ts).Submit(context.Background(), Request{Experiment: "fig2"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("got %v, want APIError 500", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("500 POST was attempted %d times, want 1", calls.Load())
	}
}

// TestSubmitExhaustsRetryBudget: a persistently refusing server yields
// the last 503 as an APIError after exactly MaxAttempts tries.
func TestSubmitExhaustsRetryBudget(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := newClient(t, ts).Submit(context.Background(), Request{Experiment: "fig2"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want APIError 503", err)
	}
	if got := calls.Load(); got != int32(fastPolicy.MaxAttempts) {
		t.Fatalf("made %d attempts, want %d", got, fastPolicy.MaxAttempts)
	}
}

// TestGetRetriesTransientFaults: idempotent GETs ride out 5xx bursts and
// transport-level drops.
func TestGetRetriesTransientFaults(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
		case 2:
			// Transport fault: kill the connection mid-response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("hijack unsupported")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
		default:
			writeJob(w, http.StatusOK, Job{ID: r.PathValue("id"), Status: StatusDone})
		}
	}))
	defer ts.Close()

	j, err := newClient(t, ts).Job(context.Background(), "job-000007")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusDone || calls.Load() != 3 {
		t.Fatalf("job %+v after %d calls", j, calls.Load())
	}
}

// TestContextCancelsBackoff: a context deadline cuts through a long
// server-stated Retry-After instead of sleeping it out.
func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := newClient(t, ts).Submit(ctx, Request{Experiment: "fig2"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancellation took %s, backoff was not context-aware", took)
	}
}

// TestWaitPollsToTerminal: Wait keeps polling through non-terminal
// snapshots and returns the first terminal one.
func TestWaitPollsToTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status := StatusRunning
		if calls.Add(1) >= 3 {
			status = StatusDone
		}
		writeJob(w, http.StatusOK, Job{ID: "j", Status: status})
	}))
	defer ts.Close()

	j, err := newClient(t, ts).Wait(context.Background(), "j")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusDone || calls.Load() < 3 {
		t.Fatalf("wait ended %+v after %d polls", j, calls.Load())
	}
}

// TestFollowReconnects: a follow stream severed mid-job is transparently
// re-followed; every progress event is delivered exactly once and the
// final frame is terminal.
func TestFollowReconnects(t *testing.T) {
	var conns atomic.Int32
	frame := func(status, msg string) Job {
		return Job{ID: "j", Status: status, Progress: []ProgressEvent{{Time: time.Now(), Msg: msg}}}
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		if conns.Add(1) == 1 {
			// One frame, then the connection dies.
			_ = enc.Encode(frame(StatusQueued, "queued"))
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		// Reconnect: full replay, then progress to terminal.
		_ = enc.Encode(frame(StatusQueued, "queued"))
		_ = enc.Encode(frame(StatusRunning, "running"))
		_ = enc.Encode(frame(StatusDone, "done"))
	}))
	defer ts.Close()

	var msgs []string
	j, err := newClient(t, ts).Follow(context.Background(), "j", func(f Job) error {
		msgs = append(msgs, f.Progress[len(f.Progress)-1].Msg)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusDone {
		t.Fatalf("follow ended %q", j.Status)
	}
	if want := []string{"queued", "running", "done"}; fmt.Sprint(msgs) != fmt.Sprint(want) {
		t.Fatalf("frames delivered %v, want %v (no duplicates across reconnects)", msgs, want)
	}
	if conns.Load() != 2 {
		t.Fatalf("follow used %d connections, want 2", conns.Load())
	}
}

// TestFollowCallbackErrorAborts: fn's error stops the stream and is
// returned verbatim.
func TestFollowCallbackErrorAborts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		_ = enc.Encode(Job{ID: "j", Status: StatusRunning, Progress: []ProgressEvent{{Msg: "running"}}})
		_ = enc.Encode(Job{ID: "j", Status: StatusDone, Progress: []ProgressEvent{{Msg: "done"}}})
	}))
	defer ts.Close()

	boom := errors.New("enough")
	_, err := newClient(t, ts).Follow(context.Background(), "j", func(Job) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the callback's error", err)
	}
}

// TestTerminalStatusTable pins the status state machine's terminal set.
func TestTerminalStatusTable(t *testing.T) {
	for status, terminal := range map[string]bool{
		StatusQueued: false, StatusRunning: false,
		StatusDone: true, StatusFailed: true, StatusTimeout: true,
		StatusCanceled: true, StatusAborted: true,
		"": false, "unknown": false,
	} {
		if got := TerminalStatus(status); got != terminal {
			t.Errorf("TerminalStatus(%q) = %v, want %v", status, got, terminal)
		}
	}
}

// TestRetryAfterParsing covers both header forms and garbage.
func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d, ok := retryAfter(mk("7")); !ok || d != 7*time.Second {
		t.Fatalf("seconds form: %v %v", d, ok)
	}
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := retryAfter(mk(date)); !ok || d <= 0 || d > 3*time.Second {
		t.Fatalf("date form: %v %v", d, ok)
	}
	for _, bad := range []string{"", "soon", "-4"} {
		if _, ok := retryAfter(mk(bad)); ok {
			t.Fatalf("retryAfter accepted %q", bad)
		}
	}
}

// TestDelayShape: backoff grows from BaseDelay, never exceeds MaxDelay,
// and keeps at least half the nominal delay (equal jitter).
func TestDelayShape(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	for n := 1; n <= 40; n++ {
		nominal := min(p.BaseDelay<<(n-1), p.MaxDelay)
		if p.BaseDelay<<(n-1) <= 0 { // shift overflow far out on the curve
			nominal = p.MaxDelay
		}
		for i := 0; i < 20; i++ {
			d := p.delay(n)
			if d < nominal/2 || d > nominal {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", n, d, nominal/2, nominal)
			}
		}
	}
}

// TestNewValidatesBaseURL: a schemeless base is refused at construction.
func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := New("localhost:8080"); err == nil {
		t.Fatal("New accepted a schemeless base URL")
	}
}

// TestRetryAfterErrorTyped: a refused call whose response carried a
// parseable Retry-After surfaces as *RetryAfterError exposing the hint —
// and still matches *APIError, so status-code handling is unaffected.
func TestRetryAfterErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"shedding uncached work under load"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := newClient(t, ts, WithRetryPolicy(RetryPolicy{MaxAttempts: 1})).
		Submit(context.Background(), Request{Experiment: "fig2"})
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("got %v (%T), want *RetryAfterError", err, err)
	}
	if ra.RetryAfter != 7*time.Second || ra.Status != http.StatusServiceUnavailable {
		t.Fatalf("hint %s status %d, want 7s / 503", ra.RetryAfter, ra.Status)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("RetryAfterError does not unwrap to *APIError: %v", err)
	}
}

// TestRunSurvivesServerRestart: the job 404s mid-wait (a restart lost the
// job record), but the report exists under the submission's
// content-addressed key — Run falls back to the report store instead of
// failing.
func TestRunSurvivesServerRestart(t *testing.T) {
	blob, err := opgate.EncodeReports([]*opgate.Report{{ID: "fig2", Title: "restart survivor"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			writeJob(w, http.StatusAccepted, Job{ID: "job-000001", Status: StatusQueued, ReportKey: "cafe0123"})
		case r.URL.Path == "/v1/jobs/job-000001":
			// The restarted process never heard of the job.
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		case r.URL.Path == "/v1/reports/cafe0123":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(blob)
		default:
			http.Error(w, `{"error":"unexpected call"}`, http.StatusBadRequest)
		}
	}))
	defer ts.Close()

	res, err := newClient(t, ts).Run(context.Background(), Request{Experiment: "fig2"})
	if err != nil {
		t.Fatalf("Run did not survive the restart: %v", err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Title != "restart survivor" {
		t.Fatalf("Run returned %+v", res.Reports)
	}
}

// TestRunReportsGenuineLoss: when the restarted server lost both the job
// and the report, Run surfaces the original 404 instead of masking it.
func TestRunReportsGenuineLoss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			writeJob(w, http.StatusAccepted, Job{ID: "job-000001", Status: StatusQueued, ReportKey: "cafe0123"})
			return
		}
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	_, err := newClient(t, ts).Run(context.Background(), Request{Experiment: "fig2"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("got %v, want the job's 404", err)
	}
}
