package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestUploadTrace: the client sends the blob verbatim with the name and
// class in the query, and decodes the server's import description.
func TestUploadTrace(t *testing.T) {
	blob := []byte{0x4f, 0x47, 0x54, 0x52, 0x00, 0x01}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/traces" {
			t.Errorf("got %s %s", r.Method, r.URL.Path)
		}
		if r.URL.Query().Get("name") != "twin" || r.URL.Query().Get("class") != "train" {
			t.Errorf("query = %q", r.URL.RawQuery)
		}
		body, _ := io.ReadAll(r.Body)
		if string(body) != string(blob) {
			t.Errorf("body = %x", body)
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"name":"trace:twin","class":"train","identity":"ab","events":7,"static_ins":3}`))
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadTrace(context.Background(), "twin", "train", blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "trace:twin" || info.Class != "train" || info.Events != 7 || info.StaticIns != 3 {
		t.Errorf("info = %+v", info)
	}
}

// TestUploadTraceTooLarge: a 413 surfaces as a typed *APIError, not a
// retry loop — oversized is a permanent condition.
func TestUploadTraceTooLarge(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		_, _ = w.Write([]byte(`{"error":"trace body exceeds the cap"}`))
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.UploadTrace(context.Background(), "big", "", []byte("x"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("got %v, want 413 *APIError", err)
	}
	if calls != 1 {
		t.Errorf("413 was retried %d times", calls)
	}
}
