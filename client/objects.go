package client

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"opgate/internal/store"
)

// ObjectBackend is a store.Backend over a peer opgated's raw object API
// (GET/PUT/DELETE /v1/objects/{key}) — the remote tier of a fleet
// node's tiered store. It rides the same retry/backoff machinery as the
// job client but with a tighter default policy and a hard per-operation
// deadline: the store contract says a slow or broken peer must read as
// a cache miss, never as latency the simulation pipeline can feel.
// Every fault class — connection refused, timeout, 5xx, a torn response
// body — degrades to (nil, false) from Get; Put errors are surfaced for
// accounting but callers treat write-back as best-effort.
type ObjectBackend struct {
	c       *Client
	timeout time.Duration

	hits, misses, puts, putErrors atomic.Int64
}

// ObjectOption configures an ObjectBackend at construction.
type ObjectOption func(*objectConfig)

type objectConfig struct {
	timeout time.Duration
	hc      *http.Client
	policy  RetryPolicy
}

// ObjectTimeout bounds each object operation (default 2s). The deadline
// covers all retry attempts of the operation, not each attempt alone.
func ObjectTimeout(d time.Duration) ObjectOption {
	return func(cfg *objectConfig) { cfg.timeout = d }
}

// ObjectHTTPClient substitutes the underlying *http.Client.
func ObjectHTTPClient(hc *http.Client) ObjectOption {
	return func(cfg *objectConfig) { cfg.hc = hc }
}

// ObjectRetryPolicy replaces the backend's default backoff shape
// (3 attempts, 25ms base, 250ms ceiling — snappier than the job
// client's, because a miss is always an acceptable answer).
func ObjectRetryPolicy(p RetryPolicy) ObjectOption {
	return func(cfg *objectConfig) { cfg.policy = p }
}

// NewObjectBackend builds an object-tier backend for the opgated peer at
// baseURL.
func NewObjectBackend(baseURL string, opts ...ObjectOption) (*ObjectBackend, error) {
	cfg := objectConfig{
		timeout: 2 * time.Second,
		hc:      http.DefaultClient,
		policy: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := New(baseURL, WithHTTPClient(cfg.hc), WithRetryPolicy(cfg.policy))
	if err != nil {
		return nil, err
	}
	return &ObjectBackend{c: c, timeout: cfg.timeout}, nil
}

// BaseURL returns the peer base URL this backend talks to.
func (b *ObjectBackend) BaseURL() string { return b.c.base }

func (b *ObjectBackend) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), b.timeout)
}

// Get fetches the object stored under key from the peer. Anything but a
// whole 200 body within the deadline — absent, faulted, torn — is a
// miss.
func (b *ObjectBackend) Get(key store.Key) ([]byte, bool) {
	ctx, cancel := b.opCtx()
	defer cancel()
	resp, err := b.c.do(ctx, http.MethodGet, "/v1/objects/"+string(key), nil, true, retryableStatus)
	if err != nil {
		b.misses.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		b.misses.Add(1)
		return nil, false
	}
	// Read the whole body and cross-check Content-Length: a connection
	// that died mid-body must not serve a truncated object as a hit.
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || (resp.ContentLength >= 0 && int64(len(data)) != resp.ContentLength) {
		b.misses.Add(1)
		return nil, false
	}
	b.hits.Add(1)
	return data, true
}

// Put stores data under key on the peer. PUT is idempotent — the object
// under a content address is immutable — so transport faults are retried
// within the deadline (a peer restarting mid-PUT sees the replay).
func (b *ObjectBackend) Put(key store.Key, data []byte) error {
	ctx, cancel := b.opCtx()
	defer cancel()
	resp, err := b.c.do(ctx, http.MethodPut, "/v1/objects/"+string(key), data, true, retryableStatus)
	if err != nil {
		b.putErrors.Add(1)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b.putErrors.Add(1)
		return responseError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	b.puts.Add(1)
	return nil
}

// Delete removes the object stored under key on the peer (best-effort,
// like every Backend delete).
func (b *ObjectBackend) Delete(key store.Key) {
	ctx, cancel := b.opCtx()
	defer cancel()
	resp, err := b.c.do(ctx, http.MethodDelete, "/v1/objects/"+string(key), nil, true, retryableStatus)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// Stats returns the backend's traffic counters.
func (b *ObjectBackend) Stats() store.Stats {
	return store.Stats{
		Hits:      b.hits.Load(),
		Misses:    b.misses.Load(),
		Puts:      b.puts.Load(),
		PutErrors: b.putErrors.Load(),
	}
}
