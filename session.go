package opgate

import (
	"context"
	"fmt"
	"slices"

	"opgate/internal/harness"
	"opgate/internal/store"
	"opgate/internal/workload"
)

// DefaultThreshold is the paper's headline VRS cost threshold (nJ) —
// the default for sessions that do not set WithThreshold.
const DefaultThreshold = 50

// Session is the single programmatic entry point to the experiment
// pipeline: one configured evaluation envelope (input class, workload
// set, worker pool, persistent store) over the shared memoized suite
// that makes repeated experiments incremental. Construct it with
// functional options and drive it with Run/RunAll; results are
// structured Reports, rendered by any Renderer.
//
//	sess, _ := opgate.NewSession(opgate.WithQuick(true))
//	reports, _ := sess.RunAll(ctx)
//	opgate.TextRenderer{}.Render(os.Stdout, reports)
//
// A Session is safe for concurrent use: the suite underneath memoizes
// per-key with singleflight semantics, so concurrent runs coalesce
// instead of duplicating work.
type Session struct {
	suite     *harness.Suite
	threshold float64
}

// Option configures a Session at construction.
type Option func(*Session) error

// NewSession builds a session with the paper's machine parameters,
// evaluating on ref inputs at the default VRS threshold unless options
// say otherwise.
func NewSession(opts ...Option) (*Session, error) {
	s := &Session{suite: harness.NewSuite(false), threshold: DefaultThreshold}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, fmt.Errorf("opgate: %w", err)
		}
	}
	// Validated after all options ran, because functional options apply in
	// any order: WithSynthetics(trace...) before WithStore is fine, a
	// trace-backed workload with no store at the end is not — there would
	// be nothing to replay from.
	if s.suite.Store == nil {
		for _, name := range s.suite.Synthetics {
			if workload.IsTrace(name) {
				return nil, fmt.Errorf("opgate: workload %q is trace-backed and needs a store (WithStore or WithStoreDir)", name)
			}
		}
	}
	return s, nil
}

// WithQuick selects the train inputs for evaluation runs, trimming
// run time; the default (false) evaluates on ref inputs like the paper.
func WithQuick(quick bool) Option {
	return func(s *Session) error { s.suite.Quick = quick; return nil }
}

// WithWorkers bounds the per-workload fan-out of the experiment drivers;
// 0 means GOMAXPROCS, 1 reproduces a strictly sequential run.
func WithWorkers(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("workers %d: must be >= 0", n)
		}
		s.suite.Workers = n
		return nil
	}
}

// WithThreshold sets the session's default VRS specialization threshold
// (the paper sweeps 110..30 nJ); per-run AtThreshold overrides it.
func WithThreshold(nj float64) Option {
	return func(s *Session) error {
		if nj <= 0 {
			return fmt.Errorf("threshold %g: must be > 0", nj)
		}
		s.threshold = nj
		return nil
	}
}

// WithTraceBudget caps the packed-trace bytes cached per program variant;
// <= 0 means the emulator default. Over-budget variants fall back to live
// emulation — the budget never affects results, only caching.
func WithTraceBudget(bytes int64) Option {
	return func(s *Session) error { s.suite.TraceBudget = bytes; return nil }
}

// WithSynthetics appends generated workloads — registry names like
// "syn:narrow/small/7", typically from ExpandSynthetics — to the paper's
// eight benchmarks in every experiment. Unknown names fail construction.
// Duplicates (within one call or across repeated options) are dropped
// order-preserving, like ExpandSynthetics: a repeated name would
// otherwise duplicate report rows, double-weight the AVG row, and fork
// the report key away from the deduplicated spelling of the same set.
func WithSynthetics(names ...string) Option {
	return func(s *Session) error {
		for _, name := range names {
			if _, err := workload.ByName(name); err != nil {
				return err
			}
			if !slices.Contains(s.suite.Synthetics, name) {
				s.suite.Synthetics = append(s.suite.Synthetics, name)
			}
		}
		return nil
	}
}

// WithStore attaches a persistent content-addressed store (OpenStore):
// packed traces and reports survive the process, so warm sessions
// re-emulate nothing they have already seen.
func WithStore(st *Store) Option {
	return func(s *Session) error {
		if st == nil {
			return fmt.Errorf("WithStore: nil store")
		}
		s.suite.Store = st
		return nil
	}
}

// WithStoreDir is WithStore over a store opened (or created) at dir with
// a byte budget (0 = unlimited).
func WithStoreDir(dir string, limitBytes int64) Option {
	return func(s *Session) error {
		st, err := store.Open(dir, limitBytes)
		if err != nil {
			return err
		}
		s.suite.Store = st
		return nil
	}
}

// WithBackend is WithStore over any storage Backend — a directory tier,
// an HTTP object peer, a tiered composition, or a custom implementation.
// The backend is wrapped in the standard Store codec layer, so sessions
// see the same accelerator-only contract regardless of what holds the
// bytes.
func WithBackend(b Backend) Option {
	return func(s *Session) error {
		if b == nil {
			return fmt.Errorf("WithBackend: nil backend")
		}
		s.suite.Store = store.NewStore(b)
		return nil
	}
}

// RunOption adjusts one Run/RunAll/ReportKey call.
type RunOption func(*runParams)

type runParams struct{ threshold float64 }

// AtThreshold overrides the session's VRS threshold for one call.
func AtThreshold(nj float64) RunOption {
	return func(p *runParams) { p.threshold = nj }
}

func (s *Session) params(opts []RunOption) (runParams, error) {
	p := runParams{threshold: s.threshold}
	for _, opt := range opts {
		opt(&p)
	}
	// AtThreshold is the unvalidated back door around WithThreshold's
	// check; hold it to the same rule.
	if p.threshold <= 0 {
		return p, fmt.Errorf("opgate: threshold %g: must be > 0", p.threshold)
	}
	return p, nil
}

// ExperimentInfo describes one runnable experiment.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Experiments lists every experiment in the paper's presentation order.
func Experiments() []ExperimentInfo {
	exps := harness.Experiments()
	infos := make([]ExperimentInfo, len(exps))
	for i, e := range exps {
		infos[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return infos
}

// Experiments lists the experiments this session can run.
func (s *Session) Experiments() []ExperimentInfo { return Experiments() }

// Run regenerates one experiment as a structured report. Cancelling ctx
// stops scheduling per-workload work and returns the context's error.
func (s *Session) Run(ctx context.Context, id string, opts ...RunOption) (*Report, error) {
	p, err := s.params(opts)
	if err != nil {
		return nil, err
	}
	return s.suite.RunExperiment(ctx, id, p.threshold)
}

// RunAll regenerates every experiment in order — the sequence behind
// `ogbench -experiment all`.
func (s *Session) RunAll(ctx context.Context, opts ...RunOption) ([]*Report, error) {
	p, err := s.params(opts)
	if err != nil {
		return nil, err
	}
	return s.suite.RunAll(ctx, p.threshold)
}

// Sweep evaluates one experiment across a grid of VRS thresholds,
// returning the threshold-axis report (schema "opgate.sweep/v1"). The
// grid shares every threshold-independent artifact — one train emulation
// per workload, one baseline/VRP simulation set — so a K-point sweep
// costs one profile pass plus K cheap selections, not K full runs; each
// cell is bit-identical to Run at that threshold.
//
// With a store attached the cells are content-addressed individually,
// under the exact ReportKey a single-threshold run is filed at: a grown
// grid recomputes only its missing cells, and a stored cell serves
// opgated's warm check for the matching single-threshold job (and vice
// versa).
func (s *Session) Sweep(ctx context.Context, id string, thresholds ...float64) (*SweepReport, error) {
	e, ok := harness.LookupExperiment(id)
	if !ok {
		return nil, fmt.Errorf("opgate: unknown experiment %q", id)
	}
	if err := harness.ValidThresholds(thresholds); err != nil {
		return nil, fmt.Errorf("opgate: sweep %s: %w", id, err)
	}
	cells := make([]*Report, len(thresholds))
	var missing []float64
	if s.suite.Store != nil {
		for i, th := range thresholds {
			data, ok := s.suite.Store.Get(s.cellKey(id, th))
			if ok {
				if rs, err := harness.DecodeReports(data); err == nil && len(rs) == 1 && rs[0].ID == id {
					cells[i] = rs[0]
					continue
				}
				// Undecodable or foreign blob: treat as a miss, recompute.
			}
			missing = append(missing, th)
		}
	} else {
		missing = thresholds
	}
	if len(missing) > 0 {
		fresh, err := s.suite.Sweep(ctx, id, missing)
		if err != nil {
			return nil, err
		}
		next := 0
		for i := range cells {
			if cells[i] == nil {
				cells[i] = fresh.Cells[next]
				next++
			}
		}
		if s.suite.Store != nil {
			for j, r := range fresh.Cells {
				blob, err := EncodeReports([]*Report{r})
				if err != nil {
					return nil, err
				}
				// Best-effort write-back, like trace capture.
				_ = s.suite.Store.Put(s.cellKey(id, missing[j]), blob)
			}
		}
	}
	return &SweepReport{
		ID: e.ID, Title: e.Title,
		Thresholds: slices.Clone(thresholds),
		Cells:      cells,
	}, nil
}

// cellKey is the store address of one sweep cell: exactly the ReportKey
// of a single-threshold run, so sweeps and plain runs warm each other.
func (s *Session) cellKey(id string, threshold float64) store.Key {
	return store.ReportKey(id, s.suite.Quick, threshold,
		s.suite.Synthetics, store.SelfIdentity())
}

// SweepKey derives the content address a store files this session's
// encoded sweep document under — ReportKey's dimensions with the whole
// grid as the threshold axis. The per-cell addresses remain ReportKey;
// this addresses the assembled grid view (opgated's sweep jobs).
func (s *Session) SweepKey(id string, thresholds ...float64) string {
	return string(store.SweepKey(id, s.suite.Quick, thresholds,
		s.suite.Synthetics, store.SelfIdentity()))
}

// ReportKey derives the content address a store files this session's
// report sequence under for one experiment ID (or "all"): the experiment,
// input class, threshold, workload set and the running executable's
// identity hash, so a rebuilt binary can never serve stale reports. An
// invalid per-call threshold keys an address no Run will ever fill.
func (s *Session) ReportKey(id string, opts ...RunOption) string {
	p := runParams{threshold: s.threshold}
	for _, opt := range opts {
		opt(&p)
	}
	return string(store.ReportKey(id, s.suite.Quick, p.threshold,
		s.suite.Synthetics, store.SelfIdentity()))
}

// Emulations reports how many functional emulations the session has
// performed (the warm-store probe: zero on a fully warm run).
func (s *Session) Emulations() int64 { return s.suite.Emulations() }

// TrainEmulations reports how many VRS train profiling emulations the
// session has performed — one per workload profiled, however many
// thresholds were evaluated (the sweep profile-reuse probe).
func (s *Session) TrainEmulations() int64 { return s.suite.TrainEmulations() }

// Threshold returns the session's default VRS threshold.
func (s *Session) Threshold() float64 { return s.threshold }

// Synthetics returns the registered synthetic workload names.
func (s *Session) Synthetics() []string {
	return append([]string(nil), s.suite.Synthetics...)
}

// StoreStats returns the attached store's counters; ok is false when the
// session runs without a store.
func (s *Session) StoreStats() (stats StoreStats, ok bool) {
	if s.suite.Store == nil {
		return StoreStats{}, false
	}
	return s.suite.Store.Stats(), true
}

// ExpandSynthetics expands a synthetic-workload spec — "all" (the curated
// set), a comma-separated family list, or exact "syn:family/class/seed"
// names — into validated registry names for WithSynthetics. seedClassSet
// flags an explicitly supplied seed/class, which only family lists
// consume; the combination is rejected otherwise rather than silently
// ignored. ogbench's -synthetic flag and opgated's experiment requests
// share this expansion.
func ExpandSynthetics(spec string, seed uint64, class string, seedClassSet bool) ([]string, error) {
	return harness.ExpandSynthetics(spec, seed, class, seedClassSet)
}
