// Package opgate is a Go reproduction of "Software-Controlled
// Operand-Gating" (Canal, González, Smith — CGO 2004): a binary-level
// value range propagation and profile-guided value range specialization
// pipeline that re-encodes programs with narrow opcodes so the processor
// can gate off unused datapath bytes, evaluated on an out-of-order timing
// model with a Wattch-style operand-gated power model.
//
// The implementation lives under internal/: see internal/core for the
// library facade, internal/harness for the per-table/figure experiment
// drivers, and DESIGN.md for the full system inventory. The root package
// exists to host the repository-level benchmark harness (bench_test.go),
// which regenerates every table and figure of the paper's evaluation.
//
// Beyond the paper's eight kernels, internal/progen generates seed-driven
// synthetic workloads in six behavioral families spanning the
// dynamic-width spectrum; `ogbench -synthetic all` (or a family list with
// -seed/-class) runs every experiment over the expanded suite, and
// internal/progen/difftest asserts the substrate's equivalence invariants
// on arbitrary seeds.
//
// Evaluation artifacts persist across processes through internal/store, a
// content-addressed trace/report store: `ogbench -store DIR` (with an LRU
// byte budget via -store-limit) makes a warm rerun emulate nothing while
// printing byte-identical reports, and the `opgated` binary serves the
// same pipeline as a long-running HTTP service (POST /v1/experiments,
// GET /v1/jobs/{id}, GET /v1/reports/{key}) with a bounded worker pool
// over shared memoized suites.
package opgate
