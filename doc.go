// Package opgate is a Go reproduction of "Software-Controlled
// Operand-Gating" (Canal, González, Smith — CGO 2004): a binary-level
// value range propagation and profile-guided value range specialization
// pipeline that re-encodes programs with narrow opcodes so the processor
// can gate off unused datapath bytes, evaluated on an out-of-order timing
// model with a Wattch-style operand-gated power model.
//
// This package is the library's one front door, in two halves. The
// program-level facade (facade.go) covers the paper's flow on a single
// binary — Assemble, Optimize (VRP), Specialize (VRS), Simulate,
// CompareGating. The experiment pipeline (session.go) regenerates the
// paper's tables and figures over the whole workload suite: a Session is
// configured once with functional options (WithQuick, WithWorkers,
// WithStore, WithSynthetics, WithTraceBudget, WithThreshold) and driven
// with Run/RunAll under a context.Context that really cancels —
// mid-suite, the per-workload fan-out stops scheduling. Results are
// structured Report values (units and schema metadata, stable canonical
// JSON, cell-level Diff) rendered by pluggable Renderers: TextRenderer
// reproduces the classic aligned layout byte-for-byte, JSONRenderer the
// machine-readable opgate.reports/v1 encoding.
//
// Session.Sweep evaluates one experiment across a whole VRS threshold
// grid in a single pass: the train emulation and TNV profile behind each
// workload's specialization are threshold-independent, so a K-point
// sweep costs one profiling pass per workload plus K cheap selections —
// while every cell stays bit-identical to a plain Run at that threshold.
// The result is a SweepReport (schema opgate.sweep/v1, canonical
// EncodeSweep/DecodeSweep codec, per-threshold Diff). With a store
// attached each cell is filed under the same address a single-threshold
// run uses, so a grown grid recomputes only its missing cells. `ogbench
// -sweep lo:hi:step` (or an explicit comma list) drives a sweep from the
// CLI, and an opgated experiment request carrying a "thresholds" grid
// submits one as a single job, journalled for crash recovery as a
// sweep:<id>@<grid> spec.
//
// Everything else adapts this surface. `ogbench` renders a session to
// stdout (-format text|json); `opgated` serves it over HTTP (POST
// /v1/experiments, DELETE /v1/jobs/{id} for cancellation, GET
// /v1/reports/{key} negotiating text or canonical JSON via Accept) with
// production failure semantics — per-job deadlines (-job-timeout,
// terminal status "timeout"), panic isolation (a panicking job ends
// "failed" with its stack recorded; the worker pool survives), a
// SIGTERM graceful drain (-drain-timeout: /readyz flips unready, new
// submissions get 503 + Retry-After, queued jobs end "aborted"),
// load-aware admission control (-shed-watermark/-max-inflight-bytes:
// uncached submissions shed first, with Retry-After derived from
// observed service times), and SIGKILL crash recovery via a durable job
// journal (-journal, on by default with -store: a restarted process
// re-adopts in-flight jobs under their original IDs and never re-runs
// work whose report is already stored). Several opgated nodes shard
// their stores into one fleet (-peers: consistent-hash routing of
// report keys, peer-object replication over GET/PUT /v1/objects/{key},
// local compute whenever a peer fails), and `ogload` load-tests a node
// or fleet with latency percentiles and hit-rate gates. Package
// opgate/client is the matching Go client: submit/poll/follow/cancel
// with context-aware exponential backoff that honors Retry-After
// (typed RetryAfterError), a typed Run (Result{Reports,Sweep}) that
// survives server restarts by falling back to the content-addressed
// report when a job vanishes mid-wait, and an ObjectBackend adapting a
// peer's object API to the store.Backend contract.
// internal/core is a thin compatibility shim; the examples/ programs use
// the public API only. See internal/harness for the per-experiment
// drivers and DESIGN.md for the full system inventory. The root package
// also hosts the repository-level benchmark harness (bench_test.go).
//
// Beyond the paper's eight kernels, internal/progen generates seed-driven
// synthetic workloads in six behavioral families spanning the
// dynamic-width spectrum, plus two non-stationary forms: phase-structured
// composites that walk through several families in sequence
// (syn:phase/<f1>-<f2>/<class>/<seed>) and the adversarial width-flip
// family alternating narrow and wide arms every <period> blocks
// (syn:flip/<period>/<class>/<seed>). `ogbench -synthetic all` (or a
// family list with -seed/-class, shared with opgated via
// ExpandSynthetics) runs every experiment over the expanded suite, and
// internal/progen/difftest asserts the substrate's equivalence
// invariants on arbitrary seeds, composites and flips alike.
//
// Retirement traces cross the pipeline boundary as workloads of their
// own. `ogtrace export` captures any registry workload as a codec-framed
// trace blob; `ogtrace import` (or POST /v1/traces?name=N&class=C on a
// store-backed opgated, body-capped with 413 past 64 MiB, with
// client.UploadTrace as the Go surface) validates the blob end to end
// and registers it under a trace:<name> workload name. From then on any
// session whose store holds the import — WithSynthetics("trace:mytrace")
// plus WithStore/WithStoreDir — replays it through every replay-capable
// experiment byte-identically with zero emulations; paths that need a
// live run (VRS training, non-base variants, unfused simulation) error
// with workload.ErrTraceOnly rather than fabricating results.
//
// Evaluation artifacts persist across processes through the
// content-addressed store (OpenStore / WithStore): packed retirement
// traces and structured report blobs survive under hash addresses, so a
// warm `ogbench -store DIR` rerun emulates nothing while printing
// byte-identical reports, and a restarted opgated serves its predecessor's
// reports in either representation. The storage substrate is pluggable
// (WithBackend over any store.Backend — a directory tier, an HTTP
// object peer, or a store.NewTiered composition of both), and every
// backend inherits the accelerator-only contract: a fault of any class
// is a cache miss, never an error.
package opgate
