// Command ogopt is the binary optimizer: it runs value range propagation
// (and optionally profile-guided value range specialization) over an OG64
// program and reports the width assignment, exactly as the paper's
// Alto-based tool re-encodes Alpha binaries.
//
// Usage:
//
//	ogopt prog.s                    # VRP (useful mode), report + disassembly
//	ogopt -mode conventional prog.s # conventional VRP
//	ogopt -workload gcc             # optimize a built-in benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opgate"
	"opgate/internal/objfile"
	"opgate/internal/prog"
	"opgate/internal/workload"
)

func main() {
	mode := flag.String("mode", "useful", "useful|conventional")
	wl := flag.String("workload", "", "optimize a built-in benchmark instead of a file")
	dis := flag.Bool("S", false, "print the re-encoded disassembly")
	flag.Parse()
	if err := run(*mode, *wl, *dis, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ogopt:", err)
		os.Exit(1)
	}
}

func run(mode, wl string, dis bool, args []string) error {
	var p *prog.Program
	var err error
	switch {
	case wl != "":
		w, werr := workload.ByName(wl)
		if werr != nil {
			return werr
		}
		p, err = w.Build(workload.Ref)
	case len(args) == 1:
		if strings.HasSuffix(args[0], ".og64") {
			p, err = objfile.ReadFile(args[0])
		} else {
			p, err = opgate.AssembleFile(args[0])
		}
	default:
		return fmt.Errorf("need an input file or -workload")
	}
	if err != nil {
		return err
	}

	opt, err := opgate.Optimize(p, opgate.OptimizeOptions{Conventional: mode == "conventional"})
	if err != nil {
		return err
	}
	fmt.Printf("%s VRP: %s\n", mode, opt.Summary())
	fmt.Println("behavioural equivalence: verified")
	if dis {
		fmt.Print(opgate.Disassemble(opt.Program))
	}
	return nil
}
