// Command ogsim runs a program through the out-of-order timing model and
// the operand-gated power model, printing per-structure energy and the
// savings of the selected gating mode against the ungated baseline.
//
// Usage:
//
//	ogsim -workload compress -gating software
//	ogsim -gating hw-significance prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opgate"
	"opgate/internal/objfile"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "run a built-in benchmark instead of a file")
	gating := flag.String("gating", "software", "none|software|hw-significance|hw-size|cooperative|cooperative-sig")
	optimize := flag.Bool("optimize", true, "run VRP before simulating (software modes)")
	flag.Parse()
	if err := run(*wl, *gating, *optimize, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ogsim:", err)
		os.Exit(1)
	}
}

func parseGating(s string) (power.GatingMode, error) {
	for _, m := range []power.GatingMode{power.GateNone, power.GateSoftware,
		power.GateHWSignificance, power.GateHWSize, power.GateCooperative,
		power.GateCooperativeSig} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown gating mode %q", s)
}

func run(wl, gating string, optimize bool, args []string) error {
	mode, err := parseGating(gating)
	if err != nil {
		return err
	}
	var p *prog.Program
	switch {
	case wl != "":
		w, werr := workload.ByName(wl)
		if werr != nil {
			return werr
		}
		p, err = w.Build(workload.Ref)
	case len(args) == 1:
		if strings.HasSuffix(args[0], ".og64") {
			p, err = objfile.ReadFile(args[0])
		} else {
			p, err = opgate.AssembleFile(args[0])
		}
	default:
		return fmt.Errorf("need an input file or -workload")
	}
	if err != nil {
		return err
	}

	run := p
	if optimize && (mode == power.GateSoftware || mode == power.GateCooperative || mode == power.GateCooperativeSig) {
		opt, oerr := opgate.Optimize(p, opgate.OptimizeOptions{})
		if oerr != nil {
			return oerr
		}
		run = opt.Program
	}

	base, err := opgate.Simulate(p, opgate.SimOptions{Gating: power.GateNone})
	if err != nil {
		return err
	}
	g, err := opgate.Simulate(run, opgate.SimOptions{Gating: mode})
	if err != nil {
		return err
	}

	fmt.Printf("instructions %d  cycles %d  IPC %.2f  bpred-miss %.1f%%  L1D-miss %.1f%%\n",
		g.Instructions, g.Cycles, g.IPC, 100*g.BranchMissRate, 100*g.L1DMissRate)
	per, total := power.Savings(base.Energy, g.Energy)
	fmt.Printf("%-14s %12s %12s %9s\n", "structure", "baseline", gating, "saving")
	for _, st := range power.Structures() {
		fmt.Printf("%-14s %12.0f %12.0f %8.1f%%\n",
			st, base.Energy.Energy[st], g.Energy.Energy[st], 100*per[st])
	}
	fmt.Printf("%-14s %12.0f %12.0f %8.1f%%\n", "TOTAL", base.Energy.Total(), g.Energy.Total(), 100*total)
	fmt.Printf("energy-delay^2 saving: %.1f%%\n",
		100*power.EnergyDelay2Saving(base.Energy.Total(), base.Cycles, g.Energy.Total(), g.Cycles))
	return nil
}
