// Command ogbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ogbench -experiment all            # everything (the default)
//	ogbench -experiment fig8           # one experiment
//	ogbench -quick                     # evaluate on train inputs (faster)
//
// The workload space can be widened beyond the eight kernels with
// seed-driven synthetic programs (internal/progen):
//
//	ogbench -synthetic all                     # curated set, every family
//	ogbench -synthetic narrow,pointer -seed 7  # chosen families at a seed
//	ogbench -synthetic syn:wide/large/3        # one exact generation
//
// With -store, packed retirement traces persist in a content-addressed
// store under the given directory and are consulted before anything is
// emulated, so a warm rerun performs zero emulations and prints
// byte-identical reports; -store-limit bounds the store's size (LRU).
// A per-run summary ("ogbench: emulations=… store: hits=…") goes to
// stderr, leaving stdout exactly the reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"opgate/internal/harness"
	"opgate/internal/store"
)

func main() {
	experiment := flag.String("experiment", "all", "table1|table2|table3|fig2..fig15|ablation-opcodes|ablation-analysis|all")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	threshold := flag.Float64("threshold", 50, "VRS specialization threshold (nJ)")
	synthetic := flag.String("synthetic", "", `synthetic workloads: "all" (curated set), a comma-separated family list, or exact syn:family/class/seed names`)
	seed := flag.Uint64("seed", 1, "generator seed for -synthetic family lists")
	class := flag.String("class", "small", "generator size class for -synthetic family lists (small|medium|large)")
	storeDir := flag.String("store", "", "persistent trace store directory (content-addressed, shared across runs)")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	s := harness.NewSuite(*quick)
	names, err := harness.ExpandSynthetics(*synthetic, *seed, *class, explicit["seed"] || explicit["class"])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench: -synthetic:", err)
		os.Exit(2)
	}
	s.Synthetics = names
	if *storeDir != "" {
		limit, err := store.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogbench: -store-limit:", err)
			os.Exit(2)
		}
		st, err := store.Open(*storeDir, limit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogbench:", err)
			os.Exit(2)
		}
		s.Store = st
	} else if explicit["store-limit"] {
		fmt.Fprintln(os.Stderr, "ogbench: -store-limit requires -store")
		os.Exit(2)
	}
	run := func() error {
		if *experiment == "all" {
			return s.RunAll(os.Stdout, *threshold)
		}
		return s.RunExperiment(os.Stdout, *experiment, *threshold)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(1)
	}
	if s.Store != nil {
		st := s.Store.Stats()
		fmt.Fprintf(os.Stderr,
			"ogbench: emulations=%d store: hits=%d misses=%d puts=%d put-errors=%d evictions=%d\n",
			s.Emulations(), st.Hits, st.Misses, st.Puts, st.PutErrors, st.Evictions)
	}
}
