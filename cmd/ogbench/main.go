// Command ogbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ogbench -experiment all            # everything (the default)
//	ogbench -experiment fig8           # one experiment
//	ogbench -quick                     # evaluate on train inputs (faster)
//	ogbench -quick -format json        # canonical machine-readable reports
//
// The workload space can be widened beyond the eight kernels with
// seed-driven synthetic programs (internal/progen):
//
//	ogbench -synthetic all                     # curated set, every family
//	ogbench -synthetic narrow,pointer -seed 7  # chosen families at a seed
//	ogbench -synthetic syn:wide/large/3        # one exact generation
//
// With -store, packed retirement traces persist in a content-addressed
// store under the given directory and are consulted before anything is
// emulated, so a warm rerun performs zero emulations and prints
// byte-identical reports; -store-limit bounds the store's size (LRU).
// A per-run summary ("ogbench: emulations=… store: hits=…") goes to
// stderr, leaving stdout exactly the reports.
//
// -format selects the renderer: "text" (default) is the classic aligned
// layout; "json" emits the canonical structured encoding (schema
// opgate.reports/v1) for machine consumers — both render the same
// structured reports from the same session. Interrupting a run (SIGINT/
// SIGTERM) cancels the per-workload fan-out instead of waiting for the
// full suite.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"opgate"
)

func main() {
	experiment := flag.String("experiment", "all", "table1|table2|table3|fig2..fig15|ablation-opcodes|ablation-analysis|all")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	threshold := flag.Float64("threshold", opgate.DefaultThreshold, "VRS specialization threshold (nJ)")
	format := flag.String("format", "text", "report renderer: text|json")
	synthetic := flag.String("synthetic", "", `synthetic workloads: "all" (curated set), a comma-separated family list, or exact syn:family/class/seed names`)
	seed := flag.Uint64("seed", 1, "generator seed for -synthetic family lists")
	class := flag.String("class", "small", "generator size class for -synthetic family lists (small|medium|large)")
	storeDir := flag.String("store", "", "persistent trace store directory (content-addressed, shared across runs)")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	var renderer opgate.Renderer
	switch *format {
	case "text":
		renderer = opgate.TextRenderer{}
	case "json":
		renderer = opgate.JSONRenderer{}
	default:
		fmt.Fprintf(os.Stderr, "ogbench: -format %q: want text or json\n", *format)
		os.Exit(2)
	}

	names, err := opgate.ExpandSynthetics(*synthetic, *seed, *class, explicit["seed"] || explicit["class"])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench: -synthetic:", err)
		os.Exit(2)
	}
	opts := []opgate.Option{
		opgate.WithQuick(*quick),
		opgate.WithThreshold(*threshold),
		opgate.WithSynthetics(names...),
	}
	if *storeDir != "" {
		limit, err := opgate.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogbench: -store-limit:", err)
			os.Exit(2)
		}
		opts = append(opts, opgate.WithStoreDir(*storeDir, limit))
	} else if explicit["store-limit"] {
		fmt.Fprintln(os.Stderr, "ogbench: -store-limit requires -store")
		os.Exit(2)
	}
	sess, err := opgate.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func() error {
		var reports []*opgate.Report
		if *experiment == "all" {
			reports, err = sess.RunAll(ctx)
		} else {
			var r *opgate.Report
			r, err = sess.Run(ctx, *experiment)
			reports = []*opgate.Report{r}
		}
		if err != nil {
			return err
		}
		return renderer.Render(os.Stdout, reports)
	}
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ogbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(1)
	}
	if st, ok := sess.StoreStats(); ok {
		fmt.Fprintf(os.Stderr,
			"ogbench: emulations=%d store: hits=%d misses=%d puts=%d put-errors=%d evictions=%d\n",
			sess.Emulations(), st.Hits, st.Misses, st.Puts, st.PutErrors, st.Evictions)
	}
}
