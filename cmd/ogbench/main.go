// Command ogbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ogbench -experiment all            # everything (the default)
//	ogbench -experiment fig8           # one experiment
//	ogbench -quick                     # evaluate on train inputs (faster)
//	ogbench -quick -format json        # canonical machine-readable reports
//	ogbench -experiment fig6 -sweep 110:30:20   # threshold sweep (one train pass per workload)
//
// -sweep evaluates one experiment across a VRS threshold grid —
// "lo:hi:step" with inclusive endpoints (walked in either direction), or
// an explicit comma list like "110,90,70" — sharing the train profile and
// baseline simulations across the grid so K thresholds cost one train
// emulation per workload. Text output prints one table per threshold;
// -format json emits the canonical opgate.sweep/v1 document. With -store,
// each cell is content-addressed like a single-threshold report, so a
// grown grid recomputes only missing cells.
//
// The workload space can be widened beyond the eight kernels with
// seed-driven synthetic programs (internal/progen):
//
//	ogbench -synthetic all                     # curated set, every family
//	ogbench -synthetic narrow,pointer -seed 7  # chosen families at a seed
//	ogbench -synthetic syn:wide/large/3        # one exact generation
//
// With -store, packed retirement traces persist in a content-addressed
// store under the given directory and are consulted before anything is
// emulated, so a warm rerun performs zero emulations and prints
// byte-identical reports; -store-limit bounds the store's size (LRU).
// A per-run summary ("ogbench: emulations=… store: hits=…") goes to
// stderr, leaving stdout exactly the reports.
//
// -format selects the renderer: "text" (default) is the classic aligned
// layout; "json" emits the canonical structured encoding (schema
// opgate.reports/v1) for machine consumers — both render the same
// structured reports from the same session. Interrupting a run (SIGINT/
// SIGTERM) cancels the per-workload fan-out instead of waiting for the
// full suite.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"opgate"
)

func main() {
	experiment := flag.String("experiment", "all", "table1|table2|table3|fig2..fig15|ablation-opcodes|ablation-analysis|all")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	threshold := flag.Float64("threshold", opgate.DefaultThreshold, "VRS specialization threshold (nJ)")
	sweep := flag.String("sweep", "", `VRS threshold sweep grid: "lo:hi:step" (inclusive endpoints) or a comma list, e.g. 110:30:20; requires a single -experiment`)
	format := flag.String("format", "text", "report renderer: text|json")
	synthetic := flag.String("synthetic", "", `synthetic workloads: "all" (curated set), a comma-separated family list, or exact syn:family/class/seed names`)
	seed := flag.Uint64("seed", 1, "generator seed for -synthetic family lists")
	class := flag.String("class", "small", "generator size class for -synthetic family lists (small|medium|large)")
	storeDir := flag.String("store", "", "persistent trace store directory (content-addressed, shared across runs)")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	var renderer opgate.Renderer
	switch *format {
	case "text":
		renderer = opgate.TextRenderer{}
	case "json":
		renderer = opgate.JSONRenderer{}
	default:
		fmt.Fprintf(os.Stderr, "ogbench: -format %q: want text or json\n", *format)
		os.Exit(2)
	}

	names, err := opgate.ExpandSynthetics(*synthetic, *seed, *class, explicit["seed"] || explicit["class"])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench: -synthetic:", err)
		os.Exit(2)
	}
	opts := []opgate.Option{
		opgate.WithQuick(*quick),
		opgate.WithThreshold(*threshold),
		opgate.WithSynthetics(names...),
	}
	if *storeDir != "" {
		limit, err := opgate.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogbench: -store-limit:", err)
			os.Exit(2)
		}
		opts = append(opts, opgate.WithStoreDir(*storeDir, limit))
	} else if explicit["store-limit"] {
		fmt.Fprintln(os.Stderr, "ogbench: -store-limit requires -store")
		os.Exit(2)
	}
	var grid []float64
	if *sweep != "" {
		if *experiment == "all" {
			fmt.Fprintln(os.Stderr, "ogbench: -sweep needs one -experiment, not all")
			os.Exit(2)
		}
		if explicit["threshold"] {
			fmt.Fprintln(os.Stderr, "ogbench: -sweep and -threshold are exclusive (the sweep is the threshold axis)")
			os.Exit(2)
		}
		grid, err = parseSweepGrid(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogbench: -sweep:", err)
			os.Exit(2)
		}
	}
	sess, err := opgate.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func() error {
		if *sweep != "" {
			sw, err := sess.Sweep(ctx, *experiment, grid...)
			if err != nil {
				return err
			}
			if *format == "json" {
				b, err := opgate.EncodeSweep(sw)
				if err != nil {
					return err
				}
				_, err = os.Stdout.Write(b)
				return err
			}
			_, err = fmt.Fprint(os.Stdout, sw.Format())
			return err
		}
		var reports []*opgate.Report
		if *experiment == "all" {
			reports, err = sess.RunAll(ctx)
		} else {
			var r *opgate.Report
			r, err = sess.Run(ctx, *experiment)
			reports = []*opgate.Report{r}
		}
		if err != nil {
			return err
		}
		return renderer.Render(os.Stdout, reports)
	}
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ogbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(1)
	}
	if st, ok := sess.StoreStats(); ok {
		fmt.Fprintf(os.Stderr,
			"ogbench: emulations=%d store: hits=%d misses=%d puts=%d put-errors=%d evictions=%d\n",
			sess.Emulations(), st.Hits, st.Misses, st.Puts, st.PutErrors, st.Evictions)
	}
}

// parseSweepGrid parses -sweep's grid syntax: "lo:hi:step" walks from lo
// toward hi (either direction, inclusive endpoints) by a positive step;
// a comma-separated list names the thresholds explicitly.
func parseSweepGrid(spec string) ([]float64, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%q: want lo:hi:step", spec)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%q: want numeric lo:hi:step", spec)
		}
		if step <= 0 {
			return nil, fmt.Errorf("step %g: must be > 0 (direction comes from lo and hi)", step)
		}
		dir := 1.0
		if hi < lo {
			dir = -1
		}
		// A hair of slack on the inclusive endpoint absorbs binary float
		// accumulation (e.g. 0.1-sized steps).
		slack := step * 1e-9
		var grid []float64
		for i := 0; ; i++ {
			v := lo + dir*step*float64(i)
			if (dir > 0 && v > hi+slack) || (dir < 0 && v < hi-slack) {
				break
			}
			if len(grid) >= 1000 {
				return nil, fmt.Errorf("%q: more than 1000 grid points", spec)
			}
			grid = append(grid, v)
		}
		return grid, nil
	}
	parts := strings.Split(spec, ",")
	grid := make([]float64, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("threshold %q: %v", part, err)
		}
		grid[i] = v
	}
	return grid, nil
}
