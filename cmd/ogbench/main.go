// Command ogbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ogbench -experiment all            # everything (the default)
//	ogbench -experiment fig8           # one experiment
//	ogbench -quick                     # evaluate on train inputs (faster)
//
// The workload space can be widened beyond the eight kernels with
// seed-driven synthetic programs (internal/progen):
//
//	ogbench -synthetic all                     # curated set, every family
//	ogbench -synthetic narrow,pointer -seed 7  # chosen families at a seed
//	ogbench -synthetic syn:wide/large/3        # one exact generation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opgate/internal/harness"
	"opgate/internal/progen"
	"opgate/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "table1|table2|table3|fig2..fig15|ablation-opcodes|ablation-analysis|all")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	threshold := flag.Float64("threshold", 50, "VRS specialization threshold (nJ)")
	synthetic := flag.String("synthetic", "", `synthetic workloads: "all" (curated set), a comma-separated family list, or exact syn:family/class/seed names`)
	seed := flag.Uint64("seed", 1, "generator seed for -synthetic family lists")
	class := flag.String("class", "small", "generator size class for -synthetic family lists (small|medium|large)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	s := harness.NewSuite(*quick)
	names, err := syntheticNames(*synthetic, *seed, *class, explicit["seed"] || explicit["class"])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(2)
	}
	s.Synthetics = names
	run := func() error {
		if *experiment == "all" {
			return s.RunAll(os.Stdout, *threshold)
		}
		return s.RunExperiment(os.Stdout, *experiment, *threshold)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(1)
	}
}

// syntheticNames expands the -synthetic flag into registry names, each
// validated against the workload registry before the suite starts.
// seedClassSet flags an explicit -seed/-class, which only family-list
// specs consume; silently dropping them would run workloads the user did
// not ask for, so that combination is rejected instead.
func syntheticNames(spec string, seed uint64, class string, seedClassSet bool) ([]string, error) {
	if spec == "" {
		if seedClassSet {
			return nil, fmt.Errorf("-seed/-class require a -synthetic family list")
		}
		return nil, nil
	}
	var names []string
	usedSeedClass := false
	if spec == "all" {
		for _, w := range workload.CuratedSynthetics() {
			names = append(names, w.Name)
		}
	} else {
		c, err := progen.ParseClass(class)
		if err != nil {
			return nil, err
		}
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if workload.IsSynthetic(part) {
				names = append(names, part)
				continue
			}
			f, err := progen.ParseFamily(part)
			if err != nil {
				return nil, fmt.Errorf("-synthetic: %w", err)
			}
			usedSeedClass = true
			names = append(names, workload.SyntheticName(f, seed, c))
		}
	}
	if seedClassSet && !usedSeedClass {
		return nil, fmt.Errorf("-seed/-class only apply to -synthetic family lists, not %q", spec)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-synthetic %q expands to no workloads", spec)
	}
	// Dedupe: a family entry and an exact syn: name can expand to the same
	// workload, which would double-weight it in suite averages.
	seen := make(map[string]bool, len(names))
	uniq := names[:0]
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if _, err := workload.ByName(name); err != nil {
			return nil, err
		}
		uniq = append(uniq, name)
	}
	return uniq, nil
}
