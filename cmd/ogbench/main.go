// Command ogbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ogbench -experiment all            # everything (the default)
//	ogbench -experiment fig8           # one experiment
//	ogbench -quick                     # evaluate on train inputs (faster)
package main

import (
	"flag"
	"fmt"
	"os"

	"opgate/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "table1|table2|table3|fig2..fig15|ablation-opcodes|ablation-analysis|all")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	threshold := flag.Float64("threshold", 50, "VRS specialization threshold (nJ)")
	flag.Parse()

	s := harness.NewSuite(*quick)
	if err := run(s, *experiment, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "ogbench:", err)
		os.Exit(1)
	}
}

func run(s *harness.Suite, experiment string, th float64) error {
	type exp struct {
		id string
		fn func() error
	}
	show := func(r *harness.Report, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	}
	exps := []exp{
		{"table1", func() error { fmt.Println(s.Table1().Format()); return nil }},
		{"table2", func() error { fmt.Println(s.Table2()); return nil }},
		{"table3", func() error { return show(s.Table3()) }},
		{"fig2", func() error { return show(s.Figure2()) }},
		{"fig3", func() error { return show(s.Figure3()) }},
		{"fig4", func() error { return show(s.Figure4(th)) }},
		{"fig5", func() error { return show(s.Figure5(th)) }},
		{"fig6", func() error { return show(s.Figure6(th)) }},
		{"fig7", func() error { return show(s.Figure7(th)) }},
		{"fig8", func() error { return show(s.Figure8()) }},
		{"fig9", func() error { return show(s.Figure9()) }},
		{"fig10", func() error { return show(s.Figure10()) }},
		{"fig11", func() error { return show(s.Figure11()) }},
		{"fig12", func() error { return show(s.Figure12()) }},
		{"fig13", func() error { return show(s.Figure13()) }},
		{"fig14", func() error { return show(s.Figure14()) }},
		{"fig15", func() error { return show(s.Figure15(th)) }},
		{"ablation-opcodes", func() error { return show(s.AblationOpcodeSets()) }},
		{"ablation-analysis", func() error { return show(s.AblationAnalysis()) }},
	}
	if experiment == "all" {
		for _, e := range exps {
			if err := e.fn(); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
		}
		return nil
	}
	for _, e := range exps {
		if e.id == experiment {
			return e.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}
