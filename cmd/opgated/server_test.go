package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opgate"
	"opgate/internal/harness"
	"opgate/internal/store"
)

// newTestServer runs a quick-mode service (optionally store-backed) over
// httptest.
func newTestServer(t *testing.T, st *store.Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(serverConfig{Quick: true, Workers: 2, Store: st}))
	t.Cleanup(ts.Close)
	return ts
}

// submit POSTs an experiment request and decodes the job view.
func submit(t *testing.T, ts *httptest.Server, body string) (jobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// awaitJob polls a job until it reaches a terminal state.
func awaitJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminalStatus(v.Status) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return jobView{}
}

// TestExperimentLifecycle drives the whole request path: submit, follow to
// completion, fetch the report by key, and check it is exactly what the
// suite renders directly.
func TestExperimentLifecycle(t *testing.T) {
	ts := newTestServer(t, nil)

	v, code := submit(t, ts, `{"experiment":"table1","threshold":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if v.Status == "" || v.ReportKey == "" {
		t.Fatalf("job view incomplete: %+v", v)
	}
	done := awaitJob(t, ts, v.ID)
	if done.Status != "done" {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/reports/" + done.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report fetch returned %d: %s", resp.StatusCode, got.String())
	}

	rep, err := harness.NewSuite(true).RunExperiment(context.Background(), "table1", 50)
	if err != nil {
		t.Fatal(err)
	}
	want := new(bytes.Buffer)
	if err := (harness.TextRenderer{}).Render(want, []*harness.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("served report differs from a direct suite render")
	}

	// Content negotiation: the same key serves the canonical structured
	// encoding under Accept: application/json.
	req, err := http.NewRequest("GET", ts.URL+"/v1/reports/"+done.ReportKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	jresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("negotiated report served as %q", ct)
	}
	var jgot bytes.Buffer
	if _, err := jgot.ReadFrom(jresp.Body); err != nil {
		t.Fatal(err)
	}
	reports, err := opgate.DecodeReports(jgot.Bytes())
	if err != nil {
		t.Fatalf("negotiated report is not canonical JSON: %v", err)
	}
	if len(reports) != 1 || reports[0].ID != "table1" || !reports[0].Equal(rep) {
		t.Fatalf("structured report drifted from a direct suite build")
	}
	wantBlob, err := opgate.EncodeReports([]*harness.Report{rep})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jgot.Bytes(), wantBlob) {
		t.Fatal("served JSON is not the canonical encoding")
	}
}

// TestCoalescingAndWarmServe: identical concurrent submissions share one
// job; a later identical submission is served from the report cache
// without re-rendering.
func TestCoalescingAndWarmServe(t *testing.T) {
	ts := newTestServer(t, nil)

	// fig2 is cheap in quick mode but slow enough (~ms) that the second
	// POST lands while the first is queued or running.
	body := `{"experiment":"fig2"}`
	first, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	second, code2 := submit(t, ts, body)
	if code2 == http.StatusOK && second.ID != first.ID {
		t.Fatalf("coalesced submit returned a different job: %s vs %s", second.ID, first.ID)
	}
	done := awaitJob(t, ts, first.ID)
	if done.Status != "done" {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}

	third, code3 := submit(t, ts, body)
	if code3 != http.StatusAccepted {
		t.Fatalf("post-completion submit returned %d", code3)
	}
	if third.ReportKey != first.ReportKey {
		t.Fatal("identical request derived a different report key")
	}
	tdone := awaitJob(t, ts, third.ID)
	cached := false
	for _, ev := range tdone.Progress {
		if strings.Contains(ev.Msg, "served from cache") {
			cached = true
		}
	}
	if !cached {
		t.Fatalf("repeat job re-rendered instead of serving from cache: %+v", tdone.Progress)
	}
}

// TestReportsPersistAcrossRestart: with a store attached, a new server
// process serves reports rendered by the old one.
func TestReportsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, st)
	v, _ := submit(t, ts, `{"experiment":"table2"}`)
	done := awaitJob(t, ts, v.ID)
	if done.Status != "done" {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}
	ts.Close()

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, st2)
	resp, err := http.Get(ts2.URL + "/v1/reports/" + done.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted server returned %d for a persisted report", resp.StatusCode)
	}
	// And a re-submitted job is served from it without re-rendering.
	v2, _ := submit(t, ts2, `{"experiment":"table2"}`)
	done2 := awaitJob(t, ts2, v2.ID)
	served := false
	for _, ev := range done2.Progress {
		served = served || strings.Contains(ev.Msg, "served from cache")
	}
	if !served {
		t.Fatalf("restarted server re-rendered a persisted report: %+v", done2.Progress)
	}
}

// TestFollowStreamsProgress: ?follow=1 delivers NDJSON frames ending in a
// terminal status.
func TestFollowStreamsProgress(t *testing.T) {
	ts := newTestServer(t, nil)
	v, _ := submit(t, ts, `{"experiment":"table1"}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frames []jobView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f jobView
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("follow delivered %d frames, want at least queued+done", len(frames))
	}
	if last := frames[len(frames)-1]; last.Status != "done" {
		t.Fatalf("stream ended on status %q", last.Status)
	}
}

// TestRequestValidation: malformed bodies, unknown experiments, bad
// synthetic specs and bad report keys are all clean 4xx responses.
func TestRequestValidation(t *testing.T) {
	ts := newTestServer(t, nil)
	for name, c := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad-json":        {"POST", "/v1/experiments", "{", http.StatusBadRequest},
		"unknown-exp":     {"POST", "/v1/experiments", `{"experiment":"fig99"}`, http.StatusBadRequest},
		"bad-threshold":   {"POST", "/v1/experiments", `{"experiment":"fig4","threshold":-50}`, http.StatusBadRequest},
		"bad-synthetic":   {"POST", "/v1/experiments", `{"experiment":"fig2","synthetic":"nosuchfamily"}`, http.StatusBadRequest},
		"orphan-seed":     {"POST", "/v1/experiments", `{"experiment":"fig2","seed":3}`, http.StatusBadRequest},
		"missing-job":     {"GET", "/v1/jobs/job-999999", "", http.StatusNotFound},
		"malformed-key":   {"GET", "/v1/reports/not-a-hex-key", "", http.StatusBadRequest},
		"unknown-report":  {"GET", "/v1/reports/" + strings.Repeat("ab", 32), "", http.StatusNotFound},
		"wrong-verb-jobs": {"POST", "/v1/jobs/x", "", http.StatusMethodNotAllowed},
	} {
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("%s %s returned %d, want %d", c.method, c.path, resp.StatusCode, c.want)
			}
		})
	}

	// List endpoint sanity: every harness experiment is advertised.
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if want := len(opgate.Experiments()) + 1; len(list.Experiments) != want {
		t.Fatalf("list advertises %d experiments, want %d", len(list.Experiments), want)
	}

	// Health endpoint stays a plain 200.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", hr.StatusCode)
	}
}

// TestJobCancellation: DELETE /v1/jobs/{id} cancels a queued or running
// job, which reaches the terminal "canceled" status without rendering a
// report (the satellite bugfix: jobs used to run to completion).
func TestJobCancellation(t *testing.T) {
	// One worker: the first job occupies it, so the second is reliably
	// queued or at the very start of its run when the DELETE lands.
	ts := httptest.NewServer(newServer(serverConfig{Quick: true, Workers: 1, Queue: 4}))
	t.Cleanup(ts.Close)

	first, code := submit(t, ts, `{"experiment":"fig2"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	second, code := submit(t, ts, `{"experiment":"all"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+second.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}

	if v := awaitJob(t, ts, second.ID); v.Status != "canceled" {
		t.Fatalf("canceled job ended %q (%s)", v.Status, v.Error)
	}
	if v := awaitJob(t, ts, first.ID); v.Status != "done" {
		t.Fatalf("unrelated job ended %q (%s)", v.Status, v.Error)
	}

	// The canceled job produced no report.
	rresp, err := http.Get(ts.URL + "/v1/reports/" + second.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusNotFound {
		t.Fatalf("canceled job left a report behind (%d)", rresp.StatusCode)
	}

	// Cancelling a finished job is a harmless no-op.
	req, err = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+first.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := awaitJob(t, ts, first.ID); v.Status != "done" {
		t.Fatalf("done job flipped to %q after a late cancel", v.Status)
	}
}

// TestResubmitAfterCancelIsNotCoalesced: a canceled job must not swallow
// an identical resubmission — the new POST gets a fresh job that really
// runs and produces the report.
func TestResubmitAfterCancelIsNotCoalesced(t *testing.T) {
	// One worker kept busy so the canceled job is still in the pending map
	// (waiting to be retired) when the resubmission lands.
	ts := httptest.NewServer(newServer(serverConfig{Quick: true, Workers: 1, Queue: 4}))
	t.Cleanup(ts.Close)

	busy, _ := submit(t, ts, `{"experiment":"fig2"}`)
	victim, code := submit(t, ts, `{"experiment":"table1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	redo, code := submit(t, ts, `{"experiment":"table1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission coalesced onto the canceled job (code %d)", code)
	}
	if redo.ID == victim.ID {
		t.Fatal("resubmission returned the canceled job")
	}
	if redo.ReportKey != victim.ReportKey {
		t.Fatal("identical request derived a different report key")
	}
	if v := awaitJob(t, ts, redo.ID); v.Status != "done" {
		t.Fatalf("resubmitted job ended %q (%s)", v.Status, v.Error)
	}
	if v := awaitJob(t, ts, busy.ID); v.Status != "done" {
		t.Fatalf("busy job ended %q (%s)", v.Status, v.Error)
	}
	rresp, err := http.Get(ts.URL + "/v1/reports/" + redo.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resubmitted job produced no report (%d)", rresp.StatusCode)
	}
}

// TestQueueBound: submissions beyond the queue bound are refused with 503
// rather than accepted and forgotten.
func TestQueueBound(t *testing.T) {
	// Workers: 1 busy worker + queue of 1: the third distinct submission
	// must bounce. Use distinct thresholds so nothing coalesces.
	ts := httptest.NewServer(newServer(serverConfig{Quick: true, Workers: 1, Queue: 1}))
	t.Cleanup(ts.Close)
	codes := map[int]int{}
	ids := map[string]bool{}
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"experiment":"fig2","threshold":%d}`, 30+i)
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusAccepted {
			var v jobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatal(err)
			}
			ids[v.ID] = true
		} else if resp.StatusCode == http.StatusServiceUnavailable {
			// A refused submission must tell the client when to come back.
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("queue-full 503 carries no Retry-After")
			}
		}
		resp.Body.Close()
	}
	if codes[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no submission was refused: %v", codes)
	}
	for id := range ids {
		if v := awaitJob(t, ts, id); v.Status != "done" {
			t.Fatalf("accepted job %s ended %q (%s)", id, v.Status, v.Error)
		}
	}
}
