package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"opgate"
	"opgate/client"
	"opgate/internal/journal"
	"opgate/internal/store"
)

// Crash-recovery and admission-control coverage for the journaled server:
// a restarted process re-adopts in-flight jobs under their original IDs,
// never resurrects completed work, and sheds cold submissions — not warm
// or coalesced ones — under load, with an honest Retry-After.

// openJournal opens (or reopens) the journal at path with the production
// terminal predicate.
func openJournal(t *testing.T, path string) (*journal.Journal, []journal.Record) {
	t.Helper()
	j, recs, err := journal.Open(path, 0, client.TerminalStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

// TestJournalRecoveryRequeuesInFlight is the SIGKILL story end-to-end in
// process: server A journals a job to "running" and is abandoned without
// any drain (its worker is parked forever, its journal closed, exactly
// the state a kill -9 leaves on disk); server B opens the same journal
// and store, re-adopts the job under its original ID, and finishes it —
// so a client polling the original job URL sees "done", not 404.
func TestJournalRecoveryRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	stA, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jnlA, recs := openJournal(t, jpath)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	srvA := newServer(serverConfig{
		Quick: true, Workers: 1, Store: stA, Journal: jnlA,
		// Park every job forever: the crash happens mid-run.
		hookJobStart: func(ctx context.Context, _ *job) { <-ctx.Done() },
	})
	tsA := httptest.NewServer(srvA)
	v, code := submit(t, tsA, `{"experiment":"table1","threshold":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	awaitStatus(t, tsA, v.ID, "running")
	// A second job dies still queued (the only worker is parked): recovery
	// must bring back both lifecycle points.
	q, code := submit(t, tsA, `{"experiment":"table1","threshold":60}`)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit returned %d", code)
	}
	// The "crash": no drain, no cancellation — just stop serving and close
	// the journal handle. The parked worker goroutine leaks for the rest
	// of the test, as a killed process's threads would.
	tsA.Close()
	jnlA.Close()

	stB, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jnlB, recovered := openJournal(t, jpath)
	defer jnlB.Close()
	if len(recovered) == 0 {
		t.Fatal("journal replayed nothing after the crash")
	}
	srvB := newServer(serverConfig{
		Quick: true, Workers: 1, Store: stB, Journal: jnlB, Recovered: recovered,
	})
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	got := awaitJob(t, tsB, v.ID)
	if got.Status != "done" {
		t.Fatalf("recovered job %s ended %q (%s), want done", v.ID, got.Status, got.Error)
	}
	if got.ID != v.ID || got.ReportKey != v.ReportKey {
		t.Fatalf("recovered job identity drifted: %+v vs %+v", got, v)
	}
	if g := awaitJob(t, tsB, q.ID); g.Status != "done" {
		t.Fatalf("job killed while queued ended %q (%s), want done", g.Status, g.Error)
	}
	resp, err := http.Get(tsB.URL + "/v1/reports/" + got.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report fetch after recovery returned %d", resp.StatusCode)
	}

	// New submissions must not collide with recovered IDs: the sequence
	// resumed above everything the journal named.
	w, code := submit(t, tsB, `{"experiment":"fig2","threshold":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit returned %d", code)
	}
	if w.ID == v.ID {
		t.Fatalf("post-recovery submission reused recovered job ID %s", v.ID)
	}
	// Let it finish before the deferred journal close, so no transition
	// races the teardown.
	awaitJob(t, tsB, w.ID)
}

// TestRecoveryNeverResurrectsCompletedJob: a journal whose tail lost the
// "done" record (torn by the crash) still must not re-run the job when
// the content-addressed report already proves completion — the job is
// marked done at boot without ever reaching a worker.
func TestRecoveryNeverResurrectsCompletedJob(t *testing.T) {
	dir := t.TempDir()

	// A first, journal-less server produces the genuine report.
	st, err := store.Open(filepath.Join(dir, "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, st)
	v, code := submit(t, ts, `{"experiment":"table1","threshold":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	done := awaitJob(t, ts, v.ID)
	if done.Status != "done" {
		t.Fatalf("seed job ended %q", done.Status)
	}

	// Hand-write the crashed process's journal: the job got to "running",
	// the "done" record never made it to disk.
	jpath := filepath.Join(dir, "journal.log")
	jnl, _ := openJournal(t, jpath)
	if _, err := jnl.Append(journal.Record{
		Job: "job-000042", Status: "running",
		Experiment: done.Experiment, Threshold: done.Threshold,
		Synthetics: done.Synthetics, ReportKey: done.ReportKey,
	}); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	jnl2, recovered := openJournal(t, jpath)
	defer jnl2.Close()
	srv := newServer(serverConfig{
		Quick: true, Workers: 1, Store: st, Journal: jnl2, Recovered: recovered,
		hookJobStart: func(_ context.Context, j *job) {
			t.Errorf("job %s reached a worker; completed work was resurrected", j.id)
		},
	})
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()

	got := awaitJob(t, ts2, "job-000042")
	if got.Status != "done" {
		t.Fatalf("recovered job ended %q, want done without re-running", got.Status)
	}
	found := false
	for _, p := range got.Progress {
		if p.Msg == "recovered: report already in store" {
			found = true
		}
	}
	if !found {
		t.Fatalf("job progress does not say it was recovered from the store: %+v", got.Progress)
	}
}

// shedConfig builds a one-worker server whose worker parks forever, so
// queue depth is fully controlled by the test.
func shedConfig(st *store.Store) serverConfig {
	return serverConfig{
		Quick: true, Workers: 1, Queue: 8, ShedWatermark: 1, Store: st,
		hookJobStart: func(ctx context.Context, _ *job) { <-ctx.Done() },
	}
}

// TestAdmissionShedsColdKeepsWarm: at the shed watermark a cold
// submission bounces with 503 and a Retry-After, while a warm one (report
// already in the store) and a coalescing twin are still admitted.
func TestAdmissionShedsColdKeepsWarm(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(shedConfig(st)))
	defer ts.Close()

	// Job 1 occupies the parked worker; job 2 holds queue depth at 1.
	if _, code := submit(t, ts, `{"experiment":"fig2","threshold":50}`); code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	queued, code := submit(t, ts, `{"experiment":"fig2","threshold":60}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}

	// Cold at the watermark: shed, with an honest hint.
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"experiment":"fig2","threshold":70}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold submission at watermark returned %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After")
	}

	// Warm at the watermark: its report is one read away, always admitted.
	names, err := opgate.ExpandSynthetics("", 1, "small", false)
	if err != nil {
		t.Fatal(err)
	}
	key := store.ReportKey("fig2", true, 80, names, store.SelfIdentity())
	if err := st.Put(key, []byte("cached report bytes")); err != nil {
		t.Fatal(err)
	}
	if _, code := submit(t, ts, `{"experiment":"fig2","threshold":80}`); code != http.StatusAccepted {
		t.Fatalf("warm submission at watermark returned %d", code)
	}

	// Coalescing twin of the queued job: admitted onto the same job.
	twin, code := submit(t, ts, `{"experiment":"fig2","threshold":60}`)
	if code != http.StatusOK || twin.ID != queued.ID {
		t.Fatalf("coalescing twin got %d / %s, want 200 / %s", code, twin.ID, queued.ID)
	}

	// The shed shows up in the health counters.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Admission struct {
			Sheds int64 `json:"sheds"`
		} `json:"admission"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Admission.Sheds < 1 {
		t.Fatalf("healthz reports %d sheds, want >= 1", health.Admission.Sheds)
	}
}

// TestAdmissionMaxInflightBytes: with the watermark disabled, the cold
// ledger alone sheds — the first cold job is always admitted, the second
// exceeds the budget.
func TestAdmissionMaxInflightBytes(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{
		Quick: true, Workers: 1, Queue: 8, ShedWatermark: -1, MaxInflightBytes: 1,
		hookJobStart: func(ctx context.Context, _ *job) { <-ctx.Done() },
	}))
	defer ts.Close()

	if _, code := submit(t, ts, `{"experiment":"fig2","threshold":50}`); code != http.StatusAccepted {
		t.Fatalf("first cold submission returned %d (one is always admitted)", code)
	}
	// The ledger is charged before the first response, so the second cold
	// submission sheds deterministically.
	if _, code := submit(t, ts, `{"experiment":"fig2","threshold":60}`); code != http.StatusServiceUnavailable {
		t.Fatalf("second cold submission returned %d, want 503", code)
	}
}
