package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"opgate"
	"opgate/client"
	"opgate/internal/store"
)

// fleetNode is one in-process ring member: a full opgated server over a
// real directory store, wired into a shared member list.
type fleetNode struct {
	ts    *httptest.Server
	srv   *server
	local *store.DirBackend
	url   string
}

// newFleetRing starts n opgated nodes whose URLs form one consistent
// ring. Unstarted httptest servers allocate their listeners first, so
// every node knows the full member list before its server is built.
func newFleetRing(t *testing.T, n int) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, n)
	urls := make([]string, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + ts.Listener.Addr().String()
		nodes[i] = &fleetNode{ts: ts, url: urls[i]}
	}
	for i, node := range nodes {
		fl, err := newFleet(node.url, urls)
		if err != nil {
			t.Fatal(err)
		}
		local, err := store.OpenDir(filepath.Join(t.TempDir(), "store"), 0)
		if err != nil {
			t.Fatal(err)
		}
		node.local = local
		node.srv = newServer(serverConfig{
			Quick:   true,
			Workers: 2,
			Store:   store.NewStore(store.NewTiered(local, fl.remote(), 0)),
			Objects: local,
			Fleet:   fl,
		})
		node.ts.Config.Handler = node.srv
		node.ts.Start()
		t.Cleanup(nodes[i].ts.Close)
	}
	return nodes
}

// runOn submits a request to one node and returns the done job's report
// bytes plus the terminal view.
func runOn(t *testing.T, node *fleetNode, req client.Request) ([]byte, client.Job) {
	t.Helper()
	c, err := client.New(node.url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.StatusDone {
		t.Fatalf("job %s ended %s: %s", final.ID, final.Status, final.Error)
	}
	blob, err := c.ReportBytes(ctx, final.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	return blob, final
}

// TestFleetByteIdenticalAcrossNodes is the tentpole property in process:
// a report computed anywhere in a 2-node ring is served byte-identical
// from every node, with the second serve doing zero emulation work.
func TestFleetByteIdenticalAcrossNodes(t *testing.T) {
	nodes := newFleetRing(t, 2)
	req := client.Request{Experiment: "fig2", Threshold: 50}

	blobA, jobA := runOn(t, nodes[0], req)
	emusAfterFirst := nodes[0].srv.emulationsTotal() + nodes[1].srv.emulationsTotal()
	if emusAfterFirst == 0 {
		t.Fatal("cold run emulated nothing — the probe is broken")
	}

	blobB, jobB := runOn(t, nodes[1], req)
	if jobA.ReportKey != jobB.ReportKey {
		t.Fatalf("nodes derive different report keys: %s vs %s", jobA.ReportKey, jobB.ReportKey)
	}
	if !bytes.Equal(blobA, blobB) {
		t.Fatal("the two nodes served different report bytes for one key")
	}
	if emus := nodes[0].srv.emulationsTotal() + nodes[1].srv.emulationsTotal(); emus != emusAfterFirst {
		t.Fatalf("warm fleet serve re-emulated: %d emulations after first run, %d after second",
			emusAfterFirst, emus)
	}
}

// TestFleetForwardToOwner: a submission landing on the non-owner is
// satisfied via the ring owner (peer store or forwarded job), and the
// owner's object tier ends up holding the report either way.
func TestFleetForwardToOwner(t *testing.T) {
	nodes := newFleetRing(t, 2)
	req := client.Request{Experiment: "table1", Threshold: 50}

	// Derive the key the same way the server does to find the owner.
	key := store.ReportKey("table1", true, 50, nil, store.SelfIdentity())
	fleet0 := nodes[0].srv.cfg.Fleet
	owner := fleet0.owner(string(key))
	var nonOwner *fleetNode
	for _, n := range nodes {
		if n.url != owner {
			nonOwner = n
		}
	}
	if nonOwner == nil {
		t.Fatal("could not find a non-owner node")
	}

	blob, _ := runOn(t, nonOwner, req)
	if len(blob) == 0 {
		t.Fatal("empty report")
	}
	// The owner's local tier holds the object: either it computed the
	// job (forward) or received the write-back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := ownerNode(nodes, owner).local.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("report never reached the ring owner's store tier")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func ownerNode(nodes []*fleetNode, url string) *fleetNode {
	for _, n := range nodes {
		if n.url == url {
			return n
		}
	}
	return nil
}

// TestFleetPeerDownDegradesToLocalCompute: with its peer gone, a node
// answers every submission locally with no request errors — the ring
// decides placement, never availability.
func TestFleetPeerDownDegradesToLocalCompute(t *testing.T) {
	nodes := newFleetRing(t, 2)
	nodes[1].ts.Close() // SIGKILL stand-in: connections now refuse

	// Run both experiments so at least one key owns on the dead peer.
	for _, exp := range []string{"fig2", "table1"} {
		blob, job := runOn(t, nodes[0], client.Request{Experiment: exp, Threshold: 50})
		if len(blob) == 0 || job.Status != client.StatusDone {
			t.Fatalf("%s: degraded run failed: %+v", exp, job)
		}
	}

	// The healthz fleet section reports the dead peer unhealthy.
	resp, err := http.Get(nodes[0].url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`"healthy": false`)) {
		t.Fatalf("healthz does not report the dead peer unhealthy:\n%s", body)
	}
}

// TestFleetDirectPinsJob: a Direct submission is computed on the
// receiving node even when the key owns elsewhere — the loop guard.
func TestFleetDirectPinsJob(t *testing.T) {
	nodes := newFleetRing(t, 2)
	req := client.Request{Experiment: "fig2", Threshold: 50}
	key := store.ReportKey("fig2", true, 50, nil, store.SelfIdentity())
	fleet0 := nodes[0].srv.cfg.Fleet
	var nonOwner *fleetNode
	for _, n := range nodes {
		if n.url != fleet0.owner(string(key)) {
			nonOwner = n
		}
	}
	req.Direct = true
	blob, _ := runOn(t, nonOwner, req)
	if len(blob) == 0 {
		t.Fatal("empty report")
	}
	if forwards := nonOwner.srv.cfg.Fleet.forwards.Load(); forwards != 0 {
		t.Fatalf("direct job was forwarded %d time(s)", forwards)
	}
	if got := nonOwner.srv.srvComputed.Load(); got != 1 {
		t.Fatalf("direct job not computed locally (computed=%d)", got)
	}
}

// TestFleetSweepForwarding: sweep jobs ride the same forwarding path via
// their spec form, and the sweep document replicates byte-identically.
func TestFleetSweepForwarding(t *testing.T) {
	nodes := newFleetRing(t, 2)
	req := client.Request{Experiment: "fig6", Thresholds: []float64{110, 50}}

	blobA, jA := runOn(t, nodes[0], req)
	blobB, jB := runOn(t, nodes[1], req)
	if jA.ReportKey != jB.ReportKey {
		t.Fatalf("sweep keys diverge: %s vs %s", jA.ReportKey, jB.ReportKey)
	}
	if !bytes.Equal(blobA, blobB) {
		t.Fatal("sweep documents diverge across nodes")
	}
	if _, err := opgate.DecodeSweep(blobA); err != nil {
		t.Fatalf("replicated sweep document does not decode: %v", err)
	}

	// And the typed client decodes it as a sweep through Run.
	c, err := client.New(nodes[1].url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || res.Reports != nil {
		t.Fatalf("Run misclassified a sweep result: %+v", res)
	}
	if len(res.Sweep.Cells) != 2 {
		t.Fatalf("sweep decoded %d cells, want 2", len(res.Sweep.Cells))
	}
	sw, err := c.Sweep(ctx, jA.ReportKey)
	if err != nil {
		t.Fatalf("Client.Sweep on a sweep key: %v", err)
	}
	if fmt.Sprint(sw.Thresholds) != fmt.Sprint(res.Sweep.Thresholds) {
		t.Fatalf("Sweep and Run disagree: %v vs %v", sw.Thresholds, res.Sweep.Thresholds)
	}
}
