package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opgate"
	"opgate/client"
	"opgate/internal/journal"
	"opgate/internal/store"
	"opgate/internal/tracework"
	"opgate/internal/workload"
)

// serverConfig fixes the evaluation envelope for the process: every job
// shares it, so every job can share the memoized sessions underneath.
type serverConfig struct {
	Quick        bool          // evaluate on train inputs
	Workers      int           // worker-pool size (concurrent jobs)
	Queue        int           // queued-job bound; excess POSTs get 503
	Store        *store.Store  // optional persistent trace/report store
	JobTimeout   time.Duration // per-job deadline once running (0 = none)
	DrainTimeout time.Duration // how long Drain waits for running jobs

	// Objects, when set, is served raw over GET/PUT/DELETE /v1/objects —
	// the node's local store tier, which ring peers read and write as
	// their remote tier. Deliberately the *local* tier, never the tiered
	// composition: an object request must terminate here, not fan out to
	// another peer.
	Objects store.Backend

	// Fleet, when set, makes this node one member of a consistent-hash
	// ring: submissions whose report key owns elsewhere are satisfied
	// from (or forwarded to) the owner, falling back to local compute on
	// any peer failure.
	Fleet *fleet

	// Journal, when set, records every job status transition durably; at
	// boot Recovered (the journal's replay) re-adopts the previous
	// process's jobs under their original IDs.
	Journal   *journal.Journal
	Recovered []journal.Record

	// ShedWatermark is the queue depth at which cold submissions — those
	// whose report is in neither the memory cache nor the store, so
	// admitting them buys real emulation work — are shed with 503 before
	// the queue is full. 0 selects 3/4 of Queue; negative disables
	// watermark shedding. Warm and coalesced submissions are never shed.
	ShedWatermark int
	// MaxInflightBytes bounds the estimated footprint of admitted cold
	// jobs; past it cold submissions shed even below the watermark
	// (0 = unbounded).
	MaxInflightBytes int64

	// hookJobStart, when set (tests only), runs in the worker goroutine
	// right after a job turns "running", under the job's run context —
	// the injection point for deterministic stalls and panics.
	hookJobStart func(context.Context, *job)
}

// server is the opgated HTTP service: a bounded worker pool draining an
// experiment queue over shared opgate sessions. One session exists per
// distinct synthetic workload set; all of them share the process-wide
// memo semantics of the session's suite (per-key singleflight), so
// concurrent jobs that touch the same (workload, variant) coalesce on one
// emulation, and the persistent store extends that coalescing across
// restarts. Reports are stored in their structured canonical-JSON form
// and rendered at read time (text by default, the stored JSON under
// Accept: application/json).
type server struct {
	cfg serverConfig
	mux *http.ServeMux

	queue chan *job

	// draining flips once, at the start of a graceful shutdown: /readyz
	// turns unready, new submissions bounce with 503 + Retry-After, and
	// workers abort instead of starting queued jobs.
	draining atomic.Bool

	// followers counts live ?follow=1 streams — the probe asserting a
	// disconnected client releases its handler promptly.
	followers atomic.Int64

	// sheds counts submissions refused by admission control (not by a
	// literally full queue); coldBytes is the estimated footprint of the
	// cold jobs currently admitted, the MaxInflightBytes ledger.
	sheds     atomic.Int64
	coldBytes atomic.Int64

	// svcTimes is a ring of observed cold-job service times; its mean
	// turns queue depth into the honest Retry-After a shed client gets.
	svcMu    sync.Mutex
	svcTimes []time.Duration
	svcNext  int

	// Serving-path counters (/healthz "serving"): how each answered
	// submission was satisfied. ogload derives its hit rate from these.
	srvCoalesced atomic.Int64 // coalesced onto an identical live job
	srvFromCache atomic.Int64 // report already in memory cache or store
	srvFromPeer  atomic.Int64 // replicated from the ring owner
	srvComputed  atomic.Int64 // computed here, cold

	// retiredEmus carries the emulation counters of evicted sessions, so
	// the /healthz "emulations" total is monotonic across session churn.
	retiredEmus atomic.Int64

	mu           sync.Mutex
	jobs         map[string]*job
	jobOrder     []string                   // creation order, for terminal-job retirement
	pending      map[store.Key]*job         // queued/running jobs by report key
	sessions     map[string]*opgate.Session // one memoized session per synthetic set
	sessionOrder []string                   // creation order, for session eviction
	seq          int

	reportMu    sync.Mutex
	reports     map[store.Key][]byte // in-memory report cache (also persisted)
	reportOrder []store.Key
}

// reportCacheMax bounds the in-memory report cache (FIFO); the persistent
// store, when configured, keeps everything older.
const reportCacheMax = 128

// sessionCacheMax bounds the memoized sessions: synthetic specs are
// client-supplied (a 64-bit seed space), so without a cap a request loop
// over distinct seeds would grow session memos — built programs, packed
// traces, simulation results — without bound. Evicting a session only
// costs recomputation (the persistent store still serves its traces).
const sessionCacheMax = 8

// jobRetainMax bounds the finished-job history; queued and running jobs
// are never retired (the queue bound caps how many of those can exist).
const jobRetainMax = 512

// serviceWindow is how many recent cold-job service times feed the
// Retry-After estimate.
const serviceWindow = 32

// coldSyntheticEstimate is the per-workload footprint a cold job is
// assumed to add (traces + report) for the MaxInflightBytes ledger — a
// coarse planning figure, deliberately on the high side so the bound
// sheds early rather than late.
const coldSyntheticEstimate int64 = 256 << 10

// newServer builds the service and starts its worker pool.
func newServer(cfg serverConfig) *server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    make(chan *job, cfg.Queue),
		jobs:     map[string]*job{},
		pending:  map[store.Key]*job{},
		sessions: map[string]*opgate.Session{},
		reports:  map[store.Key][]byte{},
	}
	s.mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/reports/{key}", s.handleReport)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/objects/{key}", s.handleObjectGet)
	s.mux.HandleFunc("PUT /v1/objects/{key}", s.handleObjectPut)
	s.mux.HandleFunc("DELETE /v1/objects/{key}", s.handleObjectDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	// Re-adopt the previous process's jobs before any worker can race the
	// maps: recovery must see the whole journal state at once.
	s.recoverJournal()
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// shedWatermark resolves the effective cold-shedding queue depth
// (negative = disabled).
func (s *server) shedWatermark() int {
	switch {
	case s.cfg.ShedWatermark > 0:
		return s.cfg.ShedWatermark
	case s.cfg.ShedWatermark < 0:
		return -1
	}
	return max(1, s.cfg.Queue*3/4)
}

// bindJournal points a job's transition hook at the configured journal:
// every status change appends one durable record carrying the full job
// definition, so a replay can re-adopt the job without any other state.
// The hook runs under j.mu — journal order matches status order per job.
func (s *server) bindJournal(j *job) {
	if s.cfg.Journal == nil {
		return
	}
	j.onEvent = func(status, errmsg string) {
		_, err := s.cfg.Journal.Append(journal.Record{
			Job:        j.id,
			Status:     status,
			Experiment: j.experiment,
			Threshold:  j.threshold,
			Synthetics: j.synthetics,
			ReportKey:  string(j.reportKey),
			Err:        errmsg,
		})
		if err != nil {
			log.Printf("opgated: journal: %v", err)
		}
	}
}

// recoverJournal replays the journal a restarted process inherited:
// terminal jobs become visible history under their original IDs, jobs
// whose report already sits in the store are marked done without
// re-running (a journal tail torn by SIGKILL may have lost the "done"
// record, but the content-addressed report proves completion), and
// everything else is re-enqueued as queued under its original ID — so a
// client's Wait/Follow against the restarted process finds its job
// instead of a 404. Re-execution is harmless: traces and reports are
// content-addressed and coalesced, so finished work is served from the
// store, not redone. Runs before the worker pool starts.
func (s *server) recoverJournal() {
	if len(s.cfg.Recovered) == 0 {
		return
	}
	recs := journal.Reduce(s.cfg.Recovered)
	// Job IDs must keep climbing past everything the journal ever named,
	// or a new submission could collide with a recovered job.
	for _, r := range recs {
		var n int
		if _, err := fmt.Sscanf(r.Job, "job-%06d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	requeued, completed, terminal := 0, 0, 0
	for _, r := range recs {
		key, kerr := store.ParseKey(r.ReportKey)
		if kerr != nil && !terminalStatus(r.Status) {
			// A record whose report key does not parse cannot be re-run
			// safely; CRC framing makes this damage, not skew.
			log.Printf("opgated: journal: skipping unrecoverable job %s: %v", r.Job, kerr)
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &job{
			id:         r.Job,
			experiment: r.Experiment,
			threshold:  r.Threshold,
			synthetics: r.Synthetics,
			reportKey:  key,
			ctx:        ctx,
			cancel:     cancel,
			status:     r.Status,
			err:        r.Err,
			created:    time.Unix(0, r.Time),
			changed:    make(chan struct{}),
		}
		s.bindJournal(j)
		s.jobs[j.id] = j
		s.jobOrder = append(s.jobOrder, j.id)
		switch {
		case terminalStatus(r.Status):
			j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "recovered: " + r.Status})
			cancel()
			terminal++
		case func() bool { _, ok := s.getReport(key); return ok }():
			// Never resurrect completed work: the store is the authority.
			j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "recovered: report already in store"})
			j.setStatus("done")
			cancel()
			completed++
		default:
			j.status = "queued"
			j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "recovered: re-adopted after restart (was " + r.Status + ")"})
			s.pending[key] = j
			select {
			case s.queue <- j:
				s.admitCold(j)
				requeued++
			default:
				j.abortIfNotTerminal("queue full at recovery")
				delete(s.pending, key)
				cancel()
			}
		}
	}
	log.Printf("opgated: journal: recovered %d job(s): %d requeued, %d already complete, %d terminal",
		len(recs), requeued, completed, terminal)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// The wire types are the public client package's — server and client
// serialize through the same structs, so the two cannot drift.
type (
	experimentRequest = client.Request
	jobView           = client.Job
	progressEvent     = client.ProgressEvent
)

// sweepSpec packs a sweep job's whole definition into the experiment
// field — "sweep:fig6@110,90,70,50,30" — so the durable journal record
// (whose codec carries a single experiment string and threshold) holds
// everything recovery needs to re-run the job unchanged.
func sweepSpec(id string, thresholds []float64) string {
	return "sweep:" + id + "@" + opgate.FormatThresholds(thresholds)
}

// parseSweepSpec inverts sweepSpec; ok is false for plain experiment IDs.
func parseSweepSpec(spec string) (id string, thresholds []float64, ok bool) {
	rest, found := strings.CutPrefix(spec, "sweep:")
	if !found {
		return "", nil, false
	}
	id, grid, found := strings.Cut(rest, "@")
	if !found || id == "" || grid == "" {
		return "", nil, false
	}
	for _, part := range strings.Split(grid, ",") {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return "", nil, false
		}
		thresholds = append(thresholds, v)
	}
	return id, thresholds, true
}

// validExperiment reports whether id names a runnable experiment.
func validExperiment(id string) bool {
	if id == "all" {
		return true
	}
	for _, e := range opgate.Experiments() {
		if e.ID == id {
			return true
		}
	}
	return false
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Graceful shutdown in progress: refuse new work and hint the
		// client to retry against a drained-and-restarted (or peer)
		// process. The hint is the drain window — by then this process
		// is gone either way.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.DrainTimeout))
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req experimentRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// A sweep arrives as an explicit grid (thresholds) or already in spec
	// form ("sweep:fig6@110,90" — e.g. re-submitted from a job listing);
	// normalize the spec form into the grid form first.
	if id, ths, ok := parseSweepSpec(req.Experiment); ok && len(req.Thresholds) == 0 {
		req.Experiment, req.Thresholds = id, ths
	}
	sweep := len(req.Thresholds) > 0
	if !validExperiment(req.Experiment) {
		httpError(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists them)", req.Experiment)
		return
	}
	if sweep {
		if req.Experiment == "all" {
			httpError(w, http.StatusBadRequest, "a sweep needs a single experiment, not %q", req.Experiment)
			return
		}
		if req.Threshold != 0 {
			httpError(w, http.StatusBadRequest, "threshold and thresholds are exclusive (the grid is the threshold axis)")
			return
		}
		if err := opgate.ValidThresholds(req.Thresholds); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		if req.Threshold == 0 {
			req.Threshold = opgate.DefaultThreshold
		}
		if req.Threshold < 0 {
			httpError(w, http.StatusBadRequest, "threshold %g: must be > 0", req.Threshold)
			return
		}
	}
	seed, class := req.Seed, req.Class
	seedClassSet := seed != 0 || class != ""
	if seed == 0 {
		seed = 1
	}
	if class == "" {
		class = "small"
	}
	names, err := opgate.ExpandSynthetics(req.Synthetic, seed, class, seedClassSet)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Trace-backed names are validated here, at the submission boundary:
	// sessionFor treats session-construction failure as programmer error
	// (panic), and a missing import would otherwise surface only as a job
	// failure. Both are client-fixable conditions, so both answer 400 —
	// the evaluation class is fixed by the server's -quick envelope, so
	// the exact (name, class) pair the job would replay is checked.
	for _, n := range names {
		if !workload.IsTrace(n) {
			continue
		}
		if s.cfg.Store == nil {
			httpError(w, http.StatusBadRequest,
				"workload %q is trace-backed; this server has no store to replay it from", n)
			return
		}
		evalClass := workload.Ref
		if s.cfg.Quick {
			evalClass = workload.Train
		}
		if _, err := tracework.NewLibrary(s.cfg.Store).Lookup(n, evalClass); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	// The report key carries the executable's own hash: a rebuilt server
	// (changed coefficient, new schema) derives fresh addresses, so a
	// shared store can never serve a stale report. Derived directly —
	// Session.ReportKey is a thin wrapper over the same derivation
	// (asserted in the root package's tests) — so a submission that will
	// be rejected or coalesced never touches the bounded session cache.
	// Sweep jobs address their assembled grid document via SweepKey; the
	// per-threshold cells inside it are additionally content-addressed
	// under their individual ReportKeys by Session.Sweep, so a grown grid
	// only computes missing cells.
	experiment := req.Experiment
	key := store.ReportKey(req.Experiment, s.cfg.Quick, req.Threshold, names, store.SelfIdentity())
	if sweep {
		experiment = sweepSpec(req.Experiment, req.Thresholds)
		key = store.SweepKey(req.Experiment, s.cfg.Quick, req.Thresholds, names, store.SelfIdentity())
	}
	s.mu.Lock()
	if j, ok := s.pending[key]; ok && j.ctx.Err() == nil {
		// An identical live request is already queued or running: coalesce
		// onto it instead of doing the work twice. A canceled job still
		// waiting for a worker to retire it does not swallow new work —
		// the fresh job below simply replaces it in the pending map (the
		// old job's cleanup is guarded by identity, not key).
		s.mu.Unlock()
		s.srvCoalesced.Add(1)
		s.respondJob(w, http.StatusOK, j)
		return
	}
	s.mu.Unlock()

	// Admission control. A submission whose report already exists is warm
	// — serving it costs one cache/store read, so it is always admitted.
	// A cold submission buys real emulation work; under load (queue depth
	// at the shed watermark, or the cold-footprint ledger over budget)
	// it is shed first, with a Retry-After derived from observed service
	// times rather than a flat guess.
	_, warm := s.getReport(key)
	if !warm {
		depth := len(s.queue)
		wm := s.shedWatermark()
		ledger := s.coldBytes.Load()
		over := s.cfg.MaxInflightBytes > 0 && ledger > 0 &&
			ledger+coldEstimate(names) > s.cfg.MaxInflightBytes
		if (wm >= 0 && depth >= wm) || over {
			s.sheds.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.predictWait(depth)))
			httpError(w, http.StatusServiceUnavailable,
				"shedding uncached work under load (%d queued); cached and in-flight requests are still served", depth)
			return
		}
	}

	s.mu.Lock()
	if j, ok := s.pending[key]; ok && j.ctx.Err() == nil {
		// An identical twin registered while the lock was dropped for the
		// warm check: coalesce onto it.
		s.mu.Unlock()
		s.srvCoalesced.Add(1)
		s.respondJob(w, http.StatusOK, j)
		return
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: experiment,
		threshold:  req.Threshold,
		synthetics: names,
		reportKey:  key,
		direct:     req.Direct,
		ctx:        ctx,
		cancel:     cancel,
		status:     "queued",
		created:    time.Now(),
		changed:    make(chan struct{}),
	}
	s.bindJournal(j)
	j.log("queued")
	// Register before enqueueing so a fast worker never races the maps;
	// deregister if the queue turns out to be full.
	s.jobs[j.id] = j
	s.pending[key] = j
	s.mu.Unlock()

	// Journal "queued" before the job can reach a worker, so its first
	// record is always the submission (guarded by j.mu against a racing
	// cancel, whose record must then come second).
	j.journalInitial()

	s.mu.Lock()
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		if s.pending[key] == j {
			delete(s.pending, key)
		}
		s.mu.Unlock()
		cancel()
		// The journaled "queued" record needs a terminal successor, or a
		// restart would resurrect this never-enqueued job. The ID stays
		// burned — journaled IDs are never reused.
		j.abortIfNotTerminal("queue full")
		// A full queue is transient — workers are draining it right now —
		// but the honest hint is the observed drain rate, not a constant.
		w.Header().Set("Retry-After", retryAfterSeconds(s.predictWait(s.cfg.Queue)))
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.Queue)
		return
	}
	s.jobOrder = append(s.jobOrder, j.id)
	s.retireJobsLocked()
	if !warm {
		s.admitCold(j)
	}
	s.mu.Unlock()
	s.respondJob(w, http.StatusAccepted, j)
}

// coldEstimate is the footprint a cold job is assumed to add while in
// flight, for the MaxInflightBytes ledger.
func coldEstimate(synthetics []string) int64 {
	return int64(max(1, len(synthetics))) * coldSyntheticEstimate
}

// admitCold charges a job's estimated footprint to the cold ledger; the
// worker releases it when the job leaves the pipeline.
func (s *server) admitCold(j *job) {
	j.cold = true
	j.coldCharge = coldEstimate(j.synthetics)
	s.coldBytes.Add(j.coldCharge)
}

// observeService feeds one completed cold-job duration into the ring
// behind Retry-After estimates.
func (s *server) observeService(d time.Duration) {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	if len(s.svcTimes) < serviceWindow {
		s.svcTimes = append(s.svcTimes, d)
	} else {
		s.svcTimes[s.svcNext%serviceWindow] = d
	}
	s.svcNext++
}

// meanService is the mean of the observed service-time window (0 when
// nothing has been observed yet).
func (s *server) meanService() time.Duration {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	if len(s.svcTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.svcTimes {
		sum += d
	}
	return sum / time.Duration(len(s.svcTimes))
}

// predictWait estimates how long a submission arriving behind depth
// queued jobs would wait for a worker: the number of queue "waves" ahead
// of it times the mean observed service time. Before any observation the
// estimate degrades to one second — the old flat hint.
func (s *server) predictWait(depth int) time.Duration {
	mean := s.meanService()
	if mean <= 0 {
		return time.Second
	}
	waves := (depth + s.cfg.Workers) / s.cfg.Workers // ceil((depth+1)/workers)
	return time.Duration(waves) * mean
}

func (s *server) respondJob(w http.ResponseWriter, status int, j *job) {
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, j.view())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	details := opgate.Experiments()
	ids := make([]string, 0, len(details)+1)
	ids = append(ids, "all")
	for _, e := range details {
		ids = append(ids, e.ID)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": ids,
		"details":     details,
	})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("follow") == "" {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	// Streamed progress: one NDJSON frame per new progress event, flushed
	// as it happens, until the job reaches a terminal state. The loop is
	// event-driven (the job broadcasts every mutation) and tied to the
	// request context, so a disconnected client releases the handler
	// immediately instead of the stream idling against a dead connection
	// until the job ends.
	s.followers.Add(1)
	defer s.followers.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		// Grab the change channel before snapshotting: a mutation landing
		// between the two wakes the next select instead of being missed.
		changed := j.watch()
		v := j.view()
		for ; sent < len(v.Progress); sent++ {
			frame := v
			frame.Progress = v.Progress[sent : sent+1]
			if enc.Encode(frame) != nil {
				return // client went away
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminalStatus(v.Status) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		}
	}
}

// handleCancel cancels a queued or running job: its context is cancelled,
// which stops the per-workload fan-out mid-suite; the job reports status
// "canceled". A job still waiting in the queue turns terminal right here
// (its fate is sealed, so followers should not wait for a worker to drain
// it), a running one when its context error surfaces. Cancelling a
// finished job is a no-op.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	j.cancelIfQueued()
	writeJSON(w, http.StatusOK, j.view())
}

// wantsJSON reports whether the request negotiates the structured form.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, ok := s.getReport(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no report under that key (yet)")
		return
	}
	if wantsJSON(r) {
		// The stored blob is the canonical structured encoding: serve it
		// verbatim, schema and all.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	reports, err := opgate.DecodeReports(data)
	if err != nil {
		// Sweep jobs store the opgate.sweep/v1 document instead of a
		// report sequence; render its text form.
		if sw, serr := opgate.DecodeSweep(data); serr == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, sw.Format())
			return
		}
		// Keys embed the executable identity, so an undecodable blob is
		// damage, not skew; treat it as the miss it is.
		httpError(w, http.StatusNotFound, "stored report is not decodable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = opgate.TextRenderer{}.Render(w, reports)
}

// maxObjectBytes caps a PUT /v1/objects body. Packed traces are bounded
// by the emulator's trace budget and report documents are far smaller,
// so the cap only fends off abuse.
const maxObjectBytes = 64 << 20

// maxTraceBytes caps a POST /v1/traces body. Unlike the raw object API,
// an uploaded trace is fully decoded and re-validated before anything is
// stored, so the cap also bounds the ingestion work one request can buy.
const maxTraceBytes = 64 << 20

// handleTraceUpload ingests a codec-framed trace blob and registers it
// as a "trace:" workload in the server's store, after which every node
// sharing that store (directly or via the ring's object tier) can
// evaluate it by name with zero emulations. The body is the raw blob;
// the registry name and input class ride in query parameters. The
// upload is content-addressed and idempotent: re-posting the same blob
// under the same name rewrites identical bytes.
func (s *server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusServiceUnavailable, "no store configured; imported traces need -store")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "query parameter \"name\" is required")
		return
	}
	if !workload.IsTrace(name) {
		name = workload.TraceName(name)
	}
	if _, err := workload.ParseTraceName(name); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	class, err := traceClass(r.URL.Query().Get("class"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"trace body exceeds the %d-byte cap", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return
	}
	ing, err := tracework.Ingest(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := tracework.NewLibrary(s.cfg.Store).Put(name, class, ing); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":       name,
		"class":      class.String(),
		"identity":   ing.Identity.String(),
		"events":     ing.Events,
		"static_ins": ing.StaticIns,
	})
}

// handleTraceList returns the store's imported-trace index.
func (s *server) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"traces": []any{}})
		return
	}
	entries := tracework.NewLibrary(s.cfg.Store).List()
	writeJSON(w, http.StatusOK, map[string]any{"traces": entries})
}

// traceClass parses the upload API's class parameter ("" = train, the
// profiling class a quick server evaluates on).
func traceClass(s string) (workload.InputClass, error) {
	switch s {
	case "", "train":
		return workload.Train, nil
	case "ref":
		return workload.Ref, nil
	}
	return 0, fmt.Errorf("class %q: want train or ref", s)
}

// The raw object API: the node's local store tier served verbatim, the
// surface ring peers use as their remote tier. GET is a pure
// content-address lookup (404 = miss, by contract indistinguishable
// from any peer fault); PUT is idempotent — objects are immutable under
// their key — so a retried or replayed write is harmless.
func (s *server) handleObjectGet(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Objects == nil {
		httpError(w, http.StatusNotFound, "no object store configured")
		return
	}
	data, ok := s.cfg.Objects.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no object under that key")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (s *server) handleObjectPut(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Objects == nil {
		httpError(w, http.StatusServiceUnavailable, "no object store configured")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObjectBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading object body: %v", err)
		return
	}
	if err := s.cfg.Objects.Put(key, data); err != nil {
		httpError(w, http.StatusInternalServerError, "storing object: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleObjectDelete(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Objects != nil {
		s.cfg.Objects.Delete(key)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobCounts := map[string]int{}
	for _, j := range s.jobs {
		jobCounts[j.view().Status]++
	}
	s.mu.Unlock()
	emulations := s.emulationsTotal()
	resp := map[string]any{
		"ok":         true,
		"jobs":       jobCounts,
		"draining":   s.draining.Load(),
		"followers":  s.followers.Load(),
		"emulations": emulations,
		"admission": map[string]any{
			"queueDepth":        len(s.queue),
			"queueCapacity":     s.cfg.Queue,
			"shedWatermark":     s.shedWatermark(),
			"sheds":             s.sheds.Load(),
			"coldInflightBytes": s.coldBytes.Load(),
			"meanServiceMs":     s.meanService().Milliseconds(),
		},
		"serving": map[string]any{
			"coalesced": s.srvCoalesced.Load(),
			"fromCache": s.srvFromCache.Load(),
			"fromPeer":  s.srvFromPeer.Load(),
			"computed":  s.srvComputed.Load(),
		},
	}
	if s.cfg.Store != nil {
		resp["store"] = s.cfg.Store.Stats()
	}
	if s.cfg.Journal != nil {
		resp["journal"] = s.cfg.Journal.Stats()
	}
	if s.cfg.Fleet != nil {
		resp["fleet"] = s.cfg.Fleet.healthSnapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// emulationsTotal is the process-wide functional-emulation count:
// retired sessions' totals plus every live session's counter — the
// zero-on-warm probe the fleet smoke reads from /healthz.
func (s *server) emulationsTotal() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.retiredEmus.Load()
	for _, sess := range s.sessions {
		total += sess.Emulations()
	}
	return total
}

// handleReady is the readiness probe: distinct from /healthz (the process
// is alive and can answer) in that it flips to 503 the moment a drain
// begins, so load balancers stop routing new work here while in-flight
// jobs are still being answered.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// retryAfterSeconds renders a duration as a Retry-After header value
// (whole seconds, rounded up, at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs)
}

// drainPoll is the cadence at which Drain re-checks for stragglers.
const drainPoll = 10 * time.Millisecond

// Drain performs the job-level half of a graceful shutdown: flip the
// process unready (readyz 503, new POSTs refused with Retry-After), turn
// everything still queued terminal with status "aborted", then give
// running jobs cfg.DrainTimeout to finish on their own before cancelling
// them and waiting (briefly) for the cancellations to surface. It returns
// whether every job reached a terminal state — the caller's exit code.
// The HTTP listener stays up throughout so followers and pollers read the
// endgame; closing it is the caller's second half (http.Server.Shutdown).
func (s *server) Drain() bool {
	s.draining.Store(true)
	// Drain the queue in place. Workers racing this loop for a queued job
	// also check s.draining and abort rather than run, so every job that
	// was queued when the drain began ends "aborted" no matter who wins.
	aborted := 0
	for {
		select {
		case j := <-s.queue:
			if j.abortIfNotTerminal("server draining") {
				aborted++
			}
			continue
		default:
		}
		break
	}
	log.Printf("opgated: drain: aborted %d queued job(s)", aborted)

	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		if s.activeJobs() == 0 {
			log.Printf("opgated: drain: all jobs terminal")
			return true
		}
		time.Sleep(drainPoll)
	}
	// Out of patience: cancel the stragglers and give the cancellation a
	// moment to surface as a terminal status (the suite stops scheduling
	// per-workload work at the next check).
	stragglers := s.cancelActive()
	log.Printf("opgated: drain: timeout after %s, canceled %d running job(s)", s.cfg.DrainTimeout, stragglers)
	grace := time.Now().Add(min(s.cfg.DrainTimeout, 5*time.Second))
	for time.Now().Before(grace) {
		if s.activeJobs() == 0 {
			return true
		}
		time.Sleep(drainPoll)
	}
	log.Printf("opgated: drain: %d job(s) still not terminal", s.activeJobs())
	return false
}

// activeJobs counts jobs not yet in a terminal state.
func (s *server) activeJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if !j.terminal() {
			n++
		}
	}
	return n
}

// cancelActive cancels every non-terminal job's context, returning how
// many it hit.
func (s *server) cancelActive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if !j.terminal() {
			j.cancel()
			n++
		}
	}
	return n
}

// retireJobsLocked drops the oldest terminal jobs beyond the retention
// bound; active jobs always survive (s.mu held).
func (s *server) retireJobsLocked() {
	for len(s.jobOrder) > jobRetainMax {
		retired := false
		for i, id := range s.jobOrder {
			if j, ok := s.jobs[id]; ok && !j.terminal() {
				continue
			}
			delete(s.jobs, id)
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			retired = true
			break
		}
		if !retired {
			return // everything old is still active; let it finish
		}
	}
}

// sessionFor returns the shared session for a synthetic workload set,
// creating it on first use. The cache is bounded (sessionCacheMax, oldest
// first): evicting a session only drops memos — with a store attached its
// traces remain one disk read away.
func (s *server) sessionFor(synthetics []string) *opgate.Session {
	key := strings.Join(synthetics, "\x00")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[key]
	if !ok {
		opts := []opgate.Option{
			opgate.WithQuick(s.cfg.Quick),
			opgate.WithSynthetics(synthetics...),
		}
		if s.cfg.Store != nil {
			opts = append(opts, opgate.WithStore(s.cfg.Store))
		}
		var err error
		sess, err = opgate.NewSession(opts...)
		if err != nil {
			// Synthetic names were validated at submit; a failure here is
			// programmer error, not client input.
			panic(fmt.Sprintf("opgated: session construction: %v", err))
		}
		s.sessions[key] = sess
		s.sessionOrder = append(s.sessionOrder, key)
		for len(s.sessionOrder) > sessionCacheMax {
			// Roll the evicted session's emulation count into the retired
			// total so the /healthz "emulations" figure stays monotonic.
			if old, ok := s.sessions[s.sessionOrder[0]]; ok {
				s.retiredEmus.Add(old.Emulations())
			}
			delete(s.sessions, s.sessionOrder[0])
			s.sessionOrder = s.sessionOrder[1:]
		}
	}
	return sess
}

// worker drains the job queue; the pool size bounds concurrent experiment
// evaluation (each job itself fans out over the session's worker pool).
// runJob recovers its own panics, so one poisoned job can never take a
// worker — or the pool — down with it.
func (s *server) worker() {
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *server) runJob(j *job) {
	defer func() {
		if p := recover(); p != nil {
			// Isolate the blast radius to this job: record the panic and
			// its stack in the job record, mark it failed, and keep the
			// worker alive for the next job.
			j.failPanic(p, debug.Stack())
			log.Printf("opgated: job %s panicked: %v\n%s", j.id, p, debug.Stack())
		}
		j.cancel() // release the context's resources on every exit path
		if j.cold {
			s.coldBytes.Add(-j.coldCharge)
		}
		s.mu.Lock()
		if s.pending[j.reportKey] == j {
			delete(s.pending, j.reportKey)
		}
		s.mu.Unlock()
	}()
	if s.draining.Load() {
		// The process is shutting down: a job still queued now is never
		// going to run, and its submitter should resubmit elsewhere.
		j.abortIfNotTerminal("server draining")
		return
	}
	if j.ctx.Err() != nil {
		// Cancelled while still queued: never start the work (handleCancel
		// usually already made the job terminal; don't log it twice).
		if !j.terminal() {
			j.setStatus("canceled")
		}
		return
	}
	j.setStatus("running")

	// The job deadline layers on the cancel context: DELETE still cancels
	// instantly, and on expiry the suite stops scheduling work and the
	// job ends with the distinct terminal status "timeout".
	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	if hook := s.cfg.hookJobStart; hook != nil {
		hook(ctx, j)
	}

	// Warm path: an earlier job (or process, via the store) already
	// built this exact report sequence. With a tiered store this check
	// also reads through to the ring owner's tier.
	if data, ok := s.getReport(j.reportKey); ok {
		s.srvFromCache.Add(1)
		j.log(fmt.Sprintf("served from cache (%d bytes)", len(data)))
		j.setStatus("done")
		return
	}

	// Fleet path: a cold job whose report key owns on another ring
	// member is satisfied there — its store tier first, else a forwarded
	// submission — so N nodes act as one coalescing cache. Any peer
	// failure falls through to local compute, which is always correct.
	if f := s.cfg.Fleet; f != nil && !j.direct {
		if owner := f.owner(string(j.reportKey)); owner != f.self {
			if s.serveFromPeer(ctx, j, owner) {
				s.srvFromPeer.Add(1)
				j.setStatus("done")
				return
			}
			if ctx.Err() != nil {
				j.finishErr(ctx.Err())
				return
			}
			f.peerFallbacks.Add(1)
			j.log("peer unavailable; computing locally")
		}
	}

	started := time.Now()
	sess := s.sessionFor(j.synthetics)
	if id, ths, ok := parseSweepSpec(j.experiment); ok {
		sw, err := sess.Sweep(ctx, id, ths...)
		if err != nil {
			j.finishErr(err)
			return
		}
		blob, err := opgate.EncodeSweep(sw)
		if err != nil {
			j.finishErr(err)
			return
		}
		s.putReport(j.reportKey, blob)
		j.log(fmt.Sprintf("sweep report stored (%d bytes, %d thresholds)", len(blob), len(ths)))
		s.observeService(time.Since(started))
		s.srvComputed.Add(1)
		j.setStatus("done")
		return
	}
	at := opgate.AtThreshold(j.threshold)
	var reports []*opgate.Report
	if j.experiment == "all" {
		exps := opgate.Experiments()
		for i, e := range exps {
			r, err := sess.Run(ctx, e.ID, at)
			if err != nil {
				j.finishErr(fmt.Errorf("%s: %w", e.ID, err))
				return
			}
			reports = append(reports, r)
			j.log(fmt.Sprintf("%s done (%d/%d)", e.ID, i+1, len(exps)))
		}
	} else {
		r, err := sess.Run(ctx, j.experiment, at)
		if err != nil {
			j.finishErr(err)
			return
		}
		reports = []*opgate.Report{r}
		j.log(j.experiment + " done")
	}
	blob, err := opgate.EncodeReports(reports)
	if err != nil {
		j.finishErr(err)
		return
	}
	s.putReport(j.reportKey, blob)
	j.log(fmt.Sprintf("report stored (%d bytes)", len(blob)))
	// Only full cold runs feed the Retry-After estimate — cache hits
	// would drag the mean toward zero and make shed hints dishonest.
	s.observeService(time.Since(started))
	s.srvComputed.Add(1)
	j.setStatus("done")
}

// getReport serves a report blob from the in-memory cache, falling back to
// the persistent store (and re-warming the memory cache on a hit).
func (s *server) getReport(key store.Key) ([]byte, bool) {
	s.reportMu.Lock()
	data, ok := s.reports[key]
	s.reportMu.Unlock()
	if ok {
		return data, true
	}
	if s.cfg.Store == nil {
		return nil, false
	}
	data, ok = s.cfg.Store.Get(key)
	if ok {
		s.cacheReport(key, data)
	}
	return data, ok
}

func (s *server) putReport(key store.Key, data []byte) {
	s.cacheReport(key, data)
	if s.cfg.Store != nil {
		_ = s.cfg.Store.Put(key, data) // best-effort, like trace write-back
	}
}

func (s *server) cacheReport(key store.Key, data []byte) {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	if _, ok := s.reports[key]; !ok {
		s.reportOrder = append(s.reportOrder, key)
		for len(s.reportOrder) > reportCacheMax {
			delete(s.reports, s.reportOrder[0])
			s.reportOrder = s.reportOrder[1:]
		}
	}
	s.reports[key] = data
}

// terminalStatus reports whether a job status is final — delegated to the
// client package, the single owner of the status state machine.
func terminalStatus(status string) bool { return client.TerminalStatus(status) }

// job is one enqueued experiment evaluation.
type job struct {
	id         string
	experiment string
	threshold  float64
	synthetics []string
	reportKey  store.Key
	ctx        context.Context
	cancel     context.CancelFunc

	// cold marks a job admitted without a pre-existing report; coldCharge
	// is what it added to the server's in-flight ledger (released when the
	// worker retires it).
	cold       bool
	coldCharge int64

	// direct pins the job to this node (Request.Direct): a forwarded
	// submission must never forward again.
	direct bool

	// onEvent, when set, is the durable-journal hook: invoked under j.mu
	// on every status transition, so the journal's per-job order is
	// exactly the status order.
	onEvent func(status, errmsg string)

	mu       sync.Mutex
	status   string
	err      string
	stack    string // panic stack, when a panic failed the job
	created  time.Time
	progress []progressEvent
	changed  chan struct{} // closed and replaced on every mutation (broadcast)
}

// bumpLocked wakes every follower blocked on the change channel (j.mu
// held): close-and-replace is a one-to-many broadcast with no goroutine
// bookkeeping.
func (j *job) bumpLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// watch returns a channel that closes on the job's next mutation.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// journalLocked appends the transition to the durable journal, when one
// is bound (j.mu held).
func (j *job) journalLocked(status, errmsg string) {
	if j.onEvent != nil {
		j.onEvent(status, errmsg)
	}
}

// journalInitial journals the "queued" record, unless a racing cancel
// already turned the job terminal (its record is then the only one).
func (j *job) journalInitial() {
	j.mu.Lock()
	if j.status == "queued" {
		j.journalLocked("queued", "")
	}
	j.mu.Unlock()
}

func (j *job) setStatus(status string) {
	j.mu.Lock()
	j.status = status
	j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: status})
	j.journalLocked(status, "")
	j.bumpLocked()
	j.mu.Unlock()
}

// cancelIfQueued turns a not-yet-started job terminal immediately; a
// running job keeps its status until the context error surfaces.
func (j *job) cancelIfQueued() {
	j.mu.Lock()
	if j.status == "queued" {
		j.status = "canceled"
		j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "canceled"})
		j.journalLocked("canceled", "")
		j.bumpLocked()
	}
	j.mu.Unlock()
}

// abortIfNotTerminal turns a job that will never run terminal with status
// "aborted" (drain, or a refused enqueue), reporting whether it did the
// flip.
func (j *job) abortIfNotTerminal(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return false
	}
	j.status = "aborted"
	j.err = reason
	j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "aborted: " + reason})
	j.journalLocked("aborted", reason)
	j.bumpLocked()
	return true
}

// finishErr records a terminal failure, mapping context cancellation to
// "canceled" and a blown job deadline to "timeout" instead of a generic
// failure.
func (j *job) finishErr(err error) {
	switch {
	case errors.Is(err, context.Canceled):
		j.setStatus("canceled")
		return
	case errors.Is(err, context.DeadlineExceeded):
		j.mu.Lock()
		j.status = "timeout"
		j.err = err.Error()
		j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "timeout: " + err.Error()})
		j.journalLocked("timeout", j.err)
		j.bumpLocked()
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	j.status = "failed"
	j.err = err.Error()
	j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: "failed: " + err.Error()})
	j.journalLocked("failed", j.err)
	j.bumpLocked()
	j.mu.Unlock()
}

// failPanic records a recovered panic: the job fails with the panic value
// as its error and the stack preserved in the job record.
func (j *job) failPanic(p any, stack []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return // already terminal; the log line still carries the stack
	}
	j.status = "failed"
	j.err = fmt.Sprintf("panic: %v", p)
	j.stack = string(stack)
	j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: j.err})
	j.journalLocked("failed", j.err)
	j.bumpLocked()
}

func (j *job) log(msg string) {
	j.mu.Lock()
	j.progress = append(j.progress, progressEvent{Time: time.Now(), Msg: msg})
	j.bumpLocked()
	j.mu.Unlock()
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status)
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:         j.id,
		Experiment: j.experiment,
		Threshold:  j.threshold,
		Synthetics: j.synthetics,
		Status:     j.status,
		ReportKey:  string(j.reportKey),
		Error:      j.err,
		Stack:      j.stack,
		Created:    j.created,
		Progress:   append([]progressEvent(nil), j.progress...),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
