package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"opgate"
	"opgate/internal/store"
)

// serverConfig fixes the evaluation envelope for the process: every job
// shares it, so every job can share the memoized sessions underneath.
type serverConfig struct {
	Quick   bool         // evaluate on train inputs
	Workers int          // worker-pool size (concurrent jobs)
	Queue   int          // queued-job bound; excess POSTs get 503
	Store   *store.Store // optional persistent trace/report store
}

// server is the opgated HTTP service: a bounded worker pool draining an
// experiment queue over shared opgate sessions. One session exists per
// distinct synthetic workload set; all of them share the process-wide
// memo semantics of the session's suite (per-key singleflight), so
// concurrent jobs that touch the same (workload, variant) coalesce on one
// emulation, and the persistent store extends that coalescing across
// restarts. Reports are stored in their structured canonical-JSON form
// and rendered at read time (text by default, the stored JSON under
// Accept: application/json).
type server struct {
	cfg serverConfig
	mux *http.ServeMux

	queue chan *job

	mu           sync.Mutex
	jobs         map[string]*job
	jobOrder     []string                   // creation order, for terminal-job retirement
	pending      map[store.Key]*job         // queued/running jobs by report key
	sessions     map[string]*opgate.Session // one memoized session per synthetic set
	sessionOrder []string                   // creation order, for session eviction
	seq          int

	reportMu    sync.Mutex
	reports     map[store.Key][]byte // in-memory report cache (also persisted)
	reportOrder []store.Key
}

// reportCacheMax bounds the in-memory report cache (FIFO); the persistent
// store, when configured, keeps everything older.
const reportCacheMax = 128

// sessionCacheMax bounds the memoized sessions: synthetic specs are
// client-supplied (a 64-bit seed space), so without a cap a request loop
// over distinct seeds would grow session memos — built programs, packed
// traces, simulation results — without bound. Evicting a session only
// costs recomputation (the persistent store still serves its traces).
const sessionCacheMax = 8

// jobRetainMax bounds the finished-job history; queued and running jobs
// are never retired (the queue bound caps how many of those can exist).
const jobRetainMax = 512

// newServer builds the service and starts its worker pool.
func newServer(cfg serverConfig) *server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	s := &server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    make(chan *job, cfg.Queue),
		jobs:     map[string]*job{},
		pending:  map[store.Key]*job{},
		sessions: map[string]*opgate.Session{},
		reports:  map[store.Key][]byte{},
	}
	s.mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/reports/{key}", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// experimentRequest is the POST /v1/experiments body. Experiment names an
// entry of the experiment list (or "all"); Synthetic/Seed/Class widen the
// workload set with generated programs, in exactly the syntax of ogbench's
// -synthetic/-seed/-class flags.
type experimentRequest struct {
	Experiment string  `json:"experiment"`
	Threshold  float64 `json:"threshold,omitempty"` // VRS threshold; 0 means the default
	Synthetic  string  `json:"synthetic,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Class      string  `json:"class,omitempty"`
}

// jobView is the wire form of a job, also used as the follow-stream frame.
type jobView struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Threshold  float64         `json:"threshold"`
	Synthetics []string        `json:"synthetics,omitempty"`
	Status     string          `json:"status"`
	ReportKey  string          `json:"report_key"`
	Error      string          `json:"error,omitempty"`
	Created    time.Time       `json:"created"`
	Progress   []progressEvent `json:"progress"`
}

type progressEvent struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// validExperiment reports whether id names a runnable experiment.
func validExperiment(id string) bool {
	if id == "all" {
		return true
	}
	for _, e := range opgate.Experiments() {
		if e.ID == id {
			return true
		}
	}
	return false
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req experimentRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !validExperiment(req.Experiment) {
		httpError(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists them)", req.Experiment)
		return
	}
	if req.Threshold == 0 {
		req.Threshold = opgate.DefaultThreshold
	}
	if req.Threshold < 0 {
		httpError(w, http.StatusBadRequest, "threshold %g: must be > 0", req.Threshold)
		return
	}
	seed, class := req.Seed, req.Class
	seedClassSet := seed != 0 || class != ""
	if seed == 0 {
		seed = 1
	}
	if class == "" {
		class = "small"
	}
	names, err := opgate.ExpandSynthetics(req.Synthetic, seed, class, seedClassSet)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The report key carries the executable's own hash: a rebuilt server
	// (changed coefficient, new schema) derives fresh addresses, so a
	// shared store can never serve a stale report. Derived directly —
	// Session.ReportKey is a thin wrapper over the same derivation
	// (asserted in the root package's tests) — so a submission that will
	// be rejected or coalesced never touches the bounded session cache.
	key := store.ReportKey(req.Experiment, s.cfg.Quick, req.Threshold, names, store.SelfIdentity())
	s.mu.Lock()
	if j, ok := s.pending[key]; ok && j.ctx.Err() == nil {
		// An identical live request is already queued or running: coalesce
		// onto it instead of doing the work twice. A canceled job still
		// waiting for a worker to retire it does not swallow new work —
		// the fresh job below simply replaces it in the pending map (the
		// old job's cleanup is guarded by identity, not key).
		s.mu.Unlock()
		s.respondJob(w, http.StatusOK, j)
		return
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: req.Experiment,
		threshold:  req.Threshold,
		synthetics: names,
		reportKey:  key,
		ctx:        ctx,
		cancel:     cancel,
		status:     "queued",
		created:    time.Now(),
	}
	j.log("queued")
	// Register before enqueueing so a fast worker never races the maps;
	// deregister if the queue turns out to be full.
	s.jobs[j.id] = j
	s.pending[key] = j
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		delete(s.pending, key)
		s.seq--
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.Queue)
		return
	}
	s.jobOrder = append(s.jobOrder, j.id)
	s.retireJobsLocked()
	s.mu.Unlock()
	s.respondJob(w, http.StatusAccepted, j)
}

func (s *server) respondJob(w http.ResponseWriter, status int, j *job) {
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, status, j.view())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	details := opgate.Experiments()
	ids := make([]string, 0, len(details)+1)
	ids = append(ids, "all")
	for _, e := range details {
		ids = append(ids, e.ID)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": ids,
		"details":     details,
	})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("follow") == "" {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	// Streamed progress: one NDJSON frame per new progress event, flushed
	// as it happens, until the job reaches a terminal state.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		v := j.view()
		for ; sent < len(v.Progress); sent++ {
			frame := v
			frame.Progress = v.Progress[sent : sent+1]
			if enc.Encode(frame) != nil {
				return // client went away
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminalStatus(v.Status) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// handleCancel cancels a queued or running job: its context is cancelled,
// which stops the per-workload fan-out mid-suite; the job reports status
// "canceled". A job still waiting in the queue turns terminal right here
// (its fate is sealed, so followers should not wait for a worker to drain
// it), a running one when its context error surfaces. Cancelling a
// finished job is a no-op.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	j.cancelIfQueued()
	writeJSON(w, http.StatusOK, j.view())
}

// wantsJSON reports whether the request negotiates the structured form.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, ok := s.getReport(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no report under that key (yet)")
		return
	}
	if wantsJSON(r) {
		// The stored blob is the canonical structured encoding: serve it
		// verbatim, schema and all.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	reports, err := opgate.DecodeReports(data)
	if err != nil {
		// Keys embed the executable identity, so an undecodable blob is
		// damage, not skew; treat it as the miss it is.
		httpError(w, http.StatusNotFound, "stored report is not decodable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = opgate.TextRenderer{}.Render(w, reports)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobCounts := map[string]int{}
	for _, j := range s.jobs {
		jobCounts[j.view().Status]++
	}
	s.mu.Unlock()
	resp := map[string]any{"ok": true, "jobs": jobCounts}
	if s.cfg.Store != nil {
		resp["store"] = s.cfg.Store.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// retireJobsLocked drops the oldest terminal jobs beyond the retention
// bound; active jobs always survive (s.mu held).
func (s *server) retireJobsLocked() {
	for len(s.jobOrder) > jobRetainMax {
		retired := false
		for i, id := range s.jobOrder {
			if j, ok := s.jobs[id]; ok && !j.terminal() {
				continue
			}
			delete(s.jobs, id)
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			retired = true
			break
		}
		if !retired {
			return // everything old is still active; let it finish
		}
	}
}

// sessionFor returns the shared session for a synthetic workload set,
// creating it on first use. The cache is bounded (sessionCacheMax, oldest
// first): evicting a session only drops memos — with a store attached its
// traces remain one disk read away.
func (s *server) sessionFor(synthetics []string) *opgate.Session {
	key := strings.Join(synthetics, "\x00")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[key]
	if !ok {
		opts := []opgate.Option{
			opgate.WithQuick(s.cfg.Quick),
			opgate.WithSynthetics(synthetics...),
		}
		if s.cfg.Store != nil {
			opts = append(opts, opgate.WithStore(s.cfg.Store))
		}
		var err error
		sess, err = opgate.NewSession(opts...)
		if err != nil {
			// Synthetic names were validated at submit; a failure here is
			// programmer error, not client input.
			panic(fmt.Sprintf("opgated: session construction: %v", err))
		}
		s.sessions[key] = sess
		s.sessionOrder = append(s.sessionOrder, key)
		for len(s.sessionOrder) > sessionCacheMax {
			delete(s.sessions, s.sessionOrder[0])
			s.sessionOrder = s.sessionOrder[1:]
		}
	}
	return sess
}

// worker drains the job queue; the pool size bounds concurrent experiment
// evaluation (each job itself fans out over the session's worker pool).
func (s *server) worker() {
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *server) runJob(j *job) {
	defer func() {
		j.cancel() // release the context's resources on every exit path
		s.mu.Lock()
		if s.pending[j.reportKey] == j {
			delete(s.pending, j.reportKey)
		}
		s.mu.Unlock()
	}()
	if j.ctx.Err() != nil {
		// Cancelled while still queued: never start the work (handleCancel
		// usually already made the job terminal; don't log it twice).
		if !j.terminal() {
			j.setStatus("canceled")
		}
		return
	}
	j.setStatus("running")

	// Warm path: an earlier job (or process, via the store) already
	// built this exact report sequence.
	if data, ok := s.getReport(j.reportKey); ok {
		j.log(fmt.Sprintf("served from cache (%d bytes)", len(data)))
		j.setStatus("done")
		return
	}

	sess := s.sessionFor(j.synthetics)
	at := opgate.AtThreshold(j.threshold)
	var reports []*opgate.Report
	if j.experiment == "all" {
		exps := opgate.Experiments()
		for i, e := range exps {
			r, err := sess.Run(j.ctx, e.ID, at)
			if err != nil {
				j.finishErr(fmt.Errorf("%s: %w", e.ID, err))
				return
			}
			reports = append(reports, r)
			j.log(fmt.Sprintf("%s done (%d/%d)", e.ID, i+1, len(exps)))
		}
	} else {
		r, err := sess.Run(j.ctx, j.experiment, at)
		if err != nil {
			j.finishErr(err)
			return
		}
		reports = []*opgate.Report{r}
		j.log(j.experiment + " done")
	}
	blob, err := opgate.EncodeReports(reports)
	if err != nil {
		j.finishErr(err)
		return
	}
	s.putReport(j.reportKey, blob)
	j.log(fmt.Sprintf("report stored (%d bytes)", len(blob)))
	j.setStatus("done")
}

// getReport serves a report blob from the in-memory cache, falling back to
// the persistent store (and re-warming the memory cache on a hit).
func (s *server) getReport(key store.Key) ([]byte, bool) {
	s.reportMu.Lock()
	data, ok := s.reports[key]
	s.reportMu.Unlock()
	if ok {
		return data, true
	}
	if s.cfg.Store == nil {
		return nil, false
	}
	data, ok = s.cfg.Store.Get(key)
	if ok {
		s.cacheReport(key, data)
	}
	return data, ok
}

func (s *server) putReport(key store.Key, data []byte) {
	s.cacheReport(key, data)
	if s.cfg.Store != nil {
		_ = s.cfg.Store.Put(key, data) // best-effort, like trace write-back
	}
}

func (s *server) cacheReport(key store.Key, data []byte) {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	if _, ok := s.reports[key]; !ok {
		s.reportOrder = append(s.reportOrder, key)
		for len(s.reportOrder) > reportCacheMax {
			delete(s.reports, s.reportOrder[0])
			s.reportOrder = s.reportOrder[1:]
		}
	}
	s.reports[key] = data
}

// terminalStatus reports whether a job status is final.
func terminalStatus(status string) bool {
	return status == "done" || status == "failed" || status == "canceled"
}

// job is one enqueued experiment evaluation.
type job struct {
	id         string
	experiment string
	threshold  float64
	synthetics []string
	reportKey  store.Key
	ctx        context.Context
	cancel     context.CancelFunc

	mu       sync.Mutex
	status   string
	err      string
	created  time.Time
	progress []progressEvent
}

func (j *job) setStatus(status string) {
	j.mu.Lock()
	j.status = status
	j.progress = append(j.progress, progressEvent{time.Now(), status})
	j.mu.Unlock()
}

// cancelIfQueued turns a not-yet-started job terminal immediately; a
// running job keeps its status until the context error surfaces.
func (j *job) cancelIfQueued() {
	j.mu.Lock()
	if j.status == "queued" {
		j.status = "canceled"
		j.progress = append(j.progress, progressEvent{time.Now(), "canceled"})
	}
	j.mu.Unlock()
}

// finishErr records a terminal failure, mapping context cancellation to
// the "canceled" status instead of a generic failure.
func (j *job) finishErr(err error) {
	if errors.Is(err, context.Canceled) {
		j.setStatus("canceled")
		return
	}
	j.mu.Lock()
	j.status = "failed"
	j.err = err.Error()
	j.progress = append(j.progress, progressEvent{time.Now(), "failed: " + err.Error()})
	j.mu.Unlock()
}

func (j *job) log(msg string) {
	j.mu.Lock()
	j.progress = append(j.progress, progressEvent{time.Now(), msg})
	j.mu.Unlock()
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status)
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:         j.id,
		Experiment: j.experiment,
		Threshold:  j.threshold,
		Synthetics: j.synthetics,
		Status:     j.status,
		ReportKey:  string(j.reportKey),
		Error:      j.err,
		Created:    j.created,
		Progress:   append([]progressEvent(nil), j.progress...),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
