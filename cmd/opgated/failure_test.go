package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opgate/client"
)

// awaitStatus polls a job until it reports the wanted status.
func awaitStatus(t *testing.T, ts *httptest.Server, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var v jobView
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		if terminalStatus(v.Status) {
			t.Fatalf("job %s ended %q (%s), want %q", id, v.Status, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q (last %q)", id, want, v.Status)
	return jobView{}
}

// TestGracefulDrain is the lifecycle acceptance test: with one running
// and one queued job, Drain flips /readyz unready, refuses new POSTs with
// 503 + Retry-After, turns the queued job "aborted", lets the running job
// finish inside the drain window, and reports a clean drain.
func TestGracefulDrain(t *testing.T) {
	block := make(chan struct{})
	cfg := serverConfig{
		Quick: true, Workers: 1, Queue: 4, DrainTimeout: 20 * time.Second,
		hookJobStart: func(ctx context.Context, j *job) {
			if j.experiment == "fig2" {
				<-block // hold the worker until the drain is underway
			}
		},
	}
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	running, code := submit(t, ts, `{"experiment":"fig2"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	awaitStatus(t, ts, running.ID, "running")
	queued, code := submit(t, ts, `{"experiment":"table1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit returned %d", code)
	}

	drained := make(chan bool, 1)
	go func() { drained <- srv.Drain() }()

	// The queued job turns terminal "aborted" without ever running.
	if v := awaitJob(t, ts, queued.ID); v.Status != "aborted" {
		t.Fatalf("queued job ended %q, want aborted", v.Status)
	}
	// Readiness flips the moment the drain begins; liveness stays OK.
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain returned %d, want 503", rr.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain returned %d, want 200", hr.StatusCode)
	}
	// New work is refused with a retry hint.
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"experiment":"table2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 carries no Retry-After")
	}

	// Release the running job: it finishes naturally and the drain is clean.
	close(block)
	select {
	case clean := <-drained:
		if !clean {
			t.Fatal("drain reported stragglers despite all jobs finishing")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("drain did not return")
	}
	if v := awaitJob(t, ts, running.ID); v.Status != "done" {
		t.Fatalf("running job ended %q (%s), want done", v.Status, v.Error)
	}
}

// TestDrainCancelsStragglers: a running job that outlives the drain
// timeout is cancelled and still reaches a terminal state, so the drain
// completes (cleanly) instead of hanging on a stuck job.
func TestDrainCancelsStragglers(t *testing.T) {
	cfg := serverConfig{
		Quick: true, Workers: 1, Queue: 4, DrainTimeout: 200 * time.Millisecond,
		hookJobStart: func(ctx context.Context, j *job) {
			<-ctx.Done() // a job that only yields to cancellation
		},
	}
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	stuck, _ := submit(t, ts, `{"experiment":"fig2"}`)
	awaitStatus(t, ts, stuck.ID, "running")
	if !srv.Drain() {
		t.Fatal("drain did not settle the stuck job after cancelling it")
	}
	if v := awaitJob(t, ts, stuck.ID); v.Status != "canceled" {
		t.Fatalf("stuck job ended %q, want canceled", v.Status)
	}
}

// TestJobTimeout: a job that exceeds -job-timeout ends with the distinct
// terminal status "timeout" and leaves no report behind.
func TestJobTimeout(t *testing.T) {
	cfg := serverConfig{
		Quick: true, Workers: 1, Queue: 4, JobTimeout: 100 * time.Millisecond,
		hookJobStart: func(ctx context.Context, j *job) {
			if j.experiment == "fig2" {
				<-ctx.Done() // burn the whole deadline before the run starts
			}
		},
	}
	ts := httptest.NewServer(newServer(cfg))
	t.Cleanup(ts.Close)

	v, code := submit(t, ts, `{"experiment":"fig2"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	done := awaitJob(t, ts, v.ID)
	if done.Status != "timeout" {
		t.Fatalf("job ended %q (%s), want timeout", done.Status, done.Error)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Fatalf("timeout job's error is %q, want a deadline error", done.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/reports/" + done.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("timed-out job left a report behind (%d)", resp.StatusCode)
	}
}

// TestPanicIsolation: a panicking job fails alone — the job records the
// panic message and stack, and the same single worker then serves the
// next job, proving the pool survived.
func TestPanicIsolation(t *testing.T) {
	cfg := serverConfig{
		Quick: true, Workers: 1, Queue: 4,
		hookJobStart: func(ctx context.Context, j *job) {
			if j.experiment == "fig2" {
				panic("injected experiment panic")
			}
		},
	}
	ts := httptest.NewServer(newServer(cfg))
	t.Cleanup(ts.Close)

	v, _ := submit(t, ts, `{"experiment":"fig2"}`)
	done := awaitJob(t, ts, v.ID)
	if done.Status != "failed" {
		t.Fatalf("panicked job ended %q, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "panic: injected experiment panic") {
		t.Fatalf("panicked job's error is %q", done.Error)
	}
	if !strings.Contains(done.Stack, "runJob") {
		t.Fatalf("job record carries no useful stack: %q", done.Stack)
	}

	// The pool is alive: the only worker picks up and finishes new work.
	next, code := submit(t, ts, `{"experiment":"table1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit returned %d", code)
	}
	if v := awaitJob(t, ts, next.ID); v.Status != "done" {
		t.Fatalf("post-panic job ended %q (%s)", v.Status, v.Error)
	}
}

// TestFollowDisconnectReleasesHandler is the satellite bugfix's probe: a
// follower that goes away mid-job releases its handler promptly (the
// stream is tied to the request context) instead of idling until the job
// ends.
func TestFollowDisconnectReleasesHandler(t *testing.T) {
	block := make(chan struct{})
	cfg := serverConfig{
		Quick: true, Workers: 1, Queue: 4,
		hookJobStart: func(ctx context.Context, j *job) {
			select {
			case <-block:
			case <-ctx.Done():
			}
		},
	}
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(block) })

	v, _ := submit(t, ts, `{"experiment":"fig2"}`)
	awaitStatus(t, ts, v.ID, "running")

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the handler is registered, then vanish.
	deadline := time.Now().Add(5 * time.Second)
	for srv.followers.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.followers.Load() != 1 {
		t.Fatal("follow handler never registered")
	}
	resp.Body.Close()

	deadline = time.Now().Add(5 * time.Second)
	for srv.followers.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.followers.Load() != 0 {
		t.Fatal("follow handler still running after the client disconnected")
	}
	// The job is genuinely still in flight — the handler exit came from
	// the disconnect, not from the job finishing.
	if got := awaitStatus(t, ts, v.ID, "running"); terminalStatus(got.Status) {
		t.Fatalf("job unexpectedly terminal: %q", got.Status)
	}
}

// TestClientEndToEnd drives the real server through the public retrying
// client: submit+wait+decode via Run, live progress via Follow, and
// cancellation via Cancel.
func TestClientEndToEnd(t *testing.T) {
	block := make(chan struct{})
	cfg := serverConfig{
		Quick: true, Workers: 2, Queue: 8,
		hookJobStart: func(ctx context.Context, j *job) {
			if j.experiment == "fig4" {
				select {
				case <-block:
				case <-ctx.Done():
				}
			}
		},
	}
	ts := httptest.NewServer(newServer(cfg))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(block) })

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := c.Run(ctx, client.Request{Experiment: "table1", Threshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].ID != "table1" {
		t.Fatalf("Run decoded %d reports (first ID %q)", len(res.Reports), res.Reports[0].ID)
	}
	if res.Sweep != nil || res.Job.Status != client.StatusDone {
		t.Fatalf("Run result misclassified: %+v", res)
	}

	// Follow sees the full lifecycle of a fresh job.
	j, err := c.Submit(ctx, client.Request{Experiment: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	var statuses []string
	last, err := c.Follow(ctx, j.ID, func(f client.Job) error {
		statuses = append(statuses, f.Status)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Status != client.StatusDone || len(statuses) < 2 {
		t.Fatalf("follow ended %q after %d frames", last.Status, len(statuses))
	}

	// Cancel a hook-stalled job through the client.
	stalled, err := c.Submit(ctx, client.Request{Experiment: "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, stalled.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, stalled.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.StatusCanceled {
		t.Fatalf("canceled job ended %q", final.Status)
	}
}
