// Command opgated serves the paper's experiment pipeline over HTTP: a
// long-running simulation service with a bounded worker pool, shared
// memoized suites, and (with -store) a persistent content-addressed
// trace/report store, so repeated and concurrent requests re-emulate
// nothing already seen.
//
//	opgated -addr :8080 -store /var/cache/opgate -workers 4 -quick \
//	        -job-timeout 10m -drain-timeout 30s
//
// Durability: with -journal (default "auto": <store>/journal.log whenever
// -store is set, disabled otherwise; "off" disables, any other value is
// the journal file path) every job status transition is appended to a
// CRC-framed, fsynced, crash-safe journal. At boot the journal is
// replayed: jobs that were queued or running when the process died —
// SIGKILL included — are re-adopted under their original job IDs, so a
// client's Wait/Follow against the restarted process finds its job; jobs
// whose report already landed in the content-addressed store are marked
// done without re-running; terminal jobs reappear as visible history. The
// journal compacts itself once it outgrows a fixed budget, keeping only
// jobs that are still in flight.
//
// Admission control: a submission whose report already exists (in cache
// or store) is always admitted — serving it is one read. Cold
// submissions, which buy real emulation work, are shed with 503 once the
// queue depth reaches -shed-watermark (default 3/4 of -queue; -1
// disables) or the estimated footprint of admitted cold jobs exceeds
// -max-inflight-bytes (0 = unbounded). The Retry-After on a shed or
// queue-full response is derived from observed job service times, not a
// constant.
//
// Fleet: with -peers (the comma-separated base URLs of every member,
// this node included) and -self (this node's URL as it appears there),
// the node joins a coordinator-free ring. Report keys are routed by
// consistent hashing; a submission whose key owns on a peer is
// satisfied from that peer's store or forwarded there (the "direct"
// request field pins a forwarded job to its receiver), and any peer
// failure — down, draining, version-skewed — falls back to local
// compute with no request error. The node's store becomes two tiers:
// the local directory in front, ring peers behind (read-through,
// async write-back). All members must run the same -peers list; ring
// membership, per-peer health, and forwarding counters appear under
// "fleet" in /healthz. cmd/ogload load-tests a node or fleet and
// scripts/fleet_smoke.sh holds a live 2-node ring to the contract.
//
// API (JSON unless noted):
//
//	POST   /v1/experiments    {"experiment":"fig8","threshold":50,
//	                           "synthetic":"narrow,pointer","seed":7}
//	                          → 202 + job; identical in-flight requests
//	                          coalesce onto one job (200); 503 +
//	                          Retry-After when the queue is full or the
//	                          server is draining
//	GET    /v1/experiments    list runnable experiment IDs and titles
//	GET    /v1/jobs/{id}      job snapshot; ?follow=1 streams NDJSON
//	                          progress frames until the job finishes
//	                          (the stream ends promptly if the client
//	                          disconnects)
//	DELETE /v1/jobs/{id}      cancel a queued or running job: the
//	                          per-workload fan-out stops mid-suite and
//	                          the job reports status "canceled"
//	GET    /v1/reports/{key}  the report sequence from the store/cache:
//	                          text/plain by default, the canonical
//	                          structured JSON (schema opgate.reports/v1)
//	                          under Accept: application/json
//	GET    /v1/objects/{key}  raw object bytes from this node's LOCAL
//	                          store tier (404 on miss); PUT stores,
//	                          DELETE drops — the fleet replication API,
//	                          deliberately never consulting peers so
//	                          object traffic terminates in one hop
//	GET    /healthz           liveness + job, store, serving-path, and
//	                          fleet counters
//	GET    /readyz            readiness: 503 the moment a drain begins
//
// Failure semantics: jobs run under a deadline (-job-timeout, terminal
// status "timeout"), a panicking job fails alone ("failed", stack in the
// job record) without taking the worker pool down, and SIGTERM/SIGINT
// triggers a graceful drain — new submissions are refused, running jobs
// get -drain-timeout to finish (then are canceled), still-queued jobs
// turn terminal with status "aborted", and the process exits 0 on a
// clean drain. A SIGKILL is covered by the journal (above): the next
// boot re-adopts whatever was in flight. The companion Go client
// (package opgate/client) wraps this API with retries, Retry-After-aware
// backoff, and a report-store fallback that survives a server restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"opgate/client"
	"opgate/internal/journal"
	"opgate/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	workers := flag.Int("workers", 2, "concurrent experiment jobs")
	queue := flag.Int("queue", 256, "queued-job bound (excess submissions get 503)")
	storeDir := flag.String("store", "", "persistent trace/report store directory")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	journalPath := flag.String("journal", "auto", "durable job journal: a file path, \"auto\" (<store>/journal.log when -store is set), or \"off\"")
	shedWatermark := flag.Int("shed-watermark", 0, "queue depth at which uncached submissions shed with 503 (0 = 3/4 of -queue; -1 disables)")
	maxInflight := flag.String("max-inflight-bytes", "0", "estimated uncached-work footprint admitted concurrently, e.g. 64MiB (0 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline once running (terminal status \"timeout\"; 0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running jobs before cancelling them")
	peers := flag.String("peers", "", "comma-separated base URLs of every fleet member (including this node); enables consistent-hash routing")
	self := flag.String("self", "", "this node's base URL as it appears in -peers (required with -peers)")
	flag.Parse()

	cfg := serverConfig{
		Quick: *quick, Workers: *workers, Queue: *queue,
		JobTimeout: *jobTimeout, DrainTimeout: *drainTimeout,
		ShedWatermark: *shedWatermark,
	}
	inflight, err := store.ParseSize(*maxInflight)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opgated: -max-inflight-bytes:", err)
		os.Exit(2)
	}
	cfg.MaxInflightBytes = inflight
	var local *store.DirBackend
	if *storeDir != "" {
		limit, err := store.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated: -store-limit:", err)
			os.Exit(2)
		}
		local, err = store.OpenDir(*storeDir, limit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated:", err)
			os.Exit(2)
		}
		cfg.Store = store.NewStore(local)
		cfg.Objects = local
	}
	if *peers != "" {
		members := strings.Split(*peers, ",")
		for i := range members {
			members[i] = strings.TrimRight(strings.TrimSpace(members[i]), "/")
		}
		fl, err := newFleet(strings.TrimRight(*self, "/"), members)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated:", err)
			os.Exit(2)
		}
		cfg.Fleet = fl
		if local != nil {
			// The node's store becomes two-tier: the local directory in
			// front, ring peers behind (read-through, async write-back).
			// /v1/objects keeps serving the *local* tier only, so peer
			// object traffic always terminates here.
			cfg.Store = store.NewStore(store.NewTiered(local, fl.remote(), 0))
		}
		log.Printf("opgated: fleet of %d (self %s)", len(members), *self)
	}
	jpath := *journalPath
	if jpath == "auto" {
		jpath = ""
		if *storeDir != "" {
			jpath = filepath.Join(*storeDir, "journal.log")
		}
	} else if jpath == "off" {
		jpath = ""
	}
	if jpath != "" {
		jnl, recovered, err := journal.Open(jpath, journal.DefaultCompactBudget, client.TerminalStatus, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated: -journal:", err)
			os.Exit(2)
		}
		defer jnl.Close()
		cfg.Journal = jnl
		cfg.Recovered = recovered
		log.Printf("opgated: journal %s: replayed %d record(s)", jpath, len(recovered))
	}
	s := newServer(cfg)
	// No WriteTimeout: ?follow=1 streams legitimately outlive any fixed
	// bound. ReadHeaderTimeout fends off slow-header connections and
	// IdleTimeout reaps idle keep-alives, so neither can pin the drain.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("opgated: listening on %s (quick=%v workers=%d store=%q job-timeout=%s drain-timeout=%s)",
		*addr, *quick, *workers, *storeDir, *jobTimeout, *drainTimeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Fatal("opgated: ", err)
	case got := <-sig:
		log.Printf("opgated: %v: draining (timeout %s)", got, *drainTimeout)
		clean := s.Drain()
		// Jobs are settled; now close the listener and let in-flight
		// responses (follow streams reading the endgame) finish.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		if !clean {
			log.Printf("opgated: drain timed out with jobs still active")
			os.Exit(1)
		}
		log.Printf("opgated: drained cleanly")
	}
}
