// Command opgated serves the paper's experiment pipeline over HTTP: a
// long-running simulation service with a bounded worker pool, shared
// memoized suites, and (with -store) a persistent content-addressed
// trace/report store, so repeated and concurrent requests re-emulate
// nothing already seen.
//
//	opgated -addr :8080 -store /var/cache/opgate -workers 4 -quick \
//	        -job-timeout 10m -drain-timeout 30s
//
// API (JSON unless noted):
//
//	POST   /v1/experiments    {"experiment":"fig8","threshold":50,
//	                           "synthetic":"narrow,pointer","seed":7}
//	                          → 202 + job; identical in-flight requests
//	                          coalesce onto one job (200); 503 +
//	                          Retry-After when the queue is full or the
//	                          server is draining
//	GET    /v1/experiments    list runnable experiment IDs and titles
//	GET    /v1/jobs/{id}      job snapshot; ?follow=1 streams NDJSON
//	                          progress frames until the job finishes
//	                          (the stream ends promptly if the client
//	                          disconnects)
//	DELETE /v1/jobs/{id}      cancel a queued or running job: the
//	                          per-workload fan-out stops mid-suite and
//	                          the job reports status "canceled"
//	GET    /v1/reports/{key}  the report sequence from the store/cache:
//	                          text/plain by default, the canonical
//	                          structured JSON (schema opgate.reports/v1)
//	                          under Accept: application/json
//	GET    /healthz           liveness + job and store counters
//	GET    /readyz            readiness: 503 the moment a drain begins
//
// Failure semantics: jobs run under a deadline (-job-timeout, terminal
// status "timeout"), a panicking job fails alone ("failed", stack in the
// job record) without taking the worker pool down, and SIGTERM/SIGINT
// triggers a graceful drain — new submissions are refused, running jobs
// get -drain-timeout to finish (then are canceled), still-queued jobs
// turn terminal with status "aborted", and the process exits 0 on a
// clean drain. The companion Go client (package opgate/client) wraps
// this API with retries and Retry-After-aware backoff.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opgate/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	workers := flag.Int("workers", 2, "concurrent experiment jobs")
	queue := flag.Int("queue", 256, "queued-job bound (excess submissions get 503)")
	storeDir := flag.String("store", "", "persistent trace/report store directory")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline once running (terminal status \"timeout\"; 0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running jobs before cancelling them")
	flag.Parse()

	cfg := serverConfig{
		Quick: *quick, Workers: *workers, Queue: *queue,
		JobTimeout: *jobTimeout, DrainTimeout: *drainTimeout,
	}
	if *storeDir != "" {
		limit, err := store.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated: -store-limit:", err)
			os.Exit(2)
		}
		st, err := store.Open(*storeDir, limit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated:", err)
			os.Exit(2)
		}
		cfg.Store = st
	}
	s := newServer(cfg)
	// No WriteTimeout: ?follow=1 streams legitimately outlive any fixed
	// bound. ReadHeaderTimeout fends off slow-header connections and
	// IdleTimeout reaps idle keep-alives, so neither can pin the drain.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("opgated: listening on %s (quick=%v workers=%d store=%q job-timeout=%s drain-timeout=%s)",
		*addr, *quick, *workers, *storeDir, *jobTimeout, *drainTimeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Fatal("opgated: ", err)
	case got := <-sig:
		log.Printf("opgated: %v: draining (timeout %s)", got, *drainTimeout)
		clean := s.Drain()
		// Jobs are settled; now close the listener and let in-flight
		// responses (follow streams reading the endgame) finish.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		if !clean {
			log.Printf("opgated: drain timed out with jobs still active")
			os.Exit(1)
		}
		log.Printf("opgated: drained cleanly")
	}
}
