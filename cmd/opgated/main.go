// Command opgated serves the paper's experiment pipeline over HTTP: a
// long-running simulation service with a bounded worker pool, shared
// memoized suites, and (with -store) a persistent content-addressed
// trace/report store, so repeated and concurrent requests re-emulate
// nothing already seen.
//
//	opgated -addr :8080 -store /var/cache/opgate -workers 4 -quick
//
// API (JSON unless noted):
//
//	POST   /v1/experiments    {"experiment":"fig8","threshold":50,
//	                           "synthetic":"narrow,pointer","seed":7}
//	                          → 202 + job; identical in-flight requests
//	                          coalesce onto one job (200)
//	GET    /v1/experiments    list runnable experiment IDs and titles
//	GET    /v1/jobs/{id}      job snapshot; ?follow=1 streams NDJSON
//	                          progress frames until the job finishes
//	DELETE /v1/jobs/{id}      cancel a queued or running job: the
//	                          per-workload fan-out stops mid-suite and
//	                          the job reports status "canceled"
//	GET    /v1/reports/{key}  the report sequence from the store/cache:
//	                          text/plain by default, the canonical
//	                          structured JSON (schema opgate.reports/v1)
//	                          under Accept: application/json
//	GET    /healthz           liveness + job and store counters
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"opgate/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "evaluate on train inputs (faster)")
	workers := flag.Int("workers", 2, "concurrent experiment jobs")
	queue := flag.Int("queue", 256, "queued-job bound (excess submissions get 503)")
	storeDir := flag.String("store", "", "persistent trace/report store directory")
	storeLimit := flag.String("store-limit", "2GiB", "store size budget for -store, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	flag.Parse()

	cfg := serverConfig{Quick: *quick, Workers: *workers, Queue: *queue}
	if *storeDir != "" {
		limit, err := store.ParseSize(*storeLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated: -store-limit:", err)
			os.Exit(2)
		}
		st, err := store.Open(*storeDir, limit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "opgated:", err)
			os.Exit(2)
		}
		cfg.Store = st
	}
	log.Printf("opgated: listening on %s (quick=%v workers=%d store=%q)",
		*addr, *quick, *workers, *storeDir)
	log.Fatal(http.ListenAndServe(*addr, newServer(cfg)))
}
