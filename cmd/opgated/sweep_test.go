package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"opgate"
)

// TestSweepLifecycle drives a threshold-sweep job end to end: submit a
// grid, await the job, and fetch the sweep document in both its text and
// canonical JSON forms — the latter byte-identical to a direct
// Session.Sweep encoding.
func TestSweepLifecycle(t *testing.T) {
	ts := newTestServer(t, nil)

	v, code := submit(t, ts, `{"experiment":"fig4","thresholds":[110,50]}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d", code)
	}
	// The job carries its whole definition in spec form — what the
	// journal records and a resubmission can replay.
	if v.Experiment != "sweep:fig4@110,50" {
		t.Fatalf("sweep job experiment = %q, want spec form", v.Experiment)
	}
	done := awaitJob(t, ts, v.ID)
	if done.Status != "done" {
		t.Fatalf("sweep job ended %q (%s)", done.Status, done.Error)
	}

	// Text form: one table per threshold under a sweep header.
	resp, err := http.Get(ts.URL + "/v1/reports/" + done.ReportKey)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text bytes.Buffer
	if _, err := text.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep report fetch returned %d: %s", resp.StatusCode, text.String())
	}
	for _, want := range []string{"==== sweep fig4", "--- threshold 110 ---", "--- threshold 50 ---"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("sweep text render is missing %q:\n%s", want, text.String())
		}
	}

	// JSON form: the canonical opgate.sweep/v1 document, byte-identical
	// to encoding a direct Session.Sweep.
	req, err := http.NewRequest("GET", ts.URL+"/v1/reports/"+done.ReportKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	jresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var jgot bytes.Buffer
	if _, err := jgot.ReadFrom(jresp.Body); err != nil {
		t.Fatal(err)
	}
	sw, err := opgate.DecodeSweep(jgot.Bytes())
	if err != nil {
		t.Fatalf("served sweep is not canonical JSON: %v", err)
	}
	sess, err := opgate.NewSession(opgate.WithQuick(true))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Sweep(context.Background(), "fig4", 110, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.Equal(want) {
		t.Fatal("served sweep drifted from a direct Session.Sweep")
	}
	wantBlob, err := opgate.EncodeSweep(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jgot.Bytes(), wantBlob) {
		t.Fatal("served sweep JSON is not the canonical encoding")
	}
}

// TestSweepSpecResubmission: a sweep job resubmitted in its spec form
// ("sweep:fig4@110,50" — e.g. copied from a job listing or replayed from
// the journal) derives the same report key and is served warm.
func TestSweepSpecResubmission(t *testing.T) {
	ts := newTestServer(t, nil)

	first, code := submit(t, ts, `{"experiment":"fig4","thresholds":[110,50]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if done := awaitJob(t, ts, first.ID); done.Status != "done" {
		t.Fatalf("sweep job ended %q (%s)", done.Status, done.Error)
	}

	redo, code := submit(t, ts, `{"experiment":"sweep:fig4@110,50"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("spec-form resubmit returned %d", code)
	}
	if redo.ReportKey != first.ReportKey {
		t.Fatalf("spec form derived key %s, grid form %s", redo.ReportKey, first.ReportKey)
	}
	done := awaitJob(t, ts, redo.ID)
	if done.Status != "done" {
		t.Fatalf("resubmitted sweep ended %q (%s)", done.Status, done.Error)
	}
	cached := false
	for _, ev := range done.Progress {
		if strings.Contains(ev.Msg, "served from cache") {
			cached = true
		}
	}
	if !cached {
		t.Fatalf("resubmitted sweep re-rendered instead of serving warm: %+v", done.Progress)
	}
}

// TestSweepRequestValidation: malformed sweep submissions are 400s, and
// a sweep's key is distinct from any single-threshold key.
func TestSweepRequestValidation(t *testing.T) {
	ts := newTestServer(t, nil)
	for name, body := range map[string]string{
		"all-experiments":     `{"experiment":"all","thresholds":[110,50]}`,
		"both-axes":           `{"experiment":"fig4","threshold":50,"thresholds":[110,50]}`,
		"empty-grid-spec":     `{"experiment":"sweep:fig4@"}`,
		"bad-grid-spec":       `{"experiment":"sweep:fig4@junk"}`,
		"unknown-exp":         `{"experiment":"fig99","thresholds":[50]}`,
		"unknown-exp-spec":    `{"experiment":"sweep:fig99@50"}`,
		"duplicate-threshold": `{"experiment":"fig4","thresholds":[50,50]}`,
		"negative-threshold":  `{"experiment":"fig4","thresholds":[-50]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, code := submit(t, ts, body); code != http.StatusBadRequest {
				t.Fatalf("submit %s returned %d, want 400", body, code)
			}
		})
	}

	// The sweep document address never collides with a cell address.
	sweep, code := submit(t, ts, `{"experiment":"fig4","thresholds":[50]}`)
	if code != http.StatusAccepted {
		t.Fatalf("one-point sweep returned %d", code)
	}
	single, code := submit(t, ts, `{"experiment":"fig4","threshold":50}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("single submit returned %d", code)
	}
	if sweep.ReportKey == single.ReportKey {
		t.Fatal("a one-point sweep shares its report key with a plain run")
	}
	for _, id := range []string{sweep.ID, single.ID} {
		if done := awaitJob(t, ts, id); done.Status != "done" {
			t.Fatalf("job %s ended %q (%s)", id, done.Status, done.Error)
		}
	}
}
