package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opgate/client"
	"opgate/internal/ring"
	"opgate/internal/store"
)

// fleet is one node's view of the sharded opgated ring: the static
// member list hashed onto a consistent-hash ring (every node computes
// the identical ring from the identical -peers list, so ownership needs
// no coordination), plus a connection bundle and health state per peer.
//
// The ring decides placement only. Availability is handled by fallback:
// a submission whose key owns elsewhere is forwarded to the owner, and
// any failure along that path — down, draining, mid-restart, or running
// a different binary (key mismatch) — degrades to computing locally,
// which is always correct because report keys are content addresses.
type fleet struct {
	self  string
	ring  *ring.Ring
	peers map[string]*peer // by base URL; excludes self

	forwards      atomic.Int64 // submissions forwarded to their ring owner
	peerFallbacks atomic.Int64 // forwards that fell back to local compute
}

// peerCooldown is how long a peer marked unhealthy is skipped before a
// forward tries it again; peerProbeTTL bounds how stale a health probe
// the /healthz snapshot will serve without re-probing.
const (
	peerCooldown  = 3 * time.Second
	peerProbeTTL  = 2 * time.Second
	peerProbeWait = 500 * time.Millisecond
)

// peer bundles one remote node's clients and health state.
type peer struct {
	url     string
	objects *client.ObjectBackend // raw object tier (/v1/objects)
	submit  *client.Client        // fail-fast: one attempt, no Retry-After sleeps
	jobs    *client.Client        // wait/report fetches; modest retries

	mu      sync.Mutex
	healthy bool
	lastErr string
	checked time.Time
}

// newFleet builds the node's fleet view. members is the full -peers
// list (every node's URL, identical on every node); self must be one of
// them.
func newFleet(self string, members []string) (*fleet, error) {
	r, err := ring.New(members)
	if err != nil {
		return nil, err
	}
	if !r.Contains(self) {
		return nil, fmt.Errorf("fleet: -self %q is not in the -peers list %v", self, members)
	}
	f := &fleet{self: self, ring: r, peers: map[string]*peer{}}
	for _, m := range members {
		if m == self {
			continue
		}
		objects, err := client.NewObjectBackend(m)
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", m, err)
		}
		// Submissions must not sleep out a peer's drain-length Retry-After
		// inside a worker: one refused attempt means "compute locally".
		submit, err := client.New(m, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", m, err)
		}
		jobs, err := client.New(m, client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second,
		}))
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", m, err)
		}
		f.peers[m] = &peer{url: m, objects: objects, submit: submit, jobs: jobs, healthy: true}
	}
	return f, nil
}

// owner returns the ring member owning key.
func (f *fleet) owner(key string) string { return f.ring.Owner(key) }

// peerFor returns the peer handle for a member URL (nil for self or an
// unknown member).
func (f *fleet) peerFor(member string) *peer { return f.peers[member] }

// available reports whether a forward should try this peer now: healthy,
// or unhealthy long enough ago that the cooldown has elapsed.
func (p *peer) available() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy || time.Since(p.checked) > peerCooldown
}

func (p *peer) markHealthy() {
	p.mu.Lock()
	p.healthy, p.lastErr, p.checked = true, "", time.Now()
	p.mu.Unlock()
}

func (p *peer) markUnhealthy(err error) {
	p.mu.Lock()
	p.healthy, p.lastErr, p.checked = false, err.Error(), time.Now()
	p.mu.Unlock()
}

// probe refreshes the peer's health from its /readyz within
// peerProbeWait, unless a fresh verdict (peerProbeTTL) already exists.
// Forward traffic refreshes health as a side effect; probe covers idle
// peers so /healthz reports live state.
func (p *peer) probe() {
	p.mu.Lock()
	fresh := time.Since(p.checked) < peerProbeTTL
	p.mu.Unlock()
	if fresh {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerProbeWait)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err != nil {
		p.markUnhealthy(err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		p.markUnhealthy(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.markUnhealthy(fmt.Errorf("readyz: HTTP %d", resp.StatusCode))
		return
	}
	p.markHealthy()
}

// healthSnapshot renders the fleet section of /healthz, re-probing stale
// peers in parallel first so the report is current within peerProbeTTL.
func (f *fleet) healthSnapshot() map[string]any {
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *peer) { defer wg.Done(); p.probe() }(p)
	}
	wg.Wait()
	peers := make([]map[string]any, 0, len(f.peers))
	for _, m := range f.ring.Members() {
		p := f.peers[m]
		if p == nil {
			continue // self
		}
		p.mu.Lock()
		view := map[string]any{"url": p.url, "healthy": p.healthy}
		if p.lastErr != "" {
			view["lastError"] = p.lastErr
		}
		p.mu.Unlock()
		peers = append(peers, view)
	}
	return map[string]any{
		"self":          f.self,
		"members":       f.ring.Members(),
		"peers":         peers,
		"forwards":      f.forwards.Load(),
		"peerFallbacks": f.peerFallbacks.Load(),
	}
}

// remote returns the fleet's remote store tier: a Backend that routes
// every object to its ring owner's /v1/objects API. Keys this node owns
// are a structural miss/no-op — their home is the local tier — and an
// unavailable owner reads as a miss, per the store contract.
func (f *fleet) remote() store.Backend { return &fleetBackend{f: f} }

type fleetBackend struct {
	f      *fleet
	misses atomic.Int64
}

func (b *fleetBackend) Get(key store.Key) ([]byte, bool) {
	p := b.f.peerFor(b.f.owner(string(key)))
	if p == nil || !p.available() {
		b.misses.Add(1)
		return nil, false
	}
	data, ok := p.objects.Get(key)
	if !ok {
		b.misses.Add(1)
	}
	return data, ok
}

func (b *fleetBackend) Put(key store.Key, data []byte) error {
	p := b.f.peerFor(b.f.owner(string(key)))
	if p == nil {
		return nil // self-owned: the local tier already has it
	}
	if !p.available() {
		return fmt.Errorf("fleet: peer %s unavailable", p.url)
	}
	return p.objects.Put(key, data)
}

func (b *fleetBackend) Delete(key store.Key) {
	if p := b.f.peerFor(b.f.owner(string(key))); p != nil && p.available() {
		p.objects.Delete(key)
	}
}

// Stats aggregates the per-peer object-backend counters (misses include
// routing misses for unavailable or self-owned keys).
func (b *fleetBackend) Stats() store.Stats {
	st := store.Stats{Misses: b.misses.Load()}
	for _, p := range b.f.peers {
		ps := p.objects.Stats()
		st.Hits += ps.Hits
		st.Puts += ps.Puts
		st.PutErrors += ps.PutErrors
	}
	return st
}

// forwardRequest reconstructs the wire request that reproduces job j on
// a peer. Sweep jobs travel in spec form ("sweep:fig6@110,90"), which
// the receiving handleSubmit normalizes back into a grid; the exact
// synthetic names ride the comma-separated list form ExpandSynthetics
// round-trips. Direct pins the job to the receiver — the guard that
// turns ring disagreement (mismatched -peers configs) into extra local
// work instead of a forwarding cycle.
func forwardRequest(j *job) client.Request {
	return client.Request{
		Experiment: j.experiment,
		Threshold:  j.threshold,
		Synthetic:  strings.Join(j.synthetics, ","),
		Direct:     true,
	}
}

// serveFromPeer tries to satisfy job j from the ring owner: first a raw
// object fetch from the owner's store tier (the report may already
// exist fleet-wide), then a forwarded submission computed on the owner.
// The document is replicated byte-verbatim through ReportBytes — no
// decode/re-encode that could perturb it. Returns false on any failure;
// the caller computes locally (always correct, merely less shared).
func (s *server) serveFromPeer(ctx context.Context, j *job, owner string) bool {
	f := s.cfg.Fleet
	p := f.peerFor(owner)
	if p == nil || !p.available() {
		return false
	}
	if data, ok := p.objects.Get(j.reportKey); ok {
		s.putReport(j.reportKey, data)
		p.markHealthy()
		j.log(fmt.Sprintf("served from peer %s store (%d bytes)", owner, len(data)))
		return true
	}
	f.forwards.Add(1)
	j.log("forwarding to ring owner " + owner)
	remote, err := p.submit.Submit(ctx, forwardRequest(j))
	if err != nil {
		p.markUnhealthy(err)
		return false
	}
	p.markHealthy()
	if remote.ReportKey != string(j.reportKey) {
		// The owner runs a different binary (identity-hashed keys
		// diverge): its document would poison this node's cache under a
		// key it can never verify. Let it compute for its own clients;
		// compute ours locally.
		j.log(fmt.Sprintf("peer %s derives a different report key (version skew); computing locally", owner))
		return false
	}
	final, err := p.jobs.Wait(ctx, remote.ID)
	if err != nil {
		if ctx.Err() != nil {
			// Our job was canceled or timed out: release the peer's worker
			// too, best-effort (the peer coalesces, so an identical live
			// submission keeps it running regardless).
			cctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, _ = p.jobs.Cancel(cctx, remote.ID)
			cancel()
		} else {
			p.markUnhealthy(err)
		}
		return false
	}
	if final.Status != client.StatusDone {
		j.log(fmt.Sprintf("peer %s job ended %s; computing locally", owner, final.Status))
		return false
	}
	blob, err := p.jobs.ReportBytes(ctx, final.ReportKey)
	if err != nil {
		if ctx.Err() == nil {
			p.markUnhealthy(err)
		}
		return false
	}
	s.putReport(j.reportKey, blob)
	j.log(fmt.Sprintf("served from peer %s (job %s, %d bytes)", owner, remote.ID, len(blob)))
	return true
}
