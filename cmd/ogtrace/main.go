// Command ogtrace moves retirement traces across the pipeline boundary:
// any workload the registry can build is exported as a codec-framed
// trace blob, and any blob that speaks the format — exported here or
// produced by an external tracer — is imported into a store as a
// first-class "trace:" workload.
//
// Usage:
//
//	ogtrace export -workload syn:narrow/small/5 -class train -o twin.ogtr
//	ogtrace import -store DIR -name narrowtwin -class train twin.ogtr
//	ogtrace inspect twin.ogtr
//	ogtrace validate twin.ogtr
//	ogtrace list -store DIR
//
// export builds the named workload at the given input class, captures
// its retirement trace and writes the blob under the native binary's
// identity. import validates the blob end to end (framing, record
// sanity, skeleton synthesis, canonical re-encoding) and registers it
// under trace:<name>; from then on ogbench and opgated evaluate it by
// that name through every replay-capable experiment, with zero
// emulations. inspect and validate work on local files without a store;
// list shows what a store has imported.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"opgate"
	"opgate/internal/emu"
	"opgate/internal/store"
	"opgate/internal/tracework"
	"opgate/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "export":
		err = runExport(os.Args[2:])
	case "import":
		err = runImport(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "list":
		err = runList(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ogtrace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ogtrace export -workload NAME [-class train|ref] [-o FILE]
  ogtrace import -store DIR [-store-limit SIZE] -name NAME [-class train|ref] FILE
  ogtrace inspect FILE
  ogtrace validate FILE
  ogtrace list -store DIR [-store-limit SIZE]
`)
}

// parseClass maps the -class flag onto the registry's input classes.
func parseClass(s string) (workload.InputClass, error) {
	switch s {
	case "train":
		return workload.Train, nil
	case "ref":
		return workload.Ref, nil
	}
	return 0, fmt.Errorf("-class %q: want train or ref", s)
}

// openStore resolves the -store/-store-limit pair shared by the
// store-bound subcommands.
func openStore(dir, limit string) (*store.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-store is required")
	}
	bytes, err := opgate.ParseSize(limit)
	if err != nil {
		return nil, fmt.Errorf("-store-limit: %w", err)
	}
	return store.Open(dir, bytes)
}

// runExport builds a workload, captures its retirement trace and writes
// the codec-framed blob under the native program's identity — the exact
// bytes a warm store would hold for that (workload, class).
func runExport(args []string) error {
	fs := flag.NewFlagSet("ogtrace export", flag.ExitOnError)
	name := fs.String("workload", "", "registry workload name (kernel or syn:... generation)")
	class := fs.String("class", "train", "input class to capture: train|ref")
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	_ = fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("export: -workload is required")
	}
	c, err := parseClass(*class)
	if err != nil {
		return err
	}
	w, err := workload.ByName(*name)
	if err != nil {
		return err
	}
	p, err := w.Build(c)
	if err != nil {
		return fmt.Errorf("building %s/%s: %w", *name, c, err)
	}
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		return fmt.Errorf("emulating %s/%s: %w", *name, c, err)
	}
	tr, err := rec.Trace()
	if err != nil {
		return fmt.Errorf("capturing %s/%s trace: %w", *name, c, err)
	}
	blob := store.EncodeTrace(tr, store.ProgramIdentity(p))
	if *out == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ogtrace: exported %s/%s: %d events, %d bytes -> %s\n",
		*name, c, tr.Len(), len(blob), *out)
	return nil
}

// runImport ingests a trace blob and registers it in the store under
// trace:<name> for one input class.
func runImport(args []string) error {
	fs := flag.NewFlagSet("ogtrace import", flag.ExitOnError)
	dir := fs.String("store", "", "persistent store directory (required)")
	limit := fs.String("store-limit", "2GiB", "store size budget, e.g. 256MiB, 2GiB, or bytes (0 = unlimited)")
	name := fs.String("name", "", `registry name to import under (with or without the "trace:" prefix)`)
	class := fs.String("class", "train", "input class the records stand in for: train|ref")
	_ = fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("import: -name is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("import: want exactly one trace file, got %d", fs.NArg())
	}
	c, err := parseClass(*class)
	if err != nil {
		return err
	}
	full := *name
	if !workload.IsTrace(full) {
		full = workload.TraceName(full)
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ing, err := tracework.Ingest(data)
	if err != nil {
		return err
	}
	st, err := openStore(*dir, *limit)
	if err != nil {
		return err
	}
	if err := tracework.NewLibrary(st).Put(full, c, ing); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ogtrace: imported %s %s: %d events, %d static instructions, identity %s\n",
		full, c, ing.Events, ing.StaticIns, ing.Identity)
	fmt.Println(full)
	return nil
}

// runInspect decodes a trace blob and prints its shape without touching
// any store: the identity the blob declares, the identity the skeleton
// synthesized from its records hashes to (the address an import would
// use), and whether the blob is already in canonical form.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("ogtrace inspect", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: want exactly one trace file, got %d", fs.NArg())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	_, declared, err := store.DecodeTraceRecords(data)
	if err != nil {
		return err
	}
	ing, err := tracework.Ingest(data)
	if err != nil {
		return err
	}
	fmt.Printf("events:             %d\n", ing.Events)
	fmt.Printf("static instructions: %d\n", ing.StaticIns)
	fmt.Printf("declared identity:  %s\n", declared)
	fmt.Printf("skeleton identity:  %s\n", ing.Identity)
	fmt.Printf("canonical:          %v\n", bytes.Equal(data, ing.Canonical))
	fmt.Printf("bytes:              %d\n", len(data))
	return nil
}

// runValidate runs the full ingestion pipeline on a blob and reports
// pass/fail — the pre-flight check for a blob produced by an external
// tracer.
func runValidate(args []string) error {
	fs := flag.NewFlagSet("ogtrace validate", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("validate: want exactly one trace file, got %d", fs.NArg())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	ing, err := tracework.Ingest(data)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %d events over %d static instructions, identity %s\n",
		ing.Events, ing.StaticIns, ing.Identity)
	return nil
}

// runList prints a store's imported-trace index.
func runList(args []string) error {
	fs := flag.NewFlagSet("ogtrace list", flag.ExitOnError)
	dir := fs.String("store", "", "persistent store directory (required)")
	limit := fs.String("store-limit", "2GiB", "store size budget")
	_ = fs.Parse(args)
	st, err := openStore(*dir, *limit)
	if err != nil {
		return err
	}
	lib := tracework.NewLibrary(st)
	entries := lib.List()
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "ogtrace: no imported traces")
		return nil
	}
	for _, e := range entries {
		c, err := parseClass(e.Class)
		if err != nil {
			fmt.Printf("%s\t%s\t(unknown class)\n", e.Name, e.Class)
			continue
		}
		if m, err := lib.Lookup(e.Name, c); err == nil {
			fmt.Printf("%s\t%s\t%d events\t%d static\t%s\n", m.Name, m.Class, m.Events, m.StaticIns, m.Identity)
		} else {
			fmt.Printf("%s\t%s\t(%v)\n", e.Name, e.Class, err)
		}
	}
	return nil
}
