// Command ogload load-tests an opgated node or fleet: N concurrent
// clients drive a configurable request mix against one or more base
// URLs for a fixed duration, then report latency percentiles
// (p50/p95/p99), throughput, error counts, and the serving-path
// breakdown scraped from /healthz (coalesced / fromCache / fromPeer /
// computed) as a hit rate.
//
//	ogload -addr http://localhost:8501,http://localhost:8502 \
//	       -clients 16 -duration 10s -mix warm=8,cold=1,sweep=1
//
// The mix kinds:
//
//	warm   the identical request every time — exercises the memory
//	       cache, the store, and submission coalescing
//	cold   a unique VRS threshold per request — a fresh report key
//	       every time, exercising the compute path and (in a fleet)
//	       ring routing
//	sweep  a threshold-grid request (-sweep) — exercises the sweep
//	       document path
//
// With -max-errors and -min-hit-rate set, ogload exits non-zero when
// the run breaches either bound — the CI smoke gate. Multiple -addr
// targets are driven round-robin, one client goroutine pinned per
// target, and the healthz serving counters are summed across targets
// (scraped before and after the run, so only this run's traffic
// counts).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opgate/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "comma-separated opgated base URLs")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	mixSpec := flag.String("mix", "warm=8,cold=1", "request mix as kind=weight pairs (kinds: warm, cold, sweep)")
	experiment := flag.String("experiment", "fig2", "experiment driven by every request kind")
	sweepGrid := flag.String("sweep", "110,70,30", "threshold grid for sweep-kind requests")
	threshold := flag.Float64("threshold", 50, "VRS threshold for warm requests (and the base for cold ones)")
	seed := flag.Uint64("seed", 1, "mix-picker RNG seed (runs with one seed pick the same request sequence)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON instead of text")
	maxErrors := flag.Int64("max-errors", -1, "exit non-zero when request errors exceed this (-1 disables)")
	minHitRate := flag.Float64("min-hit-rate", -1, "exit non-zero when the serving hit rate is below this fraction (-1 disables)")
	flag.Parse()

	targets := strings.Split(*addr, ",")
	for i := range targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(targets[i]), "/")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogload:", err)
		os.Exit(2)
	}
	grid, err := parseGrid(*sweepGrid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ogload: -sweep:", err)
		os.Exit(2)
	}

	cs := make([]*client.Client, len(targets))
	for i, target := range targets {
		c, err := client.New(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ogload:", err)
			os.Exit(2)
		}
		cs[i] = c
	}

	before := scrapeAll(targets)
	run := drive(cs, driveConfig{
		clients:    *clients,
		duration:   *duration,
		mix:        mix,
		experiment: *experiment,
		threshold:  *threshold,
		grid:       grid,
		seed:       *seed,
	})
	after := scrapeAll(targets)

	sum := summarize(run, before, after, *duration)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	} else {
		printSummary(sum)
	}

	fail := false
	if *maxErrors >= 0 && sum.Errors > *maxErrors {
		fmt.Fprintf(os.Stderr, "ogload: FAIL: %d errors > -max-errors %d\n", sum.Errors, *maxErrors)
		fail = true
	}
	if *minHitRate >= 0 && sum.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "ogload: FAIL: hit rate %.3f < -min-hit-rate %.3f\n", sum.HitRate, *minHitRate)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// mixEntry is one weighted request kind.
type mixEntry struct {
	kind   string
	weight int
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		kind, w, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return nil, fmt.Errorf("mix entry %q: want kind=weight", part)
		}
		switch kind {
		case "warm", "cold", "sweep":
		default:
			return nil, fmt.Errorf("mix kind %q: want warm, cold, or sweep", kind)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("mix weight %q: want a positive integer", w)
		}
		mix = append(mix, mixEntry{kind, weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

func parseGrid(spec string) ([]float64, error) {
	var grid []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		grid = append(grid, v)
	}
	return grid, nil
}

// pick returns a mix kind drawn by weight.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.IntN(total)
	for _, m := range mix {
		if n < m.weight {
			return m.kind
		}
		n -= m.weight
	}
	return mix[len(mix)-1].kind
}

type driveConfig struct {
	clients    int
	duration   time.Duration
	mix        []mixEntry
	experiment string
	threshold  float64
	grid       []float64
	seed       uint64
}

// runResult is the merged outcome of every client goroutine.
type runResult struct {
	latencies []time.Duration // successful requests only
	requests  int64
	errors    int64
	byKind    map[string]int64
	firstErrs []string
}

// drive runs the load: cfg.clients goroutines, each pinned round-robin
// to one target client, each drawing requests from the mix until the
// deadline. Cold requests perturb the threshold by a process-unique
// counter so every one derives a fresh report key.
func drive(cs []*client.Client, cfg driveConfig) *runResult {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	var coldSeq atomic.Int64
	results := make([]*runResult, cfg.clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &runResult{byKind: map[string]int64{}}
			results[w] = res
			c := cs[w%len(cs)]
			rng := rand.New(rand.NewPCG(cfg.seed, uint64(w)))
			for ctx.Err() == nil {
				kind := pick(cfg.mix, rng)
				req := client.Request{Experiment: cfg.experiment, Threshold: cfg.threshold}
				switch kind {
				case "cold":
					// A unique threshold is a unique report key: the
					// cheapest request that still exercises the full
					// selection + simulation + store path.
					req.Threshold = cfg.threshold + float64(coldSeq.Add(1))/1000
				case "sweep":
					req.Threshold = 0
					req.Thresholds = cfg.grid
				}
				start := time.Now()
				_, err := c.Run(ctx, req)
				if ctx.Err() != nil && err != nil {
					break // deadline mid-request, not a server failure
				}
				res.requests++
				res.byKind[kind]++
				if err != nil {
					res.errors++
					if len(res.firstErrs) < 5 {
						res.firstErrs = append(res.firstErrs, err.Error())
					}
					continue
				}
				res.latencies = append(res.latencies, time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	merged := &runResult{byKind: map[string]int64{}}
	for _, res := range results {
		if res == nil {
			continue
		}
		merged.latencies = append(merged.latencies, res.latencies...)
		merged.requests += res.requests
		merged.errors += res.errors
		for k, v := range res.byKind {
			merged.byKind[k] += v
		}
		merged.firstErrs = append(merged.firstErrs, res.firstErrs...)
	}
	return merged
}

// servingCounters is the /healthz serving section plus the figures the
// harness reports alongside it.
type servingCounters struct {
	Coalesced  int64 `json:"coalesced"`
	FromCache  int64 `json:"fromCache"`
	FromPeer   int64 `json:"fromPeer"`
	Computed   int64 `json:"computed"`
	Emulations int64 `json:"emulations"`
}

func (s servingCounters) sub(o servingCounters) servingCounters {
	return servingCounters{
		Coalesced:  s.Coalesced - o.Coalesced,
		FromCache:  s.FromCache - o.FromCache,
		FromPeer:   s.FromPeer - o.FromPeer,
		Computed:   s.Computed - o.Computed,
		Emulations: s.Emulations - o.Emulations,
	}
}

// scrapeAll sums the serving counters over every target's /healthz
// (a missing or malformed response contributes zero — the summary is
// advisory; the request error count is the hard signal).
func scrapeAll(targets []string) servingCounters {
	var total servingCounters
	for _, target := range targets {
		resp, err := http.Get(target + "/healthz")
		if err != nil {
			continue
		}
		var body struct {
			Serving    servingCounters `json:"serving"`
			Emulations int64           `json:"emulations"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		total.Coalesced += body.Serving.Coalesced
		total.FromCache += body.Serving.FromCache
		total.FromPeer += body.Serving.FromPeer
		total.Computed += body.Serving.Computed
		total.Emulations += body.Emulations
	}
	return total
}

// summary is the run's full result document (the -json output).
type summary struct {
	Requests   int64            `json:"requests"`
	Errors     int64            `json:"errors"`
	ByKind     map[string]int64 `json:"byKind"`
	Throughput float64          `json:"requestsPerSecond"`
	P50Ms      float64          `json:"p50Ms"`
	P95Ms      float64          `json:"p95Ms"`
	P99Ms      float64          `json:"p99Ms"`
	Serving    servingCounters  `json:"serving"` // deltas across the run
	HitRate    float64          `json:"hitRate"`
	FirstErrs  []string         `json:"firstErrors,omitempty"`
}

func summarize(run *runResult, before, after servingCounters, d time.Duration) summary {
	sort.Slice(run.latencies, func(i, j int) bool { return run.latencies[i] < run.latencies[j] })
	delta := after.sub(before)
	served := delta.Coalesced + delta.FromCache + delta.FromPeer + delta.Computed
	hitRate := 0.0
	if served > 0 {
		hitRate = float64(delta.Coalesced+delta.FromCache+delta.FromPeer) / float64(served)
	}
	return summary{
		Requests:   run.requests,
		Errors:     run.errors,
		ByKind:     run.byKind,
		Throughput: float64(run.requests) / d.Seconds(),
		P50Ms:      percentile(run.latencies, 0.50),
		P95Ms:      percentile(run.latencies, 0.95),
		P99Ms:      percentile(run.latencies, 0.99),
		Serving:    delta,
		HitRate:    hitRate,
		FirstErrs:  run.firstErrs,
	}
}

// percentile reads the p-quantile (nearest-rank) off sorted latencies,
// in milliseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func printSummary(s summary) {
	fmt.Printf("requests   %d (%.1f/s)\n", s.Requests, s.Throughput)
	fmt.Printf("errors     %d\n", s.Errors)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-8s %d\n", k, s.ByKind[k])
	}
	fmt.Printf("latency    p50 %.1fms  p95 %.1fms  p99 %.1fms\n", s.P50Ms, s.P95Ms, s.P99Ms)
	fmt.Printf("serving    coalesced %d  fromCache %d  fromPeer %d  computed %d\n",
		s.Serving.Coalesced, s.Serving.FromCache, s.Serving.FromPeer, s.Serving.Computed)
	fmt.Printf("hit rate   %.3f\n", s.HitRate)
	fmt.Printf("emulations %d\n", s.Serving.Emulations)
	for _, e := range s.FirstErrs {
		fmt.Printf("error: %s\n", e)
	}
}
