// Command ogasm assembles OG64 assembly to an object file, or
// disassembles an object file back to text.
//
// Usage:
//
//	ogasm prog.s                    # assemble, print stats + disassembly
//	ogasm -encode prog.s prog.og64  # assemble and write an object file
//	ogasm -decode prog.og64         # disassemble an object file
package main

import (
	"flag"
	"fmt"
	"os"

	"opgate/internal/asm"
	"opgate/internal/core"
	"opgate/internal/isa"
	"opgate/internal/objfile"
)

func main() {
	encode := flag.Bool("encode", false, "write the binary encoding to the second argument")
	decode := flag.Bool("decode", false, "decode a binary image")
	flag.Parse()
	if err := run(*encode, *decode, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ogasm:", err)
		os.Exit(1)
	}
}

func run(encode, decode bool, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("need an input file")
	}
	if decode {
		p, err := objfile.ReadFile(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%d instructions, %d functions, %d data bytes\n",
			len(p.Ins), len(p.Funcs), len(p.Data))
		fmt.Print(asm.Disassemble(p))
		return nil
	}

	p, err := core.AssembleFile(args[0])
	if err != nil {
		return err
	}
	if encode {
		if len(args) < 2 {
			return fmt.Errorf("-encode needs an output file")
		}
		// Sanity: the image must round-trip through the instruction
		// encoding before it is written.
		if _, err := isa.EncodeProgram(p.Ins); err != nil {
			return err
		}
		return objfile.WriteFile(args[1], p)
	}
	fmt.Printf("%d instructions, %d functions, %d data bytes\n",
		len(p.Ins), len(p.Funcs), len(p.Data))
	fmt.Print(asm.Disassemble(p))
	return nil
}
