module opgate

go 1.24
