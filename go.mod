module opgate

go 1.23
