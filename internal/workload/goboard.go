package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildGo is the go analog: iterative influence propagation over a 19×19
// board. Stones are bytes, influence values are halfwords kept narrow with
// an explicit mask, and the nested x/y loops have statically analysable
// affine iterators (§2.3).
func BuildGo(class InputClass) (*prog.Program, error) {
	const size = 19
	const stride = 20 // one byte of padding per row
	passes := 4
	seed := uint64(5)
	if class == Ref {
		passes = 12
		seed = 17
	}

	r := newRNG(seed)
	board := make([]byte, stride*(size+2))
	for y := 1; y <= size; y++ {
		for x := 1; x < size-1; x++ {
			if r.intn(3) == 0 {
				board[y*stride+x] = 1 + r.byten(2) // black or white stone
			}
		}
	}

	b := asm.NewBuilder()
	b.Bytes("board", board)
	b.Space("infl", 2*stride*(size+2))

	b.Func("main")
	b.LoadAddr(s1, "board")
	b.LoadAddr(s2, "infl")
	b.Lda(s6, rz, 0) // total influence (output)
	b.Lda(s7, rz, 0) // pass counter

	b.Label("pass")
	b.Lda(s3, rz, 1) // y
	b.Label("yloop")
	b.Lda(s4, rz, 1) // x
	b.Label("xloop")
	// idx = y*stride + x
	b.OpI(isa.OpMUL, isa.W64, t1, s3, stride)
	b.Op3(isa.OpADD, isa.W64, t1, t1, s4)
	// v = 4*board[idx] + board[idx-1] + board[idx+1]
	//   + board[idx-stride] + board[idx+stride]
	b.Op3(isa.OpADD, isa.W64, t2, s1, t1)
	b.Load(isa.W8, t3, t2, 0)
	b.OpI(isa.OpSLL, isa.W64, t3, t3, 2)
	b.Load(isa.W8, t4, t2, -1)
	b.Op3(isa.OpADD, isa.W64, t3, t3, t4)
	b.Load(isa.W8, t4, t2, 1)
	b.Op3(isa.OpADD, isa.W64, t3, t3, t4)
	b.Load(isa.W8, t4, t2, -stride)
	b.Op3(isa.OpADD, isa.W64, t3, t3, t4)
	b.Load(isa.W8, t4, t2, stride)
	b.Op3(isa.OpADD, isa.W64, t3, t3, t4)
	// inf = (infl[idx]/2 + v) & 0x7FF — decays old influence, stays
	// narrow via the mask.
	b.Op3(isa.OpADD, isa.W64, t5, t1, t1) // halfword index
	b.Op3(isa.OpADD, isa.W64, t5, s2, t5)
	b.Load(isa.W16, t6, t5, 0)
	b.OpI(isa.OpSRL, isa.W64, t6, t6, 1)
	b.Op3(isa.OpADD, isa.W64, t6, t6, t3)
	b.OpI(isa.OpAND, isa.W64, t6, t6, 0x7FF)
	b.Store(isa.W16, t6, t5, 0)
	// total = (total + inf) & 0xFFFFF
	b.Op3(isa.OpADD, isa.W64, s6, s6, t6)
	b.OpI(isa.OpAND, isa.W64, s6, s6, 0xFFFFF)

	b.OpI(isa.OpADD, isa.W64, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s4, size-1)
	b.CondBranch(isa.OpBNE, t1, "xloop")
	b.OpI(isa.OpADD, isa.W64, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s3, size+1)
	b.CondBranch(isa.OpBNE, t1, "yloop")
	b.OpI(isa.OpADD, isa.W64, s7, s7, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s7, int64(passes))
	b.CondBranch(isa.OpBNE, t1, "pass")

	b.Out(isa.W32, s6)
	b.Halt()
	return b.Build()
}
