package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildVortex is the vortex analog: an object store of fixed-size records
// driven by a transaction list. Records mix field widths — 32-bit ids,
// byte flags, halfword hit counters and full 64-bit link pointers (wide
// 5-byte addresses) — so, like the original, a large share of its traffic
// is genuinely wide.
//
// Record layout (32 bytes): id word | flags byte | pad | count half |
// link qword | payload qword | pad qword.
func BuildVortex(class InputClass) (*prog.Program, error) {
	nrec := 48
	nops := 1500
	seed := uint64(90210)
	if class == Ref {
		nrec = 96
		nops = 5000
		seed = 31337
	}

	const stride = 32
	r := newRNG(seed)
	recs := make([]byte, nrec*stride)
	for i := 0; i < nrec; i++ {
		id := uint32(1000 + i*7)
		recs[i*stride+0] = byte(id)
		recs[i*stride+1] = byte(id >> 8)
		recs[i*stride+2] = byte(id >> 16)
		recs[i*stride+3] = byte(id >> 24)
		recs[i*stride+24] = 3 // schema version of this snapshot
	}
	// Transactions: (record index, action) pairs, skewed to a hot set.
	ops := make([]byte, 2*nops)
	for i := 0; i < nops; i++ {
		idx := r.intn(nrec)
		if r.intn(3) != 0 {
			idx = r.intn(8) // hot records
		}
		ops[2*i] = byte(idx)
		ops[2*i+1] = 1 << r.byten(3) // action bit 1/2/4
	}

	b := asm.NewBuilder()
	b.Bytes("recs", recs)
	b.Bytes("ops", ops)

	b.Func("main")
	b.LoadAddr(s1, "recs")
	b.LoadAddr(s2, "ops")
	b.Lda(s3, rz, 0) // op index
	b.Lda(s6, rz, 0) // last-found record address (link source)
	b.Lda(s7, rz, 0) // checksum

	b.Label("txn")
	b.OpI(isa.OpSLL, isa.W64, t1, s3, 1)
	b.Op3(isa.OpADD, isa.W64, t1, s2, t1)
	b.Load(isa.W8, t2, t1, 0) // record index
	b.Load(isa.W8, t3, t1, 1) // action

	// target id = 1000 + idx*7; then scan the table for it (vortex-style
	// lookup rather than direct indexing).
	b.OpI(isa.OpMUL, isa.W64, t4, t2, 7)
	b.OpI(isa.OpADD, isa.W64, t4, t4, 1000)
	b.Lda(t5, s1, 0) // scan pointer
	b.Label("scan")
	b.Load(isa.W32, t6, t5, 0) // id field
	b.Op3(isa.OpXOR, isa.W64, t7, t6, t4)
	b.CondBranch(isa.OpBEQ, t7, "found")
	b.Lda(t5, t5, stride)
	b.Branch("scan")

	b.Label("found")
	// Record-status checks before applying the transaction, as a database
	// would: the schema version, lock bit and dirty bit all live in one
	// status word that is exactly 3 (version 3, unlocked, clean) for every
	// record of this snapshot — a single-value specialization point where
	// one guard replaces three test-and-branch pairs in the clone.
	b.Load(isa.W64, t6, t5, 24)
	b.OpI(isa.OpAND, isa.W64, t7, t6, 0xFF) // version field
	b.OpI(isa.OpCMPEQ, isa.W64, t7, t7, 3)
	b.CondBranch(isa.OpBEQ, t7, "migrate")
	b.OpI(isa.OpAND, isa.W64, t7, t6, 256) // lock bit
	b.CondBranch(isa.OpBNE, t7, "locked")
	b.OpI(isa.OpAND, isa.W64, t7, t6, 512) // dirty bit
	b.CondBranch(isa.OpBNE, t7, "dirtyrec")
	b.Label("apply")
	// count++ (halfword), flags |= action (byte), link = previous found
	// record's address (qword store of a 5-byte pointer).
	b.Load(isa.W16, t6, t5, 6)
	b.OpI(isa.OpADD, isa.W64, t6, t6, 1)
	b.OpI(isa.OpAND, isa.W64, t6, t6, 0xFFFF)
	b.Store(isa.W16, t6, t5, 6)
	b.Load(isa.W8, t7, t5, 4)
	b.Op3(isa.OpOR, isa.W64, t7, t7, t3)
	b.Store(isa.W8, t7, t5, 4)
	b.Store(isa.W64, s6, t5, 8) // link pointer (wide)
	b.Lda(s6, t5, 0)
	// payload = payload*3 + count (a wide-ish accumulator)
	b.Load(isa.W64, t8, t5, 16)
	b.OpI(isa.OpMUL, isa.W64, t8, t8, 3)
	b.Op3(isa.OpADD, isa.W64, t8, t8, t6)
	b.OpI(isa.OpAND, isa.W64, t8, t8, 0x3FFFFFFF)
	b.Store(isa.W64, t8, t5, 16)

	// checksum folds the action and count.
	b.Op3(isa.OpADD, isa.W64, s7, s7, t6)
	b.Op3(isa.OpADD, isa.W64, s7, s7, t3)
	b.OpI(isa.OpAND, isa.W64, s7, s7, 0xFFFFF)

	b.Label("txnend")
	b.OpI(isa.OpADD, isa.W64, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s3, int64(nops))
	b.CondBranch(isa.OpBNE, t1, "txn")

	b.Branch("report")

	// Slow paths for abnormal record states: never taken with this
	// snapshot, but they must exist for the status checks to mean
	// anything.
	b.Label("migrate")
	b.Lda(t6, rz, 3)
	b.Store(isa.W64, t6, t5, 24)
	b.OpI(isa.OpADD, isa.W64, s5, s5, 1)
	b.Branch("apply")
	b.Label("locked")
	b.OpI(isa.OpADD, isa.W64, s5, s5, 2)
	b.Branch("txnend")
	b.Label("dirtyrec")
	b.OpI(isa.OpADD, isa.W64, s5, s5, 4)
	b.Branch("apply")

	b.Label("report")
	b.Out(isa.W32, s7)
	// Emit the flags of the hot records.
	b.Lda(s3, rz, 0)
	b.Label("fl")
	b.OpI(isa.OpMUL, isa.W64, t1, s3, stride)
	b.Op3(isa.OpADD, isa.W64, t1, s1, t1)
	b.Load(isa.W8, t2, t1, 4)
	b.Out(isa.W8, t2)
	b.OpI(isa.OpADD, isa.W64, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t3, s3, 8)
	b.CondBranch(isa.OpBNE, t3, "fl")
	b.Halt()

	return b.Build()
}
