package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildLi is the li (lisp interpreter) analog: cons cells are allocated
// from a bump heap, lists are built, traversed and filtered through
// functions. The cell values are small integers but the cdr pointers are
// full 5-byte addresses, so the kernel mixes very narrow and wide data —
// the paper notes li sits in the middle of the width distribution. The
// value loads inside the traversal functions are 64-bit with small dynamic
// content: value-range specialization territory.
func BuildLi(class InputClass) (*prog.Program, error) {
	m := 400
	rounds := 6
	seed := uint64(4242)
	if class == Ref {
		m = 900
		rounds = 14
		seed = 9000
	}

	r := newRNG(seed)
	vals := make([]byte, m)
	for i := range vals {
		vals[i] = r.byten(100)
	}

	b := asm.NewBuilder()
	b.Bytes("vals", vals)
	b.Space("heap", 16*(m+8))

	// Cell layout: [value qword][next qword]; nil = 0.

	b.Func("main")
	b.LoadAddr(s1, "vals")
	b.LoadAddr(s2, "heap") // bump pointer
	b.Lda(s3, rz, 0)       // head = nil
	b.Lda(s4, rz, 0)       // i

	// Build the list front-to-back (prepend).
	b.Label("build")
	b.Op3(isa.OpADD, isa.W64, t1, s1, s4)
	b.Load(isa.W8, t2, t1, 0) // value [0,100)
	// cell = bump; bump += 16
	b.Store(isa.W64, t2, s2, 0) // cell.value
	b.Store(isa.W64, s3, s2, 8) // cell.next = head
	b.Lda(s3, s2, 0)            // head = cell
	b.Lda(s2, s2, 16)
	b.OpI(isa.OpADD, isa.W64, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t3, s4, int64(m))
	b.CondBranch(isa.OpBNE, t3, "build")

	// rounds × (sum + count-matching) over the list via calls.
	b.Lda(s5, rz, 0) // round
	b.Lda(s6, rz, 0) // result accumulator
	b.Label("round")
	b.Lda(prog.RegArg0, s3, 0) // a0 = head
	b.Call("sumlist")
	b.Op3(isa.OpADD, isa.W64, s6, s6, prog.RegRet)
	b.OpI(isa.OpAND, isa.W64, s6, s6, 0xFFFFFF)
	b.Lda(prog.RegArg0, s3, 0)
	b.OpI(isa.OpAND, isa.W64, t1, s5, 63) // threshold varies per round
	b.Lda(prog.RegArg1, t1, 0)
	b.Call("countabove")
	b.Op3(isa.OpADD, isa.W64, s6, s6, prog.RegRet)
	b.OpI(isa.OpAND, isa.W64, s6, s6, 0xFFFFFF)
	b.OpI(isa.OpADD, isa.W64, s5, s5, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s5, int64(rounds))
	b.CondBranch(isa.OpBNE, t1, "round")

	b.Out(isa.W32, s6)
	b.Halt()

	// sumlist(a0 = head) -> rv: sum of cell values, masked to 20 bits.
	b.Func("sumlist")
	b.Lda(prog.RegRet, rz, 0)
	b.Label("sl_loop")
	b.CondBranch(isa.OpBEQ, prog.RegArg0, "sl_done")
	b.Load(isa.W64, t1, prog.RegArg0, 0) // value: wide load, small data
	b.Op3(isa.OpADD, isa.W64, prog.RegRet, prog.RegRet, t1)
	b.OpI(isa.OpAND, isa.W64, prog.RegRet, prog.RegRet, 0xFFFFF)
	b.Load(isa.W64, prog.RegArg0, prog.RegArg0, 8) // next
	b.Branch("sl_loop")
	b.Label("sl_done")
	b.Ret()

	// countabove(a0 = head, a1 = threshold) -> rv: cells with value > t.
	b.Func("countabove")
	b.Lda(prog.RegRet, rz, 0)
	b.Label("ca_loop")
	b.CondBranch(isa.OpBEQ, prog.RegArg0, "ca_done")
	b.Load(isa.W64, t1, prog.RegArg0, 0)
	b.Op3(isa.OpCMPLT, isa.W64, t2, prog.RegArg1, t1) // t < value
	b.Op3(isa.OpADD, isa.W64, prog.RegRet, prog.RegRet, t2)
	b.Load(isa.W64, prog.RegArg0, prog.RegArg0, 8)
	b.Branch("ca_loop")
	b.Label("ca_done")
	b.Ret()

	return b.Build()
}
