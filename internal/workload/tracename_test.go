package workload

import (
	"errors"
	"strings"
	"testing"
)

// TestTraceNameRoundTrip: trace registry names resolve through ByName to
// a stub whose Build gates with ErrTraceOnly.
func TestTraceNameRoundTrip(t *testing.T) {
	name := TraceName("loopmark.v2")
	if name != "trace:loopmark.v2" {
		t.Fatalf("TraceName = %q", name)
	}
	if !IsTrace(name) || IsTrace("compress") || IsTrace("syn:flip/4/small/1") {
		t.Error("IsTrace misclassifies")
	}
	bare, err := ParseTraceName(name)
	if err != nil {
		t.Fatal(err)
	}
	if bare != "loopmark.v2" {
		t.Errorf("ParseTraceName = %q", bare)
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != name {
		t.Errorf("resolved name %q, want %q", w.Name, name)
	}
	if _, err := w.Build(Ref); !errors.Is(err, ErrTraceOnly) {
		t.Errorf("Build error %v, want ErrTraceOnly", err)
	}
}

// TestTraceNameErrors: malformed trace names fail with precise errors
// rather than resolving to a stub that cannot exist in any store.
func TestTraceNameErrors(t *testing.T) {
	cases := []struct{ name, wantSub string }{
		{"trace:", "malformed"},
		{"trace:has space", "invalid byte"},
		{"trace:semi;colon", "invalid byte"},
		{"trace:path/sep", "invalid byte"},
		{"trace:dir\\sep", "invalid byte"},
		{"trace:" + strings.Repeat("x", MaxTraceNameLen+1), "exceeds"},
	}
	for _, c := range cases {
		_, err := ByName(c.name)
		if err == nil {
			t.Errorf("ByName(%q) succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ByName(%q) error %q, want substring %q", c.name, err, c.wantSub)
		}
	}
	if _, err := ParseTraceName("compress"); err == nil {
		t.Error("ParseTraceName accepted a non-trace name")
	}
	// The longest legal name resolves.
	if _, err := ByName(TraceName(strings.Repeat("x", MaxTraceNameLen))); err != nil {
		t.Errorf("max-length trace name rejected: %v", err)
	}
}

// TestUnknownNameEnumeratesNamespaces: the unknown-benchmark error names
// every kernel and both registry namespaces, so a typo'd name comes back
// with the complete menu.
func TestUnknownNameEnumeratesNamespaces(t *testing.T) {
	_, err := ByName("fortran")
	if err == nil {
		t.Fatal("ByName accepted an unknown benchmark")
	}
	msg := err.Error()
	wants := []string{"fortran", "syn:", "trace:", "phase/", "flip/"}
	for _, w := range All() {
		wants = append(wants, w.Name)
	}
	for _, sub := range wants {
		if !strings.Contains(msg, sub) {
			t.Errorf("unknown-name error %q missing %q", msg, sub)
		}
	}
}
