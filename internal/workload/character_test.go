package workload

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/vrp"
)

// dynShare64 returns the dynamic 64-bit share of a kernel after proposed
// VRP — its "width character".
func dynShare64(t *testing.T, name string) float64 {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(Ref)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrp.Analyze(p, vrp.Options{Mode: vrp.Useful})
	if err != nil {
		t.Fatal(err)
	}
	var h vrp.WidthHistogram
	m := emu.New(r.Apply())
	m.Sink = emu.FuncSink(func(ev emu.Event) {
		if vrp.CountsWidth(ev.Ins.Op) {
			h.Add(ev.Ins.Width, 1)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return h.Fraction(3)
}

// TestWidthCharacter locks in the cross-benchmark width ordering the
// figures depend on: the pointer-chasing kernels (li, vortex) are the
// widest — their cdr/link pointers are genuine 5-byte values — while the
// board/image kernels (go, ijpeg) are the narrowest. This mirrors the
// paper's observation that data-intensive codes benefit most.
func TestWidthCharacter(t *testing.T) {
	li := dynShare64(t, "li")
	vortex := dynShare64(t, "vortex")
	goShare := dynShare64(t, "go")
	ijpeg := dynShare64(t, "ijpeg")

	if li < 0.5 {
		t.Errorf("li 64-bit share %.2f: list traversal should be pointer-dominated", li)
	}
	if vortex < 0.35 {
		t.Errorf("vortex 64-bit share %.2f: record links should keep it wide", vortex)
	}
	if goShare > 0.3 {
		t.Errorf("go 64-bit share %.2f: board influence should be narrow", goShare)
	}
	if ijpeg > 0.4 {
		t.Errorf("ijpeg 64-bit share %.2f: byte pixels should keep it narrow", ijpeg)
	}
	if li <= goShare || vortex <= ijpeg {
		t.Error("pointer kernels must be wider than data kernels")
	}
}

// TestDeterministicBuilds: the same (name, class) always produces an
// identical binary — required for the train/ref layout contract VRS
// relies on.
func TestDeterministicBuilds(t *testing.T) {
	for _, w := range All() {
		p1, err := w.Build(Train)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := w.Build(Train)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1.Ins) != len(p2.Ins) {
			t.Fatalf("%s: nondeterministic instruction count", w.Name)
		}
		for i := range p1.Ins {
			if p1.Ins[i] != p2.Ins[i] {
				t.Fatalf("%s: instruction %d differs between builds", w.Name, i)
			}
		}
	}
}

// TestTrainRefLayoutContract: train and ref binaries of every kernel share
// the static instruction layout (only immediates and data may differ) —
// the contract vrs.Specialize checks at runtime.
func TestTrainRefLayoutContract(t *testing.T) {
	for _, w := range All() {
		trainP, err := w.Build(Train)
		if err != nil {
			t.Fatal(err)
		}
		refP, err := w.Build(Ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(trainP.Ins) != len(refP.Ins) {
			t.Errorf("%s: train %d vs ref %d instructions", w.Name, len(trainP.Ins), len(refP.Ins))
			continue
		}
		for i := range trainP.Ins {
			a, b := trainP.Ins[i], refP.Ins[i]
			if a.Op != b.Op || a.Rd != b.Rd || a.Ra != b.Ra || a.Rb != b.Rb {
				t.Errorf("%s: instruction %d differs structurally (%v vs %v)",
					w.Name, i, a.String(), b.String())
				break
			}
		}
	}
}

// TestOutputsStable: golden outputs — kernels are deterministic; a change
// in behaviour (e.g. a kernel edit) must be deliberate.
func TestOutputsStable(t *testing.T) {
	for _, w := range All() {
		p, err := w.Build(Train)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := emu.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := emu.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(r1.Output) != string(r2.Output) || r1.Dyn != r2.Dyn {
			t.Errorf("%s: nondeterministic execution", w.Name)
		}
	}
}
