package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// Bytecode opcodes for the simulated 16-bit VM inside the m88ksim analog.
const (
	vmHalt    = 0
	vmLoadImm = 1 // reg, imm8
	vmAdd     = 2 // rd, rs
	vmSub     = 3 // rd, rs
	vmJnz     = 4 // reg, signed delta8 (relative to opcode byte)
	vmOut     = 5 // reg
	vmDec     = 6 // reg
)

// BuildM88ksim is the m88ksim analog: a simulator-in-the-simulator. The
// OG64 kernel interprets a small 16-bit virtual machine: fetch a byte
// opcode, walk a compare-and-branch dispatch chain, and operate on eight
// VM registers kept as 64-bit words in memory whose dynamic values are
// 16-bit — the classic case where static analysis must assume wide loads
// but profiling reveals narrow ranges (VRS) and the interpreter arithmetic
// is maskable (useful VRP).
func BuildM88ksim(class InputClass) (*prog.Program, error) {
	outer := 40
	if class == Ref {
		outer = 130
	}

	// VM program: r0 = outer counter; loop: r1 = 23; inner: r2 += r1,
	// r1--, jnz r1 inner; out r2; r0--; jnz r0 outer; halt. The jnz
	// delta is a signed byte added to the pc of the jnz opcode itself.
	code := []byte{
		vmLoadImm, 0, byte(outer), // 0: r0 = outer
		vmLoadImm, 1, 23, // 3: r1 = 23
		vmAdd, 2, 1, // 6: r2 += r1
		vmDec, 1, // 9: r1--
		vmJnz, 1, 0x100 - 5, // 11: if r1 goto 6   (11-5=6)
		vmOut, 2, // 14: out r2
		vmDec, 0, // 16: r0--
		vmJnz, 0, 0x100 - 15, // 18: if r0 goto 3  (18-15=3)
		vmHalt, // 21
	}

	b := asm.NewBuilder()
	b.Bytes("code", code)
	b.Space("vregs", 8*8)
	b.Space("trapmode", 8) // simulator trace/trap mode word; 0 in normal runs

	b.Func("main")
	b.LoadAddr(s1, "code")
	b.LoadAddr(s2, "vregs")
	b.LoadAddr(s5, "trapmode")
	b.Lda(s3, rz, 0) // vm pc
	b.Lda(s6, rz, 0) // trace event counter

	b.Label("fetch")
	// Debug-hook checks on every dispatch, like a real simulator: one
	// control word gates tracing, single-stepping and watchpoints. The
	// word is almost always zero — the canonical single-value
	// specialization point: one guard test replaces three mask-and-branch
	// pairs in the specialized clone (constant propagation folds them
	// all, the paper's m88ksim elimination effect in Fig. 5).
	b.Load(isa.W64, t5, s5, 0)
	b.OpI(isa.OpAND, isa.W64, t6, t5, 1)
	b.CondBranch(isa.OpBNE, t6, "trace")
	b.OpI(isa.OpAND, isa.W64, t6, t5, 2)
	b.CondBranch(isa.OpBNE, t6, "sstep")
	b.OpI(isa.OpAND, isa.W64, t6, t5, 4)
	b.CondBranch(isa.OpBNE, t6, "watch")
	b.Label("fetch2")
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W8, t2, t1, 0) // opcode
	b.Load(isa.W8, t3, t1, 1) // operand 1
	b.Load(isa.W8, t4, t1, 2) // operand 2

	// Dispatch chain (frequency-ordered like a real interpreter).
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmAdd)
	b.CondBranch(isa.OpBNE, t5, "op_add")
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmDec)
	b.CondBranch(isa.OpBNE, t5, "op_dec")
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmJnz)
	b.CondBranch(isa.OpBNE, t5, "op_jnz")
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmLoadImm)
	b.CondBranch(isa.OpBNE, t5, "op_li")
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmSub)
	b.CondBranch(isa.OpBNE, t5, "op_sub")
	b.OpI(isa.OpCMPEQ, isa.W64, t5, t2, vmOut)
	b.CondBranch(isa.OpBNE, t5, "op_out")
	b.Branch("vm_halt")

	// vregs helper: address of vreg k in t6 given reg index in t3.
	b.Label("op_add")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.OpI(isa.OpSLL, isa.W64, t7, t4, 3)
	b.Op3(isa.OpADD, isa.W64, t7, s2, t7)
	b.Load(isa.W64, t5, t6, 0) // rd value (16-bit dynamic)
	b.Load(isa.W64, t8, t7, 0) // rs value
	b.Op3(isa.OpADD, isa.W64, t5, t5, t8)
	b.OpI(isa.OpAND, isa.W64, t5, t5, 0xFFFF) // 16-bit VM wraparound
	b.Store(isa.W64, t5, t6, 0)
	b.Lda(s3, s3, 3)
	b.Branch("fetch")

	b.Label("op_sub")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.OpI(isa.OpSLL, isa.W64, t7, t4, 3)
	b.Op3(isa.OpADD, isa.W64, t7, s2, t7)
	b.Load(isa.W64, t5, t6, 0)
	b.Load(isa.W64, t8, t7, 0)
	b.Op3(isa.OpSUB, isa.W64, t5, t5, t8)
	b.OpI(isa.OpAND, isa.W64, t5, t5, 0xFFFF)
	b.Store(isa.W64, t5, t6, 0)
	b.Lda(s3, s3, 3)
	b.Branch("fetch")

	b.Label("op_dec")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.Load(isa.W64, t5, t6, 0)
	b.OpI(isa.OpSUB, isa.W64, t5, t5, 1)
	b.OpI(isa.OpAND, isa.W64, t5, t5, 0xFFFF)
	b.Store(isa.W64, t5, t6, 0)
	b.Lda(s3, s3, 2)
	b.Branch("fetch")

	b.Label("op_li")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.Store(isa.W64, t4, t6, 0)
	b.Lda(s3, s3, 3)
	b.Branch("fetch")

	b.Label("op_jnz")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.Load(isa.W64, t5, t6, 0)
	b.CondBranch(isa.OpBEQ, t5, "jnz_fall")
	// pc += sext8(delta)
	b.Emit(isa.Instruction{Op: isa.OpSEXT, Width: isa.W8, Rd: t7, Ra: t4})
	b.Op3(isa.OpADD, isa.W64, s3, s3, t7)
	b.Branch("fetch")
	b.Label("jnz_fall")
	b.Lda(s3, s3, 3)
	b.Branch("fetch")

	b.Label("op_out")
	b.OpI(isa.OpSLL, isa.W64, t6, t3, 3)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.Load(isa.W64, t5, t6, 0)
	b.Out(isa.W16, t5)
	b.Lda(s3, s3, 2)
	b.Branch("fetch")

	// Debug paths: count the event and emit the pc (never taken in these
	// runs, but they must exist — and must survive DCE — for the control
	// checks to be meaningful).
	b.Label("trace")
	b.OpI(isa.OpADD, isa.W64, s6, s6, 1)
	b.Out(isa.W16, s3)
	b.Branch("fetch2")
	b.Label("sstep")
	b.OpI(isa.OpADD, isa.W64, s6, s6, 2)
	b.Out(isa.W16, s3)
	b.Branch("fetch2")
	b.Label("watch")
	b.OpI(isa.OpADD, isa.W64, s6, s6, 4)
	b.Out(isa.W16, s3)
	b.Branch("fetch2")

	b.Label("vm_halt")
	b.Halt()
	return b.Build()
}
