package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildGCC is the gcc analog: a token-stream scanner with a dispatch
// chain, per-kind 64-bit counters (whose runtime values are small — prime
// value-range-specialization candidates), a nesting-depth tracker with a
// conditional-move maximum, and a precedence-weighted accumulator using
// multiplies. Mixed widths, branchy control.
func BuildGCC(class InputClass) (*prog.Program, error) {
	n := 3000
	seed := uint64(101)
	if class == Ref {
		n = 9000
		seed = 211
	}

	r := newRNG(seed)
	tokens := make([]byte, n)
	depthBias := 0
	for i := range tokens {
		t := r.byten(16)
		// Keep opens/closes roughly balanced so depth stays small.
		if t < 4 && depthBias > 6 {
			t += 4
		}
		if t < 4 {
			depthBias++
		} else if t < 8 && depthBias > 0 {
			depthBias--
		}
		tokens[i] = t
	}
	prec := make([]byte, 16)
	for i := range prec {
		prec[i] = byte(1 + r.intn(9))
	}

	b := asm.NewBuilder()
	b.Bytes("tokens", tokens)
	b.Bytes("prec", prec)
	b.Space("counts", 16*8)

	b.Func("main")
	b.LoadAddr(s1, "tokens")
	b.LoadAddr(s2, "counts")
	b.LoadAddr(s3, "prec")
	b.Lda(s4, rz, 0) // i
	b.Lda(s5, rz, 0) // depth
	b.Lda(s6, rz, 0) // maxdepth
	b.Lda(s7, rz, 0) // weighted sum

	b.Label("scan")
	b.Op3(isa.OpADD, isa.W64, t1, s1, s4)
	b.Load(isa.W8, t2, t1, 0) // t = tokens[i], range [0,15]

	// counts[t]++ — a 64-bit counter whose dynamic value is small: the
	// load below is exactly the kind of point VRS profiles and
	// specializes.
	b.OpI(isa.OpSLL, isa.W64, t3, t2, 3)
	b.Op3(isa.OpADD, isa.W64, t3, s2, t3)
	b.Load(isa.W64, t4, t3, 0)
	b.OpI(isa.OpADD, isa.W64, t4, t4, 1)
	b.Store(isa.W64, t4, t3, 0)

	// Dispatch: t<4 open, 4<=t<8 close, else operand.
	b.OpI(isa.OpCMPLT, isa.W64, t5, t2, 4)
	b.CondBranch(isa.OpBEQ, t5, "notopen")
	b.OpI(isa.OpADD, isa.W32, s5, s5, 1) // depth++ (a C int)
	b.Branch("depthdone")
	b.Label("notopen")
	b.OpI(isa.OpCMPLT, isa.W64, t5, t2, 8)
	b.CondBranch(isa.OpBEQ, t5, "depthdone")
	b.OpI(isa.OpSUB, isa.W32, s5, s5, 1) // depth--
	// Clamp at zero: depth = depth<0 ? 0 : depth.
	b.Op3(isa.OpCMOVLT, isa.W64, s5, s5, rz)
	b.Label("depthdone")

	// maxdepth = max(maxdepth, depth) via compare + cmovne.
	b.Op3(isa.OpCMPLT, isa.W64, t6, s6, s5)
	b.Op3(isa.OpCMOVNE, isa.W64, s6, t6, s5)

	// sum += prec[t] * depth, masked to 24 bits (useful anchor).
	b.Op3(isa.OpADD, isa.W64, t7, s3, t2)
	b.Load(isa.W8, t7, t7, 0)
	b.Op3(isa.OpMUL, isa.W64, t7, t7, s5)
	b.Op3(isa.OpADD, isa.W64, s7, s7, t7)
	b.OpI(isa.OpAND, isa.W64, s7, s7, 0xFFFFFF)

	b.OpI(isa.OpADD, isa.W64, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s4, int64(n))
	b.CondBranch(isa.OpBNE, t1, "scan")

	// Emit results: weighted sum, max depth, and the counter table
	// checksum (folded to 16 bits).
	b.Out(isa.W32, s7)
	b.Out(isa.W8, s6)
	b.Lda(s4, rz, 0) // k
	b.Lda(s5, rz, 0) // checksum
	b.Label("ck")
	b.OpI(isa.OpSLL, isa.W64, t1, s4, 3)
	b.Op3(isa.OpADD, isa.W64, t1, s2, t1)
	b.Load(isa.W64, t2, t1, 0)
	b.Op3(isa.OpADD, isa.W64, s5, s5, t2)
	b.OpI(isa.OpAND, isa.W64, s5, s5, 0xFFFF)
	b.OpI(isa.OpADD, isa.W64, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t3, s4, 16)
	b.CondBranch(isa.OpBNE, t3, "ck")
	b.Out(isa.W16, s5)
	b.Halt()
	return b.Build()
}
