package workload

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/vrp"
)

// TestWorkloadsRun executes every kernel on both inputs and checks basic
// health: it halts, produces output, and ref runs longer than train.
func TestWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var dyn [2]int64
			for _, class := range []InputClass{Train, Ref} {
				p, err := w.Build(class)
				if err != nil {
					t.Fatalf("build(%v): %v", class, err)
				}
				res, err := emu.Execute(p)
				if err != nil {
					t.Fatalf("run(%v): %v", class, err)
				}
				if len(res.Output) == 0 {
					t.Errorf("%v produced no output", class)
				}
				if res.Dyn < 1000 {
					t.Errorf("%v retired only %d instructions", class, res.Dyn)
				}
				dyn[class] = res.Dyn
			}
			if dyn[Ref] <= dyn[Train] {
				t.Errorf("ref (%d) not longer than train (%d)", dyn[Ref], dyn[Train])
			}
		})
	}
}

// TestWorkloadsVRPEquivalence re-encodes every kernel with both VRP modes
// and verifies bit-identical behaviour — the paper's core correctness
// claim ("VRP is always done in a conservative manner").
func TestWorkloadsVRPEquivalence(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Build(Ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []vrp.Mode{vrp.Conventional, vrp.Useful} {
				r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
				if err != nil {
					t.Fatalf("analyze(%v): %v", mode, err)
				}
				if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
			}
		})
	}
}

// TestUsefulNarrowsMore checks Fig. 2's shape: the useful analysis finds
// at least as many narrow instructions as the conventional one on every
// kernel, and strictly more across the suite.
func TestUsefulNarrowsMore(t *testing.T) {
	var conv64, useful64 int64
	for _, w := range All() {
		p, err := w.Build(Ref)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := vrp.Analyze(p, vrp.Options{Mode: vrp.Conventional})
		if err != nil {
			t.Fatal(err)
		}
		ru, err := vrp.Analyze(p, vrp.Options{Mode: vrp.Useful})
		if err != nil {
			t.Fatal(err)
		}
		hc, hu := rc.StaticHistogram(), ru.StaticHistogram()
		if hu.Count[3] > hc.Count[3] {
			t.Errorf("%s: useful has MORE 64-bit instructions (%d) than conventional (%d)",
				w.Name, hu.Count[3], hc.Count[3])
		}
		conv64 += hc.Count[3]
		useful64 += hu.Count[3]
	}
	if useful64 >= conv64 {
		t.Errorf("suite-wide: useful 64-bit count %d, conventional %d — useful should be lower", useful64, conv64)
	}
}
