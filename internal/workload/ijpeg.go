package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildIJPEG is the ijpeg analog: an 8-point integer transform applied to
// the rows of 8×8 pixel blocks with small signed weights, followed by a
// shift-quantise back to bytes. Pixels are unsigned bytes, weights are
// signed bytes (loaded with an explicit sign extension — the MSK/SEXT
// family), and intermediates fit 16–32 bits.
func BuildIJPEG(class InputClass) (*prog.Program, error) {
	w, h := 40, 24
	seed := uint64(313)
	if class == Ref {
		w, h = 64, 40
		seed = 771
	}

	r := newRNG(seed)
	pix := make([]byte, w*h)
	for i := range pix {
		// Smooth-ish image: neighbours correlate.
		if i%w == 0 || i < w {
			pix[i] = r.byten(256)
		} else {
			base := int(pix[i-1]) + int(pix[i-w])
			pix[i] = byte((base/2 + r.intn(17) - 8) & 0xFF)
		}
	}
	weights := make([]byte, 64)
	for k := 0; k < 8; k++ {
		for x := 0; x < 8; x++ {
			weights[k*8+x] = byte(int8(r.intn(7) - 3)) // -3..3
		}
	}

	b := asm.NewBuilder()
	b.Bytes("pix", pix)
	b.Bytes("wt", weights)
	b.Space("coef", w*h*2)

	nbx := w / 8
	nby := h / 8

	b.Func("main")
	b.LoadAddr(s1, "pix")
	b.LoadAddr(s2, "wt")
	b.LoadAddr(s3, "coef")
	b.Lda(s7, rz, 0) // checksum

	b.Lda(s4, rz, 0) // by
	b.Label("byloop")
	b.Lda(s5, rz, 0) // bx
	b.Label("bxloop")
	b.Lda(s6, rz, 0) // row within block
	b.Label("rowloop")

	// rowbase = ((by*8 + row)*w + bx*8)
	b.OpI(isa.OpSLL, isa.W64, t1, s4, 3)
	b.Op3(isa.OpADD, isa.W64, t1, t1, s6)
	b.OpI(isa.OpMUL, isa.W64, t1, t1, int64(w))
	b.OpI(isa.OpSLL, isa.W64, t2, s5, 3)
	b.Op3(isa.OpADD, isa.W64, t1, t1, t2)
	b.Op3(isa.OpADD, isa.W64, t1, s1, t1) // &pix[rowbase]

	// For k in 0..7: c = sum_x pix[x] * wt[k*8+x]; out halfword.
	b.Lda(t2, rz, 0) // k
	b.Label("kloop")
	b.Lda(t3, rz, 0) // accumulator c
	b.Lda(t4, rz, 0) // x
	b.Label("xsum")
	b.Op3(isa.OpADD, isa.W64, t5, t1, t4)
	b.Load(isa.W8, t5, t5, 0) // pixel, [0,255]
	b.OpI(isa.OpSLL, isa.W64, t6, t2, 3)
	b.Op3(isa.OpADD, isa.W64, t6, t6, t4)
	b.Op3(isa.OpADD, isa.W64, t6, s2, t6)
	b.Load(isa.W8, t6, t6, 0)
	b.Emit(isa.Instruction{Op: isa.OpSEXT, Width: isa.W8, Rd: t6, Ra: t6}) // signed weight
	b.Op3(isa.OpMUL, isa.W64, t5, t5, t6)
	b.Op3(isa.OpADD, isa.W64, t3, t3, t5)
	b.OpI(isa.OpADD, isa.W64, t4, t4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, t4, 8)
	b.CondBranch(isa.OpBNE, t7, "xsum")

	// Quantise: q = (c >> 3) clipped to a signed halfword, stored.
	b.OpI(isa.OpSRA, isa.W64, t3, t3, 3)
	// coefindex = rowbase + k (reuse t1 base relative to pix; the
	// coefficient plane mirrors the pixel plane)
	b.OpI(isa.OpSLL, isa.W64, t5, t2, 0)
	b.Op3(isa.OpADD, isa.W64, t5, t1, t5) // &pix[rowbase+k]
	// translate pixel address to coef address: coef + 2*(addr - pix)
	b.Op3(isa.OpSUB, isa.W64, t5, t5, s1)
	b.Op3(isa.OpADD, isa.W64, t5, t5, t5)
	b.Op3(isa.OpADD, isa.W64, t5, s3, t5)
	b.Store(isa.W16, t3, t5, 0)
	// checksum accumulates |q| & 0x3FF
	b.OpI(isa.OpAND, isa.W64, t6, t3, 0x3FF)
	b.Op3(isa.OpADD, isa.W64, s7, s7, t6)
	b.OpI(isa.OpAND, isa.W64, s7, s7, 0xFFFFF)

	b.OpI(isa.OpADD, isa.W64, t2, t2, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, t2, 8)
	b.CondBranch(isa.OpBNE, t7, "kloop")

	b.OpI(isa.OpADD, isa.W64, s6, s6, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, s6, 8)
	b.CondBranch(isa.OpBNE, t7, "rowloop")
	b.OpI(isa.OpADD, isa.W64, s5, s5, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, s5, int64(nbx))
	b.CondBranch(isa.OpBNE, t7, "bxloop")
	b.OpI(isa.OpADD, isa.W64, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, s4, int64(nby))
	b.CondBranch(isa.OpBNE, t7, "byloop")

	b.Out(isa.W32, s7)
	b.Halt()
	return b.Build()
}
