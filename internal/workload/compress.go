package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildCompress is the compress analog: run-length encoding over a bursty
// byte stream, followed by a checksum over the encoded output. Nearly all
// data is byte-width; run lengths are bounded at 255; the checksum is kept
// narrow by an explicit mask (a useful-range anchor, §2.2.5).
func BuildCompress(class InputClass) (*prog.Program, error) {
	n := 2000
	seed := uint64(11)
	if class == Ref {
		n = 6000
		seed = 29
	}

	// Bursty input: runs of identical bytes with geometric-ish lengths.
	r := newRNG(seed)
	input := make([]byte, n)
	for i := 0; i < n; {
		v := r.byten(32)
		run := 1 + r.intn(12)
		if r.intn(4) == 0 {
			run += r.intn(40)
		}
		for j := 0; j < run && i < n; j++ {
			input[i] = v
			i++
		}
	}

	b := asm.NewBuilder()
	b.Bytes("input", input)
	b.Space("output", 2*n+16)

	b.Func("main")
	b.LoadAddr(s1, "input")  // in pointer
	b.LoadAddr(s2, "output") // out pointer
	b.Lda(s3, rz, 0)         // i
	b.Lda(s4, rz, 0)         // outp

	b.Label("encode")
	// b = in[i]
	b.Op3(isa.OpADD, isa.W64, t2, s1, s3)
	b.Load(isa.W8, t3, t2, 0)
	b.Lda(t4, rz, 1) // run = 1
	b.Label("scan")
	b.Op3(isa.OpADD, isa.W64, t5, s3, t4) // i + run
	b.OpI(isa.OpCMPLT, isa.W64, t6, t5, int64(n))
	b.CondBranch(isa.OpBEQ, t6, "scandone") // off the end
	b.OpI(isa.OpCMPLT, isa.W64, t7, t4, 255)
	b.CondBranch(isa.OpBEQ, t7, "scandone") // run saturated
	b.Op3(isa.OpADD, isa.W64, t8, s1, t5)
	b.Load(isa.W8, t8, t8, 0)
	b.Op3(isa.OpXOR, isa.W64, t8, t8, t3)
	b.CondBranch(isa.OpBNE, t8, "scandone") // run broken
	b.OpI(isa.OpADD, isa.W64, t4, t4, 1)
	b.Branch("scan")
	b.Label("scandone")
	// out[outp] = b; out[outp+1] = run
	b.Op3(isa.OpADD, isa.W64, t5, s2, s4)
	b.Store(isa.W8, t3, t5, 0)
	b.Store(isa.W8, t4, t5, 1)
	b.OpI(isa.OpADD, isa.W64, s4, s4, 2)
	b.Op3(isa.OpADD, isa.W64, s3, s3, t4)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s3, int64(n))
	b.CondBranch(isa.OpBNE, t1, "encode")

	// Checksum the encoded stream: sum of bytes, masked to 16 bits so the
	// whole accumulation chain is narrow-useful.
	b.Lda(s5, rz, 0) // sum
	b.Lda(s6, rz, 0) // j
	b.Label("csum")
	b.Op3(isa.OpADD, isa.W64, t1, s2, s6)
	b.Load(isa.W8, t2, t1, 0)
	b.Op3(isa.OpADD, isa.W64, s5, s5, t2)
	b.OpI(isa.OpAND, isa.W64, s5, s5, 0xFFFF)
	b.OpI(isa.OpADD, isa.W64, s6, s6, 1)
	b.Op3(isa.OpCMPLT, isa.W64, t3, s6, s4)
	b.CondBranch(isa.OpBNE, t3, "csum")

	b.Out(isa.W16, s5) // checksum
	b.Out(isa.W32, s4) // encoded length
	b.Halt()
	return b.Build()
}
