package workload

import (
	"errors"
	"fmt"
	"strings"

	"opgate/internal/prog"
)

// Trace-backed workloads are imported retirement traces registered as
// first-class benchmarks under the "trace:" namespace. Unlike kernels and
// synthetics, a trace workload has no generative program: its program is
// the skeleton synthesized from the trace's per-static table at import
// time, and its only runnable form is replay of the imported records. The
// Workload returned here is therefore a registry stub — Name resolves,
// equality and set membership work, but Build reports ErrTraceOnly. The
// harness intercepts trace names before ever calling Build and serves
// both program and trace from the store (internal/tracework).

// TracePrefix marks imported-trace workload names: "trace:<name>".
const TracePrefix = "trace:"

// MaxTraceNameLen caps the bare (prefix-stripped) trace name length.
const MaxTraceNameLen = 128

// ErrTraceOnly is reported (wrapped) wherever a trace-backed workload is
// asked for something only a live program can provide: building the
// program from source, emulating fresh inputs, profiling a VRS, or any
// variant beyond base replay. Callers gate with errors.Is.
var ErrTraceOnly = errors.New("trace-backed workload is replay-only")

// IsTrace reports whether name denotes an imported-trace workload.
func IsTrace(name string) bool { return strings.HasPrefix(name, TracePrefix) }

// TraceName returns the registry name of an imported trace,
// e.g. "trace:loopmark".
func TraceName(bare string) string { return TracePrefix + bare }

// ParseTraceName validates a "trace:<name>" registry name and returns the
// bare name. Bare names are non-empty, at most MaxTraceNameLen bytes, and
// restricted to [A-Za-z0-9._-] so they embed safely in store keys, URLs
// and file names.
func ParseTraceName(name string) (string, error) {
	if !IsTrace(name) {
		return "", fmt.Errorf("workload: %q is not a %s name", name, TracePrefix)
	}
	bare := strings.TrimPrefix(name, TracePrefix)
	if bare == "" {
		return "", fmt.Errorf("workload: malformed trace name %q (want %s<name>)", name, TracePrefix)
	}
	if len(bare) > MaxTraceNameLen {
		return "", fmt.Errorf("workload: trace name %q exceeds %d bytes", name, MaxTraceNameLen)
	}
	for i := 0; i < len(bare); i++ {
		c := bare[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("workload: trace name %q has invalid byte %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return bare, nil
}

// parseTrace resolves a "trace:<name>" registry name to its stub
// workload.
func parseTrace(name string) (*Workload, error) {
	if _, err := ParseTraceName(name); err != nil {
		return nil, err
	}
	return &Workload{
		Name: name,
		Build: func(class InputClass) (*prog.Program, error) {
			return nil, fmt.Errorf("workload: %s has no buildable program (its skeleton and records live in the store): %w", name, ErrTraceOnly)
		},
	}, nil
}
