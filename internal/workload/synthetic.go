package workload

import (
	"fmt"
	"strconv"
	"strings"

	"opgate/internal/prog"
	"opgate/internal/progen"
)

// Synthetic workloads are progen-generated programs registered as
// first-class benchmarks: they resolve through ByName like the eight
// kernels, so every experiment driver, trace cache and figure matrix runs
// over them unmodified. The Train input class maps to the generator's
// train variant and Ref to the (longer, reseeded) ref variant, preserving
// the profiling/evaluation methodology end-to-end.

// synPrefix marks synthetic workload names: "syn:<family>/<class>/<seed>".
const synPrefix = "syn:"

// SyntheticName returns the registry name of a generated workload,
// e.g. "syn:pointer/small/42".
func SyntheticName(f progen.Family, seed uint64, c progen.Class) string {
	return fmt.Sprintf("%s%s/%s/%d", synPrefix, f, c, seed)
}

// Synthetic constructs the (family, seed, class) generated workload. The
// name round-trips through ByName.
func Synthetic(f progen.Family, seed uint64, c progen.Class) *Workload {
	return &Workload{
		Name: SyntheticName(f, seed, c),
		Build: func(class InputClass) (*prog.Program, error) {
			return progen.Generate(f, seed, c, class == Ref)
		},
	}
}

// IsSynthetic reports whether name denotes a generated workload.
func IsSynthetic(name string) bool { return strings.HasPrefix(name, synPrefix) }

// parseSynthetic resolves a "syn:<family>/<class>/<seed>" name.
func parseSynthetic(name string) (*Workload, error) {
	spec := strings.TrimPrefix(name, synPrefix)
	parts := strings.Split(spec, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("workload: malformed synthetic name %q (want %sfamily/class/seed)", name, synPrefix)
	}
	f, err := progen.ParseFamily(parts[0])
	if err != nil {
		return nil, fmt.Errorf("workload: %q: %w", name, err)
	}
	c, err := progen.ParseClass(parts[1])
	if err != nil {
		return nil, fmt.Errorf("workload: %q: %w", name, err)
	}
	seed, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("workload: %q: bad seed %q", name, parts[2])
	}
	return Synthetic(f, seed, c), nil
}

// CuratedSeedsPerFamily is how many fixed seeds per family the curated
// synthetic set carries.
const CuratedSeedsPerFamily = 2

// CuratedSynthetics returns the named curated set of generated workloads:
// a fixed grid of seeds per behavioral family at the Small size class,
// spanning the dynamic-width spectrum from narrow to wide. It is the
// suite the -synthetic ogbench mode and the differential CI runs extend
// the eight kernels with.
func CuratedSynthetics() []*Workload {
	var ws []*Workload
	for _, f := range progen.Families() {
		for seed := uint64(1); seed <= CuratedSeedsPerFamily; seed++ {
			ws = append(ws, Synthetic(f, seed, progen.Small))
		}
	}
	return ws
}
