package workload

import (
	"fmt"
	"strconv"
	"strings"

	"opgate/internal/prog"
	"opgate/internal/progen"
)

// Synthetic workloads are progen-generated programs registered as
// first-class benchmarks: they resolve through ByName like the eight
// kernels, so every experiment driver, trace cache and figure matrix runs
// over them unmodified. The Train input class maps to the generator's
// train variant and Ref to the (longer, reseeded) ref variant, preserving
// the profiling/evaluation methodology end-to-end.

// synPrefix marks synthetic workload names: "syn:<family>/<class>/<seed>".
const synPrefix = "syn:"

// SyntheticName returns the registry name of a generated workload,
// e.g. "syn:pointer/small/42".
func SyntheticName(f progen.Family, seed uint64, c progen.Class) string {
	return fmt.Sprintf("%s%s/%s/%d", synPrefix, f, c, seed)
}

// Synthetic constructs the (family, seed, class) generated workload. The
// name round-trips through ByName.
func Synthetic(f progen.Family, seed uint64, c progen.Class) *Workload {
	return &Workload{
		Name: SyntheticName(f, seed, c),
		Build: func(class InputClass) (*prog.Program, error) {
			return progen.Generate(f, seed, c, class == Ref)
		},
	}
}

// SyntheticPhasedName returns the registry name of a phase-structured
// composite, e.g. "syn:phase/narrow-wide/small/7".
func SyntheticPhasedName(families []progen.Family, seed uint64, c progen.Class) string {
	return fmt.Sprintf("%sphase/%s/%s/%d", synPrefix, progen.PhaseLabel(families), c, seed)
}

// SyntheticPhased constructs the phase-structured composite workload: the
// listed family bodies stitched into one program, executing in sequence.
// The name round-trips through ByName.
func SyntheticPhased(families []progen.Family, seed uint64, c progen.Class) *Workload {
	return &Workload{
		Name: SyntheticPhasedName(families, seed, c),
		Build: func(class InputClass) (*prog.Program, error) {
			p, _, err := progen.GeneratePhased(families, seed, c, class == Ref)
			return p, err
		},
	}
}

// SyntheticFlipName returns the registry name of an adversarial
// width-flip workload, e.g. "syn:flip/4/small/7".
func SyntheticFlipName(period int, seed uint64, c progen.Class) string {
	return fmt.Sprintf("%sflip/%d/%s/%d", synPrefix, period, c, seed)
}

// SyntheticFlip constructs the adversarial width-flip workload: one
// program toggling between narrow and wide steady states every period
// blocks. The name round-trips through ByName.
func SyntheticFlip(period int, seed uint64, c progen.Class) *Workload {
	return &Workload{
		Name: SyntheticFlipName(period, seed, c),
		Build: func(class InputClass) (*prog.Program, error) {
			return progen.GenerateFlip(period, seed, c, class == Ref)
		},
	}
}

// IsSynthetic reports whether name denotes a generated workload.
func IsSynthetic(name string) bool { return strings.HasPrefix(name, synPrefix) }

// parseSynthetic resolves a "syn:..." registry name: the single-family
// "syn:<family>/<class>/<seed>" form, the phase composite
// "syn:phase/<f1>-<f2>/<class>/<seed>" form, or the width-flip
// "syn:flip/<period>/<class>/<seed>" form. ("phase" and "flip" are not
// family names, so the forms cannot collide.)
func parseSynthetic(name string) (*Workload, error) {
	spec := strings.TrimPrefix(name, synPrefix)
	parts := strings.Split(spec, "/")
	switch {
	case len(parts) == 4 && parts[0] == "phase":
		fams, err := progen.ParsePhaseLabel(parts[1])
		if err != nil {
			return nil, fmt.Errorf("workload: %q: %w", name, err)
		}
		c, seed, err := parseClassSeed(name, parts[2], parts[3])
		if err != nil {
			return nil, err
		}
		return SyntheticPhased(fams, seed, c), nil
	case len(parts) == 4 && parts[0] == "flip":
		period, err := strconv.Atoi(parts[1])
		if err != nil || period < 1 || period > progen.MaxFlipPeriod {
			return nil, fmt.Errorf("workload: %q: bad flip period %q (want 1..%d)", name, parts[1], progen.MaxFlipPeriod)
		}
		c, seed, err := parseClassSeed(name, parts[2], parts[3])
		if err != nil {
			return nil, err
		}
		return SyntheticFlip(period, seed, c), nil
	case len(parts) == 3 && parts[0] != "phase" && parts[0] != "flip":
		// A 3-part phase/flip name is a missing segment, not an unknown
		// family — let it fall through to the malformed error.
		f, err := progen.ParseFamily(parts[0])
		if err != nil {
			return nil, fmt.Errorf("workload: %q: %w", name, err)
		}
		c, seed, err := parseClassSeed(name, parts[1], parts[2])
		if err != nil {
			return nil, err
		}
		return Synthetic(f, seed, c), nil
	}
	return nil, fmt.Errorf("workload: malformed synthetic name %q (want %sfamily/class/seed, %sphase/f1-f2/class/seed, or %sflip/period/class/seed)", name, synPrefix, synPrefix, synPrefix)
}

// parseClassSeed parses the trailing <class>/<seed> pair every synthetic
// form shares.
func parseClassSeed(name, classPart, seedPart string) (progen.Class, uint64, error) {
	c, err := progen.ParseClass(classPart)
	if err != nil {
		return 0, 0, fmt.Errorf("workload: %q: %w", name, err)
	}
	seed, err := strconv.ParseUint(seedPart, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("workload: %q: bad seed %q", name, seedPart)
	}
	return c, seed, nil
}

// CuratedSeedsPerFamily is how many fixed seeds per family the curated
// synthetic set carries.
const CuratedSeedsPerFamily = 2

// CuratedSynthetics returns the named curated set of generated workloads:
// a fixed grid of seeds per behavioral family at the Small size class,
// spanning the dynamic-width spectrum from narrow to wide. It is the
// suite the -synthetic ogbench mode and the differential CI runs extend
// the eight kernels with.
func CuratedSynthetics() []*Workload {
	var ws []*Workload
	for _, f := range progen.Families() {
		for seed := uint64(1); seed <= CuratedSeedsPerFamily; seed++ {
			ws = append(ws, Synthetic(f, seed, progen.Small))
		}
	}
	return ws
}
