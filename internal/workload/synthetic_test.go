package workload

import (
	"strings"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/progen"
)

// TestInputClassString covers the input-class names the registry and the
// suite key caches on.
func TestInputClassString(t *testing.T) {
	if got := Train.String(); got != "train" {
		t.Errorf("Train.String() = %q", got)
	}
	if got := Ref.String(); got != "ref" {
		t.Errorf("Ref.String() = %q", got)
	}
	// Out-of-range classes fall back to ref (the evaluation default).
	if got := InputClass(7).String(); got != "ref" {
		t.Errorf("InputClass(7).String() = %q", got)
	}
}

// TestByNameKernels: every kernel resolves to itself, and unknown names
// are rejected with the name in the error.
func TestByNameKernels(t *testing.T) {
	for _, w := range All() {
		got, err := ByName(w.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", w.Name, err)
		}
		if got.Name != w.Name {
			t.Errorf("ByName(%q) returned %q", w.Name, got.Name)
		}
	}
	_, err := ByName("fortran")
	if err == nil {
		t.Fatal("ByName accepted an unknown benchmark")
	}
	if !strings.Contains(err.Error(), "fortran") {
		t.Errorf("error %q does not name the missing benchmark", err)
	}
}

// TestSyntheticRoundTrip: synthetic names round-trip through ByName and
// build runnable programs for both input classes.
func TestSyntheticRoundTrip(t *testing.T) {
	name := SyntheticName(progen.Pointer, 42, progen.Small)
	if name != "syn:pointer/small/42" {
		t.Fatalf("SyntheticName = %q", name)
	}
	if !IsSynthetic(name) || IsSynthetic("compress") {
		t.Error("IsSynthetic misclassifies")
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != name {
		t.Errorf("resolved name %q, want %q", w.Name, name)
	}
	var dyn [2]int64
	for _, class := range []InputClass{Train, Ref} {
		p, err := w.Build(class)
		if err != nil {
			t.Fatalf("build(%v): %v", class, err)
		}
		res, err := emu.Execute(p)
		if err != nil {
			t.Fatalf("run(%v): %v", class, err)
		}
		dyn[class] = res.Dyn
	}
	if dyn[Ref] <= dyn[Train] {
		t.Errorf("ref (%d) not longer than train (%d)", dyn[Ref], dyn[Train])
	}
}

// TestPhasedRoundTrip: phase-composite and width-flip names round-trip
// through ByName and build runnable programs for both input classes.
func TestPhasedRoundTrip(t *testing.T) {
	for _, name := range []string{
		SyntheticPhasedName([]progen.Family{progen.Narrow, progen.Wide}, 7, progen.Small),
		SyntheticFlipName(2, 7, progen.Small),
	} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name != name {
			t.Errorf("resolved name %q, want %q", w.Name, name)
		}
		var dyn [2]int64
		for _, class := range []InputClass{Train, Ref} {
			p, err := w.Build(class)
			if err != nil {
				t.Fatalf("%s: build(%v): %v", name, class, err)
			}
			res, err := emu.Execute(p)
			if err != nil {
				t.Fatalf("%s: run(%v): %v", name, class, err)
			}
			dyn[class] = res.Dyn
		}
		if dyn[Ref] <= dyn[Train] {
			t.Errorf("%s: ref (%d) not longer than train (%d)", name, dyn[Ref], dyn[Train])
		}
	}
	if got := SyntheticPhasedName([]progen.Family{progen.Narrow, progen.Wide}, 7, progen.Small); got != "syn:phase/narrow-wide/small/7" {
		t.Errorf("SyntheticPhasedName = %q", got)
	}
	if got := SyntheticFlipName(2, 7, progen.Small); got != "syn:flip/2/small/7" {
		t.Errorf("SyntheticFlipName = %q", got)
	}
}

// TestSyntheticLookupErrors: malformed synthetic names fail with precise
// errors rather than resolving to an arbitrary generator.
func TestSyntheticLookupErrors(t *testing.T) {
	cases := []struct{ name, wantSub string }{
		{"syn:pointer/small", "malformed"},
		{"syn:pointer/small/1/extra", "malformed"},
		{"syn:quantum/small/1", "unknown family"},
		{"syn:pointer/jumbo/1", "unknown size class"},
		{"syn:pointer/small/banana", "bad seed"},
		{"syn:pointer/small/-3", "bad seed"},
		{"syn:phase//small/1", "empty phase family list"},
		{"syn:phase/narrow-quantum/small/1", "unknown family"},
		{"syn:phase/narrow-wide/jumbo/1", "unknown size class"},
		{"syn:phase/narrow-wide/small/banana", "bad seed"},
		{"syn:phase/narrow-wide-narrow-wide-narrow-wide-narrow-wide-narrow/small/1", "exceed"},
		{"syn:phase/narrow/small", "malformed"},
		{"syn:flip/0/small/1", "bad flip period"},
		{"syn:flip/banana/small/1", "bad flip period"},
		{"syn:flip/99999/small/1", "bad flip period"},
		{"syn:flip/4/jumbo/1", "unknown size class"},
		{"syn:flip/4/small/banana", "bad seed"},
	}
	for _, c := range cases {
		_, err := ByName(c.name)
		if err == nil {
			t.Errorf("ByName(%q) succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ByName(%q) error %q, want substring %q", c.name, err, c.wantSub)
		}
	}
}

// TestCuratedSynthetics: the curated set covers every family, resolves
// through the registry, and never collides with the kernel names.
func TestCuratedSynthetics(t *testing.T) {
	ws := CuratedSynthetics()
	if want := progen.NumFamilies * CuratedSeedsPerFamily; len(ws) != want {
		t.Fatalf("curated set has %d workloads, want %d", len(ws), want)
	}
	seen := map[string]bool{}
	for _, w := range All() {
		seen[w.Name] = true
	}
	families := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		r, err := ByName(w.Name)
		if err != nil {
			t.Errorf("curated %q does not resolve: %v", w.Name, err)
			continue
		}
		if r.Name != w.Name {
			t.Errorf("curated %q resolved to %q", w.Name, r.Name)
		}
		families[strings.Split(strings.TrimPrefix(w.Name, "syn:"), "/")[0]] = true
	}
	if len(families) != progen.NumFamilies {
		t.Errorf("curated set spans %d families, want %d", len(families), progen.NumFamilies)
	}
}
