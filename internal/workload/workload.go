// Package workload provides the eight SpecInt95-analog kernels the
// experiments run (§4.1 uses compress, gcc, go, ijpeg, li, m88ksim, perl
// and vortex with train inputs for profiling and reference inputs for
// evaluation). Each kernel is a complete OG64 program built with
// asm.Builder, designed to reproduce the data-width character of its
// namesake: byte-dominated compression and image kernels, branchy
// interpreters over narrow state, pointer-chasing list and database codes
// whose addresses are wide 5-byte values.
//
// The paper's actual SPEC binaries are unavailable (proprietary suite,
// Alpha compiler); these kernels are the synthetic equivalents mandated by
// the reproduction's substitution rule — what matters for the experiments
// is the mix of narrow and wide values and realistic control flow, not the
// specific algorithms.
package workload

import (
	"fmt"
	"strings"

	"opgate/internal/prog"
)

// InputClass selects the profiling (train) or evaluation (ref) input,
// mirroring the paper's methodology ("reference inputs (and train inputs
// to perform profiling)").
type InputClass int

// Input classes.
const (
	Train InputClass = iota
	Ref
)

// String names the input class.
func (c InputClass) String() string {
	if c == Train {
		return "train"
	}
	return "ref"
}

// Workload is one benchmark: a builder that bakes the selected input into
// the program's data segment.
type Workload struct {
	Name  string
	Build func(class InputClass) (*prog.Program, error)
}

// All returns the benchmark suite in the paper's order.
func All() []*Workload {
	return []*Workload{
		{Name: "compress", Build: BuildCompress},
		{Name: "gcc", Build: BuildGCC},
		{Name: "go", Build: BuildGo},
		{Name: "ijpeg", Build: BuildIJPEG},
		{Name: "li", Build: BuildLi},
		{Name: "m88ksim", Build: BuildM88ksim},
		{Name: "perl", Build: BuildPerl},
		{Name: "vortex", Build: BuildVortex},
	}
}

// ByName looks a workload up: one of the eight kernels by name, a
// generated workload by its "syn:..." registry name (single-family
// "syn:<family>/<class>/<seed>", phase-structured
// "syn:phase/<f1>-<f2>/<class>/<seed>", or width-flip
// "syn:flip/<period>/<class>/<seed>"), or an imported trace by its
// "trace:<name>" registry name.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	if IsSynthetic(name) {
		return parseSynthetic(name)
	}
	if IsTrace(name) {
		return parseTrace(name)
	}
	kernels := make([]string, 0, 8)
	for _, w := range All() {
		kernels = append(kernels, w.Name)
	}
	return nil, fmt.Errorf(
		"workload: unknown benchmark %q: valid names are the kernels (%s), %s... generated workloads (%sfamily/class/seed, %sphase/f1-f2/class/seed, %sflip/period/class/seed), and %s<name> imported traces",
		name, strings.Join(kernels, ", "), synPrefix, synPrefix, synPrefix, synPrefix, TracePrefix)
}

// rng is a deterministic xorshift generator for input synthesis.
type rng struct{ x uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{x: seed}
}

func (r *rng) next() uint64 {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	return r.x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// byten returns a byte in [0, n).
func (r *rng) byten(n int) byte { return byte(r.intn(n)) }
