package workload

import "opgate/internal/isa"

// Register shorthands for hand-written kernels. t1..t8 are caller-saved
// temporaries; s1..s7 are callee-saved and survive calls. The kernels keep
// the convention that callees touch only caller-saved registers, so the
// callee-saved set is trivially preserved (the assumption VRP's call
// transfer relies on).
const (
	t1 = isa.Reg(1)
	t2 = isa.Reg(2)
	t3 = isa.Reg(3)
	t4 = isa.Reg(4)
	t5 = isa.Reg(5)
	t6 = isa.Reg(6)
	t7 = isa.Reg(7)
	t8 = isa.Reg(8)
	s1 = isa.Reg(9)
	s2 = isa.Reg(10)
	s3 = isa.Reg(11)
	s4 = isa.Reg(12)
	s5 = isa.Reg(13)
	s6 = isa.Reg(14)
	s7 = isa.Reg(15)
	rz = isa.Reg(isa.ZeroReg)
)
