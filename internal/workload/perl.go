package workload

import (
	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// BuildPerl is the perl analog: string hashing into buckets plus string
// comparison. Characters are bytes, the rolling hash is masked to 20 bits
// (a useful anchor on a multiply-add chain), bucket counters are 64-bit
// words with small dynamic values, and the equality scan is a byte loop
// with data-dependent exit.
func BuildPerl(class InputClass) (*prog.Program, error) {
	nstr := 60
	slen := 24
	seed := uint64(777)
	if class == Ref {
		nstr = 150
		slen = 32
		seed = 1234
	}

	r := newRNG(seed)
	strs := make([]byte, nstr*slen)
	for i := 0; i < nstr; i++ {
		for j := 0; j < slen; j++ {
			strs[i*slen+j] = 'a' + r.byten(26)
		}
		// Make some adjacent strings equal so comparisons both exit
		// early and run to completion.
		if i > 0 && r.intn(5) == 0 {
			copy(strs[i*slen:(i+1)*slen], strs[(i-1)*slen:i*slen])
		}
	}

	b := asm.NewBuilder()
	b.Bytes("strs", strs)
	b.Space("buckets", 64*8)

	b.Func("main")
	b.LoadAddr(s1, "strs")
	b.LoadAddr(s2, "buckets")
	b.Lda(s3, rz, 0) // string index
	b.Lda(s6, rz, 0) // duplicate count
	b.Lda(s7, rz, 0) // final hash mix

	b.Label("strloop")
	b.OpI(isa.OpMUL, isa.W64, t1, s3, int64(slen))
	b.Op3(isa.OpADD, isa.W64, s4, s1, t1) // &strs[i]

	// hash = 5381; for c in s: hash = (hash*33 + c) & 0xFFFFF
	b.Lda(prog.RegArg0, s4, 0)
	b.Call("hash")
	b.Lda(s5, prog.RegRet, 0)

	// buckets[hash & 63]++ — a wide counter with tiny dynamic range.
	b.OpI(isa.OpAND, isa.W64, t2, s5, 63)
	b.OpI(isa.OpSLL, isa.W64, t2, t2, 3)
	b.Op3(isa.OpADD, isa.W64, t2, s2, t2)
	b.Load(isa.W64, t3, t2, 0)
	b.OpI(isa.OpADD, isa.W64, t3, t3, 1)
	b.Store(isa.W64, t3, t2, 0)

	// Mix the hash into the running output.
	b.Op3(isa.OpXOR, isa.W64, s7, s7, s5)
	b.OpI(isa.OpAND, isa.W64, s7, s7, 0xFFFFF)

	// Compare with the previous string (skip for the first).
	b.CondBranch(isa.OpBEQ, s3, "nextstr")
	b.Lda(prog.RegArg0, s4, 0)
	b.OpI(isa.OpSUB, isa.W64, prog.RegArg1, s4, int64(slen))
	b.Call("streq")
	b.Op3(isa.OpADD, isa.W64, s6, s6, prog.RegRet)

	b.Label("nextstr")
	b.OpI(isa.OpADD, isa.W64, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t1, s3, int64(nstr))
	b.CondBranch(isa.OpBNE, t1, "strloop")

	b.Out(isa.W32, s7)
	b.Out(isa.W16, s6)
	// Bucket checksum.
	b.Lda(s3, rz, 0)
	b.Lda(s5, rz, 0)
	b.Label("bsum")
	b.OpI(isa.OpSLL, isa.W64, t1, s3, 3)
	b.Op3(isa.OpADD, isa.W64, t1, s2, t1)
	b.Load(isa.W64, t2, t1, 0)
	b.OpI(isa.OpMUL, isa.W64, t3, t2, 7)
	b.Op3(isa.OpADD, isa.W64, s5, s5, t3)
	b.OpI(isa.OpAND, isa.W64, s5, s5, 0xFFFF)
	b.OpI(isa.OpADD, isa.W64, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t4, s3, 64)
	b.CondBranch(isa.OpBNE, t4, "bsum")
	b.Out(isa.W16, s5)
	b.Halt()

	// hash(a0 = string) -> rv: djb2 over slen bytes, masked to 20 bits.
	b.Func("hash")
	b.Lda(prog.RegRet, rz, 5381)
	b.Lda(t1, rz, 0)
	b.Label("h_loop")
	b.Op3(isa.OpADD, isa.W64, t2, prog.RegArg0, t1)
	b.Load(isa.W8, t3, t2, 0)
	b.OpI(isa.OpMUL, isa.W64, prog.RegRet, prog.RegRet, 33)
	b.Op3(isa.OpADD, isa.W64, prog.RegRet, prog.RegRet, t3)
	b.OpI(isa.OpAND, isa.W64, prog.RegRet, prog.RegRet, 0xFFFFF)
	b.OpI(isa.OpADD, isa.W64, t1, t1, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t4, t1, int64(slen))
	b.CondBranch(isa.OpBNE, t4, "h_loop")
	b.Ret()

	// streq(a0, a1) -> rv: 1 when the slen-byte strings match.
	b.Func("streq")
	b.Lda(t1, rz, 0)
	b.Label("e_loop")
	b.Op3(isa.OpADD, isa.W64, t2, prog.RegArg0, t1)
	b.Load(isa.W8, t3, t2, 0)
	b.Op3(isa.OpADD, isa.W64, t4, prog.RegArg1, t1)
	b.Load(isa.W8, t5, t4, 0)
	b.Op3(isa.OpXOR, isa.W64, t6, t3, t5)
	b.CondBranch(isa.OpBNE, t6, "e_ne")
	b.OpI(isa.OpADD, isa.W64, t1, t1, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t7, t1, int64(slen))
	b.CondBranch(isa.OpBNE, t7, "e_loop")
	b.Lda(prog.RegRet, rz, 1)
	b.Ret()
	b.Label("e_ne")
	b.Lda(prog.RegRet, rz, 0)
	b.Ret()

	return b.Build()
}
