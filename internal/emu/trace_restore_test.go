package emu_test

import (
	"reflect"
	"testing"

	"opgate/internal/emu"
)

// flatten drains a trace into one whole-trace RecBatch (the shape a codec
// hands to NewTraceFromRecords).
func flatten(tr *emu.Trace) emu.RecBatch {
	var flat emu.RecBatch
	tr.Records(emu.RecFunc(func(b emu.RecBatch) {
		flat.Idx = append(flat.Idx, b.Idx...)
		flat.Next = append(flat.Next, b.Next...)
		flat.Op = append(flat.Op, b.Op...)
		flat.WBytes = append(flat.WBytes, b.WBytes...)
		flat.Flags = append(flat.Flags, b.Flags...)
		flat.Addr = append(flat.Addr, b.Addr...)
		flat.Value = append(flat.Value, b.Value...)
		flat.SrcA = append(flat.SrcA, b.SrcA...)
		flat.SrcB = append(flat.SrcB, b.SrcB...)
	}))
	return flat
}

// TestRestoreRoundTrip: a trace rebuilt from its own flattened records
// replays the identical event stream and reports the identical shape.
func TestRestoreRoundTrip(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	tr, live := recordTrace(t, p)

	restored, err := emu.NewTraceFromRecords(p, flatten(tr))
	if err != nil {
		t.Fatalf("restore of a faithful flatten failed: %v", err)
	}
	if restored.Len() != tr.Len() || restored.Bytes() != tr.Bytes() || restored.Program() != p {
		t.Fatalf("restored shape drifted: len %d/%d bytes %d/%d",
			restored.Len(), tr.Len(), restored.Bytes(), tr.Bytes())
	}
	var replayed collector
	restored.Replay(&replayed)
	if !reflect.DeepEqual(replayed.events, live.events) {
		t.Fatal("restored trace replays a different stream than the live run")
	}
}

// TestRestoreRejectsInvalidRecords: every way a record can disagree with
// the program is an error, never a panic or a silently wrong trace.
func TestRestoreRejectsInvalidRecords(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	tr, _ := recordTrace(t, p)

	cases := map[string]func(b *emu.RecBatch){
		"ragged-columns":     func(b *emu.RecBatch) { b.Addr = b.Addr[:len(b.Addr)-1] },
		"idx-out-of-range":   func(b *emu.RecBatch) { b.Idx[0] = int32(len(p.Ins)) },
		"idx-negative":       func(b *emu.RecBatch) { b.Idx[0] = -1 },
		"next-out-of-range":  func(b *emu.RecBatch) { b.Next[0] = int32(len(p.Ins)) + 7 },
		"op-mismatch":        func(b *emu.RecBatch) { b.Op[0] ^= 0x7F },
		"width-mismatch":     func(b *emu.RecBatch) { b.WBytes[0] ^= 0x0F },
		"undefined-flag-bit": func(b *emu.RecBatch) { b.Flags[0] |= 0x80 },
		"writesdest-flipped": func(b *emu.RecBatch) { b.Flags[0] ^= emu.RecWritesDest },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			recs := flatten(tr)
			mutate(&recs)
			if _, err := emu.NewTraceFromRecords(p, recs); err == nil {
				t.Fatal("restore accepted records inconsistent with the program")
			}
		})
	}

	// And rebinding to a foreign program must fail even with well-formed
	// columns: the other program's metadata cannot match.
	other := assembleProg(t, `
.text
.func main
	ld.b r1, 0(r29)
	halt
`)
	if _, err := emu.NewTraceFromRecords(other, flatten(tr)); err == nil {
		t.Fatal("restore bound a trace to a program it was not captured from")
	}
}

// TestRestoreEmptyTrace: zero records restore to a zero-length trace.
func TestRestoreEmptyTrace(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	tr, err := emu.NewTraceFromRecords(p, emu.RecBatch{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Fatalf("empty restore has len %d bytes %d", tr.Len(), tr.Bytes())
	}
	tr.Replay(emu.FuncSink(func(emu.Event) { t.Fatal("empty trace replayed an event") }))
}
