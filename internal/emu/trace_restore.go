package emu

import (
	"fmt"

	"opgate/internal/prog"
)

// This file is the trace rehydration path: a packed trace that was
// serialized (internal/store's codec streams the RecBatch columns) is
// reassembled into a live *Trace bound to the program it was captured
// from. Restoration validates every record against the program — a trace
// is only ever an accelerator, so a malformed or mismatched byte stream
// must become an error, never a panic or a silently wrong replay.

// NewTraceFromRecords rebuilds a packed trace for p from whole-trace
// record columns (typically decoded from a persistent store). All columns
// of recs must share one length; every record is validated against p:
// static and next indices must be in range, and the folded-in opcode,
// width and writes-dest flag must match the program's own instruction
// metadata, so a trace cannot be rebound to a program it was not captured
// from. The columns are copied into chunk-sized storage, so the caller
// keeps ownership of recs.
func NewTraceFromRecords(p *prog.Program, recs RecBatch) (*Trace, error) {
	n := recs.Len()
	for _, l := range [...]int{
		len(recs.Next), len(recs.Op), len(recs.WBytes), len(recs.Flags),
		len(recs.Addr), len(recs.Value), len(recs.SrcA), len(recs.SrcB),
	} {
		if l != n {
			return nil, fmt.Errorf("emu: restore: ragged record columns (%d vs %d)", l, n)
		}
	}
	meta := metaOf(p)
	for i := 0; i < n; i++ {
		idx := recs.Idx[i]
		if idx < 0 || int(idx) >= len(p.Ins) {
			return nil, fmt.Errorf("emu: restore: record %d: static index %d outside program (%d instructions)",
				i, idx, len(p.Ins))
		}
		if next := recs.Next[i]; next < 0 || int(next) >= len(p.Ins) {
			return nil, fmt.Errorf("emu: restore: record %d: next index %d outside program", i, next)
		}
		m := meta[idx]
		if recs.Op[i] != m.op || recs.WBytes[i] != m.wbytes {
			return nil, fmt.Errorf("emu: restore: record %d: op/width %d/%d does not match program instruction %d (%d/%d)",
				i, recs.Op[i], recs.WBytes[i], idx, m.op, m.wbytes)
		}
		if fl := recs.Flags[i]; fl&^(RecTaken|RecWritesDest) != 0 || fl&RecWritesDest != m.flags {
			return nil, fmt.Errorf("emu: restore: record %d: flags %#x inconsistent with program instruction %d",
				i, fl, idx)
		}
	}

	// Repack into full-capacity chunks, mirroring TraceRecorder's storage
	// (and its byte accounting) so a restored trace is indistinguishable
	// from a freshly captured one.
	t := &Trace{p: p, events: int64(n)}
	for off := 0; off < n; off += TraceChunkEvents {
		end := off + TraceChunkEvents
		if end > n {
			end = n
		}
		chunk := newRecBatch(TraceChunkEvents)
		src := recs.slice(off, end)
		copy(chunk.Idx, src.Idx)
		copy(chunk.Next, src.Next)
		copy(chunk.Op, src.Op)
		copy(chunk.WBytes, src.WBytes)
		copy(chunk.Flags, src.Flags)
		copy(chunk.Addr, src.Addr)
		copy(chunk.Value, src.Value)
		copy(chunk.SrcA, src.SrcA)
		copy(chunk.SrcB, src.SrcB)
		t.chunks = append(t.chunks, chunk.slice(0, end-off))
		t.bytes += TraceChunkEvents * recBytes
	}
	return t, nil
}
