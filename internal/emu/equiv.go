package emu

import (
	"bytes"
	"fmt"

	"opgate/internal/prog"
)

// RunResult captures the observable outcome of a program execution.
type RunResult struct {
	Output []byte
	Dyn    int64
	Mem    []byte
}

// Execute runs a fresh machine over p and returns its observable result.
func Execute(p *prog.Program) (*RunResult, error) {
	m := New(p)
	if err := m.Run(); err != nil {
		return nil, err
	}
	return &RunResult{
		Output: append([]byte(nil), m.Output...),
		Dyn:    m.Dyn,
		Mem:    m.Mem,
	}, nil
}

// CheckEquivalence runs both programs and verifies that their observable
// behaviour matches: identical output streams and identical final data
// memory. VRP re-encodes opcodes and VRS clones guarded regions, so both
// must be perfectly behaviour-preserving (§2: "VRP is always done in a
// conservative manner ... ensuring the correctness of results").
func CheckEquivalence(original, transformed *prog.Program) error {
	r1, err := Execute(original)
	if err != nil {
		return fmt.Errorf("original program failed: %w", err)
	}
	r2, err := Execute(transformed)
	if err != nil {
		return fmt.Errorf("transformed program failed: %w", err)
	}
	if !bytes.Equal(r1.Output, r2.Output) {
		return fmt.Errorf("output mismatch: original %d bytes, transformed %d bytes (first diff at %d)",
			len(r1.Output), len(r2.Output), firstDiff(r1.Output, r2.Output))
	}
	if len(r1.Mem) != len(r2.Mem) || !bytes.Equal(r1.Mem, r2.Mem) {
		return fmt.Errorf("final memory mismatch at offset %d", firstDiff(r1.Mem, r2.Mem))
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
