package emu_test

import (
	"errors"
	"reflect"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/workload"
)

// recordTrace runs p once with a TraceRecorder attached and returns the
// capture alongside the live stream a plain collector saw.
func recordTrace(t *testing.T, p *prog.Program) (*emu.Trace, *collector) {
	t.Helper()
	var live collector
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = emu.Tee(rec, &live)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr, &live
}

// TestTraceReplayMatchesLive is the trace layer's tentpole invariant: the
// replayed stream must be byte-for-byte the live retirement stream — every
// Event field identical, and the same batching shape.
func TestTraceReplayMatchesLive(t *testing.T) {
	programs := map[string]func(t *testing.T) *prog.Program{
		"branchy": func(t *testing.T) *prog.Program { return assembleProg(t, branchyProgram) },
		"compress": func(t *testing.T) *prog.Program {
			w, err := workload.ByName("compress")
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Build(workload.Train)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, build := range programs {
		t.Run(name, func(t *testing.T) {
			p := build(t)
			tr, live := recordTrace(t, p)

			if tr.Len() != int64(len(live.events)) {
				t.Fatalf("trace recorded %d events, live run delivered %d", tr.Len(), len(live.events))
			}
			var replayed collector
			tr.Replay(&replayed)
			if len(replayed.events) != len(live.events) {
				t.Fatalf("replay delivered %d events, live %d", len(replayed.events), len(live.events))
			}
			for i := range live.events {
				if !reflect.DeepEqual(replayed.events[i], live.events[i]) {
					t.Fatalf("event %d differs:\nreplay: %+v\nlive:   %+v",
						i, replayed.events[i], live.events[i])
				}
			}
			if !reflect.DeepEqual(replayed.batches, live.batches) {
				t.Fatalf("replay batch shape %v differs from live %v", replayed.batches, live.batches)
			}
			// A second replay must deliver the same stream again (the
			// trace is immutable).
			var again collector
			tr.Replay(&again)
			if !reflect.DeepEqual(again.events, replayed.events) {
				t.Fatal("second replay differs from first")
			}
		})
	}
}

// recCollector copies packed record columns out of the (reused) batches.
type recCollector struct {
	idx           []int32
	op, wb, flags []uint8
	value         []int64
}

func (c *recCollector) ConsumeRecs(b emu.RecBatch) {
	c.idx = append(c.idx, b.Idx...)
	c.op = append(c.op, b.Op...)
	c.wb = append(c.wb, b.WBytes...)
	c.flags = append(c.flags, b.Flags...)
	c.value = append(c.value, b.Value...)
}

// TestRecordsCarryOpWidthAndFlags: the packed record's folded-in columns
// must agree with the instruction each event retired — replay consumers
// never need to chase Event.Ins to learn op, width, or destination-write.
func TestRecordsCarryOpWidthAndFlags(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	tr, live := recordTrace(t, p)

	var recs recCollector
	tr.Records(&recs)
	if len(recs.idx) != len(live.events) {
		t.Fatalf("records delivered %d entries, live %d", len(recs.idx), len(live.events))
	}
	for i, ev := range live.events {
		if int(recs.idx[i]) != ev.Idx {
			t.Fatalf("record %d idx %d != event idx %d", i, recs.idx[i], ev.Idx)
		}
		if recs.op[i] != uint8(ev.Ins.Op) || recs.wb[i] != uint8(ev.Ins.Width) {
			t.Fatalf("record %d op/width (%d,%d) != instruction (%v,%v)",
				i, recs.op[i], recs.wb[i], ev.Ins.Op, ev.Ins.Width)
		}
		if taken := recs.flags[i]&emu.RecTaken != 0; taken != ev.Taken {
			t.Fatalf("record %d taken %v != event %v", i, taken, ev.Taken)
		}
		_, writes := ev.Ins.Dest()
		if got := recs.flags[i]&emu.RecWritesDest != 0; got != writes {
			t.Fatalf("record %d writes-dest %v != instruction %v", i, got, writes)
		}
		if recs.value[i] != ev.Value {
			t.Fatalf("record %d value %d != event %d", i, recs.value[i], ev.Value)
		}
	}
}

// TestPackerMatchesTraceRecords: packing a live stream on the fly must
// yield the same record columns as capturing a trace and reading it back.
func TestPackerMatchesTraceRecords(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	tr, _ := recordTrace(t, p)
	var fromTrace recCollector
	tr.Records(&fromTrace)

	var livePacked recCollector
	m := emu.New(p)
	m.Sink = emu.NewPacker(p, &livePacked)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(livePacked, fromTrace) {
		t.Fatal("live-packed record stream differs from trace records")
	}
}

// TestTraceBudgetOverflow: a capture that would exceed its byte budget is
// abandoned — memory is released, Trace() reports the overflow, and the
// recorder stays a valid (inert) sink.
func TestTraceBudgetOverflow(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	rec := emu.NewTraceRecorder(p)
	rec.SetBudget(1) // below one chunk: overflows on the first event
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Trace(); !errors.Is(err, emu.ErrTraceBudget) {
		t.Fatalf("over-budget capture: err = %v, want ErrTraceBudget", err)
	}
}

// TestProfilerRecordsMatchAttach: feeding the profiler from packed trace
// records must produce the identical value tables as the legacy per-event
// Attach path over a live run.
func TestProfilerRecordsMatchAttach(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	points := []int{2, 3, 5} // store, load, add inside the loop

	tr, _ := recordTrace(t, p)
	fromRecs := emu.NewProfiler(points)
	tr.Records(fromRecs)

	fromAttach := emu.NewProfiler(points)
	m := emu.New(p)
	fromAttach.Attach(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, idx := range points {
		a, b := fromRecs.Points[idx], fromAttach.Points[idx]
		if a.Total != b.Total {
			t.Fatalf("point %d totals differ: %d vs %d", idx, a.Total, b.Total)
		}
		if !reflect.DeepEqual(a.Entries(), b.Entries()) {
			t.Fatalf("point %d entries differ: %v vs %v", idx, a.Entries(), b.Entries())
		}
	}
}
