package emu

import (
	"fmt"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// This file is the trace-ingestion half of the restore path: where
// trace_restore.go rebinds records to the program they were captured
// from, this file synthesizes that program when only the trace exists —
// an externally captured retirement stream carries its per-static table
// (opcode, operand width, writes-dest) inline in every record, which is
// exactly the metadata metaOf derives from a real binary. A skeleton
// built from that table validates and replays the trace bit-for-bit
// through every record consumer (width histograms, the power model's
// significance scans, the timing model's replay path), so arbitrary
// real binaries become first-class workloads without an emulator for
// their ISA. A skeleton cannot be emulated — its operand registers are
// all the zero register and its data segment is empty — so callers must
// keep it on the replay-only path.

// MaxSkeletonIns bounds the static table a trace may declare: record
// indices address instructions, so a single hostile record could
// otherwise demand a multi-gigabyte instruction image. 1<<20 static
// instructions is two orders of magnitude above the largest generated
// program.
const MaxSkeletonIns = 1 << 20

// NewProgramFromTrace synthesizes a skeleton program from the per-static
// table folded into whole-trace record columns. Every record's (op,
// width, writes-dest) triple is validated — opcodes must be defined,
// widths must be operand widths (or zero for width-less control flow),
// flag bits must be known, and all records of one static index must
// agree — so the result is the unique program metadata the trace was
// captured against. The skeleton round-trips: NewTraceFromRecords
// accepts the same records against it, and store.ProgramIdentity of the
// skeleton is a deterministic hash of the static table alone.
func NewProgramFromTrace(recs RecBatch) (*prog.Program, error) {
	n := recs.Len()
	for _, l := range [...]int{
		len(recs.Next), len(recs.Op), len(recs.WBytes), len(recs.Flags),
		len(recs.Addr), len(recs.Value), len(recs.SrcA), len(recs.SrcB),
	} {
		if l != n {
			return nil, fmt.Errorf("emu: ingest: ragged record columns (%d vs %d)", l, n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("emu: ingest: empty trace has no static table")
	}

	// Accumulate the per-static table, rejecting the first inconsistency.
	type static struct {
		seen   bool
		op     uint8
		wbytes uint8
		writes bool
	}
	var table []static
	size := 0
	for i := 0; i < n; i++ {
		idx, next := recs.Idx[i], recs.Next[i]
		if idx < 0 || idx >= MaxSkeletonIns {
			return nil, fmt.Errorf("emu: ingest: record %d: static index %d out of range", i, idx)
		}
		if next < 0 || next >= MaxSkeletonIns {
			return nil, fmt.Errorf("emu: ingest: record %d: next index %d out of range", i, next)
		}
		op := isa.Op(recs.Op[i])
		if op == isa.OpInvalid || int(op) >= isa.NumOps {
			return nil, fmt.Errorf("emu: ingest: record %d: undefined opcode %d", i, recs.Op[i])
		}
		switch recs.WBytes[i] {
		case 0, 1, 2, 4, 8:
		default:
			return nil, fmt.Errorf("emu: ingest: record %d: impossible operand width %d bytes", i, recs.WBytes[i])
		}
		fl := recs.Flags[i]
		if fl&^(RecTaken|RecWritesDest) != 0 {
			return nil, fmt.Errorf("emu: ingest: record %d: unknown flag bits %#x", i, fl)
		}
		writes := fl&RecWritesDest != 0
		if writes && !isa.HasDest(op) {
			return nil, fmt.Errorf("emu: ingest: record %d: opcode %v cannot write a destination", i, op)
		}
		if int(idx) >= len(table) {
			grown := make([]static, idx+1)
			copy(grown, table)
			table = grown
		}
		st := &table[idx]
		if st.seen {
			if st.op != recs.Op[i] || st.wbytes != recs.WBytes[i] || st.writes != writes {
				return nil, fmt.Errorf("emu: ingest: record %d: static index %d conflicts with an earlier record (op/width/dest %d/%d/%v vs %d/%d/%v)",
					i, idx, recs.Op[i], recs.WBytes[i], writes, st.op, st.wbytes, st.writes)
			}
		} else {
			*st = static{seen: true, op: recs.Op[i], wbytes: recs.WBytes[i], writes: writes}
		}
		if int(idx) >= size {
			size = int(idx) + 1
		}
		if int(next) >= size {
			size = int(next) + 1
		}
	}

	// Materialise the skeleton: operand registers are the zero register
	// (replay never evaluates them; the timing model skips rz in its
	// dependence tracking), the destination is r1 exactly when the trace
	// says the instruction writes one, and never-retired gaps stay
	// OpInvalid. The image is a pure function of the static table, so
	// ProgramIdentity(skeleton) is the table's content hash.
	ins := make([]isa.Instruction, size)
	for idx := range table {
		st := &table[idx]
		if !st.seen {
			continue
		}
		rd := isa.Reg(isa.ZeroReg)
		if st.writes {
			rd = isa.Reg(1)
		}
		ins[idx] = isa.Instruction{
			Op:    isa.Op(st.op),
			Width: isa.Width(st.wbytes),
			Rd:    rd,
			Ra:    isa.Reg(isa.ZeroReg),
			Rb:    isa.Reg(isa.ZeroReg),
		}
	}
	return &prog.Program{
		Ins:   ins,
		Funcs: []*prog.Func{{Name: "main", Index: 0, Start: 0, End: size}},
		Entry: 0,
	}, nil
}
