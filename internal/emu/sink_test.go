package emu_test

import (
	"reflect"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/workload"
)

// collector retains a copy of every event it consumes, plus the batch
// sizes it saw (the batch slice itself is machine-owned and reused).
type collector struct {
	events  []emu.Event
	batches []int
}

func (c *collector) Consume(batch []emu.Event) {
	c.events = append(c.events, batch...)
	c.batches = append(c.batches, len(batch))
}

// branchyProgram exercises every event field: memory traffic, taken and
// not-taken branches, calls, and output.
const branchyProgram = `
.data
buf: .space 64
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	st.w r2, 0(r1)
	ld.w r3, 0(r1)
	jsr bump
	add r2, r2, #1
	cmplt r4, r2, #10
	bne r4, loop
	out.b r2
	halt
.func bump
	add r5, r5, #2
	ret
`

// TestBatchedRunMatchesStepStream is the tentpole equivalence check: the
// batched Run dispatch loop must deliver byte-for-byte the same event
// stream as executing the same program one Step at a time (each Step
// flushes its event immediately, which is the legacy per-event shape).
func TestBatchedRunMatchesStepStream(t *testing.T) {
	programs := map[string]func(t *testing.T) *prog.Program{
		"branchy": func(t *testing.T) *prog.Program { return assembleProg(t, branchyProgram) },
		"compress": func(t *testing.T) *prog.Program {
			w, err := workload.ByName("compress")
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Build(workload.Train)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, build := range programs {
		t.Run(name, func(t *testing.T) {
			p := build(t)

			var batched collector
			mb := emu.New(p)
			mb.Sink = &batched
			if err := mb.Run(); err != nil {
				t.Fatal(err)
			}

			var stepped collector
			ms := emu.New(p)
			ms.Sink = &stepped
			for !ms.Halted {
				if err := ms.Step(); err != nil {
					t.Fatal(err)
				}
			}

			if len(batched.events) != len(stepped.events) {
				t.Fatalf("batched run delivered %d events, stepped run %d",
					len(batched.events), len(stepped.events))
			}
			for i := range batched.events {
				if !reflect.DeepEqual(batched.events[i], stepped.events[i]) {
					t.Fatalf("event %d differs:\nbatched: %+v\nstepped: %+v",
						i, batched.events[i], stepped.events[i])
				}
			}
			// Every stepped batch is a single event; the batched run must
			// have actually used multi-event batches.
			for _, n := range stepped.batches {
				if n != 1 {
					t.Fatalf("Step delivered a batch of %d events, want 1", n)
				}
			}
			if len(batched.events) > 1 {
				max := 0
				for _, n := range batched.batches {
					if n > max {
						max = n
					}
				}
				if max < 2 {
					t.Fatalf("Run delivered %d events but no batch larger than %d — batching is not happening",
						len(batched.events), max)
				}
			}
			if mb.Dyn != ms.Dyn || !reflect.DeepEqual(mb.Regs, ms.Regs) {
				t.Fatalf("architectural state diverged: dyn %d vs %d", mb.Dyn, ms.Dyn)
			}
		})
	}
}

// TestFuncSinkMatchesBatchOrder: the per-event adapter sees the identical
// stream in the identical order as a batch consumer.
func TestFuncSinkMatchesBatchOrder(t *testing.T) {
	p := assembleProg(t, branchyProgram)

	var batched collector
	mb := emu.New(p)
	mb.Sink = &batched
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}

	var viaFunc []emu.Event
	mf := emu.New(p)
	mf.Sink = emu.FuncSink(func(ev emu.Event) { viaFunc = append(viaFunc, ev) })
	if err := mf.Run(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(batched.events, viaFunc) {
		t.Fatalf("FuncSink stream differs from batch stream (%d vs %d events)",
			len(batched.events), len(viaFunc))
	}
}

// TestResetReusesMemoryImage: after a run dirtied memory, Reset must
// restore the exact initial image (the dirty-page tracking must not leave
// stale bytes behind).
func TestResetReusesMemoryImage(t *testing.T) {
	p := assembleProg(t, branchyProgram)
	m := emu.New(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), m.Output...)

	m.Reset()
	fresh := emu.New(p)
	if !reflect.DeepEqual(m.Mem, fresh.Mem) {
		t.Fatal("Reset left stale memory compared to a fresh machine")
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Output, first) {
		t.Fatalf("second run output %x differs from first %x", m.Output, first)
	}
}

func assembleProg(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
