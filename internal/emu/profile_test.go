package emu_test

import (
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
)

func TestTNVSingleDominantValue(t *testing.T) {
	tbl := emu.NewTNVTable(8, 64)
	for i := 0; i < 1000; i++ {
		tbl.Record(7)
	}
	for i := 0; i < 10; i++ {
		tbl.Record(int64(i * 1000))
	}
	min, max, freq, ok := tbl.CoverageRange(0.9)
	if !ok {
		t.Fatal("no coverage")
	}
	if min != 7 || max != 7 {
		t.Errorf("range [%d,%d], want [7,7]", min, max)
	}
	if freq < 0.9 {
		t.Errorf("freq = %v", freq)
	}
}

func TestTNVDiffuseCounter(t *testing.T) {
	// A counter 0..999: no single value dominates, but the width buckets
	// cover it exactly with 2 bytes.
	tbl := emu.NewTNVTable(8, 64)
	for i := 0; i < 1000; i++ {
		tbl.Record(int64(i))
	}
	min, max, freq, ok := tbl.CoverageRange(0.95)
	if !ok {
		t.Fatal("no coverage")
	}
	if min != 0 || max != 999 {
		t.Errorf("range [%d,%d], want [0,999]", min, max)
	}
	if freq != 1.0 {
		t.Errorf("freq = %v, want 1.0 (width buckets are exact)", freq)
	}
}

func TestTNVEviction(t *testing.T) {
	// More distinct values than capacity: the table keeps counting
	// totals and survives cleaning.
	tbl := emu.NewTNVTable(4, 16)
	for i := 0; i < 1000; i++ {
		tbl.Record(int64(i % 100))
	}
	if tbl.Total != 1000 {
		t.Errorf("Total = %d", tbl.Total)
	}
	if len(tbl.Entries()) > 4 {
		t.Errorf("table holds %d entries, capacity 4", len(tbl.Entries()))
	}
}

func TestProfilerAttach(t *testing.T) {
	p, err := asm.Assemble(`
.func main
	lda r1, 0(rz)
loop:
	mul r2, r1, #3
	add r1, r1, #1
	cmplt r3, r1, #100
	bne r3, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	mulIdx := 1
	prof := emu.NewProfiler([]int{mulIdx})
	m := emu.New(p)
	prof.Attach(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tbl := prof.Points[mulIdx]
	if tbl.Total != 100 {
		t.Fatalf("profiled %d events, want 100", tbl.Total)
	}
	min, max, _, ok := tbl.CoverageRange(0.99)
	if !ok || min != 0 || max != 297 {
		t.Errorf("profiled range [%d,%d], want [0,297]", min, max)
	}
}
