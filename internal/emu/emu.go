// Package emu executes OG64 programs functionally. It is the architectural
// reference model: the binary optimizer's equivalence checks, the value and
// basic-block profilers, and the trace-driven timing model (internal/uarch)
// all consume its retirement stream.
package emu

import (
	"fmt"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// DefaultFuel bounds execution length; workloads finish well below it.
const DefaultFuel = 200_000_000

// Event describes one retired instruction for trace consumers.
type Event struct {
	Idx   int              // static instruction index
	Ins   *isa.Instruction // the instruction (points into the program)
	Next  int              // index of the next instruction to execute
	Taken bool             // branch outcome (conditional branches)
	Addr  int64            // effective address (loads/stores)
	Value int64            // result value (dest write, store data, or out)
	SrcA  int64            // value of first source operand
	SrcB  int64            // value of second source operand / store data
}

// Machine is one execution context over a program.
type Machine struct {
	P      *prog.Program
	Regs   [isa.NumRegs]int64
	Mem    []byte
	PC     int
	Halted bool
	Output []byte

	// Fuel is the remaining dynamic instruction budget.
	Fuel int64
	// Dyn is the number of retired instructions.
	Dyn int64
	// InsCount[i] counts executions of static instruction i (the paper's
	// InstCount(D)). Allocated lazily by EnableCounts.
	InsCount []int64

	// Trace receives every retired instruction when non-nil.
	Trace func(Event)
}

// New creates a machine with the program's initial memory image.
func New(p *prog.Program) *Machine {
	m := &Machine{P: p, Fuel: DefaultFuel}
	m.Reset()
	return m
}

// Reset restores the initial architectural state. Data memory is a flat
// array backing the virtual range [DataBase, DataBase+MemSize); keeping the
// base above 2^32 makes addresses realistic 5-byte values (Fig. 12) while
// the array stays small. The global pointer is pinned to DataBase and the
// stack pointer starts at the top of memory.
func (m *Machine) Reset() {
	m.Mem = make([]byte, m.P.MemSize)
	copy(m.Mem, m.P.Data)
	m.Regs = [isa.NumRegs]int64{}
	m.Regs[prog.RegGP] = m.P.DataBase
	m.Regs[prog.RegSP] = m.P.DataBase + m.P.MemSize
	entry := m.P.Funcs[m.P.Entry]
	m.PC = entry.Start
	m.Halted = false
	m.Output = m.Output[:0]
	m.Dyn = 0
	if m.InsCount != nil {
		m.InsCount = make([]int64, len(m.P.Ins))
	}
}

// EnableCounts switches on per-static-instruction execution counting.
func (m *Machine) EnableCounts() { m.InsCount = make([]int64, len(m.P.Ins)) }

// Run executes until HALT, RET from the entry function, or fuel
// exhaustion; it returns an error on traps (bad memory, bad PC, fuel).
func (m *Machine) Run() error {
	for !m.Halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

func signExtend(v int64, w isa.Width) int64 {
	shift := uint(64 - w.Bits())
	return v << shift >> shift
}

func zeroExtend(v int64, w isa.Width) int64 {
	if w == isa.W64 {
		return v
	}
	mask := int64(1)<<uint(w.Bits()) - 1
	return v & mask
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	if m.Fuel <= 0 {
		return fmt.Errorf("emu: out of fuel at pc %d (infinite loop?)", m.PC)
	}
	m.Fuel--
	if m.PC < 0 || m.PC >= len(m.P.Ins) {
		return fmt.Errorf("emu: pc %d outside program", m.PC)
	}
	idx := m.PC
	in := &m.P.Ins[idx]
	m.Dyn++
	if m.InsCount != nil {
		m.InsCount[idx]++
	}

	ev := Event{Idx: idx, Ins: in, Next: idx + 1}
	ra := m.Regs[in.Ra]
	rb := in.Imm
	if !in.HasImm {
		rb = m.Regs[in.Rb]
	}
	ev.SrcA, ev.SrcB = ra, rb

	write := func(v int64) {
		ev.Value = v
		if in.Rd != isa.ZeroReg {
			m.Regs[in.Rd] = v
		}
	}

	switch in.Op {
	case isa.OpLDA:
		// LDA carries a width like the other add-class ops, so that an
		// unsoundly narrowed constant/address materialisation is
		// observable in equivalence tests.
		write(signExtend(ra+in.Imm, in.Width))

	case isa.OpLD:
		addr := ra + in.Imm
		v, err := m.load(addr, in.Width)
		if err != nil {
			return fmt.Errorf("emu: pc %d: %w", idx, err)
		}
		ev.Addr = addr
		write(v)

	case isa.OpST:
		addr := ra + in.Imm
		data := m.Regs[in.Rb]
		if err := m.store(addr, data, in.Width); err != nil {
			return fmt.Errorf("emu: pc %d: %w", idx, err)
		}
		ev.Addr = addr
		ev.Value = zeroExtend(data, in.Width)
		ev.SrcB = data

	case isa.OpADD:
		write(signExtend(ra+rb, in.Width))
	case isa.OpSUB:
		write(signExtend(ra-rb, in.Width))
	case isa.OpMUL:
		write(signExtend(ra*rb, in.Width))
	case isa.OpAND:
		write(signExtend(ra&rb, in.Width))
	case isa.OpOR:
		write(signExtend(ra|rb, in.Width))
	case isa.OpXOR:
		write(signExtend(ra^rb, in.Width))
	case isa.OpBIC:
		write(signExtend(ra&^rb, in.Width))
	case isa.OpSLL:
		write(signExtend(ra<<uint(rb&63), in.Width))
	case isa.OpSRL:
		write(signExtend(int64(uint64(ra)>>uint(rb&63)), in.Width))
	case isa.OpSRA:
		write(signExtend(ra>>uint(rb&63), in.Width))

	case isa.OpMSKL:
		write(zeroExtend(ra, in.Width))
	case isa.OpEXTB:
		write((ra >> uint(8*(rb&7))) & 0xFF)
	case isa.OpSEXT:
		write(signExtend(ra, in.Width))

	case isa.OpCMPEQ:
		write(b2i(cmpOperand(ra, in.Width) == cmpOperand(rb, in.Width)))
	case isa.OpCMPLT:
		write(b2i(cmpOperand(ra, in.Width) < cmpOperand(rb, in.Width)))
	case isa.OpCMPLE:
		write(b2i(cmpOperand(ra, in.Width) <= cmpOperand(rb, in.Width)))
	case isa.OpCMPULT:
		write(b2i(uint64(cmpOperand(ra, in.Width)) < uint64(cmpOperand(rb, in.Width))))
	case isa.OpCMPULE:
		write(b2i(uint64(cmpOperand(ra, in.Width)) <= uint64(cmpOperand(rb, in.Width))))

	case isa.OpCMOVEQ, isa.OpCMOVNE, isa.OpCMOVLT, isa.OpCMOVGE:
		cond := false
		switch in.Op {
		case isa.OpCMOVEQ:
			cond = ra == 0
		case isa.OpCMOVNE:
			cond = ra != 0
		case isa.OpCMOVLT:
			cond = ra < 0
		case isa.OpCMOVGE:
			cond = ra >= 0
		}
		if cond {
			write(signExtend(rb, in.Width))
		} else {
			ev.Value = m.Regs[in.Rd]
		}

	case isa.OpBR:
		ev.Next = in.Target
		ev.Taken = true
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBGT, isa.OpBLE:
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = ra == 0
		case isa.OpBNE:
			taken = ra != 0
		case isa.OpBLT:
			taken = ra < 0
		case isa.OpBGE:
			taken = ra >= 0
		case isa.OpBGT:
			taken = ra > 0
		case isa.OpBLE:
			taken = ra <= 0
		}
		if taken {
			ev.Next = in.Target
		}
		ev.Taken = taken
	case isa.OpJSR:
		write(int64(idx + 1))
		ev.Next = in.Target
		ev.Taken = true
	case isa.OpRET:
		ev.Next = int(ra)
		ev.Taken = true
	case isa.OpHALT:
		m.Halted = true
		ev.Next = idx
	case isa.OpOUT:
		v := zeroExtend(ra, in.Width)
		for i := 0; i < in.Width.Bytes(); i++ {
			m.Output = append(m.Output, byte(uint64(v)>>(8*uint(i))))
		}
		ev.Value = v

	default:
		return fmt.Errorf("emu: pc %d: unimplemented opcode %v", idx, in.Op)
	}

	if m.Trace != nil {
		m.Trace(ev)
	}
	m.PC = ev.Next
	return nil
}

// cmpOperand narrows a comparison operand to the opcode width. VRP only
// assigns a narrow compare when both operand ranges fit the width, so
// narrowing is semantics-preserving for analysed programs while making
// unsound width assignments observable in tests.
func cmpOperand(v int64, w isa.Width) int64 { return signExtend(v, w) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) load(addr int64, w isa.Width) (int64, error) {
	n := int64(w.Bytes())
	off := addr - m.P.DataBase
	if off < 0 || off+n > int64(len(m.Mem)) {
		return 0, fmt.Errorf("load of %d bytes at %#x out of bounds", n, addr)
	}
	var v uint64
	for i := int64(0); i < n; i++ {
		v |= uint64(m.Mem[off+i]) << (8 * uint(i))
	}
	switch w {
	case isa.W8, isa.W16:
		return int64(v), nil // zero-extended, like Alpha LDBU/LDWU
	case isa.W32:
		return int64(int32(uint32(v))), nil // sign-extended, like Alpha LDL
	default:
		return int64(v), nil
	}
}

func (m *Machine) store(addr, v int64, w isa.Width) error {
	n := int64(w.Bytes())
	off := addr - m.P.DataBase
	if off < 0 || off+n > int64(len(m.Mem)) {
		return fmt.Errorf("store of %d bytes at %#x out of bounds", n, addr)
	}
	for i := int64(0); i < n; i++ {
		m.Mem[off+i] = byte(uint64(v) >> (8 * uint(i)))
	}
	return nil
}

// LoadBytes copies out a memory region by virtual address (for tests and
// result checking).
func (m *Machine) LoadBytes(addr, n int64) ([]byte, error) {
	off := addr - m.P.DataBase
	if off < 0 || off+n > int64(len(m.Mem)) {
		return nil, fmt.Errorf("emu: read of %d bytes at %#x out of bounds", n, addr)
	}
	out := make([]byte, n)
	copy(out, m.Mem[off:off+n])
	return out, nil
}

// StoreBytes pokes a memory region by virtual address before a run
// (workload inputs).
func (m *Machine) StoreBytes(addr int64, data []byte) error {
	off := addr - m.P.DataBase
	if off < 0 || off+int64(len(data)) > int64(len(m.Mem)) {
		return fmt.Errorf("emu: write of %d bytes at %#x out of bounds", len(data), addr)
	}
	copy(m.Mem[off:], data)
	return nil
}
