// Package emu executes OG64 programs functionally. It is the architectural
// reference model: the binary optimizer's equivalence checks, the value and
// basic-block profilers, and the trace-driven timing model (internal/uarch)
// all consume its retirement stream.
//
// The retirement stream is delivered in batches: attach a Sink to a Machine
// and Consume is called with slices of Events drawn from a reusable buffer
// owned by the machine. Per-event callbacks remain one-liners via the
// FuncSink adapter. Run executes a tight dispatch loop over a predecoded
// form of the program; Step is a thin single-instruction wrapper for
// debuggers and tests (it flushes its event immediately).
package emu

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

// DefaultFuel bounds execution length; workloads finish well below it.
const DefaultFuel = 200_000_000

// BatchSize is the capacity of the machine-owned event buffer: sinks see
// batches of at most this many events.
const BatchSize = 4096

// Event describes one retired instruction for trace consumers.
type Event struct {
	Idx   int              // static instruction index
	Ins   *isa.Instruction // the instruction (points into the program)
	Next  int              // index of the next instruction to execute
	Taken bool             // branch outcome (conditional branches)
	Addr  int64            // effective address (loads/stores)
	Value int64            // result value (dest write, store data, or out)
	SrcA  int64            // value of first source operand
	SrcB  int64            // value of second source operand / store data
}

// Sink receives the retirement stream in batches. The batch slice is owned
// by the machine and reused: consumers must not retain it past the call
// (copy events out if they need to).
type Sink interface {
	Consume(batch []Event)
}

// FuncSink adapts a per-event function to the batched Sink interface, so
// one-off consumers stay one-liners: m.Sink = emu.FuncSink(func(ev emu.Event) {...}).
type FuncSink func(Event)

// Consume delivers each event of the batch to the wrapped function in
// retirement order.
func (f FuncSink) Consume(batch []Event) {
	for i := range batch {
		f(batch[i])
	}
}

// decIns is the predecoded form of one static instruction: operand
// registers, the immediate flag, and width-derived constants are resolved
// once so the dispatch loop does no per-event re-derivation.
type decIns struct {
	ins    *isa.Instruction // original instruction, for events
	imm    int64            // immediate operand / memory offset
	zmask  int64            // zero-extension mask for the opcode width (-1 for W64)
	target int32            // branch/call target
	op     isa.Op
	rd     uint8
	ra     uint8
	rb     uint8
	shift  uint8 // 64 - width bits: sign-extension shift for the opcode width
	wbytes uint8 // width in bytes
	hasImm bool
}

// Machine is one execution context over a program.
type Machine struct {
	P      *prog.Program
	Regs   [isa.NumRegs]int64
	Mem    []byte
	PC     int
	Halted bool
	Output []byte

	// Fuel is the remaining dynamic instruction budget.
	Fuel int64
	// Dyn is the number of retired instructions.
	Dyn int64
	// InsCount[i] counts executions of static instruction i (the paper's
	// InstCount(D)). Allocated lazily by EnableCounts.
	InsCount []int64

	// Sink receives every retired instruction, in batches, when non-nil.
	Sink Sink

	dec    []decIns      // predecoded program, built lazily on first run
	decSrc *prog.Program // program the predecode was built from
	buf    []Event       // reusable batch buffer handed to Sink
	dirty  []uint64      // bitmap of written memory pages, so Reset zeroes only touched pages
}

// pageShift/pageBytes size the dirty-page granularity: workload memory
// images are large (the data base sits above 2^32 and the stack at the
// top of an 8MB arena) but runs touch only a few pages, so Reset clears
// the written pages instead of the whole image. All mutation goes through
// the machine (executed stores, StoreBytes, Reset); writing Mem directly
// would bypass the tracking.
const (
	pageShift = 12
	pageBytes = 1 << pageShift
)

// markDirty records that [off, off+n) was written.
func markDirty(dirty []uint64, off, n int64) {
	p0 := uint64(off) >> pageShift
	p1 := uint64(off+n-1) >> pageShift
	for p := p0; p <= p1; p++ {
		dirty[p>>6] |= 1 << (p & 63)
	}
}

// New creates a machine with the program's initial memory image.
func New(p *prog.Program) *Machine {
	m := &Machine{P: p, Fuel: DefaultFuel}
	m.Reset()
	return m
}

// Reset restores the initial architectural state. Data memory is a flat
// array backing the virtual range [DataBase, DataBase+MemSize); keeping the
// base above 2^32 makes addresses realistic 5-byte values (Fig. 12) while
// the array stays small. The global pointer is pinned to DataBase and the
// stack pointer starts at the top of memory.
func (m *Machine) Reset() {
	if int64(len(m.Mem)) != m.P.MemSize {
		m.Mem = make([]byte, m.P.MemSize)
		pages := (len(m.Mem) + pageBytes - 1) / pageBytes
		m.dirty = make([]uint64, (pages+63)/64)
	} else {
		// Zero only the pages written since the last reset.
		mem := m.Mem
		for wi, w := range m.dirty {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << uint(b)
				start := (wi*64 + b) << pageShift
				end := start + pageBytes
				if end > len(mem) {
					end = len(mem)
				}
				clear(mem[start:end])
			}
			m.dirty[wi] = 0
		}
	}
	copy(m.Mem, m.P.Data)
	if len(m.P.Data) > 0 {
		markDirty(m.dirty, 0, int64(len(m.P.Data)))
	}
	m.Regs = [isa.NumRegs]int64{}
	m.Regs[prog.RegGP] = m.P.DataBase
	m.Regs[prog.RegSP] = m.P.DataBase + m.P.MemSize
	entry := m.P.Funcs[m.P.Entry]
	m.PC = entry.Start
	m.Halted = false
	m.Output = m.Output[:0]
	m.Dyn = 0
	if m.InsCount != nil {
		m.InsCount = make([]int64, len(m.P.Ins))
	}
}

// EnableCounts switches on per-static-instruction execution counting.
func (m *Machine) EnableCounts() { m.InsCount = make([]int64, len(m.P.Ins)) }

// decode predecodes the program into the dispatch loop's flat form. The
// cache is keyed on the program pointer, so swapping m.P takes effect on
// the next run; mutating m.P.Ins in place between runs is not supported.
func (m *Machine) decode() {
	ins := m.P.Ins
	dec := make([]decIns, len(ins))
	for i := range ins {
		in := &ins[i]
		d := &dec[i]
		d.ins = in
		d.op = in.Op
		d.rd = uint8(in.Rd)
		d.ra = uint8(in.Ra)
		d.rb = uint8(in.Rb)
		d.imm = in.Imm
		d.hasImm = in.HasImm
		d.target = int32(in.Target)
		d.shift = uint8(64 - in.Width.Bits())
		d.wbytes = uint8(in.Width.Bytes())
		if in.Width == isa.W64 {
			d.zmask = -1
		} else {
			d.zmask = int64(1)<<uint(in.Width.Bits()) - 1
		}
	}
	m.dec = dec
	m.decSrc = m.P
}

// Run executes until HALT, RET from the entry function, or fuel
// exhaustion; it returns an error on traps (bad memory, bad PC, fuel).
func (m *Machine) Run() error { return m.run(-1) }

// Step executes one instruction. Its event (when a Sink is attached) is
// delivered immediately as a one-element batch.
func (m *Machine) Step() error { return m.run(1) }

const zr = uint8(isa.ZeroReg)

// run is the dispatch loop shared by Run and Step: it executes up to limit
// instructions (limit < 0 means until halt/trap/fuel), buffering retirement
// events and flushing them to the Sink in batches.
func (m *Machine) run(limit int64) error {
	if m.Halted || limit == 0 {
		return nil
	}
	if m.decSrc != m.P || len(m.dec) != len(m.P.Ins) {
		m.decode()
	}
	record := m.Sink != nil
	if record && m.buf == nil {
		m.buf = make([]Event, BatchSize)
	}

	dec := m.dec
	buf := m.buf
	regs := &m.Regs
	counts := m.InsCount
	mem := m.Mem
	dirty := m.dirty
	base := m.P.DataBase
	pc := m.PC
	halted := false
	n := 0 // buffered events

	budget := m.Fuel
	if limit >= 0 && limit < budget {
		budget = limit
	}

	var executed int64
	var runErr error
	var scratch Event // event target when no sink is attached

loop:
	for executed < budget {
		if pc < 0 || pc >= len(dec) {
			runErr = fmt.Errorf("emu: pc %d outside program", pc)
			break
		}
		d := &dec[pc]
		idx := pc
		executed++
		if counts != nil {
			counts[idx]++
		}

		ra := regs[d.ra&31]
		rb := d.imm
		if !d.hasImm {
			rb = regs[d.rb&31]
		}
		// Cases write Addr/Taken/SrcB straight into the event slot (the
		// scratch event absorbs them when no sink is attached).
		ev := &scratch
		if record {
			ev = &buf[n]
			*ev = Event{Idx: idx, Ins: d.ins, SrcA: ra, SrcB: rb}
		}
		next := idx + 1
		wr := false
		var val int64

		switch d.op {
		case isa.OpLDA:
			// LDA carries a width like the other add-class ops, so that an
			// unsoundly narrowed constant/address materialisation is
			// observable in equivalence tests.
			sh := d.shift
			val = (ra + d.imm) << sh >> sh
			wr = true

		case isa.OpLD:
			addr := ra + d.imm
			off := addr - base
			nb := int64(d.wbytes)
			if off < 0 || off+nb > int64(len(mem)) {
				runErr = fmt.Errorf("emu: pc %d: load of %d bytes at %#x out of bounds", idx, nb, addr)
				break loop
			}
			ev.Addr = addr
			switch d.wbytes {
			case 1:
				val = int64(mem[off]) // zero-extended, like Alpha LDBU
			case 2:
				val = int64(binary.LittleEndian.Uint16(mem[off:]))
			case 4:
				val = int64(int32(binary.LittleEndian.Uint32(mem[off:]))) // sign-extended, like Alpha LDL
			default:
				val = int64(binary.LittleEndian.Uint64(mem[off:]))
			}
			wr = true

		case isa.OpST:
			addr := ra + d.imm
			data := regs[d.rb&31]
			off := addr - base
			nb := int64(d.wbytes)
			if off < 0 || off+nb > int64(len(mem)) {
				runErr = fmt.Errorf("emu: pc %d: store of %d bytes at %#x out of bounds", idx, nb, addr)
				break loop
			}
			ev.Addr = addr
			ev.SrcB = data
			switch d.wbytes {
			case 1:
				mem[off] = byte(data)
			case 2:
				binary.LittleEndian.PutUint16(mem[off:], uint16(data))
			case 4:
				binary.LittleEndian.PutUint32(mem[off:], uint32(data))
			default:
				binary.LittleEndian.PutUint64(mem[off:], uint64(data))
			}
			p0 := uint64(off) >> pageShift
			dirty[p0>>6] |= 1 << (p0 & 63)
			if p1 := uint64(off+nb-1) >> pageShift; p1 != p0 {
				dirty[p1>>6] |= 1 << (p1 & 63)
			}
			val = data & d.zmask

		case isa.OpADD:
			sh := d.shift
			val = (ra + rb) << sh >> sh
			wr = true
		case isa.OpSUB:
			sh := d.shift
			val = (ra - rb) << sh >> sh
			wr = true
		case isa.OpMUL:
			sh := d.shift
			val = (ra * rb) << sh >> sh
			wr = true
		case isa.OpAND:
			sh := d.shift
			val = (ra & rb) << sh >> sh
			wr = true
		case isa.OpOR:
			sh := d.shift
			val = (ra | rb) << sh >> sh
			wr = true
		case isa.OpXOR:
			sh := d.shift
			val = (ra ^ rb) << sh >> sh
			wr = true
		case isa.OpBIC:
			sh := d.shift
			val = (ra &^ rb) << sh >> sh
			wr = true
		case isa.OpSLL:
			sh := d.shift
			val = (ra << uint(rb&63)) << sh >> sh
			wr = true
		case isa.OpSRL:
			sh := d.shift
			val = int64(uint64(ra)>>uint(rb&63)) << sh >> sh
			wr = true
		case isa.OpSRA:
			sh := d.shift
			val = (ra >> uint(rb&63)) << sh >> sh
			wr = true

		case isa.OpMSKL:
			val = ra & d.zmask
			wr = true
		case isa.OpEXTB:
			val = (ra >> uint(8*(rb&7))) & 0xFF
			wr = true
		case isa.OpSEXT:
			sh := d.shift
			val = ra << sh >> sh
			wr = true

		case isa.OpCMPEQ:
			sh := d.shift
			val = b2i(ra<<sh>>sh == rb<<sh>>sh)
			wr = true
		case isa.OpCMPLT:
			sh := d.shift
			val = b2i(ra<<sh>>sh < rb<<sh>>sh)
			wr = true
		case isa.OpCMPLE:
			sh := d.shift
			val = b2i(ra<<sh>>sh <= rb<<sh>>sh)
			wr = true
		case isa.OpCMPULT:
			sh := d.shift
			val = b2i(uint64(ra<<sh>>sh) < uint64(rb<<sh>>sh))
			wr = true
		case isa.OpCMPULE:
			sh := d.shift
			val = b2i(uint64(ra<<sh>>sh) <= uint64(rb<<sh>>sh))
			wr = true

		case isa.OpCMOVEQ, isa.OpCMOVNE, isa.OpCMOVLT, isa.OpCMOVGE:
			cond := false
			switch d.op {
			case isa.OpCMOVEQ:
				cond = ra == 0
			case isa.OpCMOVNE:
				cond = ra != 0
			case isa.OpCMOVLT:
				cond = ra < 0
			case isa.OpCMOVGE:
				cond = ra >= 0
			}
			if cond {
				sh := d.shift
				val = rb << sh >> sh
				wr = true
			} else {
				val = regs[d.rd&31] // old destination value, preserved
			}

		case isa.OpBR:
			next = int(d.target)
			ev.Taken = true
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBGT, isa.OpBLE:
			taken := false
			switch d.op {
			case isa.OpBEQ:
				taken = ra == 0
			case isa.OpBNE:
				taken = ra != 0
			case isa.OpBLT:
				taken = ra < 0
			case isa.OpBGE:
				taken = ra >= 0
			case isa.OpBGT:
				taken = ra > 0
			case isa.OpBLE:
				taken = ra <= 0
			}
			if taken {
				next = int(d.target)
			}
			ev.Taken = taken
		case isa.OpJSR:
			val = int64(idx + 1)
			wr = true
			next = int(d.target)
			ev.Taken = true
		case isa.OpRET:
			next = int(ra)
			ev.Taken = true
		case isa.OpHALT:
			halted = true
			next = idx
		case isa.OpOUT:
			val = ra & d.zmask
			for i := 0; i < int(d.wbytes); i++ {
				m.Output = append(m.Output, byte(uint64(val)>>(8*uint(i))))
			}

		default:
			runErr = fmt.Errorf("emu: pc %d: unimplemented opcode %v", idx, d.op)
			break loop
		}

		if wr && d.rd != zr {
			regs[d.rd&31] = val
		}
		if record {
			ev.Next = next
			ev.Value = val
			n++
			if n == len(buf) {
				m.Sink.Consume(buf)
				n = 0
			}
		}
		pc = next
		if halted {
			break
		}
	}

	// Commit architectural state and flush the retired events. An
	// instruction that trapped mid-execution (bad memory, bad opcode)
	// consumed fuel and counted towards Dyn but produced no event; an
	// out-of-range PC traps before any of that.
	m.PC = pc
	m.Dyn += executed
	m.Fuel -= executed
	m.Halted = halted
	if record && n > 0 {
		m.Sink.Consume(buf[:n])
	}
	if runErr != nil {
		return runErr
	}
	if !halted && (limit < 0 || executed < limit) {
		return fmt.Errorf("emu: out of fuel at pc %d (infinite loop?)", pc)
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// LoadBytes copies out a memory region by virtual address (for tests and
// result checking).
func (m *Machine) LoadBytes(addr, n int64) ([]byte, error) {
	off := addr - m.P.DataBase
	if off < 0 || off+n > int64(len(m.Mem)) {
		return nil, fmt.Errorf("emu: read of %d bytes at %#x out of bounds", n, addr)
	}
	out := make([]byte, n)
	copy(out, m.Mem[off:off+n])
	return out, nil
}

// StoreBytes pokes a memory region by virtual address before a run
// (workload inputs).
func (m *Machine) StoreBytes(addr int64, data []byte) error {
	off := addr - m.P.DataBase
	if off < 0 || off+int64(len(data)) > int64(len(m.Mem)) {
		return fmt.Errorf("emu: write of %d bytes at %#x out of bounds", len(data), addr)
	}
	copy(m.Mem[off:], data)
	if len(data) > 0 {
		markDirty(m.dirty, off, int64(len(data)))
	}
	return nil
}
