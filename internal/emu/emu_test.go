package emu_test

import (
	"bytes"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

func run(t *testing.T, src string) *emu.Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := emu.New(p)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// TestALUSemantics exercises one instruction of each kind and checks the
// register state via OUT.
func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []byte
	}{
		{"add", "lda r1, 40(rz)\n add r1, r1, #2\n out.b r1", []byte{42}},
		{"sub", "lda r1, 50(rz)\n sub r1, r1, #8\n out.b r1", []byte{42}},
		{"mul", "lda r1, 6(rz)\n mul r1, r1, #7\n out.b r1", []byte{42}},
		{"and", "lda r1, 0xFF(rz)\n and r1, r1, #0x2A\n out.b r1", []byte{42}},
		{"or", "lda r1, 0x20(rz)\n or r1, r1, #0x0A\n out.b r1", []byte{42}},
		{"xor", "lda r1, 0x6A(rz)\n xor r1, r1, #0x40\n out.b r1", []byte{42}},
		{"bic", "lda r1, 0x7F(rz)\n bic r1, r1, #0x55\n out.b r1", []byte{42}},
		{"sll", "lda r1, 21(rz)\n sll r1, r1, #1\n out.b r1", []byte{42}},
		{"srl", "lda r1, 84(rz)\n srl r1, r1, #1\n out.b r1", []byte{42}},
		{"sra", "lda r1, -84(rz)\n sra r1, r1, #1\n out.b r1", []byte{0xD6}}, // -42
		{"mskl", "lda r1, 0x12A(rz)\n mskl.b r1, r1\n out.h r1", []byte{0x2A, 0x00}},
		{"sext", "lda r1, 0xFF(rz)\n sext.b r1, r1\n out.h r1", []byte{0xFF, 0xFF}}, // -1
		{"extb", "lda r1, 0x2A00(rz)\n extb r1, r1, #1\n out.b r1", []byte{42}},
		{"cmplt-true", "lda r1, 3(rz)\n cmplt r2, r1, #5\n out.b r2", []byte{1}},
		{"cmplt-false", "lda r1, 7(rz)\n cmplt r2, r1, #5\n out.b r2", []byte{0}},
		{"cmpeq", "lda r1, 5(rz)\n cmpeq r2, r1, #5\n out.b r2", []byte{1}},
		{"cmpult-neg", "lda r1, -1(rz)\n cmpult r2, r1, #5\n out.b r2", []byte{0}}, // -1 is huge unsigned
		{"cmov-taken", "lda r1, 1(rz)\n lda r2, 9(rz)\n lda r3, 42(rz)\n cmovne r2, r1, r3\n out.b r2", []byte{42}},
		{"cmov-skipped", "lda r1, 0(rz)\n lda r2, 9(rz)\n lda r3, 42(rz)\n cmovne r2, r1, r3\n out.b r2", []byte{9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := run(t, ".func main\n"+c.body+"\nhalt\n")
			if !bytes.Equal(m.Output, c.want) {
				t.Errorf("output = %x, want %x", m.Output, c.want)
			}
		})
	}
}

// TestNarrowALUTruncation: narrow opcodes sign-extend their result from
// the opcode width (the property that makes unsound VRP narrowing visible).
func TestNarrowALUTruncation(t *testing.T) {
	m := run(t, `
.func main
	lda r1, 200(rz)
	add.b r2, r1, #100    ; 300 -> low byte 0x2C, sign-extended
	out.h r2
	halt
`)
	// 300 = 0x12C; sext8(0x2C) = 0x2C = 44.
	want := []byte{0x2C, 0x00}
	if !bytes.Equal(m.Output, want) {
		t.Errorf("output = %x, want %x", m.Output, want)
	}
}

// TestMemorySemantics: store/load widths, zero/sign extension.
func TestMemorySemantics(t *testing.T) {
	m := run(t, `
.data
buf: .space 32
.text
.func main
	lda r1, =buf
	lda r2, -2(rz)        ; 0xFFFF...FE
	st.q r2, 0(r1)
	ld.b r3, 0(r1)        ; zero-extended byte: 0xFE
	out.h r3
	ld.w r4, 0(r1)        ; sign-extended 32-bit: -2
	cmpeq r5, r4, #-2
	out.b r5
	st.b rz, 0(r1)        ; clear low byte
	ld.q r6, 0(r1)
	cmpeq r7, r6, #-256
	out.b r7
	halt
`)
	want := []byte{0xFE, 0x00, 1, 1}
	if !bytes.Equal(m.Output, want) {
		t.Errorf("output = %x, want %x", m.Output, want)
	}
}

func TestCallsAndStack(t *testing.T) {
	m := run(t, `
.func main
	lda a0, 5(rz)
	jsr addten
	out.b rv
	lda a0, 7(rz)
	jsr addten
	out.b rv
	halt
.func addten
	add rv, a0, #10
	ret
`)
	if !bytes.Equal(m.Output, []byte{15, 17}) {
		t.Errorf("output = %v", m.Output)
	}
}

func TestGPAndSPInitialised(t *testing.T) {
	p, err := asm.Assemble(".func main\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if m.Regs[prog.RegGP] != p.DataBase {
		t.Errorf("GP = %#x, want %#x", m.Regs[prog.RegGP], p.DataBase)
	}
	if m.Regs[prog.RegSP] != p.DataBase+p.MemSize {
		t.Errorf("SP = %#x", m.Regs[prog.RegSP])
	}
	if p.DataBase < 1<<32 {
		t.Errorf("data base %#x below 2^32: addresses would not be 5-byte values", p.DataBase)
	}
}

func TestMemoryBoundsTrap(t *testing.T) {
	p, err := asm.Assemble(".func main\nld.q r1, 0(rz)\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if err := m.Run(); err == nil {
		t.Error("load from address 0 must trap (below the data base)")
	}
}

func TestFuelExhaustion(t *testing.T) {
	p, err := asm.Assemble(".func main\nloop:\nbr loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	m.Fuel = 1000
	if err := m.Run(); err == nil {
		t.Error("infinite loop must exhaust fuel")
	}
}

func TestInstructionCounts(t *testing.T) {
	p, err := asm.Assemble(`
.func main
	lda r1, 0(rz)
loop:
	add r1, r1, #1
	cmplt r2, r1, #10
	bne r2, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	m.EnableCounts()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.InsCount[1] != 10 {
		t.Errorf("add executed %d times, want 10", m.InsCount[1])
	}
	if m.InsCount[0] != 1 {
		t.Errorf("init executed %d times, want 1", m.InsCount[0])
	}
}

func TestTraceEvents(t *testing.T) {
	p, err := asm.Assemble(`
.data
buf: .space 16
.text
.func main
	lda r1, =buf
	lda r2, 99(rz)
	st.w r2, 4(r1)
	ld.w r3, 4(r1)
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	var events []emu.Event
	m.Sink = emu.FuncSink(func(ev emu.Event) { events = append(events, ev) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("traced %d events, want 5", len(events))
	}
	st := events[2]
	if st.Ins.Op != isa.OpST || st.Addr != p.DataBase+4 || st.Value != 99 {
		t.Errorf("store event = %+v", st)
	}
	ld := events[3]
	if ld.Ins.Op != isa.OpLD || ld.Value != 99 {
		t.Errorf("load event = %+v", ld)
	}
}

func TestEquivalenceDetectsOutputDifference(t *testing.T) {
	p1, _ := asm.Assemble(".func main\nlda r1, 1(rz)\nout.b r1\nhalt\n")
	p2, _ := asm.Assemble(".func main\nlda r1, 2(rz)\nout.b r1\nhalt\n")
	if err := emu.CheckEquivalence(p1, p2); err == nil {
		t.Error("differing outputs not detected")
	}
}

func TestEquivalenceDetectsMemoryDifference(t *testing.T) {
	p1, _ := asm.Assemble(".data\nb: .space 8\n.text\n.func main\nlda r1, =b\nlda r2, 1(rz)\nst.q r2, 0(r1)\nhalt\n")
	p2, _ := asm.Assemble(".data\nb: .space 8\n.text\n.func main\nlda r1, =b\nlda r2, 2(rz)\nst.q r2, 0(r1)\nhalt\n")
	if err := emu.CheckEquivalence(p1, p2); err == nil {
		t.Error("differing final memory not detected")
	}
}
