package emu

import (
	"errors"
	"fmt"

	"opgate/internal/prog"
)

// This file is the trace-capture/replay layer: a retirement stream is
// recorded once into a compact packed form and then replayed any number of
// times — into Event sinks at memcpy-like speed, or as struct-of-arrays
// record batches that carry the opcode and operand width inline so
// consumers never chase *isa.Instruction per event.
//
// Layout: records are stored column-wise (struct of arrays) in fixed-size
// chunks of TraceChunkEvents events. One event costs recBytes (43) bytes:
// two int32s (static index, next index), three bytes (op, width in bytes,
// flags), and four int64s (addr, value, srcA, srcB). A recorder refuses to
// grow past its byte budget (DefaultTraceBudget unless overridden): the
// capture is dropped, Trace() reports the overflow, and callers fall back
// to live emulation — a trace is an accelerator, never a correctness
// dependency.
//
// Invariant: Trace.Replay must deliver the exact Event stream of the live
// run it captured — same values in every field, same batching shape — so
// any Sink (the timing model included) can consume a replay in place of an
// emulation without observable difference.

// TraceChunkEvents is the number of events per packed-trace chunk
// (a multiple of BatchSize, so replay batch boundaries match a live run).
const TraceChunkEvents = 1 << 15

// recBytes is the packed per-event footprint: idx(4) + next(4) + op(1) +
// width(1) + flags(1) + addr/value/srcA/srcB (4×8).
const recBytes = 4 + 4 + 1 + 1 + 1 + 4*8

// DefaultTraceBudget caps one recorded trace at 64 MiB (~1.6M events),
// comfortably above the largest suite workload (~28 MB) while bounding a
// runaway capture to a few chunks' worth of error latency.
const DefaultTraceBudget = 64 << 20

// Record flag bits.
const (
	// RecTaken marks a taken branch (Event.Taken).
	RecTaken = 1 << 0
	// RecWritesDest marks an architectural destination write (the
	// instruction has a destination and it is not the zero register),
	// folded in so consumers need not re-derive it from the opcode.
	RecWritesDest = 1 << 1
)

// RecBatch is a struct-of-arrays view of consecutive packed records. All
// slices share one length; entry i describes the i-th retired instruction
// of the batch. Op and WBytes duplicate the static instruction's opcode
// and operand width in bytes, so record consumers (width histograms, the
// TNV profiler, power accounting) never dereference *isa.Instruction.
type RecBatch struct {
	Idx    []int32 // static instruction index
	Next   []int32 // index of the next instruction executed
	Op     []uint8 // isa.Op
	WBytes []uint8 // operand width in bytes (isa.Width value)
	Flags  []uint8 // RecTaken | RecWritesDest
	Addr   []int64 // effective address (loads/stores)
	Value  []int64 // result value
	SrcA   []int64 // first source operand
	SrcB   []int64 // second source operand / store data
}

// Len returns the number of records in the batch.
func (b *RecBatch) Len() int { return len(b.Idx) }

// slice returns the sub-batch [lo, hi).
func (b *RecBatch) slice(lo, hi int) RecBatch {
	return RecBatch{
		Idx: b.Idx[lo:hi], Next: b.Next[lo:hi],
		Op: b.Op[lo:hi], WBytes: b.WBytes[lo:hi], Flags: b.Flags[lo:hi],
		Addr: b.Addr[lo:hi], Value: b.Value[lo:hi],
		SrcA: b.SrcA[lo:hi], SrcB: b.SrcB[lo:hi],
	}
}

// newRecBatch allocates a batch with n (zeroed) records; packRecs fills
// them in place.
func newRecBatch(n int) RecBatch {
	return RecBatch{
		Idx: make([]int32, n), Next: make([]int32, n),
		Op: make([]uint8, n), WBytes: make([]uint8, n), Flags: make([]uint8, n),
		Addr: make([]int64, n), Value: make([]int64, n),
		SrcA: make([]int64, n), SrcB: make([]int64, n),
	}
}

// packRecs packs events column-wise into b starting at offset off and
// returns how many fit (bulk indexed stores — this is the capture hot
// loop, so no per-event slice-header updates).
func packRecs(b *RecBatch, off int, batch []Event, meta []recMeta) int {
	n := len(b.Idx) - off
	if len(batch) < n {
		n = len(batch)
	}
	idxs := b.Idx[off : off+n]
	nexts := b.Next[off : off+n]
	ops := b.Op[off : off+n]
	wbs := b.WBytes[off : off+n]
	flags := b.Flags[off : off+n]
	addrs := b.Addr[off : off+n]
	values := b.Value[off : off+n]
	srcAs := b.SrcA[off : off+n]
	srcBs := b.SrcB[off : off+n]
	for i := range idxs {
		ev := &batch[i]
		m := meta[ev.Idx]
		idxs[i] = int32(ev.Idx)
		nexts[i] = int32(ev.Next)
		ops[i] = m.op
		wbs[i] = m.wbytes
		fl := m.flags
		if ev.Taken {
			fl |= RecTaken
		}
		flags[i] = fl
		addrs[i] = ev.Addr
		values[i] = ev.Value
		srcAs[i] = ev.SrcA
		srcBs[i] = ev.SrcB
	}
	return n
}

// RecSink consumes packed record batches. The batch's backing arrays may
// be owned by a live packer and reused; consumers must not retain them.
type RecSink interface {
	ConsumeRecs(batch RecBatch)
}

// RecFunc adapts a function to the RecSink interface, so one-off record
// consumers stay inline.
type RecFunc func(RecBatch)

// ConsumeRecs implements RecSink.
func (f RecFunc) ConsumeRecs(b RecBatch) { f(b) }

// recMeta is the per-static-instruction metadata folded into each record.
type recMeta struct {
	op     uint8
	wbytes uint8
	flags  uint8 // RecWritesDest when the instruction writes a register
}

// metaOf precomputes the per-static record metadata for a program.
func metaOf(p *prog.Program) []recMeta {
	meta := make([]recMeta, len(p.Ins))
	for i := range p.Ins {
		in := &p.Ins[i]
		meta[i] = recMeta{op: uint8(in.Op), wbytes: uint8(in.Width)}
		if _, ok := in.Dest(); ok {
			meta[i].flags = RecWritesDest
		}
	}
	return meta
}

// TraceRecorder is a Sink that captures a retirement stream into a packed
// trace. Attach it to a machine, run, then call Trace().
type TraceRecorder struct {
	p        *prog.Program
	meta     []recMeta
	budget   int64
	bytes    int64
	chunks   []RecBatch // full-capacity columns; all but the last are full
	fill     int        // records in the last chunk
	events   int64
	overflow bool
}

// NewTraceRecorder returns a recorder for programs executing p, with the
// default memory budget.
func NewTraceRecorder(p *prog.Program) *TraceRecorder {
	return &TraceRecorder{p: p, meta: metaOf(p), budget: DefaultTraceBudget}
}

// SetBudget overrides the recorder's byte budget (<= 0 keeps the default).
func (r *TraceRecorder) SetBudget(bytes int64) {
	if bytes > 0 {
		r.budget = bytes
	}
}

// Consume implements Sink: it packs the batch onto the current chunk,
// growing chunk-by-chunk until the budget is hit, after which the capture
// is abandoned (and its memory released).
func (r *TraceRecorder) Consume(batch []Event) {
	if r.overflow {
		return
	}
	for len(batch) > 0 {
		if len(r.chunks) == 0 || r.fill == TraceChunkEvents {
			if r.bytes+TraceChunkEvents*recBytes > r.budget {
				r.overflow = true
				r.chunks = nil // release what was captured
				return
			}
			r.chunks = append(r.chunks, newRecBatch(TraceChunkEvents))
			r.bytes += TraceChunkEvents * recBytes
			r.fill = 0
		}
		n := packRecs(&r.chunks[len(r.chunks)-1], r.fill, batch, r.meta)
		r.fill += n
		r.events += int64(n)
		batch = batch[n:]
	}
}

// ErrTraceBudget marks a capture abandoned for exceeding its memory
// budget — the one expected TraceRecorder failure. Callers distinguish it
// (errors.Is) from genuine capture defects, which must propagate.
var ErrTraceBudget = errors.New("trace capture exceeded the memory budget")

// Trace returns the captured trace, or an error wrapping ErrTraceBudget
// when the capture exceeded the memory budget (callers should fall back
// to live emulation).
func (r *TraceRecorder) Trace() (*Trace, error) {
	if r.overflow {
		return nil, fmt.Errorf("emu: %w (%d bytes) after %d events",
			ErrTraceBudget, r.budget, r.events)
	}
	chunks := append([]RecBatch(nil), r.chunks...)
	if len(chunks) > 0 {
		last := len(chunks) - 1
		chunks[last] = chunks[last].slice(0, r.fill)
	}
	return &Trace{p: r.p, chunks: chunks, events: r.events, bytes: r.bytes}, nil
}

// Trace is an immutable packed retirement trace: the full observable
// stream of one program execution, replayable into any Sink or RecSink.
type Trace struct {
	p      *prog.Program
	chunks []RecBatch
	events int64
	bytes  int64
}

// Len returns the number of recorded events.
func (t *Trace) Len() int64 { return t.events }

// Bytes returns the resident size of the packed trace.
func (t *Trace) Bytes() int64 { return t.bytes }

// Program returns the program the trace was captured from.
func (t *Trace) Program() *prog.Program { return t.p }

// Records streams the packed record batches (one per chunk) into rs, in
// retirement order. This is the fast path for consumers that only need
// packed fields; no Events are materialised.
func (t *Trace) Records(rs RecSink) {
	for i := range t.chunks {
		if t.chunks[i].Len() > 0 {
			rs.ConsumeRecs(t.chunks[i])
		}
	}
}

// Replay reconstructs the recorded Event stream and delivers it to sink in
// BatchSize batches — the exact stream (and batching shape) a live
// emulation with that sink would have produced. The batch buffer is reused
// across calls to sink.Consume, mirroring the machine's contract.
func (t *Trace) Replay(sink Sink) {
	ins := t.p.Ins
	buf := make([]Event, BatchSize)
	n := 0
	for ci := range t.chunks {
		c := &t.chunks[ci]
		idxs := c.Idx
		if len(idxs) == 0 {
			continue
		}
		// Co-slicing the columns to one length lets the loop index them
		// without per-column bounds checks.
		nexts := c.Next[:len(idxs)]
		flags := c.Flags[:len(idxs)]
		addrs := c.Addr[:len(idxs)]
		values := c.Value[:len(idxs)]
		srcAs := c.SrcA[:len(idxs)]
		srcBs := c.SrcB[:len(idxs)]
		for i := range idxs {
			idx := idxs[i]
			ev := &buf[n]
			ev.Idx = int(idx)
			ev.Ins = &ins[idx]
			ev.Next = int(nexts[i])
			ev.Taken = flags[i]&RecTaken != 0
			ev.Addr = addrs[i]
			ev.Value = values[i]
			ev.SrcA = srcAs[i]
			ev.SrcB = srcBs[i]
			n++
			if n == BatchSize {
				sink.Consume(buf)
				n = 0
			}
		}
	}
	if n > 0 {
		sink.Consume(buf[:n])
	}
}

// tee fans one retirement stream out to several sinks, in order.
type tee []Sink

// Consume implements Sink.
func (t tee) Consume(batch []Event) {
	for _, s := range t {
		s.Consume(batch)
	}
}

// Tee returns a Sink that delivers every batch to each sink in order —
// e.g. a TraceRecorder capturing the stream while a simulator consumes
// the same live pass.
func Tee(sinks ...Sink) Sink { return tee(sinks) }

// packer adapts a live Event stream to a RecSink: each batch is packed
// into a reusable RecBatch and forwarded. It lets packed-record consumers
// (width histograms, profilers) run off a live emulation when no trace is
// available, with the same zero-Ins-chasing inner loop.
type packer struct {
	meta []recMeta
	rs   RecSink
	buf  RecBatch
}

// NewPacker returns a Sink that packs live event batches for rs. p must be
// the program the machine executes.
func NewPacker(p *prog.Program, rs RecSink) Sink {
	return &packer{meta: metaOf(p), rs: rs, buf: newRecBatch(BatchSize)}
}

// Consume implements Sink. Machine-owned batches never exceed BatchSize,
// but other producers may hand in larger slices; the loop drains them in
// buffer-sized pieces rather than dropping the tail.
func (k *packer) Consume(batch []Event) {
	for len(batch) > 0 {
		n := packRecs(&k.buf, 0, batch, k.meta)
		k.rs.ConsumeRecs(k.buf.slice(0, n))
		batch = batch[n:]
	}
}
