package emu

import (
	"sort"

	"opgate/internal/power"
)

// tnvCacheWays is the size of the inline hit-cache in front of the TNV
// map: value profiling is dominated by a handful of hot values (that is
// the premise of the top-N-values scheme), so a tiny move-to-front array
// of counter pointers absorbs almost every Record without a map lookup.
const tnvCacheWays = 4

// TNVTable is the fixed-size top-N-values profiling table of Calder et al.
// (the scheme §3.3 adopts): each profiled value is looked up; hits bump a
// counter; misses insert when space remains, otherwise the value is
// dropped. Periodically the least-frequently-used half is evicted so new
// hot values can enter. A separate counter tracks every profile event.
type TNVTable struct {
	Capacity   int
	Interval   int // events between cleanings
	Total      int64
	entries    map[int64]*int64
	sinceClean int

	// Inline hit-cache: the most recently hit values with pointers to
	// their counters, move-to-front. Invalidated on clean().
	cacheVal [tnvCacheWays]int64
	cacheCnt [tnvCacheWays]*int64

	// Width histogram: counts and extreme values per significant-byte
	// size (index 1..8). The TNV entries capture frequent single values;
	// the width buckets capture diffuse distributions (e.g. counters)
	// exactly, which is what range specialization needs.
	widthCount [9]int64
	widthMin   [9]int64
	widthMax   [9]int64
}

// NewTNVTable returns a table with the given capacity and cleaning
// interval (the paper does not give exact sizes; 32 entries cleaned every
// 2048 events behaves like the published scheme).
func NewTNVTable(capacity, interval int) *TNVTable {
	if capacity <= 0 {
		capacity = 32
	}
	if interval <= 0 {
		interval = 2048
	}
	return &TNVTable{
		Capacity: capacity,
		Interval: interval,
		entries:  make(map[int64]*int64, capacity),
	}
}

// Record profiles one value occurrence.
func (t *TNVTable) Record(v int64) {
	t.Total++
	t.sinceClean++
	// Frequent-value fast path: the head of the hit-cache.
	if c := t.cacheCnt[0]; c != nil && t.cacheVal[0] == v {
		*c++
	} else {
		t.recordSlow(v)
	}
	w := power.SignificantBytes(v)
	if t.widthCount[w] == 0 || v < t.widthMin[w] {
		t.widthMin[w] = v
	}
	if t.widthCount[w] == 0 || v > t.widthMax[w] {
		t.widthMax[w] = v
	}
	t.widthCount[w]++
	if t.sinceClean >= t.Interval {
		t.clean()
	}
}

// recordSlow handles cache-tail hits, map hits, and inserts.
func (t *TNVTable) recordSlow(v int64) {
	for i := 1; i < tnvCacheWays; i++ {
		if c := t.cacheCnt[i]; c != nil && t.cacheVal[i] == v {
			*c++
			t.promote(i, v, c)
			return
		}
	}
	if c, ok := t.entries[v]; ok {
		*c++
		t.promote(tnvCacheWays-1, v, c)
		return
	}
	if len(t.entries) < t.Capacity {
		c := new(int64)
		*c = 1
		t.entries[v] = c
		t.promote(tnvCacheWays-1, v, c)
	}
}

// promote moves a (value, counter) pair to the front of the hit-cache,
// shifting entries above position i down one slot.
func (t *TNVTable) promote(i int, v int64, c *int64) {
	copy(t.cacheVal[1:i+1], t.cacheVal[:i])
	copy(t.cacheCnt[1:i+1], t.cacheCnt[:i])
	t.cacheVal[0] = v
	t.cacheCnt[0] = c
}

// clean evicts the least frequently used half of the table.
func (t *TNVTable) clean() {
	t.sinceClean = 0
	if len(t.entries) < t.Capacity {
		return
	}
	vals := t.Entries()
	for i := len(vals) / 2; i < len(vals); i++ {
		delete(t.entries, vals[i].Value)
	}
	// Cached counter pointers may now point at evicted entries; drop them.
	t.cacheVal = [tnvCacheWays]int64{}
	t.cacheCnt = [tnvCacheWays]*int64{}
}

// ValueCount is one profiled value with its observed frequency.
type ValueCount struct {
	Value int64
	Count int64
}

// Entries returns the profiled values sorted by descending count (ties by
// ascending value, for determinism).
func (t *TNVTable) Entries() []ValueCount {
	out := make([]ValueCount, 0, len(t.entries))
	for v, c := range t.entries {
		out = append(out, ValueCount{v, *c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// CoverageRange finds a small [min,max] covering at least frac of the
// recorded events, and the exact frequency it covers. Two sources are
// consulted: a dominant single value in the TNV table (single-value
// specialization, min==max), else the width histogram — the smallest
// significant-byte size whose cumulative frequency reaches frac, with the
// exact extreme values seen at or below that size. ok is false when the
// table saw nothing.
func (t *TNVTable) CoverageRange(frac float64) (min, max int64, freq float64, ok bool) {
	if t.Total == 0 {
		return 0, 0, 0, false
	}
	// Single dominant value?
	if entries := t.Entries(); len(entries) > 0 {
		if f := float64(entries[0].Count) / float64(t.Total); f >= frac {
			v := entries[0].Value
			return v, v, f, true
		}
	}
	// Width buckets, narrowest first.
	var covered int64
	first := true
	for w := 1; w <= 8; w++ {
		if t.widthCount[w] == 0 {
			continue
		}
		covered += t.widthCount[w]
		if first {
			min, max = t.widthMin[w], t.widthMax[w]
			first = false
		} else {
			if t.widthMin[w] < min {
				min = t.widthMin[w]
			}
			if t.widthMax[w] > max {
				max = t.widthMax[w]
			}
		}
		if float64(covered) >= frac*float64(t.Total) {
			break
		}
	}
	if first {
		return 0, 0, 0, false
	}
	return min, max, float64(covered) / float64(t.Total), true
}

// Profiler collects basic-block execution counts (via Machine.InsCount)
// and per-instruction value profiles at selected points.
type Profiler struct {
	Points map[int]*TNVTable // instruction index -> value table
}

// NewProfiler builds a profiler over the given candidate points.
func NewProfiler(points []int) *Profiler {
	p := &Profiler{Points: make(map[int]*TNVTable, len(points))}
	for _, idx := range points {
		p.Points[idx] = NewTNVTable(0, 0)
	}
	return p
}

// Attach hooks the profiler into a machine's retirement stream. Any
// previously installed sink keeps receiving the batches, after the
// profiler has recorded them.
func (p *Profiler) Attach(m *Machine) {
	m.Sink = &profilerSink{points: p.Points, next: m.Sink}
}

// ConsumeRecs implements RecSink: the profiler reads the packed trace
// record's index and value columns directly, so replaying a captured
// trace through the profiler materialises no Events and chases no
// instruction pointers.
func (p *Profiler) ConsumeRecs(b RecBatch) {
	for i := range b.Idx {
		if t, ok := p.Points[int(b.Idx[i])]; ok {
			t.Record(b.Value[i])
		}
	}
}

type profilerSink struct {
	points map[int]*TNVTable
	next   Sink
}

func (s *profilerSink) Consume(batch []Event) {
	for i := range batch {
		if t, ok := s.points[batch[i].Idx]; ok {
			t.Record(batch[i].Value)
		}
	}
	if s.next != nil {
		s.next.Consume(batch)
	}
}
