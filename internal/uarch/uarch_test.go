package uarch_test

import (
	"reflect"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
	"opgate/internal/workload"
)

func buildLoop(t *testing.T, body string, n int) *prog.Program {
	t.Helper()
	src := `
.func main
	lda r1, 0(rz)
loop:
` + body + `
	add r1, r1, #1
	cmplt r9, r1, #` + itoa(n) + `
	bne r9, loop
	halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func simulate(t *testing.T, p *prog.Program, mode power.GatingMode) *uarch.Result {
	t.Helper()
	r, err := uarch.Run(p, uarch.DefaultConfig(), power.DefaultParams(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIPCBounds(t *testing.T) {
	p := buildLoop(t, "\tadd r2, r2, #1\n\tadd r3, r3, #1\n", 5000)
	r := simulate(t, p, power.GateNone)
	if r.IPC <= 0.3 || r.IPC > 4.0 {
		t.Errorf("IPC %.2f outside sane bounds for a 4-wide machine", r.IPC)
	}
	if r.Instructions < 5000 {
		t.Errorf("retired only %d instructions", r.Instructions)
	}
}

// TestSerialDependencyLimitsIPC: a pointer-chase-style serial chain cannot
// exceed 1 op per cycle through the dependent chain.
func TestSerialDependencyLimitsIPC(t *testing.T) {
	serial := buildLoop(t, "\tadd r2, r2, #1\n\tadd r2, r2, #1\n\tadd r2, r2, #1\n\tadd r2, r2, #1\n", 3000)
	parallel := buildLoop(t, "\tadd r2, r2, #1\n\tadd r3, r3, #1\n\tadd r4, r4, #1\n\tadd r5, r5, #1\n", 3000)
	rs := simulate(t, serial, power.GateNone)
	rp := simulate(t, parallel, power.GateNone)
	if rs.IPC >= rp.IPC {
		t.Errorf("serial IPC %.2f not below parallel IPC %.2f", rs.IPC, rp.IPC)
	}
}

// TestMulLatencyVisible: multiply-heavy chains run slower than add chains.
func TestMulLatencyVisible(t *testing.T) {
	adds := buildLoop(t, "\tadd r2, r2, #3\n", 3000)
	muls := buildLoop(t, "\tmul r2, r2, #3\n\tand r2, r2, #4095\n", 3000)
	ra := simulate(t, adds, power.GateNone)
	rm := simulate(t, muls, power.GateNone)
	cyclesPerIterAdd := float64(ra.Cycles) / 3000
	cyclesPerIterMul := float64(rm.Cycles) / 3000
	if cyclesPerIterMul <= cyclesPerIterAdd {
		t.Errorf("mul loop %.2f cyc/iter not slower than add loop %.2f", cyclesPerIterMul, cyclesPerIterAdd)
	}
}

// TestGatingModesEnergyOrdering: for the same program, baseline energy >=
// software gating; hardware gating on narrow data beats baseline too.
func TestGatingModesEnergyOrdering(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	base := simulate(t, p, power.GateNone)
	hwSig := simulate(t, p, power.GateHWSignificance)
	hwSize := simulate(t, p, power.GateHWSize)
	if hwSig.Energy.Total() >= base.Energy.Total() {
		t.Error("significance gating did not save energy")
	}
	if hwSize.Energy.Total() >= base.Energy.Total() {
		t.Error("size gating did not save energy")
	}
	// Cycles are identical across gating modes (gating is energy-only).
	if base.Cycles != hwSig.Cycles || base.Cycles != hwSize.Cycles {
		t.Error("gating mode changed timing")
	}
}

// TestDeterminism: identical runs produce identical results.
func TestDeterminism(t *testing.T) {
	w, _ := workload.ByName("perl")
	p, _ := w.Build(workload.Train)
	r1 := simulate(t, p, power.GateSoftware)
	r2 := simulate(t, p, power.GateSoftware)
	if r1.Cycles != r2.Cycles || r1.Energy.Total() != r2.Energy.Total() {
		t.Error("simulation is not deterministic")
	}
}

// TestBranchyCodeSlower: a data-dependent branchy loop has a worse IPC
// than straight-line code of the same length (mispredict bubbles).
func TestBranchyCodeSlower(t *testing.T) {
	w, _ := workload.ByName("compress") // data-dependent scan loop
	p, _ := w.Build(workload.Train)
	r := simulate(t, p, power.GateNone)
	if r.BranchMissRate <= 0 {
		t.Error("compress has data-dependent branches; miss rate must be positive")
	}
	if r.BranchMissRate > 0.5 {
		t.Errorf("miss rate %.2f implausibly high", r.BranchMissRate)
	}
}

// TestCacheMissesVisible: a large-stride scan takes more cycles per access
// than a dense scan.
func TestCacheMissesVisible(t *testing.T) {
	dense, err := asm.Assemble(`
.data
buf: .space 262144
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	ld.q r3, 0(r1)
	lda r1, 8(r1)
	add r2, r2, #1
	cmplt r4, r2, #4000
	bne r4, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := asm.Assemble(`
.data
buf: .space 2097152
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	ld.q r3, 0(r1)
	lda r1, 512(r1)
	add r2, r2, #1
	cmplt r4, r2, #4000
	bne r4, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	rd := simulate(t, dense, power.GateNone)
	rs := simulate(t, sparse, power.GateNone)
	if rs.Cycles <= rd.Cycles {
		t.Errorf("sparse scan (%d cycles) not slower than dense (%d)", rs.Cycles, rd.Cycles)
	}
	if rs.L1DMissRate <= rd.L1DMissRate {
		t.Errorf("sparse miss rate %.3f not above dense %.3f", rs.L1DMissRate, rd.L1DMissRate)
	}
}

// TestWindowStall: an instruction window of 8 is slower than 64 on
// memory-latency-bound code.
func TestWindowStall(t *testing.T) {
	p, err := asm.Assemble(`
.data
buf: .space 2097152
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	ld.q r3, 0(r1)
	add r4, r4, r3
	lda r1, 512(r1)
	add r2, r2, #1
	cmplt r5, r2, #3000
	bne r5, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	big := uarch.DefaultConfig()
	small := uarch.DefaultConfig()
	small.WindowSize = 8
	rb, err := uarch.Run(p, big, power.DefaultParams(), power.GateNone)
	if err != nil {
		t.Fatal(err)
	}
	rsm, err := uarch.Run(p, small, power.DefaultParams(), power.GateNone)
	if err != nil {
		t.Fatal(err)
	}
	if rsm.Cycles <= rb.Cycles {
		t.Errorf("8-entry window (%d cycles) not slower than 64-entry (%d)", rsm.Cycles, rb.Cycles)
	}
}

// TestSignExtendToCacheCostsEnergy measures §2.4's claim: carrying size
// tags in the cache (approach 1, the default) saves more energy than
// sign-extending values to full width before they enter it (approach 2).
func TestSignExtendToCacheCostsEnergy(t *testing.T) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	cfgTag := uarch.DefaultConfig()
	cfgSext := uarch.DefaultConfig()
	cfgSext.SignExtendToCache = true
	tagged, err := uarch.Run(p, cfgTag, power.DefaultParams(), power.GateHWSignificance)
	if err != nil {
		t.Fatal(err)
	}
	sext, err := uarch.Run(p, cfgSext, power.DefaultParams(), power.GateHWSignificance)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Energy.Energy[power.DCache] >= sext.Energy.Energy[power.DCache] {
		t.Errorf("tagged cache (%.0f) not cheaper than sign-extended cache (%.0f)",
			tagged.Energy.Energy[power.DCache], sext.Energy.Energy[power.DCache])
	}
}

// TestSimMatchesEmulatorCounts: the trace-driven model retires exactly the
// instruction stream the functional emulator produces.
func TestSimMatchesEmulatorCounts(t *testing.T) {
	for _, name := range []string{"compress", "li", "vortex"} {
		w, _ := workload.ByName(name)
		p, _ := w.Build(workload.Train)
		r := simulate(t, p, power.GateNone)
		m, err := uarch.Run(p, uarch.DefaultConfig(), power.DefaultParams(), power.GateSoftware)
		if err != nil {
			t.Fatal(err)
		}
		if r.Instructions != m.Instructions {
			t.Errorf("%s: instruction counts differ across modes: %d vs %d",
				name, r.Instructions, m.Instructions)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", name, r.IPC)
		}
	}
}

// TestRunModesMatchesIndependentRuns: the fused multi-mode pass must be
// indistinguishable — cycles, instruction counts, miss rates, and every
// field of every meter, bit for bit — from one independent Run per mode.
func TestRunModesMatchesIndependentRuns(t *testing.T) {
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	params := power.DefaultParams()
	modes := power.Modes()

	fused, err := uarch.RunModes(p, cfg, params, modes)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused) != len(modes) {
		t.Fatalf("RunModes returned %d results for %d modes", len(fused), len(modes))
	}
	for i, mode := range modes {
		solo, err := uarch.Run(p, cfg, params, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[i], solo) {
			t.Errorf("mode %v: fused result differs from independent run\nfused: %+v\n solo: %+v",
				mode, fused[i], solo)
		}
	}
}

// TestReplayModesMatchesRunModes: driving the fused timing core from a
// captured trace must give the identical results as a live emulation.
func TestReplayModesMatchesRunModes(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	params := power.DefaultParams()
	modes := []power.GatingMode{power.GateNone, power.GateSoftware, power.GateHWSignificance}

	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}

	replayed, err := uarch.ReplayModes(tr, cfg, params, modes)
	if err != nil {
		t.Fatal(err)
	}
	live, err := uarch.RunModes(p, cfg, params, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, live) {
		t.Fatal("trace-replayed results differ from live emulation")
	}
}
