// Package uarch is the trace-driven out-of-order processor model of
// Table 2. The functional emulator (internal/emu) supplies the retired
// instruction stream; this model replays it through fetch, rename,
// a 64-entry instruction window, functional units, a load/store queue and
// the cache hierarchy, producing a cycle count and per-structure energy via
// the operand-gated power model (internal/power).
//
// This is the classic sim-outorder decomposition: timing is modelled on
// the architecturally correct path, with branch mispredictions charged as
// fetch redirect bubbles plus wrong-path activity energy.
package uarch

import (
	"opgate/internal/bpred"
	"opgate/internal/cache"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
)

// Config mirrors Table 2.
type Config struct {
	FetchWidth      int
	DecodeWidth     int
	IssueWidth      int
	RetireWidth     int
	WindowSize      int // max in-flight instructions
	PhysRegs        int
	IntALUs         int
	IntMulDiv       int
	FrontendDepth   int // fetch→dispatch stages
	RedirectPenalty int
	// InstrBytes is the size of one instruction in the I-cache (OG64
	// encodes to 8 bytes).
	InstrBytes int
	// WrongPathFactor scales the wasted front-end activity charged per
	// mispredict (fraction of a full fetch-to-dispatch refill).
	WrongPathFactor float64
	// SignExtendToCache selects the paper's §2.4 memory approach (2):
	// no size tags in the cache; values sign-extend to full width.
	SignExtendToCache bool

	Predictor bpred.Config
	Memory    cache.HierarchyConfig
}

// DefaultConfig returns the paper's machine parameters.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		DecodeWidth:     4,
		IssueWidth:      4,
		RetireWidth:     4,
		WindowSize:      64,
		PhysRegs:        96,
		IntALUs:         3,
		IntMulDiv:       1,
		FrontendDepth:   4,
		RedirectPenalty: 2,
		InstrBytes:      8,
		WrongPathFactor: 0.5,
		Predictor:       bpred.DefaultConfig(),
		Memory:          cache.DefaultHierarchyConfig(),
	}
}

// Result summarises one simulation.
type Result struct {
	Cycles         int64
	Instructions   int64
	Energy         *power.Meter
	BranchMissRate float64
	L1DMissRate    float64
	L1IMissRate    float64
	IPC            float64
}

// Sim consumes a retirement trace and produces timing + energy.
type Sim struct {
	cfg   Config
	meter *power.Meter
	pred  *bpred.Predictor
	hier  *cache.Hierarchy

	regReady        [isa.NumRegs]int64 // cycle each architectural value is ready
	fetchCycle      int64
	fetchedInCycle  int
	lastFetchLine   int64
	pendingRedirect int64 // earliest fetch cycle after a mispredict

	// Issue-bandwidth ring: issued[c % ringSize] counts issues in cycle
	// c; epochs detect stale slots.
	issued     []int8
	issueEpoch []int64

	// Free-window tracking: retire cycles of the last WindowSize
	// instructions, as a ring.
	windowRing []int64
	windowPos  int

	// Physical-register tracking: completion cycles of the last
	// (PhysRegs - NumRegs) register-writing instructions.
	physRing []int64
	physPos  int

	// FU next-free cycles.
	aluFree []int64
	mulFree []int64

	lastRetire     int64
	retiredInCycle int
	retired        int64
}

const ringSize = 1 << 14

// New builds a simulator with the given gating mode and power parameters.
func New(cfg Config, params power.Params, mode power.GatingMode) (*Sim, error) {
	hier, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	meter := power.NewMeter(params, mode)
	meter.SignExtendToCache = cfg.SignExtendToCache
	return &Sim{
		cfg:           cfg,
		meter:         meter,
		pred:          bpred.New(cfg.Predictor),
		hier:          hier,
		issued:        make([]int8, ringSize),
		issueEpoch:    make([]int64, ringSize),
		windowRing:    make([]int64, cfg.WindowSize),
		physRing:      make([]int64, maxInt(1, cfg.PhysRegs-isa.NumRegs)),
		aluFree:       make([]int64, cfg.IntALUs),
		mulFree:       make([]int64, cfg.IntMulDiv),
		lastFetchLine: -1,
	}, nil
}

// Run executes the program to completion under the simulator and returns
// timing and energy results.
func Run(p *prog.Program, cfg Config, params power.Params, mode power.GatingMode) (*Result, error) {
	s, err := New(cfg, params, mode)
	if err != nil {
		return nil, err
	}
	m := emu.New(p)
	m.Sink = s
	if err := m.Run(); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// Consume advances the pipeline model over a batch of retired
// instructions (it implements emu.Sink).
func (s *Sim) Consume(batch []emu.Event) {
	for i := range batch {
		s.consume(&batch[i])
	}
}

// consume advances the pipeline model by one retired instruction.
func (s *Sim) consume(ev *emu.Event) {
	cfg := &s.cfg
	in := ev.Ins
	s.retired++

	// --- Fetch ---------------------------------------------------------
	if s.pendingRedirect > s.fetchCycle {
		s.fetchCycle = s.pendingRedirect
		s.fetchedInCycle = 0
		s.lastFetchLine = -1
	}
	if s.fetchedInCycle >= cfg.FetchWidth {
		s.fetchCycle++
		s.fetchedInCycle = 0
	}
	// The I-cache is read on every fetch (the line-buffer hit path is
	// folded into the per-access fixed cost); misses are modelled when
	// the fetch group crosses into a new line.
	s.meter.AccessFixed(power.ICache)
	line := int64(ev.Idx) * int64(cfg.InstrBytes) / int64(s.hier.L1I.Config().LineBytes)
	if line != s.lastFetchLine {
		lat, l2 := s.hier.InstrAccess(int64(ev.Idx) * int64(cfg.InstrBytes))
		if l2 {
			s.meter.AccessFixed(power.L2Cache)
		}
		if lat > s.hier.L1I.Config().HitCycles {
			s.fetchCycle += int64(lat - s.hier.L1I.Config().HitCycles)
			s.fetchedInCycle = 0
		}
		s.lastFetchLine = line
	}
	s.fetchedInCycle++
	fetch := s.fetchCycle

	// --- Rename / dispatch ----------------------------------------------
	s.meter.AccessFixed(power.Rename)
	dispatch := fetch + int64(cfg.FrontendDepth)
	// Window occupancy: cannot dispatch until the instruction
	// WindowSize back has retired.
	if w := s.windowRing[s.windowPos]; dispatch <= w {
		dispatch = w + 1
	}
	// Physical registers: a writer needs a free register, available when
	// the (PhysRegs-NumRegs)-back writer retired.
	_, writes := in.Dest()
	if in.Op == isa.OpJSR {
		writes = true
	}
	if writes {
		if w := s.physRing[s.physPos]; dispatch <= w {
			dispatch = w + 1
		}
	}

	// --- Operand readiness ----------------------------------------------
	ready := dispatch + 1
	uses, n := in.Uses()
	for k := 0; k < n; k++ {
		r := uses[k]
		if r == isa.ZeroReg {
			continue
		}
		if t := s.regReady[r]; t > ready {
			ready = t
		}
	}

	// --- Issue ------------------------------------------------------------
	var fu []int64
	switch isa.ClassOf(in.Op) {
	case isa.ClassMul:
		fu = s.mulFree
	case isa.ClassBranch, isa.ClassOther, isa.ClassNone:
		fu = nil // branches/halt resolve on an ALU port too
		fu = s.aluFree
	default:
		fu = s.aluFree
	}
	issue := ready
	// Find an FU and an issue slot.
	for {
		// FU availability.
		best := -1
		for i := range fu {
			if fu[i] <= issue && (best < 0 || fu[i] < fu[best]) {
				best = i
			}
		}
		if best < 0 {
			// Earliest any unit frees.
			min := fu[0]
			for _, t := range fu[1:] {
				if t < min {
					min = t
				}
			}
			issue = min
			continue
		}
		// Issue bandwidth.
		slot := issue % ringSize
		if s.issueEpoch[slot] != issue {
			s.issueEpoch[slot] = issue
			s.issued[slot] = 0
		}
		if int(s.issued[slot]) >= cfg.IssueWidth {
			issue++
			continue
		}
		s.issued[slot]++
		lat := int64(isa.Latency(in.Op))
		fu[best] = issue + lat
		break
	}

	// --- Execute / memory -------------------------------------------------
	done := issue + int64(isa.Latency(in.Op))
	if isa.IsMem(in.Op) {
		lat, l2 := s.hier.DataAccess(ev.Addr, in.Op == isa.OpST)
		done = issue + int64(lat)
		// LSQ: address CAM plus data movement.
		s.meter.AccessBytes(power.LSQ, power.ActiveBytes(s.meter.Mode, 8, ev.Addr))
		s.meter.AccessValue(power.LSQ, in.Width.Bytes(), ev.Value)
		s.meter.AccessCacheValue(power.DCache, in.Width.Bytes(), ev.Value)
		if l2 {
			s.meter.AccessFixed(power.L2Cache)
		}
	}

	// --- Energy: window, operands, execution ------------------------------
	w := in.Width.Bytes()
	s.meter.AccessValue(power.IQ, w, wider(ev.SrcA, ev.SrcB))
	s.meter.AccessFixed(power.ROB)
	for k := 0; k < n; k++ {
		if uses[k] == isa.ZeroReg {
			continue
		}
		v := ev.SrcA
		if k == 1 {
			v = ev.SrcB
		}
		s.meter.AccessValue(power.RegFile, w, v)
	}
	if _, ok := in.Dest(); ok || in.Op == isa.OpJSR {
		s.meter.AccessValue(power.RegFile, w, ev.Value)
		s.meter.AccessValue(power.RenameBuf, w, ev.Value)
		s.meter.AccessValue(power.ResultBus, w, ev.Value)
	}
	if class := isa.ClassOf(in.Op); class != isa.ClassBranch && class != isa.ClassNone &&
		class != isa.ClassLoad && class != isa.ClassStore && in.Op != isa.OpHALT {
		s.meter.AccessValue(power.FU, w, wider(ev.SrcA, ev.SrcB))
	}

	// --- Branch resolution -------------------------------------------------
	if isa.IsBranch(in.Op) {
		s.meter.AccessFixed(power.BPred)
		miss := false
		switch {
		case isa.IsCondBranch(in.Op):
			s.pred.Predict(ev.Idx)
			miss = s.pred.Update(ev.Idx, ev.Taken)
		case in.Op == isa.OpJSR:
			s.pred.Call(ev.Idx + 1)
		case in.Op == isa.OpRET:
			miss = s.pred.Return(ev.Next)
		}
		if miss {
			s.pendingRedirect = done + int64(s.cfg.RedirectPenalty)
			// Wrong-path energy: wasted front-end work.
			waste := s.cfg.WrongPathFactor * float64(cfg.FetchWidth*cfg.FrontendDepth)
			for i := 0; i < int(waste); i++ {
				s.meter.AccessFixed(power.ICache)
				s.meter.AccessFixed(power.Rename)
			}
		}
	}

	// --- Writeback ----------------------------------------------------------
	if d, ok := in.Dest(); ok {
		s.regReady[d] = done
	}
	if in.Op == isa.OpJSR && in.Rd != isa.ZeroReg {
		s.regReady[in.Rd] = done
	}

	// --- Retire (in order) ---------------------------------------------------
	retire := done + 1
	if retire < s.lastRetire {
		retire = s.lastRetire
	}
	if retire == s.lastRetire {
		s.retiredInCycle++
		if s.retiredInCycle >= cfg.RetireWidth {
			retire++
			s.retiredInCycle = 0
		}
	} else {
		s.retiredInCycle = 1
	}
	s.lastRetire = retire
	s.windowRing[s.windowPos] = retire
	s.windowPos = (s.windowPos + 1) % len(s.windowRing)
	if writes {
		s.physRing[s.physPos] = retire
		s.physPos = (s.physPos + 1) % len(s.physRing)
	}
}

// Finish closes the simulation and returns results.
func (s *Sim) Finish() *Result {
	cycles := s.lastRetire + 1
	s.meter.Tick(cycles)
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(s.retired) / float64(cycles)
	}
	return &Result{
		Cycles:         cycles,
		Instructions:   s.retired,
		Energy:         s.meter,
		BranchMissRate: s.pred.MissRate(),
		L1DMissRate:    s.hier.L1D.MissRate(),
		L1IMissRate:    s.hier.L1I.MissRate(),
		IPC:            ipc,
	}
}

func wider(a, b int64) int64 {
	if power.SignificantBytes(a) >= power.SignificantBytes(b) {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
