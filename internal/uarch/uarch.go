// Package uarch is the trace-driven out-of-order processor model of
// Table 2. The functional emulator (internal/emu) supplies the retired
// instruction stream; this model replays it through fetch, rename,
// a 64-entry instruction window, functional units, a load/store queue and
// the cache hierarchy, producing a cycle count and per-structure energy via
// the operand-gated power model (internal/power).
//
// This is the classic sim-outorder decomposition: timing is modelled on
// the architecturally correct path, with branch mispredictions charged as
// fetch redirect bubbles plus wrong-path activity energy.
package uarch

import (
	"fmt"

	"opgate/internal/bpred"
	"opgate/internal/cache"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
)

// Config mirrors Table 2.
type Config struct {
	FetchWidth      int
	DecodeWidth     int
	IssueWidth      int
	RetireWidth     int
	WindowSize      int // max in-flight instructions
	PhysRegs        int
	IntALUs         int
	IntMulDiv       int
	FrontendDepth   int // fetch→dispatch stages
	RedirectPenalty int
	// InstrBytes is the size of one instruction in the I-cache (OG64
	// encodes to 8 bytes).
	InstrBytes int
	// WrongPathFactor scales the wasted front-end activity charged per
	// mispredict (fraction of a full fetch-to-dispatch refill).
	WrongPathFactor float64
	// SignExtendToCache selects the paper's §2.4 memory approach (2):
	// no size tags in the cache; values sign-extend to full width.
	SignExtendToCache bool

	Predictor bpred.Config
	Memory    cache.HierarchyConfig
}

// DefaultConfig returns the paper's machine parameters.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		DecodeWidth:     4,
		IssueWidth:      4,
		RetireWidth:     4,
		WindowSize:      64,
		PhysRegs:        96,
		IntALUs:         3,
		IntMulDiv:       1,
		FrontendDepth:   4,
		RedirectPenalty: 2,
		InstrBytes:      8,
		WrongPathFactor: 0.5,
		Predictor:       bpred.DefaultConfig(),
		Memory:          cache.DefaultHierarchyConfig(),
	}
}

// Result summarises one simulation.
type Result struct {
	Cycles         int64
	Instructions   int64
	Energy         *power.Meter
	BranchMissRate float64
	L1DMissRate    float64
	L1IMissRate    float64
	IPC            float64
}

// powerBank is the pluggable power-accounting stage: it fans every
// per-event accounting call out to one meter per requested gating mode.
// The timing core above it is mode-independent — it describes each access
// as (structure, software width, value) and never consults a gating mode —
// so one traversal of the retirement stream can accrue any number of
// modes, each meter seeing exactly the call sequence a solo run would
// produce (fused results are bit-identical to per-mode runs).
type powerBank struct {
	meters []*power.Meter
}

func (b *powerBank) accessFixed(s power.Structure) {
	for _, m := range b.meters {
		m.AccessFixed(s)
	}
}

func (b *powerBank) accessValue(s power.Structure, swWidth int, value int64) {
	for _, m := range b.meters {
		m.AccessValue(s, swWidth, value)
	}
}

func (b *powerBank) accessCacheValue(s power.Structure, swWidth int, value int64) {
	for _, m := range b.meters {
		m.AccessCacheValue(s, swWidth, value)
	}
}

// Sim consumes a retirement trace once and produces timing plus energy for
// every gating mode in its bank.
type Sim struct {
	cfg  Config
	bank powerBank
	pred *bpred.Predictor
	hier *cache.Hierarchy

	regReady        [isa.NumRegs]int64 // cycle each architectural value is ready
	fetchCycle      int64
	fetchedInCycle  int
	lastFetchLine   int64
	pendingRedirect int64 // earliest fetch cycle after a mispredict

	// Issue-bandwidth ring: issued[c % ringSize] counts issues in cycle
	// c; epochs detect stale slots.
	issued     []int8
	issueEpoch []int64

	// Free-window tracking: retire cycles of the last WindowSize
	// instructions, as a ring.
	windowRing []int64
	windowPos  int

	// Physical-register tracking: completion cycles of the last
	// (PhysRegs - NumRegs) register-writing instructions.
	physRing []int64
	physPos  int

	// FU next-free cycles.
	aluFree []int64
	mulFree []int64

	lastRetire     int64
	retiredInCycle int
	retired        int64

	results []*Result // built once by FinishAll
}

const ringSize = 1 << 14

// New builds a simulator with the given gating mode and power parameters.
func New(cfg Config, params power.Params, mode power.GatingMode) (*Sim, error) {
	return NewMulti(cfg, params, []power.GatingMode{mode})
}

// NewMulti builds a fused simulator whose power bank accrues every listed
// gating mode in one traversal of the retirement stream. FinishAll returns
// one Result per mode, in the given order.
func NewMulti(cfg Config, params power.Params, modes []power.GatingMode) (*Sim, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("uarch: no gating modes requested")
	}
	hier, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	meters := make([]*power.Meter, len(modes))
	for i, mode := range modes {
		meters[i] = power.NewMeter(params, mode)
		meters[i].SignExtendToCache = cfg.SignExtendToCache
	}
	return &Sim{
		cfg:           cfg,
		bank:          powerBank{meters: meters},
		pred:          bpred.New(cfg.Predictor),
		hier:          hier,
		issued:        make([]int8, ringSize),
		issueEpoch:    make([]int64, ringSize),
		windowRing:    make([]int64, cfg.WindowSize),
		physRing:      make([]int64, max(1, cfg.PhysRegs-isa.NumRegs)),
		aluFree:       make([]int64, cfg.IntALUs),
		mulFree:       make([]int64, cfg.IntMulDiv),
		lastFetchLine: -1,
	}, nil
}

// Run executes the program to completion under the simulator and returns
// timing and energy results.
func Run(p *prog.Program, cfg Config, params power.Params, mode power.GatingMode) (*Result, error) {
	rs, err := RunModes(p, cfg, params, []power.GatingMode{mode})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunModes performs one functional emulation and one timing traversal of p
// while a bank of meters accrues every requested gating mode, returning
// one Result per mode (timing fields identical, energy per mode). It is
// exactly equivalent to — and bit-identical with — len(modes) independent
// Run calls, at one emulation and one timing pass of cost.
func RunModes(p *prog.Program, cfg Config, params power.Params, modes []power.GatingMode) ([]*Result, error) {
	s, err := NewMulti(cfg, params, modes)
	if err != nil {
		return nil, err
	}
	m := emu.New(p)
	m.Sink = s
	if err := m.Run(); err != nil {
		return nil, err
	}
	return s.FinishAll(), nil
}

// ReplayModes is RunModes driven by a captured retirement trace instead of
// a live emulation: the trace is replayed once through the fused timing
// core. The trace must reproduce the live stream byte-for-byte (the
// emu.Trace invariant), so results are identical to RunModes on the
// traced program.
func ReplayModes(tr *emu.Trace, cfg Config, params power.Params, modes []power.GatingMode) ([]*Result, error) {
	s, err := NewMulti(cfg, params, modes)
	if err != nil {
		return nil, err
	}
	tr.Replay(s)
	return s.FinishAll(), nil
}

// Consume advances the pipeline model over a batch of retired
// instructions (it implements emu.Sink).
func (s *Sim) Consume(batch []emu.Event) {
	for i := range batch {
		s.consume(&batch[i])
	}
}

// consume advances the pipeline model by one retired instruction.
func (s *Sim) consume(ev *emu.Event) {
	cfg := &s.cfg
	in := ev.Ins
	s.retired++

	// --- Fetch ---------------------------------------------------------
	if s.pendingRedirect > s.fetchCycle {
		s.fetchCycle = s.pendingRedirect
		s.fetchedInCycle = 0
		s.lastFetchLine = -1
	}
	if s.fetchedInCycle >= cfg.FetchWidth {
		s.fetchCycle++
		s.fetchedInCycle = 0
	}
	// The I-cache is read on every fetch (the line-buffer hit path is
	// folded into the per-access fixed cost); misses are modelled when
	// the fetch group crosses into a new line.
	s.bank.accessFixed(power.ICache)
	line := int64(ev.Idx) * int64(cfg.InstrBytes) / int64(s.hier.L1I.Config().LineBytes)
	if line != s.lastFetchLine {
		lat, l2 := s.hier.InstrAccess(int64(ev.Idx) * int64(cfg.InstrBytes))
		if l2 {
			s.bank.accessFixed(power.L2Cache)
		}
		if lat > s.hier.L1I.Config().HitCycles {
			s.fetchCycle += int64(lat - s.hier.L1I.Config().HitCycles)
			s.fetchedInCycle = 0
		}
		s.lastFetchLine = line
	}
	s.fetchedInCycle++
	fetch := s.fetchCycle

	// --- Rename / dispatch ----------------------------------------------
	s.bank.accessFixed(power.Rename)
	dispatch := fetch + int64(cfg.FrontendDepth)
	// Window occupancy: cannot dispatch until the instruction
	// WindowSize back has retired.
	if w := s.windowRing[s.windowPos]; dispatch <= w {
		dispatch = w + 1
	}
	// Physical registers: a writer needs a free register, available when
	// the (PhysRegs-NumRegs)-back writer retired.
	_, writes := in.Dest()
	if in.Op == isa.OpJSR {
		writes = true
	}
	if writes {
		if w := s.physRing[s.physPos]; dispatch <= w {
			dispatch = w + 1
		}
	}

	// --- Operand readiness ----------------------------------------------
	ready := dispatch + 1
	uses, n := in.Uses()
	for k := 0; k < n; k++ {
		r := uses[k]
		if r == isa.ZeroReg {
			continue
		}
		if t := s.regReady[r]; t > ready {
			ready = t
		}
	}

	// --- Issue ------------------------------------------------------------
	var fu []int64
	switch isa.ClassOf(in.Op) {
	case isa.ClassMul:
		fu = s.mulFree
	case isa.ClassBranch, isa.ClassOther, isa.ClassNone:
		fu = nil // branches/halt resolve on an ALU port too
		fu = s.aluFree
	default:
		fu = s.aluFree
	}
	issue := ready
	// Find an FU and an issue slot.
	for {
		// FU availability.
		best := -1
		for i := range fu {
			if fu[i] <= issue && (best < 0 || fu[i] < fu[best]) {
				best = i
			}
		}
		if best < 0 {
			// Earliest any unit frees.
			min := fu[0]
			for _, t := range fu[1:] {
				if t < min {
					min = t
				}
			}
			issue = min
			continue
		}
		// Issue bandwidth.
		slot := issue % ringSize
		if s.issueEpoch[slot] != issue {
			s.issueEpoch[slot] = issue
			s.issued[slot] = 0
		}
		if int(s.issued[slot]) >= cfg.IssueWidth {
			issue++
			continue
		}
		s.issued[slot]++
		lat := int64(isa.Latency(in.Op))
		fu[best] = issue + lat
		break
	}

	// --- Execute / memory -------------------------------------------------
	done := issue + int64(isa.Latency(in.Op))
	if isa.IsMem(in.Op) {
		lat, l2 := s.hier.DataAccess(ev.Addr, in.Op == isa.OpST)
		done = issue + int64(lat)
		// LSQ: address CAM plus data movement. The address access is a
		// full-width (8-byte) value access, gated by each meter's own view
		// of the address bytes.
		s.bank.accessValue(power.LSQ, 8, ev.Addr)
		s.bank.accessValue(power.LSQ, in.Width.Bytes(), ev.Value)
		s.bank.accessCacheValue(power.DCache, in.Width.Bytes(), ev.Value)
		if l2 {
			s.bank.accessFixed(power.L2Cache)
		}
	}

	// --- Energy: window, operands, execution ------------------------------
	w := in.Width.Bytes()
	s.bank.accessValue(power.IQ, w, power.Wider(ev.SrcA, ev.SrcB))
	s.bank.accessFixed(power.ROB)
	for k := 0; k < n; k++ {
		if uses[k] == isa.ZeroReg {
			continue
		}
		v := ev.SrcA
		if k == 1 {
			v = ev.SrcB
		}
		s.bank.accessValue(power.RegFile, w, v)
	}
	if _, ok := in.Dest(); ok || in.Op == isa.OpJSR {
		s.bank.accessValue(power.RegFile, w, ev.Value)
		s.bank.accessValue(power.RenameBuf, w, ev.Value)
		s.bank.accessValue(power.ResultBus, w, ev.Value)
	}
	if class := isa.ClassOf(in.Op); class != isa.ClassBranch && class != isa.ClassNone &&
		class != isa.ClassLoad && class != isa.ClassStore && in.Op != isa.OpHALT {
		s.bank.accessValue(power.FU, w, power.Wider(ev.SrcA, ev.SrcB))
	}

	// --- Branch resolution -------------------------------------------------
	if isa.IsBranch(in.Op) {
		s.bank.accessFixed(power.BPred)
		miss := false
		switch {
		case isa.IsCondBranch(in.Op):
			s.pred.Predict(ev.Idx)
			miss = s.pred.Update(ev.Idx, ev.Taken)
		case in.Op == isa.OpJSR:
			s.pred.Call(ev.Idx + 1)
		case in.Op == isa.OpRET:
			miss = s.pred.Return(ev.Next)
		}
		if miss {
			s.pendingRedirect = done + int64(s.cfg.RedirectPenalty)
			// Wrong-path energy: wasted front-end work.
			waste := s.cfg.WrongPathFactor * float64(cfg.FetchWidth*cfg.FrontendDepth)
			for i := 0; i < int(waste); i++ {
				s.bank.accessFixed(power.ICache)
				s.bank.accessFixed(power.Rename)
			}
		}
	}

	// --- Writeback ----------------------------------------------------------
	if d, ok := in.Dest(); ok {
		s.regReady[d] = done
	}
	if in.Op == isa.OpJSR && in.Rd != isa.ZeroReg {
		s.regReady[in.Rd] = done
	}

	// --- Retire (in order) ---------------------------------------------------
	retire := done + 1
	if retire < s.lastRetire {
		retire = s.lastRetire
	}
	if retire == s.lastRetire {
		s.retiredInCycle++
		if s.retiredInCycle >= cfg.RetireWidth {
			retire++
			s.retiredInCycle = 0
		}
	} else {
		s.retiredInCycle = 1
	}
	s.lastRetire = retire
	s.windowRing[s.windowPos] = retire
	s.windowPos = (s.windowPos + 1) % len(s.windowRing)
	if writes {
		s.physRing[s.physPos] = retire
		s.physPos = (s.physPos + 1) % len(s.physRing)
	}
}

// Finish closes the simulation and returns the first mode's results (the
// only mode, for simulators built with New).
func (s *Sim) Finish() *Result {
	return s.FinishAll()[0]
}

// FinishAll closes the simulation and returns one Result per gating mode
// in the bank, in NewMulti order. Timing fields are shared (gating is
// energy-only); each Result carries its own meter. Idempotent.
func (s *Sim) FinishAll() []*Result {
	if s.results != nil {
		return s.results
	}
	cycles := s.lastRetire + 1
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(s.retired) / float64(cycles)
	}
	s.results = make([]*Result, len(s.bank.meters))
	for i, m := range s.bank.meters {
		m.Tick(cycles)
		s.results[i] = &Result{
			Cycles:         cycles,
			Instructions:   s.retired,
			Energy:         m,
			BranchMissRate: s.pred.MissRate(),
			L1DMissRate:    s.hier.L1D.MissRate(),
			L1IMissRate:    s.hier.L1I.MissRate(),
			IPC:            ipc,
		}
	}
	return s.results
}
