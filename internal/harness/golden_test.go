package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// quickRun builds the full quick-mode report sequence (every table,
// figure and ablation at the default threshold) exactly once and shares
// it across the golden, JSON and round-trip tests — the suite memoizes
// everything, so one RunAll covers all three.
var quickRun struct {
	once    sync.Once
	reports []*Report
	err     error
}

func quickReports(t *testing.T) []*Report {
	t.Helper()
	quickRun.once.Do(func() {
		s := NewSuite(true)
		quickRun.reports, quickRun.err = s.RunAll(context.Background(), 50)
	})
	if quickRun.err != nil {
		t.Fatal(quickRun.err)
	}
	return quickRun.reports
}

// checkGolden compares got against the named golden file (rewriting it
// under -update), with a line-oriented first-difference report.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (create with -update): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := range gotLines {
		if i >= len(wantLines) || gotLines[i] != wantLines[i] {
			wantLine := "<EOF>"
			if i < len(wantLines) {
				wantLine = wantLines[i]
			}
			t.Fatalf("%s drifted at line %d:\n  got:  %q\n  want: %q\n(re-baseline deliberate changes with -update)",
				name, i+1, gotLines[i], wantLine)
		}
	}
	t.Fatalf("%s drifted: got %d lines, want %d (re-baseline with -update)",
		name, len(gotLines), len(wantLines))
}

// TestQuickReportGolden pins the full `ogbench -quick` text output to a
// committed golden file: the structured-report text renderer must
// reproduce the pre-structured pipeline byte-for-byte, so report drift —
// a changed kernel, power coefficient, pipeline constant or formatter —
// is caught in CI instead of by manual diffing. Deliberate changes
// re-baseline with:
//
//	go test ./internal/harness -run TestQuickReportGolden -update
func TestQuickReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, quickReports(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ogbench_quick.golden", buf.Bytes())
}

// TestQuickReportJSONGolden pins the canonical JSON encoding of the same
// run (`ogbench -quick -format json`), so the machine-readable schema is
// as regression-guarded as the text layout.
func TestQuickReportJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONRenderer{}).Render(&buf, quickReports(t)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ogbench_quick_json.golden", buf.Bytes())
}

// TestReportJSONRoundTrip is the codec property over every experiment in
// Experiments(): decode(encode(reports)) reproduces every report exactly
// (Equal), re-encoding the decoded value reproduces the canonical bytes,
// and per-report encodings are individually stable.
func TestReportJSONRoundTrip(t *testing.T) {
	reports := quickReports(t)
	if want := len(Experiments()); len(reports) != want {
		t.Fatalf("RunAll returned %d reports, want %d (one per experiment)", len(reports), want)
	}
	blob, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeReports(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(reports) {
		t.Fatalf("decoded %d reports, want %d", len(decoded), len(reports))
	}
	for i, r := range reports {
		d := decoded[i]
		if !d.Equal(r) {
			t.Errorf("%s: decode(encode) != original", r.ID)
		}
		if diffs := r.Diff(d); len(diffs) != 0 {
			t.Errorf("%s: Diff(decoded) reports %d cells on identical reports: %+v", r.ID, len(diffs), diffs[0])
		}
		b1, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		b2, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: canonical bytes unstable across a round trip", r.ID)
		}
	}
	reblob, err := EncodeReports(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatal("canonical report-sequence bytes unstable across a round trip")
	}
}

// TestExperimentDescriptorsMatchReports: the descriptor metadata shown
// without running anything (IDs, titles) must match what the built
// reports carry, and every report must declare a unit.
func TestExperimentDescriptorsMatchReports(t *testing.T) {
	reports := quickReports(t)
	for i, e := range Experiments() {
		r := reports[i]
		if r.ID != e.ID {
			t.Errorf("experiment %d: descriptor ID %q, report ID %q", i, e.ID, r.ID)
		}
		if r.Title != e.Title {
			t.Errorf("%s: descriptor title %q, report title %q", e.ID, e.Title, r.Title)
		}
		if r.Unit == "" {
			t.Errorf("%s: report declares no unit", e.ID)
		}
		if r.Units != nil && len(r.Units) != len(r.Columns) {
			t.Errorf("%s: %d per-column units for %d columns", e.ID, len(r.Units), len(r.Columns))
		}
	}
}
