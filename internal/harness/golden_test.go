package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// TestQuickReportGolden pins the full `ogbench -quick` output (every
// table, figure and ablation at the default threshold) to a committed
// golden file, so report drift — a changed kernel, power coefficient,
// pipeline constant or formatter — is caught in CI instead of by manual
// diffing. Deliberate changes re-baseline with:
//
//	go test ./internal/harness -run TestQuickReportGolden -update
func TestQuickReportGolden(t *testing.T) {
	s := NewSuite(true)
	var buf bytes.Buffer
	if err := s.RunAll(&buf, 50); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "ogbench_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (create with -update): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	gotLines := strings.Split(buf.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := range gotLines {
		if i >= len(wantLines) || gotLines[i] != wantLines[i] {
			wantLine := "<EOF>"
			if i < len(wantLines) {
				wantLine = wantLines[i]
			}
			t.Fatalf("quick report drifted at line %d:\n  got:  %q\n  want: %q\n(re-baseline deliberate changes with -update)",
				i+1, gotLines[i], wantLine)
		}
	}
	t.Fatalf("quick report drifted: got %d lines, want %d (re-baseline with -update)",
		len(gotLines), len(wantLines))
}
