// Package harness regenerates every table and figure of the paper's
// evaluation (§4): per-experiment drivers run the workload suite through
// the binary optimizer (VRP/VRS), the out-of-order timing model, and the
// operand-gated power model, then print the same rows and series the paper
// reports. Absolute energy values are model units; the experiments compare
// configurations against the same ungated baseline exactly as the paper
// does.
//
// The suite is concurrency-safe: artifacts are memoized with per-key
// singleflight caches (internal/harness/parallel.go), so independent
// builds, analyses and simulations proceed in parallel, and the
// per-workload loops of the table/figure drivers fan out across a bounded
// worker pool. Reports are assembled in suite order, so results are
// byte-identical to a sequential run (Workers = 1).
package harness

import (
	"fmt"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
	"opgate/internal/workload"
)

// Thresholds are the paper's VRS cost configurations (Fig. 8's "VRS 110nJ"
// … "VRS 30nJ").
var Thresholds = []float64{110, 90, 70, 50, 30}

// Suite caches the expensive artifacts (built programs, analyses,
// transformed binaries, simulation results) across experiments.
type Suite struct {
	// Quick selects the train inputs for evaluation runs, trimming
	// benchmark time; the full suite evaluates on ref inputs like the
	// paper.
	Quick bool

	// Workers bounds the per-workload fan-out of the experiment drivers;
	// 0 means GOMAXPROCS. Workers = 1 reproduces a sequential run.
	Workers int

	Uarch uarch.Config
	Power power.Params

	progs    memo[progKey, *prog.Program]
	vrps     memo[vrpKey, *vrp.Result]
	vrss     memo[vrsKey, *vrs.Result]
	variants memo[variantKey, *prog.Program]
	sims     memo[simKey, *uarch.Result]
}

type progKey struct {
	name  string
	class workload.InputClass
}

type vrpKey struct {
	name string
	mode vrp.Mode
}

type vrsKey struct {
	name      string
	threshold float64
}

type variantKey struct {
	name    string
	variant string // "base", "vrp", "vrp-conv", "vrs<θ>"
}

type simKey struct {
	name    string
	variant string
	mode    power.GatingMode
}

// NewSuite builds a suite with the paper's machine parameters.
func NewSuite(quick bool) *Suite {
	return &Suite{
		Quick: quick,
		Uarch: uarch.DefaultConfig(),
		Power: power.DefaultParams(),
	}
}

// Names returns the benchmark names in paper order.
func (s *Suite) Names() []string {
	names := make([]string, 0, 8)
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return names
}

// evalClass is the input class evaluation runs use.
func (s *Suite) evalClass() workload.InputClass {
	if s.Quick {
		return workload.Train
	}
	return workload.Ref
}

// Program returns (cached) the named benchmark built for an input class.
func (s *Suite) Program(name string, class workload.InputClass) (*prog.Program, error) {
	return s.progs.do(progKey{name, class}, func() (*prog.Program, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Build(class)
		if err != nil {
			return nil, fmt.Errorf("harness: build %s/%v: %w", name, class, err)
		}
		return p, nil
	})
}

// VRP returns (cached) the analysis of the evaluation binary.
func (s *Suite) VRP(name string, mode vrp.Mode) (*vrp.Result, error) {
	return s.vrps.do(vrpKey{name, mode}, func() (*vrp.Result, error) {
		p, err := s.Program(name, s.evalClass())
		if err != nil {
			return nil, err
		}
		r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
		if err != nil {
			return nil, fmt.Errorf("harness: vrp %s: %w", name, err)
		}
		return r, nil
	})
}

// VRS returns (cached) the specialization of the evaluation binary at a
// threshold, profiled on the train binary (the paper's methodology).
func (s *Suite) VRS(name string, threshold float64) (*vrs.Result, error) {
	return s.vrss.do(vrsKey{name, threshold}, func() (*vrs.Result, error) {
		trainP, err := s.Program(name, workload.Train)
		if err != nil {
			return nil, err
		}
		refP, err := s.Program(name, s.evalClass())
		if err != nil {
			return nil, err
		}
		r, err := vrs.Specialize(trainP, refP, vrs.Options{Threshold: threshold, Power: s.Power})
		if err != nil {
			return nil, fmt.Errorf("harness: vrs %s@%v: %w", name, threshold, err)
		}
		return r, nil
	})
}

// variantProgram resolves (cached) a named program variant for simulation.
func (s *Suite) variantProgram(name, variant string) (*prog.Program, error) {
	return s.variants.do(variantKey{name, variant}, func() (*prog.Program, error) {
		switch variant {
		case "base":
			return s.Program(name, s.evalClass())
		case "vrp":
			r, err := s.VRP(name, vrp.Useful)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		case "vrp-conv":
			r, err := s.VRP(name, vrp.Conventional)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		default: // "vrs<threshold>"
			var th float64
			if _, err := fmt.Sscanf(variant, "vrs%g", &th); err != nil {
				return nil, fmt.Errorf("harness: unknown variant %q", variant)
			}
			r, err := s.VRS(name, th)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		}
	})
}

// Sim returns (cached) the timing+energy simulation of a program variant
// under a gating mode.
func (s *Suite) Sim(name, variant string, mode power.GatingMode) (*uarch.Result, error) {
	return s.sims.do(simKey{name, variant, mode}, func() (*uarch.Result, error) {
		p, err := s.variantProgram(name, variant)
		if err != nil {
			return nil, err
		}
		r, err := uarch.Run(p, s.Uarch, s.Power, mode)
		if err != nil {
			return nil, fmt.Errorf("harness: sim %s/%s/%v: %w", name, variant, mode, err)
		}
		return r, nil
	})
}

// Baseline returns the ungated simulation of the original binary.
func (s *Suite) Baseline(name string) (*uarch.Result, error) {
	return s.Sim(name, "base", power.GateNone)
}

// EnergySaving returns the fractional whole-processor energy saving of a
// (variant, mode) configuration against the baseline.
func (s *Suite) EnergySaving(name, variant string, mode power.GatingMode) (float64, error) {
	base, err := s.Baseline(name)
	if err != nil {
		return 0, err
	}
	g, err := s.Sim(name, variant, mode)
	if err != nil {
		return 0, err
	}
	_, total := power.Savings(base.Energy, g.Energy)
	return total, nil
}

// ED2Saving returns the fractional energy-delay² improvement of a
// configuration against the baseline.
func (s *Suite) ED2Saving(name, variant string, mode power.GatingMode) (float64, error) {
	base, err := s.Baseline(name)
	if err != nil {
		return 0, err
	}
	g, err := s.Sim(name, variant, mode)
	if err != nil {
		return 0, err
	}
	return power.EnergyDelay2Saving(base.Energy.Total(), base.Cycles, g.Energy.Total(), g.Cycles), nil
}

// DynWidthHistogram executes a program variant and tallies the widths of
// retired width-bearing instructions.
func (s *Suite) DynWidthHistogram(name, variant string) (vrp.WidthHistogram, error) {
	var h vrp.WidthHistogram
	p, err := s.variantProgram(name, variant)
	if err != nil {
		return h, err
	}
	m := emu.New(p)
	m.Sink = widthSink{&h}
	if err := m.Run(); err != nil {
		return h, err
	}
	return h, nil
}

// widthSink tallies retired width-bearing instruction widths.
type widthSink struct{ h *vrp.WidthHistogram }

func (w widthSink) Consume(batch []emu.Event) {
	for i := range batch {
		if vrp.CountsWidth(batch[i].Ins.Op) {
			w.h.Add(batch[i].Ins.Width, 1)
		}
	}
}
