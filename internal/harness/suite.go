// Package harness regenerates every table and figure of the paper's
// evaluation (§4): per-experiment drivers run the workload suite through
// the binary optimizer (VRP/VRS), the out-of-order timing model, and the
// operand-gated power model, then print the same rows and series the paper
// reports. Absolute energy values are model units; the experiments compare
// configurations against the same ungated baseline exactly as the paper
// does.
//
// The suite is concurrency-safe: artifacts are memoized with per-key
// singleflight caches (internal/harness/parallel.go), so independent
// builds, analyses and simulations proceed in parallel, and the
// per-workload loops of the table/figure drivers fan out across a bounded
// worker pool. Reports are assembled in suite order, so results are
// byte-identical to a sequential run (Workers = 1).
//
// Simulation follows "trace once, simulate many": each (workload, variant)
// is functionally emulated exactly once, into a packed retirement trace
// (emu.TraceRecorder); every simulation, width histogram, and record scan
// of that variant replays the cached trace instead of re-emulating. The
// gating modes the evaluation requests for a variant are accrued in one
// fused timing pass (uarch.ReplayModes with a meter bank), so the figure
// matrices cost one emulation and one timing traversal per variant. All
// of it is an accelerator only: traces over budget fall back to live
// emulation, and Unfused restores the pre-trace pipeline for equivalence
// tests and benchmarks. Reports are byte-identical either way.
//
// With a Store attached the trace cache extends across processes: a
// variant's trace is looked up on disk (content-addressed by workload,
// variant, input class and the exact binary's identity hash) before
// anything is emulated, and fresh captures are written back. A warm run
// therefore performs zero suite-level emulations and produces
// byte-identical reports — replay is exact, so the store can never change
// a result, only skip recomputing it.
package harness

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/store"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
	"opgate/internal/workload"
)

// Thresholds are the paper's VRS cost configurations (Fig. 8's "VRS 110nJ"
// … "VRS 30nJ").
var Thresholds = []float64{110, 90, 70, 50, 30}

// Suite caches the expensive artifacts (built programs, analyses,
// transformed binaries, simulation results) across experiments.
type Suite struct {
	// Quick selects the train inputs for evaluation runs, trimming
	// benchmark time; the full suite evaluates on ref inputs like the
	// paper.
	Quick bool

	// Workers bounds the per-workload fan-out of the experiment drivers;
	// 0 means GOMAXPROCS. Workers = 1 reproduces a sequential run.
	Workers int

	// Unfused disables the trace cache and the fused multi-mode pass,
	// reproducing the pre-trace pipeline (one functional emulation per
	// simulation, histogram and record scan). Reports are byte-identical
	// to the fused pipeline; equivalence tests and the fused-vs-unfused
	// benchmarks rely on that.
	Unfused bool

	// Synthetics lists extra workload names — typically progen-generated
	// "syn:family/class/seed" registry names — appended to the paper's
	// eight benchmarks in every experiment driver. Set it before the
	// first driver call; names resolve through workload.ByName.
	Synthetics []string

	// Store, when non-nil, persists packed traces across processes: the
	// trace cache consults it before emulating and writes fresh captures
	// back, so a warm run re-emulates nothing (cmd/ogbench -store,
	// cmd/opgated). Unfused bypasses it along with the in-memory cache.
	Store *store.Store

	// TraceBudget caps the packed-trace bytes cached per (name, variant);
	// <= 0 means emu.DefaultTraceBudget. A variant whose trace exceeds
	// the budget falls back to live emulation (correctness never depends
	// on a capture succeeding). Resident worst case is the sum over the
	// distinct variants an experiment touches: ~43 bytes/event, ~190 MB
	// for the full quick suite, ~700 MB for ref inputs.
	TraceBudget int64

	Uarch uarch.Config
	Power power.Params

	traceLibState

	progs    memo[progKey, *prog.Program]
	vrps     memo[vrpKey, *vrp.Result]
	profiles memo[string, *vrs.Profile]
	vrss     memo[vrsKey, *vrs.Result]
	variants memo[variantKey, *prog.Program]
	traces   memo[variantKey, *emu.Trace]
	families memo[groupKey, []*uarch.Result]
	sims     memo[simKey, *uarch.Result]
	hists    memo[variantKey, vrp.WidthHistogram]

	emuRuns   atomic.Int64
	trainRuns atomic.Int64
}

type progKey struct {
	name  string
	class workload.InputClass
}

type vrpKey struct {
	name string
	mode vrp.Mode
}

type vrsKey struct {
	name      string
	threshold float64
}

type variantKey struct {
	name    string
	variant string // "base", "vrp", "vrp-conv", "vrs<θ>"
}

type simKey struct {
	name    string
	variant string
	mode    power.GatingMode
}

type groupKey struct {
	name    string
	variant string
	group   int // index into modeGroups
}

// NewSuite builds a suite with the paper's machine parameters.
func NewSuite(quick bool) *Suite {
	return &Suite{
		Quick: quick,
		Uarch: uarch.DefaultConfig(),
		Power: power.DefaultParams(),
	}
}

// Names returns the benchmark names in paper order, followed by any
// registered synthetic workloads.
func (s *Suite) Names() []string {
	names := make([]string, 0, 8+len(s.Synthetics))
	for _, w := range workload.All() {
		names = append(names, w.Name)
	}
	return append(names, s.Synthetics...)
}

// evalClass is the input class evaluation runs use.
func (s *Suite) evalClass() workload.InputClass {
	if s.Quick {
		return workload.Train
	}
	return workload.Ref
}

// Program returns (cached) the named benchmark built for an input class.
// Trace-backed workloads resolve to their imported skeleton instead of a
// source build.
func (s *Suite) Program(name string, class workload.InputClass) (*prog.Program, error) {
	return s.progs.do(progKey{name, class}, func() (*prog.Program, error) {
		if workload.IsTrace(name) {
			return s.traceProgram(name, class)
		}
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := w.Build(class)
		if err != nil {
			return nil, fmt.Errorf("harness: build %s/%v: %w", name, class, err)
		}
		return p, nil
	})
}

// VRP returns (cached) the analysis of the evaluation binary. A trace
// skeleton has no analyzable control flow (only the executed path is
// known), so trace-backed workloads are gated here.
func (s *Suite) VRP(name string, mode vrp.Mode) (*vrp.Result, error) {
	if workload.IsTrace(name) {
		return nil, traceOnlyErr(name, "VRP analysis")
	}
	return s.vrps.do(vrpKey{name, mode}, func() (*vrp.Result, error) {
		p, err := s.Program(name, s.evalClass())
		if err != nil {
			return nil, err
		}
		r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
		if err != nil {
			return nil, fmt.Errorf("harness: vrp %s: %w", name, err)
		}
		return r, nil
	})
}

// vrsProfile returns (cached) the threshold-independent VRS profile of a
// workload: the train emulation, block/value profiles, baseline VRP and
// candidate set shared by every threshold's specialization. One profile
// serves the whole threshold grid — a K-point sweep performs exactly one
// train emulation per workload.
func (s *Suite) vrsProfile(name string) (*vrs.Profile, error) {
	if workload.IsTrace(name) {
		// Profiling emulates the train binary live; a trace workload has
		// neither a train binary nor a live form.
		return nil, traceOnlyErr(name, "VRS profiling")
	}
	return s.profiles.do(name, func() (*vrs.Profile, error) {
		trainP, err := s.Program(name, workload.Train)
		if err != nil {
			return nil, err
		}
		refP, err := s.Program(name, s.evalClass())
		if err != nil {
			return nil, err
		}
		s.trainRuns.Add(1)
		pf, err := vrs.NewProfile(trainP, refP, vrs.Options{Power: s.Power})
		if err != nil {
			return nil, fmt.Errorf("harness: vrs profile %s: %w", name, err)
		}
		return pf, nil
	})
}

// VRS returns (cached) the specialization of the evaluation binary at a
// threshold, profiled on the train binary (the paper's methodology). The
// train profile is shared across thresholds, so only the first threshold
// of a workload pays the train emulation.
func (s *Suite) VRS(name string, threshold float64) (*vrs.Result, error) {
	return s.vrss.do(vrsKey{name, threshold}, func() (*vrs.Result, error) {
		pf, err := s.vrsProfile(name)
		if err != nil {
			return nil, err
		}
		r, err := pf.Select(threshold)
		if err != nil {
			return nil, fmt.Errorf("harness: vrs %s@%v: %w", name, threshold, err)
		}
		return r, nil
	})
}

// variantProgram resolves (cached) a named program variant for simulation.
func (s *Suite) variantProgram(name, variant string) (*prog.Program, error) {
	return s.variants.do(variantKey{name, variant}, func() (*prog.Program, error) {
		if workload.IsTrace(name) && variant != "base" {
			// Every non-base variant is a re-optimized rebuild; a trace
			// workload's only binary is its skeleton.
			return nil, traceOnlyErr(name, "variant "+variant)
		}
		switch variant {
		case "base":
			return s.Program(name, s.evalClass())
		case "vrp":
			r, err := s.VRP(name, vrp.Useful)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		case "vrp-conv":
			r, err := s.VRP(name, vrp.Conventional)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		default: // "vrs<threshold>"
			// Parse the whole suffix and insist on the canonical spelling
			// (vrsVariant(th) == variant): Sscanf-style prefix matching
			// would let "vrs50junk" alias vrs50, and a non-canonical
			// spelling like "vrs050" would fork the memo and trace keys of
			// an existing variant.
			suffix, ok := strings.CutPrefix(variant, "vrs")
			if !ok {
				return nil, fmt.Errorf("harness: unknown variant %q", variant)
			}
			th, err := strconv.ParseFloat(suffix, 64)
			if err != nil || !(th > 0) || vrsVariant(th) != variant {
				return nil, fmt.Errorf("harness: unknown variant %q", variant)
			}
			r, err := s.VRS(name, th)
			if err != nil {
				return nil, err
			}
			return r.Apply(), nil
		}
	})
}

// modeGroups partitions the gating modes into the sets the evaluation
// always requests together: the ungated baseline, software gating, the
// two hardware compression schemes (Figures 13/14 read both), and the two
// cooperative schemes (Figure 15 reads both). A group is accrued by one
// fused timing pass over the variant's cached trace, so a figure never
// pays for a meter it does not read, and a pair costs one traversal
// instead of two.
var modeGroups = [...][]power.GatingMode{
	{power.GateNone},
	{power.GateSoftware},
	{power.GateHWSize, power.GateHWSignificance},
	{power.GateCooperative, power.GateCooperativeSig},
}

// modeGroup locates a gating mode: group index and index within it.
func modeGroup(mode power.GatingMode) (int, int) {
	for gi, group := range modeGroups {
		for mi, m := range group {
			if m == mode {
				return gi, mi
			}
		}
	}
	return -1, -1
}

// Emulations returns how many functional emulations the suite has
// performed: trace captures plus any live fallbacks (over-budget traces,
// Unfused mode). The trace layer's contract — at most one emulation per
// (name, variant) — is asserted against this probe in tests. Emulations
// inside VRP/VRS construction (train profiling runs) are not counted.
func (s *Suite) Emulations() int64 { return s.emuRuns.Load() }

// TrainEmulations returns how many VRS train profiling emulations the
// suite has performed — one per workload whose VRS profile has been
// built, however many thresholds were selected from it. A K-threshold
// sweep leaves this at exactly len(Names()): the profile-reuse probe.
func (s *Suite) TrainEmulations() int64 { return s.trainRuns.Load() }

// Sim returns (cached) the timing+energy simulation of a program variant
// under a gating mode. In the fused pipeline the request is served from
// the one fused pass of the mode's evaluation group over the variant's
// cached trace.
func (s *Suite) Sim(name, variant string, mode power.GatingMode) (*uarch.Result, error) {
	if s.Unfused {
		if workload.IsTrace(name) {
			// Unfused means one live emulation per simulation; a trace
			// workload's only runnable form is replay of its records.
			return nil, traceOnlyErr(name, "unfused simulation")
		}
		return s.sims.do(simKey{name, variant, mode}, func() (*uarch.Result, error) {
			p, err := s.variantProgram(name, variant)
			if err != nil {
				return nil, err
			}
			s.emuRuns.Add(1)
			r, err := uarch.Run(p, s.Uarch, s.Power, mode)
			if err != nil {
				return nil, fmt.Errorf("harness: sim %s/%s/%v: %w", name, variant, mode, err)
			}
			return r, nil
		})
	}
	gi, mi := modeGroup(mode)
	if gi < 0 {
		return nil, fmt.Errorf("harness: sim %s/%s: unknown gating mode %v", name, variant, mode)
	}
	rs, err := s.families.do(groupKey{name, variant, gi}, func() ([]*uarch.Result, error) {
		return s.simModes(name, variant, modeGroups[gi])
	})
	if err != nil {
		return nil, err
	}
	return rs[mi], nil
}

// simModes performs one fused timing pass over the variant's retirement
// stream with a meter bank accruing every requested mode. The variant's
// single functional emulation is shared with the trace capture: whichever
// consumer arrives first rides the live pass (tee'd off the recorder);
// everyone after replays the cached trace.
func (s *Suite) simModes(name, variant string, modes []power.GatingMode) ([]*uarch.Result, error) {
	var rode *uarch.Sim
	tr, err := s.traceWith(name, variant, func(*prog.Program) (emu.Sink, error) {
		sim, err := uarch.NewMulti(s.Uarch, s.Power, modes)
		if err != nil {
			return nil, err
		}
		rode = sim
		return sim, nil
	})
	if err != nil {
		return nil, err
	}
	var rs []*uarch.Result
	if rode != nil {
		return rode.FinishAll(), nil
	}
	if tr != nil {
		rs, err = uarch.ReplayModes(tr, s.Uarch, s.Power, modes)
	} else {
		// Capture missed its budget: plain live pass.
		var p *prog.Program
		p, err = s.variantProgram(name, variant)
		if err != nil {
			return nil, err
		}
		s.emuRuns.Add(1)
		rs, err = uarch.RunModes(p, s.Uarch, s.Power, modes)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: sim %s/%s/%v: %w", name, variant, modes, err)
	}
	return rs, nil
}

// traceWith returns (cached) the packed retirement trace of a variant, or
// nil when the capture exceeded the trace budget (the miss is cached too:
// callers fall back to live emulation, once per call site). If this call
// is the one that performs the capture, the rider factory's sink consumes
// the same live pass — the variant's only emulation feeds the recorder
// and its first consumer together. Callers detect whether their rider ran
// via state captured in the factory closure.
func (s *Suite) traceWith(name, variant string, rider func(*prog.Program) (emu.Sink, error)) (*emu.Trace, error) {
	return s.traces.do(variantKey{name, variant}, func() (*emu.Trace, error) {
		if workload.IsTrace(name) {
			// Imported traces are hit-or-error: there is no emulation to
			// fall back to, so the rider never runs (callers take the
			// replay path) and the budget does not apply.
			return s.traceTrace(name, variant)
		}
		p, err := s.variantProgram(name, variant)
		if err != nil {
			return nil, err
		}
		var key store.Key
		var identity store.Hash
		if s.Store != nil {
			identity = store.ProgramIdentity(p)
			key = store.TraceKey(name, variant, s.evalClass().String(), identity)
			if tr, ok := s.Store.GetTrace(key, p, identity); ok {
				// Honour TraceBudget on hits too: a stored trace larger
				// than this suite's cap is skipped, exactly as its capture
				// would have been dropped.
				budget := s.TraceBudget
				if budget <= 0 {
					budget = emu.DefaultTraceBudget
				}
				if tr.Bytes() <= budget {
					return tr, nil
				}
			}
		}
		rec := emu.NewTraceRecorder(p)
		rec.SetBudget(s.TraceBudget)
		m := emu.New(p)
		m.Sink = rec
		if rider != nil {
			sink, err := rider(p)
			if err != nil {
				return nil, err
			}
			m.Sink = emu.Tee(rec, sink)
		}
		s.emuRuns.Add(1)
		if err := m.Run(); err != nil {
			return nil, fmt.Errorf("harness: trace %s/%s: %w", name, variant, err)
		}
		tr, err := rec.Trace()
		if errors.Is(err, emu.ErrTraceBudget) {
			return nil, nil // over budget: remember the miss
		}
		if err != nil {
			// A genuine capture defect is not a cache miss — surfacing it
			// beats silently re-emulating a broken recorder forever.
			return nil, fmt.Errorf("harness: trace %s/%s: %w", name, variant, err)
		}
		if s.Store != nil {
			// Best-effort write-back: a full disk or unwritable root must
			// not fail the run (the store tallies PutErrors).
			_ = s.Store.PutTrace(key, tr, identity)
		}
		return tr, nil
	})
}

// recordsOf streams the packed retirement records of a variant into rs:
// riding the capture pass when this is the variant's first consumer, from
// the cached trace when one exists, else from a live emulation packed on
// the fly. Consumers read op/width/value columns directly and never
// dereference per-event instruction pointers.
func (s *Suite) recordsOf(name, variant string, rs emu.RecSink) error {
	if workload.IsTrace(name) {
		// Always via the trace path, even Unfused: replay is the imported
		// workload's only record source (Unfused would try to emulate).
		tr, err := s.traceWith(name, variant, nil)
		if err != nil {
			return err
		}
		tr.Records(rs)
		return nil
	}
	if !s.Unfused {
		rode := false
		tr, err := s.traceWith(name, variant, func(p *prog.Program) (emu.Sink, error) {
			rode = true
			return emu.NewPacker(p, rs), nil
		})
		if err != nil {
			return err
		}
		if rode {
			return nil
		}
		if tr != nil {
			tr.Records(rs)
			return nil
		}
	}
	p, err := s.variantProgram(name, variant)
	if err != nil {
		return err
	}
	m := emu.New(p)
	m.Sink = emu.NewPacker(p, rs)
	s.emuRuns.Add(1)
	return m.Run()
}

// Baseline returns the ungated simulation of the original binary.
func (s *Suite) Baseline(name string) (*uarch.Result, error) {
	return s.Sim(name, "base", power.GateNone)
}

// EnergySaving returns the fractional whole-processor energy saving of a
// (variant, mode) configuration against the baseline.
func (s *Suite) EnergySaving(name, variant string, mode power.GatingMode) (float64, error) {
	base, err := s.Baseline(name)
	if err != nil {
		return 0, err
	}
	g, err := s.Sim(name, variant, mode)
	if err != nil {
		return 0, err
	}
	_, total := power.Savings(base.Energy, g.Energy)
	return total, nil
}

// ED2Saving returns the fractional energy-delay² improvement of a
// configuration against the baseline.
func (s *Suite) ED2Saving(name, variant string, mode power.GatingMode) (float64, error) {
	base, err := s.Baseline(name)
	if err != nil {
		return 0, err
	}
	g, err := s.Sim(name, variant, mode)
	if err != nil {
		return 0, err
	}
	return power.EnergyDelay2Saving(base.Energy.Total(), base.Cycles, g.Energy.Total(), g.Cycles), nil
}

// DynWidthHistogram returns (cached) the dynamic width histogram of a
// program variant, tallied over the packed trace records (the cached
// trace when available) instead of a fresh emulation per call.
func (s *Suite) DynWidthHistogram(name, variant string) (vrp.WidthHistogram, error) {
	return s.hists.do(variantKey{name, variant}, func() (vrp.WidthHistogram, error) {
		var h vrp.WidthHistogram
		err := s.recordsOf(name, variant, widthSink{&h})
		return h, err
	})
}

// widthSink tallies retired width-bearing instruction widths from the
// packed record's op/width columns (no instruction-pointer chasing).
type widthSink struct{ h *vrp.WidthHistogram }

func (w widthSink) ConsumeRecs(b emu.RecBatch) {
	for i, op := range b.Op {
		if vrp.CountsWidth(isa.Op(op)) {
			w.h.Add(isa.Width(b.WBytes[i]), 1)
		}
	}
}
