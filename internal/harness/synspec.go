package harness

import (
	"fmt"
	"strings"

	"opgate/internal/progen"
	"opgate/internal/workload"
)

// ExpandSynthetics expands a synthetic-workload spec — "all" (the curated
// set), a comma-separated family list, exact "syn:..." names, or
// imported-trace "trace:<name>" names — into validated, deduplicated
// registry names for Suite.Synthetics.
// cmd/ogbench's -synthetic flag and opgated's experiment requests share
// this expansion, so a spec means the same workload set everywhere.
//
// seedClassSet flags an explicitly supplied seed/class, which only
// family-list specs consume; silently dropping them would run workloads
// the caller did not ask for, so that combination is rejected instead.
func ExpandSynthetics(spec string, seed uint64, class string, seedClassSet bool) ([]string, error) {
	if spec == "" {
		if seedClassSet {
			return nil, fmt.Errorf("seed/class require a synthetic family list")
		}
		return nil, nil
	}
	var names []string
	usedSeedClass := false
	if spec == "all" {
		for _, w := range workload.CuratedSynthetics() {
			names = append(names, w.Name)
		}
	} else {
		c, err := progen.ParseClass(class)
		if err != nil {
			return nil, err
		}
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if workload.IsSynthetic(part) || workload.IsTrace(part) {
				// Exact registry names (generated or imported-trace) pass
				// through; ByName validates them below.
				names = append(names, part)
				continue
			}
			f, err := progen.ParseFamily(part)
			if err != nil {
				return nil, fmt.Errorf("synthetic spec: %w", err)
			}
			usedSeedClass = true
			names = append(names, workload.SyntheticName(f, seed, c))
		}
	}
	if seedClassSet && !usedSeedClass {
		return nil, fmt.Errorf("seed/class only apply to synthetic family lists, not %q", spec)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("synthetic spec %q expands to no workloads", spec)
	}
	// Dedupe: a family entry and an exact syn: name can expand to the same
	// workload, which would double-weight it in suite averages.
	seen := make(map[string]bool, len(names))
	uniq := names[:0]
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if _, err := workload.ByName(name); err != nil {
			return nil, err
		}
		uniq = append(uniq, name)
	}
	return uniq, nil
}
