package harness

import (
	"strings"
	"testing"

	"opgate/internal/progen"
	"opgate/internal/workload"
)

// synthSuite returns a quick suite extended with a width-spectrum-spanning
// trio of generated workloads.
func synthSuite() *Suite {
	s := NewSuite(true)
	s.Synthetics = []string{
		workload.SyntheticName(progen.Narrow, 2, progen.Small),
		workload.SyntheticName(progen.Pointer, 2, progen.Small),
		workload.SyntheticName(progen.Wide, 2, progen.Small),
	}
	return s
}

// TestNamesIncludeSynthetics: registered synthetics extend the suite
// order after the paper's eight benchmarks.
func TestNamesIncludeSynthetics(t *testing.T) {
	s := synthSuite()
	names := s.Names()
	if len(names) != 8+len(s.Synthetics) {
		t.Fatalf("suite has %d names, want %d", len(names), 8+len(s.Synthetics))
	}
	if names[0] != "compress" || !strings.HasPrefix(names[8], "syn:") {
		t.Errorf("unexpected suite order: %v", names)
	}
}

// TestSyntheticSuiteFusedMatchesUnfused: with synthetics registered, the
// fused trace/replay pipeline still renders reports byte-identically to
// the unfused pre-trace pipeline — over the full expanded workload list,
// including the VRS specialization matrix (Figure 8).
func TestSyntheticSuiteFusedMatchesUnfused(t *testing.T) {
	fused := synthSuite()
	unfused := synthSuite()
	unfused.Unfused = true

	reports := []struct {
		id  string
		gen func(s *Suite) (*Report, error)
	}{
		{"table3", func(s *Suite) (*Report, error) { return s.Table3(testCtx) }},
		{"fig2", func(s *Suite) (*Report, error) { return s.Figure2(testCtx) }},
		{"fig3", func(s *Suite) (*Report, error) { return s.Figure3(testCtx) }},
		{"fig8", func(s *Suite) (*Report, error) { return s.Figure8(testCtx) }},
		{"fig12", func(s *Suite) (*Report, error) { return s.Figure12(testCtx) }},
	}
	for _, re := range reports {
		rf, err := re.gen(fused)
		if err != nil {
			t.Fatalf("%s fused: %v", re.id, err)
		}
		ru, err := re.gen(unfused)
		if err != nil {
			t.Fatalf("%s unfused: %v", re.id, err)
		}
		if rf.Format() != ru.Format() {
			t.Errorf("%s: fused report differs from unfused on the synthetic suite\n--- fused ---\n%s\n--- unfused ---\n%s",
				re.id, rf.Format(), ru.Format())
		}
	}
	if fused.Emulations() >= unfused.Emulations() {
		t.Errorf("fused pipeline emulated %d times, unfused %d — fusion saved nothing",
			fused.Emulations(), unfused.Emulations())
	}
}

// TestSyntheticRowsAppearInReports: synthetic workloads surface as rows
// in the per-benchmark reports, with sane baseline results.
func TestSyntheticRowsAppearInReports(t *testing.T) {
	s := synthSuite()
	r, err := s.Figure3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3 is a suite average; per-benchmark presence is visible in
	// Table 3's width matrix companion, the baseline sims.
	for _, name := range s.Synthetics {
		base, err := s.Baseline(name)
		if err != nil {
			t.Fatalf("baseline %s: %v", name, err)
		}
		if base.Cycles <= 0 || base.Instructions <= 0 || base.Energy.Total() <= 0 {
			t.Errorf("%s: degenerate baseline (cycles=%d instrs=%d)", name, base.Cycles, base.Instructions)
		}
	}
	if len(r.Rows) == 0 {
		t.Error("Figure 3 rendered no rows")
	}
}

// TestSuiteRejectsUnknownSynthetic: a bad synthetic name surfaces as an
// error from the driver rather than a panic or silent drop.
func TestSuiteRejectsUnknownSynthetic(t *testing.T) {
	s := NewSuite(true)
	s.Synthetics = []string{"syn:quantum/small/1"}
	if _, err := s.Baseline("syn:quantum/small/1"); err == nil {
		t.Error("unknown synthetic family produced a baseline")
	}
}
