package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"opgate/internal/store"
)

// storeSuite builds a quick suite (with one synthetic rider so generated
// workloads cross the persistence boundary too) bound to a store at dir.
func storeSuite(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runAllWithStore(t *testing.T, st *store.Store) (*Suite, []byte) {
	t.Helper()
	s := NewSuite(true)
	s.Synthetics = []string{"syn:narrow/small/1"}
	s.Store = st
	reports, err := s.RunAll(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, reports); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

// TestStoreWarmRunIsEmulationFree is the persistence tentpole: a second
// process (modeled by a fresh Suite over the same store root) regenerates
// every table and figure byte-identically while performing zero functional
// emulations — every trace is served from disk.
func TestStoreWarmRunIsEmulationFree(t *testing.T) {
	dir := t.TempDir()

	cold, coldOut := runAllWithStore(t, storeSuite(t, dir))
	if cold.Emulations() == 0 {
		t.Fatal("cold run performed no emulations — probe broken?")
	}
	coldStats := cold.Store.Stats()
	if coldStats.Hits != 0 || coldStats.Puts == 0 {
		t.Fatalf("cold run store traffic unexpected: %+v", coldStats)
	}

	warmStore := storeSuite(t, dir) // fresh handle: clean stats
	warm, warmOut := runAllWithStore(t, warmStore)
	if n := warm.Emulations(); n != 0 {
		t.Fatalf("warm run performed %d emulations, want 0", n)
	}
	st := warmStore.Stats()
	if st.Misses != 0 || st.Hits == 0 || st.Puts != 0 {
		t.Fatalf("warm run store traffic unexpected (want all hits): %+v", st)
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Fatal("warm-store reports are not byte-identical to the cold run")
	}
}

// TestStoreHitHonoursTraceBudget: a stored trace larger than this suite's
// TraceBudget must be skipped like an over-budget capture, not cached.
func TestStoreHitHonoursTraceBudget(t *testing.T) {
	dir := t.TempDir()
	_, coldOut := runAllWithStore(t, storeSuite(t, dir))

	warm := NewSuite(true)
	warm.Synthetics = []string{"syn:narrow/small/1"}
	warm.Store = storeSuite(t, dir)
	warm.TraceBudget = 1024 // far below any suite trace
	reports, err := warm.RunAll(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, reports); err != nil {
		t.Fatal(err)
	}
	if warm.Emulations() == 0 {
		t.Fatal("tiny TraceBudget still served multi-MB traces from the store")
	}
	if !bytes.Equal(coldOut, buf.Bytes()) {
		t.Fatal("budget-constrained run drifted from the cold report")
	}
}

// TestStoreDamageFallsBackToEmulation: damaging stored objects between
// runs must cost only re-emulation, never correctness — the reports stay
// byte-identical.
func TestStoreDamageFallsBackToEmulation(t *testing.T) {
	dir := t.TempDir()
	_, coldOut := runAllWithStore(t, storeSuite(t, dir))

	// Flip a byte in every stored object.
	objects := filepath.Join(dir, "objects")
	entries, err := os.ReadDir(objects)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no stored objects to damage (err %v)", err)
	}
	for _, e := range entries {
		path := filepath.Join(objects, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm, warmOut := runAllWithStore(t, storeSuite(t, dir))
	if warm.Emulations() == 0 {
		t.Fatal("damaged store still served traces")
	}
	if !bytes.Equal(coldOut, warmOut) {
		t.Fatal("reports drifted after store damage — the store leaked into correctness")
	}
}
