package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		ID: "x", Title: "T", Unit: "fraction",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: []float64{0.5, 0.25}},
			{Label: "r2", Values: []float64{1, 2}},
		},
		Percent: true,
	}
}

// TestReportValueIndex: the index-backed lookup matches the old linear
// scan's semantics — present cells, missing rows/columns, and rows with
// fewer values than columns.
func TestReportValueIndex(t *testing.T) {
	rep := sampleReport()
	rep.Rows = append(rep.Rows, Row{Label: "short", Values: []float64{7}})
	if v, ok := rep.Value("r2", "b"); !ok || v != 2 {
		t.Errorf("Value(r2,b) = %v,%v", v, ok)
	}
	if _, ok := rep.Value("r1", "nope"); ok {
		t.Error("Value found a missing column")
	}
	if _, ok := rep.Value("nope", "a"); ok {
		t.Error("Value found a missing row")
	}
	if v, ok := rep.Value("short", "a"); !ok || v != 7 {
		t.Errorf("Value(short,a) = %v,%v", v, ok)
	}
	if _, ok := rep.Value("short", "b"); ok {
		t.Error("Value found a cell past the row's values")
	}
	// Repeated lookups hit the same built index.
	if v := rep.MustValue("r1", "a"); v != 0.5 {
		t.Errorf("MustValue(r1,a) = %v", v)
	}
}

// TestReportDiff: differing cells, and structural drift in both
// directions, are reported; identical reports diff empty.
func TestReportDiff(t *testing.T) {
	a := sampleReport()
	if ds := a.Diff(sampleReport()); len(ds) != 0 {
		t.Fatalf("identical reports diff: %+v", ds)
	}
	b := sampleReport()
	b.Rows = b.Rows[:1]                                                // dropped row r2
	b.Rows = append(b.Rows, Row{Label: "r3", Values: []float64{9, 9}}) // new row
	ds := a.Diff(b)
	var cells []string
	for _, d := range ds {
		cells = append(cells, d.Row+"/"+d.Column+"/"+d.OnlyIn)
	}
	got := strings.Join(cells, " ")
	want := "r2/a/a r2/b/a r3/a/b r3/b/b"
	if got != want {
		t.Errorf("Diff cells = %q, want %q", got, want)
	}
	c := sampleReport()
	c.Rows[0].Values[1] = 0.75
	ds = a.Diff(c)
	if len(ds) != 1 || ds[0].Row != "r1" || ds[0].Column != "b" || ds[0].A != 0.25 || ds[0].B != 0.75 || ds[0].OnlyIn != "" {
		t.Errorf("changed-cell diff = %+v", ds)
	}
}

// TestReportEqual: every field participates in equality.
func TestReportEqual(t *testing.T) {
	a := sampleReport()
	if !a.Equal(sampleReport()) {
		t.Fatal("identical reports unequal")
	}
	for name, mutate := range map[string]func(*Report){
		"id":      func(r *Report) { r.ID = "y" },
		"title":   func(r *Report) { r.Title = "U" },
		"unit":    func(r *Report) { r.Unit = "nJ" },
		"units":   func(r *Report) { r.Units = []string{"count", "fraction"} },
		"percent": func(r *Report) { r.Percent = false },
		"note":    func(r *Report) { r.Note = "n" },
		"columns": func(r *Report) { r.Columns[0] = "c" },
		"rows":    func(r *Report) { r.Rows[0].Values[0] = 9 },
		"text":    func(r *Report) { r.Text = []string{"line"} },
	} {
		b := sampleReport()
		mutate(b)
		if a.Equal(b) {
			t.Errorf("%s mutation not detected by Equal", name)
		}
	}
}

// TestReportSchemaRejection: the codec refuses wrong or missing schemas
// at both the report and the envelope level.
func TestReportSchemaRejection(t *testing.T) {
	var r Report
	if err := json.Unmarshal([]byte(`{"schema":"opgate.report/v0","id":"x"}`), &r); err == nil {
		t.Error("report decoder accepted a wrong schema")
	}
	if err := json.Unmarshal([]byte(`{"id":"x"}`), &r); err == nil {
		t.Error("report decoder accepted a missing schema")
	}
	if _, err := DecodeReports([]byte(`{"schema":"nope","reports":[]}`)); err == nil {
		t.Error("envelope decoder accepted a wrong schema")
	}
	if _, err := DecodeReports([]byte(`not json`)); err == nil {
		t.Error("envelope decoder accepted junk")
	}
}

// TestTextReportFormat: freeform reports render the header plus their
// lines, and travel through the JSON codec like any other report.
func TestTextReportFormat(t *testing.T) {
	r := &Report{ID: "t", Title: "listing", Unit: "text", Text: []string{"alpha  1", "beta   2"}}
	want := "=== t: listing ===\nalpha  1\nbeta   2\n"
	if got := r.Format(); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var d Report
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(r) || d.Format() != want {
		t.Error("text report drifted through the JSON codec")
	}
}
