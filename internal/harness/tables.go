package harness

import (
	"context"
	"fmt"

	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/vrp"
)

// Table1 regenerates the ALU energy-savings matrix: energy saved moving an
// ALU operation from a source width (row) to a destination width (column).
// The power model's width profile is calibrated so these match the paper's
// integers exactly (6/5/3/2/1 nJ pattern).
func (s *Suite) Table1() *Report {
	t := power.ALUSavingsTable(s.Power)
	names := []string{"64", "32", "16", "8"}
	rep := &Report{
		ID:      "table1",
		Title:   "Energy savings for ALU operations (nJ), source width (row) -> dest width (column)",
		Unit:    "nJ",
		Columns: names,
	}
	for i, src := range names {
		rep.Rows = append(rep.Rows, Row{Label: "src " + src, Values: t[i][:]})
	}
	return rep
}

// Table2 reports the machine parameters the simulator implements, as a
// freeform-text listing (the paper's Table 2 is prose, not a matrix).
func (s *Suite) Table2() *Report {
	c := s.Uarch
	mem := c.Memory
	f := fmt.Sprintf
	return &Report{
		ID:    "table2",
		Title: "Machine parameters",
		Unit:  "text",
		Text: []string{
			f("Fetch width              %d instructions", c.FetchWidth),
			f("I-cache                  %dKB, %d-way, %d-byte lines, %d-cycle hit",
				mem.L1I.SizeBytes>>10, mem.L1I.Assoc, mem.L1I.LineBytes, mem.L1I.HitCycles),
			f("Branch predictor         gshare %dK x 2-bit + bimodal %dK, chooser %dK, %d-bit history",
				c.Predictor.GshareEntries>>10, c.Predictor.BimodalEntries>>10,
				c.Predictor.ChooserEntries>>10, c.Predictor.HistoryBits),
			f("Decode/rename width      %d instructions", c.DecodeWidth),
			f("Max in-flight            %d", c.WindowSize),
			f("Retire width             %d instructions", c.RetireWidth),
			f("Functional units         %d intALU + %d int mul/div", c.IntALUs, c.IntMulDiv),
			f("Issue width              %d, out-of-order, window based", c.IssueWidth),
			f("D-cache L1               %dKB, %d-way, %d-byte lines, %d-cycle hit",
				mem.L1D.SizeBytes>>10, mem.L1D.Assoc, mem.L1D.LineBytes, mem.L1D.HitCycles),
			f("L2                       %dKB, %d-way, %d-byte lines, %d-cycle hit; mem %d+%d cycles",
				mem.L2.SizeBytes>>10, mem.L2.Assoc, mem.L2.LineBytes, mem.L2.HitCycles,
				mem.MemFirstChunk, mem.MemInterChunk),
			f("Physical registers       %d", c.PhysRegs),
		},
	}
}

// Table3 regenerates the distribution of operation types: for each class,
// its share of dynamic instructions and the width split within the class,
// measured on the proposed-VRP binaries across the suite.
func (s *Suite) Table3(ctx context.Context) (*Report, error) {
	type tally struct {
		perClass   [isa.NumClasses][4]int64
		classTotal [isa.NumClasses]int64
		total      int64
	}
	tallies, err := mapNames(ctx, s, func(name string) (*tally, error) {
		t := new(tally)
		err := s.recordsOf(name, "vrp", emu.RecFunc(func(b emu.RecBatch) {
			for i, opb := range b.Op {
				op := isa.Op(opb)
				if !vrp.CountsWidth(op) {
					continue
				}
				cls := isa.ClassOf(op)
				wi := widthIndex(isa.Width(b.WBytes[i]))
				t.perClass[cls][wi]++
				t.classTotal[cls]++
				t.total++
			}
		}))
		if err != nil {
			return nil, err
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}

	var perClass [isa.NumClasses][4]int64
	var classTotal [isa.NumClasses]int64
	var total int64
	for _, t := range tallies {
		for cls := range t.perClass {
			for wi := range t.perClass[cls] {
				perClass[cls][wi] += t.perClass[cls][wi]
			}
			classTotal[cls] += t.classTotal[cls]
		}
		total += t.total
	}

	rep := &Report{
		ID:      "table3",
		Title:   "Distribution of operation types (dynamic, after proposed VRP)",
		Unit:    "fraction",
		Columns: []string{"% of instrs", "64b", "32b", "16b", "8b"},
		Percent: true,
	}
	order := []isa.Class{isa.ClassAdd, isa.ClassMask, isa.ClassCmp, isa.ClassShift,
		isa.ClassSub, isa.ClassLogic, isa.ClassCmov, isa.ClassMul,
		isa.ClassLoad, isa.ClassStore}
	for _, cls := range order {
		if classTotal[cls] == 0 {
			continue
		}
		ct := float64(classTotal[cls])
		rep.Rows = append(rep.Rows, Row{
			Label: cls.String(),
			Values: []float64{
				ct / float64(total),
				float64(perClass[cls][3]) / ct,
				float64(perClass[cls][2]) / ct,
				float64(perClass[cls][1]) / ct,
				float64(perClass[cls][0]) / ct,
			},
		})
	}
	rep.Note = "paper's Table 3 covers SpecInt95; shares here are the synthetic suite's"
	return rep, nil
}

func widthIndex(w isa.Width) int {
	switch w {
	case isa.W8:
		return 0
	case isa.W16:
		return 1
	case isa.W32:
		return 2
	default:
		return 3
	}
}
