package harness

import (
	"context"

	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/uarch"
	"opgate/internal/vrp"
)

// AblationOpcodeSets quantifies §4.3's design decision: how much of the
// gating benefit depends on which narrow opcodes the ISA encodes. Three
// points: the unextended base ISA (only memory and mask operations carry
// widths), the paper's chosen extension set, and an idealised ISA with
// every class encodable at every width.
func (s *Suite) AblationOpcodeSets(ctx context.Context) (*Report, error) {
	sets := []struct {
		label string
		set   *isa.OpcodeSet
	}{
		{"base ISA (no ALU widths)", isa.BaseOpcodeSet()},
		{"paper extension set", isa.PaperOpcodeSet()},
		{"ideal (all widths)", isa.FullOpcodeSet()},
	}
	rep := &Report{
		ID:      "ablation-opcodes",
		Title:   "Opcode-set ablation: energy savings and 64-bit share under VRP",
		Unit:    "fraction",
		Columns: []string{"energy saved", "64-bit share"},
		Percent: true,
	}
	type point struct {
		saved float64
		hist  vrp.WidthHistogram
	}
	for _, cfg := range sets {
		points, err := mapNames(ctx, s, func(name string) (point, error) {
			var pt point
			p, err := s.Program(name, s.evalClass())
			if err != nil {
				return pt, err
			}
			r, err := vrp.Analyze(p, vrp.Options{Mode: vrp.Useful, Opcodes: cfg.set})
			if err != nil {
				return pt, err
			}
			q := r.Apply()
			base, err := s.Baseline(name)
			if err != nil {
				return pt, err
			}
			g, err := uarch.Run(q, s.Uarch, s.Power, power.GateSoftware)
			if err != nil {
				return pt, err
			}
			_, pt.saved = power.Savings(base.Energy, g.Energy)
			pt.hist, err = dynHistogramOf(q)
			return pt, err
		})
		if err != nil {
			return nil, err
		}
		var savedSum float64
		var hist vrp.WidthHistogram
		for _, pt := range points {
			savedSum += pt.saved
			for i := 0; i < 4; i++ {
				hist.Count[i] += pt.hist.Count[i]
			}
		}
		rep.Rows = append(rep.Rows, Row{
			Label:  cfg.label,
			Values: []float64{savedSum / float64(len(points)), hist.Fraction(3)},
		})
	}
	rep.Note = "the paper's set should capture most of the ideal set's benefit (§4.3: few 16-bit ops, MUL not worth encoding)"
	return rep, nil
}

// AblationAnalysis quantifies the contribution of the paper's analysis
// machinery: useful ranges (§2.2.5), loop trip counts (§2.3) and branch
// refinement (§2.2.4), measured as the 64-bit dynamic share when each is
// removed.
func (s *Suite) AblationAnalysis(ctx context.Context) (*Report, error) {
	configs := []struct {
		label string
		opts  vrp.Options
	}{
		{"full (proposed VRP)", vrp.Options{Mode: vrp.Useful}},
		{"no useful ranges", vrp.Options{Mode: vrp.Conventional}},
		{"no loop analysis", vrp.Options{Mode: vrp.Useful, DisableLoopAnalysis: true}},
		{"no branch refinement", vrp.Options{Mode: vrp.Useful, DisableBranchRefinement: true}},
		{"ranges only (all off)", vrp.Options{Mode: vrp.Conventional,
			DisableLoopAnalysis: true, DisableBranchRefinement: true}},
	}
	rep := &Report{
		ID:      "ablation-analysis",
		Title:   "Analysis ablation: dynamic 64-bit share",
		Unit:    "fraction",
		Columns: []string{"64-bit share"},
		Percent: true,
	}
	for _, cfg := range configs {
		hists, err := mapNames(ctx, s, func(name string) (vrp.WidthHistogram, error) {
			var h vrp.WidthHistogram
			p, err := s.Program(name, s.evalClass())
			if err != nil {
				return h, err
			}
			r, err := vrp.Analyze(p, cfg.opts)
			if err != nil {
				return h, err
			}
			return dynHistogramOf(r.Apply())
		})
		if err != nil {
			return nil, err
		}
		var hist vrp.WidthHistogram
		for _, h := range hists {
			for i := 0; i < 4; i++ {
				hist.Count[i] += h.Count[i]
			}
		}
		rep.Rows = append(rep.Rows, Row{Label: cfg.label, Values: []float64{hist.Fraction(3)}})
	}
	return rep, nil
}

// dynHistogramOf runs a program and tallies retired width-bearing
// instruction widths (packed on the fly; ablation variants are one-off
// programs outside the suite's trace cache).
func dynHistogramOf(p *prog.Program) (vrp.WidthHistogram, error) {
	var h vrp.WidthHistogram
	m := emu.New(p)
	m.Sink = emu.NewPacker(p, widthSink{&h})
	if err := m.Run(); err != nil {
		return h, err
	}
	return h, nil
}
