package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapNamesRefusesCanceledContext: a context canceled before the
// fan-out begins schedules zero per-workload work.
func TestMapNamesRefusesCanceledContext(t *testing.T) {
	s := NewSuite(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := mapNames(ctx, s, func(name string) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mapNames returned %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("canceled fan-out still scheduled %d workloads", n)
	}
}

// TestMapNamesStopsSchedulingMidSuite: cancellation during the fan-out
// stops scheduling further workloads (in-flight ones drain) and reports
// the context's error. Workers=1 serialises scheduling so the count is
// meaningful.
func TestMapNamesStopsSchedulingMidSuite(t *testing.T) {
	s := NewSuite(true)
	s.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	_, err := mapNames(ctx, s, func(name string) (int, error) {
		if calls.Add(1) == 2 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mapNames returned %v, want context.Canceled", err)
	}
	// The scheduler may race one extra workload past the cancellation,
	// but nowhere near the full suite.
	if n, total := calls.Load(), int32(len(s.Names())); n >= total {
		t.Errorf("scheduled all %d workloads despite mid-suite cancellation", total)
	}
}

// TestRunExperimentCanceled: the experiment surface propagates
// cancellation as the context's error, for every experiment — including
// the pure in-memory ones, which never reach a fan-out.
func TestRunExperimentCanceled(t *testing.T) {
	s := NewSuite(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range Experiments() {
		if _, err := s.RunExperiment(ctx, e.ID, 50); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: RunExperiment returned %v, want context.Canceled", e.ID, err)
		}
	}
	if _, err := s.RunAll(ctx, 50); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAll returned %v, want context.Canceled", err)
	}
	if n := s.Emulations(); n != 0 {
		t.Errorf("canceled runs still performed %d emulations", n)
	}
}
