package harness

import (
	"testing"
)

// TestFigureMatricesEmulateOncePerVariant is the emulation-count probe of
// the trace layer's contract: regenerating the Figure 3 and Figure 8
// matrices must functionally emulate each (workload, variant) exactly
// once — the trace capture — with every simulation and every later reuse
// (histograms, repeated calls) served from the cache.
func TestFigureMatricesEmulateOncePerVariant(t *testing.T) {
	s := NewSuite(true)
	if _, err := s.Figure3(testCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Figure8(testCtx); err != nil {
		t.Fatal(err)
	}
	// Variants touched: base, vrp, and the five VRS thresholds.
	variants := int64(2 + len(Thresholds))
	want := int64(len(s.Names())) * variants
	if got := s.Emulations(); got != want {
		t.Errorf("Figure 3+8 matrices performed %d emulations, want %d (one per workload+variant)", got, want)
	}

	// The width histograms of Figure 2 read the cached traces: only the
	// one variant not yet traced (vrp-conv) costs new emulations.
	if _, err := s.Figure2(testCtx); err != nil {
		t.Fatal(err)
	}
	want += int64(len(s.Names()))
	if got := s.Emulations(); got != want {
		t.Errorf("after Figure 2: %d emulations, want %d (only vrp-conv traces added)", got, want)
	}

	// DynWidthHistogram is memoized and trace-backed: repeated calls add
	// no emulations at all.
	for _, name := range s.Names() {
		if _, err := s.DynWidthHistogram(name, "vrp"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DynWidthHistogram(name, "vrp"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Emulations(); got != want {
		t.Errorf("DynWidthHistogram re-emulated: %d emulations, want %d", got, want)
	}
}

// TestFusedReportsMatchUnfused: the fused trace/replay pipeline must
// render every report byte-identically to the pre-trace pipeline (one
// live emulation per simulation, histogram and scan).
func TestFusedReportsMatchUnfused(t *testing.T) {
	fused := NewSuite(true)
	unfused := NewSuite(true)
	unfused.Unfused = true

	reports := []struct {
		id  string
		gen func(s *Suite) (*Report, error)
	}{
		{"table3", func(s *Suite) (*Report, error) { return s.Table3(testCtx) }},
		{"fig2", func(s *Suite) (*Report, error) { return s.Figure2(testCtx) }},
		{"fig3", func(s *Suite) (*Report, error) { return s.Figure3(testCtx) }},
		{"fig6", func(s *Suite) (*Report, error) { return s.Figure6(testCtx, 50) }},
		{"fig8", func(s *Suite) (*Report, error) { return s.Figure8(testCtx) }},
		{"fig12", func(s *Suite) (*Report, error) { return s.Figure12(testCtx) }},
		{"fig13", func(s *Suite) (*Report, error) { return s.Figure13(testCtx) }},
		{"fig15", func(s *Suite) (*Report, error) { return s.Figure15(testCtx, 50) }},
	}
	for _, re := range reports {
		rf, err := re.gen(fused)
		if err != nil {
			t.Fatalf("%s fused: %v", re.id, err)
		}
		ru, err := re.gen(unfused)
		if err != nil {
			t.Fatalf("%s unfused: %v", re.id, err)
		}
		if rf.Format() != ru.Format() {
			t.Errorf("%s: fused report differs from unfused\n--- fused ---\n%s\n--- unfused ---\n%s",
				re.id, rf.Format(), ru.Format())
		}
	}
	if fused.Emulations() >= unfused.Emulations() {
		t.Errorf("fused pipeline emulated %d times, unfused %d — fusion saved nothing",
			fused.Emulations(), unfused.Emulations())
	}
}
