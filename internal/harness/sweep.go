package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"strings"
)

// SweepSchema tags the canonical encoding of a threshold sweep: one
// experiment evaluated across a grid of VRS thresholds, with the
// threshold as a first-class report axis.
const SweepSchema = "opgate.sweep/v1"

// SweepReport is one experiment's report grid across a threshold sweep:
// Cells[i] is the experiment's Report at Thresholds[i]. Each cell is
// bit-identical to the report a plain single-threshold run produces — the
// sweep changes how the grid is computed (one shared train profile per
// workload instead of one per threshold), never what it contains.
type SweepReport struct {
	ID         string
	Title      string
	Thresholds []float64
	Cells      []*Report
}

// Cell returns the report at one threshold of the grid.
func (sw *SweepReport) Cell(threshold float64) (*Report, bool) {
	for i, th := range sw.Thresholds {
		if th == threshold && i < len(sw.Cells) {
			return sw.Cells[i], true
		}
	}
	return nil, false
}

// Equal reports whether two sweeps carry identical data (the JSON
// round-trip invariant).
func (sw *SweepReport) Equal(o *SweepReport) bool {
	if sw.ID != o.ID || sw.Title != o.Title ||
		!slices.Equal(sw.Thresholds, o.Thresholds) || len(sw.Cells) != len(o.Cells) {
		return false
	}
	for i := range sw.Cells {
		if !sw.Cells[i].Equal(o.Cells[i]) {
			return false
		}
	}
	return true
}

// SweepCellDiff is one differing cell between two sweeps, locating the
// disagreement on the threshold axis as well as (row, column).
type SweepCellDiff struct {
	Threshold float64 `json:"threshold"`
	CellDiff
}

// Diff compares two sweeps cell-by-cell: per-threshold report diffs in
// sw's grid order, then thresholds only the other sweep has. An empty
// result means the grids agree everywhere.
func (sw *SweepReport) Diff(o *SweepReport) []SweepCellDiff {
	var ds []SweepCellDiff
	empty := &Report{}
	for i, th := range sw.Thresholds {
		oc, ok := o.Cell(th)
		if !ok {
			oc = empty // whole threshold missing: every cell is OnlyIn "a"
		}
		for _, d := range sw.Cells[i].Diff(oc) {
			ds = append(ds, SweepCellDiff{th, d})
		}
	}
	for i, th := range o.Thresholds {
		if _, ok := sw.Cell(th); ok {
			continue
		}
		for _, d := range empty.Diff(o.Cells[i]) {
			ds = append(ds, SweepCellDiff{th, d})
		}
	}
	return ds
}

// Format renders the sweep as text: a grid header, then each threshold's
// report in grid order (the same table a single-threshold run prints).
func (sw *SweepReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==== sweep %s: %s (thresholds %s) ====\n",
		sw.ID, sw.Title, FormatThresholds(sw.Thresholds))
	for i, th := range sw.Thresholds {
		fmt.Fprintf(&sb, "--- threshold %g ---\n", th)
		sb.WriteString(sw.Cells[i].Format())
		if i < len(sw.Thresholds)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// FormatThresholds renders a grid as a comma-separated list with
// vrsVariant's %g formatting — the canonical spelling shared by report
// labels, store keys, and sweep job specs.
func FormatThresholds(thresholds []float64) string {
	parts := make([]string, len(thresholds))
	for i, th := range thresholds {
		parts[i] = fmt.Sprintf("%g", th)
	}
	return strings.Join(parts, ",")
}

// sweepJSON is the canonical wire form: fixed field order, schema first.
type sweepJSON struct {
	Schema     string    `json:"schema"`
	ID         string    `json:"id"`
	Title      string    `json:"title"`
	Thresholds []float64 `json:"thresholds"`
	Cells      []*Report `json:"cells"`
}

// MarshalJSON encodes the sweep canonically (deterministic field order
// and float formatting, so encode(decode(b)) == b).
func (sw *SweepReport) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepJSON{
		Schema: SweepSchema, ID: sw.ID, Title: sw.Title,
		Thresholds: sw.Thresholds, Cells: sw.Cells,
	})
}

// UnmarshalJSON decodes a canonical sweep, refusing unknown schemas.
func (sw *SweepReport) UnmarshalJSON(data []byte) error {
	var j sweepJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Schema != SweepSchema {
		return fmt.Errorf("harness: sweep schema %q, want %q", j.Schema, SweepSchema)
	}
	sw.ID, sw.Title, sw.Thresholds, sw.Cells = j.ID, j.Title, j.Thresholds, j.Cells
	return nil
}

// EncodeSweep renders a sweep in the canonical machine-readable form: a
// one-line JSON document terminated by a newline, byte-stable under
// decode/encode so it can be content-addressed and diffed.
func EncodeSweep(sw *SweepReport) ([]byte, error) {
	b, err := json.Marshal(sw)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSweep parses a canonical sweep encoding.
func DecodeSweep(data []byte) (*SweepReport, error) {
	sw := new(SweepReport)
	if err := json.Unmarshal(data, sw); err != nil {
		return nil, fmt.Errorf("harness: decode sweep: %w", err)
	}
	return sw, nil
}

// ValidThresholds rejects grids no sweep can evaluate: empty, non-positive
// values (WithThreshold's rule), or duplicates (which would make cell
// addressing by threshold ambiguous).
func ValidThresholds(thresholds []float64) error {
	if len(thresholds) == 0 {
		return fmt.Errorf("empty threshold grid")
	}
	for i, th := range thresholds {
		if !(th > 0) {
			return fmt.Errorf("threshold %g: must be > 0", th)
		}
		if slices.Index(thresholds, th) != i {
			return fmt.Errorf("duplicate threshold %g in grid", th)
		}
	}
	return nil
}

// Sweep evaluates one experiment across a threshold grid, paying the
// threshold-independent work once: the (workload × threshold) VRS grid is
// pre-built over the bounded worker pool through the shared per-workload
// train profile (one train emulation per workload, however many
// thresholds), and the baseline/VRP artifacts every cell reads are shared
// through the ordinary suite memos. The cells themselves are then built
// in grid order with the exact single-threshold drivers, so each is
// byte-identical to a plain RunExperiment at that threshold.
func (s *Suite) Sweep(ctx context.Context, id string, thresholds []float64) (*SweepReport, error) {
	e, ok := LookupExperiment(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	if err := ValidThresholds(thresholds); err != nil {
		return nil, fmt.Errorf("harness: sweep %s: %w", id, err)
	}
	if e.Thresholded {
		// Warm the specialization grid concurrently. Threshold-independent
		// experiments skip this: they never touch VRS at the requested
		// threshold, and warming would add train work a plain run avoids.
		type gridCell struct {
			name string
			th   float64
		}
		grid := make([]gridCell, 0, len(s.Names())*len(thresholds))
		for _, name := range s.Names() {
			for _, th := range thresholds {
				grid = append(grid, gridCell{name, th})
			}
		}
		if _, err := mapSlice(ctx, s.workers(), grid, func(c gridCell) (struct{}, error) {
			_, err := s.VRS(c.name, c.th)
			return struct{}{}, err
		}); err != nil {
			return nil, err
		}
	}
	cells := make([]*Report, len(thresholds))
	for i, th := range thresholds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := e.Run(ctx, s, th)
		if err != nil {
			return nil, fmt.Errorf("%s@%g: %w", id, th, err)
		}
		cells[i] = r
	}
	return &SweepReport{
		ID: e.ID, Title: e.Title,
		Thresholds: slices.Clone(thresholds),
		Cells:      cells,
	}, nil
}
