package harness

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/store"
	"opgate/internal/tracework"
	"opgate/internal/vrp"
	"opgate/internal/workload"
)

// exportNative builds a workload at a class, captures its retirement
// trace, and encodes it under the native binary's identity — exactly
// what `ogtrace export` emits.
func exportNative(t *testing.T, name string, class workload.InputClass) []byte {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Build(class)
	if err != nil {
		t.Fatal(err)
	}
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return store.EncodeTrace(tr, store.ProgramIdentity(p))
}

// TestTraceWorkloadRoundTrip pins the subsystem's core invariant: a
// native workload exported to a trace blob and re-imported under a
// "trace:" name reproduces replay-only experiments byte-identically —
// and the traced run performs zero suite-level emulations, because every
// record it consumes is replayed from the store. Figure 12 is the probe:
// it aggregates the record streams of every suite workload into one row,
// so the native run (kernels + syn twin) and the traced run (kernels +
// trace: twin) must agree bit-for-bit iff the imported trace replays the
// native record stream exactly.
func TestTraceWorkloadRoundTrip(t *testing.T) {
	const twin = "syn:narrow/small/5"
	st := storeSuite(t, t.TempDir())

	// Native pass: kernels + the synthetic twin, traces captured to the
	// store (this also warms the kernels for the traced pass).
	native := NewSuite(true)
	native.Store = st
	native.Synthetics = []string{twin}
	repN, err := native.Figure12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	outN, err := EncodeReports([]*Report{repN})
	if err != nil {
		t.Fatal(err)
	}

	// Export the twin natively, ingest, register under a trace name.
	lib := tracework.NewLibrary(st)
	ing, err := tracework.Ingest(exportNative(t, twin, workload.Train))
	if err != nil {
		t.Fatal(err)
	}
	name := workload.TraceName("narrowtwin")
	if err := lib.Put(name, workload.Train, ing); err != nil {
		t.Fatal(err)
	}

	// Traced pass: same kernels, the twin now served purely by replay.
	traced := NewSuite(true)
	traced.Store = st
	traced.Synthetics = []string{name}
	repT, err := traced.Figure12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	outT, err := EncodeReports([]*Report{repT})
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(outN, outT) {
		t.Errorf("fig12 drifted across the trace round trip:\nnative:\n%s\ntraced:\n%s", outN, outT)
	}
	if n := traced.Emulations(); n != 0 {
		t.Errorf("traced run performed %d emulations, want 0", n)
	}
}

// TestTraceWorkloadGates: everything that needs a live emulation refuses
// a trace-backed workload with an error wrapping workload.ErrTraceOnly,
// and lookups of names never imported surface *NotImportedError.
func TestTraceWorkloadGates(t *testing.T) {
	st := storeSuite(t, t.TempDir())
	lib := tracework.NewLibrary(st)
	ing, err := tracework.Ingest(exportNative(t, "syn:narrow/small/5", workload.Train))
	if err != nil {
		t.Fatal(err)
	}
	name := workload.TraceName("gated")
	if err := lib.Put(name, workload.Train, ing); err != nil {
		t.Fatal(err)
	}

	s := NewSuite(true)
	s.Store = st

	// The replay path works.
	if _, err := s.Sim(name, "base", power.GateHWSize); err != nil {
		t.Fatalf("base replay simulation failed: %v", err)
	}
	if _, err := s.DynWidthHistogram(name, "base"); err != nil {
		t.Fatalf("width histogram over replay failed: %v", err)
	}
	if n := s.Emulations(); n != 0 {
		t.Fatalf("replay paths performed %d emulations", n)
	}

	// The live-emulation paths are gated.
	gated := []struct {
		op  string
		err error
	}{
		{"vrp", func() error { _, err := s.VRP(name, vrp.Useful); return err }()},
		{"vrs", func() error { _, err := s.VRS(name, 50); return err }()},
		{"vrp variant", func() error { _, err := s.Sim(name, "vrp", power.GateSoftware); return err }()},
		{"vrs variant", func() error { _, err := s.Sim(name, "vrs50", power.GateSoftware); return err }()},
	}
	for _, c := range gated {
		if !errors.Is(c.err, workload.ErrTraceOnly) {
			t.Errorf("%s: got %v, want ErrTraceOnly", c.op, c.err)
		}
	}
	unfused := NewSuite(true)
	unfused.Store = st
	unfused.Unfused = true
	if _, err := unfused.Sim(name, "base", power.GateNone); !errors.Is(err, workload.ErrTraceOnly) {
		t.Errorf("unfused sim: got %v, want ErrTraceOnly", err)
	}

	// Never-imported names surface the typed not-imported error.
	var nie *tracework.NotImportedError
	if _, err := s.Baseline(workload.TraceName("ghost")); !errors.As(err, &nie) {
		t.Errorf("ghost lookup: got %v, want *NotImportedError", err)
	}
	// Without a store there is nothing to serve traces from.
	dry := NewSuite(true)
	if _, err := dry.Baseline(name); err == nil {
		t.Error("suite without a store served a trace workload")
	}
}
