package harness

import (
	"fmt"
	"io"
)

// Experiment is one regenerable unit of the evaluation: a table, figure
// or ablation, addressable by the ID ogbench exposes.
type Experiment struct {
	ID  string
	Run func(s *Suite, w io.Writer, threshold float64) error
}

// showReport renders a generated report (or propagates its error).
func showReport(w io.Writer, r *Report, err error) error {
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, r.Format())
	return err
}

// Experiments returns every experiment in the paper's presentation order.
// cmd/ogbench and the golden-report regression test both drive this list,
// so a new experiment is automatically exposed and regression-covered.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", func(s *Suite, w io.Writer, _ float64) error {
			_, err := fmt.Fprintln(w, s.Table1().Format())
			return err
		}},
		{"table2", func(s *Suite, w io.Writer, _ float64) error {
			_, err := fmt.Fprintln(w, s.Table2())
			return err
		}},
		{"table3", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Table3(); return showReport(w, r, err) }},
		{"fig2", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure2(); return showReport(w, r, err) }},
		{"fig3", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure3(); return showReport(w, r, err) }},
		{"fig4", func(s *Suite, w io.Writer, th float64) error { r, err := s.Figure4(th); return showReport(w, r, err) }},
		{"fig5", func(s *Suite, w io.Writer, th float64) error { r, err := s.Figure5(th); return showReport(w, r, err) }},
		{"fig6", func(s *Suite, w io.Writer, th float64) error { r, err := s.Figure6(th); return showReport(w, r, err) }},
		{"fig7", func(s *Suite, w io.Writer, th float64) error { r, err := s.Figure7(th); return showReport(w, r, err) }},
		{"fig8", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure8(); return showReport(w, r, err) }},
		{"fig9", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure9(); return showReport(w, r, err) }},
		{"fig10", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure10(); return showReport(w, r, err) }},
		{"fig11", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure11(); return showReport(w, r, err) }},
		{"fig12", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure12(); return showReport(w, r, err) }},
		{"fig13", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure13(); return showReport(w, r, err) }},
		{"fig14", func(s *Suite, w io.Writer, _ float64) error { r, err := s.Figure14(); return showReport(w, r, err) }},
		{"fig15", func(s *Suite, w io.Writer, th float64) error { r, err := s.Figure15(th); return showReport(w, r, err) }},
		{"ablation-opcodes", func(s *Suite, w io.Writer, _ float64) error {
			r, err := s.AblationOpcodeSets()
			return showReport(w, r, err)
		}},
		{"ablation-analysis", func(s *Suite, w io.Writer, _ float64) error {
			r, err := s.AblationAnalysis()
			return showReport(w, r, err)
		}},
	}
}

// RunExperiment renders one experiment by ID into w.
func (s *Suite) RunExperiment(w io.Writer, id string, threshold float64) error {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(s, w, threshold)
		}
	}
	return fmt.Errorf("unknown experiment %q", id)
}

// RunAll renders every experiment in order into w — the exact output of
// `ogbench -experiment all`, which the golden-report regression test pins.
func (s *Suite) RunAll(w io.Writer, threshold float64) error {
	for _, e := range Experiments() {
		if err := e.Run(s, w, threshold); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
