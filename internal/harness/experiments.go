package harness

import (
	"context"
	"fmt"
)

// Experiment is one regenerable unit of the evaluation — a table, figure
// or ablation — as a first-class descriptor: the ID ogbench and opgated
// expose, the title consumers can list without running anything, and a
// builder returning the structured Report. Rendering is the caller's
// choice (TextRenderer, JSONRenderer, or any custom Renderer).
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, s *Suite, threshold float64) (*Report, error)
	// Thresholded marks experiments whose report depends on the requested
	// VRS threshold (the others either need no VRS at all or evaluate the
	// paper's fixed grid). Sweep drivers pre-build the per-threshold VRS
	// grid only for these.
	Thresholded bool
}

// Experiments returns every experiment in the paper's presentation order.
// cmd/ogbench, cmd/opgated and the golden-report regression tests all
// drive this list, so a new experiment is automatically exposed and
// regression-covered. Titles mirror the built reports exactly (asserted
// in tests).
func Experiments() []Experiment {
	pure := func(fn func(s *Suite) *Report) func(context.Context, *Suite, float64) (*Report, error) {
		return func(_ context.Context, s *Suite, _ float64) (*Report, error) { return fn(s), nil }
	}
	fixed := func(fn func(s *Suite, ctx context.Context) (*Report, error)) func(context.Context, *Suite, float64) (*Report, error) {
		return func(ctx context.Context, s *Suite, _ float64) (*Report, error) { return fn(s, ctx) }
	}
	return []Experiment{
		{"table1", "Energy savings for ALU operations (nJ), source width (row) -> dest width (column)",
			pure((*Suite).Table1), false},
		{"table2", "Machine parameters", pure((*Suite).Table2), false},
		{"table3", "Distribution of operation types (dynamic, after proposed VRP)",
			fixed((*Suite).Table3), false},
		{"fig2", "Dynamic instruction distribution by width: conventional vs proposed VRP",
			fixed((*Suite).Figure2), false},
		{"fig3", "Energy savings with VRP (per processor structure, suite average)",
			fixed((*Suite).Figure3), false},
		{"fig4", "Distribution of the points profiled after specialization",
			func(ctx context.Context, s *Suite, th float64) (*Report, error) { return s.Figure4(ctx, th) }, true},
		{"fig5", "Distribution of the specialized instructions at compile time",
			func(ctx context.Context, s *Suite, th float64) (*Report, error) { return s.Figure5(ctx, th) }, true},
		{"fig6", "Distribution of run-time instructions: specialized vs guard comparisons",
			func(ctx context.Context, s *Suite, th float64) (*Report, error) { return s.Figure6(ctx, th) }, true},
		{"fig7", "Run-time instructions according to width",
			func(ctx context.Context, s *Suite, th float64) (*Report, error) { return s.Figure7(ctx, th) }, true},
		{"fig8", "Energy savings per benchmark: VRP and VRS at each threshold",
			fixed((*Suite).Figure8), false},
		{"fig9", "Energy benefits for the different parts of the processor",
			fixed((*Suite).Figure9), false},
		{"fig10", "Execution time savings (VRS variants vs baseline)",
			fixed((*Suite).Figure10), false},
		{"fig11", "Energy-Delay^2 benefits",
			fixed((*Suite).Figure11), false},
		{"fig12", "Data size distribution (significant bytes of produced values)",
			fixed((*Suite).Figure12), false},
		{"fig13", "Energy savings for the hardware approaches",
			fixed((*Suite).Figure13), false},
		{"fig14", "Energy savings for each processor part (hardware schemes)",
			fixed((*Suite).Figure14), false},
		{"fig15", "Energy-delay^2 savings for hardware and software configurations",
			func(ctx context.Context, s *Suite, th float64) (*Report, error) { return s.Figure15(ctx, th) }, true},
		{"ablation-opcodes", "Opcode-set ablation: energy savings and 64-bit share under VRP",
			fixed((*Suite).AblationOpcodeSets), false},
		{"ablation-analysis", "Analysis ablation: dynamic 64-bit share",
			fixed((*Suite).AblationAnalysis), false},
	}
}

// LookupExperiment finds an experiment descriptor by ID.
func LookupExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment builds one experiment's structured report. Cancelling ctx
// stops the per-workload fan-out and returns the context's error.
func (s *Suite) RunExperiment(ctx context.Context, id string, threshold float64) (*Report, error) {
	e, ok := LookupExperiment(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Run(ctx, s, threshold)
}

// RunAll builds every experiment in order — the report sequence behind
// `ogbench -experiment all`, which the golden regression tests pin in
// both text and JSON form.
func (s *Suite) RunAll(ctx context.Context, threshold float64) ([]*Report, error) {
	exps := Experiments()
	reports := make([]*Report, 0, len(exps))
	for _, e := range exps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := e.Run(ctx, s, threshold)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}
