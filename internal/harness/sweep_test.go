package harness

import (
	"bytes"
	"strings"
	"testing"
)

// sweepGrid is the paper's threshold grid, reused across the sweep tests.
var sweepGrid = []float64{110, 90, 70, 50, 30}

// TestSweepMatchesPerThresholdRuns is the sweep equivalence probe: every
// cell of Suite.Sweep must be bit-identical (canonical encoding and all)
// to a plain RunExperiment at that threshold — under both the fused
// trace pipeline and the pre-trace one. The sweep changes how the grid
// is computed, never what it contains.
func TestSweepMatchesPerThresholdRuns(t *testing.T) {
	for _, mode := range []struct {
		name    string
		unfused bool
	}{{"fused", false}, {"unfused", true}} {
		t.Run(mode.name, func(t *testing.T) {
			swept := NewSuite(true)
			swept.Unfused = mode.unfused
			plain := NewSuite(true)
			plain.Unfused = mode.unfused

			sw, err := swept.Sweep(testCtx, "fig6", sweepGrid)
			if err != nil {
				t.Fatal(err)
			}
			if len(sw.Cells) != len(sweepGrid) {
				t.Fatalf("sweep returned %d cells for %d thresholds", len(sw.Cells), len(sweepGrid))
			}
			for i, th := range sweepGrid {
				want, err := plain.RunExperiment(testCtx, "fig6", th)
				if err != nil {
					t.Fatal(err)
				}
				if !sw.Cells[i].Equal(want) {
					t.Errorf("cell at threshold %g differs from a plain run", th)
				}
				got, err := EncodeReports([]*Report{sw.Cells[i]})
				if err != nil {
					t.Fatal(err)
				}
				exp, err := EncodeReports([]*Report{want})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, exp) {
					t.Errorf("cell at threshold %g is not byte-identical to a plain run", th)
				}
			}
		})
	}
}

// TestSweepTrainEmulations is the profile-reuse probe of the tentpole:
// a K-threshold sweep performs exactly one VRS train emulation per
// workload — the profile memo serves every threshold from one train
// pass — where per-threshold Specialize calls used to pay K.
func TestSweepTrainEmulations(t *testing.T) {
	s := NewSuite(true)
	if _, err := s.Sweep(testCtx, "fig4", sweepGrid); err != nil {
		t.Fatal(err)
	}
	if got, want := s.TrainEmulations(), int64(len(s.Names())); got != want {
		t.Errorf("%d-threshold sweep performed %d train emulations, want %d (one per workload)",
			len(sweepGrid), got, want)
	}
	// Figure 4 reads only the specialization points: no suite-level
	// emulations at all.
	if got := s.Emulations(); got != 0 {
		t.Errorf("fig4 sweep performed %d suite emulations, want 0", got)
	}
	// More thresholds from the same profiles stay free.
	if _, err := s.Sweep(testCtx, "fig4", []float64{65, 45}); err != nil {
		t.Fatal(err)
	}
	if got, want := s.TrainEmulations(), int64(len(s.Names())); got != want {
		t.Errorf("grown grid re-profiled: %d train emulations, want %d", got, want)
	}
}

// TestSweepSharesBaselineSims: a sweep of a simulation-bearing experiment
// pays one trace per (workload, variant) — the base/vrp variants are
// shared across the whole grid, only the vrs<θ> variants scale with K.
func TestSweepSharesBaselineSims(t *testing.T) {
	grid := []float64{110, 50}
	s := NewSuite(true)
	if _, err := s.Sweep(testCtx, "fig15", grid); err != nil {
		t.Fatal(err)
	}
	// Variants touched per workload: base, vrp, and one vrs<θ> per grid
	// point.
	want := int64(len(s.Names())) * int64(2+len(grid))
	if got := s.Emulations(); got != want {
		t.Errorf("fig15 sweep performed %d emulations, want %d (base/vrp shared across the grid)", got, want)
	}
}

// TestSweepValidation: unknown experiments and malformed grids are
// rejected up front.
func TestSweepValidation(t *testing.T) {
	s := NewSuite(true)
	if _, err := s.Sweep(testCtx, "fig99", sweepGrid); err == nil {
		t.Error("sweep accepted an unknown experiment")
	}
	for name, grid := range map[string][]float64{
		"empty":     {},
		"zero":      {50, 0},
		"negative":  {50, -10},
		"duplicate": {110, 50, 110},
	} {
		if _, err := s.Sweep(testCtx, "fig4", grid); err == nil {
			t.Errorf("sweep accepted %s grid %v", name, grid)
		}
	}
}

// TestSweepJSONRoundTrip: the opgate.sweep/v1 codec is canonical —
// encode(decode(b)) == b, decoded sweeps are Equal to the original, and
// foreign schemas are refused.
func TestSweepJSONRoundTrip(t *testing.T) {
	s := NewSuite(true)
	sw, err := s.Sweep(testCtx, "fig4", []float64{110, 50.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.Equal(back) {
		t.Error("decoded sweep differs from the original")
	}
	b2, err := EncodeSweep(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("sweep encoding is not byte-stable under decode/encode")
	}
	if !strings.Contains(string(b), SweepSchema) {
		t.Errorf("encoding does not carry schema %q", SweepSchema)
	}
	if _, err := DecodeSweep([]byte(`{"schema":"opgate.report/v1"}`)); err == nil {
		t.Error("DecodeSweep accepted a foreign schema")
	}
	if diffs := sw.Diff(back); len(diffs) != 0 {
		t.Errorf("self-diff after round trip: %v", diffs)
	}
}

// TestSweepCellAndDiff: cell lookup by threshold, and diffs locating
// disagreements on the threshold axis.
func TestSweepCellAndDiff(t *testing.T) {
	cell := func(v float64) *Report {
		return &Report{ID: "x", Columns: []string{"c"}, Rows: []Row{{Label: "r", Values: []float64{v}}}}
	}
	a := &SweepReport{ID: "x", Thresholds: []float64{110, 50}, Cells: []*Report{cell(1), cell(2)}}
	b := &SweepReport{ID: "x", Thresholds: []float64{110, 30}, Cells: []*Report{cell(9), cell(3)}}
	if r, ok := a.Cell(50); !ok || r.Rows[0].Values[0] != 2 {
		t.Fatalf("Cell(50) = %+v, %t", r, ok)
	}
	if _, ok := a.Cell(70); ok {
		t.Fatal("Cell(70) found a cell not in the grid")
	}
	ds := a.Diff(b)
	// Expected: 110 differs (1 vs 9), 50 only in a, 30 only in b.
	if len(ds) != 3 {
		t.Fatalf("diff = %+v, want 3 entries", ds)
	}
	if ds[0].Threshold != 110 || ds[0].A != 1 || ds[0].B != 9 || ds[0].OnlyIn != "" {
		t.Errorf("value diff wrong: %+v", ds[0])
	}
	if ds[1].Threshold != 50 || ds[1].OnlyIn != "a" {
		t.Errorf("missing-threshold diff wrong: %+v", ds[1])
	}
	if ds[2].Threshold != 30 || ds[2].OnlyIn != "b" {
		t.Errorf("extra-threshold diff wrong: %+v", ds[2])
	}
	if ds := a.Diff(a); len(ds) != 0 {
		t.Errorf("self-diff: %+v", ds)
	}
}

// TestVariantProgramNameParsing is the variant-name bugfix's table test:
// only canonical "vrs<θ>" spellings resolve — trailing garbage, prefix
// matches, and non-canonical float spellings (which would fork the memo
// and trace keys of an existing variant) are unknown-variant errors.
func TestVariantProgramNameParsing(t *testing.T) {
	s := NewSuite(true)
	for _, variant := range []string{"vrs50", "vrs50.5"} {
		if _, err := s.variantProgram("compress", variant); err != nil {
			t.Errorf("canonical variant %q rejected: %v", variant, err)
		}
	}
	for _, variant := range []string{
		"vrs50junk", // trailing garbage: the Sscanf bug resolved this to vrs50
		"vrs",       // no threshold at all
		"vrs050",    // non-canonical spelling of 50
		"vrs5e1",    // scientific spelling of 50
		"vrs 50",    // embedded space
		"vrs0",      // thresholds must be positive
		"vrs-5",
		"vrsNaN",
		"velcro",
	} {
		if _, err := s.variantProgram("compress", variant); err == nil {
			t.Errorf("malformed variant %q resolved to a program", variant)
		}
	}
}
