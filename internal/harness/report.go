package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync/atomic"
)

// Schema identifiers carried by the canonical JSON encodings. Bump the
// version when a field changes meaning; decoders refuse mismatched
// schemas instead of guessing.
const (
	// ReportSchema tags one encoded report.
	ReportSchema = "opgate.report/v1"
	// ReportSetSchema tags an encoded report sequence (one experiment run).
	ReportSetSchema = "opgate.reports/v1"
)

// Report is a regenerated table or figure as structured data: labelled
// rows of named numeric columns (or, for parameter listings, freeform
// text lines), plus the unit metadata machine consumers need to interpret
// the cells. Rendering is pluggable — TextRenderer reproduces the paper's
// aligned-table layout, JSONRenderer the canonical machine-readable form.
type Report struct {
	ID    string // "table1", "fig8", ...
	Title string

	// Unit names what the cells measure: "fraction" (of 1.0; rendered as
	// a percentage when Percent is set), "nJ", "count", or "text" for
	// freeform listings. Units, when non-nil, overrides Unit per column
	// (mixed reports like fig4: a count column among fractions).
	Unit  string
	Units []string

	Columns []string
	Rows    []Row

	// Text carries freeform listing lines (table2's machine parameters);
	// a report has either Rows or Text, never both.
	Text []string

	// Note records any reproduction caveat (documented in EXPERIMENTS.md).
	Note string
	// Percent renders values as percentages.
	Percent bool

	// idx is the lazily built (row, column) lookup index; it never
	// travels through the JSON codec.
	idx atomic.Pointer[reportIndex]
}

// Row is one labelled series of values.
type Row struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values,omitempty"`
}

// reportIndex maps labels to positions so cell lookup is O(1) after a
// single O(rows+cols) build.
type reportIndex struct {
	cols map[string]int
	rows map[string]int
}

// index returns the lookup index, building it exactly once per report
// (concurrent first calls may both build; the maps are identical).
func (r *Report) index() *reportIndex {
	if idx := r.idx.Load(); idx != nil {
		return idx
	}
	idx := &reportIndex{
		cols: make(map[string]int, len(r.Columns)),
		rows: make(map[string]int, len(r.Rows)),
	}
	for i, c := range r.Columns {
		idx.cols[c] = i // later duplicate wins, as the linear scan did
	}
	for i, row := range r.Rows {
		if _, ok := idx.rows[row.Label]; !ok {
			idx.rows[row.Label] = i // first duplicate wins, as the scan did
		}
	}
	r.idx.Store(idx)
	return idx
}

// Value returns the cell (rowLabel, column).
func (r *Report) Value(rowLabel, column string) (float64, bool) {
	idx := r.index()
	ci, ok := idx.cols[column]
	if !ok {
		return 0, false
	}
	ri, ok := idx.rows[rowLabel]
	if !ok || ci >= len(r.Rows[ri].Values) {
		return 0, false
	}
	return r.Rows[ri].Values[ci], true
}

// MustValue is Value or panic (bench/test convenience).
func (r *Report) MustValue(rowLabel, column string) float64 {
	v, ok := r.Value(rowLabel, column)
	if !ok {
		panic(fmt.Sprintf("report %s: no cell (%s, %s)", r.ID, rowLabel, column))
	}
	return v
}

// Equal reports whether two reports carry identical data (the JSON
// round-trip invariant; lookup indexes are ignored).
func (r *Report) Equal(o *Report) bool {
	if r.ID != o.ID || r.Title != o.Title || r.Unit != o.Unit ||
		r.Note != o.Note || r.Percent != o.Percent {
		return false
	}
	if !slices.Equal(r.Units, o.Units) || !slices.Equal(r.Columns, o.Columns) ||
		!slices.Equal(r.Text, o.Text) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		if r.Rows[i].Label != o.Rows[i].Label ||
			!slices.Equal(r.Rows[i].Values, o.Rows[i].Values) {
			return false
		}
	}
	return true
}

// CellDiff is one difference between two reports: a cell whose values
// disagree, or a cell present on only one side.
type CellDiff struct {
	Row    string  `json:"row"`
	Column string  `json:"column"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	// OnlyIn is "a" or "b" when the cell exists on one side only
	// (structural drift: a row or column appeared or vanished).
	OnlyIn string `json:"only_in,omitempty"`
}

// Diff compares two reports cell-by-cell for regression tooling: every
// differing cell, in r's row-major order, then cells only the other
// report has. An empty result means every shared-and-unshared cell agrees.
func (r *Report) Diff(o *Report) []CellDiff {
	var ds []CellDiff
	for _, row := range r.Rows {
		for ci, col := range r.Columns {
			var a float64
			if ci < len(row.Values) {
				a = row.Values[ci]
			}
			b, ok := o.Value(row.Label, col)
			switch {
			case !ok:
				ds = append(ds, CellDiff{Row: row.Label, Column: col, A: a, OnlyIn: "a"})
			case a != b:
				ds = append(ds, CellDiff{Row: row.Label, Column: col, A: a, B: b})
			}
		}
	}
	for _, row := range o.Rows {
		for ci, col := range o.Columns {
			if _, ok := r.Value(row.Label, col); ok {
				continue
			}
			var b float64
			if ci < len(row.Values) {
				b = row.Values[ci]
			}
			ds = append(ds, CellDiff{Row: row.Label, Column: col, B: b, OnlyIn: "b"})
		}
	}
	return ds
}

// reportJSON is the canonical wire form: fixed field order, schema first.
type reportJSON struct {
	Schema  string   `json:"schema"`
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Unit    string   `json:"unit,omitempty"`
	Units   []string `json:"units,omitempty"`
	Percent bool     `json:"percent,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Rows    []Row    `json:"rows,omitempty"`
	Text    []string `json:"text,omitempty"`
	Note    string   `json:"note,omitempty"`
}

// MarshalJSON encodes the report in its canonical form: deterministic
// field order and float formatting, so encode(decode(b)) == b.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		Schema: ReportSchema, ID: r.ID, Title: r.Title,
		Unit: r.Unit, Units: r.Units, Percent: r.Percent,
		Columns: r.Columns, Rows: r.Rows, Text: r.Text, Note: r.Note,
	})
}

// UnmarshalJSON decodes a canonical report, refusing unknown schemas.
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Schema != ReportSchema {
		return fmt.Errorf("harness: report schema %q, want %q", j.Schema, ReportSchema)
	}
	r.ID, r.Title, r.Unit, r.Units = j.ID, j.Title, j.Unit, j.Units
	r.Percent, r.Columns, r.Rows = j.Percent, j.Columns, j.Rows
	r.Text, r.Note = j.Text, j.Note
	r.idx.Store(nil) // drop any index built for previous contents
	return nil
}

// reportSetJSON is the envelope around one experiment run's reports.
type reportSetJSON struct {
	Schema  string    `json:"schema"`
	Reports []*Report `json:"reports"`
}

// EncodeReports renders a report sequence in the canonical
// machine-readable form: a one-line JSON envelope (schema + reports in
// run order) terminated by a newline. The bytes are stable — encoding the
// decoded value reproduces them exactly — so they can be content-addressed
// and diffed.
func EncodeReports(reports []*Report) ([]byte, error) {
	b, err := json.Marshal(reportSetJSON{Schema: ReportSetSchema, Reports: reports})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReports parses a canonical report-sequence encoding.
func DecodeReports(data []byte) ([]*Report, error) {
	var env reportSetJSON
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("harness: decode reports: %w", err)
	}
	if env.Schema != ReportSetSchema {
		return nil, fmt.Errorf("harness: report set schema %q, want %q", env.Schema, ReportSetSchema)
	}
	return env.Reports, nil
}

// Renderer turns a structured report sequence into a byte stream.
type Renderer interface {
	Render(w io.Writer, reports []*Report) error
}

// TextRenderer reproduces the classic aligned-table layout, byte-for-byte
// identical to the pre-structured pipeline (one formatted report per
// experiment, each followed by a blank line).
type TextRenderer struct{}

// Render writes each report's text form, separated by blank lines.
func (TextRenderer) Render(w io.Writer, reports []*Report) error {
	for _, r := range reports {
		if _, err := fmt.Fprintln(w, r.Format()); err != nil {
			return err
		}
	}
	return nil
}

// JSONRenderer emits the canonical JSON encoding (EncodeReports).
type JSONRenderer struct{}

// Render writes the canonical JSON envelope for the report sequence.
func (JSONRenderer) Render(w io.Writer, reports []*Report) error {
	b, err := EncodeReports(reports)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Format renders the report as an aligned text table (or, for freeform
// reports, the header plus its text lines).
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)

	if len(r.Text) > 0 {
		for _, line := range r.Text {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		if r.Note != "" {
			fmt.Fprintf(&sb, "note: %s\n", r.Note)
		}
		return sb.String()
	}

	labelW := 10
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	colW := 9
	for _, c := range r.Columns {
		if len(c)+1 > colW {
			colW = len(c) + 1
		}
	}

	fmt.Fprintf(&sb, "%-*s", labelW+2, "")
	for _, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s", colW, c)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, row.Label)
		for _, v := range row.Values {
			if r.Percent {
				fmt.Fprintf(&sb, "%*.1f%%", colW-1, v*100)
			} else {
				fmt.Fprintf(&sb, "%*.2f", colW, v)
			}
		}
		sb.WriteByte('\n')
	}
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	return sb.String()
}
