package harness

import (
	"fmt"
	"strings"
)

// Report is a regenerated table or figure: labelled rows of named numeric
// columns, with a formatter that renders it the way the paper lays it out.
type Report struct {
	ID      string // "table1", "fig8", ...
	Title   string
	Columns []string
	Rows    []Row
	// Note records any reproduction caveat (documented in EXPERIMENTS.md).
	Note string
	// Percent renders values as percentages.
	Percent bool
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Value returns the cell (rowLabel, column), for tests.
func (r *Report) Value(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range r.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range r.Rows {
		if row.Label == rowLabel && ci < len(row.Values) {
			return row.Values[ci], true
		}
	}
	return 0, false
}

// MustValue is Value or panic (bench/test convenience).
func (r *Report) MustValue(rowLabel, column string) float64 {
	v, ok := r.Value(rowLabel, column)
	if !ok {
		panic(fmt.Sprintf("report %s: no cell (%s, %s)", r.ID, rowLabel, column))
	}
	return v
}

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)

	labelW := 10
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	colW := 9
	for _, c := range r.Columns {
		if len(c)+1 > colW {
			colW = len(c) + 1
		}
	}

	fmt.Fprintf(&sb, "%-*s", labelW+2, "")
	for _, c := range r.Columns {
		fmt.Fprintf(&sb, "%*s", colW, c)
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW+2, row.Label)
		for _, v := range row.Values {
			if r.Percent {
				fmt.Fprintf(&sb, "%*.1f%%", colW-1, v*100)
			} else {
				fmt.Fprintf(&sb, "%*.2f", colW, v)
			}
		}
		sb.WriteByte('\n')
	}
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	return sb.String()
}
