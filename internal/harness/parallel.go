package harness

import (
	"context"
	"runtime"
	"sync"
)

// memo is a per-key singleflight cache: concurrent callers of do() with
// the same key share one computation, and independent keys never contend
// beyond the map access itself. This is what lets the suite's expensive
// artifacts (built programs, analyses, transformed binaries, simulations)
// be produced concurrently without a coarse global lock.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// do returns the cached value for key, computing it with fn exactly once.
func (c *memo[K, V]) do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = new(memoEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// workers returns the fan-out bound for suite drivers.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mapNames runs fn once per suite benchmark, fanned out across a bounded
// worker pool, and returns the per-benchmark results in suite order (so
// report assembly — including float accumulation — is deterministic
// regardless of completion order). The first error in suite order wins.
//
// Cancelling ctx stops scheduling further per-workload work — including
// while blocked waiting for a pool slot — and returns the context's
// error once in-flight workloads have drained.
func mapNames[T any](ctx context.Context, s *Suite, fn func(name string) (T, error)) ([]T, error) {
	names := s.Names()
	out := make([]T, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, s.workers())
	var wg sync.WaitGroup
	var canceled error
schedule:
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			canceled = err
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			canceled = ctx.Err()
			break schedule
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	if canceled != nil {
		return nil, canceled
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
