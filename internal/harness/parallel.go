package harness

import (
	"context"
	"runtime"
	"sync"
)

// memo is a per-key singleflight cache: concurrent callers of do() with
// the same key share one computation, and independent keys never contend
// beyond the map access itself. This is what lets the suite's expensive
// artifacts (built programs, analyses, transformed binaries, simulations)
// be produced concurrently without a coarse global lock.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// do returns the cached value for key, computing it with fn exactly once.
func (c *memo[K, V]) do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = new(memoEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// workers returns the fan-out bound for suite drivers.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// mapSlice runs fn once per item, fanned out across a worker-bounded
// pool, and returns the per-item results in input order (so report
// assembly — including float accumulation — is deterministic regardless
// of completion order). The first error in input order wins.
//
// Cancelling ctx stops scheduling further work — including while blocked
// waiting for a pool slot — and returns the context's error once
// in-flight items have drained.
func mapSlice[S, T any](ctx context.Context, workers int, items []S, fn func(item S) (T, error)) ([]T, error) {
	out := make([]T, len(items))
	errs := make([]error, len(items))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var canceled error
schedule:
	for i, item := range items {
		if err := ctx.Err(); err != nil {
			canceled = err
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			canceled = ctx.Err()
			break schedule
		}
		wg.Add(1)
		go func(i int, item S) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = fn(item)
		}(i, item)
	}
	wg.Wait()
	if canceled != nil {
		return nil, canceled
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mapNames is mapSlice over the suite's benchmark names with the suite's
// worker bound — the fan-out every experiment driver uses.
func mapNames[T any](ctx context.Context, s *Suite, fn func(name string) (T, error)) ([]T, error) {
	return mapSlice(ctx, s.workers(), s.Names(), fn)
}
