package harness

import (
	"context"

	"opgate/internal/power"
)

// perStructureSavings averages per-structure energy savings over the suite
// for one (variant, mode) configuration.
func (s *Suite) perStructureSavings(ctx context.Context, variant string, mode power.GatingMode) ([power.NumStructures]float64, float64, error) {
	type saving struct {
		per   [power.NumStructures]float64
		total float64
	}
	var sum [power.NumStructures]float64
	savings, err := mapNames(ctx, s, func(name string) (saving, error) {
		var sv saving
		base, err := s.Baseline(name)
		if err != nil {
			return sv, err
		}
		g, err := s.Sim(name, variant, mode)
		if err != nil {
			return sv, err
		}
		sv.per, sv.total = power.Savings(base.Energy, g.Energy)
		return sv, nil
	})
	if err != nil {
		return sum, 0, err
	}
	var sumTotal float64
	for _, sv := range savings {
		for i := range sv.per {
			sum[i] += sv.per[i]
		}
		sumTotal += sv.total
	}
	n := float64(len(savings))
	for i := range sum {
		sum[i] /= n
	}
	return sum, sumTotal / n, nil
}

// perBenchmarkRows fans fn out across the workload suite, then appends one
// row per benchmark in suite order plus an AVG row averaging each column.
func perBenchmarkRows(ctx context.Context, s *Suite, rep *Report, fn func(name string) ([]float64, error)) error {
	rows, err := mapNames(ctx, s, fn)
	if err != nil {
		return err
	}
	var avg []float64
	for i, name := range s.Names() {
		vals := rows[i]
		rep.Rows = append(rep.Rows, Row{Label: name, Values: vals})
		if avg == nil {
			avg = make([]float64, len(vals))
		}
		for j, v := range vals {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(rows))
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG", Values: avg})
	return nil
}

// structureColumns is the x-axis of Figs. 3, 9 and 14.
func structureColumns() []string {
	cols := make([]string, 0, power.NumStructures+1)
	for _, st := range power.Structures() {
		cols = append(cols, st.String())
	}
	return append(cols, "Processor")
}

func structureRow(label string, per [power.NumStructures]float64, total float64) Row {
	vals := make([]float64, 0, power.NumStructures+1)
	for _, st := range power.Structures() {
		vals = append(vals, per[st])
	}
	return Row{Label: label, Values: append(vals, total)}
}

// Figure3 reproduces the per-structure energy savings of VRP.
func (s *Suite) Figure3(ctx context.Context) (*Report, error) {
	per, total, err := s.perStructureSavings(ctx, "vrp", power.GateSoftware)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig3",
		Title:   "Energy savings with VRP (per processor structure, suite average)",
		Unit:    "fraction",
		Columns: structureColumns(),
		Percent: true,
	}
	rep.Rows = append(rep.Rows, structureRow("VRP", per, total))
	return rep, nil
}

// Figure8 reproduces the whole-processor energy savings per benchmark for
// VRP and the five VRS cost configurations.
func (s *Suite) Figure8(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "Energy savings per benchmark: VRP and VRS at each threshold",
		Unit:    "fraction",
		Columns: vrpVRSColumns(),
		Percent: true,
	}
	err := perBenchmarkRows(ctx, s, rep, func(name string) ([]float64, error) {
		var vals []float64
		v, err := s.EnergySaving(name, "vrp", power.GateSoftware)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		for _, th := range Thresholds {
			v, err := s.EnergySaving(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure9 reproduces the per-structure energy benefits of VRP and VRS.
func (s *Suite) Figure9(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig9",
		Title:   "Energy benefits for the different parts of the processor",
		Unit:    "fraction",
		Columns: structureColumns(),
		Percent: true,
	}
	per, total, err := s.perStructureSavings(ctx, "vrp", power.GateSoftware)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, structureRow("VRP", per, total))
	for _, th := range Thresholds {
		per, total, err := s.perStructureSavings(ctx, vrsVariant(th), power.GateSoftware)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, structureRow(vrsLabel(th, "nJ"), per, total))
	}
	return rep, nil
}

// Figure10 reproduces the execution-time savings of VRS (VRP does not
// change timing: it only re-encodes opcodes).
func (s *Suite) Figure10(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig10",
		Title:   "Execution time savings (VRS variants vs baseline)",
		Unit:    "fraction",
		Percent: true,
	}
	for _, th := range Thresholds {
		rep.Columns = append(rep.Columns, vrsLabel(th, "nJ"))
	}
	err := perBenchmarkRows(ctx, s, rep, func(name string) ([]float64, error) {
		base, err := s.Baseline(name)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, th := range Thresholds {
			g, err := s.Sim(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 1-float64(g.Cycles)/float64(base.Cycles))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure11 reproduces the energy-delay² benefits per benchmark.
func (s *Suite) Figure11(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig11",
		Title:   "Energy-Delay^2 benefits",
		Unit:    "fraction",
		Columns: vrpVRSColumns(),
		Percent: true,
	}
	err := perBenchmarkRows(ctx, s, rep, func(name string) ([]float64, error) {
		var vals []float64
		v, err := s.ED2Saving(name, "vrp", power.GateSoftware)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		for _, th := range Thresholds {
			v, err := s.ED2Saving(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure13 reproduces the energy savings of the two hardware compression
// schemes on the unmodified binaries.
func (s *Suite) Figure13(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig13",
		Title:   "Energy savings for the hardware approaches",
		Unit:    "fraction",
		Columns: []string{"size compression", "significance compression"},
		Percent: true,
	}
	err := perBenchmarkRows(ctx, s, rep, func(name string) ([]float64, error) {
		vSize, err := s.EnergySaving(name, "base", power.GateHWSize)
		if err != nil {
			return nil, err
		}
		vSig, err := s.EnergySaving(name, "base", power.GateHWSignificance)
		if err != nil {
			return nil, err
		}
		return []float64{vSize, vSig}, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Figure14 reproduces the per-structure savings of the hardware schemes.
func (s *Suite) Figure14(ctx context.Context) (*Report, error) {
	rep := &Report{
		ID:      "fig14",
		Title:   "Energy savings for each processor part (hardware schemes)",
		Unit:    "fraction",
		Columns: structureColumns(),
		Percent: true,
	}
	perSize, totSize, err := s.perStructureSavings(ctx, "base", power.GateHWSize)
	if err != nil {
		return nil, err
	}
	perSig, totSig, err := s.perStructureSavings(ctx, "base", power.GateHWSignificance)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows,
		structureRow("size compression", perSize, totSize),
		structureRow("significance compression", perSig, totSig),
	)
	return rep, nil
}

// Figure15 reproduces the energy-delay² savings of every software,
// hardware, and combined configuration.
func (s *Suite) Figure15(ctx context.Context, threshold float64) (*Report, error) {
	vrsV := vrsVariant(threshold)
	vrsL := vrsLabel(threshold, "")
	configs := []struct {
		label   string
		variant string
		mode    power.GatingMode
	}{
		{"VRP", "vrp", power.GateSoftware},
		{vrsL, vrsV, power.GateSoftware},
		{"hdw size", "base", power.GateHWSize},
		{"hdw significance", "base", power.GateHWSignificance},
		{"VRP + hdw size", "vrp", power.GateCooperative},
		{"VRP + hdw significance", "vrp", power.GateCooperativeSig},
		{vrsL + " + hdw size", vrsV, power.GateCooperative},
		{vrsL + " + hdw significance", vrsV, power.GateCooperativeSig},
	}
	rep := &Report{
		ID:      "fig15",
		Title:   "Energy-delay^2 savings for hardware and software configurations",
		Unit:    "fraction",
		Percent: true,
	}
	for _, c := range configs {
		rep.Columns = append(rep.Columns, c.label)
	}
	err := perBenchmarkRows(ctx, s, rep, func(name string) ([]float64, error) {
		var vals []float64
		for _, c := range configs {
			v, err := s.ED2Saving(name, c.variant, c.mode)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
