package harness

import (
	"opgate/internal/power"
)

// perStructureSavings averages per-structure energy savings over the suite
// for one (variant, mode) configuration.
func (s *Suite) perStructureSavings(variant string, mode power.GatingMode) ([power.NumStructures]float64, float64, error) {
	var sum [power.NumStructures]float64
	var sumTotal float64
	names := s.Names()
	for _, name := range names {
		base, err := s.Baseline(name)
		if err != nil {
			return sum, 0, err
		}
		g, err := s.Sim(name, variant, mode)
		if err != nil {
			return sum, 0, err
		}
		per, total := power.Savings(base.Energy, g.Energy)
		for i := range per {
			sum[i] += per[i]
		}
		sumTotal += total
	}
	n := float64(len(names))
	for i := range sum {
		sum[i] /= n
	}
	return sum, sumTotal / n, nil
}

// structureColumns is the x-axis of Figs. 3, 9 and 14.
func structureColumns() []string {
	cols := make([]string, 0, power.NumStructures+1)
	for _, st := range power.Structures() {
		cols = append(cols, st.String())
	}
	return append(cols, "Processor")
}

func structureRow(label string, per [power.NumStructures]float64, total float64) Row {
	vals := make([]float64, 0, power.NumStructures+1)
	for _, st := range power.Structures() {
		vals = append(vals, per[st])
	}
	return Row{Label: label, Values: append(vals, total)}
}

// Figure3 reproduces the per-structure energy savings of VRP.
func (s *Suite) Figure3() (*Report, error) {
	per, total, err := s.perStructureSavings("vrp", power.GateSoftware)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig3",
		Title:   "Energy savings with VRP (per processor structure, suite average)",
		Columns: structureColumns(),
		Percent: true,
	}
	rep.Rows = append(rep.Rows, structureRow("VRP", per, total))
	return rep, nil
}

// Figure8 reproduces the whole-processor energy savings per benchmark for
// VRP and the five VRS cost configurations.
func (s *Suite) Figure8() (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "Energy savings per benchmark: VRP and VRS at each threshold",
		Columns: []string{"VRP", "VRS 110nJ", "VRS 90nJ", "VRS 70nJ", "VRS 50nJ", "VRS 30nJ"},
		Percent: true,
	}
	var avg []float64
	for _, name := range s.Names() {
		var vals []float64
		v, err := s.EnergySaving(name, "vrp", power.GateSoftware)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		for _, th := range Thresholds {
			v, err := s.EnergySaving(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		rep.Rows = append(rep.Rows, Row{Label: name, Values: vals})
		if avg == nil {
			avg = make([]float64, len(vals))
		}
		for i, v := range vals {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(s.Names()))
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG", Values: avg})
	return rep, nil
}

// Figure9 reproduces the per-structure energy benefits of VRP and VRS.
func (s *Suite) Figure9() (*Report, error) {
	rep := &Report{
		ID:      "fig9",
		Title:   "Energy benefits for the different parts of the processor",
		Columns: structureColumns(),
		Percent: true,
	}
	per, total, err := s.perStructureSavings("vrp", power.GateSoftware)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, structureRow("VRP", per, total))
	for _, th := range Thresholds {
		per, total, err := s.perStructureSavings(vrsVariant(th), power.GateSoftware)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, structureRow("VRS "+itoa(int(th))+"nJ", per, total))
	}
	return rep, nil
}

// Figure10 reproduces the execution-time savings of VRS (VRP does not
// change timing: it only re-encodes opcodes).
func (s *Suite) Figure10() (*Report, error) {
	rep := &Report{
		ID:      "fig10",
		Title:   "Execution time savings (VRS variants vs baseline)",
		Percent: true,
	}
	for _, th := range Thresholds {
		rep.Columns = append(rep.Columns, "VRS "+itoa(int(th))+"nJ")
	}
	var avg []float64
	for _, name := range s.Names() {
		base, err := s.Baseline(name)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, th := range Thresholds {
			g, err := s.Sim(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, 1-float64(g.Cycles)/float64(base.Cycles))
		}
		rep.Rows = append(rep.Rows, Row{Label: name, Values: vals})
		if avg == nil {
			avg = make([]float64, len(vals))
		}
		for i, v := range vals {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(s.Names()))
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG", Values: avg})
	return rep, nil
}

// Figure11 reproduces the energy-delay² benefits per benchmark.
func (s *Suite) Figure11() (*Report, error) {
	rep := &Report{
		ID:      "fig11",
		Title:   "Energy-Delay^2 benefits",
		Columns: []string{"VRP", "VRS 110nJ", "VRS 90nJ", "VRS 70nJ", "VRS 50nJ", "VRS 30nJ"},
		Percent: true,
	}
	var avg []float64
	for _, name := range s.Names() {
		var vals []float64
		v, err := s.ED2Saving(name, "vrp", power.GateSoftware)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		for _, th := range Thresholds {
			v, err := s.ED2Saving(name, vrsVariant(th), power.GateSoftware)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		rep.Rows = append(rep.Rows, Row{Label: name, Values: vals})
		if avg == nil {
			avg = make([]float64, len(vals))
		}
		for i, v := range vals {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(s.Names()))
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG", Values: avg})
	return rep, nil
}

// Figure13 reproduces the energy savings of the two hardware compression
// schemes on the unmodified binaries.
func (s *Suite) Figure13() (*Report, error) {
	rep := &Report{
		ID:      "fig13",
		Title:   "Energy savings for the hardware approaches",
		Columns: []string{"size compression", "significance compression"},
		Percent: true,
	}
	var avg [2]float64
	for _, name := range s.Names() {
		vSize, err := s.EnergySaving(name, "base", power.GateHWSize)
		if err != nil {
			return nil, err
		}
		vSig, err := s.EnergySaving(name, "base", power.GateHWSignificance)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Row{Label: name, Values: []float64{vSize, vSig}})
		avg[0] += vSize
		avg[1] += vSig
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG",
		Values: []float64{avg[0] / 8, avg[1] / 8}})
	return rep, nil
}

// Figure14 reproduces the per-structure savings of the hardware schemes.
func (s *Suite) Figure14() (*Report, error) {
	rep := &Report{
		ID:      "fig14",
		Title:   "Energy savings for each processor part (hardware schemes)",
		Columns: structureColumns(),
		Percent: true,
	}
	perSize, totSize, err := s.perStructureSavings("base", power.GateHWSize)
	if err != nil {
		return nil, err
	}
	perSig, totSig, err := s.perStructureSavings("base", power.GateHWSignificance)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows,
		structureRow("size compression", perSize, totSize),
		structureRow("significance compression", perSig, totSig),
	)
	return rep, nil
}

// Figure15 reproduces the energy-delay² savings of every software,
// hardware, and combined configuration.
func (s *Suite) Figure15(threshold float64) (*Report, error) {
	vrsV := vrsVariant(threshold)
	configs := []struct {
		label   string
		variant string
		mode    power.GatingMode
	}{
		{"VRP", "vrp", power.GateSoftware},
		{"VRS 50", vrsV, power.GateSoftware},
		{"hdw size", "base", power.GateHWSize},
		{"hdw significance", "base", power.GateHWSignificance},
		{"VRP + hdw size", "vrp", power.GateCooperative},
		{"VRP + hdw significance", "vrp", power.GateCooperativeSig},
		{"VRS 50 + hdw size", vrsV, power.GateCooperative},
		{"VRS 50 + hdw significance", vrsV, power.GateCooperativeSig},
	}
	rep := &Report{
		ID:      "fig15",
		Title:   "Energy-delay^2 savings for hardware and software configurations",
		Percent: true,
	}
	for _, c := range configs {
		rep.Columns = append(rep.Columns, c.label)
	}
	var avg []float64
	for _, name := range s.Names() {
		var vals []float64
		for _, c := range configs {
			v, err := s.ED2Saving(name, c.variant, c.mode)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		rep.Rows = append(rep.Rows, Row{Label: name, Values: vals})
		if avg == nil {
			avg = make([]float64, len(vals))
		}
		for i, v := range vals {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(s.Names()))
	}
	rep.Rows = append(rep.Rows, Row{Label: "AVG", Values: avg})
	return rep, nil
}
