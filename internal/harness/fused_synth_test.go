package harness

import (
	"testing"

	"opgate/internal/progen"
	"opgate/internal/progen/difftest"
)

// TestRunModesBitIdenticalOnGeneratedPrograms extends the fused-power
// property beyond the eight kernels: for every generated family × size
// class, one fused uarch.RunModes pass over all gating modes is
// bit-identical — cycles, per-structure energy, access counts — to
// independent per-mode Run calls.
func TestRunModesBitIdenticalOnGeneratedPrograms(t *testing.T) {
	for _, f := range progen.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			t.Parallel()
			for c := progen.Small; c <= progen.Large; c++ {
				if c == progen.Large && testing.Short() {
					continue
				}
				seed := uint64(31 + int(f))
				p, err := progen.Generate(f, seed, c, false)
				if err != nil {
					t.Fatal(err)
				}
				if err := difftest.CheckFusedModes(p); err != nil {
					t.Fatalf("%v/%v/%d: %v", f, c, seed, err)
				}
			}
		})
	}
}
