package harness

import (
	"runtime"
	"testing"
)

// TestParallelSuiteDeterministic: a suite fanned out across the full
// worker pool must produce reports identical to a strictly sequential
// run — same rows, same floats, same formatting. Table1 is pure
// parameter arithmetic; Figure3 exercises the whole concurrent artifact
// graph (builds, VRP, simulations) plus ordered float accumulation.
func TestParallelSuiteDeterministic(t *testing.T) {
	seq := NewSuite(true)
	seq.Workers = 1
	par := NewSuite(true)
	par.Workers = 2 * runtime.GOMAXPROCS(0) // oversubscribe to shake out ordering races

	seqT1 := seq.Table1().Format()
	parT1 := par.Table1().Format()
	if seqT1 != parT1 {
		t.Errorf("Table1 differs between sequential and parallel runs:\n--- sequential\n%s\n--- parallel\n%s", seqT1, parT1)
	}

	seqF3, err := seq.Figure3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	parF3, err := par.Figure3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := seqF3.Format(), parF3.Format(); s != p {
		t.Errorf("Figure3 differs between sequential and parallel runs:\n--- sequential\n%s\n--- parallel\n%s", s, p)
	}
}

// TestSuiteMemoizesUnderConcurrency: hammering the same artifact from
// many goroutines must yield one shared result (singleflight), not
// duplicate work or torn state.
func TestSuiteMemoizesUnderConcurrency(t *testing.T) {
	s := NewSuite(true)
	const callers = 16
	type out struct {
		cycles int64
		err    error
	}
	outs := make(chan out, callers)
	for i := 0; i < callers; i++ {
		go func() {
			r, err := s.Baseline("compress")
			if err != nil {
				outs <- out{0, err}
				return
			}
			outs <- out{r.Cycles, nil}
		}()
	}
	var first int64
	for i := 0; i < callers; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if i == 0 {
			first = o.cycles
		} else if o.cycles != first {
			t.Fatalf("caller %d saw cycles %d, first saw %d", i, o.cycles, first)
		}
	}
}
