package harness

import (
	"context"
	"strings"
	"testing"

	"opgate/internal/power"
)

// testCtx: harness tests never cancel mid-run (cancellation has its own
// coverage in parallel_test.go and golden_test.go).
var testCtx = context.Background()

// newQuickSuite shares one train-input suite across the harness tests
// (experiments cache inside the suite).
var quickSuite = NewSuite(true)

// TestTable1PaperIntegers: the calibration anchor.
func TestTable1PaperIntegers(t *testing.T) {
	rep := quickSuite.Table1()
	checks := map[[2]string]float64{
		{"src 64", "32"}: 1, {"src 64", "16"}: 3, {"src 64", "8"}: 6,
		{"src 32", "16"}: 2, {"src 32", "8"}: 5,
		{"src 16", "8"}: 3,
		{"src 8", "64"}: -6,
	}
	for k, want := range checks {
		if got := rep.MustValue(k[0], k[1]); got < want-1e-9 || got > want+1e-9 {
			t.Errorf("Table1 %v = %v, want %v", k, got, want)
		}
	}
}

func TestTable2MentionsMachine(t *testing.T) {
	txt := quickSuite.Table2().Format()
	for _, want := range []string{"64KB", "256KB", "96", "gshare 64K"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable3RowsSumToOne(t *testing.T) {
	rep, err := quickSuite.Table3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	var classShare float64
	for _, row := range rep.Rows {
		classShare += row.Values[0]
		widthSum := row.Values[1] + row.Values[2] + row.Values[3] + row.Values[4]
		if widthSum < 0.99 || widthSum > 1.01 {
			t.Errorf("%s width split sums to %v", row.Label, widthSum)
		}
	}
	if classShare < 0.99 || classShare > 1.01 {
		t.Errorf("class shares sum to %v", classShare)
	}
	// MUL must be 100%% 64-bit (not encodable narrower in the paper set).
	if v, ok := rep.Value("MUL", "64b"); ok && v != 1.0 {
		t.Errorf("MUL 64-bit share = %v, want 1.0", v)
	}
}

// TestFigure2Shape: the paper's claim — proposed VRP finds more narrow
// instructions; its 64-bit share is strictly lower.
func TestFigure2Shape(t *testing.T) {
	rep, err := quickSuite.Figure2(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	conv := rep.MustValue("Conventional VRP", "64 bits")
	useful := rep.MustValue("Proposed VRP", "64 bits")
	if useful >= conv {
		t.Errorf("proposed VRP 64-bit share %.3f not below conventional %.3f", useful, conv)
	}
}

// TestFigure3Shape: datapath structures save the most; LSQ and D-cache the
// least; processor total is positive but below the structure peaks.
func TestFigure3Shape(t *testing.T) {
	rep, err := quickSuite.Figure3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	iq := rep.MustValue("VRP", "InstrQueue")
	fu := rep.MustValue("VRP", "FU")
	lsq := rep.MustValue("VRP", "LSQ")
	dc := rep.MustValue("VRP", "D-Cache(L1)")
	proc := rep.MustValue("VRP", "Processor")
	if iq < 0.05 || fu < 0.05 {
		t.Errorf("datapath savings too small: IQ %.3f FU %.3f", iq, fu)
	}
	if lsq >= iq || dc >= iq {
		t.Errorf("memory structures (LSQ %.3f, D$ %.3f) should save less than IQ %.3f (addresses are wide)", lsq, dc, iq)
	}
	if proc <= 0 || proc >= fu {
		t.Errorf("processor total %.3f should be positive and below the FU peak %.3f", proc, fu)
	}
}

// TestFigure4MostPointsFiltered: the paper filters ~88%% of profiled
// points as no-benefit.
func TestFigure4MostPointsFiltered(t *testing.T) {
	rep, err := quickSuite.Figure4(testCtx, 50)
	if err != nil {
		t.Fatal(err)
	}
	nb := rep.MustValue("Average", "no benefit")
	if nb < 0.5 {
		t.Errorf("only %.2f of points filtered; the paper filters most", nb)
	}
	spec := rep.MustValue("Average", "specialized")
	if spec <= 0 {
		t.Error("no points specialized on average")
	}
}

// TestFigure6GuardsBelowSpecialized: guard comparisons stay well below
// the specialized-instruction share (the paper's 1%% vs 15%%).
func TestFigure6GuardsBelowSpecialized(t *testing.T) {
	rep, err := quickSuite.Figure6(testCtx, 50)
	if err != nil {
		t.Fatal(err)
	}
	spec := rep.MustValue("Average", "specialized")
	guard := rep.MustValue("Average", "comparisons")
	if spec > 0 && guard >= spec {
		t.Errorf("guards (%.3f) not below specialized share (%.3f)", guard, spec)
	}
}

// TestFigure8VRSBeatsVRP: VRS energy savings are at least VRP's on every
// benchmark (the paper's Fig. 8 ordering), and thresholds behave
// monotonically on the average.
func TestFigure8VRSBeatsVRP(t *testing.T) {
	rep, err := quickSuite.Figure8(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		vrpV := row.Values[0]
		for i, v := range row.Values[1:] {
			if v < vrpV-0.005 {
				t.Errorf("%s: VRS config %d (%.3f) below VRP (%.3f)", row.Label, i, v, vrpV)
			}
		}
	}
}

// TestFigure11Ordering: the headline result — VRS ED² beats VRP ED² on
// average.
func TestFigure11Ordering(t *testing.T) {
	rep, err := quickSuite.Figure11(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	vrpV := rep.MustValue("AVG", "VRP")
	vrsV := rep.MustValue("AVG", "VRS 50nJ")
	if vrpV <= 0 {
		t.Errorf("VRP ED² saving %.3f not positive", vrpV)
	}
	if vrsV < vrpV {
		t.Errorf("VRS ED² %.3f below VRP %.3f", vrsV, vrpV)
	}
}

// TestFigure12AddressPeak: the data-size distribution must show the
// paper's 5-byte peak (memory addresses) and a dominant 1-byte bar.
func TestFigure12AddressPeak(t *testing.T) {
	rep, err := quickSuite.Figure12(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	one := rep.MustValue("occurrence", "1")
	five := rep.MustValue("occurrence", "5")
	six := rep.MustValue("occurrence", "6")
	if one < 0.2 {
		t.Errorf("1-byte share %.3f too small", one)
	}
	if five < 0.05 {
		t.Errorf("no 5-byte address peak: %.3f", five)
	}
	if six > five {
		t.Errorf("6-byte share %.3f above the 5-byte peak %.3f", six, five)
	}
}

// TestFigure15CombinedWins: the paper's final ordering — the cooperative
// schemes beat both hardware-only and software-only on average.
func TestFigure15CombinedWins(t *testing.T) {
	rep, err := quickSuite.Figure15(testCtx, 50)
	if err != nil {
		t.Fatal(err)
	}
	vrpV := rep.MustValue("AVG", "VRP")
	vrsV := rep.MustValue("AVG", "VRS 50")
	hwSize := rep.MustValue("AVG", "hdw size")
	combined := rep.MustValue("AVG", "VRS 50 + hdw size")
	if vrsV < vrpV {
		t.Errorf("VRS (%.3f) below VRP (%.3f)", vrsV, vrpV)
	}
	if hwSize < vrpV {
		t.Errorf("hardware (%.3f) below VRP alone (%.3f): the paper has HW > VRP", hwSize, vrpV)
	}
	if combined <= hwSize || combined <= vrsV {
		t.Errorf("combined (%.3f) does not beat HW-only (%.3f) and VRS-only (%.3f)",
			combined, hwSize, vrsV)
	}
}

// TestFigure13HardwareSavings: both hardware schemes save energy on every
// benchmark.
func TestFigure13HardwareSavings(t *testing.T) {
	rep, err := quickSuite.Figure13(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Errorf("%s config %d: saving %.3f not positive", row.Label, i, v)
			}
		}
	}
}

// TestGatingModeSweepConsistency: for one benchmark, baseline energy is
// the maximum across modes.
func TestGatingModeSweepConsistency(t *testing.T) {
	base, err := quickSuite.Baseline("gcc")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []power.GatingMode{power.GateSoftware, power.GateHWSize, power.GateHWSignificance} {
		variant := "base"
		if mode == power.GateSoftware {
			variant = "vrp"
		}
		r, err := quickSuite.Sim("gcc", variant, mode)
		if err != nil {
			t.Fatal(err)
		}
		if r.Energy.Total() >= base.Energy.Total() {
			t.Errorf("mode %v used more energy than baseline", mode)
		}
	}
}

// TestAblationOrdering: richer opcode sets and more analysis machinery
// can only help.
func TestAblationOrdering(t *testing.T) {
	rep, err := quickSuite.AblationOpcodeSets(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	base := rep.MustValue("base ISA (no ALU widths)", "energy saved")
	paper := rep.MustValue("paper extension set", "energy saved")
	ideal := rep.MustValue("ideal (all widths)", "energy saved")
	if !(base <= paper && paper <= ideal) {
		t.Errorf("opcode-set ordering violated: %v %v %v", base, paper, ideal)
	}
	// §4.3's claim: the chosen set captures most of the ideal benefit.
	if paper < 0.7*ideal {
		t.Errorf("paper set (%.3f) captures under 70%% of ideal (%.3f)", paper, ideal)
	}

	rep2, err := quickSuite.AblationAnalysis(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	full := rep2.MustValue("full (proposed VRP)", "64-bit share")
	none := rep2.MustValue("ranges only (all off)", "64-bit share")
	if full >= none {
		t.Errorf("full analysis (%.3f) not narrower than bare ranges (%.3f)", full, none)
	}
}

func TestReportFormatting(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "T", Columns: []string{"a", "b"},
		Rows: []Row{{Label: "r", Values: []float64{0.5, 0.25}}}, Percent: true,
	}
	out := rep.Format()
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "25.0%") {
		t.Errorf("bad formatting:\n%s", out)
	}
	if _, ok := rep.Value("r", "nope"); ok {
		t.Error("Value found a missing column")
	}
}
