package harness

import (
	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
)

// Figure2 reproduces the dynamic instruction-width distribution under
// conventional vs proposed (useful) value range propagation, averaged over
// the suite. The proposed analysis must find strictly more narrow
// instructions.
func (s *Suite) Figure2() (*Report, error) {
	var conv, useful vrp.WidthHistogram
	for _, name := range s.Names() {
		hc, err := s.DynWidthHistogram(name, "vrp-conv")
		if err != nil {
			return nil, err
		}
		hu, err := s.DynWidthHistogram(name, "vrp")
		if err != nil {
			return nil, err
		}
		for i := 0; i < 4; i++ {
			conv.Count[i] += hc.Count[i]
			useful.Count[i] += hu.Count[i]
		}
	}
	rep := &Report{
		ID:      "fig2",
		Title:   "Dynamic instruction distribution by width: conventional vs proposed VRP",
		Columns: []string{"8 bits", "16 bits", "32 bits", "64 bits"},
		Percent: true,
	}
	rep.Rows = append(rep.Rows,
		Row{Label: "Conventional VRP", Values: fractions(conv)},
		Row{Label: "Proposed VRP", Values: fractions(useful)},
	)
	return rep, nil
}

func fractions(h vrp.WidthHistogram) []float64 {
	return []float64{h.Fraction(0), h.Fraction(1), h.Fraction(2), h.Fraction(3)}
}

// Figure4 reproduces the disposition of profiled points per benchmark:
// specialized, dependent on another point (subsumed), or no benefit.
func (s *Suite) Figure4(threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig4",
		Title:   "Distribution of the points profiled after specialization",
		Columns: []string{"points", "specialized", "dependent", "no benefit"},
	}
	var totPts, totSpec, totDep float64
	for _, name := range s.Names() {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return nil, err
		}
		var spec, dep, none float64
		for i := range r.Points {
			switch r.Points[i].Outcome {
			case vrs.Specialized:
				spec++
			case vrs.Subsumed:
				dep++
			default:
				none++
			}
		}
		n := float64(len(r.Points))
		row := Row{Label: name, Values: []float64{n, 0, 0, 0}}
		if n > 0 {
			row.Values[1], row.Values[2], row.Values[3] = spec/n, dep/n, none/n
		}
		rep.Rows = append(rep.Rows, row)
		totPts += n
		totSpec += spec
		totDep += dep
	}
	if totPts > 0 {
		rep.Rows = append(rep.Rows, Row{Label: "Average", Values: []float64{
			totPts / 8, totSpec / totPts, totDep / totPts, 1 - (totSpec+totDep)/totPts}})
	}
	rep.Note = "columns 2-4 are fractions of profiled points; column 1 is the count (the paper's bar annotations)"
	return rep, nil
}

// Figure5 reproduces the static disposition of instructions inside
// specialized regions: kept (re-ranged) vs eliminated by constant
// propagation and dead-code elimination.
func (s *Suite) Figure5(threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Title:   "Distribution of the specialized instructions at compile time",
		Columns: []string{"static instrs", "specialized", "eliminated"},
	}
	for _, name := range s.Names() {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return nil, err
		}
		total := float64(r.StaticSpecialized + r.StaticEliminated)
		row := Row{Label: name, Values: []float64{total, 0, 0}}
		if total > 0 {
			row.Values[1] = float64(r.StaticSpecialized) / total
			row.Values[2] = float64(r.StaticEliminated) / total
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Note = "benchmarks with zero profitable points have empty rows (the paper's gcc-like cases specialize most)"
	return rep, nil
}

// Figure6 reproduces the run-time share of specialized instructions and of
// the specialization comparisons (guards).
func (s *Suite) Figure6(threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "Distribution of run-time instructions: specialized vs guard comparisons",
		Columns: []string{"specialized", "comparisons"},
		Percent: true,
	}
	var sumSpec, sumGuard float64
	for _, name := range s.Names() {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return nil, err
		}
		m := emu.New(r.Apply())
		m.EnableCounts()
		if err := m.Run(); err != nil {
			return nil, err
		}
		var spec, guard int64
		for idx := range r.SpecIns {
			spec += m.InsCount[idx]
		}
		for idx := range r.GuardIns {
			guard += m.InsCount[idx]
		}
		specF := float64(spec) / float64(m.Dyn)
		guardF := float64(guard) / float64(m.Dyn)
		rep.Rows = append(rep.Rows, Row{Label: name, Values: []float64{specF, guardF}})
		sumSpec += specF
		sumGuard += guardF
	}
	rep.Rows = append(rep.Rows, Row{Label: "Average", Values: []float64{sumSpec / 8, sumGuard / 8}})
	return rep, nil
}

// Figure7 reproduces the dynamic width distribution for the three value
// range mechanisms: none (the original binary), VRP, and VRS.
func (s *Suite) Figure7(threshold float64) (*Report, error) {
	variants := []struct{ label, variant string }{
		{"non", "base"},
		{"VRP", "vrp"},
		{"VRS 50uJ", vrsVariant(threshold)},
	}
	rep := &Report{
		ID:      "fig7",
		Title:   "Run-time instructions according to width",
		Columns: []string{"8 bits", "16 bits", "32 bits", "64 bits"},
		Percent: true,
	}
	for _, v := range variants {
		var h vrp.WidthHistogram
		for _, name := range s.Names() {
			hw, err := s.DynWidthHistogram(name, v.variant)
			if err != nil {
				return nil, err
			}
			for i := 0; i < 4; i++ {
				h.Count[i] += hw.Count[i]
			}
		}
		rep.Rows = append(rep.Rows, Row{Label: v.label, Values: fractions(h)})
	}
	rep.Note = "our VRS gains are instruction eliminations plus guards (full-width compares), so its width shift is smaller than the paper's"
	return rep, nil
}

func vrsVariant(threshold float64) string {
	if threshold == float64(int(threshold)) {
		return "vrs" + itoa(int(threshold))
	}
	return "vrs50"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Figure12 reproduces the data-size distribution: the share of dynamic
// result values needing 1..8 significant bytes. The 5-byte peak comes from
// memory addresses (33+ bits), as in the paper.
func (s *Suite) Figure12() (*Report, error) {
	var counts [9]int64
	var total int64
	for _, name := range s.Names() {
		p, err := s.Program(name, s.evalClass())
		if err != nil {
			return nil, err
		}
		m := emu.New(p)
		m.Trace = func(ev emu.Event) {
			if _, ok := ev.Ins.Dest(); !ok {
				return
			}
			counts[power.SignificantBytes(ev.Value)]++
			total++
		}
		if err := m.Run(); err != nil {
			return nil, err
		}
	}
	rep := &Report{
		ID:      "fig12",
		Title:   "Data size distribution (significant bytes of produced values)",
		Columns: []string{"1", "2", "3", "4", "5", "6", "7", "8"},
		Percent: true,
	}
	row := Row{Label: "occurrence"}
	for b := 1; b <= 8; b++ {
		row.Values = append(row.Values, float64(counts[b])/float64(total))
	}
	rep.Rows = append(rep.Rows, row)
	return rep, nil
}
