package harness

import (
	"context"
	"fmt"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/vrp"
	"opgate/internal/vrs"
)

// Figure2 reproduces the dynamic instruction-width distribution under
// conventional vs proposed (useful) value range propagation, averaged over
// the suite. The proposed analysis must find strictly more narrow
// instructions.
func (s *Suite) Figure2(ctx context.Context) (*Report, error) {
	type pair struct{ conv, useful vrp.WidthHistogram }
	pairs, err := mapNames(ctx, s, func(name string) (pair, error) {
		var pr pair
		var err error
		if pr.conv, err = s.DynWidthHistogram(name, "vrp-conv"); err != nil {
			return pr, err
		}
		pr.useful, err = s.DynWidthHistogram(name, "vrp")
		return pr, err
	})
	if err != nil {
		return nil, err
	}
	var conv, useful vrp.WidthHistogram
	for _, pr := range pairs {
		for i := 0; i < 4; i++ {
			conv.Count[i] += pr.conv.Count[i]
			useful.Count[i] += pr.useful.Count[i]
		}
	}
	rep := &Report{
		ID:      "fig2",
		Title:   "Dynamic instruction distribution by width: conventional vs proposed VRP",
		Unit:    "fraction",
		Columns: []string{"8 bits", "16 bits", "32 bits", "64 bits"},
		Percent: true,
	}
	rep.Rows = append(rep.Rows,
		Row{Label: "Conventional VRP", Values: fractions(conv)},
		Row{Label: "Proposed VRP", Values: fractions(useful)},
	)
	return rep, nil
}

func fractions(h vrp.WidthHistogram) []float64 {
	return []float64{h.Fraction(0), h.Fraction(1), h.Fraction(2), h.Fraction(3)}
}

// Figure4 reproduces the disposition of profiled points per benchmark:
// specialized, dependent on another point (subsumed), or no benefit.
func (s *Suite) Figure4(ctx context.Context, threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig4",
		Title:   "Distribution of the points profiled after specialization",
		Unit:    "fraction",
		Units:   []string{"count", "fraction", "fraction", "fraction"},
		Columns: []string{"points", "specialized", "dependent", "no benefit"},
	}
	type pts struct{ n, spec, dep float64 }
	results, err := mapNames(ctx, s, func(name string) (pts, error) {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return pts{}, err
		}
		var p pts
		for i := range r.Points {
			switch r.Points[i].Outcome {
			case vrs.Specialized:
				p.spec++
			case vrs.Subsumed:
				p.dep++
			}
		}
		p.n = float64(len(r.Points))
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	var totPts, totSpec, totDep float64
	for i, name := range s.Names() {
		p := results[i]
		row := Row{Label: name, Values: []float64{p.n, 0, 0, 0}}
		if p.n > 0 {
			row.Values[1] = p.spec / p.n
			row.Values[2] = p.dep / p.n
			row.Values[3] = (p.n - p.spec - p.dep) / p.n
		}
		rep.Rows = append(rep.Rows, row)
		totPts += p.n
		totSpec += p.spec
		totDep += p.dep
	}
	if totPts > 0 {
		rep.Rows = append(rep.Rows, Row{Label: "Average", Values: []float64{
			totPts / float64(len(results)), totSpec / totPts, totDep / totPts,
			1 - (totSpec+totDep)/totPts}})
	}
	rep.Note = "columns 2-4 are fractions of profiled points; column 1 is the count (the paper's bar annotations)"
	return rep, nil
}

// Figure5 reproduces the static disposition of instructions inside
// specialized regions: kept (re-ranged) vs eliminated by constant
// propagation and dead-code elimination.
func (s *Suite) Figure5(ctx context.Context, threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Title:   "Distribution of the specialized instructions at compile time",
		Unit:    "fraction",
		Units:   []string{"count", "fraction", "fraction"},
		Columns: []string{"static instrs", "specialized", "eliminated"},
	}
	rows, err := mapNames(ctx, s, func(name string) (Row, error) {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return Row{}, err
		}
		total := float64(r.StaticSpecialized + r.StaticEliminated)
		row := Row{Label: name, Values: []float64{total, 0, 0}}
		if total > 0 {
			row.Values[1] = float64(r.StaticSpecialized) / total
			row.Values[2] = float64(r.StaticEliminated) / total
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, rows...)
	rep.Note = "benchmarks with zero profitable points have empty rows (the paper's gcc-like cases specialize most)"
	return rep, nil
}

// Figure6 reproduces the run-time share of specialized instructions and of
// the specialization comparisons (guards).
func (s *Suite) Figure6(ctx context.Context, threshold float64) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "Distribution of run-time instructions: specialized vs guard comparisons",
		Unit:    "fraction",
		Columns: []string{"specialized", "comparisons"},
		Percent: true,
	}
	rows, err := mapNames(ctx, s, func(name string) (Row, error) {
		r, err := s.VRS(name, threshold)
		if err != nil {
			return Row{}, err
		}
		// Per-static execution counts come from the variant's cached
		// trace records; no fresh emulation or InsCount run is needed.
		variant := vrsVariant(threshold)
		p, err := s.variantProgram(name, variant)
		if err != nil {
			return Row{}, err
		}
		counts := make([]int64, len(p.Ins))
		var dyn int64
		if err := s.recordsOf(name, variant, emu.RecFunc(func(b emu.RecBatch) {
			for _, idx := range b.Idx {
				counts[idx]++
			}
			dyn += int64(b.Len())
		})); err != nil {
			return Row{}, err
		}
		var spec, guard int64
		for idx := range r.SpecIns {
			spec += counts[idx]
		}
		for idx := range r.GuardIns {
			guard += counts[idx]
		}
		specF := float64(spec) / float64(dyn)
		guardF := float64(guard) / float64(dyn)
		return Row{Label: name, Values: []float64{specF, guardF}}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumSpec, sumGuard float64
	for _, row := range rows {
		rep.Rows = append(rep.Rows, row)
		sumSpec += row.Values[0]
		sumGuard += row.Values[1]
	}
	n := float64(len(rows))
	rep.Rows = append(rep.Rows, Row{Label: "Average", Values: []float64{sumSpec / n, sumGuard / n}})
	return rep, nil
}

// Figure7 reproduces the dynamic width distribution for the three value
// range mechanisms: none (the original binary), VRP, and VRS.
func (s *Suite) Figure7(ctx context.Context, threshold float64) (*Report, error) {
	variants := []struct{ label, variant string }{
		{"non", "base"},
		{"VRP", "vrp"},
		{vrsLabel(threshold, "uJ"), vrsVariant(threshold)},
	}
	rep := &Report{
		ID:      "fig7",
		Title:   "Run-time instructions according to width",
		Unit:    "fraction",
		Columns: []string{"8 bits", "16 bits", "32 bits", "64 bits"},
		Percent: true,
	}
	for _, v := range variants {
		hists, err := mapNames(ctx, s, func(name string) (vrp.WidthHistogram, error) {
			return s.DynWidthHistogram(name, v.variant)
		})
		if err != nil {
			return nil, err
		}
		var h vrp.WidthHistogram
		for _, hw := range hists {
			for i := 0; i < 4; i++ {
				h.Count[i] += hw.Count[i]
			}
		}
		rep.Rows = append(rep.Rows, Row{Label: v.label, Values: fractions(h)})
	}
	rep.Note = "our VRS gains are instruction eliminations plus guards (full-width compares), so its width shift is smaller than the paper's"
	return rep, nil
}

// vrsVariant names the VRS variant cache key for a threshold (%g renders
// integral thresholds without a decimal point, e.g. "vrs50").
func vrsVariant(threshold float64) string {
	return fmt.Sprintf("vrs%g", threshold)
}

// vrsLabel names a VRS report row/column for a threshold with the same %g
// rendering as vrsVariant, so non-integral grids (reachable via Sweep and
// AtThreshold) never truncate or collide in report labels.
func vrsLabel(threshold float64, unit string) string {
	return fmt.Sprintf("VRS %g%s", threshold, unit)
}

// vrpVRSColumns is the x-axis of Figs. 8 and 11: VRP followed by the
// paper's VRS threshold grid.
func vrpVRSColumns() []string {
	cols := make([]string, 0, 1+len(Thresholds))
	cols = append(cols, "VRP")
	for _, th := range Thresholds {
		cols = append(cols, vrsLabel(th, "nJ"))
	}
	return cols
}

// Figure12 reproduces the data-size distribution: the share of dynamic
// result values needing 1..8 significant bytes. The 5-byte peak comes from
// memory addresses (33+ bits), as in the paper.
func (s *Suite) Figure12(ctx context.Context) (*Report, error) {
	type tally struct {
		counts [9]int64
		total  int64
	}
	tallies, err := mapNames(ctx, s, func(name string) (*tally, error) {
		t := new(tally)
		// The destination-write bit is folded into the packed record, so
		// the tally reads the cached base trace without re-deriving
		// Dest() per event (or re-emulating).
		err := s.recordsOf(name, "base", emu.RecFunc(func(b emu.RecBatch) {
			for i, fl := range b.Flags {
				if fl&emu.RecWritesDest == 0 {
					continue
				}
				t.counts[power.SignificantBytes(b.Value[i])]++
				t.total++
			}
		}))
		if err != nil {
			return nil, err
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	var counts [9]int64
	var total int64
	for _, t := range tallies {
		for i := range t.counts {
			counts[i] += t.counts[i]
		}
		total += t.total
	}
	rep := &Report{
		ID:      "fig12",
		Title:   "Data size distribution (significant bytes of produced values)",
		Unit:    "fraction",
		Columns: []string{"1", "2", "3", "4", "5", "6", "7", "8"},
		Percent: true,
	}
	row := Row{Label: "occurrence"}
	for b := 1; b <= 8; b++ {
		row.Values = append(row.Values, float64(counts[b])/float64(total))
	}
	rep.Rows = append(rep.Rows, row)
	return rep, nil
}
