package harness

import (
	"fmt"
	"sync"

	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/store"
	"opgate/internal/tracework"
	"opgate/internal/workload"
)

// Trace-backed workloads ("trace:<name>") run through the suite on the
// replay path alone: their program is the skeleton synthesized at import
// time and their retirement stream is the imported trace, both served
// from the Store. The integration points are deliberately few — Program
// resolves the skeleton through the trace library, traceWith serves the
// imported blob through the ordinary store.GetTrace path (hit-or-error:
// there is nothing to emulate on a miss), and everything that would need
// a live emulation (VRS training, non-base variants, Unfused mode) is
// gated with errors wrapping workload.ErrTraceOnly. Every replay-only
// experiment — the width figures, the gating mode matrices over the base
// binary — then runs unmodified, fused mode-groups and all, with zero
// suite-level emulations.

// library returns the suite's imported-trace library, bound lazily to
// the Store.
func (s *Suite) library() (*tracework.Library, error) {
	if s.Store == nil {
		return nil, fmt.Errorf("harness: trace-backed workloads need a store (run with -store)")
	}
	s.libOnce.Do(func() { s.lib = tracework.NewLibrary(s.Store) })
	return s.lib, nil
}

// traceOnlyErr is the uniform gate for operations a trace-backed
// workload cannot perform. errors.Is(err, workload.ErrTraceOnly) holds.
func traceOnlyErr(name, op string) error {
	return fmt.Errorf("harness: %s of %s needs a live emulation: %w", op, name, workload.ErrTraceOnly)
}

// traceProgram resolves a trace-backed workload's skeleton for an input
// class (Program's IsTrace branch).
func (s *Suite) traceProgram(name string, class workload.InputClass) (*prog.Program, error) {
	lib, err := s.library()
	if err != nil {
		return nil, err
	}
	p, _, err := lib.Skeleton(name, class)
	return p, err
}

// traceTrace serves a trace-backed workload's retirement trace
// (traceWith's IsTrace branch): the imported blob under its content
// address, hit-or-error. The TraceBudget does not apply — replay of the
// imported records is the workload's only runnable form, so skipping an
// oversized trace would not save an emulation, it would break the
// workload.
func (s *Suite) traceTrace(name, variant string) (*emu.Trace, error) {
	if variant != "base" {
		return nil, traceOnlyErr(name, "variant "+variant)
	}
	p, err := s.variantProgram(name, variant)
	if err != nil {
		return nil, err
	}
	identity := store.ProgramIdentity(p)
	key := store.TraceKey(name, variant, s.evalClass().String(), identity)
	if tr, ok := s.Store.GetTrace(key, p, identity); ok {
		return tr, nil
	}
	// The skeleton resolved but its blob is gone (eviction, corruption):
	// same remedy as never imported.
	return nil, &tracework.NotImportedError{Name: name, Class: s.evalClass().String()}
}

// traceLibState is the lazily bound library (embedded in Suite).
type traceLibState struct {
	libOnce sync.Once
	lib     *tracework.Library
}
