package ring

import (
	"fmt"
	"testing"
)

// TestOwnerDeterministicAcrossConstruction: two rings built from the
// same member list agree on every key — the property the fleet relies
// on, since each node computes its own ring. Member-list order must not
// matter either: operators pass -peers in whatever order.
func TestOwnerDeterministicAcrossConstruction(t *testing.T) {
	a, err := New([]string{"http://n1:8080", "http://n2:8080", "http://n3:8080"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"http://n3:8080", "http://n1:8080", "http://n2:8080"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings built from reordered members disagree on %q: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestOwnerBalance: virtual points keep the key split between members
// within a loose band — no member starves or hogs.
func TestOwnerBalance(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / len(members)
	for _, m := range members {
		if c := counts[m]; c < want/2 || c > want*2 {
			t.Fatalf("member %q owns %d of %d keys (fair share %d): split too skewed %v",
				m, c, keys, want, counts)
		}
	}
}

// TestOwnerStabilityUnderMembershipChange: removing one member from a
// 4-ring must remap only (about) that member's share — the consistent
// part of consistent hashing.
func TestOwnerStabilityUnderMembershipChange(t *testing.T) {
	full, err := New([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "d" {
			if after == "d" {
				t.Fatal("departed member still owns keys")
			}
			continue // its share must move somewhere
		}
		if before != after {
			moved++
		}
	}
	// Keys not owned by the departed member should essentially all stay
	// put; allow a tiny tolerance for point-adjacency effects.
	if moved > keys/50 {
		t.Fatalf("%d of %d keys not owned by the departed member were remapped", moved, keys)
	}
}

// TestRingValidation pins the construction error cases.
func TestRingValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("empty member accepted")
	}
	if _, err := New([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewReplicas([]string{"a"}, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

// TestSingleMemberOwnsEverything: the degenerate one-node fleet routes
// every key to itself.
func TestSingleMemberOwnsEverything(t *testing.T) {
	r, err := New([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r.Owner(fmt.Sprintf("k%d", i)) != "solo" {
			t.Fatal("single-member ring routed a key elsewhere")
		}
	}
	if !r.Contains("solo") || r.Contains("ghost") {
		t.Fatal("Contains misreports membership")
	}
}
