// Package ring implements the consistent-hash ring that shards report
// keys across an opgated fleet. Membership is static — every node is
// started with the same -peers list and computes the same ring — so
// ownership is a pure function of (members, key): no coordination, no
// gossip, no shared state. Each member is expanded into a fixed number
// of virtual points (SHA-256 of "member#i") on a uint64 circle; a key
// hashes onto the circle and is owned by the first point clockwise.
// Virtual points smooth the load split (with one point per member, two
// nodes can end up with a 90/10 split; with 64 each the imbalance is a
// few percent) and keep remapping minimal when the member list changes:
// only keys adjacent to the departed member's points move.
//
// The ring decides *placement*, never availability: callers that find
// the owner unreachable fall back to computing locally, which is always
// correct because keys are content addresses — any node can recompute
// any object.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-point count per member used by New.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring. Safe for concurrent use.
type Ring struct {
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member int // index into members
}

// New builds a ring over members with DefaultReplicas virtual points
// each. Members must be non-empty and unique (duplicate entries would
// silently double a node's share).
func New(members []string) (*Ring, error) {
	return NewReplicas(members, DefaultReplicas)
}

// NewReplicas is New with an explicit virtual-point count per member.
func NewReplicas(members []string, replicas int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("ring: replicas %d: must be > 0", replicas)
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]point, 0, len(members)*replicas),
	}
	for mi, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member")
		}
		if seen[m] {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
		seen[m] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{
				hash:   pointHash(fmt.Sprintf("%s#%d", m, i)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on member index so ordering (and thus ownership) is
		// deterministic even in the astronomically unlikely collision.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// pointHash maps a label onto the uint64 circle.
func pointHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the member of the first virtual
// point at or clockwise of the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := pointHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the ring's member list in construction order.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Contains reports whether m is a ring member.
func (r *Ring) Contains(m string) bool {
	for _, have := range r.members {
		if have == m {
			return true
		}
	}
	return false
}
