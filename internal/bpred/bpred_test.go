package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	misses := 0
	for i := 0; i < 1000; i++ {
		pred := p.Predict(100)
		if p.Update(100, true) {
			misses++
		}
		_ = pred
	}
	if misses > 5 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", misses)
	}
}

func TestLoopExitPattern(t *testing.T) {
	// Taken 9 times, not-taken once, repeated: a good predictor stays
	// near the 10% floor (the exit is hard without loop counters).
	p := New(DefaultConfig())
	misses := 0
	total := 0
	for rep := 0; rep < 200; rep++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if p.Update(200, taken) {
				misses++
			}
			total++
		}
	}
	rate := float64(misses) / float64(total)
	if rate > 0.25 {
		t.Errorf("loop pattern miss rate %.3f too high", rate)
	}
}

func TestGshareBeatsBimodalOnCorrelated(t *testing.T) {
	// Alternating T/NT is hopeless for bimodal but trivial for gshare
	// history; the chooser must learn to trust gshare.
	p := New(DefaultConfig())
	misses := 0
	taken := false
	for i := 0; i < 4000; i++ {
		taken = !taken
		if p.Update(300, taken) {
			misses++
		}
	}
	rate := float64(misses) / 4000
	if rate > 0.1 {
		t.Errorf("alternating pattern miss rate %.3f; gshare should nail it", rate)
	}
}

func TestRandomPatternNearChance(t *testing.T) {
	p := New(DefaultConfig())
	r := rand.New(rand.NewSource(6))
	misses := 0
	for i := 0; i < 4000; i++ {
		if p.Update(400, r.Intn(2) == 0) {
			misses++
		}
	}
	rate := float64(misses) / 4000
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random pattern miss rate %.3f, expected near 0.5", rate)
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	p.Call(10)
	p.Call(20)
	if p.Return(20) {
		t.Error("innermost return mispredicted")
	}
	if p.Return(10) {
		t.Error("outer return mispredicted")
	}
	// Empty stack: always a miss.
	if !p.Return(30) {
		t.Error("empty-RAS return predicted correctly?!")
	}
}

func TestRASOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 4
	p := New(cfg)
	for i := 0; i < 8; i++ {
		p.Call(i)
	}
	// The newest four survive.
	for i := 7; i >= 4; i-- {
		if p.Return(i) {
			t.Errorf("return to %d mispredicted", i)
		}
	}
}

func TestMissRateAccounting(t *testing.T) {
	p := New(DefaultConfig())
	if p.MissRate() != 0 {
		t.Error("fresh predictor has nonzero miss rate")
	}
	p.Predict(1)
	p.Update(1, true)
	if p.Lookups == 0 {
		t.Error("lookups not counted")
	}
}
