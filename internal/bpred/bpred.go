// Package bpred implements the combined branch predictor of Table 2: a
// gshare component with 64K 2-bit counters and 16 bits of global history,
// a bimodal component with 2K 2-bit counters, and a 1K-entry chooser that
// learns which component to trust per branch. A return-address stack
// predicts returns.
package bpred

// counter is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes the predictor tables (entries must be powers of two).
type Config struct {
	GshareEntries  int
	HistoryBits    int
	BimodalEntries int
	ChooserEntries int
	RASEntries     int
}

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config {
	return Config{
		GshareEntries:  64 * 1024,
		HistoryBits:    16,
		BimodalEntries: 2 * 1024,
		ChooserEntries: 1024,
		RASEntries:     16,
	}
}

// Predictor is a combined (tournament) branch predictor.
type Predictor struct {
	cfg     Config
	gshare  []counter
	bimodal []counter
	chooser []counter // >=2: trust gshare
	history uint32
	ras     []int

	// Statistics.
	Lookups     int64
	Mispredicts int64
}

// New builds a predictor; counters start weakly not-taken, the chooser
// unbiased.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]counter, cfg.GshareEntries),
		bimodal: make([]counter, cfg.BimodalEntries),
		chooser: make([]counter, cfg.ChooserEntries),
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

func (p *Predictor) gshareIndex(pc int) int {
	h := p.history & (1<<uint(p.cfg.HistoryBits) - 1)
	return (pc ^ int(h)) & (p.cfg.GshareEntries - 1)
}

// Predict returns the predicted direction for a conditional branch at pc.
func (p *Predictor) Predict(pc int) bool {
	p.Lookups++
	g := p.gshare[p.gshareIndex(pc)].taken()
	b := p.bimodal[pc&(p.cfg.BimodalEntries-1)].taken()
	if p.chooser[pc&(p.cfg.ChooserEntries-1)].taken() {
		return g
	}
	return b
}

// Update trains the predictor with the actual outcome and reports whether
// the earlier prediction would have been wrong.
func (p *Predictor) Update(pc int, taken bool) bool {
	gi := p.gshareIndex(pc)
	bi := pc & (p.cfg.BimodalEntries - 1)
	ci := pc & (p.cfg.ChooserEntries - 1)

	g := p.gshare[gi].taken()
	b := p.bimodal[bi].taken()
	var pred bool
	if p.chooser[ci].taken() {
		pred = g
	} else {
		pred = b
	}

	// Chooser trains toward the component that was right (only when they
	// disagree).
	if g != b {
		p.chooser[ci] = p.chooser[ci].update(g == taken)
	}
	p.gshare[gi] = p.gshare[gi].update(taken)
	p.bimodal[bi] = p.bimodal[bi].update(taken)
	p.history = p.history<<1 | b2u(taken)

	miss := pred != taken
	if miss {
		p.Mispredicts++
	}
	return miss
}

// Call pushes a return address on the RAS.
func (p *Predictor) Call(returnTo int) {
	if len(p.ras) >= p.cfg.RASEntries {
		copy(p.ras, p.ras[1:])
		p.ras = p.ras[:len(p.ras)-1]
	}
	p.ras = append(p.ras, returnTo)
}

// Return pops the RAS and reports the predicted return target and whether
// the prediction matched actual.
func (p *Predictor) Return(actual int) bool {
	p.Lookups++
	if len(p.ras) == 0 {
		p.Mispredicts++
		return true
	}
	top := p.ras[len(p.ras)-1]
	p.ras = p.ras[:len(p.ras)-1]
	miss := top != actual
	if miss {
		p.Mispredicts++
	}
	return miss
}

// MissRate returns the fraction of mispredicted lookups.
func (p *Predictor) MissRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
