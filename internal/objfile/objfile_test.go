package objfile

import (
	"bytes"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/vrp"
	"opgate/internal/workload"
)

// TestRoundTripAllWorkloads: every kernel survives serialise → deserialise
// with identical behaviour.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Build(workload.Train)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, p); err != nil {
				t.Fatal(err)
			}
			q, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(q.Ins) != len(p.Ins) || len(q.Funcs) != len(p.Funcs) {
				t.Fatalf("structure changed: %d/%d ins, %d/%d funcs",
					len(q.Ins), len(p.Ins), len(q.Funcs), len(p.Funcs))
			}
			if err := emu.CheckEquivalence(p, q); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBinaryTranslationFlow: the paper's static-binary-translation route —
// load an image, run VRP, emit a re-encoded image — without any assembly
// text in the loop.
func TestBinaryTranslationFlow(t *testing.T) {
	w, _ := workload.ByName("ijpeg")
	p, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := Write(&in, p); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&in)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrp.Analyze(loaded, vrp.Options{Mode: vrp.Useful})
	if err != nil {
		t.Fatal(err)
	}
	optimized := r.Apply()
	var out bytes.Buffer
	if err := Write(&out, optimized); err != nil {
		t.Fatal(err)
	}
	final, err := Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.CheckEquivalence(p, final); err != nil {
		t.Fatal(err)
	}
	// The translated image actually carries the narrow opcodes.
	narrow := 0
	for i := range final.Ins {
		if final.Ins[i].Width < p.Ins[i].Width {
			narrow++
		}
	}
	if narrow == 0 {
		t.Error("translated image carries no narrowed opcodes")
	}
}

func TestCorruptImagesRejected(t *testing.T) {
	w, _ := workload.ByName("perl")
	p, _ := w.Build(workload.Train)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), good[4:]...),
		"truncated":   good[:len(good)/2],
		"version":     append(append([]byte{}, good[:4]...), 0xFF, 0xFF, 0xFF, 0xFF),
		"short magic": good[:3],
	}
	for name, img := range cases {
		if _, err := Read(bytes.NewReader(img)); err == nil {
			t.Errorf("%s image accepted", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	w, _ := workload.ByName("compress")
	p, _ := w.Build(workload.Train)
	path := t.TempDir() + "/prog.og64"
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.CheckEquivalence(p, q); err != nil {
		t.Fatal(err)
	}
}
