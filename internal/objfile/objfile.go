// Package objfile defines the OG64 object format: a self-contained binary
// container for a program image — encoded instructions, the function
// table, the data segment, and the symbol table. It is what makes the
// binary-optimizer story complete: ogasm emits object files, ogopt and
// ogsim consume them, and a static binary translator (the paper's second
// deployment route, §1) round-trips programs without assembly text.
//
// Layout (all little-endian):
//
//	magic   "OG64" (4 bytes)
//	version u32
//	entry   u32                    index into the function table
//	dataBase, memSize  u64
//	nIns    u32, then nIns × u64   encoded instructions
//	nFuncs  u32, then per function: nameLen u16, name, start u32, end u32
//	nSyms   u32, then per symbol:  nameLen u16, name, index u32
//	nData   u32, then raw data segment bytes
package objfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"opgate/internal/isa"
	"opgate/internal/prog"
)

var magic = [4]byte{'O', 'G', '6', '4'}

// Version of the object format.
const Version = 1

// Write serialises the program to w.
func Write(w io.Writer, p *prog.Program) error {
	words, err := isa.EncodeProgram(p.Ins)
	if err != nil {
		return fmt.Errorf("objfile: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	writeU32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeU64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	writeStr := func(s string) error {
		if len(s) > 1<<16-1 {
			return fmt.Errorf("objfile: name %q too long", s)
		}
		var b [2]byte
		le.PutUint16(b[:], uint16(len(s)))
		buf.Write(b[:])
		buf.WriteString(s)
		return nil
	}

	writeU32(Version)
	writeU32(uint32(p.Entry))
	writeU64(uint64(p.DataBase))
	writeU64(uint64(p.MemSize))

	writeU32(uint32(len(words)))
	for _, wd := range words {
		writeU64(wd)
	}

	writeU32(uint32(len(p.Funcs)))
	for _, f := range p.Funcs {
		if err := writeStr(f.Name); err != nil {
			return err
		}
		writeU32(uint32(f.Start))
		writeU32(uint32(f.End))
	}

	// Symbols, in sorted order for determinism.
	names := make([]string, 0, len(p.Labels))
	for n := range p.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	writeU32(uint32(len(names)))
	for _, n := range names {
		if err := writeStr(n); err != nil {
			return err
		}
		writeU32(uint32(p.Labels[n]))
	}

	writeU32(uint32(len(p.Data)))
	buf.Write(p.Data)

	_, err = w.Write(buf.Bytes())
	return err
}

// WriteFile serialises the program to a file.
func WriteFile(path string, p *prog.Program) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, p)
}

// Read deserialises a program image and runs structural analysis on it.
func Read(r io.Reader) (*prog.Program, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	d := &decoder{raw: raw}
	var m [4]byte
	d.bytes(m[:])
	if m != magic {
		return nil, fmt.Errorf("objfile: bad magic %q", m)
	}
	if v := d.u32(); v != Version {
		return nil, fmt.Errorf("objfile: unsupported version %d", v)
	}
	p := &prog.Program{Labels: map[string]int{}}
	p.Entry = int(d.u32())
	p.DataBase = int64(d.u64())
	p.MemSize = int64(d.u64())

	nIns := int(d.u32())
	if nIns < 0 || nIns > 1<<24 {
		return nil, fmt.Errorf("objfile: implausible instruction count %d", nIns)
	}
	words := make([]uint64, nIns)
	for i := range words {
		words[i] = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	ins, err := isa.DecodeProgram(words)
	if err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	p.Ins = ins

	nFuncs := int(d.u32())
	for i := 0; i < nFuncs; i++ {
		name := d.str()
		start := int(d.u32())
		end := int(d.u32())
		p.Funcs = append(p.Funcs, &prog.Func{Name: name, Index: i, Start: start, End: end})
	}

	nSyms := int(d.u32())
	for i := 0; i < nSyms; i++ {
		name := d.str()
		p.Labels[name] = int(d.u32())
	}

	nData := int(d.u32())
	if nData >= 0 && nData <= d.remaining() {
		p.Data = make([]byte, nData)
		d.bytes(p.Data)
	} else if d.err == nil {
		d.err = fmt.Errorf("objfile: truncated data segment")
	}
	if d.err != nil {
		return nil, d.err
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("objfile: invalid image: %w", err)
	}
	if err := p.Analyze(); err != nil {
		return nil, fmt.Errorf("objfile: analysis: %w", err)
	}
	return p, nil
}

// ReadFile loads a program image from a file.
func ReadFile(path string) (*prog.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	raw []byte
	off int
	err error
}

func (d *decoder) remaining() int { return len(d.raw) - d.off }

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.raw) {
		d.err = fmt.Errorf("objfile: truncated at offset %d (need %d bytes)", d.off, n)
		return false
	}
	return true
}

func (d *decoder) bytes(dst []byte) {
	if !d.need(len(dst)) {
		return
	}
	copy(dst, d.raw[d.off:])
	d.off += len(dst)
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.raw[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.raw[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	if !d.need(2) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.raw[d.off:]))
	d.off += 2
	if !d.need(n) {
		return ""
	}
	s := string(d.raw[d.off : d.off+n])
	d.off += n
	return s
}
