package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the journal's stream
// decoder. The invariants: the decoder never panics; whatever it rejects
// it rejects by stopping (torn-tail tolerance — never an error the caller
// must handle); and whatever it accepts is canonical — re-encoding the
// accepted records reproduces exactly the consumed prefix of the input,
// bit for bit, with strictly increasing sequence numbers. Seed corpus:
// a valid multi-record stream plus one representative of each damage
// class under testdata/fuzz/FuzzJournalDecode, regenerable with
// `go test ./internal/journal -run TestJournalFuzzCorpusSeeds -regen-corpus`.
func FuzzJournalDecode(f *testing.F) {
	for _, seed := range fuzzCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed := DecodeStream(data)
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		var re []byte
		lastSeq := uint64(0)
		for _, r := range recs {
			if r.Seq <= lastSeq {
				t.Fatalf("accepted non-monotonic seq %d after %d", r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			re = append(re, EncodeRecord(r)...)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("accepted stream is not canonical: re-encode is %d bytes, consumed %d", len(re), consumed)
		}
		// Record-level decode must agree with the stream: each accepted
		// record round-trips alone, and rejects are clean errors.
		for _, r := range recs {
			frame := EncodeRecord(r)
			back, n, err := DecodeRecord(frame)
			if err != nil || n != len(frame) {
				t.Fatalf("record re-decode failed: %v (consumed %d of %d)", err, n, len(frame))
			}
			if !bytes.Equal(EncodeRecord(back), frame) {
				t.Fatal("record-level round trip is not canonical")
			}
		}
	})
}
