package journal

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the committed FuzzJournalDecode seed corpus")

// fuzzCorpusSeeds returns the deterministic seed inputs: a valid
// multi-record stream plus one representative of each damage class, so
// the fuzzer starts at every rejection branch.
func fuzzCorpusSeeds() [][]byte {
	full := Record{
		Seq: 1, Time: 1700000000000000000, Job: "job-000001", Status: "queued",
		Experiment: "fig8", Threshold: 50,
		Synthetics: []string{"syn:narrow/small/1", "syn:pointer/medium/7"},
		ReportKey:  "deadbeef", Err: "",
	}
	done := full
	done.Seq, done.Status, done.Err = 2, "failed", "injected: boom"

	var stream []byte
	stream = append(stream, EncodeRecord(full)...)
	stream = append(stream, EncodeRecord(done)...)

	torn := append([]byte{}, stream[:len(stream)-7]...)
	flipped := append([]byte{}, stream...)
	flipped[frameHeaderSize+3] ^= 0x01 // payload byte: CRC catches it
	lengthLies := append([]byte{}, stream...)
	binary.LittleEndian.PutUint32(lengthLies, maxPayload+1)
	backwards := append([]byte{}, EncodeRecord(done)...)
	backwards = append(backwards, EncodeRecord(full)...) // seq 2 then 1

	return [][]byte{
		stream,
		torn,
		flipped,
		lengthLies,
		backwards,
		{0x01, 0x00, 0x00, 0x00}, // header shorter than frameHeaderSize
		{},
	}
}

// TestJournalFuzzCorpusSeeds pins the committed fuzz corpus to
// fuzzCorpusSeeds: plain `go test` replays the committed files through
// FuzzJournalDecode, and this test guarantees they stay in sync with the
// wire format (rewrite with -regen-corpus after a deliberate change).
func TestJournalFuzzCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	for i, e := range fuzzCorpusSeeds() {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", e)
		if *regenCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing corpus entry (regenerate with -regen-corpus): %v", err)
		}
		if string(got) != content {
			t.Errorf("%s is stale (regenerate with -regen-corpus)", name)
		}
	}
}
