// Package journal is the crash-durability layer under opgated's job
// lifecycle: an append-only, CRC-guarded record log written through the
// store's FS seam, so a process killed at any point — SIGKILL, OOM,
// power loss — can replay its accepted work at the next boot instead of
// dangling every client-held job ID.
//
// Wire format: the journal is a flat sequence of frames,
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with the payload a fixed-order, length-prefixed binary encoding of one
// Record. The format is deliberately torn-tail tolerant: a crash mid-
// append leaves a partial (or CRC-failing) final frame, and replay skips
// it silently — a torn tail is the expected crash artifact, never an
// error. Replay also stops at the first non-monotonic sequence number,
// so bytes after any damage are never misread as records. Because a
// valid prefix is all that is ever trusted, the decoder's acceptance is
// canonical: re-encoding the accepted records reproduces the consumed
// bytes exactly (FuzzJournalDecode pins this).
//
// Appends are fsynced; an append that fails mid-write rewrites the whole
// journal from the in-memory state (temp file + fsync + atomic rename +
// parent-directory fsync), so one bad write never poisons the tail for
// every later record. Once the log outgrows its byte budget, compaction
// rewrites only the latest record of each non-terminal job: terminal
// jobs' reports live in the content-addressed store, so their journal
// entries are history, not state — a client holding a retired terminal
// job ID falls back to the report key.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"opgate/internal/store"
)

// Record is one journaled job-lifecycle event. Every record carries the
// job's full definition, not just the transition, so any single surviving
// record is enough to re-adopt the job after a crash.
type Record struct {
	Seq        uint64   // monotonic, assigned by Append
	Time       int64    // UnixNano of the transition
	Job        string   // job ID ("job-000042")
	Status     string   // lifecycle status at this transition
	Experiment string   // job definition: experiment ID
	Threshold  float64  // job definition: VRS threshold
	Synthetics []string // job definition: expanded synthetic names
	ReportKey  string   // content address the finished report lands under
	Err        string   // terminal error message, when there is one
}

// Wire-format bounds: a frame advertising more than maxPayload bytes (or
// any string/list beyond its cap) is damage, not data. The caps are far
// above anything the server writes but low enough that hostile input
// cannot balloon allocations.
const (
	frameHeaderSize = 8       // u32 length + u32 CRC
	maxPayload      = 1 << 20 // bytes per record payload
	maxString       = 1 << 16 // bytes per string field
	maxSynthetics   = 1 << 12 // entries in the synthetic list
)

// crcTable is the Castagnoli polynomial, matching the store codec's
// choice of a hardware-accelerated CRC.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUint64 / appendString are the little-endian primitives of the
// canonical payload encoding.
func appendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// encodePayload renders the canonical payload: fixed field order, every
// variable-length field length-prefixed, no optionality — the bijection
// FuzzJournalDecode leans on.
func encodePayload(r Record) []byte {
	buf := make([]byte, 0, 64+len(r.Job)+len(r.Status)+len(r.Experiment)+len(r.ReportKey)+len(r.Err))
	buf = appendUint64(buf, r.Seq)
	buf = appendUint64(buf, uint64(r.Time))
	buf = appendUint64(buf, math.Float64bits(r.Threshold))
	buf = appendString(buf, r.Job)
	buf = appendString(buf, r.Status)
	buf = appendString(buf, r.Experiment)
	buf = appendString(buf, r.ReportKey)
	buf = appendString(buf, r.Err)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Synthetics)))
	for _, s := range r.Synthetics {
		buf = appendString(buf, s)
	}
	return buf
}

// EncodeRecord renders one complete frame: header plus canonical payload.
func EncodeRecord(r Record) []byte {
	payload := encodePayload(r)
	frame := make([]byte, 0, frameHeaderSize+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

// payloadReader walks a payload with bounds checking.
type payloadReader struct {
	data []byte
	off  int
}

func (p *payloadReader) uint64() (uint64, error) {
	if p.off+8 > len(p.data) {
		return 0, errors.New("journal: truncated integer")
	}
	v := binary.LittleEndian.Uint64(p.data[p.off:])
	p.off += 8
	return v, nil
}

func (p *payloadReader) uint32() (uint32, error) {
	if p.off+4 > len(p.data) {
		return 0, errors.New("journal: truncated length")
	}
	v := binary.LittleEndian.Uint32(p.data[p.off:])
	p.off += 4
	return v, nil
}

func (p *payloadReader) string() (string, error) {
	n, err := p.uint32()
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("journal: string length %d exceeds cap", n)
	}
	if p.off+int(n) > len(p.data) {
		return "", errors.New("journal: truncated string")
	}
	s := string(p.data[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

// decodePayload parses one canonical payload. It rejects anything the
// encoder could not have produced — truncation, over-cap lengths,
// trailing bytes — so accept implies canonical.
func decodePayload(payload []byte) (Record, error) {
	p := &payloadReader{data: payload}
	var r Record
	var err error
	if r.Seq, err = p.uint64(); err != nil {
		return r, err
	}
	t, err := p.uint64()
	if err != nil {
		return r, err
	}
	r.Time = int64(t)
	bits, err := p.uint64()
	if err != nil {
		return r, err
	}
	r.Threshold = math.Float64frombits(bits)
	for _, dst := range []*string{&r.Job, &r.Status, &r.Experiment, &r.ReportKey, &r.Err} {
		if *dst, err = p.string(); err != nil {
			return r, err
		}
	}
	n, err := p.uint32()
	if err != nil {
		return r, err
	}
	if n > maxSynthetics {
		return r, fmt.Errorf("journal: synthetic count %d exceeds cap", n)
	}
	for i := uint32(0); i < n; i++ {
		s, err := p.string()
		if err != nil {
			return r, err
		}
		r.Synthetics = append(r.Synthetics, s)
	}
	if p.off != len(payload) {
		return r, fmt.Errorf("journal: %d trailing payload bytes", len(payload)-p.off)
	}
	return r, nil
}

// DecodeRecord parses one frame from the head of data, returning the
// record and how many bytes it consumed. Any defect — short header,
// over-cap length, short payload, CRC mismatch, malformed payload — is
// an error; DecodeRecord never panics on arbitrary input.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < frameHeaderSize {
		return Record{}, 0, errors.New("journal: truncated frame header")
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if n > maxPayload {
		return Record{}, 0, fmt.Errorf("journal: frame length %d exceeds cap", n)
	}
	end := frameHeaderSize + int(n)
	if end > len(data) {
		return Record{}, 0, errors.New("journal: truncated frame payload")
	}
	payload := data[frameHeaderSize:end]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, errors.New("journal: frame CRC mismatch")
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, end, nil
}

// DecodeStream replays a journal byte stream: every valid frame from the
// head, stopping — silently — at the first defect or non-monotonic
// sequence number. It returns the records and how many bytes of data
// they occupy; consumed < len(data) means the tail was torn (the
// expected crash artifact) or damaged (everything after it is
// untrustworthy and treated as lost).
func DecodeStream(data []byte) (recs []Record, consumed int) {
	lastSeq := uint64(0)
	for consumed < len(data) {
		r, n, err := DecodeRecord(data[consumed:])
		if err != nil || r.Seq <= lastSeq {
			return recs, consumed
		}
		lastSeq = r.Seq
		recs = append(recs, r)
		consumed += n
	}
	return recs, consumed
}

// Reduce folds a replayed stream into the latest record per job, in
// first-appearance order — the state a recovering server re-adopts.
func Reduce(recs []Record) []Record {
	latest := map[string]int{}
	var order []string
	for i, r := range recs {
		if _, ok := latest[r.Job]; !ok {
			order = append(order, r.Job)
		}
		latest[r.Job] = i
	}
	out := make([]Record, 0, len(order))
	for _, job := range order {
		out = append(out, recs[latest[job]])
	}
	return out
}

// DefaultCompactBudget is the journal size that triggers a compaction.
// Job records are a few hundred bytes, so this keeps thousands of
// transitions of history while bounding replay work at boot.
const DefaultCompactBudget = 256 << 10

// Stats is a point-in-time snapshot of journal health counters.
type Stats struct {
	Seq          uint64 // last assigned sequence number
	SizeBytes    int64  // current on-disk size
	Live         int    // jobs tracked in memory (latest record each)
	Appends      int64  // successful straight-line appends
	AppendErrors int64  // appends that needed (or failed) a rewrite
	Compactions  int64  // budget-triggered rewrites
}

// Journal is an open job journal. All methods are safe for concurrent
// use; one process owns a journal file at a time.
type Journal struct {
	fs       store.FS
	path     string
	budget   int64
	terminal func(status string) bool // the status state machine's owner

	mu    sync.Mutex
	f     store.File
	seq   uint64
	size  int64
	state map[string]Record // latest record per job
	order []string          // job first-appearance order

	appends, appendErrors, compactions int64
}

// Open opens (creating if absent) the journal at path over fs, replaying
// any existing records. A torn or damaged tail is repaired in place — the
// valid prefix is rewritten so future appends land on sound bytes. The
// terminal predicate classifies statuses for compaction (which keeps only
// non-terminal jobs); budget <= 0 selects DefaultCompactBudget. The
// replayed records are returned for the caller to re-adopt.
func Open(path string, budget int64, terminal func(string) bool, fs store.FS) (*Journal, []Record, error) {
	if budget <= 0 {
		budget = DefaultCompactBudget
	}
	if fs == nil {
		fs = OSFS()
	}
	if err := fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal{fs: fs, path: path, budget: budget, terminal: terminal, state: map[string]Record{}}
	j.sweepStaleTemps()
	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	recs, consumed := DecodeStream(data)
	for _, r := range recs {
		j.absorbLocked(r)
	}
	if consumed < len(data) {
		// Torn tail: rewrite the valid prefix so the next append does not
		// land after unreadable bytes.
		if err := j.rewriteLocked(recs); err != nil {
			return nil, nil, fmt.Errorf("journal: repair %s: %w", path, err)
		}
	} else {
		f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
		j.f = f
		j.size = int64(consumed)
	}
	return j, recs, nil
}

// OSFS exposes the store's production filesystem for journal callers that
// have no store (journaling without -store).
func OSFS() store.FS { return store.OSFS() }

// tempPrefix is the staging-file prefix compaction rewrites use; Open
// sweeps leftovers from crashed rewrites.
func (j *Journal) tempPrefix() string { return filepath.Base(j.path) + ".tmp-" }

func (j *Journal) sweepStaleTemps() {
	dir := filepath.Dir(j.path)
	entries, err := j.fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), j.tempPrefix()) {
			_ = j.fs.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// absorbLocked folds one record into the in-memory latest-per-job state.
func (j *Journal) absorbLocked(r Record) {
	if _, ok := j.state[r.Job]; !ok {
		j.order = append(j.order, r.Job)
	}
	j.state[r.Job] = r
	if r.Seq > j.seq {
		j.seq = r.Seq
	}
}

// snapshotLocked returns the latest record of every tracked job —
// terminal included — in ascending sequence order.
func (j *Journal) snapshotLocked() []Record {
	recs := make([]Record, 0, len(j.state))
	for _, r := range j.state {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	return recs
}

// Append journals one record: it assigns the next sequence number (and a
// timestamp, when unset), writes the frame, and fsyncs. A failed write
// may leave a torn frame at the tail, so the error path rewrites the
// whole journal from memory — the record still reaches disk and later
// appends stay readable. Only when the rewrite also fails does Append
// return an error; the in-memory state is correct either way, so the
// journal heals on the next successful append.
func (j *Journal) Append(r Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	r.Seq = j.seq
	if r.Time == 0 {
		r.Time = time.Now().UnixNano()
	}
	j.absorbLocked(r)
	frame := EncodeRecord(r)
	var werr error
	if j.f == nil {
		werr = errors.New("journal: no append handle")
	} else {
		_, werr = j.f.Write(frame)
		if werr == nil {
			werr = j.f.Sync()
		}
	}
	if werr != nil {
		j.appendErrors++
		if rerr := j.rewriteLocked(j.snapshotLocked()); rerr != nil {
			j.closeFileLocked()
			return r.Seq, fmt.Errorf("journal: append: %w", errors.Join(werr, rerr))
		}
		return r.Seq, nil // recovered: the rewrite carried the record
	}
	j.appends++
	j.size += int64(len(frame))
	if j.size > j.budget {
		j.compactLocked()
	}
	return r.Seq, nil
}

// compactLocked rewrites only the latest record of each non-terminal job
// and prunes terminal jobs from the in-memory state: their reports are in
// the content-addressed store, so the journal owes them nothing. Failure
// is tolerable — the oversized journal remains fully valid.
func (j *Journal) compactLocked() {
	var live []Record
	for _, r := range j.state {
		if j.terminal == nil || !j.terminal(r.Status) {
			live = append(live, r)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	if err := j.rewriteLocked(live); err != nil {
		return
	}
	j.compactions++
	j.state = map[string]Record{}
	j.order = nil
	for _, r := range live {
		j.absorbLocked(r)
	}
}

// rewriteLocked atomically replaces the journal file with exactly recs:
// temp file, fsync, rename over, parent-directory fsync, fresh append
// handle. On failure the previous file (and handle, when still open) are
// left as they were.
func (j *Journal) rewriteLocked(recs []Record) error {
	dir := filepath.Dir(j.path)
	f, err := j.fs.CreateTemp(dir, j.tempPrefix()+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var size int64
	var werr error
	for _, r := range recs {
		frame := EncodeRecord(r)
		if _, werr = f.Write(frame); werr != nil {
			break
		}
		size += int64(len(frame))
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = j.fs.Rename(tmp, j.path)
	}
	if werr != nil {
		_ = j.fs.Remove(tmp)
		return werr
	}
	_ = j.fs.SyncDir(dir) // best-effort: the rename itself succeeded
	j.closeFileLocked()
	nf, err := j.fs.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	j.size = size
	return nil
}

func (j *Journal) closeFileLocked() {
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
}

// Stats returns a snapshot of the journal's health counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Seq:          j.seq,
		SizeBytes:    j.size,
		Live:         len(j.state),
		Appends:      j.appends,
		AppendErrors: j.appendErrors,
		Compactions:  j.compactions,
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the append handle. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.f != nil {
		err = j.f.Close()
		j.f = nil
	}
	return err
}
