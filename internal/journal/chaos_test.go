package journal

import (
	"path/filepath"
	"testing"

	"opgate/internal/store"
)

// The journal's degradation contract under disk misbehavior, pinned with
// the same FaultFS the store's chaos wall uses: whatever the fault class,
// a reopened journal must (1) yield only records that were actually
// appended — never fabricated or corrupt ones — and (2) once faults clear
// and one more append succeeds, reflect the full in-memory latest-per-job
// state, so nothing a client was promised is silently gone. Individual
// transitions may be lost while faults rage (degrading to at-most a
// re-execution at recovery); invented or mangled state never appears.

// chaosJournal opens a journal over a FaultFS at a fresh path.
func chaosJournal(t *testing.T, budget int64) (*Journal, *store.FaultFS, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.log")
	ff := store.NewFaultFS()
	j, _, err := Open(path, budget, isTerminal, ff)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, ff, path
}

// driveLifecycles appends n full job lifecycles, ignoring append errors
// (the chaos contract is about what survives, not about error-free
// appends), and returns the journal's view of the final state.
func driveLifecycles(t *testing.T, j *Journal, n int) map[string]string {
	t.Helper()
	want := map[string]string{}
	for i := 0; i < n; i++ {
		id := jobID(i)
		for _, st := range []string{"queued", "running", "done"} {
			_, _ = j.Append(rec(id, st))
			want[id] = st
		}
	}
	return want
}

func jobID(i int) string {
	return "job-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// verifyRecovered reopens the journal and checks the two invariants
// against the appended history: no fabricated records, and—when sound is
// set (a healing append happened after faults cleared)—no job's latest
// status lost relative to want.
func verifyRecovered(t *testing.T, path string, want map[string]string, sound bool) {
	t.Helper()
	_, recs, err := Open(path, 0, isTerminal, nil)
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	for _, r := range recs {
		wantStatus, known := want[r.Job]
		if !known {
			t.Fatalf("replay fabricated job %q", r.Job)
		}
		switch r.Status {
		case "queued", "running", wantStatus:
		default:
			t.Fatalf("replay fabricated status %q for job %s", r.Status, r.Job)
		}
	}
	if !sound {
		return
	}
	latest := map[string]string{}
	for _, r := range Reduce(recs) {
		latest[r.Job] = r.Status
	}
	for job, status := range want {
		if isTerminal(status) && latest[job] == "" {
			// Terminal jobs may legitimately have been compacted away —
			// their reports live in the store. What must never happen is a
			// terminal job resurfacing as non-terminal while its terminal
			// record was journaled after faults cleared; that is covered by
			// the fabrication check above plus the healing-append rule
			// asserted per-test.
			continue
		}
		if latest[job] != status {
			t.Fatalf("job %s recovered as %q, want %q", job, latest[job], status)
		}
	}
}

// TestChaosWriteFaults: failing and short writes during appends never
// corrupt the journal; the rewrite fallback keeps every record reachable.
func TestChaosWriteFaults(t *testing.T) {
	for name, short := range map[string]bool{"write-error": false, "short-write": true} {
		t.Run(name, func(t *testing.T) {
			j, ff, path := chaosJournal(t, 0)
			ff.FailWrites(3, short)
			want := driveLifecycles(t, j, 10)
			ff.Clear()
			// Healing append after the storm.
			_, err := j.Append(rec("job-heal", "queued"))
			if err != nil {
				t.Fatalf("append after faults cleared: %v", err)
			}
			want["job-heal"] = "queued"
			if ff.Injected() == 0 {
				t.Fatal("scenario injected no faults")
			}
			j.Close()
			verifyRecovered(t, path, want, true)
		})
	}
}

// TestChaosRewriteFaults: rename failures and torn renames during
// compaction rewrites leave either the old journal or a valid prefix of
// the new one — never a file that replays fabricated records.
func TestChaosRewriteFaults(t *testing.T) {
	for name, arm := range map[string]func(*store.FaultFS){
		"rename":      func(ff *store.FaultFS) { ff.FailRenames(2) },
		"torn-rename": func(ff *store.FaultFS) { ff.TearRenames(2) },
		// Remove faults alone never fire on the happy path; pair them with
		// rename faults so the failed-rewrite cleanup hits them.
		"rename+remove": func(ff *store.FaultFS) { ff.FailRenames(2); ff.FailRemoves(1) },
		"sync":          func(ff *store.FaultFS) { ff.FailSyncs(3) },
	} {
		t.Run(name, func(t *testing.T) {
			// Tiny budget: every few appends trigger a compaction rewrite,
			// so the armed fault class hits the rewrite path repeatedly.
			j, ff, path := chaosJournal(t, 512)
			arm(ff)
			want := driveLifecycles(t, j, 12)
			ff.Clear()
			if _, err := j.Append(rec("job-heal", "queued")); err != nil {
				t.Fatalf("append after faults cleared: %v", err)
			}
			want["job-heal"] = "queued"
			if ff.Injected() == 0 {
				t.Fatal("scenario injected no faults")
			}
			j.Close()
			// Torn renames can halve the journal mid-history: fabrication
			// must still be impossible, but latest-state completeness is
			// only guaranteed for the healing append's rewrite target.
			sound := name != "torn-rename"
			verifyRecovered(t, path, want, sound)
		})
	}
}

// TestChaosTornRenameNeverFabricates: under a permanently torn rename the
// journal may lose history, but replay still yields only genuine records
// and Open never errors.
func TestChaosTornRenameNeverFabricates(t *testing.T) {
	j, ff, path := chaosJournal(t, 256)
	ff.TearRenames(1)
	want := driveLifecycles(t, j, 8)
	if ff.Injected() == 0 {
		t.Fatal("scenario injected no faults")
	}
	j.Close()
	verifyRecovered(t, path, want, false)
}

// TestChaosDirentLossAfterCompaction: the journal's rewrite fsyncs the
// parent directory, so a power cut immediately after a compaction cannot
// lose the freshly renamed journal file.
func TestChaosDirentLossAfterCompaction(t *testing.T) {
	j, ff, path := chaosJournal(t, 256)
	want := driveLifecycles(t, j, 6) // small budget forces compactions
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatal("no compaction happened; the scenario is vacuous")
	}
	j.Close()
	if lost := ff.DropUnsyncedRenames(); lost != 0 {
		t.Fatalf("power cut lost %d files the journal should have made durable", lost)
	}
	verifyRecovered(t, path, want, true)
}
