package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"opgate/internal/store"
)

// isTerminal is the test stand-in for client.TerminalStatus (the journal
// takes the predicate as a seam to avoid owning the status machine).
func isTerminal(status string) bool {
	switch status {
	case "done", "failed", "timeout", "canceled", "aborted":
		return true
	}
	return false
}

func openTest(t *testing.T, path string, budget int64) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, budget, isTerminal, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func rec(job, status string) Record {
	return Record{
		Job: job, Status: status, Experiment: "fig8", Threshold: 50,
		Synthetics: []string{"syn:narrow/small/1", "syn:wide/small/2"},
		ReportKey:  "0123456789abcdef", Err: "",
	}
}

// TestAppendReplayRoundTrip: records appended to a journal come back from
// a fresh Open byte-for-byte equal, in order, with monotonic sequence
// numbers assigned.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, recs := openTest(t, path, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{rec("job-000001", "queued"), rec("job-000001", "running"), rec("job-000002", "queued"), rec("job-000001", "done")}
	for i := range want {
		seq, err := j.Append(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	j.Close()

	_, got := openTest(t, path, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, g := range got {
		if g.Seq != uint64(i+1) || g.Time == 0 {
			t.Fatalf("record %d: seq=%d time=%d", i, g.Seq, g.Time)
		}
		w := want[i]
		w.Seq, w.Time = g.Seq, g.Time
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestTornTailIsSkippedAndRepaired: a partial final frame (the expected
// SIGKILL artifact) replays as if absent, Open repairs the file in place,
// and subsequent appends land readable.
func TestTornTailIsSkippedAndRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openTest(t, path, 0)
	if _, err := j.Append(rec("job-000001", "queued")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(rec("job-000001", "running")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: append half of a valid frame.
	full := EncodeRecord(Record{Seq: 99, Job: "job-000009", Status: "queued"})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs := openTest(t, path, 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records through a torn tail, want 2", len(recs))
	}
	// The repair dropped the torn bytes: a third append is readable.
	if _, err := j2.Append(rec("job-000002", "queued")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = openTest(t, path, 0)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after repair+append, want 3", len(recs))
	}
}

// TestCorruptMidRecordStopsReplay: a CRC-failing record invalidates it
// and everything after it — damaged bytes are never served as records.
func TestCorruptMidRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openTest(t, path, 0)
	for i, st := range []string{"queued", "running", "done"} {
		if _, err := j.Append(rec("job-00000"+string(rune('1'+i)), st)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second frame.
	_, n1, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	data[n1+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := openTest(t, path, 0)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(recs))
	}
}

// TestCompactionKeepsOnlyNonTerminal: once the log exceeds its budget,
// terminal jobs vanish, non-terminal jobs survive as their latest record,
// and sequence numbers keep climbing across the rewrite.
func TestCompactionKeepsOnlyNonTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openTest(t, path, 512) // tiny budget: compact almost every append
	var lastSeq uint64
	for i := 0; i < 50; i++ {
		id := "job-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		for _, st := range []string{"queued", "running", "done"} {
			seq, err := j.Append(rec(id, st))
			if err != nil {
				t.Fatal(err)
			}
			if seq <= lastSeq {
				t.Fatalf("seq went backwards: %d after %d", seq, lastSeq)
			}
			lastSeq = seq
		}
	}
	// One job left open.
	if _, err := j.Append(rec("job-open", "queued")); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatal("tiny budget never triggered a compaction")
	}
	j.Close()

	_, recs := openTest(t, path, 0)
	live := Reduce(recs)
	found := false
	for _, r := range live {
		if r.Job == "job-open" {
			found = true
			if r.Status != "queued" {
				t.Fatalf("open job compacted to status %q", r.Status)
			}
		}
	}
	if !found {
		t.Fatal("compaction dropped the non-terminal job")
	}
	if n := len(recs); n > 10 {
		t.Fatalf("journal holds %d records after compaction; budget not enforced", n)
	}
}

// TestReduce: latest-per-job in first-appearance order.
func TestReduce(t *testing.T) {
	recs := []Record{
		{Seq: 1, Job: "a", Status: "queued"},
		{Seq: 2, Job: "b", Status: "queued"},
		{Seq: 3, Job: "a", Status: "running"},
		{Seq: 4, Job: "b", Status: "done"},
		{Seq: 5, Job: "a", Status: "done"},
	}
	got := Reduce(recs)
	if len(got) != 2 || got[0].Job != "a" || got[0].Status != "done" || got[1].Job != "b" || got[1].Status != "done" {
		t.Fatalf("Reduce = %+v", got)
	}
}

// TestDecodeStreamRejectsNonMonotonicSeq: a frame whose sequence number
// does not climb stops the replay (stale or replayed bytes are never
// trusted past that point).
func TestDecodeStreamRejectsNonMonotonicSeq(t *testing.T) {
	var data []byte
	data = append(data, EncodeRecord(Record{Seq: 1, Job: "a", Status: "queued"})...)
	data = append(data, EncodeRecord(Record{Seq: 3, Job: "b", Status: "queued"})...)
	good := len(data)
	data = append(data, EncodeRecord(Record{Seq: 2, Job: "c", Status: "queued"})...)
	recs, consumed := DecodeStream(data)
	if len(recs) != 2 || consumed != good {
		t.Fatalf("DecodeStream replayed %d records, consumed %d (want 2, %d)", len(recs), consumed, good)
	}
}

// TestOpenSweepsStaleRewriteTemps: a crashed compaction's staging file is
// reclaimed by the next Open.
func TestOpenSweepsStaleRewriteTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	stale := filepath.Join(dir, "journal.log.tmp-123456")
	if err := os.WriteFile(stale, []byte("half a rewrite"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, _ := openTest(t, path, 0)
	j.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale rewrite temp survived Open")
	}
}

// TestJournalUsesFSSeam: every filesystem touch goes through the injected
// FS — opening over a FaultFS with no faults armed behaves identically to
// the real filesystem.
func TestJournalUsesFSSeam(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	ff := store.NewFaultFS()
	j, _, err := Open(path, 0, isTerminal, ff)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(rec("job-000001", "queued")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := openTest(t, path, 0)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records written through the seam", len(recs))
	}
}
