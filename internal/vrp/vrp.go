// Package vrp implements the paper's Value Range Propagation (§2): a
// conservative, binary-level, interprocedural analysis that bounds the
// value range of every integer register operand, augmented with "useful"
// (demanded-byte) backward propagation, loop trip-count ranges, and
// wrap-around-aware arithmetic. Its output assigns each instruction the
// narrowest opcode width that preserves program semantics.
package vrp

import (
	"fmt"

	"opgate/internal/interval"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// Mode selects between the paper's two analyses of Fig. 2.
type Mode int

const (
	// Conventional propagates value ranges only: an instruction's width
	// is the significant bytes of its result range.
	Conventional Mode = iota
	// Useful additionally runs the backward demanded-byte analysis
	// (§2.2.5): bits that never influence program results are discarded,
	// allowing widths below the significant size of the value.
	Useful
)

// String names the mode.
func (m Mode) String() string {
	if m == Conventional {
		return "conventional"
	}
	return "useful"
}

// Options configures an analysis run.
type Options struct {
	Mode Mode
	// Opcodes restricts assignable widths per operation class; nil means
	// the paper's extension set (§4.3).
	Opcodes *isa.OpcodeSet
	// MaxRounds bounds the interprocedural fixpoint (paper: "a limit on
	// the number of traversals"). 0 means the default.
	MaxRounds int
	// MaxPasses bounds the intraprocedural fixpoint per round.
	MaxPasses int
	// DisableLoopAnalysis turns off §2.3 trip-count ranges (ablation).
	DisableLoopAnalysis bool
	// DisableBranchRefinement turns off §2.2.4 edge constraints (ablation).
	DisableBranchRefinement bool
}

func (o *Options) defaults() {
	if o.Opcodes == nil {
		o.Opcodes = isa.PaperOpcodeSet()
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 40
	}
}

// Result is the analysis outcome for one program.
type Result struct {
	Prog *prog.Program
	Opts Options

	// Per-instruction facts, indexed by absolute instruction index.
	ResRange []interval.Interval // destination value range (Empty: none/unreachable)
	RaRange  []interval.Interval // first operand range at this point
	RbRange  []interval.Interval // second operand range (Const for immediates)
	Demand   []int               // demanded bytes of the destination (1..8)
	Width    []isa.Width         // assigned opcode width

	// DefUse chains per function index (shared with VRS).
	DefUse []*prog.DefUse

	summaries []*summary
}

// summary is a function's interprocedural contract.
type summary struct {
	args    [prog.NumArgRegs]interval.Interval
	ret     interval.Interval
	reached bool
}

// Analyze runs value range propagation over the program and computes the
// width assignment. The program is not modified; call Apply for a
// re-encoded copy.
func Analyze(p *prog.Program, opts Options) (*Result, error) {
	opts.defaults()
	n := len(p.Ins)
	r := &Result{
		Prog:     p,
		Opts:     opts,
		ResRange: make([]interval.Interval, n),
		RaRange:  make([]interval.Interval, n),
		RbRange:  make([]interval.Interval, n),
		Demand:   make([]int, n),
		Width:    make([]isa.Width, n),
		DefUse:   make([]*prog.DefUse, len(p.Funcs)),
	}
	for i := range p.Funcs {
		r.DefUse[i] = prog.BuildDefUse(p, p.Funcs[i])
	}
	if err := r.propagate(); err != nil {
		return nil, err
	}
	r.computeDemand()
	r.assignWidths()
	return r, nil
}

// Apply returns a copy of the program re-encoded with the assigned widths.
// Per §4.4, VRP "does not affect the performance of the benchmarks because
// it just re-encodes the instructions with narrower opcodes": no
// instruction is added or removed.
func (r *Result) Apply() *prog.Program {
	q := r.Prog.Clone()
	for i := range q.Ins {
		q.Ins[i].Width = r.Width[i]
	}
	return q
}

// WidthHistogram tallies width-bearing dynamic or static instructions.
// Branch-class and other width-less instructions are excluded, as in the
// paper ("branch instructions are not taken into account because they
// manipulate addresses").
type WidthHistogram struct {
	Count [4]int64 // by width index 0=8b .. 3=64b
}

// Add accumulates n occurrences of width w.
func (h *WidthHistogram) Add(w isa.Width, n int64) {
	switch w {
	case isa.W8:
		h.Count[0] += n
	case isa.W16:
		h.Count[1] += n
	case isa.W32:
		h.Count[2] += n
	default:
		h.Count[3] += n
	}
}

// Total returns the histogram mass.
func (h *WidthHistogram) Total() int64 {
	return h.Count[0] + h.Count[1] + h.Count[2] + h.Count[3]
}

// Fraction returns the share of width index i (0..3).
func (h *WidthHistogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Count[i]) / float64(t)
}

// CountsWidth reports whether the instruction participates in width
// statistics (integer computation and memory ops; not control flow).
func CountsWidth(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassBranch, isa.ClassNone, isa.ClassOther:
		return false
	}
	return true
}

// StaticHistogram tallies the width assignment over static instructions.
func (r *Result) StaticHistogram() WidthHistogram {
	var h WidthHistogram
	for i := range r.Prog.Ins {
		if CountsWidth(r.Prog.Ins[i].Op) {
			h.Add(r.Width[i], 1)
		}
	}
	return h
}

// String summarises the analysis for diagnostics.
func (r *Result) String() string {
	h := r.StaticHistogram()
	return fmt.Sprintf("vrp(%s): %d ins, widths 8b=%d 16b=%d 32b=%d 64b=%d",
		r.Opts.Mode, len(r.Prog.Ins), h.Count[0], h.Count[1], h.Count[2], h.Count[3])
}
