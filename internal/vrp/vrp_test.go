package vrp

import (
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/interval"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// fig1Program is the paper's Figure 1 example:
//
//	for (i=0; i<100; i++) { a[i] = i; }
//
// compiled the way the paper shows: a vector base, an index register, a
// scaled address, a store, an increment, and a compare-and-branch.
const fig1Src = `
.data
vec: .space 800
.text
.func main
	lda r1, 0(rz)       ; a1 = 0  (the iterator)
loop:
	mul r3, r1, #8      ; a3 = a1*8
	lda r2, =vec        ; a0 = @vec
	add r2, r2, r3      ; a2 = a0 + a3
	st.q r1, 0(r2)      ; mem[a2] = a1
	add r1, r1, #1      ; a1 = a1 + 1
	cmplt r4, r1, #100
	bne r4, loop
	halt
`

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestFigure1LoopRanges(t *testing.T) {
	p := mustAssemble(t, fig1Src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}

	// The iterator update "add r1, r1, #1" must be bounded by the loop
	// trip count: r1 stays within [0, 100].
	var updIdx = -1
	for i := range p.Ins {
		in := &p.Ins[i]
		if in.Op == isa.OpADD && in.Rd == 1 && in.Ra == 1 && in.HasImm && in.Imm == 1 {
			updIdx = i
		}
	}
	if updIdx < 0 {
		t.Fatalf("iterator update not found")
	}
	res := r.ResRange[updIdx]
	if res.IsEmpty() || res.Lo < 0 || res.Hi > 100 {
		t.Fatalf("iterator range = %v, want within [0,100]", res)
	}

	// The scaled index r3 = r1*8 must be bounded by 8*100.
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpMUL {
			if got := r.ResRange[i]; got.IsEmpty() || got.Hi > 800 {
				t.Errorf("mul result range = %v, want <= 800", got)
			}
		}
	}

	// Width assignment: the iterator add fits one byte... [0,100] needs
	// 1 byte; the compare fits one byte as well.
	if w := r.Width[updIdx]; w != isa.W8 {
		t.Errorf("iterator add width = %v, want b", w)
	}
}

func TestFigure1Equivalence(t *testing.T) {
	p := mustAssemble(t, fig1Src)
	for _, mode := range []Mode{Conventional, Useful} {
		r, err := Analyze(p, Options{Mode: mode})
		if err != nil {
			t.Fatalf("analyze(%v): %v", mode, err)
		}
		q := r.Apply()
		if err := emu.CheckEquivalence(p, q); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestUsefulBeatsConventionalOnMaskedChain(t *testing.T) {
	// A chain of wide arithmetic whose only consumer is AND 0xFF: the
	// paper's canonical useful-range example. Conventional VRP keeps the
	// chain wide; useful VRP narrows it to one byte.
	src := `
.data
in:  .space 8
out: .space 8
.text
.func main
	lda r1, =in
	ld.q r2, 0(r1)      ; unknown 64-bit value
	add r3, r2, #12345  ; wide intermediate
	mul r4, r3, #3      ; wide intermediate
	and r5, r4, #255    ; only the low byte matters
	lda r6, =out
	st.q r5, 0(r6)
	out.b r5
	halt
`
	p := mustAssemble(t, src)

	conv, err := Analyze(p, Options{Mode: Conventional})
	if err != nil {
		t.Fatal(err)
	}
	useful, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}

	var addIdx, mulIdx int
	for i := range p.Ins {
		switch p.Ins[i].Op {
		case isa.OpADD:
			addIdx = i
		case isa.OpMUL:
			mulIdx = i
		}
	}
	if w := conv.Width[addIdx]; w != isa.W64 {
		t.Errorf("conventional add width = %v, want q", w)
	}
	if w := useful.Width[addIdx]; w != isa.W8 {
		t.Errorf("useful add width = %v, want b", w)
	}
	// MUL is not encodable narrow in the paper's opcode set; it must
	// stay 64-bit even though its demand is one byte.
	if w := useful.Width[mulIdx]; w != isa.W64 {
		t.Errorf("useful mul width = %v, want q (not encodable narrower)", w)
	}
	if useful.Demand[mulIdx] != 1 {
		t.Errorf("mul demand = %d, want 1", useful.Demand[mulIdx])
	}

	// With the ideal (full) opcode set the multiply narrows too.
	full, err := Analyze(p, Options{Mode: Useful, Opcodes: isa.FullOpcodeSet()})
	if err != nil {
		t.Fatal(err)
	}
	if w := full.Width[mulIdx]; w != isa.W8 {
		t.Errorf("full-set mul width = %v, want b", w)
	}

	// And all variants behave identically.
	for _, r := range []*Result{conv, useful, full} {
		if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
			t.Fatalf("equivalence: %v", err)
		}
	}
}

func TestBranchRefinement(t *testing.T) {
	// if (x <= 100) narrow-path else wide-path: the true path's add gets
	// a narrow width even though x is loaded unknown.
	src := `
.data
in:  .space 8
out: .space 8
.text
.func main
	lda r1, =in
	ld.w r2, 0(r1)       ; x in [-2^31, 2^31)
	cmple r3, r2, #100
	beq r3, else
	; here x <= 100
	cmplt r4, r2, #0
	bne r4, else
	; here 0 <= x <= 100
	add r5, r2, #1       ; range [1,101]: one byte... needs 1 byte
	br store
else:
	lda r5, 0(rz)
store:
	lda r6, =out
	st.q r5, 0(r6)
	out.q r5
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	var addIdx = -1
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpADD && p.Ins[i].HasImm && p.Ins[i].Imm == 1 {
			addIdx = i
		}
	}
	if addIdx < 0 {
		t.Fatal("add not found")
	}
	res := r.ResRange[addIdx]
	if res.IsEmpty() || res.Lo != 1 || res.Hi != 101 {
		t.Fatalf("refined add range = %v, want <1,101>", res)
	}
	if w := r.Width[addIdx]; w != isa.W8 {
		t.Errorf("refined add width = %v, want b", w)
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}

func TestInterproceduralRanges(t *testing.T) {
	// Callee sees the join of its call-site argument ranges; caller sees
	// the callee's return range.
	src := `
.data
out: .space 8
.text
.func main
	lda a0, 7(rz)
	jsr double
	lda r9, 0(rz)
	add r9, rv, #0      ; r9 = return value, range [14,14] joined [20,20]
	lda a0, 10(rz)
	jsr double
	add r9, rv, #0
	lda r6, =out
	st.q r9, 0(r6)
	out.q r9
	halt
.func double
	add rv, a0, a0
	ret
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	// Find the add in double.
	var f *prog.Func
	for _, fn := range p.Funcs {
		if fn.Name == "double" {
			f = fn
		}
	}
	if f == nil {
		t.Fatal("double not found")
	}
	var res interval.Interval
	for i := f.Start; i < f.End; i++ {
		if p.Ins[i].Op == isa.OpADD {
			res = r.ResRange[i]
		}
	}
	// Arguments join to [7,10]; the double is [14,20].
	if res.IsEmpty() || res.Lo != 14 || res.Hi != 20 {
		t.Fatalf("callee add range = %v, want <14,20>", res)
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}
