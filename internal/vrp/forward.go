package vrp

import (
	"math"
	"sort"

	"opgate/internal/interval"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// state maps registers to their value ranges at a program point. Missing
// entries mean Top (unknown). The zero register and the pinned global
// pointer are resolved by get, never stored.
type state map[isa.Reg]interval.Interval

func (r *Result) get(s state, reg isa.Reg) interval.Interval {
	switch reg {
	case isa.ZeroReg:
		return interval.Const(0)
	case prog.RegGP:
		return interval.Const(r.Prog.DataBase)
	}
	if iv, ok := s[reg]; ok {
		return iv
	}
	return interval.Top()
}

func (s state) set(reg isa.Reg, iv interval.Interval) {
	if reg == isa.ZeroReg || reg == prog.RegGP {
		return
	}
	if iv.IsTop() {
		delete(s, reg)
		return
	}
	s[reg] = iv
}

func (s state) clone() state {
	c := make(state, len(s))
	for r, iv := range s {
		c[r] = iv
	}
	return c
}

// joinStates unions per-register ranges; registers absent from either side
// are Top and disappear.
func joinStates(a, b state) state {
	out := make(state)
	for r, iv := range a {
		if other, ok := b[r]; ok {
			j := iv.Join(other)
			if !j.IsTop() {
				out[r] = j
			}
		}
	}
	return out
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for r, iv := range a {
		other, ok := b[r]
		if !ok || !iv.Equal(other) {
			return false
		}
	}
	return true
}

// widenState accelerates convergence with threshold widening: a bound
// that grew since prev jumps to the nearest "landmark" constant — the
// comparison immediates and loop bounds appearing in the function — and
// only to the extreme when no landmark remains. Plain widening-to-Top
// loses loop-header ranges irrecoverably (descending iteration cannot
// narrow a register that merely passes through an inner loop); landmarks
// let iterator-driven ranges settle at their actual loop bounds.
func widenState(prev, next state, thresholds []int64) state {
	out := make(state)
	for r, iv := range next {
		p, ok := prev[r]
		if !ok {
			// Was Top before; widening never regains precision.
			continue
		}
		lo, hi := p.Lo, p.Hi
		if iv.Lo < p.Lo {
			lo = widenDown(iv.Lo, thresholds)
		}
		if iv.Hi > p.Hi {
			hi = widenUp(iv.Hi, thresholds)
		}
		w := interval.New(lo, hi)
		if !w.IsTop() {
			out[r] = w
		}
	}
	return out
}

// widenUp returns the smallest threshold >= v, else MaxInt64.
func widenUp(v int64, thresholds []int64) int64 {
	for _, t := range thresholds {
		if t >= v {
			return t
		}
	}
	return math.MaxInt64
}

// widenDown returns the largest threshold <= v, else MinInt64.
func widenDown(v int64, thresholds []int64) int64 {
	for i := len(thresholds) - 1; i >= 0; i-- {
		if thresholds[i] <= v {
			return thresholds[i]
		}
	}
	return math.MinInt64
}

// gatherThresholds collects the landmark constants of a function: the
// immediates of comparisons (and their neighbours, which branch
// refinement produces) plus loop-iterator bounds.
func gatherThresholds(p *prog.Program, f *prog.Func) []int64 {
	set := map[int64]bool{-1: true, 0: true, 1: true}
	add := func(v int64) {
		set[v] = true
		if v > math.MinInt64 {
			set[v-1] = true
		}
		if v < math.MaxInt64 {
			set[v+1] = true
		}
	}
	for i := f.Start; i < f.End; i++ {
		in := &p.Ins[i]
		if isa.ClassOf(in.Op) == isa.ClassCmp && in.HasImm {
			add(in.Imm)
		}
	}
	for _, l := range f.Loops() {
		if l.Iter != nil && l.Iter.Bounded {
			add(l.Iter.MinVal)
			add(l.Iter.MaxVal)
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// propagate runs the interprocedural fixpoint: intraprocedural forward
// range analysis per function, with function summaries joined at call and
// return sites, iterated to stability or the round limit.
func (r *Result) propagate() error {
	p := r.Prog
	r.summaries = make([]*summary, len(p.Funcs))
	for i := range r.summaries {
		r.summaries[i] = &summary{}
	}
	// The entry function starts with unknown (Top) arguments.
	entry := r.summaries[p.Entry]
	for i := range entry.args {
		entry.args[i] = interval.Top()
	}
	entry.reached = true

	for round := 0; round < r.Opts.MaxRounds; round++ {
		changed := false
		for fi, f := range p.Funcs {
			if !r.summaries[fi].reached {
				continue
			}
			if r.analyzeFunc(f, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
		if round == r.Opts.MaxRounds-2 {
			// Last chance to converge: force every summary to Top so
			// the final recording pass is sound even without a true
			// fixpoint (the paper's traversal limit).
			for _, s := range r.summaries {
				if !s.reached {
					continue
				}
				for i := range s.args {
					s.args[i] = interval.Top()
				}
				s.ret = interval.Top()
			}
		}
	}

	// Recording pass: summaries are stable; fill the per-instruction
	// range tables.
	for fi, f := range p.Funcs {
		if !r.summaries[fi].reached {
			continue
		}
		r.analyzeFunc(f, true)
	}
	return nil
}

// analyzeFunc runs the intraprocedural forward analysis; it reports
// whether any summary changed (via calls/returns). When record is set,
// per-instruction ranges are captured.
func (r *Result) analyzeFunc(f *prog.Func, record bool) bool {
	p := r.Prog
	sum := r.summaries[f.Index]

	entryState := make(state)
	for i := 0; i < prog.NumArgRegs; i++ {
		if !sum.args[i].IsEmpty() {
			entryState.set(prog.RegArg0+isa.Reg(i), sum.args[i])
		}
	}
	// The stack pointer stays inside the data segment.
	entryState.set(prog.RegSP, interval.New(p.DataBase, p.DataBase+p.MemSize))

	// Iterator clamps from loop analysis (§2.3).
	clamps := map[int]interval.Interval{}
	if !r.Opts.DisableLoopAnalysis {
		for _, l := range f.Loops() {
			if l.Iter != nil && l.Iter.Bounded {
				clamps[l.Iter.UpdateIdx] = interval.New(l.Iter.MinVal, l.Iter.MaxVal)
			}
		}
	}

	thresholds := gatherThresholds(p, f)
	blocks := f.RPOBlocks()
	// edgeOut[from][to] = state propagated along the CFG edge; nil means
	// the edge has not fired (or is refined infeasible).
	edgeOut := make(map[*prog.Block]map[*prog.Block]state)
	inState := make(map[*prog.Block]state)
	visits := make(map[*prog.Block]int)
	summaryChanged := false

	runPass := func(widen, force, recordNow bool) bool {
		changed := false
		for _, b := range blocks {
			// Join incoming edges (plus the entry state for block 0).
			var in state
			reached := false
			if b == f.Blocks[0] {
				in = entryState.clone()
				reached = true
			}
			for _, pred := range b.Preds {
				es := edgeOut[pred][b]
				if es == nil {
					continue
				}
				if !reached {
					in = es.clone()
					reached = true
				} else {
					in = joinStates(in, es)
				}
			}
			if !reached {
				continue
			}
			visits[b]++
			if prev, ok := inState[b]; ok {
				if widen && visits[b] > 3 {
					in = widenState(prev, in, thresholds)
				}
				if !force && statesEqual(prev, in) && edgeOut[b] != nil {
					continue
				}
			}
			inState[b] = in.clone()
			changed = true

			// Transfer through the block.
			cur := in
			for i := b.Start; i < b.End; i++ {
				if r.transfer(f, i, cur, clamps, recordNow) {
					summaryChanged = true
				}
			}

			// Emit successor edge states with branch refinement.
			outs := make(map[*prog.Block]state, len(b.Succs))
			term := b.Terminator(p)
			for _, succ := range b.Succs {
				es := cur.clone()
				if term != nil && isa.IsCondBranch(term.Op) && !r.Opts.DisableBranchRefinement {
					taken := succ.Start == term.Target
					// A conditional branch whose target equals the
					// fall-through refines both ways; treat as taken.
					es = r.refineEdge(f, b, term, taken, es)
				}
				outs[succ] = es
			}
			edgeOut[b] = outs
		}
		return changed
	}

	// Ascending (widened) fixpoint, then two descending (narrowing)
	// passes to recover precision lost to widening — both directions are
	// sound because every transfer is a superset of concrete execution.
	for pass := 0; pass < r.Opts.MaxPasses; pass++ {
		if !runPass(true, false, false) {
			break
		}
	}
	runPass(false, true, false)
	runPass(false, true, false)
	if record {
		runPass(false, true, true)
	}
	return summaryChanged
}

// transfer applies one instruction to the state; record captures operand
// and result ranges. It reports whether a function summary changed.
func (r *Result) transfer(f *prog.Func, idx int, s state, clamps map[int]interval.Interval, record bool) bool {
	p := r.Prog
	in := &p.Ins[idx]
	ra := r.get(s, in.Ra)
	var rb interval.Interval
	if in.HasImm {
		rb = interval.Const(in.Imm)
	} else {
		rb = r.get(s, in.Rb)
	}
	if record {
		r.RaRange[idx] = ra.Join(r.RaRange[idx])
		r.RbRange[idx] = rb.Join(r.RbRange[idx])
	}

	k := in.Width.Bytes()
	var res interval.Interval
	hasRes := true

	switch in.Op {
	case isa.OpLDA:
		res = interval.SignExtend(interval.Add(ra, interval.Const(in.Imm)), k)
	case isa.OpLD:
		switch in.Width {
		case isa.W8, isa.W16:
			res = interval.UnsignedWidthBounds(k)
		case isa.W32:
			res = interval.WidthBounds(4)
		default:
			res = interval.Top()
		}
	case isa.OpADD:
		res = interval.SignExtend(interval.Add(ra, rb), k)
	case isa.OpSUB:
		res = interval.SignExtend(interval.Sub(ra, rb), k)
	case isa.OpMUL:
		res = interval.SignExtend(interval.Mul(ra, rb), k)
	case isa.OpAND:
		res = interval.SignExtend(interval.And(ra, rb), k)
	case isa.OpOR:
		res = interval.SignExtend(interval.Or(ra, rb), k)
	case isa.OpXOR:
		res = interval.SignExtend(interval.Xor(ra, rb), k)
	case isa.OpBIC:
		res = interval.SignExtend(interval.AndNot(ra, rb), k)
	case isa.OpSLL:
		res = interval.SignExtend(interval.Shl(ra, rb), k)
	case isa.OpSRL:
		res = interval.SignExtend(interval.Shr(ra, rb), k)
	case isa.OpSRA:
		res = interval.SignExtend(interval.Sar(ra, rb), k)
	case isa.OpMSKL:
		res = interval.MaskLow(ra, k)
	case isa.OpEXTB:
		if c, ok := rb.IsConst(); ok && c&7 == 0 {
			res = interval.ExtractByte(ra)
		} else {
			res = interval.New(0, 255)
		}
	case isa.OpSEXT:
		res = interval.SignExtend(ra, k)
	case isa.OpCMPEQ, isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
		res = cmpRange(in.Op, ra, rb)
	case isa.OpCMOVEQ, isa.OpCMOVNE, isa.OpCMOVLT, isa.OpCMOVGE:
		// Result is either the (width-extended) source or the old value.
		old := r.get(s, in.Rd)
		res = interval.SignExtend(rb, k).Join(old)
	case isa.OpJSR:
		// Link value, then call effects below.
		res = interval.Const(int64(idx + 1))
	case isa.OpST, isa.OpBR, isa.OpBEQ, isa.OpBNE, isa.OpBLT,
		isa.OpBGE, isa.OpBGT, isa.OpBLE, isa.OpRET, isa.OpHALT, isa.OpOUT:
		hasRes = false
	default:
		hasRes = false
	}

	changed := false
	if in.Op == isa.OpJSR {
		// Join argument ranges into the callee summary.
		callee := -1
		if cf := p.FuncOf(in.Target); cf != nil {
			callee = cf.Index
		}
		if callee >= 0 {
			cs := r.summaries[callee]
			for i := 0; i < prog.NumArgRegs; i++ {
				av := r.get(s, prog.RegArg0+isa.Reg(i))
				j := cs.args[i].Join(av)
				if !j.Equal(cs.args[i]) {
					cs.args[i] = j
					changed = true
				}
			}
			if !cs.reached {
				cs.reached = true
				changed = true
			}
		}
		// Clobber caller-saved state.
		for _, reg := range prog.CallClobbered() {
			s.set(reg, interval.Top())
		}
		if callee >= 0 && !r.summaries[callee].ret.IsEmpty() {
			s.set(prog.RegRet, r.summaries[callee].ret)
		}
	} else if in.Op == isa.OpRET {
		sum := r.summaries[f.Index]
		rv := r.get(s, prog.RegRet)
		j := sum.ret.Join(rv)
		if !j.Equal(sum.ret) {
			sum.ret = j
			changed = true
		}
	}

	if hasRes {
		if clamp, ok := clamps[idx]; ok {
			m := res.Meet(clamp)
			if !m.IsEmpty() {
				res = m
			}
		}
		if record {
			r.ResRange[idx] = res.Join(r.ResRange[idx])
		}
		if d, ok := in.Dest(); ok {
			s.set(d, res)
		}
	}
	return changed
}

// cmpRange evaluates a comparison statically when operand ranges decide it.
func cmpRange(op isa.Op, a, b interval.Interval) interval.Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return interval.New(0, 1)
	}
	switch op {
	case isa.OpCMPEQ:
		if av, ok := a.IsConst(); ok {
			if bv, ok2 := b.IsConst(); ok2 {
				return interval.CmpResult(true, av == bv)
			}
		}
		if a.Meet(b).IsEmpty() {
			return interval.Const(0)
		}
	case isa.OpCMPLT:
		if a.Hi < b.Lo {
			return interval.Const(1)
		}
		if a.Lo >= b.Hi {
			return interval.Const(0)
		}
	case isa.OpCMPLE:
		if a.Hi <= b.Lo {
			return interval.Const(1)
		}
		if a.Lo > b.Hi {
			return interval.Const(0)
		}
	case isa.OpCMPULT:
		if a.Lo >= 0 && b.Lo >= 0 {
			if a.Hi < b.Lo {
				return interval.Const(1)
			}
			if a.Lo >= b.Hi {
				return interval.Const(0)
			}
		}
	case isa.OpCMPULE:
		if a.Lo >= 0 && b.Lo >= 0 {
			if a.Hi <= b.Lo {
				return interval.Const(1)
			}
			if a.Lo > b.Hi {
				return interval.Const(0)
			}
		}
	}
	return interval.New(0, 1)
}

// refineEdge applies §2.2.4: the comparison feeding a conditional branch
// constrains the tested register along each outgoing edge.
func (r *Result) refineEdge(f *prog.Func, b *prog.Block, term *isa.Instruction, taken bool, s state) state {
	p := r.Prog
	cond := term.Ra

	// Does the branch condition hold on this edge?
	// For a branch on a register c, "taken" means cond(c) true.
	// Find the last definition of c within the block before the branch.
	var cmp *isa.Instruction
	cmpIdx := -1
	for i := b.End - 2; i >= b.Start; i-- {
		d, ok := p.Ins[i].Dest()
		if !ok || d != cond {
			continue
		}
		if isa.ClassOf(p.Ins[i].Op) == isa.ClassCmp {
			cmp = &p.Ins[i]
			cmpIdx = i
		}
		break
	}

	if cmp != nil {
		// The tested register must not be redefined between the compare
		// and the branch.
		x := cmp.Ra
		redefined := false
		for i := cmpIdx + 1; i < b.End-1; i++ {
			if d, ok := p.Ins[i].Dest(); ok && (d == x || d == cond) {
				redefined = true
				break
			}
		}
		if !redefined && cmp.HasImm && x != isa.ZeroReg {
			cmpTrue, known := branchImpliesCmp(term.Op, taken)
			if known {
				c := cmp.Imm
				cur := r.get(s, x)
				refined := refineByCmp(cmp.Op, cmpTrue, cur, c)
				if !refined.IsEmpty() {
					s.set(x, refined)
				}
			}
		}
		return s
	}

	// Direct test of a register against zero.
	cur := r.get(s, cond)
	refined := refineByZeroTest(term.Op, taken, cur)
	if !refined.IsEmpty() {
		s.set(cond, refined)
	}
	return s
}

// branchImpliesCmp maps (branch opcode, edge) to the truth of the compare
// result feeding it. Compare results are 0 or 1.
func branchImpliesCmp(op isa.Op, taken bool) (cmpTrue, known bool) {
	switch op {
	case isa.OpBNE, isa.OpBGT: // c != 0 / c > 0  <=>  cmp true
		return taken, true
	case isa.OpBEQ, isa.OpBLE: // c == 0 / c <= 0  <=>  cmp false
		return !taken, true
	}
	return false, false
}

// refineByCmp intersects cur with the constraint "x cmpOp c == cmpTrue".
func refineByCmp(op isa.Op, cmpTrue bool, cur interval.Interval, c int64) interval.Interval {
	below := func(hi int64) interval.Interval { return interval.New(math.MinInt64, hi) }
	above := func(lo int64) interval.Interval { return interval.New(lo, math.MaxInt64) }
	switch op {
	case isa.OpCMPEQ:
		if cmpTrue {
			return cur.Meet(interval.Const(c))
		}
		return trimPoint(cur, c)
	case isa.OpCMPLT:
		if cmpTrue {
			if c == math.MinInt64 {
				return interval.Empty()
			}
			return cur.Meet(below(c - 1))
		}
		return cur.Meet(above(c))
	case isa.OpCMPLE:
		if cmpTrue {
			return cur.Meet(below(c))
		}
		if c == math.MaxInt64 {
			return interval.Empty()
		}
		return cur.Meet(above(c + 1))
	case isa.OpCMPULT:
		// Sound only when the current range is non-negative.
		if cur.Lo >= 0 && c >= 0 {
			if cmpTrue {
				return cur.Meet(interval.New(0, max64(c-1, 0)))
			}
			return cur.Meet(above(c))
		}
	case isa.OpCMPULE:
		if cur.Lo >= 0 && c >= 0 {
			if cmpTrue {
				return cur.Meet(interval.New(0, c))
			}
			return cur.Meet(above(c + 1))
		}
	}
	return cur
}

// refineByZeroTest refines a register directly tested by a branch.
func refineByZeroTest(op isa.Op, taken bool, cur interval.Interval) interval.Interval {
	switch op {
	case isa.OpBEQ:
		if taken {
			return cur.Meet(interval.Const(0))
		}
		return trimPoint(cur, 0)
	case isa.OpBNE:
		if taken {
			return trimPoint(cur, 0)
		}
		return cur.Meet(interval.Const(0))
	case isa.OpBLT:
		if taken {
			return cur.Meet(interval.New(math.MinInt64, -1))
		}
		return cur.Meet(interval.New(0, math.MaxInt64))
	case isa.OpBGE:
		if taken {
			return cur.Meet(interval.New(0, math.MaxInt64))
		}
		return cur.Meet(interval.New(math.MinInt64, -1))
	case isa.OpBGT:
		if taken {
			return cur.Meet(interval.New(1, math.MaxInt64))
		}
		return cur.Meet(interval.New(math.MinInt64, 0))
	case isa.OpBLE:
		if taken {
			return cur.Meet(interval.New(math.MinInt64, 0))
		}
		return cur.Meet(interval.New(1, math.MaxInt64))
	}
	return cur
}

// trimPoint removes v from the interval when v is an endpoint (intervals
// cannot represent holes).
func trimPoint(cur interval.Interval, v int64) interval.Interval {
	if cur.IsEmpty() {
		return cur
	}
	if lo, ok := cur.IsConst(); ok && lo == v {
		return interval.Empty()
	}
	if cur.Lo == v {
		return interval.New(cur.Lo+1, cur.Hi)
	}
	if cur.Hi == v {
		return interval.New(cur.Lo, cur.Hi-1)
	}
	return cur
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
