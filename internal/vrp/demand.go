package vrp

import (
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// The "useful" backward analysis (§2.2.5). For every value-producing
// instruction it computes the number of low-order bytes of the result that
// can influence observable behaviour. A use that only inspects low bytes —
// a byte store, an AND with a low mask, a MSKL — propagates a small demand
// to its producers; two's-complement add/sub/logical/shift-left/multiply
// pass demand through unchanged, because their low k output bytes depend
// only on the low k input bytes. That is exactly the paper's example: the
// chain of instructions feeding "AND R1, 0xFF, R2" need compute just one
// byte.
//
// Demands are monotone (start at 1, only grow, capped at 8), so the
// fixpoint over def-use chains terminates quickly.

// computeDemand fills r.Demand. Conventional mode demands everything.
func (r *Result) computeDemand() {
	p := r.Prog
	n := len(p.Ins)
	for i := 0; i < n; i++ {
		r.Demand[i] = 1
	}
	if r.Opts.Mode == Conventional {
		for i := 0; i < n; i++ {
			r.Demand[i] = 8
		}
		return
	}
	for fi := range p.Funcs {
		r.demandFunc(fi)
	}
}

func (r *Result) demandFunc(fi int) {
	p := r.Prog
	f := p.Funcs[fi]
	du := r.DefUse[fi]

	for changed := true; changed; {
		changed = false
		for i := f.End - 1; i >= f.Start; i-- {
			in := &p.Ins[i]
			dreg, ok := in.Dest()
			if !ok {
				continue
			}
			d := 1
			for _, u := range du.Uses(i) {
				d = maxInt(d, r.useDemand(u, dreg))
				if d >= 8 {
					break
				}
			}
			if d > r.Demand[i] {
				r.Demand[i] = d
				changed = true
			}
		}
	}
}

// useDemand returns how many low bytes of register reg the instruction at
// useIdx needs, given the demand on that instruction's own result.
func (r *Result) useDemand(useIdx int, reg isa.Reg) int {
	p := r.Prog
	u := &p.Ins[useIdx]

	// Pseudo-uses at calls and returns observe full width.
	for _, pr := range prog.PseudoUses(u.Op) {
		if pr == reg {
			return 8
		}
	}

	k := 8
	if _, hasDest := u.Dest(); hasDest {
		k = r.Demand[useIdx]
	}

	d := 0
	if u.Ra == reg {
		d = maxInt(d, r.operandDemand(u, true, k))
	}
	if !u.HasImm && u.Rb == reg {
		d = maxInt(d, r.operandDemand(u, false, k))
	}
	if isa.ClassOf(u.Op) == isa.ClassCmov && u.Rd == reg {
		// The old destination value may be preserved wholesale into the
		// result: it needs as many bytes as the result does.
		d = maxInt(d, k)
	}
	return d
}

// operandDemand gives the demand contribution of one operand position.
// first selects Ra (true) or Rb (false); k is the demand on the user's own
// result.
func (r *Result) operandDemand(u *isa.Instruction, first bool, k int) int {
	switch u.Op {
	case isa.OpLDA:
		// Address/constant arithmetic behaves like ADD.
		return k
	case isa.OpLD:
		return 8 // address
	case isa.OpST:
		if first {
			return 8 // address
		}
		return u.Width.Bytes() // stored data: only the stored bytes

	case isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpXOR:
		// Low k output bytes depend only on low k input bytes.
		return k
	case isa.OpAND:
		if !first && u.HasImm {
			return 0 // immediate has no register operand
		}
		if first && u.HasImm {
			// Bytes of the input above the mask's top byte are zeroed.
			return minInt(k, topUsedByteAnd(u.Imm))
		}
		return k
	case isa.OpOR, isa.OpBIC:
		if first && u.HasImm {
			// Bytes where the mask is 0xFF are forced (OR) or cleared
			// (BIC); the input only matters below the top non-0xFF byte.
			return minInt(k, topUsedByteOrBic(u.Imm))
		}
		return k

	case isa.OpSLL:
		if first {
			return k // bits only move upward
		}
		return 1 // shift amount: 0..63
	case isa.OpSRL, isa.OpSRA:
		if first {
			if u.HasImm {
				s := int(u.Imm & 63)
				return minInt(8, (8*k+s+7)/8)
			}
			return 8 // variable amount: any byte may flow down
		}
		return 1

	case isa.OpMSKL:
		return minInt(k, u.Width.Bytes())
	case isa.OpSEXT:
		return minInt(maxInt(k, 1), u.Width.Bytes())
	case isa.OpEXTB:
		if first {
			if u.HasImm {
				return minInt(8, int(u.Imm&7)+1)
			}
			return 8
		}
		return 1 // byte selector

	case isa.OpCMPEQ, isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
		// Comparisons observe the whole value. (Width assignment later
		// narrows the compare itself when both ranges fit.)
		return 8
	case isa.OpCMOVEQ, isa.OpCMOVNE, isa.OpCMOVLT, isa.OpCMOVGE:
		if first {
			return 8 // condition: full sign/zero test
		}
		return k // moved data

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBGT, isa.OpBLE:
		return 8 // branch condition: full test
	case isa.OpRET, isa.OpJSR:
		return 8
	case isa.OpOUT:
		return u.Width.Bytes()
	case isa.OpBR, isa.OpHALT:
		return 0
	}
	return 8
}

// topUsedByteAnd returns the highest byte of the input that an AND with
// mask can expose (1..8).
func topUsedByteAnd(mask int64) int {
	if mask < 0 {
		return 8 // sign-extended mask covers the top byte
	}
	um := uint64(mask)
	for b := 7; b >= 1; b-- {
		if um>>(8*uint(b)) != 0 {
			return b + 1
		}
	}
	return 1
}

// topUsedByteOrBic returns the highest input byte that can pass through an
// OR/BIC with mask: bytes where the mask is 0xFF are fully forced/cleared.
func topUsedByteOrBic(mask int64) int {
	um := uint64(mask)
	for b := 7; b >= 0; b-- {
		if (um>>(8*uint(b)))&0xFF != 0xFF {
			return b + 1
		}
	}
	return 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
