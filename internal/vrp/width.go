package vrp

import (
	"opgate/internal/interval"
	"opgate/internal/isa"
)

// Width assignment (§2, final step; §4.3 for the encodable subset): every
// instruction receives the narrowest opcode that preserves semantics.
//
// For a value-producing instruction the requirement is
//
//	width >= min(significant bytes of the result range,
//	             demanded bytes of the result)
//
// — if the result range fits the width, narrowing is lossless; if the
// demand is smaller than the range, the dropped bytes are, by the useful
// analysis, never observed. Right shifts additionally require the *input*
// to fit the width (their low output bytes depend on high input bytes).
// Comparisons require both inputs to fit. Loads, stores, masks, sign
// extensions and OUT have semantic widths fixed by the original program
// and are never reassigned; neither is anything the opcode set cannot
// encode (the fallback is the next wider encodable width).
func (r *Result) assignWidths() {
	p := r.Prog
	set := r.Opts.Opcodes
	for i := range p.Ins {
		in := &p.Ins[i]
		r.Width[i] = in.Width // default: keep

		class := isa.ClassOf(in.Op)
		switch class {
		case isa.ClassAdd, isa.ClassSub, isa.ClassMul, isa.ClassLogic,
			isa.ClassShift, isa.ClassCmov:
			if _, ok := in.Dest(); !ok {
				continue
			}
			res := r.ResRange[i]
			if res.IsEmpty() {
				continue // unreachable: keep the original width
			}
			need := minInt(res.Bytes(), r.Demand[i])
			if in.Op == isa.OpSRL || in.Op == isa.OpSRA {
				need = maxInt(need, operandBytes(r.RaRange[i]))
			}
			w := set.Narrowest(class, isa.WidthForBytes(need))
			if w < in.Width {
				r.Width[i] = w
			}
		case isa.ClassCmp:
			if r.RaRange[i].IsEmpty() {
				continue
			}
			need := maxInt(operandBytes(r.RaRange[i]), operandBytes(r.RbRange[i]))
			w := set.Narrowest(class, isa.WidthForBytes(need))
			if w < in.Width {
				r.Width[i] = w
			}
		default:
			// Semantic widths (memory, masks, OUT) and width-less
			// control flow stay as written.
		}
	}
}

// operandBytes is the significant size of an operand range; unknown
// (empty, from unreachable paths) is conservatively full width.
func operandBytes(iv interval.Interval) int {
	if iv.IsEmpty() {
		return 8
	}
	return iv.Bytes()
}
