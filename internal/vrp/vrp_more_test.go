package vrp

import (
	"math/rand"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// TestWrapAroundConservatism: §2.2.1 — when an addition can overflow, the
// range must widen rather than wrap. A counter loop with an unanalysable
// bound must not be narrowed below full width.
func TestWrapAroundConservatism(t *testing.T) {
	src := `
.data
n: .word 1000
.text
.func main
	lda r1, =n
	ld.q r2, 0(r1)    ; statically unknown bound
	lda r3, 0(rz)
loop:
	add r3, r3, #255  ; can overflow if the loop runs long enough
	sub r2, r2, #1
	bne r2, loop
	out.q r3
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		in := &p.Ins[i]
		if in.Op == isa.OpADD && in.Imm == 255 {
			// Demanded fully by the OUT; range unknown: keep 64-bit.
			if r.Width[i] != isa.W64 {
				t.Errorf("overflowable add narrowed to %v", r.Width[i])
			}
		}
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}

// TestUsefulNeverThroughStore: memory is opaque (§2); a value stored wide
// must not be narrowed below the store width even if reloaded narrow.
func TestStoreWidthDemand(t *testing.T) {
	src := `
.data
buf: .space 16
.text
.func main
	lda r1, =buf
	ld.q r2, 8(r1)    ; unknown
	add r3, r2, #1    ; feeds a wide store: full demand
	st.q r3, 0(r1)
	ld.b r4, 0(r1)
	out.b r4
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpADD {
			if r.Demand[i] != 8 {
				t.Errorf("add feeding st.q has demand %d, want 8", r.Demand[i])
			}
			if r.Width[i] != isa.W64 {
				t.Errorf("add feeding st.q narrowed to %v", r.Width[i])
			}
		}
	}
}

// TestStoreNarrowDemand: conversely a byte store demands one byte.
func TestStoreNarrowDemand(t *testing.T) {
	src := `
.data
buf: .space 16
.text
.func main
	lda r1, =buf
	ld.q r2, 8(r1)
	add r3, r2, #1
	st.b r3, 0(r1)
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpADD {
			if r.Demand[i] != 1 {
				t.Errorf("add feeding st.b has demand %d, want 1", r.Demand[i])
			}
			if r.Width[i] != isa.W8 {
				t.Errorf("add feeding st.b = %v, want b", r.Width[i])
			}
		}
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}

// TestRightShiftInputConstraint: srl's low output bytes depend on high
// input bytes, so it can only narrow when its input provably fits.
func TestRightShiftInputConstraint(t *testing.T) {
	src := `
.data
buf: .space 16
.text
.func main
	lda r1, =buf
	ld.q r2, 8(r1)    ; unknown wide value
	srl r3, r2, #4
	and r4, r3, #15
	out.b r4
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpSRL {
			if r.Width[i] != isa.W64 {
				t.Errorf("srl of unknown value narrowed to %v", r.Width[i])
			}
		}
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}

// TestOrMaskUsefulPropagation: §2.2.5's OR example — forcing the upper
// bytes to ones means only the lower bytes of the input are useful.
func TestOrMaskUsefulPropagation(t *testing.T) {
	src := `
.data
buf: .space 16
out: .space 8
.text
.func main
	lda r1, =buf
	ld.q r2, 8(r1)
	add r3, r2, #77     ; only low 4 bytes useful after the OR
	or r4, r3, #-4294967296   ; 0xFFFFFFFF00000000
	lda r5, =out
	st.q r4, 0(r5)
	halt
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpADD && p.Ins[i].Imm == 77 {
			if r.Demand[i] != 4 {
				t.Errorf("add demand %d, want 4 (OR forces the top half)", r.Demand[i])
			}
		}
	}
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}

// TestAblationFlags: turning off loop analysis or branch refinement only
// loses precision, never soundness.
func TestAblationFlags(t *testing.T) {
	p := mustAssemble(t, fig1Src)
	full, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	noLoop, err := Analyze(p, Options{Mode: Useful, DisableLoopAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	noRef, err := Analyze(p, Options{Mode: Useful, DisableBranchRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	h := full.StaticHistogram()
	for _, r := range []*Result{noLoop, noRef} {
		ha := r.StaticHistogram()
		if ha.Count[3] < h.Count[3] {
			t.Error("ablated analysis found MORE narrow instructions than the full one")
		}
		if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
			t.Fatalf("ablated analysis unsound: %v", err)
		}
	}
	// With BOTH loop analysis and branch refinement off, the iterator
	// range is unrecoverable and precision must drop. (Each alone can be
	// compensated: threshold widening re-derives simple loop bounds from
	// the comparison constants.)
	noBoth, err := Analyze(p, Options{Mode: Useful,
		DisableLoopAnalysis: true, DisableBranchRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.CheckEquivalence(p, noBoth.Apply()); err != nil {
		t.Fatalf("fully ablated analysis unsound: %v", err)
	}
	if noBoth.StaticHistogram().Count[0] >= h.Count[0] {
		t.Error("full ablation did not reduce byte-width instructions on Fig 1")
	}
}

// TestRandomProgramsEquivalence: fuzz — generate random straight-line
// integer programs, analyze, re-encode, and verify equivalence.
func TestRandomProgramsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpAND, isa.OpOR,
		isa.OpXOR, isa.OpBIC, isa.OpSLL, isa.OpSRL, isa.OpSRA,
		isa.OpCMPEQ, isa.OpCMPLT, isa.OpCMPULE, isa.OpMSKL, isa.OpSEXT, isa.OpEXTB}
	for trial := 0; trial < 60; trial++ {
		b := asm.NewBuilder()
		b.Func("main")
		// Seed a few registers with random constants.
		for reg := isa.Reg(1); reg <= 6; reg++ {
			b.LoadImm(reg, int64(int32(r.Uint32())))
		}
		for k := 0; k < 40; k++ {
			op := ops[r.Intn(len(ops))]
			w := isa.Widths[r.Intn(4)]
			rd := isa.Reg(1 + r.Intn(6))
			ra := isa.Reg(1 + r.Intn(6))
			rb := isa.Reg(1 + r.Intn(6))
			switch op {
			case isa.OpMSKL, isa.OpSEXT:
				b.Emit(isa.Instruction{Op: op, Width: w, Rd: rd, Ra: ra})
			case isa.OpEXTB:
				b.OpI(op, w, rd, ra, int64(r.Intn(8)))
			case isa.OpSLL, isa.OpSRL, isa.OpSRA:
				if r.Intn(2) == 0 {
					b.OpI(op, w, rd, ra, int64(r.Intn(64)))
				} else {
					b.Op3(op, w, rd, ra, rb)
				}
			default:
				if r.Intn(3) == 0 {
					b.OpI(op, w, rd, ra, int64(int32(r.Uint32())))
				} else {
					b.Op3(op, w, rd, ra, rb)
				}
			}
		}
		// Observe everything.
		for reg := isa.Reg(1); reg <= 6; reg++ {
			b.Out(isa.W64, reg)
		}
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		for _, mode := range []Mode{Conventional, Useful} {
			res, err := Analyze(p, Options{Mode: mode})
			if err != nil {
				t.Fatalf("trial %d: analyze: %v", trial, err)
			}
			if err := emu.CheckEquivalence(p, res.Apply()); err != nil {
				t.Fatalf("trial %d (%v): %v\nprogram:\n%s", trial, mode, err, asm.Disassemble(p))
			}
		}
	}
}

// TestCalleeSavedPreserved: a value in a callee-saved register keeps its
// range across a call (the interprocedural transfer's key assumption).
func TestCalleeSavedPreserved(t *testing.T) {
	src := `
.func main
	lda r9, 40(rz)      ; callee-saved
	lda a0, 1(rz)
	jsr f
	add r2, r9, #2      ; r9 still [40,40]
	out.b r2
	halt
.func f
	add rv, a0, #1
	ret
`
	p := mustAssemble(t, src)
	r, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	var addIdx = -1
	for i := range p.Ins {
		if p.Ins[i].Op == isa.OpADD && p.Ins[i].Imm == 2 {
			addIdx = i
		}
	}
	res := r.ResRange[addIdx]
	if v, ok := res.IsConst(); !ok || v != 42 {
		t.Errorf("range after call = %v, want <42,42>", res)
	}
	_ = prog.RegGP // document: GP is pinned, also preserved
	if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
		t.Fatal(err)
	}
}
