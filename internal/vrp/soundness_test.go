package vrp

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/workload"
)

// TestRangesContainObservedValues is the strongest check on the forward
// analysis: run every kernel and verify that every dynamically produced
// value lies inside the statically computed range of its producing
// instruction. Any unsoundness in the transfer functions, the loop
// trip-count logic, branch refinement, widening, or the interprocedural
// summaries shows up here immediately.
func TestRangesContainObservedValues(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Build(workload.Ref)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Analyze(p, Options{Mode: Useful})
			if err != nil {
				t.Fatal(err)
			}
			m := emu.New(p)
			violations := 0
			m.Sink = emu.FuncSink(func(ev emu.Event) {
				if violations > 3 {
					return
				}
				if _, ok := ev.Ins.Dest(); !ok {
					return
				}
				res := r.ResRange[ev.Idx]
				if res.IsEmpty() {
					violations++
					t.Errorf("instruction %d (%s) executed but its range is empty (unreachable?)",
						ev.Idx, ev.Ins.String())
					return
				}
				if !res.Contains(ev.Value) {
					violations++
					t.Errorf("instruction %d (%s): observed value %d outside static range %v",
						ev.Idx, ev.Ins.String(), ev.Value, res)
				}
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOperandRangesContainObservedValues does the same for the recorded
// input-operand ranges (what the compare-width assignment and VRS's
// savings model consume).
func TestOperandRangesContainObservedValues(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Build(workload.Ref)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Analyze(p, Options{Mode: Useful})
			if err != nil {
				t.Fatal(err)
			}
			m := emu.New(p)
			violations := 0
			m.Sink = emu.FuncSink(func(ev emu.Event) {
				if violations > 3 {
					return
				}
				uses, n := ev.Ins.Uses()
				if n == 0 || uses[0] != ev.Ins.Ra {
					return
				}
				ra := r.RaRange[ev.Idx]
				if !ra.IsEmpty() && !ra.Contains(ev.SrcA) {
					violations++
					t.Errorf("instruction %d (%s): operand value %d outside recorded range %v",
						ev.Idx, ev.Ins.String(), ev.SrcA, ra)
				}
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDemandWithinBounds: demands are always 1..8, and conventional mode
// demands everything.
func TestDemandWithinBounds(t *testing.T) {
	w, _ := workload.ByName("gcc")
	p, _ := w.Build(workload.Train)
	useful, err := Analyze(p, Options{Mode: Useful})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Analyze(p, Options{Mode: Conventional})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ins {
		if d := useful.Demand[i]; d < 1 || d > 8 {
			t.Fatalf("demand[%d] = %d", i, d)
		}
		if conv.Demand[i] != 8 {
			t.Fatalf("conventional demand[%d] = %d, want 8", i, conv.Demand[i])
		}
		if useful.Demand[i] > conv.Demand[i] {
			t.Fatalf("useful demand exceeds conventional at %d", i)
		}
	}
}

// TestWidthNeverWidens: the assigned width never exceeds the width the
// program was written with (VRP only narrows; widening would change
// truncation semantics).
func TestWidthNeverWidens(t *testing.T) {
	for _, w := range workload.All() {
		p, err := w.Build(workload.Train)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(p, Options{Mode: Useful})
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Ins {
			if r.Width[i] > p.Ins[i].Width {
				t.Fatalf("%s: instruction %d widened %v -> %v",
					w.Name, i, p.Ins[i].Width, r.Width[i])
			}
		}
	}
}
