// Package vrs implements the paper's Value Range Specialization (§3): a
// profile-guided transformation that clones code regions, guards them with
// range tests, and lets value range propagation narrow the specialized
// copy. The three steps match §3 exactly:
//
//  1. candidate identification from basic-block profiles with a
//     preliminary benefit analysis at the minimum possible cost,
//  2. value profiling of the candidates with fixed-size TNV tables,
//  3. energy cost/benefit filtering and code transformation (single-value
//     specialization additionally runs constant propagation and dead-code
//     elimination inside the clone).
//
// The guard emitted before a specialized region is the paper's
// (x>=min && x<=max) test. Because the guard is an ordinary compare+branch
// sequence, re-running VRP on the transformed program narrows the clone
// through standard branch refinement — no side-channel range injection is
// needed.
package vrs

import (
	"fmt"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/vrp"
)

// Options configures specialization.
type Options struct {
	// Threshold is the fixed per-specialization energy overhead charged
	// in the benefit test — the paper's "VRS 110nJ ... VRS 30nJ"
	// configurations (Fig. 8): lower thresholds specialize more points.
	Threshold float64
	// Coverage is the TNV range-coverage target (fraction of profiled
	// events the chosen [min,max] must cover). Default 0.95.
	Coverage float64
	// MaxPoints caps the number of specializations (0: unlimited).
	MaxPoints int
	// VRP options used for the analyses before and after transformation.
	// The mode defaults to Useful — VRS builds on the proposed VRP.
	VRP vrp.Options
	// Power parameters for the energy model (Table 1 energies).
	Power power.Params
}

func (o *Options) defaults() {
	if o.Coverage <= 0 {
		o.Coverage = 0.95
	}
	o.VRP.Mode = vrp.Useful
	if o.Threshold == 0 {
		o.Threshold = 50
	}
	var zero power.Params
	if o.Power == zero {
		o.Power = power.DefaultParams()
	}
}

// Outcome classifies a profiled point (Fig. 4's three bars).
type Outcome int

// Point outcomes.
const (
	NoBenefit Outcome = iota
	Subsumed          // "dependent on another point": inside a chosen region
	Specialized
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case NoBenefit:
		return "no-benefit"
	case Subsumed:
		return "subsumed"
	case Specialized:
		return "specialized"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Point is one profiled candidate.
type Point struct {
	InsIdx   int     // instruction index in the original program
	Count    int64   // executions observed in the block profile
	Min, Max int64   // chosen specialization range
	Freq     float64 // fraction of profiled values inside [Min,Max]
	Savings  float64 // estimated energy savings per §3.1
	Cost     float64 // guard energy cost per §3.2
	Benefit  float64 // Savings*Freq - Cost - Threshold
	Outcome  Outcome
	// Region is the original-program instruction range cloned for this
	// point (valid when Outcome == Specialized).
	RegionStart, RegionEnd int
}

// Result is the outcome of a full VRS run.
type Result struct {
	Original    *prog.Program
	Transformed *prog.Program
	Points      []Point

	// Static statistics (Fig. 5).
	StaticSpecialized int // instructions in specialized clones (incl. guards)
	StaticEliminated  int // clone instructions removed by const-prop + DCE

	// Instruction index sets in the transformed program, for runtime
	// accounting (Fig. 6).
	GuardIns map[int]bool
	SpecIns  map[int]bool

	// FinalVRP is the analysis of the transformed program (used by
	// Apply and the experiments).
	FinalVRP *vrp.Result
}

// NumSpecialized counts the points actually specialized.
func (r *Result) NumSpecialized() int {
	n := 0
	for i := range r.Points {
		if r.Points[i].Outcome == Specialized {
			n++
		}
	}
	return n
}

// Apply returns the transformed program re-encoded with the final VRP
// width assignment — the binary the evaluation runs.
func (r *Result) Apply() *prog.Program {
	return r.FinalVRP.Apply()
}

// Profile is the threshold-independent front half of the VRS pipeline:
// the baseline analysis of the reference binary, the train-input block
// profile (instruction counts), candidate identification at the minimum
// possible cost, and the candidates' TNV value profiles. None of it
// depends on Options.Threshold — the threshold only enters the §3.4
// cost/benefit test — so one Profile serves a whole threshold grid via
// Select, paying the train emulation exactly once instead of once per
// point.
//
// A Profile is immutable after NewProfile returns: Select only reads the
// shared tables (and transforms fresh per-call state), so concurrent
// Select calls at different thresholds are safe.
type Profile struct {
	refProg  *prog.Program
	base     *vrp.Result
	counts   []int64
	cands    []candidate
	profiler *emu.Profiler
	opts     Options // defaults applied; Threshold ignored by Select
}

// NewProfile runs the threshold-independent stages of VRS. trainProg is
// the binary with the profiling input baked in; refProg is the binary to
// transform. The two must share a static code layout (same instruction
// sequence, possibly different immediates/data), which is the builder's
// contract. opts.Threshold is ignored here — pass it to Select.
func NewProfile(trainProg, refProg *prog.Program, opts Options) (*Profile, error) {
	opts.defaults()
	if len(trainProg.Ins) != len(refProg.Ins) {
		return nil, fmt.Errorf("vrs: train and ref binaries have different layouts (%d vs %d instructions)",
			len(trainProg.Ins), len(refProg.Ins))
	}

	// Static analysis of the reference binary.
	base, err := vrp.Analyze(refProg, opts.VRP)
	if err != nil {
		return nil, fmt.Errorf("vrs: baseline VRP: %w", err)
	}

	// Step 1 (§3.3): block profile on the train input, then candidate
	// identification with the minimum-cost preliminary filter. The run is
	// captured as a packed trace so step 2's value profiling can replay
	// it instead of emulating the train input a second time.
	trainMachine := emu.New(trainProg)
	trainMachine.EnableCounts()
	rec := emu.NewTraceRecorder(trainProg)
	trainMachine.Sink = rec
	if err := trainMachine.Run(); err != nil {
		return nil, fmt.Errorf("vrs: train profiling run: %w", err)
	}
	counts := trainMachine.InsCount
	trainTrace, traceErr := rec.Trace()

	pf := &Profile{refProg: refProg, base: base, counts: counts, opts: opts}
	pf.cands = findCandidates(refProg, base, counts, opts)
	if len(pf.cands) == 0 {
		return pf, nil
	}

	// Step 2 (§3.3): value-profile the candidates on the train input,
	// replaying the captured trace's packed records (index and value
	// columns) through the profiler. Only when the capture blew its
	// memory budget does the profiler fall back to a second emulation.
	idxs := make([]int, len(pf.cands))
	for i, c := range pf.cands {
		idxs[i] = c.InsIdx
	}
	pf.profiler = emu.NewProfiler(idxs)
	if traceErr == nil {
		trainTrace.Records(pf.profiler)
	} else {
		trainMachine.Reset()
		trainMachine.Sink = nil
		pf.profiler.Attach(trainMachine)
		if err := trainMachine.Run(); err != nil {
			return nil, fmt.Errorf("vrs: value profiling run: %w", err)
		}
	}
	return pf, nil
}

// NumCandidates reports how many specialization candidates survived the
// preliminary minimum-cost filter.
func (pf *Profile) NumCandidates() int { return len(pf.cands) }

// Select runs the cheap per-threshold back half of the pipeline — the
// §3.4 energy cost/benefit filter and the code transformation — against
// the shared profile. It performs no emulation; a K-threshold grid over
// one Profile costs one train pass total.
func (pf *Profile) Select(threshold float64) (*Result, error) {
	opts := pf.opts
	opts.Threshold = threshold
	if opts.Threshold == 0 {
		opts.Threshold = 50
	}
	if len(pf.cands) == 0 {
		// Deterministic no-op at every threshold: the transformed program
		// is the reference binary under its baseline analysis.
		return &Result{
			Original:    pf.refProg,
			Transformed: pf.refProg,
			FinalVRP:    pf.base,
			GuardIns:    map[int]bool{},
			SpecIns:     map[int]bool{},
		}, nil
	}

	// Step 3 (§3.4): evaluate profitability with the profiled ranges and
	// transform the survivors. evaluate builds fresh Points from the
	// candidate list, so the shared profile stays untouched.
	points := evaluate(pf.refProg, pf.base, pf.cands, pf.profiler, pf.counts, opts)
	return transform(pf.refProg, pf.base, points, pf.counts, opts)
}

// Specialize runs the full VRS pipeline at opts.Threshold: NewProfile
// followed by one Select. Callers evaluating several thresholds should
// hold the Profile and Select per threshold instead, amortizing the train
// emulation across the grid.
func Specialize(trainProg, refProg *prog.Program, opts Options) (*Result, error) {
	pf, err := NewProfile(trainProg, refProg, opts)
	if err != nil {
		return nil, err
	}
	return pf.Select(opts.Threshold)
}
