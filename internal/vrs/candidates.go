package vrs

import (
	"sort"

	"opgate/internal/emu"
	"opgate/internal/interval"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/vrp"
)

// guardCost returns the per-execution energy of the guard for a range,
// per §3.2: "each instruction needed in the test is given an energy
// requirement in relation to its instruction-type". We price the test
// instructions with the same datapath energies the savings side uses: a
// comparison against an unconstrained register is a full-width operation,
// a branch moves one byte of condition. (Our guard uses a second branch
// where the paper uses an AND; the energy class is the same.)
//
// Pricing guards honestly — instead of nominal 1 nJ constants — means only
// specializations whose clones genuinely save more than the tests burn
// survive, which concentrates VRS on the instruction-eliminating
// single-value points; that is where the paper's own Fig. 5 found the
// action (m88ksim and vortex "eliminate almost all the specialized
// instructions").
func guardCost(params power.Params, min, max int64) float64 {
	cmpCost := power.OpEnergy(params, 8)
	brCost := power.OpEnergy(params, 1)
	if min == max {
		return cmpCost + brCost
	}
	return 2*cmpCost + 2*brCost
}

// candidate is a prospective specialization point before value profiling.
type candidate struct {
	InsIdx int
	Count  int64
	Best   float64 // optimistic savings (result narrowed to one byte)
}

// findCandidates implements §3.3: instructions whose downstream energy
// would shrink if their output range were narrower, filtered by a
// preliminary benefit analysis that assumes the minimum possible cost (a
// single comparison) and the maximum possible narrowing.
func findCandidates(p *prog.Program, base *vrp.Result, counts []int64, opts Options) []candidate {
	var out []candidate
	// The paper's preliminary filter assumes the minimum possible cost: a
	// single comparison per execution of the candidate.
	minCostPerExec := power.OpEnergy(opts.Power, 1)

	for i := range p.Ins {
		in := &p.Ins[i]
		if counts[i] == 0 {
			continue
		}
		if _, ok := in.Dest(); !ok {
			continue
		}
		// Only value-producing instructions whose statically known width
		// is still wide can benefit.
		switch isa.ClassOf(in.Op) {
		case isa.ClassLoad, isa.ClassAdd, isa.ClassSub, isa.ClassMul,
			isa.ClassLogic, isa.ClassShift, isa.ClassMask:
		default:
			continue
		}
		curBytes := effectiveBytes(base, i)
		if curBytes <= 1 {
			continue // already as narrow as possible
		}
		// Optimistic savings: the output becomes a single byte (and, if
		// it turns out to be a single value, foldable consumers vanish).
		best := savingsEstimate(p, base, i, 1, counts, 0) + foldBonus(p, base, i, counts)
		if best <= float64(counts[i])*minCostPerExec {
			continue
		}
		out = append(out, candidate{InsIdx: i, Count: counts[i], Best: best})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Best > out[b].Best })
	// Profiling every instruction would be absurd (§3.3's point); keep
	// the most promising ones.
	const maxProfiled = 64
	if len(out) > maxProfiled {
		out = out[:maxProfiled]
	}
	return out
}

// effectiveBytes is the width (in bytes) the baseline analysis already
// assigns to instruction i's value.
func effectiveBytes(base *vrp.Result, i int) int {
	b := base.Width[i].Bytes()
	if !base.ResRange[i].IsEmpty() && base.ResRange[i].Bytes() < b {
		b = base.ResRange[i].Bytes()
	}
	return b
}

// savingsEstimate implements the paper's Savings(I,r,min,max) recursion
// (§3.1): the energy saved across the instructions that consume I's
// output, when that output narrows to newBytes. For each dependent
// instruction D, the saving is InstCount(D) × the Table 1 energy delta
// between D's current width and its width with the narrowed input; the
// recursion then descends into D's own consumers (depth-limited).
func savingsEstimate(p *prog.Program, base *vrp.Result, defIdx, newBytes int, counts []int64, depth int) float64 {
	if depth > 3 {
		return 0
	}
	f := p.FuncOf(defIdx)
	if f == nil {
		return 0
	}
	du := base.DefUse[f.Index]
	var total float64
	for _, useIdx := range du.Uses(defIdx) {
		u := &p.Ins[useIdx]
		if _, ok := u.Dest(); !ok {
			continue
		}
		switch isa.ClassOf(u.Op) {
		case isa.ClassAdd, isa.ClassSub, isa.ClassMul, isa.ClassLogic,
			isa.ClassShift, isa.ClassCmp, isa.ClassCmov:
		default:
			continue
		}
		oldBytes := effectiveBytes(base, useIdx)
		// With one input narrowed, the consumer's width drops to at
		// most max(newBytes, other input's width) — approximated with
		// the narrowed input dominating when it was the wide one.
		proj := maxInt(newBytes, otherInputBytes(p, base, useIdx, defIdx))
		if proj >= oldBytes {
			continue
		}
		total += float64(counts[useIdx]) * energyDelta(oldBytes, proj)
		total += savingsEstimate(p, base, useIdx, proj, counts, depth+1)
	}
	return total
}

// energyDelta is the per-execution saving for narrowing an ALU-class
// operation from oldBytes to newBytes: the full datapath delta (§3.1's
// empirically observed per-instruction-type energies — the instruction
// queue, register file, buses and functional unit all shrink with the
// operand width, not just the Table 1 ALU component).
func energyDelta(oldBytes, newBytes int) float64 {
	return power.OpSavingsDelta(power.DefaultParams(), oldBytes, newBytes)
}

// foldBonus estimates the energy of consumers that constant propagation
// can remove entirely when the specialized value is a single constant:
// ALU/compare consumers whose other operand is an immediate fold to
// constants, and conditional branches on the value (or on a folded
// compare) disappear.
func foldBonus(p *prog.Program, base *vrp.Result, defIdx int, counts []int64) float64 {
	f := p.FuncOf(defIdx)
	if f == nil {
		return 0
	}
	du := base.DefUse[f.Index]
	params := power.DefaultParams()
	var total float64
	for _, useIdx := range du.Uses(defIdx) {
		u := &p.Ins[useIdx]
		if isa.IsCondBranch(u.Op) {
			// The branch itself folds away.
			total += float64(counts[useIdx]) * power.OpEnergy(params, 1)
			continue
		}
		if _, ok := u.Dest(); !ok {
			continue
		}
		if !u.HasImm {
			continue
		}
		switch isa.ClassOf(u.Op) {
		case isa.ClassAdd, isa.ClassSub, isa.ClassMul, isa.ClassLogic,
			isa.ClassShift, isa.ClassCmp:
			// Folds to a constant and is then dead-code eliminated: the
			// whole execution disappears, and any branch it feeds folds
			// too.
			old := effectiveBytes(base, useIdx)
			total += float64(counts[useIdx]) * power.OpEnergy(params, old)
			for _, bIdx := range du.Uses(useIdx) {
				if isa.IsCondBranch(p.Ins[bIdx].Op) {
					total += float64(counts[bIdx]) * power.OpEnergy(params, 1)
				}
			}
		}
	}
	return total
}

// otherInputBytes returns the significant bytes of the consumer's other
// register input (8 when unknown).
func otherInputBytes(p *prog.Program, base *vrp.Result, useIdx, defIdx int) int {
	u := &p.Ins[useIdx]
	f := p.FuncOf(useIdx)
	du := base.DefUse[f.Index]
	best := 1
	uses, n := u.Uses()
	for k := 0; k < n; k++ {
		reg := uses[k]
		if reg == isa.ZeroReg {
			continue
		}
		// Is this operand fed (solely) by defIdx?
		defs := du.ReachingDefs(useIdx, reg)
		solo := len(defs) == 1 && defs[0] == defIdx
		if solo {
			continue
		}
		var iv interval.Interval
		if k == 0 {
			iv = base.RaRange[useIdx]
		} else {
			iv = base.RbRange[useIdx]
		}
		b := 8
		if !iv.IsEmpty() {
			b = iv.Bytes()
		}
		if b > best {
			best = b
		}
	}
	if u.HasImm {
		ib := interval.Const(u.Imm).Bytes()
		if ib > best {
			best = ib
		}
	}
	return best
}

// evaluate implements §3.4's first step: with profiled value ranges in
// hand, compute Savings·Freq − Cost − Threshold for every candidate and
// keep the profitable ones.
func evaluate(p *prog.Program, base *vrp.Result, cands []candidate, prof *emu.Profiler, counts []int64, opts Options) []Point {
	points := make([]Point, 0, len(cands))
	for _, c := range cands {
		pt := Point{InsIdx: c.InsIdx, Count: c.Count, Outcome: NoBenefit}
		table := prof.Points[c.InsIdx]
		if table == nil || table.Total == 0 {
			points = append(points, pt)
			continue
		}
		min, max, freq, ok := table.CoverageRange(opts.Coverage)
		if !ok {
			points = append(points, pt)
			continue
		}
		newBytes := interval.New(minI64(min, max), maxI64(min, max)).Bytes()
		cur := effectiveBytes(base, c.InsIdx)
		pt.Min, pt.Max, pt.Freq = min, max, freq
		if newBytes >= cur {
			points = append(points, pt) // profile isn't narrower than statics
			continue
		}
		pt.Savings = savingsEstimate(p, base, c.InsIdx, newBytes, counts, 0)
		if min == max {
			// Single-value specialization also eliminates instructions
			// outright via constant propagation (Fig. 5): every
			// immediately-foldable consumer saves its whole execution.
			pt.Savings += foldBonus(p, base, c.InsIdx, counts)
		}
		pt.Cost = float64(counts[c.InsIdx]) * guardCost(opts.Power, min, max)
		pt.Benefit = pt.Savings*freq - pt.Cost - opts.Threshold
		points = append(points, pt)
	}
	sort.Slice(points, func(a, b int) bool { return points[a].Benefit > points[b].Benefit })
	return points
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
