package vrs

import (
	"fmt"

	"opgate/internal/isa"
	"opgate/internal/prog"
	"opgate/internal/vrp"
)

// maxRegionIns caps the size of a cloned region (static code growth per
// specialization point).
const maxRegionIns = 64

// regionEnd extends the specialization region from the defining block
// through contiguous, dominated following blocks. Within a loop, the
// region stays inside the loop (the back edge re-executes the guard);
// outside, it extends through the dominated straight-line continuation.
func regionEnd(f *prog.Func, blk *prog.Block, defIdx int) int {
	end := blk.End
	loop := blk.Loop
	for {
		if end-defIdx-1 >= maxRegionIns {
			return end
		}
		next := f.BlockOf(end)
		if next == nil || next.Start != end {
			return end
		}
		if loop != nil && !loop.Contains(next) {
			return end
		}
		if !prog.Dominates(blk, next) {
			return end
		}
		if next.End-defIdx-1 > maxRegionIns {
			return end
		}
		end = next.End
	}
}

// chosenRegion records one applied specialization during the transform.
type chosenRegion struct {
	start, end int // original-index span covered (definition..region end)
	guards     []*prog.Node
	clones     map[int]*prog.Node
	point      *Point
}

// transform implements §3.4's code transformation: for each profitable
// point (in benefit order), clone the region the point dominates, insert
// the (x>=min && x<=max) guard selecting between the original and the
// specialized copy, and — after rebuilding — run constant propagation and
// dead-code elimination inside single-value clones, followed by a final
// VRP pass that narrows the clones through the guards' branch refinement.
func transform(p *prog.Program, base *vrp.Result, points []Point, counts []int64, opts Options) (*Result, error) {
	ed := prog.NewEditor(p)
	res := &Result{
		Original: p,
		Points:   points,
		GuardIns: map[int]bool{},
		SpecIns:  map[int]bool{},
	}

	var picked []chosenRegion

	overlaps := func(a, b int) bool {
		for _, c := range picked {
			if a < c.end && b > c.start {
				return true
			}
		}
		return false
	}

	for i := range points {
		pt := &points[i]
		if pt.Benefit <= 0 {
			continue // sorted by benefit: everything after is unprofitable
		}
		if opts.MaxPoints > 0 && len(picked) >= opts.MaxPoints {
			break
		}
		f := p.FuncOf(pt.InsIdx)
		if f == nil {
			continue
		}
		blk := f.BlockOf(pt.InsIdx)
		if blk == nil {
			continue
		}
		// Region: the code dominated by the definition — the rest of its
		// basic block, extended through contiguous following blocks of
		// the same loop (or function) that the defining block dominates,
		// so the region has a single entry at the guard. The paper
		// "duplicates the regions of code that are affected by the
		// specialization"; a dominated loop-body suffix is exactly the
		// code whose ranges the specialized value can narrow, and it
		// amortises the guard over many instructions.
		start, end := pt.InsIdx+1, regionEnd(f, blk, pt.InsIdx)
		if end-start < 2 {
			pt.Outcome = NoBenefit
			continue
		}
		if overlaps(pt.InsIdx, end) {
			pt.Outcome = Subsumed // inside/overlapping another point's region
			continue
		}
		// Runtime-overhead filter: the guard executes once per definition;
		// it must be small against the dynamic weight of the region it
		// selects, or the added instructions swamp the gating benefit
		// (the paper's comparisons stay near 1% of executed instructions,
		// Fig. 6).
		guardLen := int64(4)
		if pt.Min == pt.Max {
			guardLen = 2
		}
		var regionDyn int64
		for i := start; i < end; i++ {
			regionDyn += counts[i]
		}
		if float64(guardLen*counts[pt.InsIdx]) > 0.35*float64(regionDyn) {
			pt.Outcome = NoBenefit
			continue
		}

		entry, mapping, err := ed.CloneRange(f.Index, start, end)
		if err != nil {
			return nil, fmt.Errorf("vrs: clone for point %d: %w", pt.InsIdx, err)
		}
		// Guard before the original region start, after the defining
		// instruction (no incoming branches can target mid-block, so a
		// plain sequential insert is safe).
		anchor := ed.NodeAt(start)
		reg := p.Ins[pt.InsIdx].Rd
		var guards []*prog.Node
		if pt.Min == pt.Max {
			// cmpeq t, r, #min ; bne t, clone
			g1 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpCMPEQ, Width: isa.W64, Rd: prog.RegScratch, Ra: reg, Imm: pt.Min, HasImm: true,
			})
			g2 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpBNE, Ra: prog.RegScratch,
			})
			ed.SetTarget(g2, entry)
			guards = []*prog.Node{g1, g2}
		} else {
			// cmplt t, r, #min ; bne t, original
			// cmple t, r, #max ; bne t, clone
			g1 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpCMPLT, Width: isa.W64, Rd: prog.RegScratch, Ra: reg, Imm: pt.Min, HasImm: true,
			})
			g2 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpBNE, Ra: prog.RegScratch,
			})
			ed.SetTarget(g2, anchor)
			g3 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpCMPLE, Width: isa.W64, Rd: prog.RegScratch, Ra: reg, Imm: pt.Max, HasImm: true,
			})
			g4 := ed.InsertBeforeNoRedirect(anchor, isa.Instruction{
				Op: isa.OpBNE, Ra: prog.RegScratch,
			})
			ed.SetTarget(g4, entry)
			guards = []*prog.Node{g1, g2, g3, g4}
		}
		pt.Outcome = Specialized
		pt.RegionStart, pt.RegionEnd = start, end
		picked = append(picked, chosenRegion{start: pt.InsIdx, end: end, guards: guards, clones: mapping, point: pt})
	}

	if len(picked) == 0 {
		final, err := vrp.Analyze(p, opts.VRP)
		if err != nil {
			return nil, err
		}
		res.Transformed = p
		res.FinalVRP = final
		return res, nil
	}

	// Single-value clones: constant-propagate the specialized register
	// through the clone and fold what becomes constant (the paper:
	// "specializing for a given value and applying constant propagation").
	eliminatedBranches := 0
	for _, c := range picked {
		if c.point.Min != c.point.Max {
			continue
		}
		eliminatedBranches += constPropClone(ed, p, c.point, c.clones)
	}

	q, err := ed.Build()
	if err != nil {
		return nil, fmt.Errorf("vrs: rebuild: %w", err)
	}

	// Dead-code elimination inside the clones, driven by real def-use
	// chains on the rebuilt program (which include the full-width
	// pseudo-uses at calls and returns, so a def with no recorded use is
	// genuinely dead). Iterate: deleting one instruction can kill the
	// uses of another.
	eliminated := 0
	for iter := 0; iter < 4; iter++ {
		nodeIdx := indexNodes(ed, q)
		dead := deadCloneNodes(ed, q, picked, nodeIdx)
		if len(dead) == 0 {
			break
		}
		for _, n := range dead {
			ed.Delete(n)
			eliminated++
		}
		q, err = ed.Build()
		if err != nil {
			return nil, fmt.Errorf("vrs: rebuild after DCE: %w", err)
		}
	}

	// Final analysis: the guards' compare+branch shapes let VRP narrow
	// the clones via ordinary branch refinement.
	final, err := vrp.Analyze(q, opts.VRP)
	if err != nil {
		return nil, fmt.Errorf("vrs: final VRP: %w", err)
	}

	// Map guard/clone nodes to their indices in the rebuilt program.
	nodeIdx := indexNodes(ed, q)
	for _, c := range picked {
		clones := 0
		for _, n := range c.clones {
			if idx, ok := nodeIdx[n]; ok {
				res.SpecIns[idx] = true
				clones++
			}
		}
		for _, g := range c.guards {
			if idx, ok := nodeIdx[g]; ok {
				res.GuardIns[idx] = true
			}
		}
		res.StaticSpecialized += clones + len(c.guards)
	}
	res.StaticEliminated = eliminated + eliminatedBranches
	res.Transformed = q
	res.FinalVRP = final
	return res, nil
}

// constPropClone replaces clone instructions with constant loads where
// the specialized register's single (guard-established) value decides
// them, and folds conditional branches whose condition becomes constant
// (taken → unconditional; not-taken → deleted). This is the elimination
// effect of Fig. 5: "a consequence of specializing for a given value and
// applying constant propagation".
//
// Soundness across control flow: the constant environment is only valid
// along straight-line execution, so it resets at every original block
// leader inside the region to just the guard-established constant (and
// drops even that once the specialized register is redefined).
func constPropClone(ed *prog.Editor, p *prog.Program, pt *Point, clones map[int]*prog.Node) (deleted int) {
	reg := p.Ins[pt.InsIdx].Rd
	f := p.FuncOf(pt.InsIdx)

	idxs := make([]int, 0, len(clones))
	for i := range clones {
		idxs = append(idxs, i)
	}
	sortInts(idxs)

	// Is the specialized register redefined anywhere in the region? If
	// so its constant is only valid up to that point of the layout walk.
	regValid := true
	consts := map[isa.Reg]int64{reg: pt.Min}

	for _, i := range idxs {
		n := clones[i]
		if blk := f.BlockOf(i); blk != nil && blk.Start == i {
			// Block leader: joins may merge paths; keep only the
			// region-wide guard constant.
			consts = map[isa.Reg]int64{}
			if regValid {
				consts[reg] = pt.Min
			}
		}
		in := &n.Ins
		// Fold a conditional branch on a known-constant condition.
		if isa.IsCondBranch(in.Op) {
			if v, ok := consts[in.Ra]; ok || in.Ra == isa.ZeroReg {
				if in.Ra == isa.ZeroReg {
					v = 0
				}
				if branchTaken(in.Op, v) {
					ed.Replace(n, isa.Instruction{Op: isa.OpBR, Target: in.Target})
				} else {
					ed.Delete(n)
					deleted++
				}
			}
			continue
		}
		d, hasDest := in.Dest()
		if !hasDest {
			continue
		}
		if folded, val, ok := foldConst(in, consts); ok {
			ed.Replace(n, folded)
			consts[d] = val
			if d == reg {
				regValid = val == pt.Min
			}
			continue
		}
		delete(consts, d)
		if d == reg {
			regValid = false
		}
	}
	return deleted
}

// branchTaken decides a conditional branch with a constant condition.
func branchTaken(op isa.Op, v int64) bool {
	switch op {
	case isa.OpBEQ:
		return v == 0
	case isa.OpBNE:
		return v != 0
	case isa.OpBLT:
		return v < 0
	case isa.OpBGE:
		return v >= 0
	case isa.OpBGT:
		return v > 0
	case isa.OpBLE:
		return v <= 0
	}
	return false
}

// deadCloneNodes returns clone instructions whose destinations have no
// remaining uses. Only side-effect-free value producers are candidates;
// memory operations, control flow and OUT always stay.
func deadCloneNodes(ed *prog.Editor, q *prog.Program, picked []chosenRegion, nodeIdx map[*prog.Node]int) []*prog.Node {
	duByFunc := make(map[int]*prog.DefUse)
	var dead []*prog.Node
	for _, c := range picked {
		for _, n := range c.clones {
			idx, ok := nodeIdx[n]
			if !ok {
				continue
			}
			in := &q.Ins[idx]
			if _, hasDest := in.Dest(); !hasDest {
				continue
			}
			switch isa.ClassOf(in.Op) {
			case isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassOther:
				continue
			}
			f := q.FuncOf(idx)
			du := duByFunc[f.Index]
			if du == nil {
				du = prog.BuildDefUse(q, f)
				duByFunc[f.Index] = du
			}
			if len(du.Uses(idx)) == 0 {
				dead = append(dead, n)
			}
		}
	}
	return dead
}

// foldConst evaluates an instruction whose inputs are known constants.
func foldConst(in *isa.Instruction, consts map[isa.Reg]int64) (isa.Instruction, int64, bool) {
	get := func(r isa.Reg) (int64, bool) {
		if r == isa.ZeroReg {
			return 0, true
		}
		v, ok := consts[r]
		return v, ok
	}
	a, okA := get(in.Ra)
	if !okA {
		return isa.Instruction{}, 0, false
	}
	b := in.Imm
	okB := in.HasImm || in.Op == isa.OpLDA // LDA reads only Ra and Imm
	if !okB {
		b, okB = get(in.Rb)
	}
	if !okB {
		return isa.Instruction{}, 0, false
	}
	var v int64
	switch in.Op {
	case isa.OpADD, isa.OpLDA:
		if in.Op == isa.OpLDA {
			v = a + in.Imm
		} else {
			v = a + b
		}
	case isa.OpSUB:
		v = a - b
	case isa.OpMUL:
		v = a * b
	case isa.OpAND:
		v = a & b
	case isa.OpOR:
		v = a | b
	case isa.OpXOR:
		v = a ^ b
	case isa.OpBIC:
		v = a &^ b
	case isa.OpSLL:
		v = a << uint(b&63)
	case isa.OpSRL:
		v = int64(uint64(a) >> uint(b&63))
	case isa.OpSRA:
		v = a >> uint(b&63)
	case isa.OpCMPEQ:
		v = b2i(a == b)
	case isa.OpCMPLT:
		v = b2i(a < b)
	case isa.OpCMPLE:
		v = b2i(a <= b)
	case isa.OpCMPULT:
		v = b2i(uint64(a) < uint64(b))
	case isa.OpCMPULE:
		v = b2i(uint64(a) <= uint64(b))
	default:
		return isa.Instruction{}, 0, false
	}
	// Honour the op's width truncation.
	shift := uint(64 - in.Width.Bits())
	v = v << shift >> shift
	if v < -(1<<31) || v > 1<<31-1 {
		return isa.Instruction{}, 0, false // does not fit LDA's immediate
	}
	return isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: in.Rd, Ra: isa.ZeroReg, Imm: v}, v, true
}

// indexNodes maps editor nodes to their instruction indices in the built
// program by re-walking the editor's layout.
func indexNodes(ed *prog.Editor, q *prog.Program) map[*prog.Node]int {
	out := make(map[*prog.Node]int)
	idx := 0
	ed.Walk(func(n *prog.Node, deleted bool) {
		if deleted {
			return
		}
		out[n] = idx
		idx++
	})
	if idx != len(q.Ins) {
		panic("vrs: node walk out of sync with built program")
	}
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
