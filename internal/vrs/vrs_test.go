package vrs

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/vrp"
	"opgate/internal/workload"
)

func specializeWorkload(t *testing.T, name string, threshold float64) *Result {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	trainP, err := w.Build(workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	refP, err := w.Build(workload.Ref)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(trainP, refP, Options{Threshold: threshold})
	if err != nil {
		t.Fatalf("specialize %s: %v", name, err)
	}
	return res
}

// TestSpecializeEquivalence is the load-bearing correctness test: the
// transformed, re-encoded binary must behave identically to the original
// on the reference input for every kernel.
func TestSpecializeEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := specializeWorkload(t, w.Name, 50)
			if err := emu.CheckEquivalence(res.Original, res.Transformed); err != nil {
				t.Fatalf("transformed: %v", err)
			}
			if err := emu.CheckEquivalence(res.Original, res.Apply()); err != nil {
				t.Fatalf("transformed+widths: %v", err)
			}
		})
	}
}

// TestSpecializationHappens checks that the interpreter-style kernels
// (whose wide loads carry narrow dynamic values) actually get specialized.
func TestSpecializationHappens(t *testing.T) {
	specializedSomewhere := false
	for _, name := range []string{"gcc", "m88ksim", "li", "perl"} {
		res := specializeWorkload(t, name, 50)
		t.Logf("%s: %d profiled points, %d specialized, %d static specialized ins, %d eliminated",
			name, len(res.Points), res.NumSpecialized(), res.StaticSpecialized, res.StaticEliminated)
		if res.NumSpecialized() > 0 {
			specializedSomewhere = true
			if res.StaticSpecialized == 0 {
				t.Errorf("%s: specialized points but no cloned instructions", name)
			}
		}
	}
	if !specializedSomewhere {
		t.Fatal("no kernel specialized any point — VRS is inert")
	}
}

// TestThresholdMonotonicity reproduces Fig. 8's parameter: lowering the
// specialization threshold can only increase (or keep) the number of
// specialized points.
func TestThresholdMonotonicity(t *testing.T) {
	prev := -1
	for _, th := range []float64{110, 90, 70, 50, 30} {
		total := 0
		for _, name := range []string{"gcc", "m88ksim", "perl"} {
			res := specializeWorkload(t, name, th)
			total += res.NumSpecialized()
		}
		if prev >= 0 && total < prev {
			t.Errorf("threshold %v: %d specialized, fewer than the higher threshold's %d", th, total, prev)
		}
		prev = total
	}
}

// TestVRSReducesWork checks the effect behind Fig. 10: across the suite,
// the specialized binaries execute fewer dynamic instructions than the
// VRP-only binaries (the single-value clones eliminate the folded checks,
// outweighing the inserted guards), and at least one kernel eliminates
// instructions statically (Fig. 5's m88ksim/vortex effect).
func TestVRSReducesWork(t *testing.T) {
	var vrpDyn, vrsDyn int64
	eliminated := 0
	for _, w := range workload.All() {
		refP, err := w.Build(workload.Ref)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := vrp.Analyze(refP, vrp.Options{Mode: vrp.Useful})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := emu.Execute(rv.Apply())
		if err != nil {
			t.Fatal(err)
		}
		vrpDyn += r1.Dyn

		res := specializeWorkload(t, w.Name, 50)
		r2, err := emu.Execute(res.Apply())
		if err != nil {
			t.Fatal(err)
		}
		vrsDyn += r2.Dyn
		eliminated += res.StaticEliminated
	}
	t.Logf("suite dynamic instructions: VRP %d, VRS %d", vrpDyn, vrsDyn)
	if vrsDyn >= vrpDyn {
		t.Errorf("VRS executed more instructions (%d) than VRP (%d)", vrsDyn, vrpDyn)
	}
	if eliminated == 0 {
		t.Error("no kernel eliminated instructions via single-value specialization")
	}
}

// addDynamicHistogram runs p and tallies the widths of the retired
// width-bearing instructions into h.
func addDynamicHistogram(t *testing.T, h *vrp.WidthHistogram, p *prog.Program) {
	t.Helper()
	m := emu.New(p)
	m.Sink = emu.FuncSink(func(ev emu.Event) {
		if vrp.CountsWidth(ev.Ins.Op) {
			h.Add(ev.Ins.Width, 1)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
