package vrs

import (
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/isa"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/workload"
)

// TestGuardStructure: a specialized program contains the §3.4 guard shape
// (compare(s) on the specialized register, branch to the clone) using the
// reserved scratch register.
func TestGuardStructure(t *testing.T) {
	res := specializeWorkload(t, "vortex", 50)
	if res.NumSpecialized() == 0 {
		t.Skip("vortex did not specialize under this calibration")
	}
	q := res.Transformed
	foundGuardCmp := false
	for idx := range res.GuardIns {
		in := &q.Ins[idx]
		if isa.ClassOf(in.Op) == isa.ClassCmp {
			if in.Rd != prog.RegScratch {
				t.Errorf("guard compare writes %v, want the scratch register", in.Rd)
			}
			foundGuardCmp = true
		}
	}
	if !foundGuardCmp {
		t.Error("no guard comparison found")
	}
}

// TestCloneNarrowedByGuard: inside a range-specialized clone, the final
// VRP sees the guard's branch refinement — the clone's instructions carry
// narrower widths than their originals.
func TestSingleValueCloneFolds(t *testing.T) {
	res := specializeWorkload(t, "m88ksim", 50)
	if res.NumSpecialized() == 0 {
		t.Fatal("m88ksim must specialize its debug-control point")
	}
	if res.StaticEliminated < 3 {
		t.Errorf("eliminated %d instructions, want >=3 (three folded checks)", res.StaticEliminated)
	}
	// The transformed binary executes fewer instructions on the same
	// input.
	r0, err := emu.Execute(res.Original)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := emu.Execute(res.Transformed)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dyn >= r0.Dyn {
		t.Errorf("specialized binary retired %d >= original %d", r1.Dyn, r0.Dyn)
	}
}

// TestFoldConstCoversOps: direct unit coverage of the constant folder.
func TestFoldConstCoversOps(t *testing.T) {
	consts := map[isa.Reg]int64{1: 12, 2: 5}
	cases := []struct {
		in   isa.Instruction
		want int64
	}{
		{isa.Instruction{Op: isa.OpADD, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 17},
		{isa.Instruction{Op: isa.OpSUB, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 7},
		{isa.Instruction{Op: isa.OpMUL, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 60},
		{isa.Instruction{Op: isa.OpAND, Width: isa.W64, Rd: 3, Ra: 1, Imm: 4, HasImm: true}, 4},
		{isa.Instruction{Op: isa.OpOR, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 13},
		{isa.Instruction{Op: isa.OpXOR, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 9},
		{isa.Instruction{Op: isa.OpSLL, Width: isa.W64, Rd: 3, Ra: 1, Imm: 2, HasImm: true}, 48},
		{isa.Instruction{Op: isa.OpSRL, Width: isa.W64, Rd: 3, Ra: 1, Imm: 1, HasImm: true}, 6},
		{isa.Instruction{Op: isa.OpCMPEQ, Width: isa.W64, Rd: 3, Ra: 1, Imm: 12, HasImm: true}, 1},
		{isa.Instruction{Op: isa.OpCMPLT, Width: isa.W64, Rd: 3, Ra: 1, Rb: 2}, 0},
		// Width truncation honoured: 12+5 at byte width still 17, but
		// 200*2 at byte width wraps.
		{isa.Instruction{Op: isa.OpLDA, Width: isa.W64, Rd: 3, Ra: 1, Imm: -12}, 0},
	}
	for _, c := range cases {
		folded, v, ok := foldConst(&c.in, consts)
		if !ok {
			t.Errorf("%v did not fold", c.in.Op)
			continue
		}
		if v != c.want {
			t.Errorf("%v folded to %d, want %d", c.in.Op, v, c.want)
		}
		if folded.Op != isa.OpLDA || folded.Ra != isa.ZeroReg || folded.Imm != c.want {
			t.Errorf("%v folded form wrong: %v", c.in.Op, folded.String())
		}
	}
	// Unknown operand: no fold.
	unk := isa.Instruction{Op: isa.OpADD, Width: isa.W64, Rd: 3, Ra: 7, Rb: 2}
	if _, _, ok := foldConst(&unk, consts); ok {
		t.Error("folded an instruction with an unknown operand")
	}
	// Loads never fold.
	ld := isa.Instruction{Op: isa.OpLD, Width: isa.W64, Rd: 3, Ra: 1}
	if _, _, ok := foldConst(&ld, consts); ok {
		t.Error("folded a load")
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op    isa.Op
		v     int64
		taken bool
	}{
		{isa.OpBEQ, 0, true}, {isa.OpBEQ, 1, false},
		{isa.OpBNE, 0, false}, {isa.OpBNE, -1, true},
		{isa.OpBLT, -1, true}, {isa.OpBLT, 0, false},
		{isa.OpBGE, 0, true}, {isa.OpBGT, 1, true}, {isa.OpBLE, 0, true},
	}
	for _, c := range cases {
		if got := branchTaken(c.op, c.v); got != c.taken {
			t.Errorf("branchTaken(%v, %d) = %v", c.op, c.v, got)
		}
	}
}

// TestGuardCostModel: range guards cost more than single-value guards,
// and both scale with the op-energy calibration.
func TestGuardCostModel(t *testing.T) {
	params := power.DefaultParams()
	single := guardCost(params, 5, 5)
	ranged := guardCost(params, 0, 100)
	if ranged <= single {
		t.Errorf("range guard (%v) not costlier than single-value guard (%v)", ranged, single)
	}
	if single <= 0 {
		t.Error("guard cost must be positive")
	}
}

// TestRegionSingleEntry: every specialized region is dominated by the
// defining block (checked structurally via regionEnd on all kernels).
func TestRegionSingleEntry(t *testing.T) {
	for _, w := range workload.All() {
		p, err := w.Build(workload.Ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Funcs {
			for _, blk := range f.Blocks {
				if blk.Len() == 0 {
					continue
				}
				end := regionEnd(f, blk, blk.Start)
				// Every block inside [blk.End, end) must be dominated
				// by blk.
				for i := blk.End; i < end; {
					nb := f.BlockOf(i)
					if !prog.Dominates(blk, nb) {
						t.Fatalf("%s: region from %v includes non-dominated %v", w.Name, blk, nb)
					}
					i = nb.End
				}
			}
		}
	}
}

// TestMaxPointsCap respects the configuration limit.
func TestMaxPointsCap(t *testing.T) {
	w, _ := workload.ByName("m88ksim")
	trainP, _ := w.Build(workload.Train)
	refP, _ := w.Build(workload.Ref)
	res, err := Specialize(trainP, refP, Options{Threshold: 50, MaxPoints: 0})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Specialize(trainP, refP, Options{Threshold: 50, MaxPoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.NumSpecialized() > 1 {
		t.Errorf("MaxPoints=1 specialized %d points", capped.NumSpecialized())
	}
	if res.NumSpecialized() < capped.NumSpecialized() {
		t.Error("uncapped run specialized fewer points than capped")
	}
}

// TestLayoutMismatchRejected: train and ref binaries must share a static
// layout.
func TestLayoutMismatchRejected(t *testing.T) {
	p1, _ := asm.Assemble(".func main\nlda r1, 1(rz)\nhalt\n")
	p2, _ := asm.Assemble(".func main\nlda r1, 1(rz)\nlda r2, 2(rz)\nhalt\n")
	if _, err := Specialize(p1, p2, Options{}); err == nil {
		t.Error("accepted mismatched layouts")
	}
}
