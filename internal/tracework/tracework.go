// Package tracework turns retirement traces into first-class workloads.
// It is the ingestion frontend of the "trace:" registry namespace
// (internal/workload): any codec-framed trace blob — exported from this
// pipeline or produced by an external tracer that speaks the format —
// is validated, bound to a skeleton program synthesized from its own
// per-static table (emu.NewProgramFromTrace), and registered in a store
// under a user-chosen name. From then on the trace replays through every
// replay-capable experiment exactly like a cached native trace: same
// store path, same fused mode-groups, same figures and tables.
//
// The split of responsibilities:
//
//   - Ingest is pure: bytes in, validated (records, skeleton, identity,
//     canonical re-encoding) artifacts out. ogtrace and opgated both
//     call it; the fuzz target hammers it.
//   - Library binds ingested artifacts to a store: the canonical blob
//     lands under the exact store.TraceKey the harness already probes
//     (workload "trace:<name>", variant "base", the import's input
//     class, the skeleton identity), so replay needs no new serving
//     path; a metadata document under store.TraceMetaKey records the
//     identity the harness must ask for; a best-effort index supports
//     listing.
//
// What trace workloads cannot do is equally explicit: no live emulation
// means no VRS training, no non-base variants, no fresh-input runs.
// Those paths return errors wrapping workload.ErrTraceOnly; lookups for
// names never imported return *NotImportedError.
package tracework

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/store"
	"opgate/internal/workload"
)

// Ingested is the result of validating one trace blob: the decoded
// record columns, the skeleton program synthesized from them, the
// skeleton's content identity, the records re-bound to the skeleton,
// and the canonical re-encoding under that identity. The identity the
// incoming blob declared is irrelevant — an external trace carries the
// identity of the binary it was captured from, which the importer does
// not have; the skeleton's own identity is the address everything is
// stored and looked up under.
type Ingested struct {
	Records   emu.RecBatch
	Program   *prog.Program
	Identity  store.Hash
	Trace     *emu.Trace
	Canonical []byte
	Events    int
	StaticIns int
}

// Ingest validates a codec-framed trace blob end to end: framing
// (magic, version, length, checksum), record sanity, skeleton
// synthesis, and re-validation of the records against the skeleton. It
// never panics on arbitrary input. The returned Canonical blob is the
// bit-exact form the library stores: re-ingesting it yields the same
// identity and the same canonical bytes (ingestion is idempotent).
func Ingest(data []byte) (*Ingested, error) {
	recs, _, err := store.DecodeTraceRecords(data)
	if err != nil {
		return nil, fmt.Errorf("tracework: %w", err)
	}
	p, err := emu.NewProgramFromTrace(recs)
	if err != nil {
		return nil, fmt.Errorf("tracework: %w", err)
	}
	id := store.ProgramIdentity(p)
	tr, err := emu.NewTraceFromRecords(p, recs)
	if err != nil {
		// Unreachable when NewProgramFromTrace succeeds — the skeleton is
		// built to match every record — but a codec or synthesis bug must
		// surface as an error, not a corrupt registration.
		return nil, fmt.Errorf("tracework: skeleton does not accept its own records: %w", err)
	}
	return &Ingested{
		Records:   recs,
		Program:   p,
		Identity:  id,
		Trace:     tr,
		Canonical: store.EncodeTrace(tr, id),
		Events:    recs.Len(),
		StaticIns: len(p.Ins),
	}, nil
}

// NotImportedError reports a "trace:" workload lookup for a (name,
// class) pair the store has no import of. It is a distinct type so the
// harness can distinguish "you never imported this" (actionable: run
// ogtrace import) from storage corruption.
type NotImportedError struct {
	Name  string // registry name, "trace:<bare>"
	Class string // input class asked for
}

func (e *NotImportedError) Error() string {
	return fmt.Sprintf("tracework: %s has no imported %s trace (import one with ogtrace, or POST /v1/traces on opgated)", e.Name, e.Class)
}

// Meta is the metadata document of one imported trace, stored under
// store.TraceMetaKey(name, class). It records what the harness needs to
// find and verify the blob without decoding it: the skeleton identity
// (the TraceKey component) and the shape numbers inspection tools show.
type Meta struct {
	Name      string `json:"name"`       // registry name, "trace:<bare>"
	Class     string `json:"class"`      // input class the records stand in for
	Identity  string `json:"identity"`   // hex skeleton identity
	Events    int    `json:"events"`     // retired-event count
	StaticIns int    `json:"static_ins"` // skeleton instruction count
}

// BlobKey returns the store key of the canonical trace blob the
// metadata describes.
func (m *Meta) BlobKey() (store.Key, error) {
	id, err := parseHash(m.Identity)
	if err != nil {
		return "", fmt.Errorf("tracework: %s metadata: %w", m.Name, err)
	}
	return store.TraceKey(m.Name, "base", m.Class, id), nil
}

// Library is the imported-trace registry over a store: Put registers an
// ingested trace under a name, Lookup and Skeleton serve the harness,
// List serves inspection tools. All methods take full registry names
// ("trace:<bare>").
type Library struct {
	s *store.Store
}

// NewLibrary binds a library to a store.
func NewLibrary(s *store.Store) *Library { return &Library{s: s} }

// Put registers an ingested trace under the registry name for one input
// class: the canonical blob under its TraceKey, the metadata document
// under TraceMetaKey, and a best-effort index entry. A second Put under
// the same (name, class) replaces the registration (the blob address is
// content-derived, so an identical re-import is a no-op write).
func (l *Library) Put(name string, class workload.InputClass, ing *Ingested) error {
	if _, err := workload.ParseTraceName(name); err != nil {
		return err
	}
	meta := &Meta{
		Name:      name,
		Class:     class.String(),
		Identity:  ing.Identity.String(),
		Events:    ing.Events,
		StaticIns: ing.StaticIns,
	}
	blobKey, err := meta.BlobKey()
	if err != nil {
		return err
	}
	if err := l.s.Put(blobKey, ing.Canonical); err != nil {
		return fmt.Errorf("tracework: storing %s blob: %w", name, err)
	}
	doc, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("tracework: encoding %s metadata: %w", name, err)
	}
	if err := l.s.Put(store.TraceMetaKey(name, meta.Class), doc); err != nil {
		return fmt.Errorf("tracework: storing %s metadata: %w", name, err)
	}
	l.addToIndex(name, meta.Class)
	return nil
}

// Lookup returns the metadata of an imported (name, class) pair, or
// *NotImportedError.
func (l *Library) Lookup(name string, class workload.InputClass) (*Meta, error) {
	if _, err := workload.ParseTraceName(name); err != nil {
		return nil, err
	}
	doc, ok := l.s.Get(store.TraceMetaKey(name, class.String()))
	if !ok {
		return nil, &NotImportedError{Name: name, Class: class.String()}
	}
	var m Meta
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, fmt.Errorf("tracework: %s metadata corrupt: %w", name, err)
	}
	if m.Name != name || m.Class != class.String() {
		return nil, fmt.Errorf("tracework: %s metadata names %s/%s (store key collision or corruption)", name, m.Name, m.Class)
	}
	return &m, nil
}

// Skeleton resolves an imported trace to its skeleton program and
// identity, re-synthesizing the skeleton from the stored blob and
// verifying it still hashes to the registered identity. The harness
// calls this in place of Workload.Build for "trace:" names; the
// returned pair makes the ordinary store.GetTrace path hit the
// canonical blob.
func (l *Library) Skeleton(name string, class workload.InputClass) (*prog.Program, store.Hash, error) {
	m, err := l.Lookup(name, class)
	if err != nil {
		return nil, store.Hash{}, err
	}
	key, err := m.BlobKey()
	if err != nil {
		return nil, store.Hash{}, err
	}
	data, ok := l.s.Get(key)
	if !ok {
		// The metadata survived but the blob was evicted or lost: surface
		// as not-imported so the remedy (re-import) is the same.
		return nil, store.Hash{}, &NotImportedError{Name: name, Class: class.String()}
	}
	ing, err := Ingest(data)
	if err != nil {
		return nil, store.Hash{}, fmt.Errorf("tracework: %s stored blob no longer ingests: %w", name, err)
	}
	if ing.Identity.String() != m.Identity {
		return nil, store.Hash{}, fmt.Errorf("tracework: %s skeleton identity drifted (%s != %s)", name, ing.Identity, m.Identity)
	}
	return ing.Program, ing.Identity, nil
}

// Entry is one row of the best-effort name index.
type Entry struct {
	Name  string `json:"name"`
	Class string `json:"class"`
}

// List returns the index's (name, class) pairs, sorted. The index is
// best-effort (concurrent imports can lose an entry to a read-modify-
// write race); metadata documents remain authoritative.
func (l *Library) List() []Entry {
	var idx []Entry
	if doc, ok := l.s.Get(store.TraceIndexKey()); ok {
		// A corrupt index degrades to empty: listing is a convenience.
		_ = json.Unmarshal(doc, &idx)
	}
	return idx
}

// addToIndex merges one entry into the index, best-effort.
func (l *Library) addToIndex(name, class string) {
	idx := l.List()
	for _, e := range idx {
		if e.Name == name && e.Class == class {
			return
		}
	}
	idx = append(idx, Entry{Name: name, Class: class})
	sort.Slice(idx, func(i, j int) bool {
		if idx[i].Name != idx[j].Name {
			return idx[i].Name < idx[j].Name
		}
		return idx[i].Class < idx[j].Class
	})
	doc, err := json.Marshal(idx)
	if err != nil {
		return
	}
	_ = l.s.Put(store.TraceIndexKey(), doc)
}

// parseHash decodes a 64-hex-character identity.
func parseHash(s string) (store.Hash, error) {
	var h store.Hash
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return h, fmt.Errorf("bad identity %q", s)
	}
	copy(h[:], raw)
	return h, nil
}
