package tracework_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"testing"

	"opgate/internal/emu"
	"opgate/internal/tracework"
)

// FuzzTraceIngest throws arbitrary bytes at the ingestion frontend — the
// exact surface opgated's upload API and ogtrace import expose to
// untrusted input. The invariants: Ingest never panics; anything it
// rejects is an error; anything it accepts yields a skeleton whose
// canonical re-encoding is a fixed point of ingestion (same identity,
// same bytes) and whose trace replays exactly the advertised number of
// events without faulting. Seed corpus under
// testdata/fuzz/FuzzTraceIngest, regenerable with
// `go test ./internal/tracework -run TestFuzzIngestCorpusSeeds -regen-corpus`.
func FuzzTraceIngest(f *testing.F) {
	for _, seed := range ingestCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ing, err := tracework.Ingest(data)
		if err != nil {
			return // rejected cleanly
		}
		re, err := tracework.Ingest(ing.Canonical)
		if err != nil {
			t.Fatalf("accepted input's canonical blob does not re-ingest: %v", err)
		}
		if re.Identity != ing.Identity {
			t.Fatalf("identity not stable across re-ingestion: %s != %s", re.Identity, ing.Identity)
		}
		if !bytes.Equal(re.Canonical, ing.Canonical) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		var replayed int
		ing.Trace.Replay(emu.FuncSink(func(emu.Event) { replayed++ }))
		if replayed != ing.Events {
			t.Fatalf("replay delivered %d events, ingestion advertises %d", replayed, ing.Events)
		}
	})
}

// ingestCorpusSeeds returns the deterministic seed inputs: a valid
// native blob, its canonical skeleton re-encoding, and one
// representative of each ingestion-specific rejection class (codec-level
// damage is FuzzTraceCodec's corpus; these target the record validation
// only ingestion performs).
func ingestCorpusSeeds() [][]byte {
	enc := nativeBlob()
	ing, err := tracework.Ingest(enc)
	if err != nil {
		panic(err)
	}
	n := ing.Events
	const header = 48 // magic+version+reserved+identity+count

	// An opcode beyond the ISA: op column starts at header+8n.
	badOp := append([]byte{}, enc...)
	badOp[header+8*n] = 0xFF
	fixCRC(badOp)

	// A flags byte with undefined bits set: flags column at header+10n.
	badFlags := append([]byte{}, enc...)
	badFlags[header+10*n] = 0xFF
	fixCRC(badFlags)

	// A static-table conflict: two records at one idx with different
	// widths. Point record 1's idx at record 0's (idx column at header)
	// while their wbytes differ — if they happen to agree, perturb
	// record 1's wbytes too (column at header+9n).
	conflict := append([]byte{}, enc...)
	if n >= 2 {
		copy(conflict[header+4:header+8], conflict[header:header+4])
		if conflict[header+9*n] == conflict[header+9*n+1] {
			conflict[header+9*n+1] ^= 0x0C
		}
		fixCRC(conflict)
	}

	return [][]byte{
		enc,
		ing.Canonical,
		badOp,
		badFlags,
		conflict,
		enc[:len(enc)/2],
		{},
	}
}

// fixCRC recomputes the trailer after a deliberate payload edit.
func fixCRC(b []byte) {
	crc := crc64.Checksum(b[:len(b)-8], crc64.MakeTable(crc64.ECMA))
	binary.LittleEndian.PutUint64(b[len(b)-8:], crc)
}
