package tracework_test

import (
	"bytes"
	"errors"
	"testing"

	"opgate/internal/asm"
	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/store"
	"opgate/internal/tracework"
	"opgate/internal/workload"
)

// miniProgram is a small but field-complete workload: memory traffic,
// taken and not-taken branches, a call, and output, so ingestion sees
// every record shape while the blobs stay corpus-sized.
const miniProgram = `
.data
buf: .space 64
.text
.func main
	lda r1, =buf
	lda r2, 0(rz)
loop:
	st.w r2, 0(r1)
	ld.w r3, 0(r1)
	jsr bump
	add r2, r2, #1
	cmplt r4, r2, #10
	bne r4, loop
	out.b r2
	halt
.func bump
	add r5, r5, #2
	ret
`

func mustMiniProgram() *prog.Program {
	p, err := asm.Assemble(miniProgram)
	if err != nil {
		panic(err)
	}
	return p
}

// nativeBlob captures the mini program's trace and encodes it under the
// program's own identity — the shape of a blob exported from a native
// run (or an external tracer).
func nativeBlob() []byte {
	p := mustMiniProgram()
	rec := emu.NewTraceRecorder(p)
	m := emu.New(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		panic(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		panic(err)
	}
	return store.EncodeTrace(tr, store.ProgramIdentity(p))
}

// TestIngestRoundTrip: a native blob ingests; the skeleton accepts every
// record; replay delivers the full event stream with column-identical
// values; and ingestion is idempotent — the canonical blob re-ingests to
// the same identity and the same bytes.
func TestIngestRoundTrip(t *testing.T) {
	enc := nativeBlob()
	ing, err := tracework.Ingest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Events == 0 || ing.StaticIns == 0 {
		t.Fatalf("empty ingestion: %d events, %d static", ing.Events, ing.StaticIns)
	}
	// The skeleton's identity differs from the native binary's — the
	// skeleton has no source program, data segment or untaken path.
	nativeRecs, nativeID, err := store.DecodeTraceRecords(enc)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Identity == nativeID {
		t.Error("skeleton identity equals native identity; expected a distinct content address")
	}
	// Replay is column-exact: same event count, same widths and values.
	var got []emu.Event
	ing.Trace.Replay(emu.FuncSink(func(ev emu.Event) { got = append(got, ev) }))
	if len(got) != nativeRecs.Len() {
		t.Fatalf("replay delivered %d events, native trace has %d", len(got), nativeRecs.Len())
	}
	for i, ev := range got {
		if int32(ev.Idx) != nativeRecs.Idx[i] || ev.Value != nativeRecs.Value[i] || ev.Addr != nativeRecs.Addr[i] {
			t.Fatalf("event %d drifted: got idx=%d value=%d addr=%d", i, ev.Idx, ev.Value, ev.Addr)
		}
	}
	// Idempotence: canonical bytes are a fixed point of ingestion.
	re, err := tracework.Ingest(ing.Canonical)
	if err != nil {
		t.Fatalf("canonical blob does not re-ingest: %v", err)
	}
	if re.Identity != ing.Identity {
		t.Errorf("identity drifted across re-ingestion: %s != %s", re.Identity, ing.Identity)
	}
	if !bytes.Equal(re.Canonical, ing.Canonical) {
		t.Error("canonical encoding is not a fixed point")
	}
}

// TestIngestRejects: malformed blobs come back as errors, never panics
// or half-built registrations.
func TestIngestRejects(t *testing.T) {
	enc := nativeBlob()
	cases := map[string][]byte{
		"empty":     {},
		"magic":     []byte("OGTR"),
		"truncated": enc[:len(enc)/2],
		"garbage":   bytes.Repeat([]byte{0xA5}, 128),
	}
	for name, data := range cases {
		if _, err := tracework.Ingest(data); err == nil {
			t.Errorf("%s blob ingested without error", name)
		}
	}
}

// TestLibrary: Put registers blob + metadata + index; Lookup and
// Skeleton serve them back; unknown names and classes return
// *NotImportedError; the blob lands under the exact TraceKey the
// harness probes.
func TestLibrary(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lib := tracework.NewLibrary(st)
	ing, err := tracework.Ingest(nativeBlob())
	if err != nil {
		t.Fatal(err)
	}
	name := workload.TraceName("mini")
	if err := lib.Put(name, workload.Train, ing); err != nil {
		t.Fatal(err)
	}

	m, err := lib.Lookup(name, workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != ing.Events || m.StaticIns != ing.StaticIns || m.Identity != ing.Identity.String() {
		t.Errorf("metadata mismatch: %+v", m)
	}

	p, id, err := lib.Skeleton(name, workload.Train)
	if err != nil {
		t.Fatal(err)
	}
	if id != ing.Identity || store.ProgramIdentity(p) != ing.Identity {
		t.Error("skeleton identity drifted through the library")
	}

	// The harness's ordinary trace path must hit the stored blob.
	key := store.TraceKey(name, "base", workload.Train.String(), id)
	if tr, ok := st.GetTrace(key, p, id); !ok {
		t.Error("blob not under the harness TraceKey")
	} else if int(tr.Len()) != ing.Events {
		t.Errorf("stored trace has %d events, want %d", tr.Len(), ing.Events)
	}

	var nie *tracework.NotImportedError
	if _, err := lib.Lookup(workload.TraceName("ghost"), workload.Train); !errors.As(err, &nie) {
		t.Errorf("missing name: got %v, want *NotImportedError", err)
	}
	if _, _, err := lib.Skeleton(name, workload.Ref); !errors.As(err, &nie) {
		t.Errorf("missing class: got %v, want *NotImportedError", err)
	}
	if err := lib.Put("trace:bad name", workload.Train, ing); err == nil {
		t.Error("Put accepted an invalid registry name")
	}

	entries := lib.List()
	if len(entries) != 1 || entries[0].Name != name || entries[0].Class != "train" {
		t.Errorf("index = %+v, want one train entry for %s", entries, name)
	}
	// Re-import is idempotent in the index too.
	if err := lib.Put(name, workload.Train, ing); err != nil {
		t.Fatal(err)
	}
	if entries := lib.List(); len(entries) != 1 {
		t.Errorf("re-import duplicated the index: %+v", entries)
	}
}
