package tracework_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite the committed FuzzTraceIngest seed corpus")

// TestFuzzIngestCorpusSeeds pins the committed fuzz corpus to
// ingestCorpusSeeds: plain `go test` replays the committed files through
// FuzzTraceIngest, and this test guarantees they stay in sync with the
// codec and the ingestion rules (rewrite with -regen-corpus after a
// deliberate format change).
func TestFuzzIngestCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceIngest")
	for i, e := range ingestCorpusSeeds() {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", e)
		if *regenCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing corpus entry (regenerate with -regen-corpus): %v", err)
		}
		if string(got) != content {
			t.Errorf("%s is stale (regenerate with -regen-corpus)", name)
		}
	}
}
