package progen

import (
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// This file holds the per-family code generators. Each generator emits a
// self-contained phase body — the family's data segment, code, and Out
// instructions, but no Func or Halt — so the same body serves as a whole
// single-family program (under Generate's main/Halt frame) or as one
// phase of a composite (GeneratePhased). Bodies initialise every
// register they read, so sequential composition is safe. Shared
// conventions:
//
//   - s-registers hold loop-invariant bases and live accumulators; the
//     t-registers are scratch. Callees (stream's reduce) touch only
//     t-registers and the argument/return registers.
//   - Every loop is counted against an immediate bound, so programs halt
//     regardless of data contents.
//   - Array indices are kept in [0, n) by construction, so every access
//     stays inside the generated data segment.
//   - Instruction choice comes from g.code (identical train/ref); data
//     contents come from g.input; trip-count immediates come from
//     g.trips. Nothing else may influence the emitted instruction count.

// narrowALUOps is the op pool for byte/halfword accumulator updates.
var narrowALUOps = []isa.Op{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR}

// wideALUOps is the op pool for 64-bit mixing chains.
var wideALUOps = []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpMUL}

// churnOps is the op pool for mixed-width register churn.
var churnOps = []isa.Op{
	isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
	isa.OpSLL, isa.OpSRL, isa.OpMUL,
}

// narrow: byte-array processing with masked narrow accumulators — nearly
// every width-bearing instruction is W8/W16/W32; only address formation
// stays 64-bit.
func (g *gen) narrow() {
	b := g.b
	n := g.class.elems()
	passes := g.trips(2)

	b.Bytes(g.sym("in"), g.input.bytes(n, 256))
	b.Space(g.sym("out"), n)

	b.LoadAddr(s1, g.sym("in"))
	b.LoadAddr(s2, g.sym("out"))
	b.Lda(s5, rz, 0)                       // pass counter
	b.Lda(s6, rz, int64(g.code.intn(256))) // accumulator 1
	b.Lda(s7, rz, int64(g.code.intn(256))) // accumulator 2

	pass := g.lbl("pass")
	inner := g.lbl("inner")
	b.Label(pass)
	b.Lda(s3, rz, 0) // i
	b.Label(inner)
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W8, t2, t1, 0)
	// A seed-chosen chain of narrow ALU ops over the two accumulators.
	k := g.code.between(3, 6)
	narrowW := []isa.Width{isa.W8, isa.W16}
	for j := 0; j < k; j++ {
		op := narrowALUOps[g.code.intn(len(narrowALUOps))]
		w := narrowW[g.code.intn(len(narrowW))]
		acc := s6
		if j%2 == 1 {
			acc = s7
		}
		if g.code.intn(3) == 0 {
			b.OpI(op, w, acc, acc, int64(1+g.code.intn(255)))
		} else {
			b.Op3(op, w, acc, acc, t2)
		}
	}
	if g.code.intn(2) == 0 {
		// Explicit byte mask: a useful-range anchor (§2.2.5).
		b.Emit(isa.Instruction{Op: isa.OpMSKL, Width: isa.W8, Rd: s6, Ra: s6})
	}
	b.Op3(isa.OpADD, isa.W64, t3, s2, s3)
	b.Store(isa.W8, s6, t3, 0)
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t4, s3, int64(n))
	b.CondBranch(isa.OpBNE, t4, inner)
	b.OpI(isa.OpADD, isa.W32, s5, s5, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t4, s5, int64(passes))
	b.CondBranch(isa.OpBNE, t4, pass)

	// Checksum over the output buffer, kept 16-bit by an explicit mask.
	csum := g.lbl("csum")
	b.Lda(s3, rz, 0)
	b.Lda(s4, rz, 0)
	b.Label(csum)
	b.Op3(isa.OpADD, isa.W64, t1, s2, s3)
	b.Load(isa.W8, t2, t1, 0)
	b.Op3(isa.OpADD, isa.W16, s4, s4, t2)
	b.OpI(isa.OpAND, isa.W16, s4, s4, 0xFFFF)
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t3, s3, int64(n))
	b.CondBranch(isa.OpBNE, t3, csum)

	b.Out(isa.W16, s4)
	b.Out(isa.W8, s6)
}

// wide: 64-bit mixing chains (multiply, xor-shift, add) over full-range
// words — the opposite end of the width spectrum from narrow.
func (g *gen) wide() {
	b := g.b
	n := g.class.elems()
	passes := g.trips(2)

	words := make([]int64, n)
	for i := range words {
		words[i] = int64(g.input.next())
	}
	b.Words(g.sym("words"), words)
	b.Space(g.sym("sink"), n*8)

	b.LoadAddr(s1, g.sym("words"))
	b.LoadAddr(s2, g.sym("sink"))
	// A genuinely 64-bit odd multiplier (top bit forced so LoadImm always
	// expands identically).
	b.LoadImm(s4, int64(g.code.next()|1|1<<63))
	b.Lda(s5, rz, 0)                         // pass counter
	b.Lda(s6, rz, int64(1+g.code.intn(255))) // accumulator

	pass := g.lbl("pass")
	inner := g.lbl("inner")
	b.Label(pass)
	b.Lda(s3, rz, 0) // byte offset
	b.Label(inner)
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W64, t2, t1, 0)
	m := g.code.between(3, 6)
	for j := 0; j < m; j++ {
		switch op := wideALUOps[g.code.intn(len(wideALUOps))]; op {
		case isa.OpMUL:
			b.Op3(isa.OpMUL, isa.W64, s6, s6, s4)
		default:
			b.Op3(op, isa.W64, s6, s6, t2)
		}
		if g.code.intn(2) == 0 {
			b.OpI(isa.OpSRL, isa.W64, t3, s6, int64(g.code.between(1, 31)))
			b.Op3(isa.OpXOR, isa.W64, s6, s6, t3)
		}
	}
	b.Op3(isa.OpADD, isa.W64, t4, s2, s3)
	b.Store(isa.W64, s6, t4, 0)
	b.OpI(isa.OpADD, isa.W64, s3, s3, 8)
	b.OpI(isa.OpCMPLT, isa.W64, t5, s3, int64(n*8))
	b.CondBranch(isa.OpBNE, t5, inner)
	b.OpI(isa.OpADD, isa.W64, s5, s5, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t5, s5, int64(passes))
	b.CondBranch(isa.OpBNE, t5, pass)

	b.Out(isa.W64, s6)
}

// pointer: chase a randomized single-cycle node ring by absolute 5-byte
// pointers, updating narrow payloads along the way. Addresses dominate the
// dynamic width mix, like the paper's li/vortex.
func (g *gen) pointer() {
	b := g.b
	nodes := g.class.elems()
	const stride = 16 // next pointer (8) + payload (8, low byte used)
	steps := g.trips(nodes * 2)

	// Pointer values are absolute virtual addresses, so the node array's
	// placement must be known before its contents exist: probe the data
	// cursor (a zero-length reservation defines nothing and moves
	// nothing), build the ring against it, then place the array there.
	base := b.Space("", 0)
	perm := g.input.cycle(nodes)
	vals := make([]int64, 2*nodes)
	for i := 0; i < nodes; i++ {
		vals[2*i] = base + int64(perm[i])*stride
		vals[2*i+1] = int64(g.input.intn(256))
	}
	if addr := b.Words(g.sym("nodes"), vals); addr != base {
		g.fail("node array moved from its probed base (%#x != %#x)", addr, base)
		return
	}

	b.LoadAddr(s1, g.sym("nodes")) // current node
	b.Lda(s2, rz, 0)               // step counter
	b.Lda(s3, rz, 0)               // payload accumulator
	b.Lda(s4, rz, 0)               // pointer accumulator

	loop := g.lbl("chase")
	b.Label(loop)
	b.Load(isa.W64, t1, s1, 0) // next pointer
	b.Load(isa.W8, t2, s1, 8)  // payload
	kk := g.code.between(1, 2)
	narrowW := []isa.Width{isa.W8, isa.W16}
	for j := 0; j < kk; j++ {
		op := narrowALUOps[g.code.intn(len(narrowALUOps))]
		b.Op3(op, narrowW[g.code.intn(len(narrowW))], s3, s3, t2)
	}
	if g.code.intn(2) == 0 {
		b.Store(isa.W8, s3, s1, 8) // write the payload back
	}
	b.Op3(isa.OpXOR, isa.W64, s4, s4, t1) // mix the pointer stream
	b.Op3(isa.OpOR, isa.W64, s1, t1, rz)  // advance
	b.OpI(isa.OpADD, isa.W64, s2, s2, 1)
	b.OpI(isa.OpCMPLT, isa.W64, t3, s2, int64(steps))
	b.CondBranch(isa.OpBNE, t3, loop)

	b.Out(isa.W16, s3)
	b.Out(isa.W64, s4)
}

// branchy: an interpreter-like threshold cascade over a byte stream —
// data-dependent multiway control flow with narrow state updates.
func (g *gen) branchy() {
	b := g.b
	n := g.class.elems()
	passes := g.trips(3)

	b.Bytes(g.sym("in"), g.input.bytes(n, 256))

	arms := g.code.between(3, 6)
	// Ascending thresholds cut [0,256) into arms+1 regions.
	ths := make([]int, arms)
	for i := range ths {
		ths[i] = (i + 1) * 256 / (arms + 1)
		ths[i] += g.code.between(-12, 12)
	}

	b.LoadAddr(s1, g.sym("in"))
	b.Lda(s5, rz, 0) // accumulator
	b.Lda(s6, rz, 0) // pass counter

	pass := g.lbl("pass")
	inner := g.lbl("inner")
	b.Label(pass)
	b.Lda(s3, rz, 0) // i
	b.Label(inner)
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W8, t2, t1, 0)
	// Multiway dispatch: first threshold the byte is below wins.
	armLbls := make([]string, arms+1)
	for i := range armLbls {
		armLbls[i] = g.lbl("arm")
	}
	join := g.lbl("join")
	for i, th := range ths {
		b.OpI(isa.OpCMPULT, isa.W8, t3, t2, int64(th))
		b.CondBranch(isa.OpBNE, t3, armLbls[i])
	}
	b.Branch(armLbls[arms])
	narrowW := []isa.Width{isa.W8, isa.W16, isa.W32}
	for i := range armLbls {
		b.Label(armLbls[i])
		op := narrowALUOps[g.code.intn(len(narrowALUOps))]
		w := narrowW[g.code.intn(len(narrowW))]
		if g.code.intn(2) == 0 {
			b.OpI(op, w, s5, s5, int64(1+g.code.intn(255)))
		} else {
			b.Op3(op, w, s5, s5, t2)
		}
		b.Branch(join)
	}
	b.Label(join)
	// A short data-dependent skip on the byte's parity.
	skip := g.lbl("skip")
	b.OpI(isa.OpAND, isa.W8, t4, t2, 1)
	b.CondBranch(isa.OpBEQ, t4, skip)
	b.OpI(isa.OpXOR, isa.W16, s5, s5, int64(1+g.code.intn(255)))
	b.Label(skip)
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t5, s3, int64(n))
	b.CondBranch(isa.OpBNE, t5, inner)
	b.OpI(isa.OpADD, isa.W32, s6, s6, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t5, s6, int64(passes))
	b.CondBranch(isa.OpBNE, t5, pass)

	b.Out(isa.W32, s5)
}

// stream: a row/column loop nest streaming a 2D array at a narrow element
// width with multiply-accumulate reductions, plus a reduce callee so
// generated code exercises the call path.
func (g *gen) stream() {
	b := g.b
	rows := g.code.between(8, 16)
	cols := g.class.elems() / rows
	if cols < 4 {
		cols = 4
	}
	passes := g.trips(2)

	// Element width is a static family parameter drawn per seed.
	ew := isa.W16
	shift := int64(1)
	if g.code.intn(2) == 0 {
		ew = isa.W32
		shift = 2
	}
	esize := int(ew)
	mat := make([]byte, rows*cols*esize)
	for i := 0; i < rows*cols; i++ {
		v := g.input.intn(1 << 14)
		for bn := 0; bn < esize; bn++ {
			mat[i*esize+bn] = byte(v >> (8 * bn))
		}
	}
	b.Bytes(g.sym("mat"), mat)
	b.Space(g.sym("rowsum"), rows*4)
	coeff := int64(3 + 2*g.code.intn(8))

	b.LoadAddr(s1, g.sym("mat"))
	b.LoadAddr(s2, g.sym("rowsum"))
	b.Lda(s5, rz, 0) // total
	b.Lda(s6, rz, 0) // pass counter

	pass := g.lbl("pass")
	rowL := g.lbl("row")
	colL := g.lbl("col")
	b.Label(pass)
	b.Lda(s3, rz, 0) // r
	b.Label(rowL)
	b.Lda(t5, rz, 0)                               // row accumulator
	b.Lda(s4, rz, 0)                               // c
	b.OpI(isa.OpMUL, isa.W32, t1, s3, int64(cols)) // row element base
	b.Label(colL)
	b.Op3(isa.OpADD, isa.W32, t2, t1, s4)
	b.OpI(isa.OpSLL, isa.W32, t3, t2, shift)
	b.Op3(isa.OpADD, isa.W64, t4, s1, t3)
	b.Load(ew, t6, t4, 0)
	b.OpI(isa.OpMUL, isa.W32, t7, t6, coeff)
	b.Op3(isa.OpADD, isa.W32, t5, t5, t7)
	b.OpI(isa.OpADD, isa.W32, s4, s4, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t8, s4, int64(cols))
	b.CondBranch(isa.OpBNE, t8, colL)
	b.OpI(isa.OpSLL, isa.W32, t2, s3, 2)
	b.Op3(isa.OpADD, isa.W64, t3, s2, t2)
	b.Store(isa.W32, t5, t3, 0)
	b.Op3(isa.OpADD, isa.W32, s5, s5, t5)
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t8, s3, int64(rows))
	b.CondBranch(isa.OpBNE, t8, rowL)
	b.OpI(isa.OpADD, isa.W32, s6, s6, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t8, s6, int64(passes))
	b.CondBranch(isa.OpBNE, t8, pass)

	// Reduce the row sums in a callee (argument registers, JSR/RET). The
	// callee is a whole function, so its emission is deferred until the
	// entry function closes (flush); the phase body only calls it.
	reduce := g.sym("reduce")
	b.LoadAddr(prog.RegArg0, g.sym("rowsum"))
	b.Lda(prog.RegArg1, rz, int64(rows))
	b.Call(reduce)
	b.Op3(isa.OpXOR, isa.W32, s5, s5, prog.RegRet)
	b.Out(isa.W32, s5)

	g.deferred = append(g.deferred, func() {
		b.Func(reduce)
		rloop := g.lbl("rloop")
		b.Lda(t1, rz, 0) // acc
		b.Lda(t2, rz, 0) // i
		b.Label(rloop)
		b.OpI(isa.OpSLL, isa.W32, t3, t2, 2)
		b.Op3(isa.OpADD, isa.W64, t4, prog.RegArg0, t3)
		b.Load(isa.W32, t5, t4, 0)
		b.Op3(isa.OpADD, isa.W32, t1, t1, t5)
		b.OpI(isa.OpADD, isa.W32, t2, t2, 1)
		b.Op3(isa.OpCMPLT, isa.W32, t6, t2, prog.RegArg1)
		b.CondBranch(isa.OpBNE, t6, rloop)
		b.Op3(isa.OpOR, isa.W32, prog.RegRet, t1, rz) // return value
		b.Ret()
	})
}

// churn: mixed-width register churn — random ALU ops at random widths over
// a rotating register pool, with periodic reloads and spills to keep the
// memory system in play.
func (g *gen) churn() {
	b := g.b
	const poolWords = 16
	trips := g.trips(g.class.elems() * 2)

	seeds := make([]int64, poolWords)
	for i := range seeds {
		seeds[i] = int64(g.input.next())
	}
	b.Words(g.sym("seeds"), seeds)
	b.Space(g.sym("sink"), 64)

	pool := []isa.Reg{t1, t2, t3, t4, t5, t6, t7, t8}

	b.LoadAddr(s1, g.sym("seeds"))
	b.LoadAddr(s2, g.sym("sink"))
	b.Lda(s3, rz, 0) // counter
	for i, r := range pool {
		b.Load(isa.W64, r, s1, int64(i*8))
	}

	loop := g.lbl("churn")
	b.Label(loop)
	m := g.code.between(8, 14)
	for j := 0; j < m; j++ {
		op := churnOps[g.code.intn(len(churnOps))]
		w := isa.Widths[g.code.intn(len(isa.Widths))]
		rd := pool[g.code.intn(len(pool))]
		ra := pool[g.code.intn(len(pool))]
		switch {
		case op == isa.OpSLL || op == isa.OpSRL:
			b.OpI(op, w, rd, ra, int64(g.code.between(1, 7)))
		case g.code.intn(4) == 0:
			b.OpI(op, w, rd, ra, int64(1+g.code.intn(255)))
		default:
			b.Op3(op, w, rd, ra, pool[g.code.intn(len(pool))])
		}
	}
	// Refresh one pool register from the seed words and spill another.
	b.Load(isa.W64, pool[g.code.intn(len(pool))], s1, int64(g.code.intn(poolWords)*8))
	b.Store(isa.W32, pool[g.code.intn(len(pool))], s2, int64(g.code.intn(16)*4))
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, s4, s3, int64(trips))
	b.CondBranch(isa.OpBNE, s4, loop)

	// Fold the pool into one observable value.
	b.Lda(s5, rz, 0)
	for _, r := range pool {
		b.Op3(isa.OpXOR, isa.W64, s5, s5, r)
	}
	b.Out(isa.W64, s5)
	b.Out(isa.W32, s3)
}
