package progen

import (
	"fmt"
	"strings"

	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// This file holds the non-stationary generators: phase-structured
// composites (existing family bodies stitched into sequential program
// phases, each keeping its declared width band) and the adversarial
// width-flip family (one program that toggles between the narrow and
// wide ends of the spectrum at a configurable period). Stationary
// programs cannot separate width-prediction policies that agree on
// steady state; these can.

// MaxPhases bounds a composite's phase count: enough to stitch every
// family twice, small enough that a hostile name cannot demand an
// unbounded generation.
const MaxPhases = 8

// Phase records where one family's body landed in a composite program:
// the instruction-index range [Start, End) its code occupies within the
// entry function. Retired events attribute to the phase whose range
// holds their static index (a stream phase's deferred reduce callee
// lives past every range).
type Phase struct {
	Family     Family
	Start, End int
}

// GeneratePhased builds a phase-structured composite: the listed family
// bodies emitted back to back inside one entry function, each with its
// own namespaced data segment, executing strictly in sequence. The same
// (families, seed, class) always produces the same program; ref scales
// trip counts exactly as Generate does. The returned phases align with
// the program's instruction image.
func GeneratePhased(families []Family, seed uint64, c Class, ref bool) (*prog.Program, []Phase, error) {
	if len(families) == 0 {
		return nil, nil, fmt.Errorf("progen: phase composite needs at least one family")
	}
	if len(families) > MaxPhases {
		return nil, nil, fmt.Errorf("progen: %d phases exceed the maximum %d", len(families), MaxPhases)
	}
	for _, f := range families {
		if f < 0 || f >= numFamilies {
			return nil, nil, fmt.Errorf("progen: unknown family %d", int(f))
		}
	}
	if c < 0 || c >= numClasses {
		return nil, nil, fmt.Errorf("progen: unknown size class %d", int(c))
	}
	parts := make([]uint64, 0, len(families)+4)
	parts = append(parts, 0x9A5E, seed, uint64(c), uint64(len(families)))
	for _, f := range families {
		parts = append(parts, uint64(f))
	}
	g := &gen{
		b:     asm.NewBuilder(),
		code:  newRNG(append(append([]uint64(nil), parts...), 0xC0DE)...),
		input: newRNG(append(append([]uint64(nil), parts...), 0xDA7A+b2u(ref))...),
		class: c,
		ref:   ref,
	}
	g.b.Func("main")
	phases := make([]Phase, len(families))
	for i, f := range families {
		g.pfx = fmt.Sprintf("p%d_", i)
		start := g.b.InsCount()
		g.family(f)
		phases[i] = Phase{Family: f, Start: start, End: g.b.InsCount()}
		if g.err != nil {
			break
		}
	}
	g.pfx = ""
	g.b.Halt()
	g.flush()
	label := PhaseLabel(families)
	if g.err != nil {
		return nil, nil, fmt.Errorf("progen: phase/%s/%s/%d: %w", label, c, seed, g.err)
	}
	p, err := g.b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("progen: phase/%s/%s/%d: %w", label, c, seed, err)
	}
	return p, phases, nil
}

// PhaseLabel renders a composite's family list in its registry spelling:
// family names joined by '-', e.g. "narrow-wide-narrow".
func PhaseLabel(families []Family) string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.String()
	}
	return strings.Join(names, "-")
}

// ParsePhaseLabel parses a '-'-joined family list.
func ParsePhaseLabel(label string) ([]Family, error) {
	if label == "" {
		return nil, fmt.Errorf("progen: empty phase family list")
	}
	names := strings.Split(label, "-")
	if len(names) > MaxPhases {
		return nil, fmt.Errorf("progen: %d phases exceed the maximum %d", len(names), MaxPhases)
	}
	fams := make([]Family, len(names))
	for i, name := range names {
		f, err := ParseFamily(name)
		if err != nil {
			return nil, err
		}
		fams[i] = f
	}
	return fams, nil
}

// MaxFlipPeriod bounds the width-flip toggle period (in blocks).
const MaxFlipPeriod = 1 << 12

// GenerateFlip builds the adversarial width-flip program: a block loop
// whose body alternates between a narrow (byte/halfword) arm and a wide
// (64-bit mixing) arm, toggling every period blocks. A width predictor
// tuned on either steady state is wrong for half the run; the toggle
// period controls how often it is punished. Control flow is counted and
// data-independent, so the program always halts and both variants share
// one static layout.
func GenerateFlip(period int, seed uint64, c Class, ref bool) (*prog.Program, error) {
	if period < 1 || period > MaxFlipPeriod {
		return nil, fmt.Errorf("progen: flip period %d out of range [1, %d]", period, MaxFlipPeriod)
	}
	if c < 0 || c >= numClasses {
		return nil, fmt.Errorf("progen: unknown size class %d", int(c))
	}
	g := &gen{
		b:     asm.NewBuilder(),
		code:  newRNG(0xF11F, seed, uint64(c), uint64(period), 0xC0DE),
		input: newRNG(0xF11F, seed, uint64(c), uint64(period), 0xDA7A+b2u(ref)),
		class: c,
		ref:   ref,
	}
	g.b.Func("main")
	g.flip(period)
	g.b.Halt()
	g.flush()
	if g.err != nil {
		return nil, fmt.Errorf("progen: flip/%d/%s/%d: %w", period, c, seed, g.err)
	}
	p, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("progen: flip/%d/%s/%d: %w", period, c, seed, err)
	}
	return p, nil
}

// flip emits the width-flip body: seed words feed both arms (byte view
// for the narrow arm, word view for the wide arm), a selector register
// picks the arm per block, and a countdown toggles the selector every
// period blocks.
func (g *gen) flip(period int) {
	b := g.b
	n := g.class.elems()
	blocks := g.trips(8)

	words := make([]int64, n)
	for i := range words {
		words[i] = int64(g.input.next())
	}
	b.Words(g.sym("words"), words)
	b.Space(g.sym("sink"), n*8)

	b.LoadAddr(s1, g.sym("words"))
	b.LoadAddr(s2, g.sym("sink"))
	// A genuinely 64-bit odd multiplier for the wide arm (top bit forced
	// so LoadImm always expands identically).
	b.LoadImm(s4, int64(g.code.next()|1|1<<63))
	b.Lda(s5, rz, 0)                         // block counter
	b.Lda(s6, rz, 0)                         // arm selector: 0 narrow, 1 wide
	b.Lda(s7, rz, int64(period))             // toggle countdown
	b.Lda(t6, rz, int64(1+g.code.intn(255))) // accumulator, both arms

	block := g.lbl("block")
	narrowArm := g.lbl("narrowarm")
	wideArm := g.lbl("widearm")
	join := g.lbl("join")
	noflip := g.lbl("noflip")
	b.Label(block)
	b.CondBranch(isa.OpBNE, s6, wideArm)

	// Narrow arm: byte loads, a seed-chosen chain of byte/halfword ALU
	// ops, byte stores — the compress end of the spectrum.
	b.Label(narrowArm)
	narrowLoop := g.lbl("narrowloop")
	b.Lda(s3, rz, 0) // i
	b.Label(narrowLoop)
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W8, t2, t1, 0)
	k := g.code.between(2, 4)
	narrowW := []isa.Width{isa.W8, isa.W16}
	for j := 0; j < k; j++ {
		op := narrowALUOps[g.code.intn(len(narrowALUOps))]
		w := narrowW[g.code.intn(len(narrowW))]
		if g.code.intn(3) == 0 {
			b.OpI(op, w, t6, t6, int64(1+g.code.intn(255)))
		} else {
			b.Op3(op, w, t6, t6, t2)
		}
	}
	b.Op3(isa.OpADD, isa.W64, t3, s2, s3)
	b.Store(isa.W8, t6, t3, 0)
	b.OpI(isa.OpADD, isa.W32, s3, s3, 1)
	b.OpI(isa.OpCMPLT, isa.W32, t4, s3, int64(n))
	b.CondBranch(isa.OpBNE, t4, narrowLoop)
	b.Branch(join)

	// Wide arm: 64-bit multiply/xor-shift mixing over the same words —
	// the opposite steady state.
	b.Label(wideArm)
	wideLoop := g.lbl("wideloop")
	b.Lda(s3, rz, 0) // byte offset
	b.Label(wideLoop)
	b.Op3(isa.OpADD, isa.W64, t1, s1, s3)
	b.Load(isa.W64, t2, t1, 0)
	b.Op3(isa.OpMUL, isa.W64, t6, t6, s4)
	b.Op3(isa.OpXOR, isa.W64, t6, t6, t2)
	b.OpI(isa.OpSRL, isa.W64, t3, t6, int64(g.code.between(1, 31)))
	b.Op3(isa.OpXOR, isa.W64, t6, t6, t3)
	b.Op3(isa.OpADD, isa.W64, t4, s2, s3)
	b.Store(isa.W64, t6, t4, 0)
	b.OpI(isa.OpADD, isa.W64, s3, s3, 8)
	b.OpI(isa.OpCMPLT, isa.W64, t5, s3, int64(n*8))
	b.CondBranch(isa.OpBNE, t5, wideLoop)

	// Block epilogue: count the block, toggle the selector when the
	// countdown expires, loop while blocks remain.
	b.Label(join)
	b.OpI(isa.OpADD, isa.W32, s5, s5, 1)
	b.OpI(isa.OpSUB, isa.W32, s7, s7, 1)
	b.CondBranch(isa.OpBNE, s7, noflip)
	b.OpI(isa.OpXOR, isa.W8, s6, s6, 1)
	b.Lda(s7, rz, int64(period))
	b.Label(noflip)
	b.OpI(isa.OpCMPLT, isa.W32, t7, s5, int64(blocks))
	b.CondBranch(isa.OpBNE, t7, block)

	b.Out(isa.W64, t6)
	b.Out(isa.W32, s5)
}
