package difftest

import (
	"encoding/binary"
	"fmt"
	"testing"

	"opgate/internal/prog"
	"opgate/internal/progen"
)

// FuzzDiffExec decodes a generator tuple from raw fuzz bytes, generates
// the program and asserts the execution-equivalence invariant: Run ==
// Step == Replay, no panics, no traps. The generator is total over valid
// tuples, so any error is a finding. Input layout:
//
//	data[0]      generator selector (mod NumFamilies+2): a behavioral
//	             family, or NumFamilies = phase composite,
//	             NumFamilies+1 = width-flip
//	data[1]      bit 0: size class (small/medium); bit 7: ref variant
//	data[2:10]   little-endian generator seed (for composites the seed
//	             also derives the phase list; for flip, the period)
//
// Seed corpus: one entry per family plus phase and flip entries under
// testdata/fuzz/FuzzDiffExec, regenerable with
// `go test -run TestFuzzCorpusSeeds -regen-corpus`.
func FuzzDiffExec(f *testing.F) {
	for _, entry := range fuzzCorpusSeeds() {
		f.Add(entry)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			t.Skip("need 10 input bytes")
		}
		sel := int(data[0]) % (progen.NumFamilies + 2)
		class := progen.Class(int(data[1] & 1)) // small or medium: bounds per-input cost
		ref := data[1]&0x80 != 0
		seed := binary.LittleEndian.Uint64(data[2:10])
		var p *prog.Program
		var err error
		var label string
		switch sel {
		case progen.NumFamilies:
			fams := phaseListFromSeed(seed)
			label = "phase/" + progen.PhaseLabel(fams)
			p, _, err = progen.GeneratePhased(fams, seed, class, ref)
		case progen.NumFamilies + 1:
			period := 1 + int(seed>>56)%8 // small periods flip most often
			label = fmt.Sprintf("flip/%d", period)
			p, err = progen.GenerateFlip(period, seed, class, ref)
		default:
			fam := progen.Family(sel)
			label = fam.String()
			p, err = progen.Generate(fam, seed, class, ref)
		}
		if err != nil {
			t.Fatalf("generator failed on valid tuple %s/%v/%d: %v", label, class, seed, err)
		}
		if err := CheckExec(p); err != nil {
			t.Fatalf("%s/%v/%d ref=%v: %v", label, class, seed, ref, err)
		}
	})
}

// phaseListFromSeed derives a 2-3 element phase family list from the
// seed's high bytes (disjoint from the bytes GenerateFlip's period
// derivation reads is not required — each selector interprets the seed
// its own way).
func phaseListFromSeed(seed uint64) []progen.Family {
	n := 2 + int(seed>>62)%2
	fams := make([]progen.Family, n)
	for i := range fams {
		fams[i] = progen.Family(int(seed>>(8*i)) % progen.NumFamilies)
	}
	return fams
}

// fuzzCorpusSeeds returns the deterministic seed inputs: one per family
// plus two phase composites and two flip periods, mixing classes and
// variants.
func fuzzCorpusSeeds() [][]byte {
	var out [][]byte
	for _, fam := range progen.Families() {
		e := make([]byte, 10)
		e[0] = byte(fam)
		e[1] = byte(fam) & 1
		if fam%3 == 0 {
			e[1] |= 0x80
		}
		binary.LittleEndian.PutUint64(e[2:], uint64(fam)*1337+1)
		out = append(out, e)
	}
	for i := 0; i < 2; i++ {
		e := make([]byte, 10)
		e[0] = byte(progen.NumFamilies)
		e[1] = byte(i)
		binary.LittleEndian.PutUint64(e[2:], uint64(i)<<62|uint64(i*0x0102)<<8|31)
		out = append(out, e)
		e = make([]byte, 10)
		e[0] = byte(progen.NumFamilies + 1)
		e[1] = byte(i) | 0x80
		binary.LittleEndian.PutUint64(e[2:], uint64(i*3)<<56|77)
		out = append(out, e)
	}
	return out
}
