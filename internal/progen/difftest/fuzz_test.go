package difftest

import (
	"encoding/binary"
	"testing"

	"opgate/internal/progen"
)

// FuzzDiffExec decodes a (family, class, variant, seed) tuple from raw
// fuzz bytes, generates the program and asserts the execution-equivalence
// invariant: Run == Step == Replay, no panics, no traps. The generator is
// total over valid tuples, so any error is a finding. Input layout:
//
//	data[0]      behavioral family (mod NumFamilies)
//	data[1]      bit 0: size class (small/medium); bit 7: ref variant
//	data[2:10]   little-endian generator seed
//
// Seed corpus: one entry per family under testdata/fuzz/FuzzDiffExec,
// regenerable with `go test -run TestFuzzCorpusSeeds -regen-corpus`.
func FuzzDiffExec(f *testing.F) {
	for _, entry := range fuzzCorpusSeeds() {
		f.Add(entry)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			t.Skip("need 10 input bytes")
		}
		fam := progen.Family(int(data[0]) % progen.NumFamilies)
		class := progen.Class(int(data[1] & 1)) // small or medium: bounds per-input cost
		ref := data[1]&0x80 != 0
		seed := binary.LittleEndian.Uint64(data[2:10])
		p, err := progen.Generate(fam, seed, class, ref)
		if err != nil {
			t.Fatalf("generator failed on valid tuple %v/%v/%d: %v", fam, class, seed, err)
		}
		if err := CheckExec(p); err != nil {
			t.Fatalf("%v/%v/%d ref=%v: %v", fam, class, seed, ref, err)
		}
	})
}

// fuzzCorpusSeeds returns the deterministic seed inputs: one per family,
// mixing classes and variants.
func fuzzCorpusSeeds() [][]byte {
	var out [][]byte
	for _, fam := range progen.Families() {
		e := make([]byte, 10)
		e[0] = byte(fam)
		e[1] = byte(fam) & 1
		if fam%3 == 0 {
			e[1] |= 0x80
		}
		binary.LittleEndian.PutUint64(e[2:], uint64(fam)*1337+1)
		out = append(out, e)
	}
	return out
}
