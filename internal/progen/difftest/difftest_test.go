package difftest

import (
	"testing"

	"opgate/internal/progen"
)

// seedsPerFamily × NumFamilies is the CI differential sweep size; the
// acceptance floor is 100 seeds.
const seedsPerFamily = 17

// TestDifferentialSeedSweep: the substrate invariants (Run == Step ==
// Replay, identical architectural outcomes) hold across a 100+-seed grid
// of generated programs, on both input variants of every generation.
func TestDifferentialSeedSweep(t *testing.T) {
	for _, f := range progen.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= seedsPerFamily; seed++ {
				if err := Check(f, seed, progen.Small); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDifferentialClasses: the same invariants hold at the larger size
// classes (fewer seeds — the programs are an order of magnitude longer).
func TestDifferentialClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("large classes skipped in -short mode")
	}
	for _, f := range progen.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			t.Parallel()
			if err := Check(f, 23, progen.Medium); err != nil {
				t.Fatal(err)
			}
			if err := Check(f, 23, progen.Large); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialPhasedSweep: the substrate invariants hold across the
// non-stationary program space — phase composites pairing every family
// with its width-spectrum opposite, and the adversarial width-flip
// family over a period grid.
func TestDifferentialPhasedSweep(t *testing.T) {
	t.Run("phase", func(t *testing.T) {
		t.Parallel()
		for _, f := range progen.Families() {
			opposite := progen.Wide
			if f == progen.Wide || f == progen.Pointer {
				opposite = progen.Narrow
			}
			for seed := uint64(1); seed <= 3; seed++ {
				if err := CheckPhased([]progen.Family{f, opposite}, seed, progen.Small); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A triple composite exercises more than pairwise stitching.
		if err := CheckPhased([]progen.Family{progen.Narrow, progen.Wide, progen.Branchy}, 5, progen.Small); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("flip", func(t *testing.T) {
		t.Parallel()
		for _, period := range []int{1, 2, 7, 64} {
			for seed := uint64(1); seed <= 3; seed++ {
				if err := CheckFlip(period, seed, progen.Small); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}

// TestFusedModesSmoke: the fused-accounting invariant holds on a
// generated program from each end of the width spectrum, on a phase
// composite spanning both ends, and on the width-flip family (the full
// family × class property matrix lives in the harness tests).
func TestFusedModesSmoke(t *testing.T) {
	for _, f := range []progen.Family{progen.Narrow, progen.Wide} {
		p, err := progen.Generate(f, 3, progen.Small, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFusedModes(p); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
	}
	p, _, err := progen.GeneratePhased([]progen.Family{progen.Narrow, progen.Wide}, 3, progen.Small, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFusedModes(p); err != nil {
		t.Fatalf("phase/narrow-wide: %v", err)
	}
	fp, err := progen.GenerateFlip(2, 3, progen.Small, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFusedModes(fp); err != nil {
		t.Fatalf("flip/2: %v", err)
	}
}

// TestCheckRejectsBadInputs: the generator's argument validation reaches
// the differential entry point.
func TestCheckRejectsBadInputs(t *testing.T) {
	if err := Check(progen.Family(99), 1, progen.Small); err == nil {
		t.Error("Check accepted an unknown family")
	}
}
