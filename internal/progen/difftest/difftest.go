// Package difftest asserts the simulation substrate's core equivalence
// invariants on arbitrary generated programs:
//
//   - batched Run, per-Step execution and Trace.Replay deliver the same
//     retirement stream and the same architectural outcome;
//   - a fused uarch.RunModes pass is bit-identical to independent
//     per-mode uarch.Run calls.
//
// The eight hand-built kernels exercise these invariants on 16 fixed
// (workload, input) points; driven by progen seeds, difftest turns them
// into properties over an unbounded program space. The package is shared
// by the differential unit tests, the FuzzDiffExec native fuzz target and
// the CI seed sweep.
package difftest

import (
	"bytes"
	"fmt"

	"opgate/internal/emu"
	"opgate/internal/power"
	"opgate/internal/prog"
	"opgate/internal/progen"
	"opgate/internal/uarch"
)

// outcome is the observable result of one execution: the flattened
// retirement stream plus the architectural end state.
type outcome struct {
	events []emu.Event
	output []byte
	mem    []byte
	dyn    int64
	regs   [32]int64
}

// collect copies every retired event out of the machine-owned batches.
func collect(events *[]emu.Event) emu.Sink {
	return emu.FuncSink(func(ev emu.Event) { *events = append(*events, ev) })
}

// runBatched executes p with the batched dispatch loop.
func runBatched(p *prog.Program) (*outcome, error) {
	o := &outcome{}
	m := emu.New(p)
	m.Sink = collect(&o.events)
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("batched run: %w", err)
	}
	o.finish(m)
	return o, nil
}

// runStepped executes p one Step at a time.
func runStepped(p *prog.Program) (*outcome, error) {
	o := &outcome{}
	m := emu.New(p)
	m.Sink = collect(&o.events)
	for !m.Halted {
		if err := m.Step(); err != nil {
			return nil, fmt.Errorf("stepped run: %w", err)
		}
	}
	o.finish(m)
	return o, nil
}

// runReplayed executes p once while recording a packed trace, then
// replays the trace; the returned outcome pairs the replayed stream with
// the live run's architectural end state.
func runReplayed(p *prog.Program) (*outcome, error) {
	o := &outcome{}
	m := emu.New(p)
	rec := emu.NewTraceRecorder(p)
	m.Sink = rec
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("capture run: %w", err)
	}
	tr, err := rec.Trace()
	if err != nil {
		return nil, fmt.Errorf("trace capture: %w", err)
	}
	if tr.Len() != m.Dyn {
		return nil, fmt.Errorf("trace length %d != %d retired instructions", tr.Len(), m.Dyn)
	}
	tr.Replay(collect(&o.events))
	o.finish(m)
	return o, nil
}

func (o *outcome) finish(m *emu.Machine) {
	o.output = append([]byte(nil), m.Output...)
	o.mem = append([]byte(nil), m.Mem...)
	o.dyn = m.Dyn
	o.regs = m.Regs
}

// diff explains the first difference between two outcomes, or returns nil.
func diff(a, b *outcome, aName, bName string) error {
	if a.dyn != b.dyn {
		return fmt.Errorf("%s retired %d instructions, %s %d", aName, a.dyn, bName, b.dyn)
	}
	if len(a.events) != len(b.events) {
		return fmt.Errorf("%s delivered %d events, %s %d", aName, len(a.events), bName, len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			return fmt.Errorf("event %d differs: %s %+v, %s %+v", i, aName, a.events[i], bName, b.events[i])
		}
	}
	if !bytes.Equal(a.output, b.output) {
		return fmt.Errorf("output streams differ (%s %d bytes, %s %d bytes)", aName, len(a.output), bName, len(b.output))
	}
	if a.regs != b.regs {
		return fmt.Errorf("final register files differ")
	}
	if !bytes.Equal(a.mem, b.mem) {
		return fmt.Errorf("final memories differ")
	}
	return nil
}

// CheckExec asserts the execution-equivalence invariant on p: the batched
// Run loop, the per-Step wrapper and a captured-trace Replay must produce
// identical retirement streams (every Event field) and identical
// architectural outcomes (output, registers, memory, retired count).
func CheckExec(p *prog.Program) error {
	batched, err := runBatched(p)
	if err != nil {
		return err
	}
	stepped, err := runStepped(p)
	if err != nil {
		return err
	}
	if err := diff(batched, stepped, "run", "step"); err != nil {
		return fmt.Errorf("run vs step: %w", err)
	}
	replayed, err := runReplayed(p)
	if err != nil {
		return err
	}
	if err := diff(batched, replayed, "run", "replay"); err != nil {
		return fmt.Errorf("run vs replay: %w", err)
	}
	return nil
}

// sameResult requires bit-identical timing and accounting between a fused
// and a solo simulation result.
func sameResult(fused, solo *uarch.Result, mode power.GatingMode) error {
	if fused.Cycles != solo.Cycles || fused.Instructions != solo.Instructions ||
		fused.IPC != solo.IPC || fused.BranchMissRate != solo.BranchMissRate ||
		fused.L1DMissRate != solo.L1DMissRate || fused.L1IMissRate != solo.L1IMissRate {
		return fmt.Errorf("mode %v: timing differs (fused %d cycles, solo %d)", mode, fused.Cycles, solo.Cycles)
	}
	if fused.Energy.Cycles != solo.Energy.Cycles {
		return fmt.Errorf("mode %v: meter cycles differ", mode)
	}
	if fused.Energy.Energy != solo.Energy.Energy {
		return fmt.Errorf("mode %v: energy differs: fused %v, solo %v", mode, fused.Energy.Energy, solo.Energy.Energy)
	}
	if fused.Energy.Accesses != solo.Energy.Accesses {
		return fmt.Errorf("mode %v: access counts differ", mode)
	}
	return nil
}

// CheckFusedModes asserts the fused-accounting invariant on p: one
// RunModes pass over every gating mode must be bit-identical — cycles,
// per-structure energy, access counts — to independent per-mode Run
// calls.
func CheckFusedModes(p *prog.Program) error {
	cfg := uarch.DefaultConfig()
	params := power.DefaultParams()
	modes := power.Modes()
	fused, err := uarch.RunModes(p, cfg, params, modes)
	if err != nil {
		return fmt.Errorf("fused RunModes: %w", err)
	}
	for i, mode := range modes {
		solo, err := uarch.Run(p, cfg, params, mode)
		if err != nil {
			return fmt.Errorf("solo run (%v): %w", mode, err)
		}
		if err := sameResult(fused[i], solo, mode); err != nil {
			return err
		}
	}
	return nil
}

// Check generates the (family, seed, class) train and ref programs and
// asserts the execution-equivalence invariant on both.
func Check(f progen.Family, seed uint64, c progen.Class) error {
	for _, ref := range []bool{false, true} {
		p, err := progen.Generate(f, seed, c, ref)
		if err != nil {
			return err
		}
		if err := CheckExec(p); err != nil {
			return fmt.Errorf("%s/%s/%d ref=%v: %w", f, c, seed, ref, err)
		}
	}
	return nil
}

// CheckPhased generates the phase-structured composite's train and ref
// programs and asserts the execution-equivalence invariant on both —
// the same property Check asserts, over the non-stationary program
// space.
func CheckPhased(families []progen.Family, seed uint64, c progen.Class) error {
	for _, ref := range []bool{false, true} {
		p, _, err := progen.GeneratePhased(families, seed, c, ref)
		if err != nil {
			return err
		}
		if err := CheckExec(p); err != nil {
			return fmt.Errorf("phase/%s/%s/%d ref=%v: %w", progen.PhaseLabel(families), c, seed, ref, err)
		}
	}
	return nil
}

// CheckFlip generates the width-flip program's train and ref variants
// and asserts the execution-equivalence invariant on both.
func CheckFlip(period int, seed uint64, c progen.Class) error {
	for _, ref := range []bool{false, true} {
		p, err := progen.GenerateFlip(period, seed, c, ref)
		if err != nil {
			return err
		}
		if err := CheckExec(p); err != nil {
			return fmt.Errorf("flip/%d/%s/%d ref=%v: %w", period, c, seed, ref, err)
		}
	}
	return nil
}
