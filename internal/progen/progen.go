// Package progen generates OG64 programs deterministically from a seed.
// It opens the workload space beyond the eight hand-built SPEC95-analog
// kernels: each generated program belongs to a behavioral family that
// targets a chosen region of the dynamic-width spectrum the paper's
// figures sweep (narrow byte codes at one end, pointer-chasing wide codes
// at the other), scaled by a size class.
//
// Seeding contract: the same (family, seed, class) always produces the
// same static code — byte-identical instruction image, label set and data
// layout — across runs, platforms and goroutines (the generator is pure;
// it owns its RNG state and never consults global state). The ref variant
// of a generation differs from the train variant only in loop-bound
// immediates and data-segment contents, never in instruction count or
// shape, satisfying the train/ref layout contract vrs.Specialize enforces.
//
// Generated programs are valid by construction — they build through
// asm.Builder, pass prog.Validate/Analyze, halt within the emulator's
// default fuel, keep every memory access inside their data segment, and
// respect the calling convention (callees touch caller-saved registers
// only; GP/SP are never written) — so the whole pipeline (VRP, VRS,
// timing, power, trace capture/replay) runs on them unmodified. The
// differential harness (progen/difftest) leans on this to assert the
// substrate's equivalence invariants on arbitrary seeds.
package progen

import (
	"fmt"

	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

// Family is a behavioral program family. Families differ in the
// instruction mix and, above all, in the dynamic operand-width character
// of the code they emit.
type Family int

// The behavioral families.
const (
	// Narrow emits byte/halfword arithmetic over byte arrays with masked
	// accumulators — the compress/ijpeg end of the width spectrum.
	Narrow Family = iota
	// Wide emits 64-bit mixing chains (multiply, xor-shift) over full-range
	// words — almost everything is genuinely 8 bytes wide.
	Wide
	// Pointer emits pointer-chasing loads and stores over a randomized
	// node ring: 5-byte addresses dominate, with narrow payload updates.
	Pointer
	// Branchy emits data-dependent compare/branch cascades over narrow
	// state — the interpreter-like middle of the spectrum.
	Branchy
	// Stream emits loop-nest streaming over a 2D array at a fixed narrow
	// element width with multiply-accumulate reductions.
	Stream
	// Churn emits mixed-width register churn: random ALU ops at random
	// widths over a rotating register set, with periodic memory traffic.
	Churn

	numFamilies
)

// NumFamilies is the number of behavioral families.
const NumFamilies = int(numFamilies)

var familyNames = [...]string{
	Narrow:  "narrow",
	Wide:    "wide",
	Pointer: "pointer",
	Branchy: "branchy",
	Stream:  "stream",
	Churn:   "churn",
}

// Families lists every behavioral family.
func Families() []Family {
	fs := make([]Family, NumFamilies)
	for i := range fs {
		fs[i] = Family(i)
	}
	return fs
}

// String names the family.
func (f Family) String() string {
	if f >= 0 && int(f) < len(familyNames) {
		return familyNames[f]
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ParseFamily converts a family name to a Family.
func ParseFamily(s string) (Family, error) {
	for i, name := range familyNames {
		if name == s {
			return Family(i), nil
		}
	}
	return 0, fmt.Errorf("progen: unknown family %q", s)
}

// WidthBand returns the family's target band for the dynamic 64-bit share
// of width-bearing instructions (as emitted, before VRP re-narrowing).
// Every generated program of the family lands inside the band regardless
// of seed; tests and the curated suite rely on this to place workloads in
// chosen regions of the width spectrum.
func (f Family) WidthBand() (lo, hi float64) {
	switch f {
	case Narrow:
		return 0.0, 0.35
	case Wide:
		return 0.65, 1.0
	case Pointer:
		return 0.45, 0.95
	case Branchy:
		return 0.05, 0.50
	case Stream:
		return 0.05, 0.50
	case Churn:
		return 0.15, 0.60
	}
	return 0, 1
}

// Class scales a generation: array footprints and trip counts grow with
// the class, so dynamic lengths span roughly 10^4 (Small) to 10^6 (Large)
// retired instructions.
type Class int

// Size classes.
const (
	Small Class = iota
	Medium
	Large

	numClasses
)

// NumClasses is the number of size classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	Small:  "small",
	Medium: "medium",
	Large:  "large",
}

// String names the size class.
func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	for i, name := range classNames {
		if name == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("progen: unknown size class %q", s)
}

// elems returns the class's array footprint in elements.
func (c Class) elems() int {
	switch c {
	case Medium:
		return 1024
	case Large:
		return 4096
	}
	return 256
}

// refScale multiplies ref-variant trip counts relative to train, keeping
// ref runs strictly longer (the registry's train/ref health contract).
const refScale = 3

// Generate builds the (family, seed, class) program. ref selects the
// reference-input variant: same static code shape as the train variant,
// larger loop-bound immediates and reseeded data contents.
func Generate(f Family, seed uint64, c Class, ref bool) (*prog.Program, error) {
	if f < 0 || f >= numFamilies {
		return nil, fmt.Errorf("progen: unknown family %d", int(f))
	}
	if c < 0 || c >= numClasses {
		return nil, fmt.Errorf("progen: unknown size class %d", int(c))
	}
	g := &gen{
		b: asm.NewBuilder(),
		// The code stream must be identical for the train and ref variants
		// of a generation (layout contract); only the input stream sees ref.
		code:  newRNG(seed, uint64(f), uint64(c), 0xC0DE),
		input: newRNG(seed, uint64(f), uint64(c), 0xDA7A+b2u(ref)),
		class: c,
		ref:   ref,
	}
	g.b.Func("main")
	g.family(f)
	g.b.Halt()
	g.flush()
	if g.err != nil {
		return nil, fmt.Errorf("progen: %s/%s/%d: %w", f, c, seed, g.err)
	}
	p, err := g.b.Build()
	if err != nil {
		return nil, fmt.Errorf("progen: %s/%s/%d: %w", f, c, seed, err)
	}
	return p, nil
}

// family dispatches to the behavioral family's body generator. Bodies
// assume an open function: they emit the family's data segment and code
// (including its observable Out instructions) but no Func or Halt, so
// one body is a complete single-family program under Generate's main/
// Halt frame and one phase of a composite under GeneratePhased's.
func (g *gen) family(f Family) {
	switch f {
	case Narrow:
		g.narrow()
	case Wide:
		g.wide()
	case Pointer:
		g.pointer()
	case Branchy:
		g.branchy()
	case Stream:
		g.stream()
	case Churn:
		g.churn()
	}
}

// flush emits the deferred callee functions (stream's reduce) after the
// entry function is closed — callees are whole functions, so a body
// embedded mid-main registers them here instead of emitting inline.
func (g *gen) flush() {
	for _, fn := range g.deferred {
		fn()
	}
	g.deferred = nil
}

// trips scales a train-variant trip count by the variant multiplier.
func (g *gen) trips(train int) int {
	if g.ref {
		return train * refScale
	}
	return train
}

// gen carries one generation: the builder, the two RNG streams, and a
// label counter for unique control-flow labels. pfx namespaces data
// symbols and callee names when a body is embedded as one phase of a
// composite (empty for single-family generations, so their programs are
// unchanged); deferred collects callee emitters for flush.
type gen struct {
	b        *asm.Builder
	code     *rng // drives code shape; identical across train/ref
	input    *rng // drives data contents; reseeded for ref (trips scales counts)
	class    Class
	ref      bool
	label    int
	pfx      string
	deferred []func()
	err      error
}

// sym namespaces a data symbol or callee name with the phase prefix.
func (g *gen) sym(name string) string { return g.pfx + name }

func (g *gen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

// lbl returns a fresh program-unique label.
func (g *gen) lbl(prefix string) string {
	g.label++
	return fmt.Sprintf("%s_%d", prefix, g.label)
}

// Register shorthands (mirror internal/workload: t1..t8 caller-saved,
// s1..s7 callee-saved, rz the zero register). Generated callees touch only
// t-registers, preserving the convention VRP's call transfer relies on.
const (
	t1 = isa.Reg(1)
	t2 = isa.Reg(2)
	t3 = isa.Reg(3)
	t4 = isa.Reg(4)
	t5 = isa.Reg(5)
	t6 = isa.Reg(6)
	t7 = isa.Reg(7)
	t8 = isa.Reg(8)
	s1 = isa.Reg(9)
	s2 = isa.Reg(10)
	s3 = isa.Reg(11)
	s4 = isa.Reg(12)
	s5 = isa.Reg(13)
	s6 = isa.Reg(14)
	s7 = isa.Reg(15)
	rz = isa.Reg(isa.ZeroReg)
)

// rng is a splitmix64-seeded xorshift generator; generation draws from it
// exclusively, so programs are reproducible bit-for-bit.
type rng struct{ x uint64 }

// newRNG folds the seed parts through splitmix64 into one nonzero state.
func newRNG(parts ...uint64) *rng {
	h := uint64(0x9E3779B97F4A7C15)
	for _, p := range parts {
		h += p + 0x9E3779B97F4A7C15
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	if h == 0 {
		h = 0x9E3779B97F4A7C15
	}
	return &rng{x: h}
}

func (r *rng) next() uint64 {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	return r.x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// between returns a value in [lo, hi].
func (r *rng) between(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// bytes fills a fresh buffer with n random bytes below limit.
func (r *rng) bytes(n, limit int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.intn(limit))
	}
	return out
}

// cycle returns a single-cycle permutation of [0,n) (Sattolo's algorithm),
// so a pointer chase starting anywhere visits every node.
func (r *rng) cycle(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
