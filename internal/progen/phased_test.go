package progen

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/vrp"
)

// TestPhasedDeterministic: composites and flips honor the seeding
// contract — the same tuple is byte-identical across calls, and the
// train/ref pair shares one static layout (the vrs.Specialize contract).
func TestPhasedDeterministic(t *testing.T) {
	fams := []Family{Narrow, Wide, Branchy}
	for _, ref := range []bool{false, true} {
		p1, ph1, err := GeneratePhased(fams, 9, Small, ref)
		if err != nil {
			t.Fatal(err)
		}
		p2, ph2, err := GeneratePhased(fams, 9, Small, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !samePrograms(p1, p2) {
			t.Errorf("ref=%v: nondeterministic composite generation", ref)
		}
		if len(ph1) != len(ph2) {
			t.Fatalf("phase counts differ")
		}
		for i := range ph1 {
			if ph1[i] != ph2[i] {
				t.Errorf("phase %d ranges differ: %+v vs %+v", i, ph1[i], ph2[i])
			}
		}
	}
	trainP, _, err := GeneratePhased(fams, 9, Small, false)
	if err != nil {
		t.Fatal(err)
	}
	refP, _, err := GeneratePhased(fams, 9, Small, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainP.Ins) != len(refP.Ins) || len(trainP.Data) != len(refP.Data) {
		t.Error("composite train/ref layout contract violated")
	}
	ftr, err := GenerateFlip(3, 9, Small, false)
	if err != nil {
		t.Fatal(err)
	}
	fre, err := GenerateFlip(3, 9, Small, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ftr.Ins) != len(fre.Ins) || len(ftr.Data) != len(fre.Data) {
		t.Error("flip train/ref layout contract violated")
	}
}

// TestPhasedRanges: the returned phases tile the entry function — they
// start at 0, are contiguous and non-empty, and end before the Halt;
// anything past the last range is deferred callee code (whole
// functions), so the ranges alone attribute every mainline instruction.
func TestPhasedRanges(t *testing.T) {
	for _, fams := range [][]Family{
		{Narrow},
		{Wide, Narrow},
		{Stream, Churn, Pointer, Branchy},
	} {
		p, phases, err := GeneratePhased(fams, 11, Small, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(phases) != len(fams) {
			t.Fatalf("%v: %d phases for %d families", fams, len(phases), len(fams))
		}
		if phases[0].Start != 0 {
			t.Errorf("%v: first phase starts at %d", fams, phases[0].Start)
		}
		for i, ph := range phases {
			if ph.Family != fams[i] {
				t.Errorf("%v: phase %d is %v", fams, i, ph.Family)
			}
			if ph.End <= ph.Start {
				t.Errorf("%v: phase %d range [%d, %d) empty", fams, i, ph.Start, ph.End)
			}
			if i > 0 && ph.Start != phases[i-1].End {
				t.Errorf("%v: phase %d not contiguous (%d after %d)", fams, i, ph.Start, phases[i-1].End)
			}
		}
		// Past the last range: the Halt, then only whole deferred callees.
		last := phases[len(phases)-1].End
		if last >= len(p.Ins) {
			t.Errorf("%v: last phase range %d overruns the program (%d)", fams, last, len(p.Ins))
		}
		entry := p.Funcs[p.Entry]
		if entry.End != last+1 {
			t.Errorf("%v: entry function ends at %d, want last range %d + halt", fams, entry.End, last)
		}
	}
}

// phaseShares emulates a composite and returns each phase's dynamic
// 64-bit share of width-bearing instructions, attributing every retired
// event to the phase whose [Start, End) range holds its static index.
// Events outside every range (a stream phase's deferred callee) are
// counted into the phase that called them — the one whose range holds
// the JSR — by tracking the last in-range phase.
func phaseShares(t *testing.T, p *emu.Machine, phases []Phase) []float64 {
	t.Helper()
	hists := make([]vrp.WidthHistogram, len(phases))
	current := 0
	p.Sink = emu.FuncSink(func(ev emu.Event) {
		for i := range phases {
			if ev.Idx >= phases[i].Start && ev.Idx < phases[i].End {
				current = i
				break
			}
		}
		if vrp.CountsWidth(ev.Ins.Op) {
			hists[current].Add(ev.Ins.Width, 1)
		}
	})
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	shares := make([]float64, len(phases))
	for i := range hists {
		shares[i] = hists[i].Fraction(3)
	}
	return shares
}

// TestPhasedWidthBands: in a composite, every phase individually lands
// inside its family's declared width band — the property that makes
// phase-structured workloads genuinely non-stationary rather than a
// blended average.
func TestPhasedWidthBands(t *testing.T) {
	fams := []Family{Narrow, Wide, Pointer, Branchy, Stream, Churn}
	for _, seed := range []uint64{1, 7, 42} {
		p, phases, err := GeneratePhased(fams, seed, Small, false)
		if err != nil {
			t.Fatal(err)
		}
		shares := phaseShares(t, emu.New(p), phases)
		for i, ph := range phases {
			lo, hi := ph.Family.WidthBand()
			if shares[i] < lo || shares[i] > hi {
				t.Errorf("seed %d phase %d (%v): 64-bit share %.3f outside band [%.2f, %.2f]",
					seed, i, ph.Family, shares[i], lo, hi)
			}
		}
		// The composite genuinely swings across the spectrum: its widest
		// and narrowest phases are separated by more than any single
		// family band allows.
		lo, hi := shares[0], shares[0]
		for _, s := range shares {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo < 0.3 {
			t.Errorf("seed %d: phase shares span only [%.3f, %.3f] — not non-stationary", seed, lo, hi)
		}
	}
}

// TestFlipCharacter: the width-flip program sits between the pure
// steady states (it must punish any single-state predictor), and both
// arms actually execute — the selector toggles.
func TestFlipCharacter(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		p, err := GenerateFlip(1, seed, Small, false)
		if err != nil {
			t.Fatal(err)
		}
		var h vrp.WidthHistogram
		m := emu.New(p)
		m.Sink = emu.FuncSink(func(ev emu.Event) {
			if vrp.CountsWidth(ev.Ins.Op) {
				h.Add(ev.Ins.Width, 1)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		share := h.Fraction(3)
		nLo, nHi := Narrow.WidthBand()
		wLo, wHi := Wide.WidthBand()
		_, _ = nLo, wHi
		if share <= nHi || share >= 1 {
			t.Errorf("seed %d: flip share %.3f not above the narrow band (%.2f)", seed, share, nHi)
		}
		if h.Fraction(0)+h.Fraction(1) == 0 {
			t.Errorf("seed %d: flip program retired no narrow instructions — narrow arm never ran", seed)
		}
		if share < 0.2 || share > wLo+0.35 {
			t.Errorf("seed %d: flip share %.3f outside the mixed range", seed, share)
		}
	}
}

// TestPhasedErrors: the composite and flip constructors reject invalid
// tuples rather than defaulting.
func TestPhasedErrors(t *testing.T) {
	if _, _, err := GeneratePhased(nil, 1, Small, false); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, _, err := GeneratePhased(make([]Family, MaxPhases+1), 1, Small, false); err == nil {
		t.Error("oversized phase list accepted")
	}
	if _, _, err := GeneratePhased([]Family{Family(99)}, 1, Small, false); err == nil {
		t.Error("unknown family accepted")
	}
	if _, _, err := GeneratePhased([]Family{Narrow}, 1, Class(99), false); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := GenerateFlip(0, 1, Small, false); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := GenerateFlip(MaxFlipPeriod+1, 1, Small, false); err == nil {
		t.Error("oversized period accepted")
	}
	if _, err := GenerateFlip(2, 1, Class(99), false); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := ParsePhaseLabel(""); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := ParsePhaseLabel("narrow-quantum"); err == nil {
		t.Error("unknown family in label accepted")
	}
	fams, err := ParsePhaseLabel(PhaseLabel([]Family{Stream, Churn}))
	if err != nil || len(fams) != 2 || fams[0] != Stream || fams[1] != Churn {
		t.Errorf("label round-trip failed: %v, %v", fams, err)
	}
}
