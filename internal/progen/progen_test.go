package progen

import (
	"testing"

	"opgate/internal/emu"
	"opgate/internal/prog"
	"opgate/internal/vrp"
)

// seeds used by the generator tests; arbitrary but fixed.
var testSeeds = []uint64{1, 7, 42, 0xDEADBEEF}

// samePrograms reports structural equality of two programs: identical
// instruction images, data segments and function tables.
func samePrograms(a, b *prog.Program) bool {
	if len(a.Ins) != len(b.Ins) || len(a.Data) != len(b.Data) ||
		len(a.Funcs) != len(b.Funcs) || a.Entry != b.Entry ||
		a.DataBase != b.DataBase || a.MemSize != b.MemSize {
		return false
	}
	for i := range a.Ins {
		if a.Ins[i] != b.Ins[i] {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	for i := range a.Funcs {
		if a.Funcs[i].Name != b.Funcs[i].Name ||
			a.Funcs[i].Start != b.Funcs[i].Start ||
			a.Funcs[i].End != b.Funcs[i].End {
			return false
		}
	}
	return true
}

// TestGenerateDeterministic: the seeding contract — the same
// (family, seed, class, variant) is byte-identical across calls.
func TestGenerateDeterministic(t *testing.T) {
	for _, f := range Families() {
		for _, seed := range testSeeds {
			for _, ref := range []bool{false, true} {
				p1, err := Generate(f, seed, Small, ref)
				if err != nil {
					t.Fatalf("%v/%d: %v", f, seed, err)
				}
				p2, err := Generate(f, seed, Small, ref)
				if err != nil {
					t.Fatalf("%v/%d: %v", f, seed, err)
				}
				if !samePrograms(p1, p2) {
					t.Errorf("%v/%d ref=%v: nondeterministic generation", f, seed, ref)
				}
			}
		}
	}
}

// TestGenerateDeterministicParallel re-runs the determinism check from
// concurrent goroutines: the generator must be pure (no shared state), so
// this also serves as the -race witness of the seeding contract.
func TestGenerateDeterministicParallel(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			t.Parallel()
			want, err := Generate(f, 99, Small, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Generate(f, 99, Small, false)
			if err != nil {
				t.Fatal(err)
			}
			if !samePrograms(want, got) {
				t.Errorf("%v: nondeterministic under concurrency", f)
			}
		})
	}
}

// TestGeneratedProgramsRun: every family × class × seed builds a valid
// program that halts, produces output, and runs strictly longer on the
// ref variant — the registry health contract the eight kernels satisfy.
func TestGeneratedProgramsRun(t *testing.T) {
	for _, f := range Families() {
		for c := Small; c <= Large; c++ {
			for _, seed := range testSeeds {
				var dyn [2]int64
				for i, ref := range []bool{false, true} {
					p, err := Generate(f, seed, c, ref)
					if err != nil {
						t.Fatalf("%v/%v/%d: %v", f, c, seed, err)
					}
					if err := p.Validate(); err != nil {
						t.Fatalf("%v/%v/%d: invalid program: %v", f, c, seed, err)
					}
					res, err := emu.Execute(p)
					if err != nil {
						t.Fatalf("%v/%v/%d ref=%v: %v", f, c, seed, ref, err)
					}
					if len(res.Output) == 0 {
						t.Errorf("%v/%v/%d ref=%v: no output", f, c, seed, ref)
					}
					if res.Dyn < 1000 {
						t.Errorf("%v/%v/%d ref=%v: only %d retired instructions", f, c, seed, ref, res.Dyn)
					}
					dyn[i] = res.Dyn
				}
				if dyn[1] <= dyn[0] {
					t.Errorf("%v/%v/%d: ref (%d) not longer than train (%d)", f, c, seed, dyn[1], dyn[0])
				}
			}
		}
	}
}

// TestTrainRefLayoutContract: the train and ref variants of a generation
// share the static instruction layout (only immediates and data differ) —
// the contract vrs.Specialize enforces at runtime.
func TestTrainRefLayoutContract(t *testing.T) {
	for _, f := range Families() {
		for _, seed := range testSeeds {
			trainP, err := Generate(f, seed, Medium, false)
			if err != nil {
				t.Fatal(err)
			}
			refP, err := Generate(f, seed, Medium, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(trainP.Ins) != len(refP.Ins) {
				t.Errorf("%v/%d: train %d vs ref %d instructions", f, seed, len(trainP.Ins), len(refP.Ins))
				continue
			}
			if len(trainP.Data) != len(refP.Data) {
				t.Errorf("%v/%d: train %d vs ref %d data bytes", f, seed, len(trainP.Data), len(refP.Data))
			}
			for i := range trainP.Ins {
				a, b := trainP.Ins[i], refP.Ins[i]
				if a.Op != b.Op || a.Rd != b.Rd || a.Ra != b.Ra || a.Rb != b.Rb ||
					a.Width != b.Width || a.Target != b.Target {
					t.Errorf("%v/%d: instruction %d differs structurally (%v vs %v)",
						f, seed, i, a.String(), b.String())
					break
				}
			}
		}
	}
}

// dynShare64 returns the dynamic 64-bit share of the program's
// width-bearing instructions as emitted (the generator's raw width
// character, before any VRP narrowing).
func dynShare64(t *testing.T, p *prog.Program) float64 {
	t.Helper()
	var h vrp.WidthHistogram
	m := emu.New(p)
	m.Sink = emu.FuncSink(func(ev emu.Event) {
		if vrp.CountsWidth(ev.Ins.Op) {
			h.Add(ev.Ins.Width, 1)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return h.Fraction(3)
}

// TestWidthCharacter: every family lands inside its declared band of the
// dynamic-width spectrum on every seed, and the cross-family ordering the
// band taxonomy promises (wide > pointer > narrow) holds.
func TestWidthCharacter(t *testing.T) {
	for _, seed := range testSeeds {
		share := make(map[Family]float64, NumFamilies)
		for _, f := range Families() {
			p, err := Generate(f, seed, Small, false)
			if err != nil {
				t.Fatal(err)
			}
			s := dynShare64(t, p)
			share[f] = s
			lo, hi := f.WidthBand()
			if s < lo || s > hi {
				t.Errorf("%v/%d: 64-bit share %.3f outside band [%.2f, %.2f]", f, seed, s, lo, hi)
			}
		}
		if !(share[Wide] > share[Pointer] && share[Pointer] > share[Narrow]) {
			t.Errorf("seed %d: width ordering violated: wide=%.3f pointer=%.3f narrow=%.3f",
				seed, share[Wide], share[Pointer], share[Narrow])
		}
	}
}

// TestVRPOnGeneratedPrograms: the binary optimizer's core soundness claim
// holds on arbitrary seeds — both VRP modes re-encode every generated
// program behaviour-preservingly.
func TestVRPOnGeneratedPrograms(t *testing.T) {
	for _, f := range Families() {
		p, err := Generate(f, 5, Small, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []vrp.Mode{vrp.Conventional, vrp.Useful} {
			r, err := vrp.Analyze(p, vrp.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%v: analyze(%v): %v", f, mode, err)
			}
			if err := emu.CheckEquivalence(p, r.Apply()); err != nil {
				t.Fatalf("%v: mode %v: %v", f, mode, err)
			}
		}
	}
}

// TestGenerateErrors: invalid families and classes are rejected, not
// silently mapped to a default.
func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Family(99), 1, Small, false); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Generate(Family(-1), 1, Small, false); err == nil {
		t.Error("negative family accepted")
	}
	if _, err := Generate(Narrow, 1, Class(99), false); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := Generate(Narrow, 1, Class(-1), false); err == nil {
		t.Error("negative class accepted")
	}
}

// TestParseRoundTrip: names round-trip through the parsers, and unknown
// names are rejected.
func TestParseRoundTrip(t *testing.T) {
	for _, f := range Families() {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v", f.String(), got, err)
		}
	}
	for c := Small; c <= Large; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseFamily("noise"); err == nil {
		t.Error("ParseFamily accepted an unknown name")
	}
	if _, err := ParseClass("jumbo"); err == nil {
		t.Error("ParseClass accepted an unknown name")
	}
	if Family(99).String() == "" || Class(99).String() == "" {
		t.Error("out-of-range String() values must still format")
	}
}
