package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genInterval draws a random non-empty interval, biased toward small
// ranges and interesting boundary values.
func genInterval(r *rand.Rand) Interval {
	pick := func() int64 {
		switch r.Intn(6) {
		case 0:
			return int64(r.Intn(256)) - 128
		case 1:
			return int64(r.Intn(1 << 16))
		case 2:
			return int64(r.Uint64()) // full range
		case 3:
			return math.MaxInt64 - int64(r.Intn(4))
		case 4:
			return math.MinInt64 + int64(r.Intn(4))
		default:
			return int64(r.Intn(1<<20)) - 1<<19
		}
	}
	a, b := pick(), pick()
	if a > b {
		a, b = b, a
	}
	return New(a, b)
}

// sample draws a concrete value inside the interval.
func sample(r *rand.Rand, iv Interval) int64 {
	if lo, ok := iv.IsConst(); ok {
		return lo
	}
	span := uint64(iv.Hi) - uint64(iv.Lo)
	if span == math.MaxUint64 {
		return int64(r.Uint64())
	}
	return iv.Lo + int64(r.Uint64()%(span+1))
}

// checkBinary verifies that the abstract transfer function over-approximates
// the concrete operation for random intervals and random members.
func checkBinary(t *testing.T, name string, abstract func(a, b Interval) Interval, concrete func(x, y int64) int64) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		a, b := genInterval(r), genInterval(r)
		res := abstract(a, b)
		for j := 0; j < 8; j++ {
			x, y := sample(r, a), sample(r, b)
			got := concrete(x, y)
			if !res.Contains(got) {
				t.Fatalf("%s unsound: %v op %v = %v, but %d op %d = %d not in result",
					name, a, b, res, x, y, got)
			}
		}
	}
}

func TestAddSound(t *testing.T) {
	checkBinary(t, "add", Add, func(x, y int64) int64 { return x + y })
}

func TestSubSound(t *testing.T) {
	checkBinary(t, "sub", Sub, func(x, y int64) int64 { return x - y })
}

func TestMulSound(t *testing.T) {
	checkBinary(t, "mul", Mul, func(x, y int64) int64 { return x * y })
}

func TestAndSound(t *testing.T) {
	checkBinary(t, "and", And, func(x, y int64) int64 { return x & y })
}

func TestOrSound(t *testing.T) {
	checkBinary(t, "or", Or, func(x, y int64) int64 { return x | y })
}

func TestXorSound(t *testing.T) {
	checkBinary(t, "xor", Xor, func(x, y int64) int64 { return x ^ y })
}

func TestAndNotSound(t *testing.T) {
	checkBinary(t, "bic", AndNot, func(x, y int64) int64 { return x &^ y })
}

func TestShlSound(t *testing.T) {
	checkBinary(t, "shl", Shl, func(x, y int64) int64 { return x << uint(y&63) })
}

func TestShrSound(t *testing.T) {
	checkBinary(t, "shr", Shr, func(x, y int64) int64 { return int64(uint64(x) >> uint(y&63)) })
}

func TestSarSound(t *testing.T) {
	checkBinary(t, "sar", Sar, func(x, y int64) int64 { return x >> uint(y&63) })
}

func TestMaskLowSound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := genInterval(r)
		k := 1 + r.Intn(8)
		res := MaskLow(a, k)
		for j := 0; j < 8; j++ {
			x := sample(r, a)
			var got int64
			if k >= 8 {
				got = x
			} else {
				got = x & (int64(1)<<uint(8*k) - 1)
			}
			if !res.Contains(got) {
				t.Fatalf("mskl(%v, %d) = %v missing %d -> %d", a, k, res, x, got)
			}
		}
	}
}

func TestSignExtendSound(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		a := genInterval(r)
		k := 1 + r.Intn(8)
		res := SignExtend(a, k)
		for j := 0; j < 8; j++ {
			x := sample(r, a)
			shift := uint(64 - 8*k)
			got := x << shift >> shift
			if !res.Contains(got) {
				t.Fatalf("sext(%v, %d) = %v missing %d -> %d", a, k, res, x, got)
			}
		}
	}
}

func TestSignificantBytes(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 1}, {1, 1}, {127, 1}, {-1, 1}, {-128, 1},
		{128, 2}, {-129, 2}, {255, 2}, {32767, 2}, {-32768, 2},
		{32768, 3}, {1 << 23, 4}, {1<<31 - 1, 4}, {-(1 << 31), 4},
		{1 << 31, 5}, {1 << 32, 5}, {0xFF_FFFF_FFFF, 6},
		{math.MaxInt64, 8}, {math.MinInt64, 8},
	}
	for _, c := range cases {
		if got := SignificantBytes(c.v); got != c.want {
			t.Errorf("SignificantBytes(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestSignificantBytesRoundTrip: sign-extending the low k bytes of v
// reproduces v exactly when k >= SignificantBytes(v).
func TestSignificantBytesRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		k := SignificantBytes(v)
		shift := uint(64 - 8*k)
		return v<<shift>>shift == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBytesCoversMembers: every member of an interval fits in the
// interval's byte width.
func TestBytesCoversMembers(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		iv := genInterval(r)
		k := iv.Bytes()
		for j := 0; j < 8; j++ {
			x := sample(r, iv)
			if SignificantBytes(x) > k {
				t.Fatalf("interval %v (k=%d) contains %d needing %d bytes",
					iv, k, x, SignificantBytes(x))
			}
		}
	}
}

func TestJoinMeetLaws(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		a, b := genInterval(r), genInterval(r)
		j := a.Join(b)
		if !j.ContainsInterval(a) || !j.ContainsInterval(b) {
			t.Fatalf("join %v ∨ %v = %v does not contain both", a, b, j)
		}
		m := a.Meet(b)
		if !m.IsEmpty() {
			if !a.ContainsInterval(m) || !b.ContainsInterval(m) {
				t.Fatalf("meet %v ∧ %v = %v not contained in both", a, b, m)
			}
		}
		// Join is commutative and idempotent.
		if !j.Equal(b.Join(a)) {
			t.Fatalf("join not commutative: %v vs %v", j, b.Join(a))
		}
		if !a.Join(a).Equal(a) {
			t.Fatalf("join not idempotent for %v", a)
		}
	}
}

func TestWidenMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b := genInterval(r), genInterval(r)
		w := Widen(a, b)
		if !w.ContainsInterval(a) {
			t.Fatalf("widen(%v, %v) = %v lost prev", a, b, w)
		}
		if !w.ContainsInterval(b) {
			t.Fatalf("widen(%v, %v) = %v lost next", a, b, w)
		}
		// Widening twice is stable.
		if !Widen(w, b).Equal(w) {
			t.Fatalf("widen not stable: %v", w)
		}
	}
}

func TestWidthBounds(t *testing.T) {
	for k := 1; k <= 8; k++ {
		iv := WidthBounds(k)
		if iv.Bytes() != k {
			t.Errorf("WidthBounds(%d).Bytes() = %d", k, iv.Bytes())
		}
		if k < 8 {
			if iv.Lo != -(int64(1)<<uint(8*k-1)) || iv.Hi != int64(1)<<uint(8*k-1)-1 {
				t.Errorf("WidthBounds(%d) = %v", k, iv)
			}
			u := UnsignedWidthBounds(k)
			if u.Lo != 0 || u.Hi != int64(1)<<uint(8*k)-1 {
				t.Errorf("UnsignedWidthBounds(%d) = %v", k, u)
			}
		}
	}
}

func TestEmptyAndConst(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Error("Empty not empty")
	}
	if Empty().Contains(0) {
		t.Error("Empty contains 0")
	}
	c := Const(42)
	if v, ok := c.IsConst(); !ok || v != 42 {
		t.Error("Const(42) not constant 42")
	}
	if _, ok := Top().IsConst(); ok {
		t.Error("Top is constant")
	}
	if !Top().IsTop() {
		t.Error("Top not top")
	}
	if Add(Empty(), Top()).ok {
		t.Error("Add with empty operand must be empty")
	}
}

func TestNewPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestSize(t *testing.T) {
	if got := New(0, 9).Size(); got != 10 {
		t.Errorf("Size = %v, want 10", got)
	}
	if got := Empty().Size(); got != 0 {
		t.Errorf("empty Size = %v", got)
	}
}
