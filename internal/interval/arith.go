package interval

import (
	"math"
	"math/bits"
)

// Transfer functions. Each returns a conservative superset of the concrete
// results. A potential 64-bit signed overflow widens the result to Top
// (the paper's wraparound rule).

// Add returns the range of a+b.
func Add(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	lo, okLo := addChecked(a.Lo, b.Lo)
	hi, okHi := addChecked(a.Hi, b.Hi)
	if !okLo || !okHi {
		return Top()
	}
	return Interval{lo, hi, true}
}

// Sub returns the range of a-b.
func Sub(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	lo, okLo := subChecked(a.Lo, b.Hi)
	hi, okHi := subChecked(a.Hi, b.Lo)
	if !okLo || !okHi {
		return Top()
	}
	return Interval{lo, hi, true}
}

// Mul returns the range of a*b.
func Mul(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	lo := int64(math.MaxInt64)
	hi := int64(math.MinInt64)
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, ok := mulChecked(x, y)
			if !ok {
				return Top()
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	return Interval{lo, hi, true}
}

// Neg returns the range of -a.
func Neg(a Interval) Interval { return Sub(Const(0), a) }

// And returns a conservative range of a&b. Precise bounds for bitwise
// operations on intervals require bit-blasting; the cases that matter for
// operand gating are masks and non-negative operands, which are handled
// tightly.
func And(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	// Constant & constant.
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Const(av & bv)
		}
	}
	aNonNeg, bNonNeg := a.Lo >= 0, b.Lo >= 0
	switch {
	case aNonNeg && bNonNeg:
		// Result within [0, min(aHi, bHi)].
		return Interval{0, min64(a.Hi, b.Hi), true}
	case aNonNeg:
		// b may be negative (e.g. sign-extended mask): result keeps a's bound.
		return Interval{0, a.Hi, true}
	case bNonNeg:
		return Interval{0, b.Hi, true}
	}
	return Top()
}

// Or returns a conservative range of a|b.
func Or(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Const(av | bv)
		}
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		// OR cannot exceed the next power-of-two bound of max(aHi,bHi)
		// and cannot be below max(aLo, bLo).
		m := max64(a.Hi, b.Hi)
		return Interval{max64(a.Lo, b.Lo), ceilPow2Mask(m), true}
	}
	if a.Hi < 0 || b.Hi < 0 {
		// Any negative operand forces a negative result (sign bit set).
		return Interval{math.MinInt64, -1, true}
	}
	return Top()
}

// Xor returns a conservative range of a^b.
func Xor(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Const(av ^ bv)
		}
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		m := max64(a.Hi, b.Hi)
		return Interval{0, ceilPow2Mask(m), true}
	}
	return Top()
}

// AndNot returns a conservative range of a &^ b.
func AndNot(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			return Const(av &^ bv)
		}
	}
	if a.Lo >= 0 {
		// Clearing bits of a non-negative value keeps it in [0, aHi].
		return Interval{0, a.Hi, true}
	}
	return Top()
}

// Shl returns the range of a<<s where the shift amount interval is masked
// to [0,63] (the ISA's shift-amount field).
func Shl(a, s Interval) Interval {
	if a.IsEmpty() || s.IsEmpty() {
		return Empty()
	}
	sLo, sHi, ok := shiftRange(s)
	if !ok {
		return Top()
	}
	lo := int64(math.MaxInt64)
	hi := int64(math.MinInt64)
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, amt := range [2]int64{sLo, sHi} {
			p, ok := shlChecked(x, uint(amt))
			if !ok {
				return Top()
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	// Shl is monotone in the value but not in the amount for negatives;
	// evaluating the 4 corner combinations is safe only when no overflow
	// occurred at any corner and the function is monotone between them,
	// which holds for left shift by a fixed amount. Mixed amounts on a
	// sign-crossing interval are widened.
	if a.Lo < 0 && a.Hi > 0 && sLo != sHi {
		return Top()
	}
	return Interval{lo, hi, true}
}

// Shr returns the range of the logical right shift a>>s (unsigned).
func Shr(a, s Interval) Interval {
	if a.IsEmpty() || s.IsEmpty() {
		return Empty()
	}
	sLo, sHi, ok := shiftRange(s)
	if !ok {
		return Top()
	}
	if a.Lo < 0 {
		// Logical shift of a negative value yields a huge positive
		// number; only a zero shift preserves it. Be conservative.
		if sLo == 0 && sHi == 0 {
			return a
		}
		return Top()
	}
	// Non-negative: monotone decreasing in shift amount.
	return Interval{a.Lo >> uint(sHi), a.Hi >> uint(sLo), true}
}

// Sar returns the range of the arithmetic right shift a>>s.
func Sar(a, s Interval) Interval {
	if a.IsEmpty() || s.IsEmpty() {
		return Empty()
	}
	sLo, sHi, ok := shiftRange(s)
	if !ok {
		return Top()
	}
	// Arithmetic shift is monotone in the value for fixed amounts; take
	// corner extremes over both bounds of the amount.
	lo := min64(a.Lo>>uint(sLo), a.Lo>>uint(sHi))
	hi := max64(a.Hi>>uint(sLo), a.Hi>>uint(sHi))
	return Interval{lo, hi, true}
}

// MaskLow returns the range of a & (2^(8k)-1), keeping the low k bytes and
// zeroing the rest (the MSKL operation).
func MaskLow(a Interval, k int) Interval {
	if a.IsEmpty() {
		return Empty()
	}
	if k >= 8 {
		return a
	}
	mask := int64(1)<<uint(8*k) - 1
	if a.Lo >= 0 && a.Hi <= mask {
		return a
	}
	return Interval{0, mask, true}
}

// SignExtend returns the range of sign-extending the low k bytes of a.
func SignExtend(a Interval, k int) Interval {
	if a.IsEmpty() {
		return Empty()
	}
	if k >= 8 {
		return a
	}
	if a.FitsBytes(k) {
		return a // already representable: sext is the identity
	}
	return WidthBounds(k)
}

// ExtractByte returns the range of extracting one byte: always [0,255].
func ExtractByte(a Interval) Interval {
	if a.IsEmpty() {
		return Empty()
	}
	if a.Lo >= 0 && a.Hi <= 255 {
		return a // extracting byte 0 of a small value
	}
	return Interval{0, 255, true}
}

// CmpResult is the range of any comparison result: {0,1}. When the operand
// ranges decide the comparison statically, the singleton is returned.
func CmpResult(decided bool, value bool) Interval {
	if !decided {
		return Interval{0, 1, true}
	}
	if value {
		return Const(1)
	}
	return Const(0)
}

// shiftRange clamps the shift-amount interval to the architectural [0,63]
// field (the ISA masks the amount to 6 bits, so any out-of-field interval
// conservatively becomes the full field). ok is false only for empty input.
func shiftRange(s Interval) (lo, hi int64, ok bool) {
	if s.IsEmpty() {
		return 0, 0, false
	}
	if s.Lo < 0 || s.Hi > 63 {
		return 0, 63, true
	}
	return s.Lo, s.Hi, true
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subChecked(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	r := a * b
	if r/b != a {
		return 0, false
	}
	return r, true
}

func shlChecked(a int64, s uint) (int64, bool) {
	if s >= 64 {
		return 0, a == 0
	}
	r := a << s
	if r>>s != a {
		return 0, false
	}
	return r, true
}

// ceilPow2Mask returns the smallest 2^k-1 >= v for v >= 0.
func ceilPow2Mask(v int64) int64 {
	if v <= 0 {
		return 0
	}
	n := bits.Len64(uint64(v))
	if n >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(n) - 1
}
