// Package interval implements the two's-complement value-range domain used
// by value range propagation (Section 2 of the paper).
//
// An Interval is a contiguous signed range [Lo, Hi] over int64. Arithmetic
// transfer functions are conservative with respect to 64-bit wraparound:
// when an operation could overflow the signed 64-bit ring, the result is
// widened to Top, never to a wrapped (possibly disjoint) range — this is
// exactly the paper's §2.2.1 rule ("if overflow is possible then the
// calculated range takes the wrap around behavior into account ... overly
// conservative, [but] it ensures correctness").
//
// Widths are assigned in sign-extension form (§2.4: "narrow values are
// always kept in 2's complement to keep information about the sign"): a
// value occupies k bytes iff sign-extending its low k bytes reproduces it.
package interval

import (
	"fmt"
	"math"
)

// Interval is an inclusive signed range. The zero value is the empty
// interval; use Top(), Const(), or New() to build non-empty ranges.
type Interval struct {
	Lo, Hi int64
	ok     bool // non-empty
}

// Top returns the full 64-bit signed range.
func Top() Interval { return Interval{math.MinInt64, math.MaxInt64, true} }

// Empty returns the empty (bottom) interval.
func Empty() Interval { return Interval{} }

// Const returns the singleton interval {v}.
func Const(v int64) Interval { return Interval{v, v, true} }

// New returns [lo, hi]; it panics if lo > hi (a programming error in the
// analysis, not a data condition).
func New(lo, hi int64) Interval {
	if lo > hi {
		panic(fmt.Sprintf("interval: New(%d, %d) with lo > hi", lo, hi))
	}
	return Interval{lo, hi, true}
}

// IsEmpty reports whether the interval contains no values.
func (iv Interval) IsEmpty() bool { return !iv.ok }

// IsTop reports whether the interval is the full 64-bit range.
func (iv Interval) IsTop() bool {
	return iv.ok && iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64
}

// IsConst reports whether the interval is a singleton, and its value.
func (iv Interval) IsConst() (int64, bool) {
	if iv.ok && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v int64) bool { return iv.ok && iv.Lo <= v && v <= iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return iv.ok && iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Size returns the number of values in the interval as a float64 (the count
// can exceed int64 range for wide intervals).
func (iv Interval) Size() float64 {
	if !iv.ok {
		return 0
	}
	return float64(iv.Hi) - float64(iv.Lo) + 1
}

// String renders the interval like the paper's <min,max> notation.
func (iv Interval) String() string {
	if !iv.ok {
		return "<empty>"
	}
	if iv.IsTop() {
		return "<INTmin,INTmax>"
	}
	return fmt.Sprintf("<%d,%d>", iv.Lo, iv.Hi)
}

// Join returns the least interval containing both operands (the meet
// operator of the paper's "conservative safe approach": when a value can be
// produced by several instructions, the union of their ranges is used).
func (iv Interval) Join(other Interval) Interval {
	if !iv.ok {
		return other
	}
	if !other.ok {
		return iv
	}
	return Interval{min64(iv.Lo, other.Lo), max64(iv.Hi, other.Hi), true}
}

// Meet returns the intersection of the operands (used when refining a range
// with branch-condition information).
func (iv Interval) Meet(other Interval) Interval {
	if !iv.ok || !other.ok {
		return Empty()
	}
	lo, hi := max64(iv.Lo, other.Lo), min64(iv.Hi, other.Hi)
	if lo > hi {
		return Empty()
	}
	return Interval{lo, hi, true}
}

// Widen accelerates fixpoint convergence: any bound that moved since prev
// jumps to its extreme. Standard interval widening.
func Widen(prev, next Interval) Interval {
	if prev.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return prev
	}
	lo, hi := prev.Lo, prev.Hi
	if next.Lo < prev.Lo {
		lo = math.MinInt64
	}
	if next.Hi > prev.Hi {
		hi = math.MaxInt64
	}
	return Interval{lo, hi, true}
}

// Equal reports exact equality of intervals.
func (iv Interval) Equal(other Interval) bool {
	if iv.ok != other.ok {
		return false
	}
	return !iv.ok || (iv.Lo == other.Lo && iv.Hi == other.Hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SignificantBytes returns the number of bytes k (1..8) such that
// sign-extending the low k bytes of v reproduces v.
func SignificantBytes(v int64) int {
	for k := 1; k < 8; k++ {
		shift := uint(64 - 8*k)
		if v<<shift>>shift == v {
			return k
		}
	}
	return 8
}

// Bytes returns the number of bytes needed to represent every value of the
// interval in sign-extended two's complement. Empty intervals need 1 byte.
func (iv Interval) Bytes() int {
	if !iv.ok {
		return 1
	}
	lo, hi := SignificantBytes(iv.Lo), SignificantBytes(iv.Hi)
	if lo > hi {
		return lo
	}
	return hi
}

// FitsBytes reports whether every value of the interval is representable by
// sign-extending k bytes.
func (iv Interval) FitsBytes(k int) bool { return iv.Bytes() <= k }

// WidthBounds returns the interval of all values representable in k
// sign-extended bytes: [-2^(8k-1), 2^(8k-1)-1].
func WidthBounds(k int) Interval {
	if k >= 8 {
		return Top()
	}
	half := int64(1) << uint(8*k-1)
	return Interval{-half, half - 1, true}
}

// UnsignedWidthBounds returns [0, 2^(8k)-1], the range of a k-byte
// zero-extended load.
func UnsignedWidthBounds(k int) Interval {
	if k >= 8 {
		return Top()
	}
	return Interval{0, int64(1)<<uint(8*k) - 1, true}
}
