// Package cache implements set-associative write-back caches with LRU
// replacement, composed into the two-level hierarchy of Table 2.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	HitCycles int
}

// line is one cache line's metadata.
type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   int64 // last-use stamp
}

// Cache is one set-associative level.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	stamp int64

	Hits       int64
	Misses     int64
	Writebacks int64
}

// New builds a cache; the configuration must divide evenly.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: bad geometry", cfg.Name)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if nsets <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by assoc*line", cfg.Name, cfg.SizeBytes)
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// AccessResult describes the outcome of one access.
type AccessResult struct {
	Hit        bool
	Writeback  bool // a dirty victim was evicted
	VictimAddr int64
}

// Access touches addr; write marks the line dirty. On a miss, the line is
// filled (the caller models the lower-level access) and the LRU victim is
// evicted, reporting any required writeback.
func (c *Cache) Access(addr int64, write bool) AccessResult {
	c.stamp++
	set := int((addr / int64(c.cfg.LineBytes)) % int64(c.nsets))
	tag := addr / int64(c.cfg.LineBytes) / int64(c.nsets)
	lines := c.sets[set]

	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.Hits++
			lines[i].lru = c.stamp
			if write {
				lines[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}

	c.Misses++
	// Victim: invalid first, else LRU.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if lines[victim].valid && lines[victim].dirty {
		c.Writebacks++
		res.Writeback = true
		res.VictimAddr = (lines[victim].tag*int64(c.nsets) + int64(set)) * int64(c.cfg.LineBytes)
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Hierarchy is the Table 2 memory system: split L1 I/D over a unified L2
// over main memory.
type Hierarchy struct {
	L1I, L1D, L2 *Cache

	L2HitCycles   int
	MemFirstChunk int
	MemInterChunk int
	L1MissPenalty int
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2  Config
	MemFirstChunk int
	MemInterChunk int
}

// DefaultHierarchyConfig returns Table 2's memory system: 64KB 2-way
// 32-byte-line L1s with a 6-cycle miss penalty, a 256KB 4-way
// 64-byte-line L2 with 6-cycle hits, and a 16-cycle-first-chunk memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:           Config{Name: "L1I", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitCycles: 1},
		L1D:           Config{Name: "L1D", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitCycles: 1},
		L2:            Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 4, LineBytes: 64, HitCycles: 6},
		MemFirstChunk: 16,
		MemInterChunk: 2,
	}
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		L1I: l1i, L1D: l1d, L2: l2,
		L2HitCycles:   cfg.L2.HitCycles,
		MemFirstChunk: cfg.MemFirstChunk,
		MemInterChunk: cfg.MemInterChunk,
		L1MissPenalty: 6,
	}, nil
}

// DataAccess performs a load/store and returns its latency in cycles and
// whether each level was accessed (for energy accounting).
func (h *Hierarchy) DataAccess(addr int64, write bool) (cycles int, l2Accessed bool) {
	r1 := h.L1D.Access(addr, write)
	if r1.Hit {
		return h.L1D.cfg.HitCycles, false
	}
	cycles = h.L1D.cfg.HitCycles + h.L1MissPenalty
	r2 := h.L2.Access(addr, false)
	if r1.Writeback {
		h.L2.Access(r1.VictimAddr, true)
	}
	if !r2.Hit {
		// Line fill from memory: first chunk + remaining chunks of the
		// L2 line over a 16-byte bus.
		chunks := h.L2.cfg.LineBytes / 16
		cycles += h.MemFirstChunk + (chunks-1)*h.MemInterChunk
	} else {
		cycles += h.L2HitCycles
	}
	return cycles, true
}

// InstrAccess models a fetch-line access; returns latency and whether L2
// was reached.
func (h *Hierarchy) InstrAccess(addr int64) (cycles int, l2Accessed bool) {
	r1 := h.L1I.Access(addr, false)
	if r1.Hit {
		return h.L1I.cfg.HitCycles, false
	}
	cycles = h.L1I.cfg.HitCycles + h.L1MissPenalty
	r2 := h.L2.Access(addr, false)
	if !r2.Hit {
		chunks := h.L2.cfg.LineBytes / 16
		cycles += h.MemFirstChunk + (chunks-1)*h.MemInterChunk
	} else {
		cycles += h.L2HitCycles
	}
	return cycles, true
}
