package cache

import (
	"math/rand"
	"testing"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, Config{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 32, HitCycles: 1})
	if r := c.Access(100, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(100, false); !r.Hit {
		t.Error("second access missed")
	}
	// Same line, different offset: hit.
	if r := c.Access(96, false); !r.Hit {
		t.Error("same-line access missed")
	}
	// Different line: miss.
	if r := c.Access(100+32, false); r.Hit {
		t.Error("next-line access hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2 sets: lines mapping to set 0 are multiples of 64.
	c := mustCache(t, Config{Name: "t", SizeBytes: 128, Assoc: 2, LineBytes: 32, HitCycles: 1})
	c.Access(0, false)   // set 0, way A
	c.Access(64, false)  // set 0, way B
	c.Access(0, false)   // touch A: B becomes LRU
	c.Access(128, false) // evicts B (64)
	if r := c.Access(0, false); !r.Hit {
		t.Error("recently used line evicted")
	}
	if r := c.Access(64, false); r.Hit {
		t.Error("LRU line not evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := mustCache(t, Config{Name: "t", SizeBytes: 64, Assoc: 1, LineBytes: 32, HitCycles: 1})
	c.Access(0, true) // dirty line in set 0
	r := c.Access(64, false)
	if !r.Writeback {
		t.Error("dirty eviction without writeback")
	}
	if r.VictimAddr != 0 {
		t.Errorf("victim address %#x, want 0", r.VictimAddr)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
	// Clean eviction: no writeback.
	r = c.Access(0, false)
	if r.Writeback {
		t.Error("clean eviction reported writeback")
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := New(Config{SizeBytes: 100, Assoc: 3, LineBytes: 32}); err == nil {
		t.Error("accepted indivisible geometry")
	}
	if _, err := New(Config{SizeBytes: 0, Assoc: 1, LineBytes: 32}); err == nil {
		t.Error("accepted zero size")
	}
}

func TestMissRateSmallWorkingSet(t *testing.T) {
	c := mustCache(t, Config{Name: "t", SizeBytes: 4096, Assoc: 2, LineBytes: 32, HitCycles: 1})
	r := rand.New(rand.NewSource(5))
	// Working set fits: after warmup the miss rate is near zero.
	for i := 0; i < 10000; i++ {
		c.Access(int64(r.Intn(2048)), false)
	}
	if c.MissRate() > 0.05 {
		t.Errorf("miss rate %.3f for a fitting working set", c.MissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold access: L1 miss, L2 miss -> memory latency.
	lat, l2 := h.DataAccess(1<<16, false)
	if !l2 {
		t.Error("cold access did not reach L2")
	}
	coldLat := lat
	// Warm access: L1 hit.
	lat, l2 = h.DataAccess(1<<16, false)
	if l2 || lat != 1 {
		t.Errorf("warm access: latency %d, l2=%v", lat, l2)
	}
	if coldLat <= 7 {
		t.Errorf("cold latency %d too small (must include memory)", coldLat)
	}
	// Instruction side works the same way.
	ilat, il2 := h.InstrAccess(0)
	if !il2 || ilat <= 1 {
		t.Errorf("cold fetch: %d, %v", ilat, il2)
	}
	if ilat2, _ := h.InstrAccess(0); ilat2 != 1 {
		t.Errorf("warm fetch latency %d", ilat2)
	}
}

// TestHierarchyL2Inclusion: an L1-evicted line can still hit in L2.
func TestHierarchyL2Catch(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Touch a line, then blow the L1 with a large stride scan but stay
	// within L2 reach.
	h.DataAccess(0, false)
	for i := int64(1); i < 3000; i++ {
		h.DataAccess(i*32, false)
	}
	before := h.L2.Hits
	h.DataAccess(0, false)
	if h.L2.Hits <= before {
		t.Skip("line also left L2 (valid for this configuration)")
	}
}
