package isa

// OpcodeSet describes which operand widths the ISA encodes for each
// operation class. Section 4.3 of the paper analyses which narrow opcodes
// are worth adding to the Alpha ISA: memory operations already exist at all
// widths; MUL stays 64-bit only; ADD gains byte and halfword forms; SUB
// gains a byte form; logical operations, shifts, conditional moves and
// compares gain byte and word forms.
//
// When a width is not available, value range propagation must fall back to
// the next wider encodable width (the paper's rule: "whenever a wider
// instruction is used, the values read at run time contain significant data
// for all the input bytes").
type OpcodeSet struct {
	name    string
	allowed [NumClasses][4]bool // class × width index (0=W8..3=W64)
}

func widthIndex(w Width) int {
	switch w {
	case W8:
		return 0
	case W16:
		return 1
	case W32:
		return 2
	default:
		return 3
	}
}

// Name identifies the opcode set in reports.
func (s *OpcodeSet) Name() string { return s.name }

// Supports reports whether the class can be encoded at width w.
func (s *OpcodeSet) Supports(class Class, w Width) bool {
	return s.allowed[class][widthIndex(w)]
}

// Narrowest returns the narrowest encodable width >= want for the class.
// The widest width is always encodable.
func (s *OpcodeSet) Narrowest(class Class, want Width) Width {
	for _, w := range Widths {
		if w < want {
			continue
		}
		if s.Supports(class, w) {
			return w
		}
	}
	return W64
}

func (s *OpcodeSet) allow(class Class, ws ...Width) {
	for _, w := range ws {
		s.allowed[class][widthIndex(w)] = true
	}
}

// FullOpcodeSet returns an OpcodeSet with every class encodable at every
// width — an idealised ISA used for limit studies.
func FullOpcodeSet() *OpcodeSet {
	s := &OpcodeSet{name: "full"}
	for c := ClassNone; c < Class(NumClasses); c++ {
		s.allow(c, W8, W16, W32, W64)
	}
	return s
}

// PaperOpcodeSet returns the extension set chosen in Section 4.3:
//
//   - loads/stores: all widths (already in the Alpha ISA)
//   - ADD: byte, halfword, word, doubleword
//   - SUB: byte, word, doubleword (no halfword — too rare)
//   - logical, shift, compare, cmov: byte, word, doubleword
//   - MSK/EXT family: all widths (already in the ISA)
//   - MUL: doubleword only
func PaperOpcodeSet() *OpcodeSet {
	s := &OpcodeSet{name: "paper"}
	s.allow(ClassLoad, W8, W16, W32, W64)
	s.allow(ClassStore, W8, W16, W32, W64)
	s.allow(ClassAdd, W8, W16, W32, W64)
	s.allow(ClassSub, W8, W32, W64)
	s.allow(ClassLogic, W8, W32, W64)
	s.allow(ClassShift, W8, W32, W64)
	s.allow(ClassCmp, W8, W32, W64)
	s.allow(ClassCmov, W8, W32, W64)
	s.allow(ClassMask, W8, W16, W32, W64)
	s.allow(ClassMul, W64)
	s.allow(ClassBranch, W64)
	s.allow(ClassOther, W8, W16, W32, W64)
	s.allow(ClassNone, W64)
	return s
}

// BaseOpcodeSet returns the unextended ISA: only memory operations and the
// mask family are width-annotated; every computational opcode is 64-bit.
// This models the pre-extension Alpha and is the "non" baseline of Fig. 7.
func BaseOpcodeSet() *OpcodeSet {
	s := &OpcodeSet{name: "base"}
	s.allow(ClassLoad, W8, W16, W32, W64)
	s.allow(ClassStore, W8, W16, W32, W64)
	s.allow(ClassMask, W8, W16, W32, W64)
	for _, c := range []Class{ClassAdd, ClassSub, ClassMul, ClassLogic,
		ClassShift, ClassCmp, ClassCmov, ClassBranch, ClassOther, ClassNone} {
		s.allow(c, W64)
	}
	return s
}
