package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInstruction draws a structurally valid instruction.
func randomInstruction(r *rand.Rand) Instruction {
	op := Op(1 + r.Intn(NumOps-1))
	in := Instruction{
		Op:    op,
		Width: Widths[r.Intn(4)],
		Rd:    Reg(r.Intn(NumRegs)),
		Ra:    Reg(r.Intn(NumRegs)),
		Rb:    Reg(r.Intn(NumRegs)),
	}
	if IsBranch(op) && op != OpRET {
		in.Target = r.Intn(1 << 20)
	} else {
		in.Imm = int64(int32(r.Uint32()))
		in.HasImm = r.Intn(2) == 0
	}
	return in
}

// TestEncodeDecodeRoundTrip: decode(encode(x)) == x for every valid
// instruction shape.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randomInstruction(r)
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out, err := Decode(word)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		// Branch instructions don't carry Imm/HasImm; normalise.
		if IsBranch(in.Op) && in.Op != OpRET {
			in.Imm, in.HasImm = 0, false
			out.Imm, out.HasImm = 0, false
		}
		if in != out {
			t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	if _, err := Encode(Instruction{Op: OpLDA, Imm: 1 << 40}); err == nil {
		t.Error("expected error for oversized immediate")
	}
	if _, err := Encode(Instruction{Op: OpBR, Target: -1}); err == nil {
		t.Error("expected error for negative target")
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("opcode 0 must not decode")
	}
	if _, err := Decode(uint64(200) << 56); err == nil {
		t.Error("opcode 200 must not decode")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ins := make([]Instruction, 500)
	for i := range ins {
		ins[i] = randomInstruction(r)
	}
	words, err := EncodeProgram(ins)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ins) {
		t.Fatalf("length mismatch %d vs %d", len(back), len(ins))
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for op := OpLDA; op < Op(NumOps); op++ {
		name := op.String()
		back, ok := ParseOp(name)
		if !ok || back != op {
			t.Errorf("ParseOp(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := ParseOp("bogus"); ok {
		t.Error("ParseOp accepted bogus mnemonic")
	}
}

func TestParseWidthRoundTrip(t *testing.T) {
	for _, w := range Widths {
		back, ok := ParseWidth(w.String())
		if !ok || back != w {
			t.Errorf("ParseWidth(%q) failed", w.String())
		}
	}
}

func TestWidthForBytes(t *testing.T) {
	cases := map[int]Width{0: W8, 1: W8, 2: W16, 3: W32, 4: W32, 5: W64, 8: W64, 9: W64}
	for n, want := range cases {
		if got := WidthForBytes(n); got != want {
			t.Errorf("WidthForBytes(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestClassCoverage(t *testing.T) {
	for op := OpLDA; op < Op(NumOps); op++ {
		if ClassOf(op) == ClassNone {
			t.Errorf("opcode %v has no class", op)
		}
	}
}

func TestUsesAndDestConsistency(t *testing.T) {
	// Every register reported by Uses must be a plausible field, and
	// HasDest must agree with Dest.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		in := randomInstruction(r)
		uses, n := in.Uses()
		for k := 0; k < n; k++ {
			if uses[k] >= NumRegs {
				t.Fatalf("%v reports bogus use %d", in, uses[k])
			}
		}
		d, ok := in.Dest()
		if ok != (HasDest(in.Op) && in.Rd != ZeroReg) {
			t.Fatalf("%v: Dest ok=%v inconsistent with HasDest", in, ok)
		}
		if ok && d != in.Rd {
			t.Fatalf("%v: Dest = %v, want %v", in, d, in.Rd)
		}
	}
}

func TestZeroRegWritesDiscarded(t *testing.T) {
	in := Instruction{Op: OpADD, Rd: ZeroReg, Ra: 1, Rb: 2}
	if _, ok := in.Dest(); ok {
		t.Error("write to rz reported as a destination")
	}
}

func TestOpcodeSets(t *testing.T) {
	paper := PaperOpcodeSet()
	// §4.3: MUL stays 64-bit only; ADD has all four widths; SUB has no
	// halfword form.
	if paper.Supports(ClassMul, W8) || paper.Supports(ClassMul, W32) {
		t.Error("paper set must not encode narrow MUL")
	}
	for _, w := range Widths {
		if !paper.Supports(ClassAdd, w) {
			t.Errorf("paper set missing ADD at %v", w)
		}
	}
	if paper.Supports(ClassSub, W16) {
		t.Error("paper set must not encode halfword SUB")
	}
	// Narrowest falls back to the next wider encodable width.
	if got := paper.Narrowest(ClassSub, W16); got != W32 {
		t.Errorf("Narrowest(SUB, h) = %v, want w", got)
	}
	if got := paper.Narrowest(ClassMul, W8); got != W64 {
		t.Errorf("Narrowest(MUL, b) = %v, want q", got)
	}

	full := FullOpcodeSet()
	base := BaseOpcodeSet()
	for _, w := range Widths {
		if !full.Supports(ClassMul, w) {
			t.Errorf("full set missing MUL at %v", w)
		}
	}
	if base.Supports(ClassAdd, W8) {
		t.Error("base set must not encode narrow ADD")
	}
	if !base.Supports(ClassLoad, W8) {
		t.Error("base set must keep byte loads (they exist in the Alpha ISA)")
	}
}

func TestWidthPropertyQuick(t *testing.T) {
	// Bits and Bytes are consistent.
	f := func(i uint8) bool {
		w := Widths[int(i)%4]
		return w.Bits() == w.Bytes()*8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
