// Package isa defines OG64, a 64-bit Alpha-like RISC instruction set with
// width-annotated opcodes, used throughout the operand-gating reproduction.
//
// OG64 mirrors the operand model of the paper's enhanced Alpha ISA: 32
// integer registers of 64 bits (r31 hardwired to zero), two's-complement
// wraparound arithmetic, and opcodes that carry an operand width of 8, 16,
// 32 or 64 bits. Loads and stores exist at every width; ALU opcodes may be
// restricted to a subset of widths by an OpcodeSet (Section 4.3 of the
// paper discusses exactly which narrow opcodes are worth encoding).
package isa

import "fmt"

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// ZeroReg is hardwired to zero, like Alpha's r31.
const ZeroReg = 31

// Reg names an architectural register.
type Reg uint8

// String returns the assembly name of the register.
func (r Reg) String() string {
	if r == ZeroReg {
		return "rz"
	}
	return fmt.Sprintf("r%d", r)
}

// Width is an operand width carried by an opcode.
type Width uint8

// Operand widths. The numeric value is the width in bytes.
const (
	W8  Width = 1
	W16 Width = 2
	W32 Width = 4
	W64 Width = 8
)

// Widths lists all operand widths from narrowest to widest.
var Widths = [4]Width{W8, W16, W32, W64}

// Bits returns the width in bits.
func (w Width) Bits() int { return int(w) * 8 }

// Bytes returns the width in bytes.
func (w Width) Bytes() int { return int(w) }

// String returns the assembly suffix for the width.
func (w Width) String() string {
	switch w {
	case W8:
		return "b"
	case W16:
		return "h"
	case W32:
		return "w"
	case W64:
		return "q"
	}
	return fmt.Sprintf("Width(%d)", uint8(w))
}

// WidthForBytes returns the narrowest Width that spans n bytes.
func WidthForBytes(n int) Width {
	switch {
	case n <= 1:
		return W8
	case n <= 2:
		return W16
	case n <= 4:
		return W32
	default:
		return W64
	}
}

// ParseWidth converts an assembly suffix ("b","h","w","q") to a Width.
func ParseWidth(s string) (Width, bool) {
	switch s {
	case "b":
		return W8, true
	case "h":
		return W16, true
	case "w":
		return W32, true
	case "q":
		return W64, true
	}
	return 0, false
}

// Op is an OG64 opcode (without its width annotation).
type Op uint8

// Opcodes. Arithmetic/logical ops take rd, ra, rb-or-imm. Compare ops write
// 0 or 1. CMOV copies ra to rd when the condition on rc holds. MSKL zeroes
// all but the low bytes; EXTB extracts one byte; SEXT sign-extends from the
// operand width. Branches compare a register against zero, like Alpha.
const (
	OpInvalid Op = iota

	// Constant / address formation.
	OpLDA // rd = ra + imm (64-bit address/constant arithmetic)

	// Memory.
	OpLD // rd = mem[ra+imm], zero-extended for W8/W16, sign for W32 (Alpha LDL), full for W64
	OpST // mem[ra+imm] = rb, low Width bytes

	// Integer arithmetic.
	OpADD
	OpSUB
	OpMUL

	// Logical.
	OpAND
	OpOR
	OpXOR
	OpBIC // rd = ra &^ rb

	// Shifts. Shift amount is rb (or imm) masked to 6 bits.
	OpSLL
	OpSRL
	OpSRA

	// Byte manipulation (Alpha MSK/EXT family).
	OpMSKL // rd = ra & low-Width-bytes mask (keep low bytes, zero rest)
	OpEXTB // rd = byte (rb&7) of ra, zero-extended
	OpSEXT // rd = ra sign-extended from Width

	// Compares; result is 0 or 1.
	OpCMPEQ
	OpCMPLT  // signed
	OpCMPLE  // signed
	OpCMPULT // unsigned
	OpCMPULE // unsigned

	// Conditional moves: rd = ra if cond(rb) else rd.
	OpCMOVEQ
	OpCMOVNE
	OpCMOVLT
	OpCMOVGE

	// Control flow. Branches test ra against zero; target is an
	// instruction index (resolved from labels by the assembler).
	OpBR  // unconditional
	OpBEQ // branch if ra == 0
	OpBNE
	OpBLT
	OpBGE
	OpBGT
	OpBLE
	OpJSR  // call: link register rd = return index, jump to target
	OpRET  // return to address in ra
	OpHALT // stop execution

	// Diagnostics: append the low Width bytes of ra to the program's
	// output buffer. Output is part of observable behaviour, so the
	// equivalence checker compares it; it also gives workloads a way to
	// produce results that dead-code elimination must preserve.
	OpOUT

	numOps // sentinel
)

// NumOps is the number of defined opcodes (for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpLDA:     "lda",
	OpLD:      "ld",
	OpST:      "st",
	OpADD:     "add",
	OpSUB:     "sub",
	OpMUL:     "mul",
	OpAND:     "and",
	OpOR:      "or",
	OpXOR:     "xor",
	OpBIC:     "bic",
	OpSLL:     "sll",
	OpSRL:     "srl",
	OpSRA:     "sra",
	OpMSKL:    "mskl",
	OpEXTB:    "extb",
	OpSEXT:    "sext",
	OpCMPEQ:   "cmpeq",
	OpCMPLT:   "cmplt",
	OpCMPLE:   "cmple",
	OpCMPULT:  "cmpult",
	OpCMPULE:  "cmpule",
	OpCMOVEQ:  "cmoveq",
	OpCMOVNE:  "cmovne",
	OpCMOVLT:  "cmovlt",
	OpCMOVGE:  "cmovge",
	OpBR:      "br",
	OpBEQ:     "beq",
	OpBNE:     "bne",
	OpBLT:     "blt",
	OpBGE:     "bge",
	OpBGT:     "bgt",
	OpBLE:     "ble",
	OpJSR:     "jsr",
	OpRET:     "ret",
	OpHALT:    "halt",
	OpOUT:     "out",
}

// String returns the base mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// ParseOp converts a base mnemonic to an Op.
func ParseOp(s string) (Op, bool) {
	for op, name := range opNames {
		if name == s && Op(op) != OpInvalid {
			return Op(op), true
		}
	}
	return OpInvalid, false
}

// Class groups opcodes by the paper's operation-type taxonomy (Table 3)
// and by functional-unit requirements.
type Class uint8

// Operation classes.
const (
	ClassNone  Class = iota
	ClassAdd         // ADD, LDA
	ClassSub         // SUB
	ClassMul         // MUL
	ClassLogic       // AND, OR, XOR, BIC
	ClassShift       // SLL, SRL, SRA
	ClassMask        // MSKL, EXTB, SEXT
	ClassCmp         // CMPxx
	ClassCmov        // CMOVxx
	ClassLoad
	ClassStore
	ClassBranch // conditional + unconditional + JSR/RET
	ClassOther  // HALT, OUT
)

// NumClasses is the number of operation classes (for table sizing).
const NumClasses = int(ClassOther) + 1

var classNames = [...]string{
	ClassNone:   "none",
	ClassAdd:    "ADD",
	ClassSub:    "SUB",
	ClassMul:    "MUL",
	ClassLogic:  "LOGIC",
	ClassShift:  "SHIFT",
	ClassMask:   "MSK",
	ClassCmp:    "CMP",
	ClassCmov:   "CMOV",
	ClassLoad:   "LOAD",
	ClassStore:  "STORE",
	ClassBranch: "BRANCH",
	ClassOther:  "OTHER",
}

// String returns the table-3-style class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassOf returns the operation class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpADD, OpLDA:
		return ClassAdd
	case OpSUB:
		return ClassSub
	case OpMUL:
		return ClassMul
	case OpAND, OpOR, OpXOR, OpBIC:
		return ClassLogic
	case OpSLL, OpSRL, OpSRA:
		return ClassShift
	case OpMSKL, OpEXTB, OpSEXT:
		return ClassMask
	case OpCMPEQ, OpCMPLT, OpCMPLE, OpCMPULT, OpCMPULE:
		return ClassCmp
	case OpCMOVEQ, OpCMOVNE, OpCMOVLT, OpCMOVGE:
		return ClassCmov
	case OpLD:
		return ClassLoad
	case OpST:
		return ClassStore
	case OpBR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpJSR, OpRET:
		return ClassBranch
	case OpHALT, OpOUT:
		return ClassOther
	}
	return ClassNone
}

// IsBranch reports whether op redirects control flow.
func IsBranch(op Op) bool { return ClassOf(op) == ClassBranch }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func IsMem(op Op) bool { return op == OpLD || op == OpST }

// HasDest reports whether op writes a destination register.
func HasDest(op Op) bool {
	switch op {
	case OpST, OpBR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpRET, OpHALT, OpOUT:
		return false
	}
	return op != OpInvalid
}

// Instruction is one decoded OG64 instruction. Imm is used instead of Rb
// when HasImm is set. Target is an instruction index for branches.
type Instruction struct {
	Op     Op
	Width  Width
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Imm    int64
	HasImm bool
	Target int // branch/call target (instruction index)
}

// Uses returns the registers read by the instruction. The second return
// value gives how many entries of the array are valid.
//
// Conditional moves read three registers: the condition (Ra), the source
// (Rb or the immediate), and the old destination value (Rd), which is
// preserved when the move does not fire.
func (in *Instruction) Uses() ([3]Reg, int) {
	var u [3]Reg
	switch in.Op {
	case OpLDA:
		u[0] = in.Ra
		return u, 1
	case OpLD:
		u[0] = in.Ra
		return u, 1
	case OpST:
		u[0] = in.Ra
		u[1] = in.Rb
		return u, 2
	case OpBR, OpJSR, OpHALT:
		return u, 0
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpRET, OpOUT:
		u[0] = in.Ra
		return u, 1
	case OpSEXT, OpMSKL:
		u[0] = in.Ra
		return u, 1
	case OpCMOVEQ, OpCMOVNE, OpCMOVLT, OpCMOVGE:
		u[0] = in.Ra
		if in.HasImm {
			u[1] = in.Rd
			return u, 2
		}
		u[1] = in.Rb
		u[2] = in.Rd
		return u, 3
	case OpInvalid:
		return u, 0
	}
	// Generic three-operand ALU shape.
	u[0] = in.Ra
	if in.HasImm {
		return u, 1
	}
	u[1] = in.Rb
	return u, 2
}

// Dest returns the destination register and whether one exists.
func (in *Instruction) Dest() (Reg, bool) {
	if !HasDest(in.Op) {
		return 0, false
	}
	if in.Rd == ZeroReg {
		return 0, false // writes to rz are discarded
	}
	return in.Rd, true
}

// String disassembles the instruction (without label resolution).
func (in *Instruction) String() string {
	suffix := ""
	if widthMatters(in.Op) {
		suffix = "." + in.Width.String()
	}
	switch in.Op {
	case OpHALT:
		return "halt"
	case OpRET:
		return fmt.Sprintf("ret %s", in.Ra)
	case OpBR:
		return fmt.Sprintf("br @%d", in.Target)
	case OpJSR:
		return fmt.Sprintf("jsr %s, @%d", in.Rd, in.Target)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE:
		return fmt.Sprintf("%s %s, @%d", in.Op, in.Ra, in.Target)
	case OpLDA:
		return fmt.Sprintf("lda %s, %d(%s)", in.Rd, in.Imm, in.Ra)
	case OpLD:
		return fmt.Sprintf("ld%s %s, %d(%s)", suffix, in.Rd, in.Imm, in.Ra)
	case OpST:
		return fmt.Sprintf("st%s %s, %d(%s)", suffix, in.Rb, in.Imm, in.Ra)
	case OpOUT:
		return fmt.Sprintf("out%s %s", suffix, in.Ra)
	case OpSEXT:
		return fmt.Sprintf("sext%s %s, %s", suffix, in.Rd, in.Ra)
	case OpMSKL:
		return fmt.Sprintf("mskl%s %s, %s", suffix, in.Rd, in.Ra)
	}
	if in.HasImm {
		return fmt.Sprintf("%s%s %s, %s, #%d", in.Op, suffix, in.Rd, in.Ra, in.Imm)
	}
	return fmt.Sprintf("%s%s %s, %s, %s", in.Op, suffix, in.Rd, in.Ra, in.Rb)
}

// widthMatters reports whether the opcode's behaviour or encoding carries a
// width annotation in assembly.
func widthMatters(op Op) bool {
	switch op {
	case OpLDA, OpBR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpJSR, OpRET, OpHALT:
		return false
	}
	return op != OpInvalid
}

// WidthAffectsSemantics reports whether narrowing the opcode's width can
// change the architectural result (as opposed to merely gating energy).
// For LD/ST/MSKL/SEXT/OUT the width is part of the semantics; for plain ALU
// ops the paper's model computes full-width results, and the width opcode
// is a contract that the upper bytes are never useful downstream.
func WidthAffectsSemantics(op Op) bool {
	switch op {
	case OpLD, OpST, OpMSKL, OpSEXT, OpOUT:
		return true
	}
	return false
}

// Latency returns the execution latency in cycles for the functional-unit
// stage of the pipeline model.
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassMul:
		return 7
	case ClassLoad, ClassStore:
		return 1 // plus cache access time, modelled separately
	default:
		return 1
	}
}
