package isa

import "fmt"

// OG64 instructions encode into one 64-bit word. The layout is:
//
//	bits 63..56  opcode (8)
//	bits 55..54  width  (2)   00=b 01=h 10=w 11=q
//	bits 53..49  rd     (5)
//	bits 48..44  ra     (5)
//	bits 43..39  rb     (5)
//	bit  38      hasImm (1)
//	bits 37..32  reserved (6)
//	bits 31..0   imm / target (32, sign-extended immediate)
//
// Branch targets occupy the immediate field as unsigned instruction
// indices; the assembler guarantees they fit.

const (
	encOpShift    = 56
	encWidthShift = 54
	encRdShift    = 49
	encRaShift    = 44
	encRbShift    = 39
	encImmFlagBit = 38
)

func widthCode(w Width) uint64 {
	switch w {
	case W8:
		return 0
	case W16:
		return 1
	case W32:
		return 2
	default:
		return 3
	}
}

func widthFromCode(c uint64) Width {
	switch c & 3 {
	case 0:
		return W8
	case 1:
		return W16
	case 2:
		return W32
	default:
		return W64
	}
}

// Encode packs the instruction into its 64-bit binary form. It returns an
// error when the immediate or branch target does not fit the 32-bit field.
func Encode(in Instruction) (uint64, error) {
	var word uint64
	word |= uint64(in.Op) << encOpShift
	word |= widthCode(in.Width) << encWidthShift
	word |= (uint64(in.Rd) & 31) << encRdShift
	word |= (uint64(in.Ra) & 31) << encRaShift
	word |= (uint64(in.Rb) & 31) << encRbShift
	if in.HasImm {
		word |= 1 << encImmFlagBit
	}
	if IsBranch(in.Op) && in.Op != OpRET {
		if in.Target < 0 || in.Target > 1<<31-1 {
			return 0, fmt.Errorf("isa: branch target %d out of range", in.Target)
		}
		word |= uint64(uint32(in.Target))
		return word, nil
	}
	if in.Imm < -(1<<31) || in.Imm > 1<<31-1 {
		return 0, fmt.Errorf("isa: immediate %d out of 32-bit range", in.Imm)
	}
	word |= uint64(uint32(in.Imm))
	return word, nil
}

// Decode unpacks a 64-bit binary word into an Instruction. It returns an
// error for undefined opcodes.
func Decode(word uint64) (Instruction, error) {
	op := Op(word >> encOpShift)
	if op == OpInvalid || int(op) >= NumOps {
		return Instruction{}, fmt.Errorf("isa: undefined opcode %d", uint8(op))
	}
	in := Instruction{
		Op:     op,
		Width:  widthFromCode(word >> encWidthShift),
		Rd:     Reg((word >> encRdShift) & 31),
		Ra:     Reg((word >> encRaShift) & 31),
		Rb:     Reg((word >> encRbShift) & 31),
		HasImm: word&(1<<encImmFlagBit) != 0,
	}
	if IsBranch(op) && op != OpRET {
		in.Target = int(uint32(word))
		return in, nil
	}
	in.Imm = int64(int32(uint32(word)))
	return in, nil
}

// EncodeProgram encodes a whole instruction sequence.
func EncodeProgram(ins []Instruction) ([]uint64, error) {
	words := make([]uint64, len(ins))
	for i := range ins {
		w, err := Encode(ins[i])
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, ins[i].String(), err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeProgram decodes a whole binary image.
func DecodeProgram(words []uint64) ([]Instruction, error) {
	ins := make([]Instruction, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		ins[i] = in
	}
	return ins, nil
}
