package prog

import (
	"opgate/internal/isa"
)

// Def-use analysis at the register level within one function, via classic
// reaching definitions over basic blocks. Definitions are (instruction
// index, register) pairs; JSR kills the caller-saved state conservatively
// (return and argument registers may be rewritten by the callee).

// DefUse holds reaching-definition chains for one function.
type DefUse struct {
	Fn *Func
	// UD maps an instruction's operand use to its reaching definitions:
	// UD[insIdx][reg] = sorted list of defining instruction indices, where
	// -1 denotes "live-in to the function" (argument or unknown).
	UD map[int]map[isa.Reg][]int
	// DU maps a defining instruction to the instructions using its value:
	// DU[defIdx] = sorted list of using instruction indices.
	DU map[int][]int
}

// callClobbered lists registers conservatively rewritten by a call.
var callClobbered = func() []isa.Reg {
	regs := []isa.Reg{RegRet, RegLink}
	for r := RegArg0; r <= RegArg5; r++ {
		regs = append(regs, r)
	}
	// r1..r8 are caller-saved temporaries in this convention.
	for r := isa.Reg(1); r <= 8; r++ {
		regs = append(regs, r)
	}
	return regs
}()

// CallClobbered exposes the caller-saved register list (used by VRP to
// invalidate ranges across calls).
func CallClobbered() []isa.Reg { return callClobbered }

// calleeVisible lists registers a callee may legitimately read: arguments,
// the stack and global pointers, and every callee-saved register (which the
// callee may spill — a full-width observation). The demand analysis treats
// a JSR as a full-width pseudo-use of these, so values flowing into calls
// are never narrowed below their significant bytes.
var calleeVisible = func() []isa.Reg {
	regs := []isa.Reg{RegSP, RegGP}
	for r := RegArg0; r <= RegArg5; r++ {
		regs = append(regs, r)
	}
	for r := isa.Reg(9); r <= 15; r++ {
		regs = append(regs, r)
	}
	for r := isa.Reg(22); r <= 25; r++ {
		regs = append(regs, r)
	}
	regs = append(regs, isa.Reg(27), isa.Reg(28))
	return regs
}()

// returnVisible lists registers a caller may read after this function
// returns: the return value, the preserved callee-saved set, and the stack
// and global pointers. RET is a full-width pseudo-use of these.
var returnVisible = func() []isa.Reg {
	regs := []isa.Reg{RegRet, RegSP, RegGP}
	for r := isa.Reg(9); r <= 15; r++ {
		regs = append(regs, r)
	}
	for r := isa.Reg(22); r <= 25; r++ {
		regs = append(regs, r)
	}
	regs = append(regs, isa.Reg(27), isa.Reg(28))
	return regs
}()

// PseudoUses returns the registers conservatively read by control-transfer
// instructions beyond their explicit operands.
func PseudoUses(op isa.Op) []isa.Reg {
	switch op {
	case isa.OpJSR:
		return calleeVisible
	case isa.OpRET:
		return returnVisible
	}
	return nil
}

// BuildDefUse computes use-def and def-use chains for f.
func BuildDefUse(p *Program, f *Func) *DefUse {
	du := &DefUse{
		Fn: f,
		UD: make(map[int]map[isa.Reg][]int),
		DU: make(map[int][]int),
	}

	// in[b][reg] = set of reaching def indices (-1 for live-in).
	type defset map[int]bool
	in := make([]map[isa.Reg]defset, len(f.Blocks))
	out := make([]map[isa.Reg]defset, len(f.Blocks))
	for i := range in {
		in[i] = make(map[isa.Reg]defset)
		out[i] = make(map[isa.Reg]defset)
	}
	// Entry block: every register live-in.
	entryIn := in[0]
	for r := 0; r < isa.NumRegs; r++ {
		entryIn[isa.Reg(r)] = defset{-1: true}
	}

	transfer := func(b *Block, state map[isa.Reg]defset) map[isa.Reg]defset {
		cur := make(map[isa.Reg]defset, len(state))
		for r, s := range state {
			cur[r] = s
		}
		for i := b.Start; i < b.End; i++ {
			ins := &p.Ins[i]
			if ins.Op == isa.OpJSR {
				for _, r := range callClobbered {
					cur[r] = defset{i: true}
				}
				continue
			}
			if d, ok := ins.Dest(); ok {
				cur[d] = defset{i: true}
			}
		}
		return cur
	}

	eqState := func(a, b map[isa.Reg]defset) bool {
		if len(a) != len(b) {
			return false
		}
		for r, sa := range a {
			sb, ok := b[r]
			if !ok || len(sa) != len(sb) {
				return false
			}
			for d := range sa {
				if !sb[d] {
					return false
				}
			}
		}
		return true
	}

	rpo := f.RPOBlocks()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			// Meet: union of predecessor outs (entry keeps live-ins).
			merged := make(map[isa.Reg]defset)
			if b == f.Blocks[0] {
				for r, s := range entryIn {
					cp := make(defset, len(s))
					for d := range s {
						cp[d] = true
					}
					merged[r] = cp
				}
			}
			for _, pred := range b.Preds {
				for r, s := range out[pred.ID] {
					dst := merged[r]
					if dst == nil {
						dst = make(defset, len(s))
						merged[r] = dst
					}
					for d := range s {
						dst[d] = true
					}
				}
			}
			if !eqState(merged, in[b.ID]) {
				in[b.ID] = merged
				changed = true
			}
			newOut := transfer(b, in[b.ID])
			if !eqState(newOut, out[b.ID]) {
				out[b.ID] = newOut
				changed = true
			}
		}
	}

	// Second pass: walk each block recording UD/DU.
	for _, b := range f.Blocks {
		cur := make(map[isa.Reg]defset, len(in[b.ID]))
		for r, s := range in[b.ID] {
			cur[r] = s
		}
		for i := b.Start; i < b.End; i++ {
			ins := &p.Ins[i]
			record := func(r isa.Reg) {
				if r == isa.ZeroReg {
					return
				}
				if du.UD[i] != nil {
					if _, done := du.UD[i][r]; done {
						return
					}
				}
				defs := cur[r]
				if du.UD[i] == nil {
					du.UD[i] = make(map[isa.Reg][]int)
				}
				var list []int
				for d := range defs {
					list = append(list, d)
					if d >= 0 {
						du.DU[d] = append(du.DU[d], i)
					}
				}
				sortInts(list)
				du.UD[i][r] = list
			}
			uses, n := ins.Uses()
			for k := 0; k < n; k++ {
				record(uses[k])
			}
			for _, r := range PseudoUses(ins.Op) {
				record(r)
			}
			if ins.Op == isa.OpJSR {
				for _, r := range callClobbered {
					cur[r] = defset{i: true}
				}
				continue
			}
			if d, ok := ins.Dest(); ok {
				cur[d] = defset{i: true}
			}
		}
	}
	for d := range du.DU {
		sortInts(du.DU[d])
	}
	return du
}

// Uses returns the instructions consuming the value defined at defIdx
// (the paper's Uses(I, r)).
func (du *DefUse) Uses(defIdx int) []int { return du.DU[defIdx] }

// ReachingDefs returns the definitions reaching the use of reg at insIdx.
func (du *DefUse) ReachingDefs(insIdx int, reg isa.Reg) []int {
	m := du.UD[insIdx]
	if m == nil {
		return nil
	}
	return m[reg]
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
