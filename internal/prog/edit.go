package prog

import (
	"fmt"

	"opgate/internal/isa"
)

// Editor rewrites a program symbolically: instructions become nodes whose
// branch targets are node references instead of indices, so regions can be
// cloned, guards inserted, and dead instructions removed without manual
// target arithmetic. Build() re-linearises everything back into a Program.
//
// This is the mechanism under the VRS transformation (§3.4): "VRS basically
// duplicates the regions of code that are affected by the specialization,
// and then inserts tests to dynamically select the region".
type Editor struct {
	src   *Program
	funcs [][]*Node // node list per function, in layout order
	byIdx []*Node   // original instruction index -> node
}

// Node is one editable instruction. Target (when the instruction branches
// within its function) references another node; Callee (for JSR) references
// a function index.
type Node struct {
	Ins     isa.Instruction
	Target  *Node
	Callee  int // function index for JSR, else -1
	fn      int
	origIdx int // original instruction index, or -1 for new nodes
	deleted bool
}

// NewEditor converts the program into symbolic form.
func NewEditor(p *Program) *Editor {
	e := &Editor{
		src:   p,
		funcs: make([][]*Node, len(p.Funcs)),
		byIdx: make([]*Node, len(p.Ins)),
	}
	for fi, f := range p.Funcs {
		for i := f.Start; i < f.End; i++ {
			n := &Node{Ins: p.Ins[i], Callee: -1, fn: fi, origIdx: i}
			e.funcs[fi] = append(e.funcs[fi], n)
			e.byIdx[i] = n
		}
	}
	// Resolve targets.
	for _, nodes := range e.funcs {
		for _, n := range nodes {
			op := n.Ins.Op
			if !isa.IsBranch(op) || op == isa.OpRET {
				continue
			}
			if op == isa.OpJSR {
				if cf := p.FuncOf(n.Ins.Target); cf != nil {
					n.Callee = cf.Index
				}
				continue
			}
			n.Target = e.byIdx[n.Ins.Target]
		}
	}
	return e
}

// NodeAt returns the node for an original instruction index.
func (e *Editor) NodeAt(idx int) *Node {
	if idx < 0 || idx >= len(e.byIdx) {
		return nil
	}
	return e.byIdx[idx]
}

// posOf locates a node within its function list.
func (e *Editor) posOf(n *Node) int {
	for i, m := range e.funcs[n.fn] {
		if m == n {
			return i
		}
	}
	return -1
}

// InsertBefore places a new instruction immediately before anchor and
// redirects every branch that targeted anchor to the new node, so the new
// instruction executes on all paths that reached the anchor. The new node
// is returned (set its Target with SetTarget if it branches).
func (e *Editor) InsertBefore(anchor *Node, ins isa.Instruction) *Node {
	n := &Node{Ins: ins, Callee: -1, fn: anchor.fn, origIdx: -1}
	pos := e.posOf(anchor)
	list := e.funcs[anchor.fn]
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = n
	e.funcs[anchor.fn] = list
	for _, nodes := range e.funcs {
		for _, m := range nodes {
			if m != n && m.Target == anchor {
				m.Target = n
			}
		}
	}
	return n
}

// InsertBeforeNoRedirect places a new instruction before anchor without
// retargeting incoming branches (used for fall-through-only sequencing).
func (e *Editor) InsertBeforeNoRedirect(anchor *Node, ins isa.Instruction) *Node {
	n := &Node{Ins: ins, Callee: -1, fn: anchor.fn, origIdx: -1}
	pos := e.posOf(anchor)
	list := e.funcs[anchor.fn]
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = n
	e.funcs[anchor.fn] = list
	return n
}

// Append adds a new instruction at the end of function fi.
func (e *Editor) Append(fi int, ins isa.Instruction) *Node {
	n := &Node{Ins: ins, Callee: -1, fn: fi, origIdx: -1}
	e.funcs[fi] = append(e.funcs[fi], n)
	return n
}

// SetTarget points a branch node at a destination node.
func (e *Editor) SetTarget(n, target *Node) { n.Target = target }

// Replace swaps the instruction at a node, preserving its target.
func (e *Editor) Replace(n *Node, ins isa.Instruction) { n.Ins = ins }

// Delete removes a node; branches that targeted it are redirected to the
// next live node in layout order (its fall-through successor).
func (e *Editor) Delete(n *Node) {
	n.deleted = true
	next := e.nextLive(n)
	for _, nodes := range e.funcs {
		for _, m := range nodes {
			if m.Target == n {
				m.Target = next
			}
		}
	}
}

func (e *Editor) nextLive(n *Node) *Node {
	list := e.funcs[n.fn]
	pos := e.posOf(n)
	for i := pos + 1; i < len(list); i++ {
		if !list[i].deleted {
			return list[i]
		}
	}
	return nil
}

// CloneRange clones the contiguous original-instruction range [start, end)
// of function fi, appending the clone at the end of the function. Branches
// inside the range that target within the range are remapped to the clone;
// targets outside stay on the originals. If the last cloned instruction can
// fall through, an explicit BR to the node at `end` is appended so the
// clone rejoins the original control flow. The clone's entry node and the
// original-index->clone mapping are returned.
func (e *Editor) CloneRange(fi, start, end int) (*Node, map[int]*Node, error) {
	f := e.src.Funcs[fi]
	if start < f.Start || end > f.End || start >= end {
		return nil, nil, fmt.Errorf("edit: range [%d,%d) outside function %s [%d,%d)", start, end, f.Name, f.Start, f.End)
	}
	mapping := make(map[int]*Node, end-start)
	var clones []*Node
	for i := start; i < end; i++ {
		orig := e.byIdx[i]
		if orig.deleted {
			continue
		}
		c := &Node{Ins: orig.Ins, Target: orig.Target, Callee: orig.Callee, fn: fi, origIdx: -1}
		mapping[i] = c
		clones = append(clones, c)
	}
	if len(clones) == 0 {
		return nil, nil, fmt.Errorf("edit: range [%d,%d) fully deleted", start, end)
	}
	// Remap internal targets.
	for _, c := range clones {
		if c.Target == nil {
			continue
		}
		ti := c.Target.origIdx
		if ti >= start && ti < end {
			if m := mapping[ti]; m != nil {
				c.Target = m
			}
		}
	}
	// Rejoin: if the last instruction can fall through, branch back to
	// the instruction after the range (or function end behaviour).
	last := clones[len(clones)-1].Ins
	fallsThrough := true
	switch last.Op {
	case isa.OpBR, isa.OpRET, isa.OpHALT:
		fallsThrough = false
	}
	if fallsThrough && end < f.End {
		join := e.byIdx[end]
		br := &Node{Ins: isa.Instruction{Op: isa.OpBR}, Target: join, Callee: -1, fn: fi, origIdx: -1}
		clones = append(clones, br)
	}
	e.funcs[fi] = append(e.funcs[fi], clones...)
	return clones[0], mapping, nil
}

// Walk visits every node in layout order, flagging deleted ones. The
// order of live nodes matches the instruction order produced by Build.
func (e *Editor) Walk(fn func(n *Node, deleted bool)) {
	for _, nodes := range e.funcs {
		for _, n := range nodes {
			fn(n, n.deleted)
		}
	}
}

// Build linearises the edited nodes into a fresh Program with recomputed
// function boundaries, branch targets, labels, and analysis structures.
func (e *Editor) Build() (*Program, error) {
	q := &Program{
		Data:     append([]byte(nil), e.src.Data...),
		DataBase: e.src.DataBase,
		MemSize:  e.src.MemSize,
		Entry:    e.src.Entry,
		Labels:   make(map[string]int),
	}
	index := make(map[*Node]int)
	for fi, nodes := range e.funcs {
		f := &Func{Name: e.src.Funcs[fi].Name, Index: fi, Start: len(q.Ins)}
		for _, n := range nodes {
			if n.deleted {
				continue
			}
			index[n] = len(q.Ins)
			q.Ins = append(q.Ins, n.Ins)
		}
		f.End = len(q.Ins)
		q.Funcs = append(q.Funcs, f)
	}
	// Fix targets.
	pos := 0
	for _, nodes := range e.funcs {
		for _, n := range nodes {
			if n.deleted {
				continue
			}
			in := &q.Ins[pos]
			pos++
			switch {
			case in.Op == isa.OpJSR:
				if n.Callee >= 0 {
					in.Target = q.Funcs[n.Callee].Start
				}
			case isa.IsBranch(in.Op) && in.Op != isa.OpRET:
				if n.Target == nil || n.Target.deleted {
					return nil, fmt.Errorf("edit: branch at new index %d has no live target", pos-1)
				}
				ti, ok := index[n.Target]
				if !ok {
					return nil, fmt.Errorf("edit: branch target not linearised")
				}
				in.Target = ti
			}
		}
	}
	// Labels follow their original node when it survives.
	for name, oldIdx := range e.src.Labels {
		if oldIdx >= 0 && oldIdx < len(e.byIdx) {
			if n := e.byIdx[oldIdx]; n != nil && !n.deleted {
				if ni, ok := index[n]; ok {
					q.Labels[name] = ni
				}
			}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("edit: built program invalid: %w", err)
	}
	if err := q.Analyze(); err != nil {
		return nil, fmt.Errorf("edit: built program analysis: %w", err)
	}
	return q, nil
}
