package prog

// Dominator computation using the Cooper–Harvey–Kennedy iterative
// algorithm over reverse postorder. Runs per function; results land in
// Block.IDom (the entry block's IDom is itself).

func buildDominators(f *Func) {
	if len(f.Blocks) == 0 {
		return
	}
	rpo := f.RPOBlocks()
	entry := f.Blocks[0]
	for _, b := range f.Blocks {
		b.IDom = nil
	}
	entry.IDom = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for a.RPO > b.RPO {
				a = a.IDom
			}
			for b.RPO > a.RPO {
				b = b.IDom
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIDom *Block
			for _, pred := range b.Preds {
				if pred.IDom == nil {
					continue // not yet reachable
				}
				if newIDom == nil {
					newIDom = pred
				} else {
					newIDom = intersect(pred, newIDom)
				}
			}
			if newIDom != nil && b.IDom != newIDom {
				b.IDom = newIDom
				changed = true
			}
		}
	}
}

// Dominates reports whether a dominates b (reflexive).
func Dominates(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b.IDom == nil || b.IDom == b {
			return false
		}
		b = b.IDom
	}
}
