// Package prog represents OG64 programs at the binary-optimizer level: a
// flat instruction image partitioned into functions, each with a control
// flow graph, dominator tree, natural-loop nest, and def-use chains. This
// is the substrate the paper's Alto-based analyses operate on.
package prog

import (
	"fmt"
	"sort"

	"opgate/internal/isa"
)

// Calling convention (Alpha-flavoured):
//
//	r0          return value
//	r16..r21    arguments a0..a5
//	r26         link register (return address), written by JSR
//	r29         global pointer (GP), pinned to the data-segment base by
//	            the runtime; programs must not write it
//	r30         stack pointer
//	r31 (rz)    always zero
const (
	RegRet  isa.Reg = 0
	RegArg0 isa.Reg = 16
	RegArg1 isa.Reg = 17
	RegArg2 isa.Reg = 18
	RegArg3 isa.Reg = 19
	RegArg4 isa.Reg = 20
	RegArg5 isa.Reg = 21
	RegLink isa.Reg = 26
	RegGP   isa.Reg = 29
	RegSP   isa.Reg = 30

	// RegScratch is reserved for compiler-inserted code (the VRS guard
	// tests); hand-written kernels must not use it.
	RegScratch isa.Reg = 28
)

// NumArgRegs is the number of argument registers in the convention.
const NumArgRegs = 6

// Program is a complete OG64 binary: code, initialised data, and function
// metadata. Instruction indices are "addresses"; branch targets are indices
// into Ins.
type Program struct {
	Ins      []isa.Instruction
	Funcs    []*Func
	Data     []byte         // initial data segment image
	DataBase int64          // virtual address of Data[0]
	MemSize  int64          // total data memory size (>= DataBase+len(Data))
	Labels   map[string]int // label name -> instruction index
	Entry    int            // index into Funcs of the start function
}

// Func is a contiguous range [Start, End) of the instruction image.
type Func struct {
	Name   string
	Index  int // position in Program.Funcs
	Start  int
	End    int
	Blocks []*Block
	// blockOf maps instruction index (absolute) to block, valid after
	// BuildCFG.
	blockOf map[int]*Block
	// Calls lists the instruction indices of JSR instructions in this
	// function, with their callee function index (-1 if unresolved).
	Calls []CallSite

	loops   []*Loop
	anaProg *Program // set during Analyze; used by loop analysis
}

// CallSite records one JSR instruction and its callee.
type CallSite struct {
	InsIdx int
	Callee int // Program.Funcs index, or -1
}

// Block is a basic block: instructions [Start, End) with CFG edges.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []*Block
	Preds []*Block
	Fn    *Func
	// Dominator-tree parent, set by BuildDominators.
	IDom *Block
	// Loop containing this block most deeply, set by FindLoops.
	Loop *Loop
	// RPO is the reverse-postorder number within the function.
	RPO int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Terminator returns the final instruction of the block, or nil for an
// empty block.
func (b *Block) Terminator(p *Program) *isa.Instruction {
	if b.Len() == 0 {
		return nil
	}
	return &p.Ins[b.End-1]
}

// String identifies the block for diagnostics.
func (b *Block) String() string { return fmt.Sprintf("B%d[%d:%d)", b.ID, b.Start, b.End) }

// FuncOf returns the function containing instruction index idx, or nil.
func (p *Program) FuncOf(idx int) *Func {
	for _, f := range p.Funcs {
		if idx >= f.Start && idx < f.End {
			return f
		}
	}
	return nil
}

// BlockOf returns the basic block containing the absolute instruction
// index, or nil if outside the function or before BuildCFG.
func (f *Func) BlockOf(idx int) *Block {
	if f.blockOf == nil {
		return nil
	}
	return f.blockOf[idx]
}

// EntryBlock returns the block starting at the function entry.
func (f *Func) EntryBlock() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Analyze builds CFGs, dominators, loops and call sites for every function.
// It must be called after any structural change to the program.
func (p *Program) Analyze() error {
	for _, f := range p.Funcs {
		f.anaProg = p
		if err := p.buildCFG(f); err != nil {
			return fmt.Errorf("function %s: %w", f.Name, err)
		}
		buildDominators(f)
		findLoops(f)
	}
	p.resolveCalls()
	return nil
}

// buildCFG splits the function into basic blocks and connects edges.
func (p *Program) buildCFG(f *Func) error {
	f.Blocks = nil
	f.blockOf = make(map[int]*Block)
	if f.Start >= f.End {
		return fmt.Errorf("empty function")
	}

	// Leaders: function entry, branch targets within the function, and
	// instructions following any branch.
	leaders := map[int]bool{f.Start: true}
	for i := f.Start; i < f.End; i++ {
		in := &p.Ins[i]
		if !isa.IsBranch(in.Op) && in.Op != isa.OpHALT {
			continue
		}
		if i+1 < f.End {
			leaders[i+1] = true
		}
		switch in.Op {
		case isa.OpJSR, isa.OpRET, isa.OpHALT:
			// Calls fall through; returns/halts end the block with
			// no intra-function target.
		default:
			if in.Target < f.Start || in.Target >= f.End {
				return fmt.Errorf("instruction %d: branch target %d outside function [%d,%d)",
					i, in.Target, f.Start, f.End)
			}
			leaders[in.Target] = true
		}
	}

	starts := make([]int, 0, len(leaders))
	for s := range leaders {
		starts = append(starts, s)
	}
	sort.Ints(starts)

	for bi, s := range starts {
		end := f.End
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		b := &Block{ID: bi, Start: s, End: end, Fn: f}
		f.Blocks = append(f.Blocks, b)
		for i := s; i < end; i++ {
			f.blockOf[i] = b
		}
	}

	// Edges.
	for bi, b := range f.Blocks {
		last := b.Terminator(p)
		fallthru := func() {
			if bi+1 < len(f.Blocks) {
				connect(b, f.Blocks[bi+1])
			}
		}
		if last == nil {
			fallthru()
			continue
		}
		switch {
		case last.Op == isa.OpBR:
			connect(b, f.blockOf[last.Target])
		case last.Op == isa.OpRET || last.Op == isa.OpHALT:
			// no successors
		case last.Op == isa.OpJSR:
			fallthru() // call returns to the next instruction
		case isa.IsCondBranch(last.Op):
			connect(b, f.blockOf[last.Target])
			fallthru()
		default:
			fallthru()
		}
	}

	computeRPO(f)
	return nil
}

func connect(from, to *Block) {
	if to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// computeRPO assigns reverse-postorder numbers from the entry block.
func computeRPO(f *Func) {
	seen := make([]bool, len(f.Blocks))
	order := make([]*Block, 0, len(f.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if len(f.Blocks) > 0 {
		dfs(f.Blocks[0])
	}
	// Unreachable blocks get numbers after the reachable ones.
	n := 0
	for i := len(order) - 1; i >= 0; i-- {
		order[i].RPO = n
		n++
	}
	for _, b := range f.Blocks {
		if !seen[b.ID] {
			b.RPO = n
			n++
		}
	}
}

// RPOBlocks returns the function's blocks sorted by reverse postorder.
func (f *Func) RPOBlocks() []*Block {
	out := make([]*Block, len(f.Blocks))
	copy(out, f.Blocks)
	sort.Slice(out, func(i, j int) bool { return out[i].RPO < out[j].RPO })
	return out
}

// resolveCalls records call sites and callees for each function.
func (p *Program) resolveCalls() {
	for _, f := range p.Funcs {
		f.Calls = f.Calls[:0]
		for i := f.Start; i < f.End; i++ {
			in := &p.Ins[i]
			if in.Op != isa.OpJSR {
				continue
			}
			callee := -1
			if cf := p.FuncOf(in.Target); cf != nil {
				callee = cf.Index
			}
			f.Calls = append(f.Calls, CallSite{InsIdx: i, Callee: callee})
		}
	}
}

// Callers returns the indices of functions that call f.
func (p *Program) Callers(f *Func) []*Func {
	var out []*Func
	for _, g := range p.Funcs {
		for _, cs := range g.Calls {
			if cs.Callee == f.Index {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// Clone returns a deep copy of the program (instructions, functions, data).
// Analysis structures are rebuilt on the clone.
func (p *Program) Clone() *Program {
	q := &Program{
		Ins:      append([]isa.Instruction(nil), p.Ins...),
		Data:     append([]byte(nil), p.Data...),
		DataBase: p.DataBase,
		MemSize:  p.MemSize,
		Entry:    p.Entry,
		Labels:   make(map[string]int, len(p.Labels)),
	}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	for _, f := range p.Funcs {
		q.Funcs = append(q.Funcs, &Func{
			Name:  f.Name,
			Index: f.Index,
			Start: f.Start,
			End:   f.End,
		})
	}
	if err := q.Analyze(); err != nil {
		// The source program analysed successfully; a clone cannot fail.
		panic("prog: clone analysis failed: " + err.Error())
	}
	return q
}

// Validate performs structural sanity checks used by tests and after
// transformations.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("no functions")
	}
	prevEnd := 0
	for i, f := range p.Funcs {
		if f.Index != i {
			return fmt.Errorf("function %s has index %d, want %d", f.Name, f.Index, i)
		}
		if f.Start != prevEnd {
			return fmt.Errorf("function %s starts at %d, want %d (functions must tile the image)", f.Name, f.Start, prevEnd)
		}
		if f.End <= f.Start {
			return fmt.Errorf("function %s is empty", f.Name)
		}
		prevEnd = f.End
	}
	if prevEnd != len(p.Ins) {
		return fmt.Errorf("functions cover [0,%d), image has %d instructions", prevEnd, len(p.Ins))
	}
	for i := range p.Ins {
		in := &p.Ins[i]
		if isa.IsBranch(in.Op) && in.Op != isa.OpRET {
			if in.Target < 0 || in.Target >= len(p.Ins) {
				return fmt.Errorf("instruction %d (%s): target out of image", i, in)
			}
		}
	}
	return nil
}
