package prog

import (
	"fmt"

	"opgate/internal/isa"
)

// Loop is a natural loop: a back edge latch→header where the header
// dominates the latch, plus every block that can reach the latch without
// passing through the header.
type Loop struct {
	Header  *Block
	Blocks  map[*Block]bool
	Latches []*Block
	Parent  *Loop // enclosing loop, or nil
	// Iter holds the affine-iterator analysis result (§2.3), if the loop
	// matches the x = x + step pattern with a constant bound.
	Iter *AffineIterator
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *Block) bool { return l != nil && l.Blocks[b] }

// Depth returns the nesting depth (outermost loop = 1).
func (l *Loop) Depth() int {
	d := 0
	for ; l != nil; l = l.Parent {
		d++
	}
	return d
}

// AffineIterator describes a loop of the paper's analysable form: an
// iterator register x with a unique in-loop update x = x + Step, an initial
// value Init established before the loop, and an exit test comparing x
// against the constant Bound. From these the loop trip count is computed
// statically (§2.3) and the iterator's value range is bounded.
type AffineIterator struct {
	Reg       isa.Reg
	Init      int64 // value of Reg on loop entry
	InitKnown bool
	Step      int64 // per-iteration increment (may be negative)
	Bound     int64 // comparison constant in the exit test
	CmpOp     isa.Op
	UpdateIdx int // instruction index of the x = x + step
	// TripCount is the number of times the update executes; valid when
	// Bounded is true.
	TripCount int64
	Bounded   bool
	// MinVal/MaxVal bound every value the iterator register takes inside
	// the loop (after the update included); valid when Bounded is true.
	MinVal, MaxVal int64
}

// String summarises the iterator for diagnostics.
func (it *AffineIterator) String() string {
	if it == nil {
		return "<none>"
	}
	if !it.Bounded {
		return fmt.Sprintf("%s += %d (unbounded)", it.Reg, it.Step)
	}
	return fmt.Sprintf("%s: init %d step %d bound %d trips %d range [%d,%d]",
		it.Reg, it.Init, it.Step, it.Bound, it.TripCount, it.MinVal, it.MaxVal)
}

// findLoops detects natural loops, builds the loop nest, and runs the
// affine-iterator analysis on each loop.
func findLoops(f *Func) {
	for _, b := range f.Blocks {
		b.Loop = nil
	}
	var loops []*Loop
	byHeader := make(map[*Block]*Loop)

	for _, b := range f.Blocks {
		for _, succ := range b.Succs {
			if !Dominates(succ, b) {
				continue
			}
			// Back edge b -> succ.
			l := byHeader[succ]
			if l == nil {
				l = &Loop{Header: succ, Blocks: map[*Block]bool{succ: true}}
				byHeader[succ] = l
				loops = append(loops, l)
			}
			l.Latches = append(l.Latches, b)
			// Collect body: reverse reachability from the latch.
			work := []*Block{b}
			for len(work) > 0 {
				n := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range n.Preds {
					work = append(work, p)
				}
			}
		}
	}

	// Nesting: a loop is nested in another if its header is in the other's
	// body and it has strictly fewer blocks.
	for _, inner := range loops {
		for _, outer := range loops {
			if inner == outer || !outer.Blocks[inner.Header] {
				continue
			}
			if len(outer.Blocks) <= len(inner.Blocks) {
				continue
			}
			if inner.Parent == nil || len(outer.Blocks) < len(inner.Parent.Blocks) {
				inner.Parent = outer
			}
		}
	}

	// Innermost-loop annotation on blocks.
	for _, l := range loops {
		for b := range l.Blocks {
			if b.Loop == nil || len(l.Blocks) < len(b.Loop.Blocks) {
				b.Loop = l
			}
		}
	}

	p := programOf(f)
	for _, l := range loops {
		l.Iter = analyzeIterator(p, f, l)
	}
	f.loops = loops
}

// Loops returns the natural loops of the function (set by Analyze).
func (f *Func) Loops() []*Loop { return f.loops }

// programOf walks back to the Program through any block's function; funcs
// keep no back pointer, so the caller stores it in the package-level
// analysis entry points instead. For loop analysis we thread it via the
// function's anaProg field set during Analyze.
func programOf(f *Func) *Program { return f.anaProg }

// analyzeIterator matches the paper's analysable loop shape.
//
// It requires: a unique register x whose only in-loop definition is a
// single "add x, x, #step" (or sub with constant); an exit test of the
// form "cmpXX t, x, #bound; bne/beq t, ..." in a block of the loop whose
// conditional branch leaves the loop on one edge; and, when available, a
// constant initial value found in the loop preheader. Loops with multiple
// iterators or data-dependent exits are rejected (trip count unknown).
func analyzeIterator(p *Program, f *Func, l *Loop) *AffineIterator {
	if p == nil {
		return nil
	}
	// 1. Find candidate updates: add/sub x, x, #c inside the loop. The
	// register may be defined several times only if every definition is
	// the identical update — this happens when VRS clones a region that
	// contains the update; each iteration still executes exactly one
	// copy, so the trip-count reasoning is unchanged.
	defCount := make(map[isa.Reg]int)
	type update struct {
		reg  isa.Reg
		step int64
		idx  int
	}
	var updates []update
	updCount := make(map[isa.Reg]int)
	stepsEqual := make(map[isa.Reg]bool)
	stepOf := make(map[isa.Reg]int64)
	for b := range l.Blocks {
		for i := b.Start; i < b.End; i++ {
			in := &p.Ins[i]
			d, ok := in.Dest()
			if !ok {
				continue
			}
			defCount[d]++
			if in.HasImm && in.Ra == d {
				var step int64
				matched := true
				switch in.Op {
				case isa.OpADD, isa.OpLDA:
					step = in.Imm
				case isa.OpSUB:
					step = -in.Imm
				default:
					matched = false
				}
				if matched {
					updates = append(updates, update{d, step, i})
					updCount[d]++
					if prev, seen := stepOf[d]; seen {
						stepsEqual[d] = stepsEqual[d] && prev == step
					} else {
						stepOf[d] = step
						stepsEqual[d] = true
					}
				}
			}
		}
	}

	// 2. Find the exit test: a conditional branch in the loop with one
	// successor outside, fed by a compare of a candidate register against
	// a constant.
	seen := make(map[isa.Reg]bool)
	for _, u := range updates {
		if seen[u.reg] {
			continue
		}
		seen[u.reg] = true
		// Every in-loop definition of the register must be an identical
		// update instruction.
		if defCount[u.reg] != updCount[u.reg] || !stepsEqual[u.reg] || u.step == 0 {
			continue
		}
		it := matchExitTest(p, l, u.reg, u.step, u.idx)
		if it == nil {
			continue
		}
		// 3. Initial value: constant def of reg in the preheader.
		if pre := preheader(l); pre != nil {
			if v, ok := constDefBefore(p, pre, u.reg); ok {
				it.Init = v
				it.InitKnown = true
				computeTripCount(it)
			}
		}
		return it
	}
	return nil
}

// preheader returns the unique out-of-loop predecessor of the header.
func preheader(l *Loop) *Block {
	var pre *Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}

// constDefBefore scans the block backwards for a constant definition of
// reg ("lda reg, #c(rz)").
func constDefBefore(p *Program, b *Block, reg isa.Reg) (int64, bool) {
	for i := b.End - 1; i >= b.Start; i-- {
		in := &p.Ins[i]
		d, ok := in.Dest()
		if !ok || d != reg {
			continue
		}
		if in.Op == isa.OpLDA && in.Ra == isa.ZeroReg {
			return in.Imm, true
		}
		return 0, false
	}
	// Not defined here; a single further hop through a straight-line
	// predecessor is attempted (common when the assembler splits setup).
	if len(b.Preds) == 1 && len(b.Preds[0].Succs) == 1 {
		return constDefBefore(p, b.Preds[0], reg)
	}
	return 0, false
}

// matchExitTest looks for "cmpXX t, x, #bound" + conditional branch on t
// where the branch has an exit edge.
func matchExitTest(p *Program, l *Loop, x isa.Reg, step int64, updateIdx int) *AffineIterator {
	for b := range l.Blocks {
		t := b.Terminator(p)
		if t == nil || !isa.IsCondBranch(t.Op) {
			continue
		}
		hasExit := false
		for _, s := range b.Succs {
			if !l.Blocks[s] {
				hasExit = true
			}
		}
		if !hasExit || b.Len() < 2 {
			continue
		}
		cmp := &p.Ins[b.End-2]
		if isa.ClassOf(cmp.Op) != isa.ClassCmp || !cmp.HasImm {
			continue
		}
		if cmp.Ra != x || cmp.Rd != t.Ra {
			continue
		}
		return &AffineIterator{
			Reg:       x,
			Step:      step,
			Bound:     cmp.Imm,
			CmpOp:     cmp.Op,
			UpdateIdx: updateIdx,
		}
	}
	return nil
}

// computeTripCount derives the trip count and iterator range for the
// matched shape, assuming the canonical loop rotation "do body; x+=step;
// if (x cmp bound) continue". Non-progressing or immediately-false shapes
// leave Bounded false (worst case assumed by VRP, per the paper).
func computeTripCount(it *AffineIterator) {
	if it.Step == 0 || !it.InitKnown {
		return
	}
	// The iterator takes values init, init+step, ... while the continue
	// condition holds for the *updated* value. Derive the last value.
	cont := func(v int64) bool {
		switch it.CmpOp {
		case isa.OpCMPLT:
			return v < it.Bound
		case isa.OpCMPLE:
			return v <= it.Bound
		case isa.OpCMPULT:
			return uint64(v) < uint64(it.Bound)
		case isa.OpCMPULE:
			return uint64(v) <= uint64(it.Bound)
		case isa.OpCMPEQ:
			return v == it.Bound
		}
		return false
	}
	// Closed form for the common monotone cases; bail out to unbounded
	// when progress toward the bound is not guaranteed.
	switch it.CmpOp {
	case isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
		if it.Step < 0 {
			return // moving away from an upper bound
		}
	case isa.OpCMPEQ:
		return // equality-exit loops are data dependent in general
	}
	first := it.Init + it.Step
	if !cont(first) {
		it.TripCount = 1
		it.Bounded = true
		it.MinVal = min64(it.Init, first)
		it.MaxVal = max64(it.Init, first)
		return
	}
	// v_n = init + n*step; find largest n with cont(v_n). For the signed
	// monotone increasing case: v_n <= bound(-ish).
	limit := it.Bound
	if it.CmpOp == isa.OpCMPLT || it.CmpOp == isa.OpCMPULT {
		limit = it.Bound - 1
	}
	if limit < first {
		it.TripCount = 1
	} else {
		n := (limit - it.Init) / it.Step // number of steps staying in range
		it.TripCount = n + 1             // update executes once more to exit
	}
	last := it.Init + it.TripCount*it.Step
	it.Bounded = true
	it.MinVal = min64(it.Init, last)
	it.MaxVal = max64(it.Init, last)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
