package prog_test

import (
	"testing"

	"opgate/internal/asm"
	"opgate/internal/isa"
	"opgate/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

const diamondSrc = `
.func main
	lda r1, 5(rz)
	beq r1, left
	lda r2, 1(rz)
	br join
left:
	lda r2, 2(rz)
join:
	add r3, r2, #1
	halt
`

func TestCFGConstruction(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	f := p.Funcs[0]
	if len(f.Blocks) != 4 {
		t.Fatalf("diamond has %d blocks, want 4", len(f.Blocks))
	}
	entry := f.EntryBlock()
	if len(entry.Succs) != 2 {
		t.Fatalf("entry has %d successors, want 2", len(entry.Succs))
	}
	// The join block has two predecessors.
	join := f.BlockOf(p.Labels["join"])
	if len(join.Preds) != 2 {
		t.Fatalf("join has %d preds, want 2", len(join.Preds))
	}
}

func TestDominators(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	f := p.Funcs[0]
	entry := f.EntryBlock()
	join := f.BlockOf(p.Labels["join"])
	left := f.BlockOf(p.Labels["left"])
	if !prog.Dominates(entry, join) {
		t.Error("entry must dominate join")
	}
	if !prog.Dominates(entry, left) {
		t.Error("entry must dominate left")
	}
	if prog.Dominates(left, join) {
		t.Error("left must not dominate join (the other arm bypasses it)")
	}
	if !prog.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
}

func TestLoopDetectionAndTripCount(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda r1, 0(rz)
loop:
	add r2, r2, r1
	add r1, r1, #1
	cmplt r3, r1, #50
	bne r3, loop
	halt
`)
	f := p.Funcs[0]
	loops := f.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	it := loops[0].Iter
	if it == nil || !it.Bounded {
		t.Fatalf("iterator not bounded: %v", it)
	}
	if it.Reg != 1 || it.Step != 1 || it.TripCount != 50 {
		t.Errorf("iterator = %v, want r1 step 1 trips 50", it)
	}
	if it.MinVal != 0 || it.MaxVal != 50 {
		t.Errorf("iterator range [%d,%d], want [0,50]", it.MinVal, it.MaxVal)
	}
}

func TestNestedLoops(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda r1, 0(rz)
outer:
	lda r2, 0(rz)
inner:
	add r3, r3, #1
	add r2, r2, #1
	cmplt r4, r2, #10
	bne r4, inner
	add r1, r1, #1
	cmplt r4, r1, #5
	bne r4, outer
	halt
`)
	f := p.Funcs[0]
	loops := f.Loops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var inner, outer *prog.Loop
	for _, l := range loops {
		if len(l.Blocks) < 3 {
			inner = l
		} else {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("could not identify nesting")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if outer.Depth() != 1 || inner.Depth() != 2 {
		t.Errorf("depths: outer %d inner %d", outer.Depth(), inner.Depth())
	}
}

func TestDataDependentLoopUnbounded(t *testing.T) {
	// §2.3: loops that depend on a comparison with a non-constant have
	// no statically known trip count.
	p := mustAssemble(t, `
.data
buf: .space 64
.text
.func main
	lda r1, 0(rz)
loop:
	lda r5, =buf
	add r5, r5, r1
	ld.b r6, 0(r5)
	add r1, r1, #1
	cmplt r3, r1, #64
	beq r3, done
	bne r6, loop
done:
	halt
`)
	f := p.Funcs[0]
	for _, l := range f.Loops() {
		if l.Iter != nil && l.Iter.Bounded {
			// Bounded is fine here (the i<64 exit test exists), but the
			// range must cover the worst case.
			if l.Iter.MaxVal > 64 {
				t.Errorf("iterator overshoot: %v", l.Iter)
			}
		}
	}
}

func TestDefUseChains(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda r1, 7(rz)
	add r2, r1, #1
	add r3, r1, #2
	add r4, r2, r3
	out.q r4
	halt
`)
	f := p.Funcs[0]
	du := prog.BuildDefUse(p, f)
	// r1's def (index 0) is used by instructions 1 and 2.
	uses := du.Uses(0)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("uses of def 0 = %v, want [1 2]", uses)
	}
	// Instruction 3 uses r2 (def 1) and r3 (def 2).
	if defs := du.ReachingDefs(3, 2); len(defs) != 1 || defs[0] != 1 {
		t.Errorf("reaching defs of r2 at 3 = %v", defs)
	}
}

func TestDefUseAcrossBranches(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	f := p.Funcs[0]
	du := prog.BuildDefUse(p, f)
	// r2 at the join's add has two reaching defs (both arms).
	addIdx := p.Labels["join"]
	defs := du.ReachingDefs(addIdx, 2)
	if len(defs) != 2 {
		t.Errorf("r2 at join has %d reaching defs, want 2: %v", len(defs), defs)
	}
}

func TestCallGraphAndClobbers(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda a0, 1(rz)
	jsr helper
	out.q rv
	halt
.func helper
	add rv, a0, #1
	ret
`)
	main := p.Funcs[0]
	if len(main.Calls) != 1 {
		t.Fatalf("main has %d call sites, want 1", len(main.Calls))
	}
	if cs := main.Calls[0]; cs.Callee != 1 {
		t.Errorf("callee index = %d, want 1", cs.Callee)
	}
	callers := p.Callers(p.Funcs[1])
	if len(callers) != 1 || callers[0] != main {
		t.Errorf("Callers(helper) = %v", callers)
	}
	// The OUT of rv must see the JSR as a reaching def (call clobber).
	du := prog.BuildDefUse(p, main)
	outIdx := main.Calls[0].InsIdx + 1
	defs := du.ReachingDefs(outIdx, prog.RegRet)
	if len(defs) != 1 || defs[0] != main.Calls[0].InsIdx {
		t.Errorf("rv at out reaches defs %v, want the JSR", defs)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	// Corrupt a branch target.
	q := p.Clone()
	for i := range q.Ins {
		if q.Ins[i].Op == isa.OpBR {
			q.Ins[i].Target = 10_000
		}
	}
	if err := q.Validate(); err == nil {
		t.Error("Validate accepted an out-of-image branch target")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := mustAssemble(t, diamondSrc)
	q := p.Clone()
	q.Ins[0].Imm = 99
	if p.Ins[0].Imm == 99 {
		t.Error("clone shares instruction storage with the original")
	}
	if len(q.Funcs[0].Blocks) != len(p.Funcs[0].Blocks) {
		t.Error("clone has different CFG")
	}
}

// TestClonedUpdateIteratorStillBounded: when a loop body containing the
// iterator update is duplicated (as VRS does), every copy is the identical
// update and the trip-count analysis must still succeed — each iteration
// executes exactly one copy.
func TestClonedUpdateIteratorStillBounded(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda r1, 0(rz)
loop:
	cmplt r5, r1, #25
	beq r5, alt
	add r2, r2, r1
	add r1, r1, #1
	cmplt r3, r1, #50
	bne r3, loop
	br done
alt:
	add r2, r2, #7
	add r1, r1, #1
	cmplt r3, r1, #50
	bne r3, loop
done:
	halt
`)
	f := p.Funcs[0]
	if len(f.Loops()) != 1 {
		t.Fatalf("found %d loops", len(f.Loops()))
	}
	it := f.Loops()[0].Iter
	if it == nil || !it.Bounded {
		t.Fatalf("duplicated-update iterator not bounded: %v", it)
	}
	if it.Reg != 1 || it.MaxVal != 50 {
		t.Errorf("iterator %v, want r1 bounded at 50", it)
	}
}

// TestMixedStepUpdatesRejected: two updates with different steps cannot be
// treated as one iterator.
func TestMixedStepUpdatesRejected(t *testing.T) {
	p := mustAssemble(t, `
.func main
	lda r1, 0(rz)
loop:
	cmplt r5, r1, #25
	beq r5, alt
	add r1, r1, #1
	br check
alt:
	add r1, r1, #2
check:
	cmplt r3, r1, #50
	bne r3, loop
	halt
`)
	f := p.Funcs[0]
	for _, l := range f.Loops() {
		if l.Iter != nil && l.Iter.Bounded && l.Iter.Reg == 1 {
			t.Errorf("mixed-step updates produced a bounded iterator: %v", l.Iter)
		}
	}
}
